#include "workload/load.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace es::workload {
namespace {

Job simple_job(JobId id, double arr, int num, double dur) {
  Job job;
  job.id = id;
  job.arr = arr;
  job.num = num;
  job.dur = dur;
  return job;
}

TEST(Load, HandComputedExample) {
  // Two jobs: 10 procs x 100 s + 20 procs x 50 s = 2000 proc-seconds.
  // Span: first arrival 0 to last completion max(0+100, 50+50) = 100.
  // Machine 40 procs -> load = 2000 / (100 * 40) = 0.5.
  Workload workload;
  workload.jobs = {simple_job(1, 0, 10, 100), simple_job(2, 50, 20, 50)};
  EXPECT_DOUBLE_EQ(offered_load(workload, 40), 0.5);
}

TEST(Load, UsesActualRuntimeNotEstimate) {
  Workload workload;
  Job job = simple_job(1, 0, 10, 100);
  job.actual = 50;  // over-estimated by 2x
  workload.jobs = {job, simple_job(2, 0, 10, 100)};
  // proc-seconds = 10*50 + 10*100 = 1500; span = 100; M = 30 -> 0.5
  EXPECT_DOUBLE_EQ(offered_load(workload, 30), 0.5);
}

TEST(Load, EmptyWorkloadIsZero) {
  Workload workload;
  EXPECT_DOUBLE_EQ(offered_load(workload, 10), 0.0);
}

TEST(Load, ScaleArrivalsKeepsFirstArrivalAndOrder) {
  Workload workload;
  workload.jobs = {simple_job(1, 100, 4, 10), simple_job(2, 200, 4, 10),
                   simple_job(3, 400, 4, 10)};
  workload.scale_arrivals(2.0);
  EXPECT_DOUBLE_EQ(workload.jobs[0].arr, 100);
  EXPECT_DOUBLE_EQ(workload.jobs[1].arr, 300);
  EXPECT_DOUBLE_EQ(workload.jobs[2].arr, 700);
}

TEST(Load, ScaleArrivalsMovesDedicatedStartsAndEccs) {
  Workload workload;
  Job dedicated = simple_job(1, 100, 4, 10);
  dedicated.type = JobType::kDedicated;
  dedicated.start = 300;
  workload.jobs = {simple_job(2, 100, 4, 10), dedicated};
  Ecc ecc;
  ecc.issue = 200;
  ecc.job_id = 2;
  ecc.amount = 5;
  workload.eccs = {ecc};
  workload.normalize();
  workload.scale_arrivals(3.0);
  // Origin 100: dedicated start 100 + (300-100)*3 = 700.
  bool found = false;
  for (const Job& job : workload.jobs) {
    if (job.dedicated()) {
      EXPECT_DOUBLE_EQ(job.start, 700);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_DOUBLE_EQ(workload.eccs[0].issue, 100 + (200 - 100) * 3);
}

TEST(Load, ScalingArrivalsScalesLoadInversely) {
  GeneratorConfig config;
  config.num_jobs = 300;
  config.seed = 2;
  Workload workload = generate(config);
  const double before = offered_load(workload, 320);
  workload.scale_arrivals(2.0);
  const double after = offered_load(workload, 320);
  // Span roughly doubles (runtimes add a constant tail), so load roughly
  // halves.
  EXPECT_LT(after, before);
  EXPECT_NEAR(after, before / 2.0, 0.25 * before);
}

TEST(Load, CalibrationConvergesFromBothSides) {
  for (double target : {0.3, 1.2}) {
    GeneratorConfig config;
    config.num_jobs = 300;
    config.seed = 3;
    Workload workload = generate(config);
    const double achieved = calibrate_load(workload, 320, target);
    EXPECT_NEAR(achieved, target, 0.01 * target);
    EXPECT_NEAR(offered_load(workload, 320), achieved, 1e-12);
  }
}

TEST(Load, DurationSpansArrivalToLastCompletion) {
  Workload workload;
  workload.jobs = {simple_job(1, 10, 4, 100), simple_job(2, 50, 4, 10)};
  EXPECT_DOUBLE_EQ(workload.duration(), 100.0);  // 10..110
}

TEST(Load, DurationAccountsForDedicatedStarts) {
  Workload workload;
  Job dedicated = simple_job(1, 0, 4, 100);
  dedicated.type = JobType::kDedicated;
  dedicated.start = 500;
  workload.jobs = {dedicated};
  // Runs [500, 600], so the span is 600.
  EXPECT_DOUBLE_EQ(workload.duration(), 600.0);
}

TEST(Load, BatchAndDedicatedCounts) {
  Workload workload;
  Job dedicated = simple_job(1, 0, 4, 10);
  dedicated.type = JobType::kDedicated;
  dedicated.start = 5;
  workload.jobs = {dedicated, simple_job(2, 0, 4, 10),
                   simple_job(3, 1, 8, 10)};
  EXPECT_EQ(workload.batch_count(), 2u);
  EXPECT_EQ(workload.dedicated_count(), 1u);
}

}  // namespace
}  // namespace es::workload
