// Multi-tenant workload tagging: the Zipf user stream, pool assignment, and
// the guarantee that enabling tenancy does not perturb the base trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace es::workload {
namespace {

GeneratorConfig base_config() {
  GeneratorConfig config;
  config.num_jobs = 2000;
  config.seed = 31;
  return config;
}

TEST(Tenancy, UntaggedByDefault) {
  const Workload workload = generate(base_config());
  for (const Job& job : workload.jobs) {
    EXPECT_EQ(job.user, 0);
    EXPECT_EQ(job.pool, 0);
  }
}

TEST(Tenancy, TaggingLeavesTheBaseTraceByteIdentical) {
  // The user stream draws from its own RNG split: flipping tenancy on must
  // not move a single arrival, size or runtime — otherwise fairness
  // comparisons against untagged baselines would be comparing different
  // workloads.
  const Workload untagged = generate(base_config());
  GeneratorConfig config = base_config();
  config.num_users = 64;
  config.num_pools = 4;
  const Workload tagged = generate(config);
  ASSERT_EQ(tagged.jobs.size(), untagged.jobs.size());
  for (std::size_t i = 0; i < tagged.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(tagged.jobs[i].arr, untagged.jobs[i].arr);
    EXPECT_EQ(tagged.jobs[i].num, untagged.jobs[i].num);
    EXPECT_DOUBLE_EQ(tagged.jobs[i].dur, untagged.jobs[i].dur);
    EXPECT_DOUBLE_EQ(tagged.jobs[i].actual_runtime(),
                     untagged.jobs[i].actual_runtime());
  }
}

TEST(Tenancy, UsersInRangeAndPoolIsRoundRobinOverRank) {
  GeneratorConfig config = base_config();
  config.num_users = 16;
  config.num_pools = 3;
  const Workload workload = generate(config);
  for (const Job& job : workload.jobs) {
    EXPECT_GE(job.user, 1);
    EXPECT_LE(job.user, 16);
    EXPECT_EQ(job.pool, (job.user - 1) % 3);
  }
}

TEST(Tenancy, ZeroPoolsMeansSinglePool) {
  GeneratorConfig config = base_config();
  config.num_users = 16;
  config.num_pools = 0;
  const Workload workload = generate(config);
  for (const Job& job : workload.jobs) {
    EXPECT_GE(job.user, 1);
    EXPECT_EQ(job.pool, 0);
  }
}

TEST(Tenancy, SubmissionsAreZipfSkewed) {
  GeneratorConfig config = base_config();
  config.num_users = 32;
  config.zipf_exponent = 1.1;
  const Workload workload = generate(config);
  std::vector<int> counts(33, 0);
  for (const Job& job : workload.jobs)
    ++counts[static_cast<std::size_t>(job.user)];
  // Rank 1 dominates and the tail is collectively thin: the top rank must
  // submit several times the median rank's volume.
  EXPECT_GT(counts[1], counts[16] * 3);
  int top = 0;
  for (int user = 1; user <= 32; ++user) top = std::max(top, counts[user]);
  EXPECT_EQ(top, counts[1]);
}

TEST(Tenancy, DeterministicPerSeed) {
  GeneratorConfig config = base_config();
  config.num_users = 16;
  config.num_pools = 4;
  const Workload a = generate(config);
  const Workload b = generate(config);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].user, b.jobs[i].user);
    EXPECT_EQ(a.jobs[i].pool, b.jobs[i].pool);
  }
}

TEST(ZipfSampler, MatchesAnalyticProbabilities) {
  const int n = 10;
  const double s = 1.2;
  ZipfSampler sampler(n, s);
  double total = 0;
  for (int rank = 1; rank <= n; ++rank)
    total += sampler.probability(rank);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // P(k) proportional to k^-s: check a ratio directly.
  EXPECT_NEAR(sampler.probability(1) / sampler.probability(2),
              std::pow(2.0, s), 1e-9);

  util::Rng rng(7);
  std::vector<int> counts(static_cast<std::size_t>(n) + 1, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const int rank = sampler.sample(rng);
    ASSERT_GE(rank, 1);
    ASSERT_LE(rank, n);
    ++counts[static_cast<std::size_t>(rank)];
  }
  for (int rank = 1; rank <= n; ++rank)
    EXPECT_NEAR(counts[static_cast<std::size_t>(rank)] /
                    static_cast<double>(draws),
                sampler.probability(rank), 0.02)
        << rank;
}

}  // namespace
}  // namespace es::workload
