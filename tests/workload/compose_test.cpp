#include "workload/compose.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workload/generator.hpp"

namespace es::workload {
namespace {

Job simple_job(JobId id, double arr, int num, double dur) {
  Job job;
  job.id = id;
  job.arr = arr;
  job.num = num;
  job.dur = dur;
  return job;
}

Workload two_jobs(int procs = 10) {
  Workload workload;
  workload.machine_procs = procs;
  workload.granularity = 1;
  workload.jobs = {simple_job(1, 0, 4, 100), simple_job(2, 50, 6, 100)};
  workload.normalize();
  return workload;
}

TEST(Compose, ConcatenateShiftsAndRenumbers) {
  const Workload base = two_jobs();          // span: 0 .. 150
  const Workload combined = concatenate(base, two_jobs(), /*gap=*/10);
  ASSERT_EQ(combined.jobs.size(), 4u);
  // Tail's first arrival lands at 150 + 10.
  EXPECT_DOUBLE_EQ(combined.jobs[2].arr, 160);
  EXPECT_DOUBLE_EQ(combined.jobs[3].arr, 210);
  std::set<JobId> ids;
  for (const Job& job : combined.jobs) ids.insert(job.id);
  EXPECT_EQ(ids.size(), 4u);  // unique ids
}

TEST(Compose, ConcatenateMovesDedicatedStartsAndEccs) {
  Workload tail = two_jobs();
  tail.jobs[0].type = JobType::kDedicated;
  tail.jobs[0].start = 30;
  Ecc ecc;
  ecc.job_id = 2;
  ecc.issue = 60;
  ecc.type = EccType::kExtendTime;
  ecc.amount = 5;
  tail.eccs = {ecc};
  const Workload combined = concatenate(two_jobs(), tail, 0);
  bool found_dedicated = false;
  for (const Job& job : combined.jobs) {
    if (job.dedicated()) {
      EXPECT_DOUBLE_EQ(job.start, 150 + 30);
      found_dedicated = true;
    }
  }
  EXPECT_TRUE(found_dedicated);
  ASSERT_EQ(combined.eccs.size(), 1u);
  EXPECT_DOUBLE_EQ(combined.eccs[0].issue, 150 + 60);
  // The ECC follows its renumbered target.
  EXPECT_EQ(combined.eccs[0].job_id, 4);
}

TEST(Compose, ConcatenateEmptySides) {
  const Workload base = two_jobs();
  const Workload with_empty = concatenate(base, Workload{}, 5);
  EXPECT_EQ(with_empty.jobs.size(), 2u);
  Workload empty;
  empty.machine_procs = 10;
  const Workload from_empty = concatenate(empty, base, 0);
  EXPECT_EQ(from_empty.jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(from_empty.jobs[0].arr, 0);
}

TEST(Compose, MergeKeepsTimestampsRenumbersIds) {
  const Workload merged = merge(two_jobs(), two_jobs());
  ASSERT_EQ(merged.jobs.size(), 4u);
  // Sorted by arrival: 0, 0, 50, 50.
  EXPECT_DOUBLE_EQ(merged.jobs[0].arr, 0);
  EXPECT_DOUBLE_EQ(merged.jobs[1].arr, 0);
  EXPECT_DOUBLE_EQ(merged.jobs[2].arr, 50);
  std::set<JobId> ids;
  for (const Job& job : merged.jobs) ids.insert(job.id);
  EXPECT_EQ(ids.size(), 4u);
}

TEST(Compose, MergedWorkloadRunsCleanly) {
  GeneratorConfig batch_config;
  batch_config.num_jobs = 100;
  batch_config.seed = 3;
  GeneratorConfig dedicated_config = batch_config;
  dedicated_config.seed = 4;
  dedicated_config.p_dedicated = 1.0;
  dedicated_config.num_jobs = 30;
  const Workload merged = merge(generate(batch_config),
                                generate(dedicated_config));
  EXPECT_EQ(merged.jobs.size(), 130u);
  EXPECT_EQ(merged.dedicated_count(), 30u);
}

TEST(Compose, SliceKeepsWindowAndOwnedEccs) {
  Workload workload = two_jobs();
  Ecc early;
  early.job_id = 1;
  early.issue = 10;
  early.type = EccType::kExtendTime;
  early.amount = 1;
  Ecc late = early;
  late.job_id = 2;
  late.issue = 60;
  workload.eccs = {early, late};
  workload.normalize();
  const Workload window = slice(workload, 25, 100);
  ASSERT_EQ(window.jobs.size(), 1u);
  EXPECT_EQ(window.jobs[0].id, 2);
  ASSERT_EQ(window.eccs.size(), 1u);
  EXPECT_EQ(window.eccs[0].job_id, 2);
}

TEST(Compose, SliceEmptyWindow) {
  const Workload window = slice(two_jobs(), 1000, 2000);
  EXPECT_TRUE(window.jobs.empty());
  EXPECT_TRUE(window.eccs.empty());
}

TEST(ComposeDeath, MismatchedMachinesRejected) {
  EXPECT_DEATH(concatenate(two_jobs(10), two_jobs(20)), "precondition");
  EXPECT_DEATH(merge(two_jobs(10), two_jobs(20)), "precondition");
}

}  // namespace
}  // namespace es::workload
