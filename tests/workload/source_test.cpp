// JobSource contract tests: every source must deliver, chunk by chunk,
// exactly the jobs and commands its materializing counterpart produces —
// same values, same (arr, id) / (issue, job_id) order, chunk boundaries
// that never split a same-instant tie group, and command windows that
// concatenate to the normalize() order.  These invariants are what make
// Engine::run_streamed byte-identical to Engine::run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "testing/helpers.hpp"
#include "workload/generator.hpp"
#include "workload/source.hpp"
#include "workload/swf.hpp"

namespace es::workload {
namespace {

/// Drains a source, checking per-chunk invariants along the way, and
/// returns the concatenation.
struct Drained {
  std::vector<Job> jobs;
  std::vector<int> ecc_counts;
  std::vector<Ecc> eccs;
  std::size_t chunks = 0;
};

Drained drain(JobSource& source) {
  Drained all;
  SourceChunk chunk;
  while (source.next_chunk(chunk)) {
    EXPECT_FALSE(chunk.jobs.empty());
    EXPECT_EQ(chunk.jobs.size(), chunk.ecc_counts.size());
    if (!all.jobs.empty() && !chunk.jobs.empty()) {
      // Tie-group contract: a chunk boundary never splits equal arrivals.
      EXPECT_GT(chunk.jobs.front().arr, all.jobs.back().arr);
    }
    all.jobs.insert(all.jobs.end(), chunk.jobs.begin(), chunk.jobs.end());
    all.ecc_counts.insert(all.ecc_counts.end(), chunk.ecc_counts.begin(),
                          chunk.ecc_counts.end());
    all.eccs.insert(all.eccs.end(), chunk.eccs.begin(), chunk.eccs.end());
    ++all.chunks;
  }
  // Exhausted sources stay exhausted.
  EXPECT_FALSE(source.next_chunk(chunk));
  return all;
}

void expect_same_jobs(const std::vector<Job>& expected,
                      const std::vector<Job>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const Job& a = expected[i];
    const Job& b = actual[i];
    EXPECT_EQ(a.id, b.id) << "job " << i;
    EXPECT_EQ(a.arr, b.arr) << "job " << i;
    EXPECT_EQ(a.num, b.num) << "job " << i;
    EXPECT_EQ(a.dur, b.dur) << "job " << i;
    EXPECT_EQ(a.actual, b.actual) << "job " << i;
    EXPECT_EQ(a.type, b.type) << "job " << i;
    EXPECT_EQ(a.start, b.start) << "job " << i;
  }
}

void expect_same_eccs(const std::vector<Ecc>& expected,
                      const std::vector<Ecc>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].issue, actual[i].issue) << "ecc " << i;
    EXPECT_EQ(expected[i].job_id, actual[i].job_id) << "ecc " << i;
    EXPECT_EQ(expected[i].type, actual[i].type) << "ecc " << i;
    EXPECT_EQ(expected[i].amount, actual[i].amount) << "ecc " << i;
  }
}

void expect_counts_are_totals(const Drained& drained) {
  std::size_t total = 0;
  for (const int count : drained.ecc_counts) {
    EXPECT_GE(count, 0);
    total += static_cast<std::size_t>(count);
  }
  EXPECT_EQ(total, drained.eccs.size());
}

// --- MaterializedSource ----------------------------------------------------

TEST(MaterializedSource, DeliversWorkloadVerbatimAcrossChunkSizes) {
  GeneratorConfig config;
  config.machine_procs = 64;
  config.size.unit = 8;
  config.num_jobs = 150;
  config.seed = 7;
  config.p_extend = 0.3;
  config.p_reduce = 0.2;
  config.max_eccs_per_job = 2;
  config.p_dedicated = 0.2;
  const Workload workload = generate(config);
  ASSERT_FALSE(workload.eccs.empty());

  for (const std::size_t chunk_jobs :
       {std::size_t{1}, std::size_t{7}, std::size_t{64}, std::size_t{1000}}) {
    SCOPED_TRACE(chunk_jobs);
    MaterializedSource source(workload, chunk_jobs);
    EXPECT_EQ(source.machine_procs(), workload.machine_procs);
    EXPECT_EQ(source.granularity(), workload.granularity);
    Drained drained = drain(source);
    expect_same_jobs(workload.jobs, drained.jobs);
    expect_same_eccs(workload.eccs, drained.eccs);
    expect_counts_are_totals(drained);
  }
}

TEST(MaterializedSource, CountsCommandsOnTheJobsChunkNotTheIssueChunk) {
  // Job 1 arrives at t=0 but its command issues at t=500, inside job 3's
  // window: the command must ride in a later chunk while the *count* rides
  // with job 1.
  std::vector<Job> jobs = {es::testing::batch_job(1, 0, 4, 100),
                           es::testing::batch_job(2, 200, 4, 100),
                           es::testing::batch_job(3, 400, 4, 100),
                           es::testing::batch_job(4, 600, 4, 100)};
  Ecc ecc;
  ecc.job_id = 1;
  ecc.type = EccType::kExtendTime;
  ecc.amount = 50;
  ecc.issue = 500;
  const Workload workload = es::testing::make_workload(64, 8, jobs, {ecc});

  MaterializedSource source(workload, 1);
  SourceChunk chunk;
  ASSERT_TRUE(source.next_chunk(chunk));
  ASSERT_EQ(chunk.jobs.size(), 1u);
  EXPECT_EQ(chunk.jobs[0].id, 1);
  EXPECT_EQ(chunk.ecc_counts[0], 1);  // total ever, not in-window
  EXPECT_TRUE(chunk.eccs.empty());    // issue=500 is outside [0, 200)
  ASSERT_TRUE(source.next_chunk(chunk));  // jobs[1]: window [200, 400)
  EXPECT_TRUE(chunk.eccs.empty());
  ASSERT_TRUE(source.next_chunk(chunk));  // jobs[2]: window [400, 600)
  ASSERT_EQ(chunk.eccs.size(), 1u);
  EXPECT_EQ(chunk.eccs[0].job_id, 1);
}

TEST(MaterializedSource, NeverSplitsEqualArrivalGroups) {
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i)
    jobs.push_back(es::testing::batch_job(i + 1, 100.0 * (i / 4), 4, 50));
  const Workload workload = es::testing::make_workload(64, 8, jobs);
  MaterializedSource source(workload, 3);  // nominal chunk < group size
  SourceChunk chunk;
  while (source.next_chunk(chunk)) {
    ASSERT_EQ(chunk.jobs.size(), 4u);  // extended to the full tie group
    for (const Job& job : chunk.jobs)
      EXPECT_EQ(job.arr, chunk.jobs.front().arr);
  }
}

// --- GeneratorSource -------------------------------------------------------

TEST(GeneratorSource, MatchesGenerateExactly) {
  GeneratorConfig config;
  config.machine_procs = 64;
  config.size.unit = 8;
  config.num_jobs = 200;
  config.seed = 13;
  config.p_dedicated = 0.2;
  config.p_extend = 0.25;
  config.p_reduce = 0.25;
  config.p_extend_procs = 0.1;
  config.p_reduce_procs = 0.1;
  config.max_eccs_per_job = 3;
  const Workload workload = generate(config);

  for (const std::size_t chunk_jobs : {std::size_t{1}, std::size_t{17}}) {
    SCOPED_TRACE(chunk_jobs);
    GeneratorSource source(config, chunk_jobs);
    EXPECT_EQ(source.machine_procs(), config.machine_procs);
    Drained drained = drain(source);
    expect_same_jobs(workload.jobs, drained.jobs);
    expect_same_eccs(workload.eccs, drained.eccs);
    expect_counts_are_totals(drained);
  }
}

TEST(GeneratorSource, MatchesGenerateUnderLoadCalibration) {
  GeneratorConfig config;
  config.machine_procs = 64;
  config.size.unit = 8;
  config.num_jobs = 150;
  config.seed = 21;
  config.target_load = 0.8;
  config.p_extend = 0.2;
  const Workload workload = generate(config);

  GeneratorSource source(config, 32);
  // The calibration factor chain must replay generate()'s exact scaling.
  EXPECT_FALSE(source.scale_factors().empty());
  Drained drained = drain(source);
  expect_same_jobs(workload.jobs, drained.jobs);
  expect_same_eccs(workload.eccs, drained.eccs);
}

TEST(GeneratorSource, NoCalibrationWithoutTargetLoad) {
  GeneratorConfig config;
  config.machine_procs = 64;
  config.size.unit = 8;
  config.num_jobs = 40;
  config.seed = 2;
  GeneratorSource source(config, 16);
  EXPECT_TRUE(source.scale_factors().empty());
  Drained drained = drain(source);
  const Workload workload = generate(config);
  expect_same_jobs(workload.jobs, drained.jobs);
}

// --- SwfJobSource ----------------------------------------------------------

/// Writes `text` to a unique temp file and returns the path.
std::string write_temp_swf(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

/// A record line with the fields the importer reads.
std::string swf_line(long long id, double submit, double run, long long procs,
                     double req_time = -1, long long status = 1) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "%lld %.0f -1 %.0f %lld -1 -1 %lld %.0f -1 %lld -1 -1 -1 -1 "
                "-1 -1 -1\n",
                id, submit, run, procs, procs, req_time, status);
  return line;
}

TEST(SwfJobSource, MatchesMaterializingLoaderOnSampleTrace) {
  for (const bool import_partial : {true, false}) {
    SCOPED_TRACE(import_partial);
    SwfImportOptions import;
    import.import_partial = import_partial;
    std::vector<Job> expected = load_swf_jobs(ES_SAMPLE_TRACE, import);
    // The engine consumes normalized workloads; the source must deliver
    // the same (arr, id) order without materializing.
    std::sort(expected.begin(), expected.end(), [](const Job& a, const Job& b) {
      if (a.arr != b.arr) return a.arr < b.arr;
      return a.id < b.id;
    });

    SwfJobSource::Options options;
    options.import = import;
    options.machine_procs = 128;
    options.chunk_jobs = 16;
    SwfJobSource source(ES_SAMPLE_TRACE, options);
    Drained drained = drain(source);
    expect_same_jobs(expected, drained.jobs);
    EXPECT_EQ(source.parse_errors(), 0u);
    for (const int count : drained.ecc_counts) EXPECT_EQ(count, 0);
  }
}

TEST(SwfJobSource, CountsDropsLikeTheLoader) {
  std::string text = "; UnixStartTime: 0\n";
  text += swf_line(1, 0, 100, 4);
  text += swf_line(2, 10, -1, -1);       // unusable: no procs, no runtime
  text += swf_line(3, 20, 0, 4, -1, 0);  // failed before running
  text += swf_line(4, 30, 50, 4, 200, 0);  // partial run
  text += swf_line(5, 40, 100, 4);
  const std::string path = write_temp_swf("source_drops.swf", text);

  {
    SwfJobSource::Options options;
    options.machine_procs = 64;
    SwfJobSource source(path, options);
    Drained drained = drain(source);
    EXPECT_EQ(drained.jobs.size(), 3u);  // 1, 4 (partial kept), 5
    EXPECT_EQ(source.drops().unusable, 1u);
    EXPECT_EQ(source.drops().never_ran, 1u);
    EXPECT_EQ(source.drops().partial_disabled, 0u);
  }
  {
    SwfJobSource::Options options;
    options.machine_procs = 64;
    options.import.import_partial = false;
    SwfJobSource source(path, options);
    Drained drained = drain(source);
    EXPECT_EQ(drained.jobs.size(), 2u);  // partial now dropped too
    EXPECT_EQ(source.drops().partial_disabled, 1u);
    EXPECT_EQ(source.drops().total(), 3u);
  }
  std::remove(path.c_str());
}

TEST(SwfJobSource, ReordersLocalSubmitInversions) {
  std::string text;
  text += swf_line(1, 100, 60, 4);
  text += swf_line(2, 50, 60, 4);  // out of order, within the window
  text += swf_line(3, 150, 60, 4);
  const std::string path = write_temp_swf("source_reorder.swf", text);
  SwfJobSource::Options options;
  options.machine_procs = 64;
  options.reorder_window = 4;
  SwfJobSource source(path, options);
  Drained drained = drain(source);
  ASSERT_EQ(drained.jobs.size(), 3u);
  EXPECT_EQ(drained.jobs[0].id, 2);
  EXPECT_EQ(drained.jobs[1].id, 1);
  EXPECT_EQ(drained.jobs[2].id, 3);
  std::remove(path.c_str());
}

TEST(SwfJobSource, ThrowsWhenInversionExceedsWindow) {
  std::string text;
  for (int i = 0; i < 8; ++i) text += swf_line(i + 1, 1000 + 10 * i, 60, 4);
  text += swf_line(99, 0, 60, 4);  // displaced past any 2-record window
  const std::string path = write_temp_swf("source_inversion.swf", text);
  SwfJobSource::Options options;
  options.machine_procs = 64;
  options.chunk_jobs = 2;
  options.reorder_window = 2;
  SwfJobSource source(path, options);
  SourceChunk chunk;
  EXPECT_THROW(
      {
        while (source.next_chunk(chunk)) {
        }
      },
      std::runtime_error);
  std::remove(path.c_str());
}

TEST(SwfJobSource, ThrowsOnMissingFile) {
  SwfJobSource::Options options;
  options.machine_procs = 64;
  EXPECT_THROW(SwfJobSource("/nonexistent/trace.swf", options),
               std::runtime_error);
}

}  // namespace
}  // namespace es::workload
