#include "workload/summary.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/generator.hpp"

namespace es::workload {
namespace {

Job simple_job(JobId id, double arr, int num, double dur) {
  Job job;
  job.id = id;
  job.arr = arr;
  job.num = num;
  job.dur = dur;
  return job;
}

TEST(Summary, EmptyWorkload) {
  const WorkloadSummary summary = summarize(Workload{});
  EXPECT_EQ(summary.jobs, 0u);
  EXPECT_DOUBLE_EQ(summary.mean_size, 0);
  EXPECT_DOUBLE_EQ(summary.span, 0);
}

TEST(Summary, HandComputedValues) {
  Workload workload;
  workload.machine_procs = 20;
  workload.jobs = {simple_job(1, 0, 10, 100), simple_job(2, 100, 20, 50)};
  workload.normalize();
  const WorkloadSummary summary = summarize(workload, 15);
  EXPECT_EQ(summary.jobs, 2u);
  EXPECT_DOUBLE_EQ(summary.mean_size, 15);
  EXPECT_DOUBLE_EQ(summary.mean_runtime, 75);
  EXPECT_EQ(summary.min_size, 10);
  EXPECT_EQ(summary.max_size, 20);
  EXPECT_DOUBLE_EQ(summary.max_runtime, 100);
  EXPECT_DOUBLE_EQ(summary.small_fraction, 0.5);  // one of two <= 15
  EXPECT_DOUBLE_EQ(summary.span, 150);            // 0 .. 100+50
  EXPECT_DOUBLE_EQ(summary.mean_interarrival, 100);
  // load: (10*100 + 20*50) / (150 * 20) = 2000/3000
  EXPECT_NEAR(summary.offered_load, 2.0 / 3.0, 1e-12);
}

TEST(Summary, CountsEccKinds) {
  Workload workload;
  workload.jobs = {simple_job(1, 0, 4, 10)};
  Ecc et;
  et.job_id = 1;
  et.type = EccType::kExtendTime;
  Ecc rp;
  rp.job_id = 1;
  rp.type = EccType::kReduceProcs;
  workload.eccs = {et, rp};
  const WorkloadSummary summary = summarize(workload);
  EXPECT_EQ(summary.eccs, 2u);
  EXPECT_EQ(summary.time_eccs, 1u);
  EXPECT_EQ(summary.proc_eccs, 1u);
}

TEST(Summary, GeneratedWorkloadMatchesKnobs) {
  GeneratorConfig config;
  config.num_jobs = 2000;
  config.seed = 5;
  config.p_small = 0.7;
  config.p_dedicated = 0.3;
  config.p_extend = 0.2;
  const WorkloadSummary summary = summarize(generate(config));
  EXPECT_EQ(summary.jobs, 2000u);
  EXPECT_NEAR(summary.small_fraction, 0.7, 0.04);
  EXPECT_NEAR(static_cast<double>(summary.dedicated) / 2000.0, 0.3, 0.04);
  EXPECT_GT(summary.mean_runtime, 0);
  EXPECT_GT(summary.mean_estimate + 1e-9, summary.mean_runtime);
}

TEST(Summary, PrintedReportContainsKeyRows) {
  GeneratorConfig config;
  config.num_jobs = 100;
  config.seed = 6;
  const WorkloadSummary summary = summarize(generate(config));
  std::ostringstream out;
  print_summary(out, summary);
  const std::string text = out.str();
  EXPECT_NE(text.find("Workload summary"), std::string::npos);
  EXPECT_NE(text.find("n-bar"), std::string::npos);
  EXPECT_NE(text.find("mu-bar"), std::string::npos);
  EXPECT_NE(text.find("offered load"), std::string::npos);
  EXPECT_NE(text.find("small jobs"), std::string::npos);
}

}  // namespace
}  // namespace es::workload
