#include "workload/lublin.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace es::workload {
namespace {

TEST(RuntimeModel, MixingProbabilityFollowsTableOne) {
  const RuntimeParams params;  // Table I defaults
  // p = -0.0054 * s + 0.78, clamped.
  EXPECT_NEAR(params.mixing_p(32), 0.78 - 0.0054 * 32, 1e-12);
  EXPECT_NEAR(params.mixing_p(96), 0.78 - 0.0054 * 96, 1e-12);
  EXPECT_DOUBLE_EQ(params.mixing_p(320), 0.0);  // clamped at 0
  EXPECT_DOUBLE_EQ(params.mixing_p(0), 0.78);
}

TEST(RuntimeModel, SamplesWithinBounds) {
  const RuntimeParams params;
  util::Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const double runtime = params.sample(rng, 64);
    EXPECT_GE(runtime, params.min_runtime);
    EXPECT_LE(runtime, params.max_runtime);
  }
}

TEST(RuntimeModel, LargeJobsRunLongerOnAverage) {
  // The size correlation (p decreasing in s) must make large jobs draw from
  // the long-runtime Gamma more often.
  const RuntimeParams params;
  util::Rng rng(2);
  double small_sum = 0, large_sum = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) small_sum += params.sample(rng, 32);
  for (int i = 0; i < n; ++i) large_sum += params.sample(rng, 256);
  EXPECT_GT(large_sum / n, 2.0 * small_sum / n);
}

TEST(RuntimeModel, PureLongComponentCentersOnExpA2B2) {
  // For s with p = 0 every draw is Gamma(312, 0.03) in log space:
  // median runtime ~ e^9.36.
  const RuntimeParams params;
  util::Rng rng(3);
  double log_sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) log_sum += std::log(params.sample(rng, 320));
  EXPECT_NEAR(log_sum / n, 312 * 0.03, 0.05);
}

TEST(ArrivalProcess, StrictlyIncreasing) {
  ArrivalProcess arrivals(ArrivalParams{}, util::Rng(4));
  double last = arrivals.next();
  for (int i = 0; i < 2000; ++i) {
    const double t = arrivals.next();
    EXPECT_GT(t, last);
    last = t;
  }
}

TEST(ArrivalProcess, DeterministicForSeed) {
  ArrivalProcess a(ArrivalParams{}, util::Rng(5));
  ArrivalProcess b(ArrivalParams{}, util::Rng(5));
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.next(), b.next());
}

TEST(ArrivalProcess, BetaArrControlsRateInLogGammaMode) {
  // In Lublin's log-space mode beta_arr is the load knob: larger beta ->
  // longer log-gaps -> slower arrivals.
  ArrivalParams fast;
  fast.gap_model = GapModel::kLogGamma;
  fast.b_arr = 0.4101;
  ArrivalParams slow = fast;
  slow.b_arr = 0.6101;
  ArrivalProcess fast_arrivals(fast, util::Rng(6));
  ArrivalProcess slow_arrivals(slow, util::Rng(6));
  double fast_last = 0, slow_last = 0;
  for (int i = 0; i < 500; ++i) {
    fast_last = fast_arrivals.next();
    slow_last = slow_arrivals.next();
  }
  EXPECT_LT(fast_last, slow_last);
}

TEST(ArrivalProcess, HourlyBucketsRateSetByJobsPerHour) {
  // In bucket mode ~Gamma(a_num, b_num) jobs land per hour regardless of
  // beta_arr (which only shapes intra-hour spacing); 500 jobs at ~14.6
  // jobs/hour span roughly 34 hours.
  ArrivalProcess arrivals(ArrivalParams{}, util::Rng(6));
  double last = 0;
  for (int i = 0; i < 500; ++i) last = arrivals.next();
  const double hours = last / 3600.0;
  EXPECT_GT(hours, 20);
  EXPECT_LT(hours, 60);
}

TEST(ArrivalProcess, LogGammaFirstArrivalAtTimeZero) {
  ArrivalParams params;
  params.gap_model = GapModel::kLogGamma;
  ArrivalProcess arrivals(params, util::Rng(7));
  EXPECT_DOUBLE_EQ(arrivals.next(), 0.0);
}

TEST(ArrivalProcess, HourlyBucketsFirstArrivalWithinFirstHours) {
  ArrivalProcess arrivals(ArrivalParams{}, util::Rng(7));
  const double first = arrivals.next();
  EXPECT_GE(first, 0.0);
  EXPECT_LT(first, 3600.0 * 24);  // some hour of the first day
}

TEST(LogUniformSize, BoundsAndSerialJobs) {
  LogUniformSize model;
  model.hi = 7.0;  // 128-processor machine
  util::Rng rng(8);
  int serial = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int size = model.sample(rng);
    EXPECT_GE(size, 1);
    EXPECT_LE(size, 128);
    if (size == 1) ++serial;
  }
  // p_serial = 0.24 plus a few log-uniform draws that round to 1.
  EXPECT_GT(serial / static_cast<double>(n), 0.2);
  EXPECT_LT(serial / static_cast<double>(n), 0.4);
}

TEST(LogUniformSize, PowersOfTwoDominate) {
  LogUniformSize model;
  model.hi = 7.0;
  util::Rng rng(9);
  int pow2 = 0, parallel = 0;
  for (int i = 0; i < 20000; ++i) {
    const int size = model.sample(rng);
    if (size == 1) continue;
    ++parallel;
    if ((size & (size - 1)) == 0) ++pow2;
  }
  EXPECT_GT(pow2 / static_cast<double>(parallel), 0.7);
}

TEST(LogUniformSize, VariedNonPowerSizesExist) {
  LogUniformSize model;
  model.hi = 7.0;
  util::Rng rng(10);
  int non_pow2 = 0;
  for (int i = 0; i < 20000; ++i) {
    const int size = model.sample(rng);
    if (size > 1 && (size & (size - 1)) != 0) ++non_pow2;
  }
  EXPECT_GT(non_pow2, 100);
}


TEST(ArrivalProcess, RushHoursReceiveMoreJobsThanOffHours) {
  // ARAR thins off-hour buckets; amplify it to make the effect testable.
  ArrivalParams params;
  params.arar = 3.0;
  ArrivalProcess arrivals(params, util::Rng(11));
  int rush = 0, off = 0;
  for (int i = 0; i < 5000; ++i) {
    const double t = arrivals.next();
    const double hour = std::fmod(t / 3600.0, 24.0);
    if (hour >= params.rush_begin_hour && hour < params.rush_end_hour) {
      ++rush;
    } else {
      ++off;
    }
  }
  // Rush window covers 10/24 of the day but should hold well over half of
  // the arrivals at ARAR = 3.
  EXPECT_GT(rush, off);
}

TEST(ArrivalProcess, HourlyBucketJobsStayWithinTheirHour) {
  ArrivalProcess arrivals(ArrivalParams{}, util::Rng(12));
  double prev = -1;
  for (int i = 0; i < 1000; ++i) {
    const double t = arrivals.next();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace es::workload
