#include "workload/cwf.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace es::workload {
namespace {

const char* kSampleCwf =
    "; CWF sample\n"
    // batch submission
    "1 0 -1 100 -1 -1 -1 64 100 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 S -1\n"
    // dedicated submission: requested start 500
    "2 10 -1 200 -1 -1 -1 128 200 -1 -1 -1 -1 -1 -1 -1 -1 -1 500 S -1\n"
    // ET command for job 1 at t=50: +60 seconds
    "1 50 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 ET 60\n"
    // RT command for job 2 at t=60: -30 seconds
    "2 60 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 RT 30\n";

TEST(Cwf, ParsesSubmissionsAndEccs) {
  const CwfFile file = parse_cwf_string(kSampleCwf);
  ASSERT_EQ(file.records.size(), 4u);
  EXPECT_TRUE(file.records[0].is_submission());
  EXPECT_TRUE(file.records[1].is_submission());
  EXPECT_EQ(file.records[2].request_type, "ET");
  EXPECT_DOUBLE_EQ(file.records[2].amount, 60);
  EXPECT_DOUBLE_EQ(file.records[1].req_start_time, 500);
}

TEST(Cwf, PlainSwfLinesAreBatchSubmissions) {
  const CwfFile file = parse_cwf_string(
      "1 0 0 10 1 -1 -1 1 10 -1 1 1 1 -1 1 -1 -1 -1\n");
  ASSERT_EQ(file.records.size(), 1u);
  EXPECT_TRUE(file.records[0].is_submission());
  EXPECT_DOUBLE_EQ(file.records[0].req_start_time, -1);
}

TEST(Cwf, RejectsBadFieldCounts) {
  std::vector<SwfParseError> errors;
  parse_cwf_string("1 2 3\n", &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("18"), std::string::npos);
}

TEST(Cwf, RejectsUnknownRequestType) {
  std::vector<SwfParseError> errors;
  const CwfFile file = parse_cwf_string(
      "1 0 -1 -1 -1 -1 -1 4 10 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 XX 5\n",
      &errors);
  EXPECT_TRUE(file.records.empty());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("S/ET/EP/RT/RP"), std::string::npos);
}

TEST(Cwf, RejectsEccWithoutAmount) {
  std::vector<SwfParseError> errors;
  parse_cwf_string(
      "1 0 -1 -1 -1 -1 -1 4 10 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 ET -1\n",
      &errors);
  ASSERT_EQ(errors.size(), 1u);
}

TEST(Cwf, ToWorkloadLowersJobsAndEccs) {
  const Workload workload = to_workload(parse_cwf_string(kSampleCwf));
  ASSERT_EQ(workload.jobs.size(), 2u);
  ASSERT_EQ(workload.eccs.size(), 2u);
  EXPECT_FALSE(workload.jobs[0].dedicated());
  EXPECT_TRUE(workload.jobs[1].dedicated());
  EXPECT_DOUBLE_EQ(workload.jobs[1].start, 500);
  EXPECT_EQ(workload.eccs[0].type, EccType::kExtendTime);
  EXPECT_EQ(workload.eccs[0].job_id, 1);
  EXPECT_EQ(workload.eccs[1].type, EccType::kReduceTime);
}

TEST(Cwf, DropsEccForUnknownJob) {
  const Workload workload = to_workload(parse_cwf_string(
      "9 50 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 ET 60\n"));
  EXPECT_TRUE(workload.eccs.empty());
}

TEST(Cwf, WorkloadRoundTrip) {
  const Workload original = to_workload(parse_cwf_string(kSampleCwf));
  std::ostringstream out;
  write_cwf(out, from_workload(original));
  const Workload again = to_workload(parse_cwf_string(out.str()));
  ASSERT_EQ(again.jobs.size(), original.jobs.size());
  ASSERT_EQ(again.eccs.size(), original.eccs.size());
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    EXPECT_EQ(again.jobs[i].id, original.jobs[i].id);
    EXPECT_EQ(again.jobs[i].num, original.jobs[i].num);
    EXPECT_DOUBLE_EQ(again.jobs[i].dur, original.jobs[i].dur);
    EXPECT_EQ(again.jobs[i].dedicated(), original.jobs[i].dedicated());
  }
  for (std::size_t i = 0; i < original.eccs.size(); ++i) {
    EXPECT_EQ(again.eccs[i].job_id, original.eccs[i].job_id);
    EXPECT_EQ(again.eccs[i].type, original.eccs[i].type);
    EXPECT_DOUBLE_EQ(again.eccs[i].amount, original.eccs[i].amount);
  }
}

TEST(Cwf, FromWorkloadOrdersRecordsByTime) {
  Workload workload;
  Job early;
  early.id = 1;
  early.arr = 100;
  early.num = 4;
  early.dur = 10;
  Job late = early;
  late.id = 2;
  late.arr = 50;
  workload.jobs = {early, late};
  Ecc ecc;
  ecc.issue = 75;
  ecc.job_id = 2;
  ecc.type = EccType::kExtendTime;
  ecc.amount = 5;
  workload.eccs = {ecc};
  const CwfFile file = from_workload(workload);
  ASSERT_EQ(file.records.size(), 3u);
  EXPECT_DOUBLE_EQ(file.records[0].swf.submit_time, 50);
  EXPECT_EQ(file.records[1].request_type, "ET");
  EXPECT_DOUBLE_EQ(file.records[2].swf.submit_time, 100);
}

TEST(EccType, MnemonicsRoundTrip) {
  for (EccType type : {EccType::kExtendTime, EccType::kReduceTime,
                       EccType::kExtendProcs, EccType::kReduceProcs}) {
    EccType back;
    ASSERT_TRUE(parse_ecc_type(to_string(type), back));
    EXPECT_EQ(back, type);
  }
  EccType out;
  EXPECT_FALSE(parse_ecc_type("ZZ", out));
  EXPECT_FALSE(parse_ecc_type("et", out));  // case-sensitive mnemonics
}

}  // namespace
}  // namespace es::workload
