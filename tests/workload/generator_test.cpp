#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workload/load.hpp"

namespace es::workload {
namespace {

GeneratorConfig base_config() {
  GeneratorConfig config;
  config.num_jobs = 400;
  config.seed = 11;
  return config;
}

TEST(Generator, ProducesRequestedJobCount) {
  const Workload workload = generate(base_config());
  EXPECT_EQ(workload.jobs.size(), 400u);
  EXPECT_EQ(workload.machine_procs, 320);
  EXPECT_EQ(workload.granularity, 32);
}

TEST(Generator, JobsSortedWithSequentialIds) {
  const Workload workload = generate(base_config());
  std::set<JobId> ids;
  for (std::size_t i = 0; i < workload.jobs.size(); ++i) {
    ids.insert(workload.jobs[i].id);
    if (i > 0) {
      EXPECT_GE(workload.jobs[i].arr, workload.jobs[i - 1].arr);
    }
  }
  EXPECT_EQ(ids.size(), workload.jobs.size());
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), static_cast<JobId>(workload.jobs.size()));
}

TEST(Generator, SizesAreNodeCardMultiplesWithinMachine) {
  const Workload workload = generate(base_config());
  for (const Job& job : workload.jobs) {
    EXPECT_EQ(job.num % 32, 0);
    EXPECT_GE(job.num, 32);
    EXPECT_LE(job.num, 320);
    EXPECT_GT(job.dur, 0);
    EXPECT_GT(job.actual_runtime(), 0);
  }
}

TEST(Generator, DeterministicPerSeed) {
  const Workload a = generate(base_config());
  const Workload b = generate(base_config());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].arr, b.jobs[i].arr);
    EXPECT_EQ(a.jobs[i].num, b.jobs[i].num);
    EXPECT_DOUBLE_EQ(a.jobs[i].dur, b.jobs[i].dur);
  }
  GeneratorConfig other = base_config();
  other.seed = 12;
  const Workload c = generate(other);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    any_diff |= (a.jobs[i].num != c.jobs[i].num);
  EXPECT_TRUE(any_diff);
}

TEST(Generator, SmallJobFractionTracksPs) {
  for (double ps : {0.2, 0.8}) {
    GeneratorConfig config = base_config();
    config.num_jobs = 3000;
    config.p_small = ps;
    const Workload workload = generate(config);
    int small = 0;
    for (const Job& job : workload.jobs)
      if (job.num <= 96) ++small;
    EXPECT_NEAR(small / static_cast<double>(workload.jobs.size()), ps, 0.04);
  }
}

TEST(Generator, DedicatedFractionTracksPd) {
  GeneratorConfig config = base_config();
  config.num_jobs = 3000;
  config.p_dedicated = 0.5;
  const Workload workload = generate(config);
  EXPECT_NEAR(static_cast<double>(workload.dedicated_count()) /
                  static_cast<double>(workload.jobs.size()),
              0.5, 0.04);
  for (const Job& job : workload.jobs) {
    if (job.dedicated()) {
      EXPECT_GT(job.start, job.arr);
    } else {
      EXPECT_DOUBLE_EQ(job.start, -1);
    }
  }
}

TEST(Generator, TogglingDedicatedKeepsJobShapes) {
  // Independent RNG streams: P_D must not change sizes/durations/arrivals.
  GeneratorConfig with = base_config();
  with.p_dedicated = 0.5;
  GeneratorConfig without = base_config();
  const Workload a = generate(with);
  const Workload b = generate(without);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].num, b.jobs[i].num);
    EXPECT_DOUBLE_EQ(a.jobs[i].dur, b.jobs[i].dur);
    EXPECT_DOUBLE_EQ(a.jobs[i].arr, b.jobs[i].arr);
  }
}

TEST(Generator, EccInjectionRates) {
  GeneratorConfig config = base_config();
  config.num_jobs = 4000;
  config.p_extend = 0.2;
  config.p_reduce = 0.1;
  const Workload workload = generate(config);
  std::size_t extends = 0, reduces = 0;
  for (const Ecc& ecc : workload.eccs) {
    EXPECT_GT(ecc.amount, 0);
    EXPECT_GE(ecc.job_id, 1);
    if (ecc.type == EccType::kExtendTime) ++extends;
    if (ecc.type == EccType::kReduceTime) ++reduces;
  }
  EXPECT_EQ(extends + reduces, workload.eccs.size());
  EXPECT_NEAR(static_cast<double>(extends) / 4000.0, 0.2, 0.03);
  EXPECT_NEAR(static_cast<double>(reduces) / 4000.0, 0.1, 0.02);
}

TEST(Generator, EccIssueTimesWithinJobWindow) {
  GeneratorConfig config = base_config();
  config.p_extend = 0.3;
  config.p_reduce = 0.2;
  const Workload workload = generate(config);
  ASSERT_FALSE(workload.eccs.empty());
  for (const Ecc& ecc : workload.eccs) {
    const Job& job =
        workload.jobs[static_cast<std::size_t>(ecc.job_id - 1)];
    EXPECT_EQ(job.id, ecc.job_id);
    EXPECT_GE(ecc.issue, job.arr);
    EXPECT_LE(ecc.issue, job.arr + job.dur);
  }
}

TEST(Generator, ReductionsKeepJobsViable) {
  GeneratorConfig config = base_config();
  config.p_reduce = 1.0;
  config.p_extend = 0.0;
  const Workload workload = generate(config);
  for (const Ecc& ecc : workload.eccs) {
    const Job& job =
        workload.jobs[static_cast<std::size_t>(ecc.job_id - 1)];
    EXPECT_LE(ecc.amount, 0.9 * job.dur + 1.0);
  }
}

TEST(Generator, EstimateFactorInflatesRequestedTime) {
  GeneratorConfig config = base_config();
  config.estimate_factor = 2.0;
  const Workload workload = generate(config);
  for (const Job& job : workload.jobs)
    EXPECT_NEAR(job.dur, 2.0 * job.actual, 1e-9);
}

TEST(Generator, TargetLoadCalibration) {
  for (double target : {0.5, 0.9}) {
    GeneratorConfig config = base_config();
    config.target_load = target;
    const Workload workload = generate(config);
    EXPECT_NEAR(offered_load(workload, config.machine_procs), target,
                0.02 * target);
  }
}

TEST(GeneratorSdscLike, ShapeMatchesSp2Machine) {
  const Workload workload = generate_sdsc_like(600, 128, 21);
  EXPECT_EQ(workload.machine_procs, 128);
  EXPECT_EQ(workload.granularity, 1);
  EXPECT_EQ(workload.jobs.size(), 600u);
  EXPECT_TRUE(workload.eccs.empty());
  for (const Job& job : workload.jobs) {
    EXPECT_GE(job.num, 1);
    EXPECT_LE(job.num, 128);
    EXPECT_FALSE(job.dedicated());
  }
  EXPECT_EQ(workload.dedicated_count(), 0u);
}

TEST(GeneratorSdscLike, Deterministic) {
  const Workload a = generate_sdsc_like(100, 128, 3);
  const Workload b = generate_sdsc_like(100, 128, 3);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].num, b.jobs[i].num);
    EXPECT_DOUBLE_EQ(a.jobs[i].arr, b.jobs[i].arr);
  }
}


TEST(Generator, UniformEstimateModel) {
  GeneratorConfig config = base_config();
  config.num_jobs = 2000;
  config.estimate_uniform_max = 3.0;
  const Workload workload = generate(config);
  double ratio_sum = 0;
  for (const Job& job : workload.jobs) {
    const double ratio = job.dur / job.actual;
    EXPECT_GE(ratio, 1.0);
    EXPECT_LE(ratio, 3.0);
    ratio_sum += ratio;
  }
  // U(1,3) has mean 2.
  EXPECT_NEAR(ratio_sum / static_cast<double>(workload.jobs.size()), 2.0,
              0.05);
}

TEST(Generator, UniformEstimateModelKeepsOtherStreams) {
  // Turning estimate noise on must not change sizes/runtimes/arrivals.
  GeneratorConfig noisy = base_config();
  noisy.estimate_uniform_max = 3.0;
  const Workload a = generate(noisy);
  const Workload b = generate(base_config());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].num, b.jobs[i].num);
    EXPECT_DOUBLE_EQ(a.jobs[i].actual, b.jobs[i].actual);
    EXPECT_DOUBLE_EQ(a.jobs[i].arr, b.jobs[i].arr);
  }
}

}  // namespace
}  // namespace es::workload
