// File-based tests against the checked-in archive-style sample trace
// (data/sample_sp2.swf): exercises the disk loaders, header metadata, and
// an end-to-end replay including a killed (under-estimated) job.
#include <gtest/gtest.h>

#include <fstream>

#include "testing/helpers.hpp"
#include "workload/cwf.hpp"
#include "workload/swf.hpp"

namespace es::workload {
namespace {

// The build runs tests from the build tree; the data file is addressed
// relative to this source file via the configure-time definition.
#ifndef ES_SAMPLE_TRACE
#define ES_SAMPLE_TRACE "data/sample_sp2.swf"
#endif

TEST(SampleTrace, LoadsAllJobs) {
  const std::vector<Job> jobs = load_swf_jobs(ES_SAMPLE_TRACE);
  ASSERT_EQ(jobs.size(), 20u);
  EXPECT_EQ(jobs.front().id, 1);
  EXPECT_EQ(jobs.front().num, 8);
  EXPECT_DOUBLE_EQ(jobs.front().dur, 7200);    // requested
  EXPECT_DOUBLE_EQ(jobs.front().actual, 3600); // actual
}

TEST(SampleTrace, HeaderMetadata) {
  std::ifstream in(ES_SAMPLE_TRACE);
  ASSERT_TRUE(in.good());
  const SwfFile file = parse_swf(in);
  const SwfMetadata metadata = parse_swf_metadata(file.header);
  EXPECT_EQ(metadata.max_procs, 64);
  EXPECT_EQ(metadata.max_nodes, 64);
  EXPECT_EQ(metadata.unix_start_time, 820454400);
  EXPECT_NE(metadata.computer.find("Toy SP2"), std::string::npos);
}

TEST(SampleTrace, LoadsAsCwfWithMachineFromHeader) {
  const Workload workload = load_cwf_workload(ES_SAMPLE_TRACE);
  EXPECT_EQ(workload.jobs.size(), 20u);
  EXPECT_EQ(workload.machine_procs, 64);  // from MaxProcs
  EXPECT_EQ(workload.granularity, 1);
  EXPECT_EQ(workload.dedicated_count(), 0u);
}

TEST(SampleTrace, ReplaysUnderEveryBatchAlgorithm) {
  const Workload workload = load_cwf_workload(ES_SAMPLE_TRACE);
  for (const char* algorithm : {"FCFS", "EASY", "CONS", "LOS", "Delayed-LOS"}) {
    const auto scenario = es::testing::run_scenario(workload, algorithm);
    EXPECT_EQ(scenario.result.completed + scenario.result.killed, 20u)
        << algorithm;
    // Job 10 under-estimates (actual 4500 > requested 3600): killed.
    EXPECT_TRUE(scenario.job(10).killed) << algorithm;
    EXPECT_DOUBLE_EQ(scenario.job(10).finished - scenario.job(10).started,
                     3600)
        << algorithm;
    // Job 5 over-estimates heavily (60 actual vs 600 requested): completes
    // at its actual runtime.
    EXPECT_FALSE(scenario.job(5).killed) << algorithm;
    EXPECT_DOUBLE_EQ(scenario.job(5).finished - scenario.job(5).started, 60)
        << algorithm;
    EXPECT_LE(es::testing::peak_allocation(scenario.result), 64)
        << algorithm;
  }
}

TEST(SampleTrace, FullMachineJobSerializesSchedule) {
  const Workload workload = load_cwf_workload(ES_SAMPLE_TRACE);
  const auto scenario = es::testing::run_scenario(workload, "EASY");
  // Jobs 7 and 20 need all 64 processors: nothing may overlap them.
  for (const auto& [id, job] : scenario.by_id) {
    if (id == 7 || id == 20) continue;
    const auto& full = scenario.job(7);
    const bool overlaps =
        job.started < full.finished && full.started < job.finished;
    EXPECT_FALSE(overlaps) << "job " << id << " overlaps the 64-proc job";
  }
}

}  // namespace
}  // namespace es::workload
