#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace es::workload {
namespace {

const char* kSampleSwf =
    "; Version: 2\n"
    "; Computer: Toy SP2\n"
    "1 0 10 100 8 -1 -1 8 120 -1 1 3 1 -1 1 -1 -1 -1\n"
    "2 50 0 200 16 -1 -1 16 300 -1 1 4 1 -1 1 -1 -1 -1\n";

TEST(Swf, ParsesRecordsAndHeader) {
  const SwfFile file = parse_swf_string(kSampleSwf);
  ASSERT_EQ(file.records.size(), 2u);
  EXPECT_EQ(file.header.size(), 2u);
  EXPECT_EQ(file.header[0], "Version: 2");
  const SwfRecord& r = file.records[0];
  EXPECT_EQ(r.job_number, 1);
  EXPECT_DOUBLE_EQ(r.submit_time, 0);
  EXPECT_DOUBLE_EQ(r.wait_time, 10);
  EXPECT_DOUBLE_EQ(r.run_time, 100);
  EXPECT_EQ(r.used_procs, 8);
  EXPECT_EQ(r.req_procs, 8);
  EXPECT_DOUBLE_EQ(r.req_time, 120);
  EXPECT_EQ(r.status, 1);
  EXPECT_EQ(r.user_id, 3);
}

TEST(Swf, SkipsBlankAndCommentLines) {
  const SwfFile file = parse_swf_string(
      "\n; comment\n\n1 0 0 10 1 -1 -1 1 10 -1 1 1 1 -1 1 -1 -1 -1\n\n");
  EXPECT_EQ(file.records.size(), 1u);
}

TEST(Swf, HandlesCrlf) {
  const SwfFile file = parse_swf_string(
      "1 0 0 10 1 -1 -1 1 10 -1 1 1 1 -1 1 -1 -1 -1\r\n");
  ASSERT_EQ(file.records.size(), 1u);
  EXPECT_DOUBLE_EQ(file.records[0].think_time, -1);
}

TEST(Swf, ReportsMalformedLines) {
  std::vector<SwfParseError> errors;
  const SwfFile file = parse_swf_string(
      "1 0 0 10 1 -1 -1 1 10 -1 1 1 1 -1 1 -1 -1 -1\n"
      "not a record\n"
      "2 0 0\n",
      &errors);
  EXPECT_EQ(file.records.size(), 1u);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].line_number, 2u);
  EXPECT_EQ(errors[1].line_number, 3u);
}

TEST(Swf, AcceptsExtraTrailingFields) {
  // 21-field CWF lines still parse as SWF (prefix).
  SwfRecord record;
  std::string message;
  EXPECT_TRUE(parse_swf_record(
      "1 0 0 10 1 -1 -1 1 10 -1 1 1 1 -1 1 -1 -1 -1 -1 S -1", record,
      message));
  EXPECT_EQ(record.job_number, 1);
}

TEST(Swf, RoundTripsThroughFormat) {
  const SwfFile file = parse_swf_string(kSampleSwf);
  std::ostringstream out;
  write_swf(out, file);
  const SwfFile again = parse_swf_string(out.str());
  ASSERT_EQ(again.records.size(), file.records.size());
  for (std::size_t i = 0; i < file.records.size(); ++i) {
    EXPECT_EQ(again.records[i].job_number, file.records[i].job_number);
    EXPECT_DOUBLE_EQ(again.records[i].submit_time,
                     file.records[i].submit_time);
    EXPECT_EQ(again.records[i].req_procs, file.records[i].req_procs);
    EXPECT_DOUBLE_EQ(again.records[i].req_time, file.records[i].req_time);
  }
  EXPECT_EQ(again.header, file.header);
}

TEST(Swf, ToJobUsesRequestedFields) {
  const SwfFile file = parse_swf_string(kSampleSwf);
  Job job;
  ASSERT_TRUE(to_job(file.records[0], job));
  EXPECT_EQ(job.id, 1);
  EXPECT_EQ(job.num, 8);
  EXPECT_DOUBLE_EQ(job.dur, 120);       // requested time
  EXPECT_DOUBLE_EQ(job.actual, 100);    // actual runtime
  EXPECT_FALSE(job.dedicated());
}

TEST(Swf, ToJobFallsBackToUsedValues) {
  SwfRecord record;
  record.job_number = 9;
  record.submit_time = 5;
  record.used_procs = 4;   // no req_procs
  record.run_time = 60;    // no req_time
  Job job;
  ASSERT_TRUE(to_job(record, job));
  EXPECT_EQ(job.num, 4);
  EXPECT_DOUBLE_EQ(job.dur, 60);
}

TEST(Swf, ToJobRejectsUnusableRecords) {
  SwfRecord record;
  record.job_number = 9;
  Job job;
  EXPECT_FALSE(to_job(record, job));  // no size, no time
  record.req_procs = 4;
  EXPECT_FALSE(to_job(record, job));  // still no time
  record.req_time = 10;
  EXPECT_TRUE(to_job(record, job));
}

TEST(Swf, FromJobRoundTrips) {
  Job job;
  job.id = 77;
  job.arr = 123;
  job.num = 64;
  job.dur = 500;
  job.actual = 400;
  const SwfRecord record = from_job(job);
  Job back;
  ASSERT_TRUE(to_job(record, back));
  EXPECT_EQ(back.id, 77);
  EXPECT_DOUBLE_EQ(back.arr, 123);
  EXPECT_EQ(back.num, 64);
  EXPECT_DOUBLE_EQ(back.dur, 500);
  EXPECT_DOUBLE_EQ(back.actual, 400);
}

TEST(Swf, AcceptsDecimalIntegers) {
  SwfRecord record;
  std::string message;
  ASSERT_TRUE(parse_swf_record(
      "1 0 0 10 4.0 -1 -1 4.0 10 -1 1 1 1 -1 1 -1 -1 -1", record, message));
  EXPECT_EQ(record.used_procs, 4);
}


TEST(SwfMetadata, ParsesStandardHeaderKeys) {
  const SwfMetadata metadata = parse_swf_metadata(
      {"Version: 2.2", "Computer: IBM SP2", "Installation: SDSC",
       "MaxProcs: 128", "MaxNodes: 64", "UnixStartTime: 893457586"});
  EXPECT_EQ(metadata.max_procs, 128);
  EXPECT_EQ(metadata.max_nodes, 64);
  EXPECT_EQ(metadata.unix_start_time, 893457586);
  EXPECT_EQ(metadata.computer, "IBM SP2");
  EXPECT_EQ(metadata.installation, "SDSC");
}

TEST(SwfMetadata, CaseInsensitiveAndTolerant) {
  const SwfMetadata metadata =
      parse_swf_metadata({"maxprocs:  320  ", "COMPUTER:BlueGene/P"});
  EXPECT_EQ(metadata.max_procs, 320);
  EXPECT_EQ(metadata.computer, "BlueGene/P");
}

TEST(SwfMetadata, MissingFieldsDefault) {
  const SwfMetadata metadata = parse_swf_metadata({"Note: nothing useful"});
  EXPECT_EQ(metadata.max_procs, -1);
  EXPECT_EQ(metadata.max_nodes, -1);
  EXPECT_TRUE(metadata.computer.empty());
}

TEST(SwfMetadata, NonNumericCountIsMinusOne) {
  const SwfMetadata metadata = parse_swf_metadata({"MaxProcs: unknown"});
  EXPECT_EQ(metadata.max_procs, -1);
}

}  // namespace
}  // namespace es::workload
