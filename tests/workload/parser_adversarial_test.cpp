// Adversarial trace ingestion: truncated lines, non-finite and overflowing
// numbers, negative sizes, CRLF endings, and status-aware record lowering.
#include <gtest/gtest.h>

#include <string>

#include "workload/cwf.hpp"
#include "workload/swf.hpp"

namespace es::workload {
namespace {

std::string line18(const std::string& field_value, int field_index) {
  // A valid 18-field line with one field replaced (1-based index).
  std::string line;
  for (int i = 1; i <= 18; ++i) {
    if (i > 1) line += ' ';
    line += i == field_index ? field_value : "1";
  }
  return line;
}

TEST(SwfAdversarial, TruncatedLineReportsFieldCount) {
  SwfRecord record;
  std::string message;
  EXPECT_FALSE(parse_swf_record("1 2 3 4 5 6 7 8 9 10", record, message));
  EXPECT_NE(message.find("expected 18 fields, got 10"), std::string::npos)
      << message;
}

TEST(SwfAdversarial, NonFiniteValuesAreRejectedWithFieldName) {
  SwfRecord record;
  std::string message;
  EXPECT_FALSE(parse_swf_record(line18("nan", 4), record, message));
  EXPECT_NE(message.find("field 4 (run_time)"), std::string::npos) << message;
  EXPECT_NE(message.find("'nan'"), std::string::npos) << message;

  EXPECT_FALSE(parse_swf_record(line18("inf", 9), record, message));
  EXPECT_NE(message.find("field 9 (req_time)"), std::string::npos) << message;

  EXPECT_FALSE(parse_swf_record(line18("-inf", 2), record, message));
  EXPECT_NE(message.find("field 2 (submit_time)"), std::string::npos)
      << message;
}

TEST(SwfAdversarial, OverflowingNumberIsRejected) {
  // 1e400 overflows double to infinity — must be refused, not imported.
  SwfRecord record;
  std::string message;
  EXPECT_FALSE(parse_swf_record(line18("1e400", 2), record, message));
  EXPECT_NE(message.find("field 2 (submit_time)"), std::string::npos)
      << message;
}

TEST(SwfAdversarial, GarbageTokenNamesFieldAndToken) {
  SwfRecord record;
  std::string message;
  EXPECT_FALSE(parse_swf_record(line18("12x", 5), record, message));
  EXPECT_NE(message.find("field 5 (used_procs)"), std::string::npos)
      << message;
  EXPECT_NE(message.find("'12x'"), std::string::npos) << message;
}

TEST(SwfAdversarial, HugeButFiniteValuesParse) {
  SwfRecord record;
  std::string message;
  EXPECT_TRUE(parse_swf_record(line18("1e300", 9), record, message))
      << message;
  EXPECT_DOUBLE_EQ(record.req_time, 1e300);
}

TEST(SwfAdversarial, MalformedLinesAreSkippedWithLineNumbers) {
  const std::string text =
      "; MaxProcs: 64\n"
      "1 0 0 10 4 -1 -1 4 10 -1 1 1 1 1 1 1 -1 -1\n"
      "2 0 0 nan 4 -1 -1 4 10 -1 1 1 1 1 1 1 -1 -1\n"
      "3 0 0 10 4 -1 -1 4 10 -1 1 1 1 1 1 1 -1 -1\n";
  std::vector<SwfParseError> errors;
  const SwfFile file = parse_swf_string(text, &errors);
  EXPECT_EQ(file.records.size(), 2u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].line_number, 3u);
  EXPECT_NE(errors[0].message.find("run_time"), std::string::npos);
}

TEST(SwfAdversarial, CrlfEndingsParseCleanly) {
  const std::string text =
      "; Computer: test\r\n"
      "1 0 0 10 4 -1 -1 4 10 -1 1 1 1 1 1 1 -1 -1\r\n"
      "2 5 0 10 4 -1 -1 4 10 -1 1 1 1 1 1 1 -1 -1\r\n";
  std::vector<SwfParseError> errors;
  const SwfFile file = parse_swf_string(text, &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(file.records.size(), 2u);
  EXPECT_EQ(file.records[1].job_number, 2);
}

SwfRecord record_with_status(long long status, double run_time) {
  SwfRecord record;
  record.job_number = 1;
  record.submit_time = 0;
  record.run_time = run_time;
  record.req_procs = 4;
  record.req_time = 100;
  record.status = status;
  return record;
}

TEST(SwfStatus, CancelledRecordThatNeverRanIsDropped) {
  Job job;
  SwfDropReason reason = SwfDropReason::kNone;
  EXPECT_FALSE(to_job(record_with_status(5, -1), job, {}, &reason));
  EXPECT_EQ(reason, SwfDropReason::kNeverRan);
  EXPECT_FALSE(to_job(record_with_status(0, 0), job, {}, &reason));
  EXPECT_EQ(reason, SwfDropReason::kNeverRan);
}

TEST(SwfStatus, FailedRecordThatRanImportsItsPartialRuntimeByDefault) {
  Job job;
  SwfDropReason reason = SwfDropReason::kNone;
  ASSERT_TRUE(to_job(record_with_status(0, 40), job, {}, &reason));
  EXPECT_EQ(reason, SwfDropReason::kNone);
  EXPECT_DOUBLE_EQ(job.dur, 100);     // the user's estimate
  EXPECT_DOUBLE_EQ(job.actual, 40);   // the partial execution
}

TEST(SwfStatus, ImportPartialFlagDropsEarlyTerminatedRuns) {
  Job job;
  SwfImportOptions options;
  options.import_partial = false;
  SwfDropReason reason = SwfDropReason::kNone;
  EXPECT_FALSE(to_job(record_with_status(5, 40), job, options, &reason));
  EXPECT_EQ(reason, SwfDropReason::kPartialDisabled);
  // Completed records are untouched by the flag.
  EXPECT_TRUE(to_job(record_with_status(1, 40), job, options, &reason));
}

TEST(SwfStatus, UnusableRecordReportsReason) {
  SwfRecord record = record_with_status(1, -1);
  record.req_procs = -1;
  record.used_procs = -1;
  Job job;
  SwfDropReason reason = SwfDropReason::kNone;
  EXPECT_FALSE(to_job(record, job, {}, &reason));
  EXPECT_EQ(reason, SwfDropReason::kUnusable);
}

TEST(CwfAdversarial, NonFiniteExtensionFieldsAreRejected) {
  std::vector<SwfParseError> errors;
  const std::string base = "1 0 0 10 4 -1 -1 4 10 -1 1 1 1 1 1 1 -1 -1";
  parse_cwf_string(base + " nan S -1\n", &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("field 19"), std::string::npos)
      << errors[0].message;
  errors.clear();
  parse_cwf_string(base + " -1 ET inf\n", &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("field 21"), std::string::npos)
      << errors[0].message;
}

TEST(CwfAdversarial, NonFinitePrefixFieldNamesTheColumn) {
  std::vector<SwfParseError> errors;
  parse_cwf_string("1 inf 0 10 4 -1 -1 4 10 -1 1 1 1 1 1 1 -1 -1 -1 S -1\n",
                   &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("field 2 (submit_time)"),
            std::string::npos)
      << errors[0].message;
}

}  // namespace
}  // namespace es::workload
