// Scenario serialization: the corpus contract.  A scenario must round-trip
// through its file format bit-identically — the in-memory scenario the
// fuzzer ran IS the file the corpus commits and `simrun --scenario` replays.
#include "fuzz/scenario.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fuzz/hostile.hpp"

namespace es::fuzz {
namespace {

std::filesystem::path temp_path(const std::string& leaf) {
  return std::filesystem::path(::testing::TempDir()) / leaf;
}

TEST(ScenarioFormat, RoundTripsEveryHostileFamily) {
  for (const std::string& family : family_names()) {
    const Scenario original = make_scenario(family, 3);
    const std::string once = format_scenario(original);
    const Scenario reparsed = parse_scenario(once);
    // Bit-identical re-serialization: parse(format(s)) loses nothing.
    EXPECT_EQ(format_scenario(reparsed), once) << family;
    EXPECT_EQ(reparsed.name, original.name);
    EXPECT_EQ(reparsed.family, original.family);
    EXPECT_EQ(reparsed.seed, original.seed);
    EXPECT_EQ(reparsed.expect_completion, original.expect_completion);
    EXPECT_EQ(reparsed.workload.jobs.size(), original.workload.jobs.size());
    EXPECT_EQ(reparsed.workload.eccs.size(), original.workload.eccs.size());
    EXPECT_EQ(reparsed.engine.machine_procs, original.engine.machine_procs);
    EXPECT_EQ(reparsed.engine.requeue, original.engine.requeue);
    EXPECT_EQ(reparsed.engine.failure.enabled, original.engine.failure.enabled);
    EXPECT_EQ(reparsed.engine.failure.script.size(),
              original.engine.failure.script.size());
    EXPECT_EQ(reparsed.engine.checkpoint.enabled,
              original.engine.checkpoint.enabled);
    EXPECT_EQ(reparsed.engine.watchdog.max_events,
              original.engine.watchdog.max_events);
  }
}

TEST(ScenarioFormat, SaveLoadRoundTrip) {
  const Scenario original = make_scenario("outage_cascade", 11);
  const std::string path = temp_path("roundtrip.scn").string();
  ASSERT_TRUE(save_scenario(path, original));
  const Scenario loaded = load_scenario(path);
  EXPECT_EQ(format_scenario(loaded), format_scenario(original));
}

TEST(ScenarioFormat, ParseRejectsUnknownKey) {
  const std::string text = format_scenario(make_scenario("flash_crowd", 1));
  EXPECT_THROW(parse_scenario("mystery-knob = 7\n" + text), ScenarioError);
}

TEST(ScenarioFormat, ParseRejectsMissingWorkloadSection) {
  EXPECT_THROW(parse_scenario("# elastisched scenario v1\n"
                              "scenario-version = 1\n"
                              "name = x\n"),
               ScenarioError);
}

TEST(ScenarioFormat, ParseRejectsMalformedCwfLine) {
  std::string text = format_scenario(make_scenario("heavy_tail", 2));
  text += "not a cwf line at all\n";
  EXPECT_THROW(parse_scenario(text), ScenarioError);
}

TEST(ScenarioFormat, ParseRejectsJobWiderThanMachine) {
  Scenario scenario = make_scenario("flash_crowd", 5);
  scenario.workload.jobs.front().num = scenario.workload.machine_procs * 2;
  EXPECT_THROW(parse_scenario(format_scenario(scenario)), ScenarioError);
}

TEST(ScenarioFormat, LoadDistinguishesIoFromValidation) {
  // Missing file: I/O, reported as a plain runtime_error (simrun exit 3)...
  EXPECT_THROW(load_scenario(temp_path("nonexistent.scn").string()),
               std::runtime_error);
  // ...while malformed content is a ScenarioError (simrun exit 2).
  const std::string bad = temp_path("bad.scn").string();
  std::ofstream(bad) << "scenario-version = 99\n";
  EXPECT_THROW(load_scenario(bad), ScenarioError);
}

TEST(ScenarioFormat, ListCorpusSortsAndFilters) {
  const auto dir = temp_path("corpus_list_test");
  std::filesystem::create_directories(dir);
  std::ofstream(dir / "b.scn") << "x";
  std::ofstream(dir / "a.scn") << "x";
  std::ofstream(dir / "notes.txt") << "x";
  const std::vector<std::string> paths = list_corpus(dir.string());
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_TRUE(paths[0].ends_with("a.scn"));
  EXPECT_TRUE(paths[1].ends_with("b.scn"));
}

TEST(HostileFamilies, DeterministicBySeed) {
  for (const std::string& family : family_names()) {
    EXPECT_EQ(format_scenario(make_scenario(family, 42)),
              format_scenario(make_scenario(family, 42)))
        << family;
    EXPECT_NE(format_scenario(make_scenario(family, 1)),
              format_scenario(make_scenario(family, 2)))
        << family;
  }
}

TEST(HostileFamilies, UnknownFamilyThrows) {
  EXPECT_THROW(make_scenario("volcano", 1), ScenarioError);
}

TEST(HostileFamilies, EccStormCarriesSameInstantConflicts) {
  // The family's reason to exist: at least one job with two same-instant
  // commands in the same dimension (the conflict shield's target).
  const Scenario scenario = make_scenario("ecc_storm", 1);
  bool found = false;
  const auto& eccs = scenario.workload.eccs;
  for (std::size_t i = 1; i < eccs.size() && !found; ++i) {
    found = eccs[i].job_id == eccs[i - 1].job_id &&
            eccs[i].issue == eccs[i - 1].issue &&
            eccs[i].time_dimension() == eccs[i - 1].time_dimension();
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace es::fuzz
