// Oracle and shrinker behavior: the atlas's verdict machinery itself.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/factory.hpp"
#include "fuzz/hostile.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "workload/generator.hpp"

namespace es::fuzz {
namespace {

workload::Workload small_workload(std::uint64_t seed, std::size_t jobs = 30,
                                  double p_extend = 0.0) {
  workload::GeneratorConfig config;
  config.num_jobs = jobs;
  config.seed = seed;
  config.p_extend = p_extend;
  return workload::generate(config);
}

Scenario basic_scenario(std::uint64_t seed) {
  Scenario scenario;
  scenario.name = "basic-" + std::to_string(seed);
  scenario.family = "test";
  scenario.seed = seed;
  scenario.workload = small_workload(seed);
  scenario.engine.machine_procs = scenario.workload.machine_procs;
  scenario.engine.granularity = scenario.workload.granularity;
  return scenario;
}

TEST(Oracle, GreenOnBenignScenario) {
  const Scenario scenario = basic_scenario(7);
  const RunReport report = check_run(scenario, "LOS-E");
  EXPECT_TRUE(report.ran);
  EXPECT_TRUE(report.ok()) << report.violations.front().check << ": "
                           << report.violations.front().detail;
  EXPECT_EQ(report.result.completed + report.result.killed,
            scenario.workload.jobs.size());
}

TEST(Oracle, SkipsAlgorithmsThatCannotRunDedicatedJobs) {
  const Scenario scenario = make_scenario("dedicated_saturation", 1);
  EXPECT_FALSE(algorithm_supports(scenario, "FCFS"));
  EXPECT_TRUE(algorithm_supports(scenario, "EASY-D"));
  const RunReport skipped = check_run(scenario, "FCFS");
  EXPECT_FALSE(skipped.ran);
  EXPECT_TRUE(skipped.ok());
}

TEST(Oracle, FlagsWatchdogAbortAsViolationWhenCompletionExpected) {
  Scenario scenario = basic_scenario(3);
  scenario.engine.watchdog.max_events = 10;  // guaranteed to trip
  const RunReport report = check_run(scenario, "EASY");
  ASSERT_TRUE(report.ran);
  const bool flagged = std::any_of(
      report.violations.begin(), report.violations.end(),
      [](const Violation& v) { return v.check == "watchdog-abort"; });
  EXPECT_TRUE(flagged);
}

TEST(Oracle, WatchdogAbortToleratedWhenCompletionNotExpected) {
  Scenario scenario = basic_scenario(3);
  scenario.engine.watchdog.max_events = 10;
  scenario.expect_completion = false;
  const RunReport report = check_run(scenario, "EASY");
  ASSERT_TRUE(report.ran);
  for (const Violation& v : report.violations)
    EXPECT_NE(v.check, "watchdog-abort") << v.detail;
}

TEST(Oracle, CrossChecksGreenAcrossThePanel) {
  const Scenario scenario = basic_scenario(5);
  std::vector<RunReport> reports;
  for (const std::string& algorithm : core::algorithm_names())
    reports.push_back(check_run(scenario, algorithm));
  const std::vector<Violation> cross = check_cross(scenario, reports);
  EXPECT_TRUE(cross.empty())
      << cross.front().check << ": " << cross.front().detail;
}

TEST(Oracle, CrossCheckCatchesDivergentJobSets) {
  const Scenario scenario = basic_scenario(5);
  std::vector<RunReport> reports;
  reports.push_back(check_run(scenario, "EASY"));
  reports.push_back(check_run(scenario, "LOS"));
  reports.back().result.jobs.pop_back();  // simulate a lost job
  const std::vector<Violation> cross = check_cross(scenario, reports);
  const bool flagged =
      std::any_of(cross.begin(), cross.end(), [](const Violation& v) {
        return v.check == "cross-job-set";
      });
  EXPECT_TRUE(flagged);
}

TEST(Shrink, MinimizesToTheOneRelevantJob) {
  Scenario scenario = basic_scenario(11);
  const workload::JobId target =
      scenario.workload.jobs[scenario.workload.jobs.size() / 2].id;
  const auto still_fails = [target](const Scenario& candidate) {
    return std::any_of(candidate.workload.jobs.begin(),
                       candidate.workload.jobs.end(),
                       [target](const workload::Job& job) {
                         return job.id == target;
                       });
  };
  const ShrinkResult result = shrink(scenario, still_fails);
  ASSERT_EQ(result.scenario.workload.jobs.size(), 1u);
  EXPECT_EQ(result.scenario.workload.jobs.front().id, target);
  EXPECT_TRUE(result.scenario.name.ends_with("-min"));
  EXPECT_EQ(result.removed, scenario.workload.jobs.size() - 1);
}

TEST(Shrink, DropsEccsOrphanedByRemovedJobs) {
  Scenario scenario = basic_scenario(13);
  scenario.workload = small_workload(13, 30, /*p_extend=*/0.5);
  ASSERT_GT(scenario.workload.eccs.size(), 0u);
  const workload::JobId target = scenario.workload.jobs.front().id;
  const auto still_fails = [target](const Scenario& candidate) {
    return std::any_of(candidate.workload.jobs.begin(),
                       candidate.workload.jobs.end(),
                       [target](const workload::Job& job) {
                         return job.id == target;
                       });
  };
  const ShrinkResult result = shrink(scenario, still_fails);
  for (const workload::Ecc& ecc : result.scenario.workload.eccs) {
    const bool owned = std::any_of(result.scenario.workload.jobs.begin(),
                                   result.scenario.workload.jobs.end(),
                                   [&ecc](const workload::Job& job) {
                                     return job.id == ecc.job_id;
                                   });
    EXPECT_TRUE(owned) << "orphaned ECC for job " << ecc.job_id;
  }
}

TEST(Shrink, MinimizesScriptedOutages) {
  Scenario scenario = basic_scenario(17);
  scenario.engine.failure.enabled = true;
  for (int i = 0; i < 6; ++i) {
    fault::Outage outage;
    outage.down = 1000.0 * (i + 1);
    outage.up = outage.down + 500.0;
    outage.procs = 32 * (1 + i % 3);
    scenario.engine.failure.script.push_back(outage);
  }
  const auto still_fails = [](const Scenario& candidate) {
    return std::any_of(candidate.engine.failure.script.begin(),
                       candidate.engine.failure.script.end(),
                       [](const fault::Outage& outage) {
                         return outage.procs == 96;
                       });
  };
  const ShrinkResult result = shrink(scenario, still_fails);
  // Jobs are irrelevant to this predicate, so they all go; one outage stays.
  EXPECT_TRUE(result.scenario.workload.jobs.empty());
  ASSERT_EQ(result.scenario.engine.failure.script.size(), 1u);
  EXPECT_EQ(result.scenario.engine.failure.script.front().procs, 96);
}

TEST(Shrink, RespectsTheTestBudget) {
  Scenario scenario = basic_scenario(19);
  std::size_t calls = 0;
  const auto still_fails = [&calls](const Scenario&) {
    ++calls;
    return true;  // everything "fails": worst case for ddmin
  };
  const ShrinkResult result = shrink(scenario, still_fails, /*budget=*/10);
  EXPECT_LE(result.tests, 10u);
  EXPECT_EQ(calls, result.tests);
}

}  // namespace
}  // namespace es::fuzz
