// Requeue policies under correlated multi-node outages, checked through the
// atlas oracle: whatever the policy (head / tail / abandon) and however the
// retry budget runs out, every job is accounted for exactly once and every
// engine invariant holds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/oracle.hpp"
#include "fuzz/scenario.hpp"
#include "workload/generator.hpp"

namespace es::fuzz {
namespace {

// A deterministic cascade: three correlated outages, each downing several
// node cards at once, timed to land while the workload is still running.
Scenario cascade_scenario(fault::RequeuePolicy policy, int retry_cap) {
  Scenario scenario;
  scenario.name = "cascade-test";
  scenario.family = "test";

  workload::GeneratorConfig config;
  config.num_jobs = 60;
  config.seed = 99;
  config.target_load = 0.9;
  scenario.workload = workload::generate(config);
  scenario.engine.machine_procs = scenario.workload.machine_procs;
  scenario.engine.granularity = scenario.workload.granularity;

  fault::FailureModelConfig& failure = scenario.engine.failure;
  failure.enabled = true;
  failure.max_interruptions = retry_cap;
  const double span =
      scenario.workload.jobs.back().arr - scenario.workload.jobs.front().arr;
  double down = scenario.workload.jobs.front().arr + span * 0.1;
  for (int i = 0; i < 3; ++i) {
    fault::Outage outage;
    outage.down = down;
    outage.up = down + 1800.0;
    outage.procs = scenario.workload.granularity * (2 + i);
    failure.script.push_back(outage);
    down = outage.up + span * 0.1;
  }
  scenario.engine.requeue = policy;
  return scenario;
}

void expect_clean(const Scenario& scenario, const std::string& algorithm) {
  const RunReport report = check_run(scenario, algorithm);
  ASSERT_TRUE(report.ran) << algorithm;
  EXPECT_TRUE(report.ok()) << algorithm << ": "
                           << report.violations.front().check << ": "
                           << report.violations.front().detail;
  EXPECT_EQ(report.result.completed + report.result.killed +
                report.result.abandoned,
            scenario.workload.jobs.size())
      << algorithm;
}

TEST(RequeueUnderOutages, HeadPolicyRetriesEveryInterruptedJob) {
  const Scenario scenario =
      cascade_scenario(fault::RequeuePolicy::kRequeueHead, /*retry_cap=*/0);
  for (const std::string& algorithm : {"FCFS", "EASY", "LOS-E"}) {
    const RunReport report = check_run(scenario, algorithm);
    ASSERT_TRUE(report.ran);
    EXPECT_TRUE(report.ok()) << algorithm << ": "
                             << report.violations.front().detail;
    // Unlimited retries: an interruption is never a job loss.
    EXPECT_EQ(report.result.abandoned, 0u) << algorithm;
    EXPECT_EQ(report.result.failure.requeues,
              report.result.failure.interruptions)
        << algorithm;
    // All three outages land inside the arrival span; at least the first
    // must fire before the workload drains.
    EXPECT_GE(report.result.failure.outages, 1u) << algorithm;
    EXPECT_LE(report.result.failure.outages, 3u) << algorithm;
  }
}

TEST(RequeueUnderOutages, TailPolicyAccountsIdentically) {
  const Scenario scenario =
      cascade_scenario(fault::RequeuePolicy::kRequeueTail, /*retry_cap=*/0);
  for (const std::string& algorithm : {"FCFS", "EASY", "LOS-E"})
    expect_clean(scenario, algorithm);
}

TEST(RequeueUnderOutages, AbandonPolicyDropsOnFirstInterruption) {
  const Scenario scenario =
      cascade_scenario(fault::RequeuePolicy::kAbandon, /*retry_cap=*/0);
  for (const std::string& algorithm : {"FCFS", "EASY", "LOS-E"}) {
    const RunReport report = check_run(scenario, algorithm);
    ASSERT_TRUE(report.ran);
    EXPECT_TRUE(report.ok()) << algorithm << ": "
                             << report.violations.front().detail;
    EXPECT_EQ(report.result.failure.requeues, 0u) << algorithm;
    EXPECT_EQ(report.result.failure.abandoned,
              report.result.failure.interruptions)
        << algorithm;
    EXPECT_EQ(report.result.abandoned, report.result.failure.abandoned)
        << algorithm;
  }
}

TEST(RequeueUnderOutages, RetryBudgetExhaustionAbandonsUnderEveryPolicy) {
  // With a cap of 1, a job interrupted a second time is dropped even under
  // a requeue policy; the oracle's accounting must still close.
  for (const fault::RequeuePolicy policy :
       {fault::RequeuePolicy::kRequeueHead, fault::RequeuePolicy::kRequeueTail,
        fault::RequeuePolicy::kAbandon}) {
    const Scenario scenario = cascade_scenario(policy, /*retry_cap=*/1);
    for (const std::string& algorithm : {"EASY", "LOS-E"})
      expect_clean(scenario, algorithm);
  }
}

TEST(RequeueUnderOutages, StochasticCorrelatedOutagesStayAccounted) {
  Scenario scenario =
      cascade_scenario(fault::RequeuePolicy::kRequeueTail, /*retry_cap=*/2);
  fault::FailureModelConfig& failure = scenario.engine.failure;
  failure.script.clear();
  failure.seed = 7;
  failure.mtbf = 3600;
  failure.mttr = 900;
  failure.min_nodes = 2;
  failure.max_nodes = 4;  // every outage downs several cards at once
  for (const std::string& algorithm : {"EASY", "Hybrid-LOS-E"})
    expect_clean(scenario, algorithm);
}

}  // namespace
}  // namespace es::fuzz
