// Model-check of the calendar-band tier (PR 9) against the pre-overhaul
// reference kernel: the band-on queue, the band-off (heap-only) queue and
// bench::ReferenceEventQueue are driven through identical randomized
// schedule/cancel/pop traces and must agree on every fire, in order.  The
// traces deliberately exercise the cases where the tiers could diverge:
//  * equal-time events across classes and sequence numbers (tie-breaks),
//  * cancellation of already-fired / already-cancelled handles after the
//    slab has recycled their slots (generation checks under handle reuse),
//  * far-future events that enter through the heap tier and must migrate
//    into the band as the cursor rotates toward them.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "bench/reference_event_queue.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace es::sim {
namespace {

/// One scheduled event's identity across the three queues under test.
struct Tracked {
  std::uint64_t model_id = 0;
  EventHandle band;
  EventHandle heap;
  bench::ReferenceEventHandle reference;
};

class ModelCheck {
 public:
  ModelCheck() { heap_queue_.set_band_enabled(false); }

  void schedule(Time at, EventClass cls) {
    Tracked tracked;
    tracked.model_id = next_model_id_++;
    const std::uint64_t id = tracked.model_id;
    tracked.band = band_queue_.schedule(
        at, cls, [this, id](Time) { band_fired_.push_back(id); });
    tracked.heap = heap_queue_.schedule(
        at, cls, [this, id](Time) { heap_fired_.push_back(id); });
    tracked.reference = reference_.schedule(
        at, cls, [this, id](Time) { reference_fired_.push_back(id); });
    live_.push_back(tracked);
  }

  /// Cancels a live event in all three queues; all must agree it was live.
  void cancel_live(std::size_t index) {
    Tracked tracked = live_[index];
    live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(index));
    ASSERT_TRUE(band_queue_.cancel(tracked.band));
    ASSERT_TRUE(heap_queue_.cancel(tracked.heap));
    ASSERT_TRUE(reference_.cancel(tracked.reference));
    retired_.push_back(tracked);
  }

  /// Cancelling a fired or already-cancelled handle must fail on both slab
  /// queues — even after their slots were recycled by later schedules.
  /// (The reference's lazy hash-set cancellation predates that guarantee,
  /// so stale cancels are not mirrored into it.)
  void cancel_stale(std::size_t index) {
    const Tracked& tracked = retired_[index];
    ASSERT_FALSE(band_queue_.cancel(tracked.band));
    ASSERT_FALSE(heap_queue_.cancel(tracked.heap));
  }

  /// Pops one event from each queue; all three must fire the same event.
  void pop() {
    band_fired_.clear();
    heap_fired_.clear();
    reference_fired_.clear();
    const Time t_band = band_queue_.pop_and_run();
    const Time t_heap = heap_queue_.pop_and_run();
    const Time t_reference = reference_.pop_and_run();
    ASSERT_EQ(band_fired_.size(), 1u);
    ASSERT_EQ(heap_fired_, band_fired_);
    ASSERT_EQ(reference_fired_, band_fired_);
    ASSERT_EQ(t_band, t_heap);
    ASSERT_EQ(t_band, t_reference);
    now_ = t_band;
    const std::uint64_t id = band_fired_.front();
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].model_id == id) {
        retired_.push_back(live_[i]);
        live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }

  void check_sizes() const {
    ASSERT_EQ(band_queue_.size(), live_.size());
    ASSERT_EQ(heap_queue_.size(), live_.size());
    ASSERT_EQ(reference_.size(), live_.size());
    ASSERT_EQ(band_queue_.empty(), live_.empty());
  }

  Time now() const { return now_; }
  std::size_t live_count() const { return live_.size(); }
  std::size_t retired_count() const { return retired_.size(); }
  bool drained() const { return band_queue_.empty(); }
  const EventQueueCounters& band_counters() const {
    return band_queue_.counters();
  }

 private:
  EventQueue band_queue_;
  EventQueue heap_queue_;
  bench::ReferenceEventQueue reference_;
  std::vector<Tracked> live_;
  std::vector<Tracked> retired_;
  std::vector<std::uint64_t> band_fired_;
  std::vector<std::uint64_t> heap_fired_;
  std::vector<std::uint64_t> reference_fired_;
  std::uint64_t next_model_id_ = 1;
  Time now_ = 0;
};

TEST(EventQueueModel, RandomTracesAgreeAcrossBandHeapAndReference) {
  util::Rng rng(9191);
  for (int round = 0; round < 8; ++round) {
    ModelCheck model;
    const int ops = 600;
    for (int op = 0; op < ops; ++op) {
      const double coin = rng.uniform(0, 1);
      if (coin < 0.45 || model.drained()) {
        // Coarse-grained times force equal-time ties across classes; a
        // slice lands far beyond the 512-bucket band horizon and must
        // migrate back as the cursor rotates.
        const bool far = rng.bernoulli(0.1);
        const Time at =
            model.now() + (far ? std::floor(rng.uniform(5e3, 5e4))
                               : std::floor(rng.uniform(0, 40)));
        const auto cls = static_cast<EventClass>(rng.uniform_int(0, 7));
        model.schedule(at, cls);
      } else if (coin < 0.6 && model.live_count() > 0) {
        model.cancel_live(static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(model.live_count()) - 1)));
      } else if (coin < 0.7 && model.retired_count() > 0) {
        model.cancel_stale(static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(model.retired_count()) - 1)));
      } else {
        model.pop();
      }
      model.check_sizes();
      if (::testing::Test::HasFatalFailure())
        FAIL() << "round " << round << " op " << op;
    }
    // Drain completely: the tail — including every migrated far-future
    // event — must still agree event for event.
    while (!model.drained()) {
      model.pop();
      if (::testing::Test::HasFatalFailure()) FAIL() << "round " << round;
    }
    // The trace genuinely exercised both tiers.
    EXPECT_GT(model.band_counters().band_scheduled, 0u);
    EXPECT_GT(model.band_counters().band_migrated, 0u) << "round " << round;
  }
}

TEST(EventQueueModel, BurstsOfIdenticalTimesPreserveInsertionOrder) {
  // All events at the same instant and class: pure seq tie-breaking,
  // stressing the sorted-insert path of the draining cursor bucket.
  ModelCheck model;
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 40; ++i)
      model.schedule(static_cast<Time>(burst), EventClass::kOther);
    for (int i = 0; i < 40; ++i) {
      model.pop();
      if (::testing::Test::HasFatalFailure()) FAIL() << "burst " << burst;
    }
  }
}

TEST(EventQueueModel, FarFutureOnlyTracesAnchorAndMigrate) {
  // Every event lands beyond the initial band horizon; pops force the band
  // to re-anchor (empty-band fast-forward) or migrate, and order must hold.
  util::Rng rng(555);
  ModelCheck model;
  Time t = 0;
  for (int i = 0; i < 200; ++i) {
    t += std::floor(rng.uniform(1e4, 1e5));
    model.schedule(t, EventClass::kJobFinish);
  }
  while (!model.drained()) {
    model.pop();
    if (::testing::Test::HasFatalFailure()) FAIL();
  }
}

}  // namespace
}  // namespace es::sim
