#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace es::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, EventClass::kOther, [&](Time) { order.push_back(3); });
  queue.schedule(1.0, EventClass::kOther, [&](Time) { order.push_back(1); });
  queue.schedule(2.0, EventClass::kOther, [&](Time) { order.push_back(2); });
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ClassOrderingAtSameInstant) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(5.0, EventClass::kJobArrival, [&](Time) { order.push_back(2); });
  queue.schedule(5.0, EventClass::kJobFinish, [&](Time) { order.push_back(0); });
  queue.schedule(5.0, EventClass::kEccArrival, [&](Time) { order.push_back(1); });
  queue.schedule(5.0, EventClass::kSchedule, [&](Time) { order.push_back(3); });
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, FifoWithinSameTimeAndClass) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    queue.schedule(1.0, EventClass::kOther, [&, i](Time) { order.push_back(i); });
  while (!queue.empty()) queue.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CallbackReceivesEventTime) {
  EventQueue queue;
  Time seen = -1;
  queue.schedule(7.5, EventClass::kOther, [&](Time t) { seen = t; });
  queue.pop_and_run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  int fired = 0;
  const EventHandle handle =
      queue.schedule(1.0, EventClass::kOther, [&](Time) { ++fired; });
  queue.schedule(2.0, EventClass::kOther, [&](Time) { ++fired; });
  EXPECT_TRUE(queue.cancel(handle));
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUpdatesSizeAndEmpty) {
  EventQueue queue;
  const EventHandle handle =
      queue.schedule(1.0, EventClass::kOther, [](Time) {});
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, DoubleCancelFails) {
  EventQueue queue;
  const EventHandle handle =
      queue.schedule(1.0, EventClass::kOther, [](Time) {});
  queue.schedule(2.0, EventClass::kOther, [](Time) {});
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueue, InvalidHandleCancelFails) {
  EventQueue queue;
  queue.schedule(1.0, EventClass::kOther, [](Time) {});
  EXPECT_FALSE(queue.cancel(EventHandle{}));
  EXPECT_FALSE(queue.cancel(EventHandle{9999}));
}

TEST(EventQueue, CancelledHeadSkippedByNextTime) {
  EventQueue queue;
  const EventHandle first =
      queue.schedule(1.0, EventClass::kOther, [](Time) {});
  queue.schedule(2.0, EventClass::kOther, [](Time) {});
  queue.cancel(first);
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
}

TEST(EventQueue, RescheduleViaCancelAndInsert) {
  // The elastic pattern: cancel a pending finish, insert the adjusted one.
  EventQueue queue;
  std::vector<double> fired;
  const EventHandle finish =
      queue.schedule(10.0, EventClass::kJobFinish,
                     [&](Time t) { fired.push_back(t); });
  EXPECT_TRUE(queue.cancel(finish));
  queue.schedule(15.0, EventClass::kJobFinish,
                 [&](Time t) { fired.push_back(t); });
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(fired, (std::vector<double>{15.0}));
}

TEST(EventQueue, EventsScheduledDuringExecutionRun) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1.0, EventClass::kOther, [&](Time) {
    order.push_back(1);
    queue.schedule(2.0, EventClass::kOther, [&](Time) { order.push_back(2); });
  });
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, PropertyRandomInsertionPopsSorted) {
  // Property sweep: random times/classes always pop in (time, class, seq)
  // order.
  util::Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    EventQueue queue;
    std::vector<std::pair<double, int>> popped;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      const double t = rng.uniform(0, 50);
      const auto cls = static_cast<EventClass>(rng.uniform_int(0, 5));
      queue.schedule(t, cls, [&popped, t, cls](Time) {
        popped.emplace_back(t, static_cast<int>(cls));
      });
    }
    while (!queue.empty()) queue.pop_and_run();
    ASSERT_EQ(popped.size(), static_cast<std::size_t>(n));
    for (std::size_t i = 1; i < popped.size(); ++i) {
      ASSERT_LE(popped[i - 1].first, popped[i].first);
      if (popped[i - 1].first == popped[i].first) {
        ASSERT_LE(popped[i - 1].second, popped[i].second);
      }
    }
  }
}

TEST(EventQueue, CancelAfterFireFails) {
  // Regression: cancelling a handle whose event already fired must return
  // false and must not disturb the live count or any other pending event.
  // (The pre-slab queue corrupted its live counter here: the fired id went
  // into the cancelled set and live_ was decremented for a second time.)
  EventQueue queue;
  int fired = 0;
  const EventHandle first =
      queue.schedule(1.0, EventClass::kOther, [&](Time) { ++fired; });
  queue.schedule(2.0, EventClass::kOther, [&](Time) { ++fired; });
  queue.pop_and_run();  // fires `first`
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_FALSE(queue.cancel(first));
  EXPECT_EQ(queue.size(), 1u);  // the stale cancel must not eat the size
  EXPECT_FALSE(queue.empty());
  queue.pop_and_run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CancelInsideOwnCallbackFails) {
  EventQueue queue;
  EventHandle self{};
  bool cancel_result = true;
  self = queue.schedule(1.0, EventClass::kOther, [&](Time) {
    cancel_result = queue.cancel(self);
  });
  queue.pop_and_run();
  EXPECT_FALSE(cancel_result);  // by then the event counts as fired
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, StaleHandleToReusedSlotFails) {
  // Slot recycling must not let an old handle cancel the new tenant: the
  // generation in the handle no longer matches the record's.
  EventQueue queue;
  int fired = 0;
  const EventHandle old_handle =
      queue.schedule(1.0, EventClass::kOther, [&](Time) { ++fired; });
  EXPECT_TRUE(queue.cancel(old_handle));
  // The next schedule reuses the freed slot (single-slot slab).
  const EventHandle new_handle =
      queue.schedule(2.0, EventClass::kOther, [&](Time) { ++fired; });
  EXPECT_NE(old_handle.id, new_handle.id);
  EXPECT_FALSE(queue.cancel(old_handle));  // stale generation
  queue.pop_and_run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(queue.cancel(new_handle));  // already fired
}

TEST(EventQueue, HandleReuseAcrossManyGenerations) {
  // Hammer one slot through many schedule/fire and schedule/cancel rounds;
  // every stale handle from an earlier generation must stay dead.
  EventQueue queue;
  std::vector<EventHandle> history;
  int fired = 0;
  for (int round = 0; round < 100; ++round) {
    const EventHandle handle = queue.schedule(
        static_cast<double>(round), EventClass::kOther, [&](Time) { ++fired; });
    for (const EventHandle& stale : history) EXPECT_FALSE(queue.cancel(stale));
    history.push_back(handle);
    if (round % 2 == 0) {
      queue.pop_and_run();
    } else {
      EXPECT_TRUE(queue.cancel(handle));
    }
  }
  EXPECT_EQ(fired, 50);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CountersTrackTraffic) {
  EventQueue queue;
  const EventHandle a = queue.schedule(1.0, EventClass::kOther, [](Time) {});
  queue.schedule(2.0, EventClass::kOther, [](Time) {});
  queue.schedule(3.0, EventClass::kOther, [](Time) {});
  EXPECT_EQ(queue.counters().scheduled, 3u);
  EXPECT_EQ(queue.counters().peak_pending, 3u);
  EXPECT_TRUE(queue.cancel(a));
  queue.pop_and_run();
  queue.pop_and_run();
  const EventQueueCounters& counters = queue.counters();
  EXPECT_EQ(counters.scheduled, 3u);
  EXPECT_EQ(counters.cancelled, 1u);
  EXPECT_EQ(counters.fired, 2u);
  EXPECT_EQ(counters.peak_pending, 3u);  // high-water mark survives draining
  EXPECT_EQ(counters.scheduled, counters.fired + counters.cancelled);
  EXPECT_EQ(queue.total_scheduled(), 3u);
}

TEST(EventQueue, CountersAggregateSumsTrafficAndMaxesPeak) {
  EventQueueCounters total;
  EventQueueCounters a{10, 2, 8, 5};
  EventQueueCounters b{7, 0, 7, 9};
  total += a;
  total += b;
  EXPECT_EQ(total.scheduled, 17u);
  EXPECT_EQ(total.cancelled, 2u);
  EXPECT_EQ(total.fired, 15u);
  EXPECT_EQ(total.peak_pending, 9u);
}

// Naive reference queue for the model-based stress test: a flat vector
// scanned for the (time, class, seq) minimum, with eager cancellation.
class ReferenceQueue {
 public:
  std::uint64_t schedule(Time at, EventClass cls) {
    entries_.push_back({at, static_cast<int>(cls), next_seq_++, next_id_});
    return next_id_++;
  }
  bool cancel(std::uint64_t id) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].id == id) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  /// Removes and returns the id of the earliest entry.
  std::uint64_t pop() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      const Entry& a = entries_[i];
      const Entry& b = entries_[best];
      if (a.time != b.time ? a.time < b.time
                           : (a.cls != b.cls ? a.cls < b.cls : a.seq < b.seq))
        best = i;
    }
    const std::uint64_t id = entries_[best].id;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(best));
    return id;
  }

 private:
  struct Entry {
    Time time;
    int cls;
    std::uint64_t seq;
    std::uint64_t id;
  };
  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
};

TEST(EventQueue, ModelBasedRandomInterleavings) {
  // Random schedule/cancel/pop interleavings checked op-by-op against the
  // naive reference: identical pop order, identical cancel verdicts,
  // identical sizes.  Cancels deliberately include stale handles (already
  // fired or already cancelled) so the generation check is exercised too.
  util::Rng rng(4242);
  for (int round = 0; round < 25; ++round) {
    EventQueue queue;
    ReferenceQueue reference;
    // Model id -> live slab handle; erased when fired or cancelled.
    std::vector<std::pair<std::uint64_t, EventHandle>> live;
    std::vector<std::pair<std::uint64_t, EventHandle>> retired;
    std::vector<std::uint64_t> fired_ids;
    std::uint64_t expected_fire = 0;
    const int ops = 400;
    for (int op = 0; op < ops; ++op) {
      const double coin = rng.uniform(0, 1);
      if (coin < 0.5 || queue.empty()) {
        // Schedule, with coarse times so ties across classes happen often.
        const double t = std::floor(rng.uniform(0, 20));
        const auto cls = static_cast<EventClass>(rng.uniform_int(0, 7));
        const std::uint64_t model_id = reference.schedule(t, cls);
        const EventHandle handle =
            queue.schedule(t, cls, [&fired_ids, model_id](Time) {
              fired_ids.push_back(model_id);
            });
        ASSERT_TRUE(handle.valid());
        live.emplace_back(model_id, handle);
      } else if (coin < 0.75 && !(live.empty() && retired.empty())) {
        // Cancel: half the time a live handle, half a stale one.
        const bool pick_live =
            !live.empty() && (retired.empty() || rng.bernoulli(0.5));
        auto& pool = pick_live ? live : retired;
        const std::size_t index = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(pool.size()) - 1));
        const auto [model_id, handle] = pool[index];
        const bool model_ok = reference.cancel(model_id);
        ASSERT_EQ(queue.cancel(handle), model_ok)
            << "round " << round << " op " << op << " id " << model_id;
        if (model_ok) {
          pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(index));
          retired.emplace_back(model_id, handle);
        }
      } else {
        const std::uint64_t model_id = reference.pop();
        expected_fire = model_id;
        fired_ids.clear();
        queue.pop_and_run();
        ASSERT_EQ(fired_ids, std::vector<std::uint64_t>{expected_fire})
            << "round " << round << " op " << op;
        for (std::size_t i = 0; i < live.size(); ++i) {
          if (live[i].first == model_id) {
            retired.push_back(live[i]);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      }
      ASSERT_EQ(queue.size(), reference.size());
      ASSERT_EQ(queue.empty(), reference.empty());
    }
    // Drain: remaining pops must match the reference exactly.
    while (!reference.empty()) {
      const std::uint64_t model_id = reference.pop();
      fired_ids.clear();
      queue.pop_and_run();
      ASSERT_EQ(fired_ids, std::vector<std::uint64_t>{model_id});
    }
    EXPECT_TRUE(queue.empty());
  }
}

TEST(EventQueue, PropertyRandomCancellationsNeverFire) {
  util::Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    EventQueue queue;
    std::vector<EventHandle> handles;
    int fired = 0;
    const int n = 100;
    for (int i = 0; i < n; ++i)
      handles.push_back(queue.schedule(rng.uniform(0, 10), EventClass::kOther,
                                       [&](Time) { ++fired; }));
    int cancelled = 0;
    for (const EventHandle& handle : handles)
      if (rng.bernoulli(0.5) && queue.cancel(handle)) ++cancelled;
    while (!queue.empty()) queue.pop_and_run();
    EXPECT_EQ(fired, n - cancelled);
  }
}

}  // namespace
}  // namespace es::sim
