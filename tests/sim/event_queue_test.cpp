#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace es::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, EventClass::kOther, [&](Time) { order.push_back(3); });
  queue.schedule(1.0, EventClass::kOther, [&](Time) { order.push_back(1); });
  queue.schedule(2.0, EventClass::kOther, [&](Time) { order.push_back(2); });
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ClassOrderingAtSameInstant) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(5.0, EventClass::kJobArrival, [&](Time) { order.push_back(2); });
  queue.schedule(5.0, EventClass::kJobFinish, [&](Time) { order.push_back(0); });
  queue.schedule(5.0, EventClass::kEccArrival, [&](Time) { order.push_back(1); });
  queue.schedule(5.0, EventClass::kSchedule, [&](Time) { order.push_back(3); });
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, FifoWithinSameTimeAndClass) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    queue.schedule(1.0, EventClass::kOther, [&, i](Time) { order.push_back(i); });
  while (!queue.empty()) queue.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CallbackReceivesEventTime) {
  EventQueue queue;
  Time seen = -1;
  queue.schedule(7.5, EventClass::kOther, [&](Time t) { seen = t; });
  queue.pop_and_run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  int fired = 0;
  const EventHandle handle =
      queue.schedule(1.0, EventClass::kOther, [&](Time) { ++fired; });
  queue.schedule(2.0, EventClass::kOther, [&](Time) { ++fired; });
  EXPECT_TRUE(queue.cancel(handle));
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUpdatesSizeAndEmpty) {
  EventQueue queue;
  const EventHandle handle =
      queue.schedule(1.0, EventClass::kOther, [](Time) {});
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, DoubleCancelFails) {
  EventQueue queue;
  const EventHandle handle =
      queue.schedule(1.0, EventClass::kOther, [](Time) {});
  queue.schedule(2.0, EventClass::kOther, [](Time) {});
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueue, InvalidHandleCancelFails) {
  EventQueue queue;
  queue.schedule(1.0, EventClass::kOther, [](Time) {});
  EXPECT_FALSE(queue.cancel(EventHandle{}));
  EXPECT_FALSE(queue.cancel(EventHandle{9999}));
}

TEST(EventQueue, CancelledHeadSkippedByNextTime) {
  EventQueue queue;
  const EventHandle first =
      queue.schedule(1.0, EventClass::kOther, [](Time) {});
  queue.schedule(2.0, EventClass::kOther, [](Time) {});
  queue.cancel(first);
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
}

TEST(EventQueue, RescheduleViaCancelAndInsert) {
  // The elastic pattern: cancel a pending finish, insert the adjusted one.
  EventQueue queue;
  std::vector<double> fired;
  const EventHandle finish =
      queue.schedule(10.0, EventClass::kJobFinish,
                     [&](Time t) { fired.push_back(t); });
  EXPECT_TRUE(queue.cancel(finish));
  queue.schedule(15.0, EventClass::kJobFinish,
                 [&](Time t) { fired.push_back(t); });
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(fired, (std::vector<double>{15.0}));
}

TEST(EventQueue, EventsScheduledDuringExecutionRun) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1.0, EventClass::kOther, [&](Time) {
    order.push_back(1);
    queue.schedule(2.0, EventClass::kOther, [&](Time) { order.push_back(2); });
  });
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, PropertyRandomInsertionPopsSorted) {
  // Property sweep: random times/classes always pop in (time, class, seq)
  // order.
  util::Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    EventQueue queue;
    std::vector<std::pair<double, int>> popped;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      const double t = rng.uniform(0, 50);
      const auto cls = static_cast<EventClass>(rng.uniform_int(0, 5));
      queue.schedule(t, cls, [&popped, t, cls](Time) {
        popped.emplace_back(t, static_cast<int>(cls));
      });
    }
    while (!queue.empty()) queue.pop_and_run();
    ASSERT_EQ(popped.size(), static_cast<std::size_t>(n));
    for (std::size_t i = 1; i < popped.size(); ++i) {
      ASSERT_LE(popped[i - 1].first, popped[i].first);
      if (popped[i - 1].first == popped[i].first) {
        ASSERT_LE(popped[i - 1].second, popped[i].second);
      }
    }
  }
}

TEST(EventQueue, PropertyRandomCancellationsNeverFire) {
  util::Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    EventQueue queue;
    std::vector<EventHandle> handles;
    int fired = 0;
    const int n = 100;
    for (int i = 0; i < n; ++i)
      handles.push_back(queue.schedule(rng.uniform(0, 10), EventClass::kOther,
                                       [&](Time) { ++fired; }));
    int cancelled = 0;
    for (const EventHandle& handle : handles)
      if (rng.bernoulli(0.5) && queue.cancel(handle)) ++cancelled;
    while (!queue.empty()) queue.pop_and_run();
    EXPECT_EQ(fired, n - cancelled);
  }
}

}  // namespace
}  // namespace es::sim
