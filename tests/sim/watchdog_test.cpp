// Watchdog trigger paths: event budget, simulated-time horizon, wall-clock
// budget, and the disabled fast path.
#include <gtest/gtest.h>

#include <cstring>

#include "sim/simulation.hpp"
#include "sim/watchdog.hpp"

namespace es::sim {
namespace {

// Drives `sim` the way the engine's pump does: check, then step.
TerminationReason pump(Simulation& sim, const WatchdogConfig& config) {
  Watchdog watchdog(config);
  TerminationReason reason = TerminationReason::kCompleted;
  while (!sim.idle()) {
    if (watchdog.exhausted(sim, reason)) break;
    sim.step();
  }
  return reason;
}

void schedule_ticks(Simulation& sim, int count, double spacing) {
  for (int i = 1; i <= count; ++i)
    sim.at(i * spacing, EventClass::kJobArrival, [](Time) {});
}

TEST(WatchdogConfig, AllZeroIsDisabled) {
  WatchdogConfig config;
  EXPECT_FALSE(config.enabled());
  config.max_events = 1;
  EXPECT_TRUE(config.enabled());
  config = {};
  config.max_sim_time = 1;
  EXPECT_TRUE(config.enabled());
  config = {};
  config.wall_budget = 1;
  EXPECT_TRUE(config.enabled());
  config = {};
  config.no_progress_cycles = 1;
  EXPECT_TRUE(config.enabled());
}

TEST(Watchdog, UnlimitedBudgetsDrainTheQueue) {
  Simulation sim;
  schedule_ticks(sim, 5, 1.0);
  WatchdogConfig config;
  config.max_events = 1000;  // enabled, but never reached
  EXPECT_EQ(pump(sim, config), TerminationReason::kCompleted);
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Watchdog, MaxEventsStopsAfterExactlyTheBudget) {
  Simulation sim;
  schedule_ticks(sim, 10, 1.0);
  WatchdogConfig config;
  config.max_events = 3;
  EXPECT_EQ(pump(sim, config), TerminationReason::kMaxEvents);
  EXPECT_EQ(sim.events_processed(), 3u);
  EXPECT_FALSE(sim.idle());  // the remaining events were never run
}

TEST(Watchdog, MaxSimTimeStopsBeforeCrossingTheHorizon) {
  Simulation sim;
  sim.at(1.0, EventClass::kJobArrival, [](Time) {});
  sim.at(2.0, EventClass::kJobArrival, [](Time) {});
  sim.at(10.0, EventClass::kJobArrival, [](Time) {});
  WatchdogConfig config;
  config.max_sim_time = 5.0;
  EXPECT_EQ(pump(sim, config), TerminationReason::kMaxSimTime);
  // The events inside the horizon ran; the clock never crossed it.
  EXPECT_EQ(sim.events_processed(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Watchdog, ExhaustedWallBudgetTripsImmediately) {
  Simulation sim;
  schedule_ticks(sim, 100, 1.0);
  WatchdogConfig config;
  config.wall_budget = 1e-12;  // already spent by the time we check
  EXPECT_EQ(pump(sim, config), TerminationReason::kWallBudget);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Watchdog, GenerousWallBudgetDoesNotTrip) {
  Simulation sim;
  schedule_ticks(sim, 100, 1.0);
  WatchdogConfig config;
  config.wall_budget = 3600.0;
  EXPECT_EQ(pump(sim, config), TerminationReason::kCompleted);
  EXPECT_EQ(sim.events_processed(), 100u);
}

TEST(TerminationReason, NamesAreStableForOutputTagging) {
  EXPECT_STREQ(to_string(TerminationReason::kCompleted), "completed");
  EXPECT_STREQ(to_string(TerminationReason::kMaxEvents), "max-events");
  EXPECT_STREQ(to_string(TerminationReason::kMaxSimTime), "max-sim-time");
  EXPECT_STREQ(to_string(TerminationReason::kWallBudget), "wall-budget");
  EXPECT_STREQ(to_string(TerminationReason::kNoProgress), "no-progress");
}

}  // namespace
}  // namespace es::sim
