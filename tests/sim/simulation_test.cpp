#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace es::sim {
namespace {

TEST(Simulation, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulation, ClockAdvancesToEventTimes) {
  Simulation sim;
  std::vector<double> times;
  sim.at(5.0, EventClass::kOther, [&](Time) { times.push_back(sim.now()); });
  sim.at(2.0, EventClass::kOther, [&](Time) { times.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, AfterSchedulesRelative) {
  Simulation sim;
  double fired_at = -1;
  sim.at(10.0, EventClass::kOther, [&](Time) {
    sim.after(5.0, EventClass::kOther, [&](Time) { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulation, RunReturnsEventCount) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.at(i, EventClass::kOther, [](Time) {});
  EXPECT_EQ(sim.run(), 7u);
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    sim.at(t, EventClass::kOther, [&, t](Time) { fired.push_back(t); });
  sim.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulation, StepProcessesOneEvent) {
  Simulation sim;
  int fired = 0;
  sim.at(1.0, EventClass::kOther, [&](Time) { ++fired; });
  sim.at(2.0, EventClass::kOther, [&](Time) { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, CancelledEventsSkipped) {
  Simulation sim;
  int fired = 0;
  const EventHandle handle =
      sim.at(1.0, EventClass::kOther, [&](Time) { ++fired; });
  sim.at(2.0, EventClass::kOther, [&](Time) { ++fired; });
  EXPECT_TRUE(sim.cancel(handle));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulation, SameTimeEventsKeepClassOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(1.0, EventClass::kJobArrival, [&](Time) { order.push_back(1); });
  sim.at(1.0, EventClass::kJobFinish, [&](Time) { order.push_back(0); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace es::sim
