// Allocation audit of the event-kernel hot path.
//
// The slab/free-list queue promises zero per-event heap allocation once it
// reaches steady state: heap items are POD, callbacks land in recycled slab
// records, and engine-style lambdas (two captured pointers) fit
// std::function's small-object buffer.  This binary instruments global
// operator new/delete with a counter and asserts the schedule/pop and
// schedule/cancel cycles stop allocating after warm-up.  It is its own test
// binary because the instrumented operators are process-global.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting global operators.  Sanitizer builds still intercept the
// underlying malloc/free, so leak and poisoning checks keep working.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace es::sim {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

// The engine's hot-path callback shape: two captured pointers, 16 bytes —
// inside libstdc++'s std::function small-object buffer.
struct FakeEngine {
  std::uint64_t fires = 0;
};

EventQueue::Callback make_callback(FakeEngine* engine, std::uint64_t* slot) {
  return [engine, slot](Time) {
    ++engine->fires;
    ++*slot;
  };
}

TEST(EventQueueAlloc, SteadyStateScheduleAndPopIsAllocationFree) {
  EventQueue queue;
  FakeEngine engine;
  std::uint64_t slot = 0;
  // Warm-up: grow the slab, the heap vector and the free list to the peak
  // pending population this test will ever hold.
  constexpr int kPending = 256;
  for (int i = 0; i < kPending; ++i)
    queue.schedule(static_cast<Time>(i), EventClass::kJobFinish,
                   make_callback(&engine, &slot));
  for (int i = 0; i < kPending; ++i) {
    queue.pop_and_run();
    queue.schedule(static_cast<Time>(kPending + i), EventClass::kJobFinish,
                   make_callback(&engine, &slot));
  }

  const std::uint64_t before = allocations();
  for (int i = 0; i < 20000; ++i) {
    queue.pop_and_run();
    queue.schedule(static_cast<Time>(2 * kPending + i),
                   EventClass::kJobFinish, make_callback(&engine, &slot));
  }
  EXPECT_EQ(allocations(), before)
      << "schedule/pop steady state must not touch the heap";
  EXPECT_GE(engine.fires, 20000u);
}

TEST(EventQueueAlloc, SteadyStateCancelRescheduleIsAllocationFree) {
  // The elastic pattern: cancel the pending finish, insert the moved one.
  EventQueue queue;
  FakeEngine engine;
  std::uint64_t slot = 0;
  EventHandle pending =
      queue.schedule(1.0, EventClass::kJobFinish, make_callback(&engine, &slot));
  // Warm-up round so the slab/free-list reach steady state.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(queue.cancel(pending));
    pending = queue.schedule(static_cast<Time>(2 + i), EventClass::kJobFinish,
                             make_callback(&engine, &slot));
  }

  const std::uint64_t before = allocations();
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(queue.cancel(pending));
    pending = queue.schedule(static_cast<Time>(100 + i),
                             EventClass::kJobFinish,
                             make_callback(&engine, &slot));
  }
  EXPECT_EQ(allocations(), before)
      << "cancel/reschedule steady state must not touch the heap";
  queue.pop_and_run();
  EXPECT_EQ(engine.fires, 1u);
}

TEST(EventQueueAlloc, PopMayLazilyCompactButNeverAllocates) {
  // Heavily cancelled queues skim dead heap entries on pop; skimming only
  // shrinks vectors, so it must stay allocation-free too.
  EventQueue queue;
  FakeEngine engine;
  std::uint64_t slot = 0;
  for (int round = 0; round < 4; ++round) {
    std::vector<EventHandle> handles;
    for (int i = 0; i < 512; ++i)
      handles.push_back(queue.schedule(static_cast<Time>(i),
                                       EventClass::kJobFinish,
                                       make_callback(&engine, &slot)));
    const std::uint64_t before = round == 0 ? 0 : allocations();
    for (std::size_t i = 0; i < handles.size(); i += 2)
      ASSERT_TRUE(queue.cancel(handles[i]));
    while (!queue.empty()) queue.pop_and_run();
    if (round > 0)
      EXPECT_EQ(allocations(), before) << "round " << round;
  }
}

}  // namespace
}  // namespace es::sim
