#include "sched/engine.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace es::sched {
namespace {

using es::testing::batch_job;
using es::testing::dedicated_job;
using es::testing::make_workload;
using es::testing::run_scenario;

TEST(Engine, SingleJobLifecycle) {
  const auto workload = make_workload(10, 1, {batch_job(1, 5, 4, 100)});
  const auto scenario = run_scenario(workload, "FCFS");
  const auto& job = scenario.job(1);
  EXPECT_DOUBLE_EQ(job.arrival, 5);
  EXPECT_DOUBLE_EQ(job.started, 5);
  EXPECT_DOUBLE_EQ(job.finished, 105);
  EXPECT_DOUBLE_EQ(job.wait, 0);
  EXPECT_DOUBLE_EQ(job.run, 100);
  EXPECT_FALSE(job.killed);
  EXPECT_EQ(scenario.result.completed, 1u);
}

TEST(Engine, UtilizationIntegralMatchesHandComputation) {
  // 4/10 procs busy for 100 s, then 8/10 for 50 s, span 150 s.
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 4, 100), batch_job(2, 100, 8, 50)});
  const auto scenario = run_scenario(workload, "FCFS");
  EXPECT_NEAR(scenario.result.utilization,
              (4 * 100 + 8 * 50) / (10.0 * 150), 1e-9);
}

TEST(Engine, KillsJobOverrunningItsEstimate) {
  auto job = batch_job(1, 0, 4, /*dur=*/50, /*actual=*/80);
  const auto scenario = run_scenario(make_workload(10, 1, {job}), "FCFS");
  EXPECT_TRUE(scenario.job(1).killed);
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 50);  // killed at the kill-by time
  EXPECT_EQ(scenario.result.killed, 1u);
  EXPECT_EQ(scenario.result.completed, 0u);
}

TEST(Engine, EarlyCompletionFreesCapacitySooner) {
  // Job 1 estimates 100 but actually runs 20; job 2 (10 procs) can start at
  // t=20, not t=100.
  auto early = batch_job(1, 0, 10, 100, /*actual=*/20);
  const auto workload =
      make_workload(10, 1, {early, batch_job(2, 1, 10, 50)});
  const auto scenario = run_scenario(workload, "FCFS");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 20);
  EXPECT_FALSE(scenario.job(1).killed);
}

TEST(Engine, GranularityRoundsAllocations) {
  // 100 procs requested on a 32-granular machine occupy 128; 150 occupy 160.
  const auto workload = make_workload(
      320, 32, {batch_job(1, 0, 100, 50), batch_job(2, 0, 150, 50)});
  const auto scenario = run_scenario(workload, "FCFS");
  EXPECT_EQ(scenario.job(1).procs, 128);
  EXPECT_EQ(scenario.job(2).procs, 160);
  // 128 + 160 = 288 <= 320: both fit together.
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 0);
}

TEST(Engine, GranularityPreventsOverpacking) {
  // 2 x 100 -> 2 x 128 = 256; a third 100-proc job (128) exceeds 320.
  const auto workload = make_workload(
      320, 32,
      {batch_job(1, 0, 100, 50), batch_job(2, 0, 100, 50),
       batch_job(3, 0, 100, 50)});
  const auto scenario = run_scenario(workload, "FCFS");
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 50);
}

TEST(Engine, DedicatedDueEventTriggersStartWithoutOtherTraffic) {
  // No batch events anywhere near t=100: the DedicatedDue wake-up alone
  // must start the job.
  const auto workload =
      make_workload(10, 1, {dedicated_job(1, 0, 4, 10, 100)});
  const auto scenario = run_scenario(workload, "Hybrid-LOS");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 100);
}

TEST(Engine, MeanWaitMixesBatchWaitAndDedicatedDelay) {
  // Hybrid-LOS protects the dedicated reservation at t=150: the batch job
  // j2 (which would cross it) is held back, the dedicated job starts on
  // time (delay 0), and j2 runs after it (wait 200).
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 10, 100),              // starts at 0, wait 0
       batch_job(2, 0, 10, 100),              // held until 200, wait 200
       dedicated_job(3, 0, 10, 50, 150)});    // on time, delay 0
  const auto scenario = run_scenario(workload, "Hybrid-LOS");
  EXPECT_DOUBLE_EQ(scenario.job(3).wait, 0);
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 150);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 200);
  EXPECT_NEAR(scenario.result.mean_wait, (0 + 200 + 0) / 3.0, 1e-9);
}

TEST(Engine, EccIgnoredWithoutProcessor) {
  // Non-elastic algorithm: the ET command must not extend the job.
  workload::Ecc ecc;
  ecc.issue = 10;
  ecc.job_id = 1;
  ecc.type = workload::EccType::kExtendTime;
  ecc.amount = 100;
  const auto workload =
      make_workload(10, 1, {batch_job(1, 0, 4, 50)}, {ecc});
  const auto scenario = run_scenario(workload, "EASY");
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 50);
}

TEST(Engine, EccExtendsRunningJobWithProcessor) {
  workload::Ecc ecc;
  ecc.issue = 10;
  ecc.job_id = 1;
  ecc.type = workload::EccType::kExtendTime;
  ecc.amount = 100;
  const auto workload =
      make_workload(10, 1, {batch_job(1, 0, 4, 50)}, {ecc});
  const auto scenario = run_scenario(workload, "EASY-E");
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 150);
  EXPECT_EQ(scenario.result.ecc.processed, 1u);
}

TEST(Engine, DeterministicAcrossRuns) {
  workload::GeneratorConfig config;
  config.num_jobs = 200;
  config.seed = 77;
  config.p_dedicated = 0.3;
  config.p_extend = 0.2;
  config.p_reduce = 0.1;
  const auto workload = workload::generate(config);
  const auto a = run_scenario(workload, "Hybrid-LOS-E");
  const auto b = run_scenario(workload, "Hybrid-LOS-E");
  ASSERT_EQ(a.result.jobs.size(), b.result.jobs.size());
  EXPECT_DOUBLE_EQ(a.result.mean_wait, b.result.mean_wait);
  EXPECT_DOUBLE_EQ(a.result.utilization, b.result.utilization);
  for (const auto& [id, outcome] : a.by_id)
    EXPECT_DOUBLE_EQ(outcome.started, b.job(id).started);
}

TEST(Engine, CountsCyclesAndEvents) {
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 4, 10), batch_job(2, 1, 4, 10)});
  const auto scenario = run_scenario(workload, "FCFS");
  EXPECT_GE(scenario.result.cycles, 4u);   // 2 arrivals + 2 finishes
  EXPECT_GE(scenario.result.events, 4u);
  EXPECT_DOUBLE_EQ(scenario.result.makespan, 11.0);
}

TEST(Engine, RejectsDuplicateJobIds) {
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 4, 10), batch_job(1, 1, 4, 10)});
  EXPECT_DEATH(run_scenario(workload, "FCFS"), "precondition");
}

TEST(Engine, RejectsOversizedJobs) {
  const auto workload = make_workload(10, 1, {batch_job(1, 0, 11, 10)});
  EXPECT_DEATH(run_scenario(workload, "FCFS"), "precondition");
}

}  // namespace
}  // namespace es::sched
