#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace es::sched {
namespace {

using es::testing::batch_job;
using es::testing::make_workload;
using es::testing::run_scenario;

TEST(Fcfs, RunsJobsInArrivalOrder) {
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 10, 100), batch_job(2, 1, 10, 100),
       batch_job(3, 2, 10, 100)});
  const auto scenario = run_scenario(workload, "FCFS");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 0);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 200);
}

TEST(Fcfs, BlocksOnHeadEvenWhenLaterJobsFit) {
  // 6 running until 100; head needs 8; a size-3 job behind it fits the
  // remaining 4 procs right now, but FCFS never backfills.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 6, 100), batch_job(2, 1, 8, 10),
       batch_job(3, 2, 3, 10)});
  const auto scenario = run_scenario(workload, "FCFS");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 110);  // waits for the head
}

TEST(Fcfs, StartsMultipleHeadsWhenTheyFit) {
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 4, 100), batch_job(2, 0, 3, 100),
       batch_job(3, 0, 3, 100), batch_job(4, 0, 1, 100)});
  const auto scenario = run_scenario(workload, "FCFS");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 0);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 0);
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 0);
  EXPECT_DOUBLE_EQ(scenario.start_of(4), 100);  // 10 full, waits
}

TEST(Fcfs, WaitTimesFeedMetrics) {
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 10, 100), batch_job(2, 0, 10, 100)});
  const auto scenario = run_scenario(workload, "FCFS");
  EXPECT_DOUBLE_EQ(scenario.job(1).wait, 0);
  EXPECT_DOUBLE_EQ(scenario.job(2).wait, 100);
  EXPECT_DOUBLE_EQ(scenario.result.mean_wait, 50);
  // Paper slowdown: (50 + 100) / 100.
  EXPECT_DOUBLE_EQ(scenario.result.slowdown, 1.5);
}

}  // namespace
}  // namespace es::sched
