#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace es::sched {
namespace {

using es::testing::batch_job;
using es::testing::dedicated_job;
using es::testing::make_workload;
using es::testing::run_scenario;

TEST(Easy, BackfillsShortJobThatCannotDelayHead) {
  // 6 procs run until t=100.  Head needs 8 (reserved at t=100).  A size-4
  // job of length 50 fits now and ends before the reservation: backfill.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 6, 100), batch_job(2, 1, 8, 100),
       batch_job(3, 2, 4, 50)});
  const auto scenario = run_scenario(workload, "EASY");
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 2);    // backfilled immediately
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);  // reservation honoured
}

TEST(Easy, RefusesBackfillThatWouldDelayHead) {
  // Same setup, but the size-4 job runs 500 s: it would hold 4 procs past
  // t=100, leaving only 6+4-4=6 < 8 for the head -> no backfill.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 6, 100), batch_job(2, 1, 8, 100),
       batch_job(3, 2, 4, 500)});
  const auto scenario = run_scenario(workload, "EASY");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
  EXPECT_GE(scenario.start_of(3), 100);
}

TEST(Easy, BackfillUsingShadowExtraCapacity) {
  // 6 procs until t=100; head needs 7 -> at t=100 there are 10 free, extra
  // = 10-7 = 3.  A long size-3 job can run across the reservation.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 6, 100), batch_job(2, 1, 7, 100),
       batch_job(3, 2, 3, 1000)});
  const auto scenario = run_scenario(workload, "EASY");
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 2);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
}

TEST(Easy, ShadowExtraCapacityIsDecremented) {
  // Extra = 3; two long size-2 jobs: only the first fits the extra.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 6, 100), batch_job(2, 1, 7, 100),
       batch_job(3, 2, 2, 1000), batch_job(4, 3, 2, 1000)});
  const auto scenario = run_scenario(workload, "EASY");
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 2);
  EXPECT_GE(scenario.start_of(4), 100);
}

TEST(Easy, DrainsHeadsWhileTheyFit) {
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 3, 100), batch_job(2, 0, 3, 100),
       batch_job(3, 0, 3, 100)});
  const auto scenario = run_scenario(workload, "EASY");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 0);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 0);
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 0);
}

TEST(Easy, BeatsFcfsOnFragmentedQueue) {
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 6, 100), batch_job(2, 1, 8, 100),
       batch_job(3, 2, 4, 50), batch_job(4, 3, 4, 50)});
  const auto easy = run_scenario(workload, "EASY");
  const auto fcfs = run_scenario(workload, "FCFS");
  EXPECT_LT(easy.result.mean_wait, fcfs.result.mean_wait);
}

TEST(EasyD, DueDedicatedJobStartsAtRequestedTime) {
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 4, 30), dedicated_job(2, 0, 8, 50, /*start=*/100)});
  const auto scenario = run_scenario(workload, "EASY-D");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
  EXPECT_DOUBLE_EQ(scenario.job(2).wait, 0);  // on time -> zero delay
}

TEST(EasyD, BatchJobsPackAroundDedicatedReservation) {
  // Dedicated 8 procs at t=100.  A batch job of 6 procs x 200 s would
  // overlap the reservation (6+8 > 10) -> must wait; a 6 x 50 fits before.
  const auto ok = make_workload(
      10, 1, {dedicated_job(1, 0, 8, 50, 100), batch_job(2, 1, 6, 50)});
  const auto scenario_ok = run_scenario(ok, "EASY-D");
  EXPECT_DOUBLE_EQ(scenario_ok.start_of(2), 1);

  const auto blocked = make_workload(
      10, 1, {dedicated_job(1, 0, 8, 50, 100), batch_job(2, 1, 6, 200)});
  const auto scenario_blocked = run_scenario(blocked, "EASY-D");
  EXPECT_GE(scenario_blocked.start_of(2), 100);
  EXPECT_DOUBLE_EQ(scenario_blocked.start_of(1), 100);
}

TEST(EasyD, LongSmallBatchJobUsesDedicatedShadowCapacity) {
  // Dedicated needs 8 at t=100 -> frec = 2.  A 2-proc long job may cross.
  const auto workload = make_workload(
      10, 1, {dedicated_job(1, 0, 8, 50, 100), batch_job(2, 1, 2, 1000)});
  const auto scenario = run_scenario(workload, "EASY-D");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 1);
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 100);
}

TEST(EasyD, DedicatedDelayedByInsufficientCapacityIsReported) {
  // A batch job occupies the full machine until t=200, but the dedicated
  // job wants to start at t=100: unavoidable delay of 100.
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 10, 200), dedicated_job(2, 0, 10, 50, 100)});
  const auto scenario = run_scenario(workload, "EASY-D");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 200);
  EXPECT_DOUBLE_EQ(scenario.job(2).wait, 100);
  EXPECT_EQ(scenario.result.dedicated_on_time, 0u);
  EXPECT_DOUBLE_EQ(scenario.result.mean_dedicated_delay, 100);
}

TEST(EasyD, TwoDedicatedGroupsHonoured) {
  const auto workload = make_workload(
      10, 1,
      {dedicated_job(1, 0, 5, 50, 100), dedicated_job(2, 0, 5, 50, 100),
       batch_job(3, 1, 10, 2000)});
  const auto scenario = run_scenario(workload, "EASY-D");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 100);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
  // The big batch job cannot run before the reservations complete.
  EXPECT_GE(scenario.start_of(3), 150);
}

TEST(EasyD, PlainEasyRejectsDedicatedJobs) {
  const auto workload =
      make_workload(10, 1, {dedicated_job(1, 0, 4, 10, 5)});
  EXPECT_DEATH(run_scenario(workload, "EASY"), "precondition");
}

}  // namespace
}  // namespace es::sched
