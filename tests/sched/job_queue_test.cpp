// Unit tests for the intrusive waiting queue (W^b).
//
// The queue replaces a std::deque<JobRun*>: links live inside JobRun, so
// push/erase are allocation-free and erasing a job by pointer is O(1).  The
// tests cover FIFO order, head/tail/middle unlinking, re-insertion after
// erase, and the double-insertion guard flags.
#include "sched/job_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sched/job_state.hpp"

namespace es::sched {
namespace {

std::vector<workload::JobId> ids_of(const JobQueue& queue) {
  std::vector<workload::JobId> ids;
  for (const JobRun* job : queue) ids.push_back(job->id);
  return ids;
}

class JobQueueTest : public ::testing::Test {
 protected:
  JobQueueTest() {
    for (std::size_t i = 0; i < jobs_.size(); ++i)
      jobs_[i].id = static_cast<workload::JobId>(i + 1);
  }

  JobQueue queue_;
  std::array<JobRun, 5> jobs_;
};

TEST_F(JobQueueTest, StartsEmpty) {
  EXPECT_TRUE(queue_.empty());
  EXPECT_EQ(queue_.size(), 0u);
  EXPECT_EQ(queue_.front(), nullptr);
  EXPECT_EQ(queue_.back(), nullptr);
  EXPECT_EQ(queue_.begin(), queue_.end());
}

TEST_F(JobQueueTest, PushBackPreservesFifoOrder) {
  for (JobRun& job : jobs_) queue_.push_back(&job);
  EXPECT_EQ(queue_.size(), 5u);
  EXPECT_EQ(ids_of(queue_), (std::vector<workload::JobId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(queue_.front(), &jobs_[0]);
  EXPECT_EQ(queue_.back(), &jobs_[4]);
}

TEST_F(JobQueueTest, PushFrontPrepends) {
  queue_.push_back(&jobs_[0]);
  queue_.push_front(&jobs_[1]);  // the requeue-head path
  EXPECT_EQ(ids_of(queue_), (std::vector<workload::JobId>{2, 1}));
  EXPECT_EQ(queue_.front(), &jobs_[1]);
  EXPECT_EQ(queue_.back(), &jobs_[0]);
}

TEST_F(JobQueueTest, PushFrontIntoEmptySetsBothEnds) {
  queue_.push_front(&jobs_[0]);
  EXPECT_EQ(queue_.front(), &jobs_[0]);
  EXPECT_EQ(queue_.back(), &jobs_[0]);
  EXPECT_EQ(queue_.size(), 1u);
}

TEST_F(JobQueueTest, EraseHeadMiddleAndTail) {
  for (JobRun& job : jobs_) queue_.push_back(&job);
  queue_.erase(&jobs_[0]);  // head
  EXPECT_EQ(ids_of(queue_), (std::vector<workload::JobId>{2, 3, 4, 5}));
  queue_.erase(&jobs_[2]);  // middle
  EXPECT_EQ(ids_of(queue_), (std::vector<workload::JobId>{2, 4, 5}));
  queue_.erase(&jobs_[4]);  // tail
  EXPECT_EQ(ids_of(queue_), (std::vector<workload::JobId>{2, 4}));
  EXPECT_EQ(queue_.front(), &jobs_[1]);
  EXPECT_EQ(queue_.back(), &jobs_[3]);
  EXPECT_EQ(queue_.size(), 2u);
}

TEST_F(JobQueueTest, EraseLastLeavesCleanEmptyQueue) {
  queue_.push_back(&jobs_[0]);
  queue_.erase(&jobs_[0]);
  EXPECT_TRUE(queue_.empty());
  EXPECT_EQ(queue_.front(), nullptr);
  EXPECT_EQ(queue_.back(), nullptr);
  EXPECT_FALSE(jobs_[0].in_batch_queue);
  EXPECT_EQ(jobs_[0].queue_prev, nullptr);
  EXPECT_EQ(jobs_[0].queue_next, nullptr);
}

TEST_F(JobQueueTest, ErasedJobCanBeReinserted) {
  // The requeue path: a preempted job leaves via start() and comes back via
  // push_front/push_back.
  for (JobRun& job : jobs_) queue_.push_back(&job);
  queue_.erase(&jobs_[2]);
  queue_.push_front(&jobs_[2]);
  EXPECT_EQ(ids_of(queue_), (std::vector<workload::JobId>{3, 1, 2, 4, 5}));
  queue_.erase(&jobs_[2]);
  queue_.push_back(&jobs_[2]);
  EXPECT_EQ(ids_of(queue_), (std::vector<workload::JobId>{1, 2, 4, 5, 3}));
}

TEST_F(JobQueueTest, MembershipFlagTracksQueueState) {
  EXPECT_FALSE(jobs_[0].in_batch_queue);
  queue_.push_back(&jobs_[0]);
  EXPECT_TRUE(jobs_[0].in_batch_queue);
  queue_.erase(&jobs_[0]);
  EXPECT_FALSE(jobs_[0].in_batch_queue);
}

TEST_F(JobQueueTest, IteratorIsForwardIterator) {
  for (JobRun& job : jobs_) queue_.push_back(&job);
  auto it = queue_.begin();
  EXPECT_EQ((*it)->id, 1);
  auto copy = it++;
  EXPECT_EQ((*copy)->id, 1);
  EXPECT_EQ((*it)->id, 2);
  ++it;
  EXPECT_EQ((*it)->id, 3);
  // A snapshot built from iterators matches iteration order — the pattern
  // EASY uses to scan backfill candidates.
  std::vector<JobRun*> snapshot(queue_.begin(), queue_.end());
  ASSERT_EQ(snapshot.size(), 5u);
  EXPECT_EQ(snapshot.front(), &jobs_[0]);
  EXPECT_EQ(snapshot.back(), &jobs_[4]);
}

}  // namespace
}  // namespace es::sched
