#include "sched/ecc_processor.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace es::sched {
namespace {

JobRun waiting_job(double req_time = 100, int num = 8) {
  JobRun job;
  job.id = 1;
  job.req_time = req_time;
  job.actual_time = req_time;
  job.num = num;
  job.status = JobStatus::kWaiting;
  return job;
}

JobRun running_job(double started, double req_time = 100, int num = 8) {
  JobRun job = waiting_job(req_time, num);
  job.status = JobStatus::kRunning;
  job.start_time = started;
  job.alloc = num;
  return job;
}

workload::Ecc ecc(workload::EccType type, double amount) {
  workload::Ecc command;
  command.job_id = 1;
  command.type = type;
  command.amount = amount;
  return command;
}

TEST(EccProcessor, ExtendQueuedJob) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  const auto outcome =
      processor.apply(ecc(workload::EccType::kExtendTime, 60), job, 10);
  EXPECT_EQ(outcome, EccOutcome::kAppliedQueued);
  EXPECT_DOUBLE_EQ(job.req_time, 160);
  EXPECT_DOUBLE_EQ(job.actual_time, 160);
}

TEST(EccProcessor, ExtendRunningJobRequestsReschedule) {
  EccProcessor processor(320, 32);
  JobRun job = running_job(0, 100);
  const auto outcome =
      processor.apply(ecc(workload::EccType::kExtendTime, 50), job, 40);
  EXPECT_EQ(outcome, EccOutcome::kAppliedRunning);
  EXPECT_DOUBLE_EQ(job.req_time, 150);
}

TEST(EccProcessor, ReduceQueuedJob) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  const auto outcome =
      processor.apply(ecc(workload::EccType::kReduceTime, 30), job, 10);
  EXPECT_EQ(outcome, EccOutcome::kAppliedQueued);
  EXPECT_DOUBLE_EQ(job.req_time, 70);
  EXPECT_DOUBLE_EQ(job.actual_time, 70);
}

TEST(EccProcessor, ReductionClampsToMinimumRuntime) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  processor.apply(ecc(workload::EccType::kReduceTime, 1000), job, 10);
  EXPECT_DOUBLE_EQ(job.req_time, 1.0);
  EXPECT_GE(job.actual_time, 1.0);
}

TEST(EccProcessor, ReduceRunningJobStillViable) {
  EccProcessor processor(320, 32);
  JobRun job = running_job(0, 100);
  // At t=40, reduce to 70: elapsed 40 < 70 -> keep running.
  const auto outcome =
      processor.apply(ecc(workload::EccType::kReduceTime, 30), job, 40);
  EXPECT_EQ(outcome, EccOutcome::kAppliedRunning);
}

TEST(EccProcessor, ReduceRunningJobBelowElapsedCompletesIt) {
  EccProcessor processor(320, 32);
  JobRun job = running_job(0, 100);
  // At t=80, reduce by 30 -> new duration 70 < elapsed 80 -> complete now.
  const auto outcome =
      processor.apply(ecc(workload::EccType::kReduceTime, 30), job, 80);
  EXPECT_EQ(outcome, EccOutcome::kCompletedJob);
}

TEST(EccProcessor, RejectsFinishedJob) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job();
  job.status = JobStatus::kCompleted;
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendTime, 10), job, 0),
            EccOutcome::kRejectedFinished);
  job.status = JobStatus::kKilled;
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kReduceTime, 10), job, 1),
            EccOutcome::kRejectedFinished);
}

TEST(EccProcessor, ResizesQueuedJobOnly) {
  EccProcessor processor(320, 32);
  JobRun queued = waiting_job(100, 64);
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendProcs, 32), queued, 0),
            EccOutcome::kAppliedQueued);
  EXPECT_EQ(queued.num, 96);
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kReduceProcs, 64), queued, 1),
            EccOutcome::kAppliedQueued);
  EXPECT_EQ(queued.num, 32);

  JobRun running = running_job(0, 100, 64);
  EXPECT_EQ(
      processor.apply(ecc(workload::EccType::kExtendProcs, 32), running, 2),
      EccOutcome::kRejectedShape);
  EXPECT_EQ(running.num, 64);
}

TEST(EccProcessor, ResizeClampsToMachine) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100, 300);
  processor.apply(ecc(workload::EccType::kExtendProcs, 500), job, 0);
  EXPECT_EQ(job.num, 320);
  // A later extension is a no-op -> rejected by bounds.
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendProcs, 5), job, 1),
            EccOutcome::kRejectedBounds);
}

TEST(EccProcessor, StatsAccumulate) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  processor.apply(ecc(workload::EccType::kExtendTime, 60), job, 0);
  processor.apply(ecc(workload::EccType::kReduceTime, 40), job, 1);
  JobRun done = waiting_job();
  done.status = JobStatus::kCompleted;
  processor.apply(ecc(workload::EccType::kExtendTime, 5), done, 2);
  const EccStats& stats = processor.stats();
  EXPECT_EQ(stats.processed, 3u);
  EXPECT_EQ(stats.extensions, 1u);
  EXPECT_EQ(stats.reductions, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_DOUBLE_EQ(stats.time_added, 60);
  EXPECT_DOUBLE_EQ(stats.time_removed, 40);
}

TEST(EccProcessorConflict, SameInstantContradictoryTimePairFirstWins) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendTime, 60), job, 10),
            EccOutcome::kAppliedQueued);
  // The contradictory reduction arrives at the exact same instant: skipped,
  // deterministically, whatever order the file listed them in.
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kReduceTime, 30), job, 10),
            EccOutcome::kSkippedConflict);
  EXPECT_DOUBLE_EQ(job.req_time, 160);
  EXPECT_EQ(processor.stats().conflicts, 1u);
  EXPECT_EQ(processor.stats().rejected, 0u);
}

TEST(EccProcessorConflict, SameInstantDuplicateSkipped) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  processor.apply(ecc(workload::EccType::kExtendTime, 60), job, 10);
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendTime, 60), job, 10),
            EccOutcome::kSkippedConflict);
  EXPECT_DOUBLE_EQ(job.req_time, 160);  // applied once, not twice
  EXPECT_EQ(processor.stats().conflicts, 1u);
}

TEST(EccProcessorConflict, IndependentDimensionsBothApply) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100, 64);
  // Time and processor dimensions are independent axes: one same-instant
  // command per axis is legitimate elasticity, not a conflict.
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendTime, 60), job, 10),
            EccOutcome::kAppliedQueued);
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendProcs, 32), job, 10),
            EccOutcome::kAppliedQueued);
  EXPECT_DOUBLE_EQ(job.req_time, 160);
  EXPECT_EQ(job.num, 96);
  EXPECT_EQ(processor.stats().conflicts, 0u);
}

TEST(EccProcessorConflict, DistinctInstantsBothApply) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  processor.apply(ecc(workload::EccType::kExtendTime, 60), job, 10);
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kReduceTime, 30), job, 20),
            EccOutcome::kAppliedQueued);
  EXPECT_DOUBLE_EQ(job.req_time, 130);
  EXPECT_EQ(processor.stats().conflicts, 0u);
}

TEST(EccProcessorConflict, DistinctJobsSameInstantBothApply) {
  EccProcessor processor(320, 32);
  JobRun first = waiting_job(100);
  JobRun second = waiting_job(100);
  second.id = 2;
  workload::Ecc for_second = ecc(workload::EccType::kExtendTime, 60);
  for_second.job_id = 2;
  processor.apply(ecc(workload::EccType::kExtendTime, 60), first, 10);
  EXPECT_EQ(processor.apply(for_second, second, 10),
            EccOutcome::kAppliedQueued);
  EXPECT_DOUBLE_EQ(second.req_time, 160);
  EXPECT_EQ(processor.stats().conflicts, 0u);
}

TEST(EccProcessorConflict, ConflictShieldClaimsEvenWhenFirstIsRejected) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  job.status = JobStatus::kCompleted;
  // The first command owns the (job, instant, dimension) slot even though
  // the job already finished; a same-instant follower is still a conflict,
  // keeping resolution independent of per-command outcomes.
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendTime, 60), job, 10),
            EccOutcome::kRejectedFinished);
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kReduceTime, 30), job, 10),
            EccOutcome::kSkippedConflict);
  EXPECT_EQ(processor.stats().conflicts, 1u);
}

TEST(EccProcessorConflict, MalformedAmountsRejectedNotAsserted) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendTime, -5), job, 10),
            EccOutcome::kRejectedBounds);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kReduceTime, nan), job, 10),
            EccOutcome::kRejectedBounds);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendProcs, inf), job, 10),
            EccOutcome::kRejectedBounds);
  EXPECT_DOUBLE_EQ(job.req_time, 100);  // untouched
  EXPECT_EQ(processor.stats().rejected, 3u);
  // A malformed command never claims a conflict-shield slot: the next valid
  // same-instant command still applies.
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendTime, 60), job, 10),
            EccOutcome::kAppliedQueued);
  EXPECT_EQ(processor.stats().conflicts, 0u);
}

}  // namespace
}  // namespace es::sched
