#include "sched/ecc_processor.hpp"

#include <gtest/gtest.h>

namespace es::sched {
namespace {

JobRun waiting_job(double req_time = 100, int num = 8) {
  JobRun job;
  job.spec.id = 1;
  job.req_time = req_time;
  job.actual_time = req_time;
  job.num = num;
  job.status = JobStatus::kWaiting;
  return job;
}

JobRun running_job(double started, double req_time = 100, int num = 8) {
  JobRun job = waiting_job(req_time, num);
  job.status = JobStatus::kRunning;
  job.start_time = started;
  job.alloc = num;
  return job;
}

workload::Ecc ecc(workload::EccType type, double amount) {
  workload::Ecc command;
  command.job_id = 1;
  command.type = type;
  command.amount = amount;
  return command;
}

TEST(EccProcessor, ExtendQueuedJob) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  const auto outcome =
      processor.apply(ecc(workload::EccType::kExtendTime, 60), job, 10);
  EXPECT_EQ(outcome, EccOutcome::kAppliedQueued);
  EXPECT_DOUBLE_EQ(job.req_time, 160);
  EXPECT_DOUBLE_EQ(job.actual_time, 160);
}

TEST(EccProcessor, ExtendRunningJobRequestsReschedule) {
  EccProcessor processor(320, 32);
  JobRun job = running_job(0, 100);
  const auto outcome =
      processor.apply(ecc(workload::EccType::kExtendTime, 50), job, 40);
  EXPECT_EQ(outcome, EccOutcome::kAppliedRunning);
  EXPECT_DOUBLE_EQ(job.req_time, 150);
}

TEST(EccProcessor, ReduceQueuedJob) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  const auto outcome =
      processor.apply(ecc(workload::EccType::kReduceTime, 30), job, 10);
  EXPECT_EQ(outcome, EccOutcome::kAppliedQueued);
  EXPECT_DOUBLE_EQ(job.req_time, 70);
  EXPECT_DOUBLE_EQ(job.actual_time, 70);
}

TEST(EccProcessor, ReductionClampsToMinimumRuntime) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  processor.apply(ecc(workload::EccType::kReduceTime, 1000), job, 10);
  EXPECT_DOUBLE_EQ(job.req_time, 1.0);
  EXPECT_GE(job.actual_time, 1.0);
}

TEST(EccProcessor, ReduceRunningJobStillViable) {
  EccProcessor processor(320, 32);
  JobRun job = running_job(0, 100);
  // At t=40, reduce to 70: elapsed 40 < 70 -> keep running.
  const auto outcome =
      processor.apply(ecc(workload::EccType::kReduceTime, 30), job, 40);
  EXPECT_EQ(outcome, EccOutcome::kAppliedRunning);
}

TEST(EccProcessor, ReduceRunningJobBelowElapsedCompletesIt) {
  EccProcessor processor(320, 32);
  JobRun job = running_job(0, 100);
  // At t=80, reduce by 30 -> new duration 70 < elapsed 80 -> complete now.
  const auto outcome =
      processor.apply(ecc(workload::EccType::kReduceTime, 30), job, 80);
  EXPECT_EQ(outcome, EccOutcome::kCompletedJob);
}

TEST(EccProcessor, RejectsFinishedJob) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job();
  job.status = JobStatus::kCompleted;
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendTime, 10), job, 0),
            EccOutcome::kRejectedFinished);
  job.status = JobStatus::kKilled;
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kReduceTime, 10), job, 0),
            EccOutcome::kRejectedFinished);
}

TEST(EccProcessor, ResizesQueuedJobOnly) {
  EccProcessor processor(320, 32);
  JobRun queued = waiting_job(100, 64);
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendProcs, 32), queued, 0),
            EccOutcome::kAppliedQueued);
  EXPECT_EQ(queued.num, 96);
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kReduceProcs, 64), queued, 0),
            EccOutcome::kAppliedQueued);
  EXPECT_EQ(queued.num, 32);

  JobRun running = running_job(0, 100, 64);
  EXPECT_EQ(
      processor.apply(ecc(workload::EccType::kExtendProcs, 32), running, 0),
      EccOutcome::kRejectedShape);
  EXPECT_EQ(running.num, 64);
}

TEST(EccProcessor, ResizeClampsToMachine) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100, 300);
  processor.apply(ecc(workload::EccType::kExtendProcs, 500), job, 0);
  EXPECT_EQ(job.num, 320);
  // Another extension is a no-op -> rejected by bounds.
  EXPECT_EQ(processor.apply(ecc(workload::EccType::kExtendProcs, 5), job, 0),
            EccOutcome::kRejectedBounds);
}

TEST(EccProcessor, StatsAccumulate) {
  EccProcessor processor(320, 32);
  JobRun job = waiting_job(100);
  processor.apply(ecc(workload::EccType::kExtendTime, 60), job, 0);
  processor.apply(ecc(workload::EccType::kReduceTime, 40), job, 0);
  JobRun done = waiting_job();
  done.status = JobStatus::kCompleted;
  processor.apply(ecc(workload::EccType::kExtendTime, 5), done, 0);
  const EccStats& stats = processor.stats();
  EXPECT_EQ(stats.processed, 3u);
  EXPECT_EQ(stats.extensions, 1u);
  EXPECT_EQ(stats.reductions, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_DOUBLE_EQ(stats.time_added, 60);
  EXPECT_DOUBLE_EQ(stats.time_removed, 40);
}

}  // namespace
}  // namespace es::sched
