#include "sched/reservation.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "cluster/machine.hpp"

namespace es::sched {
namespace {

/// Fixture building a SchedulerContext by hand: a machine with running jobs
/// and explicit queues, no engine.
class ReservationTest : public ::testing::Test {
 protected:
  ReservationTest() : machine_(100, 1) {}

  JobRun* add_active(workload::JobId id, int procs, double started,
                     double req_time, double now) {
    auto job = std::make_unique<JobRun>();
    job->id = id;
    job->num = procs;
    job->req_time = req_time;
    job->actual_time = req_time;
    job->status = JobStatus::kRunning;
    job->start_time = started;
    job->alloc = machine_.allocate(id, procs);
    (void)now;
    active_.push_back(job.get());
    owned_.push_back(std::move(job));
    return active_.back();
  }

  JobRun* add_waiting(workload::JobId id, int procs, double req_time,
                      bool dedicated = false, double start = -1) {
    auto job = std::make_unique<JobRun>();
    job->id = id;
    job->num = procs;
    job->req_time = req_time;
    job->actual_time = req_time;
    job->req_start = start;  // >= 0 marks the job dedicated
    if (dedicated) {
      dedicated_.push_back(job.get());
    } else {
      batch_.push_back(job.get());
    }
    owned_.push_back(std::move(job));
    return owned_.back().get();
  }

  SchedulerContext context(double now) {
    // Active list must be sorted by residual (planned end), id on ties —
    // the invariant the engine maintains incrementally.
    std::sort(active_.begin(), active_.end(),
              [](const JobRun* a, const JobRun* b) {
                const double ea = a->start_time + a->req_time;
                const double eb = b->start_time + b->req_time;
                if (ea != eb) return ea < eb;
                return a->id < b->id;
              });
    SchedulerContext ctx;
    ctx.now = now;
    ctx.machine = &machine_;
    ctx.batch = &batch_;
    ctx.dedicated = &dedicated_;
    ctx.active = &active_;
    return ctx;
  }

  cluster::Machine machine_;
  std::vector<std::unique_ptr<JobRun>> owned_;
  std::vector<JobRun*> active_;
  JobQueue batch_;
  std::vector<JobRun*> dedicated_;
};

TEST_F(ReservationTest, PlannedEndAndResidual) {
  JobRun* job = add_active(1, 10, 100, 50, 0);
  EXPECT_DOUBLE_EQ(planned_end(*job), 150);
  EXPECT_DOUBLE_EQ(planned_residual(*job, 120), 30);
  EXPECT_DOUBLE_EQ(planned_residual(*job, 200), 0);  // never negative
}

TEST_F(ReservationTest, ShadowFromSingleRunningJob) {
  // 60 busy until t=150, 40 free; head needs 70.
  add_active(1, 60, 100, 50, 0);
  const auto ctx = context(120);
  const Freeze freeze = shadow_for_blocked(ctx, 70);
  ASSERT_TRUE(freeze.active);
  EXPECT_DOUBLE_EQ(freeze.fret, 150);            // the job's planned end
  EXPECT_EQ(freeze.frec, 40 + 60 - 70);          // slack beyond the need
}

TEST_F(ReservationTest, ShadowWalksActiveListInResidualOrder) {
  // free = 100 - 90 = 10.  Ends: j1 @ 110 (30 procs), j2 @ 140 (40), j3 @
  // 200 (20).  Need 75: after j1 -> 40, after j2 -> 80 >= 75.
  add_active(1, 30, 10, 100, 0);
  add_active(2, 40, 40, 100, 0);
  add_active(3, 20, 100, 100, 0);
  const auto ctx = context(100);
  const Freeze freeze = shadow_for_blocked(ctx, 75);
  EXPECT_DOUBLE_EQ(freeze.fret, 140);
  EXPECT_EQ(freeze.frec, 10 + 30 + 40 - 75);
}

TEST_F(ReservationTest, ShadowForFullMachineNeed) {
  add_active(1, 100, 0, 100, 0);
  const auto ctx = context(50);
  const Freeze freeze = shadow_for_blocked(ctx, 100);
  EXPECT_DOUBLE_EQ(freeze.fret, 100);
  EXPECT_EQ(freeze.frec, 0);
}

TEST_F(ReservationTest, RespectsAdmitsJobsEndingBeforeFreeze) {
  Freeze freeze{true, 100.0, 5};
  JobRun* short_job = add_waiting(1, 50, 40);
  JobRun* long_small = add_waiting(2, 5, 500);
  JobRun* long_big = add_waiting(3, 50, 500);
  // now = 10: short job ends at 50 < 100 -> fine regardless of size.
  EXPECT_TRUE(respects(freeze, 10, *short_job, 50));
  // long small job crosses the freeze but fits the shadow capacity.
  EXPECT_TRUE(respects(freeze, 10, *long_small, 5));
  // long big job crosses and exceeds shadow capacity.
  EXPECT_FALSE(respects(freeze, 10, *long_big, 50));
  // Inactive freeze admits everything.
  EXPECT_TRUE(respects(Freeze{}, 10, *long_big, 50));
}

TEST_F(ReservationTest, RespectsBoundaryExactEndAtFreeze) {
  Freeze freeze{true, 100.0, 0};
  JobRun* boundary = add_waiting(1, 10, 90);
  // now + req == fret: NOT strictly before, so it needs shadow capacity.
  EXPECT_FALSE(respects(freeze, 10, *boundary, 10));
  EXPECT_TRUE(respects(freeze, 9.999, *boundary, 10));
}

TEST_F(ReservationTest, ConsumeOnlyChargesCrossingJobs) {
  Freeze freeze{true, 100.0, 20};
  JobRun* before = add_waiting(1, 10, 50);
  JobRun* crossing = add_waiting(2, 15, 500);
  consume(freeze, 10, *before, 10);
  EXPECT_EQ(freeze.frec, 20);
  consume(freeze, 10, *crossing, 15);
  EXPECT_EQ(freeze.frec, 5);
}

TEST_F(ReservationTest, ConsumeClampsAtZero) {
  Freeze freeze{true, 100.0, 10};
  JobRun* big = add_waiting(1, 50, 500);
  consume(freeze, 10, *big, 50);
  EXPECT_EQ(freeze.frec, 0);
}

TEST_F(ReservationTest, DedicatedFreezeWithAmpleCapacity) {
  // One running job ends at 150; dedicated job (30 procs) starts at 200.
  add_active(1, 60, 100, 50, 0);
  add_waiting(2, 30, 100, /*dedicated=*/true, /*start=*/200);
  const auto ctx = context(120);
  const Freeze freeze = dedicated_freeze(ctx);
  ASSERT_TRUE(freeze.active);
  EXPECT_DOUBLE_EQ(freeze.fret, 200);
  // At t=200 the machine is empty: capacity 100 minus the group 30.
  EXPECT_EQ(freeze.frec, 70);
}

TEST_F(ReservationTest, DedicatedFreezeSubtractsStillRunningJobs) {
  // Job runs until 300 (>= start 200): capacity at start = 100 - 60.
  add_active(1, 60, 100, 200, 0);
  add_waiting(2, 30, 100, true, 200);
  const auto ctx = context(120);
  const Freeze freeze = dedicated_freeze(ctx);
  EXPECT_DOUBLE_EQ(freeze.fret, 200);
  EXPECT_EQ(freeze.frec, 100 - 60 - 30);
}

TEST_F(ReservationTest, DedicatedFreezeGroupsIdenticalStartTimes) {
  add_waiting(1, 30, 100, true, 200);
  add_waiting(2, 40, 100, true, 200);
  add_waiting(3, 10, 100, true, 300);  // later start: not in the group
  const auto ctx = context(100);
  const Freeze freeze = dedicated_freeze(ctx);
  EXPECT_DOUBLE_EQ(freeze.fret, 200);
  EXPECT_EQ(freeze.frec, 100 - 70);
}

TEST_F(ReservationTest, DedicatedFreezeDelayedWhenGroupCannotFit) {
  // 80 procs busy until t=400; dedicated group of 90 requested at t=200:
  // only 20 free then, so the freeze shifts to t=400 where 100 free up.
  add_active(1, 80, 0, 400, 0);
  add_waiting(2, 90, 100, true, 200);
  const auto ctx = context(100);
  const Freeze freeze = dedicated_freeze(ctx);
  EXPECT_DOUBLE_EQ(freeze.fret, 400);
  EXPECT_EQ(freeze.frec, 20 + 80 - 90);
}

TEST_F(ReservationTest, DedicatedFreezeJobEndingExactlyAtStartCounts) {
  // Paper line 11 uses <=: a job ending exactly at the requested start is
  // conservatively treated as still occupying.
  add_active(1, 60, 100, 100, 0);  // ends exactly at 200
  add_waiting(2, 30, 100, true, 200);
  const auto ctx = context(150);
  const Freeze freeze = dedicated_freeze(ctx);
  EXPECT_EQ(freeze.frec, 100 - 60 - 30);
}

}  // namespace
}  // namespace es::sched
