#include "sched/conservative.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "workload/generator.hpp"

namespace es::sched {
namespace {

using es::testing::batch_job;
using es::testing::make_workload;
using es::testing::run_scenario;

TEST(CapacityProfile, EarliestStartOnEmptyMachine) {
  CapacityProfile profile(0, 10, {});
  EXPECT_DOUBLE_EQ(profile.earliest_start(10, 100), 0);
  EXPECT_EQ(profile.free_at(0), 10);
}

TEST(CapacityProfile, ReservationCarvesCapacity) {
  CapacityProfile profile(0, 10, {});
  profile.reserve(0, 100, 6);
  EXPECT_EQ(profile.free_at(50), 4);
  EXPECT_EQ(profile.free_at(100), 10);
  EXPECT_DOUBLE_EQ(profile.earliest_start(6, 10), 100);
  EXPECT_DOUBLE_EQ(profile.earliest_start(4, 10), 0);
}

TEST(CapacityProfile, WindowMustStayFeasibleForWholeDuration) {
  CapacityProfile profile(0, 10, {});
  profile.reserve(50, 100, 8);  // busy [50, 150)
  // 4 procs for 100 s starting at 0 would cross t=50 with only 2 free.
  EXPECT_DOUBLE_EQ(profile.earliest_start(4, 100), 150);
  // 40-second job fits in front.
  EXPECT_DOUBLE_EQ(profile.earliest_start(4, 40), 0);
}

TEST(CapacityProfile, StackedReservations) {
  CapacityProfile profile(0, 10, {});
  profile.reserve(0, 100, 4);
  profile.reserve(0, 50, 4);
  EXPECT_EQ(profile.free_at(25), 2);
  EXPECT_EQ(profile.free_at(75), 6);
  profile.reserve(50, 50, 6);
  EXPECT_EQ(profile.free_at(75), 0);
  // [0,50) still has 2 free: a 1-proc 10 s job starts immediately; a
  // 60-second one would cross the zero-capacity window and must wait.
  EXPECT_DOUBLE_EQ(profile.earliest_start(1, 10), 0);
  EXPECT_DOUBLE_EQ(profile.earliest_start(1, 60), 100);
  EXPECT_DOUBLE_EQ(profile.earliest_start(3, 10), 100);
}

TEST(Conservative, BackfillsOnlyWhenNoQueuedJobDelayed) {
  // Head (8 procs) reserved at t=100.  Short filler ends before: OK.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 6, 100), batch_job(2, 1, 8, 100),
       batch_job(3, 2, 4, 50)});
  const auto scenario = run_scenario(workload, "CONS");
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 2);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
}

TEST(Conservative, ProtectsSecondQueuedJobUnlikeEasy) {
  // Classic EASY-vs-conservative separation: a backfill that does not delay
  // the head may still delay the *second* queued job; conservative refuses.
  //
  // Machine 10. j1: 5 procs until t=100.  Queue: j2 (10 procs, reserved at
  // t=100), j3 (5 procs, 100 s, reservation t=200), j4 (5 procs, 150 s).
  // j4 fits now and ends at ~t=152 > j2's start... it *does* delay j2
  // under EASY?  No: j4 uses 5 procs, j2 needs all 10 at t=100 -> EASY
  // refuses too.  Use j2 = 6 procs so EASY's single reservation admits j4
  // (ends before j2's shadow? no).  Simpler: verify the conservative
  // reservation order directly: no queued job starts later than its
  // FCFS-profile reservation.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 5, 100), batch_job(2, 1, 10, 50),
       batch_job(3, 2, 5, 100), batch_job(4, 3, 5, 150)});
  const auto scenario = run_scenario(workload, "CONS");
  // FCFS reservations: j2 @100 (needs all 10), j3 @150, j4 @150 (5 free
  // alongside j3? j3 uses 5, so j4's 5 fit at 150 too).
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 150);
  EXPECT_DOUBLE_EQ(scenario.start_of(4), 150);
}

TEST(Conservative, NeverWorseThanFcfsPerJob) {
  // Property: conservative start times are <= FCFS start times, job by job
  // (backfilling without delaying anyone can only help).
  workload::GeneratorConfig config;
  config.num_jobs = 120;
  config.seed = 31;
  config.target_load = 0.9;
  const auto workload = workload::generate(config);
  const auto cons = run_scenario(workload, "CONS");
  const auto fcfs = run_scenario(workload, "FCFS");
  for (const auto& [id, outcome] : cons.by_id) {
    EXPECT_LE(outcome.started, fcfs.job(id).started + 1e-6)
        << "job " << id << " delayed vs FCFS";
  }
}

TEST(Conservative, CapacityNeverExceeded) {
  workload::GeneratorConfig config;
  config.num_jobs = 150;
  config.seed = 32;
  config.target_load = 1.0;
  const auto workload = workload::generate(config);
  const auto scenario = run_scenario(workload, "CONS");
  EXPECT_LE(es::testing::peak_allocation(scenario.result), 320);
}

}  // namespace
}  // namespace es::sched
