#include "sched/sorted_queue.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace es::sched {
namespace {

using es::testing::batch_job;
using es::testing::make_workload;
using es::testing::run_scenario;

// Blocker fills the machine until t=10 so the whole queue is waiting when
// the ordering decision happens.
std::vector<workload::Job> blocked_queue(std::vector<workload::Job> jobs) {
  std::vector<workload::Job> all{batch_job(100, 0, 10, 10)};
  for (auto& job : jobs) all.push_back(job);
  return all;
}

TEST(SortedQueue, SjfOrdersByEstimatedRuntime) {
  // Sizes equal (6) so only one can run at a time; SJF runs them shortest
  // first regardless of arrival order.
  const auto workload = make_workload(
      10, 1,
      blocked_queue({batch_job(1, 1, 6, 300), batch_job(2, 2, 6, 100),
                     batch_job(3, 3, 6, 200)}));
  const auto scenario = run_scenario(workload, "SJF");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 10);
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 110);
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 310);
}

TEST(SortedQueue, SmallestFirstOrdersBySize) {
  const auto workload = make_workload(
      10, 1,
      blocked_queue({batch_job(1, 1, 8, 100), batch_job(2, 2, 2, 100),
                     batch_job(3, 3, 5, 100)}));
  const auto scenario = run_scenario(workload, "SMALLEST");
  // Order 2 (size 2), 3 (size 5) together (2+5 <= 10), then 1.
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 10);
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 10);
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 110);
}

TEST(SortedQueue, LargestFirstOrdersBySizeDescending) {
  const auto workload = make_workload(
      10, 1,
      blocked_queue({batch_job(1, 1, 2, 100), batch_job(2, 2, 8, 100),
                     batch_job(3, 3, 5, 100)}));
  const auto scenario = run_scenario(workload, "LJF");
  // 8 first, 2 fits beside it (8+2=10); 5 waits.
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 10);
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 10);
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 110);
}

TEST(SortedQueue, StableAmongTies) {
  // Equal keys: arrival order preserved.
  const auto workload = make_workload(
      10, 1,
      blocked_queue({batch_job(1, 1, 6, 100), batch_job(2, 2, 6, 100)}));
  const auto scenario = run_scenario(workload, "SJF");
  EXPECT_LT(scenario.start_of(1), scenario.start_of(2));
}

TEST(SortedQueue, GreedyScanStartsNonHeadFits) {
  // LJF: 8 doesn't fit beside the running 6, but 3 does — greedy scan
  // starts it (no reservations in these baselines).
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 6, 100), batch_job(2, 1, 8, 100),
       batch_job(3, 2, 3, 100)});
  const auto scenario = run_scenario(workload, "LJF");
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 2);
}

TEST(SortedQueue, Names) {
  EXPECT_EQ(SortedQueue(QueueOrder::kShortestFirst).name(), "SJF");
  EXPECT_EQ(SortedQueue(QueueOrder::kSmallestFirst).name(), "SMALLEST");
  EXPECT_EQ(SortedQueue(QueueOrder::kLargestFirst).name(), "LJF");
  EXPECT_FALSE(SortedQueue(QueueOrder::kShortestFirst).supports_dedicated());
}

}  // namespace
}  // namespace es::sched
