// JobRunArena contract tests: slot reuse, generation-tagged staleness, the
// hot/cold parallel arrays, and a randomized model check that drives the
// arena through thousands of claim/release cycles against a shadow model.
// The last test closes the loop with src/snap: an engine whose records
// live in the arena must snapshot mid-run and restore bit-identically.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/experiment.hpp"
#include "sched/job_arena.hpp"
#include "snap/snapshot.hpp"
#include "testing/helpers.hpp"
#include "workload/generator.hpp"

namespace es {
namespace {

using sched::JobRun;
using sched::JobRunArena;

TEST(JobRunArena, ClaimInitializesAndTracksLive) {
  JobRunArena arena;
  EXPECT_EQ(arena.live(), 0u);
  JobRun* job = arena.claim();
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(arena.claims(), 1u);
  // Value-initialized record: no state leaks from previous occupants.
  EXPECT_EQ(job->id, 0);
  EXPECT_EQ(job->status, sched::JobStatus::kWaiting);
  EXPECT_EQ(arena.cold(*job).end_time, -1);
  EXPECT_EQ(arena.cold(*job).interruptions, 0);
  EXPECT_EQ(arena.cold(*job).ecc_pending, 0);
  arena.release(job);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(JobRunArena, NullHandleNeverResolves) {
  JobRunArena arena;
  EXPECT_EQ(arena.get(JobRunArena::Handle{}), nullptr);
  EXPECT_EQ(arena.get(JobRunArena::Handle{123, 0}), nullptr);
  // Out of range slot.
  EXPECT_EQ(arena.get(JobRunArena::Handle{1u << 30, 1}), nullptr);
}

TEST(JobRunArena, ReleaseInvalidatesHandlesBeforeReuse) {
  JobRunArena arena;
  JobRun* job = arena.claim();
  const JobRunArena::Handle handle = arena.handle_of(*job);
  EXPECT_EQ(arena.get(handle), job);
  arena.release(job);
  // Stale already — the slot has not even been reused yet.
  EXPECT_EQ(arena.get(handle), nullptr);
}

TEST(JobRunArena, LifoReuseBumpsGeneration) {
  JobRunArena arena;
  JobRun* first = arena.claim();
  const std::uint32_t slot = first->arena_slot;
  const JobRunArena::Handle old_handle = arena.handle_of(*first);
  first->id = 42;
  arena.cold(*first).interruptions = 9;
  arena.release(first);

  JobRun* second = arena.claim();
  // LIFO free list: the most recently released slot is reused first.
  EXPECT_EQ(second->arena_slot, slot);
  EXPECT_EQ(second, first);  // same storage...
  EXPECT_EQ(second->id, 0);  // ...fresh record
  EXPECT_EQ(arena.cold(*second).interruptions, 0);
  const JobRunArena::Handle new_handle = arena.handle_of(*second);
  EXPECT_NE(old_handle.gen, new_handle.gen);
  EXPECT_EQ(arena.get(old_handle), nullptr);  // stale despite live occupant
  EXPECT_EQ(arena.get(new_handle), second);
}

TEST(JobRunArena, GrowsAcrossChunksWithStableAddresses) {
  JobRunArena arena;
  constexpr std::size_t kJobs = JobRunArena::kChunkJobs * 3 + 17;
  std::vector<JobRun*> jobs;
  jobs.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    JobRun* job = arena.claim();
    job->id = static_cast<workload::JobId>(i);
    jobs.push_back(job);
  }
  EXPECT_EQ(arena.live(), kJobs);
  EXPECT_GE(arena.slots(), kJobs);
  // Addresses stay stable across the chunk growth that happened above, and
  // every record still carries the value written at claim time.
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(jobs[i]->id, static_cast<workload::JobId>(i));
    EXPECT_EQ(arena.get(arena.handle_of(*jobs[i])), jobs[i]);
  }
  for (JobRun* job : jobs) arena.release(job);
  EXPECT_EQ(arena.live(), 0u);
}

// Randomized model check: the arena against a shadow map of live records
// and a log of every handle ever issued.  Invariants after every step:
// live handles resolve to the right record with the right payload, every
// released handle misses, live() matches the model.
TEST(JobRunArena, RandomizedModelCheck) {
  JobRunArena arena;
  std::mt19937 rng(20260808);

  struct LiveRecord {
    JobRun* job;
    JobRunArena::Handle handle;
    std::int64_t payload;
  };
  std::vector<LiveRecord> live;
  std::vector<JobRunArena::Handle> stale;
  std::int64_t next_payload = 1;

  for (int step = 0; step < 20000; ++step) {
    const bool do_claim =
        live.empty() || std::uniform_int_distribution<int>(0, 99)(rng) < 55;
    if (do_claim) {
      JobRun* job = arena.claim();
      job->id = next_payload;
      arena.cold(*job).ecc_pending = static_cast<std::int32_t>(step);
      live.push_back({job, arena.handle_of(*job), next_payload});
      ++next_payload;
    } else {
      const std::size_t pick = std::uniform_int_distribution<std::size_t>(
          0, live.size() - 1)(rng);
      arena.release(live[pick].job);
      stale.push_back(live[pick].handle);
      live[pick] = live.back();
      live.pop_back();
    }

    ASSERT_EQ(arena.live(), live.size());
    if (step % 97 == 0) {  // full sweep occasionally; O(n) per check
      for (const LiveRecord& record : live) {
        JobRun* resolved = arena.get(record.handle);
        ASSERT_EQ(resolved, record.job);
        ASSERT_EQ(resolved->id, record.payload);
      }
      for (const JobRunArena::Handle handle : stale)
        ASSERT_EQ(arena.get(handle), nullptr);
    }
  }
  // Model says these are all distinct records: payloads must all differ.
  std::unordered_map<std::uint32_t, std::int64_t> by_slot;
  for (const LiveRecord& record : live) {
    const auto [it, inserted] =
        by_slot.emplace(record.job->arena_slot, record.payload);
    (void)it;
    ASSERT_TRUE(inserted) << "two live records share a slot";
  }
}

// Arena-backed records round-trip through the crash-consistent snapshot
// path: kill a run mid-flight, restore into a fresh engine (fresh arena),
// and the completed run must match the uninterrupted one exactly.
TEST(JobRunArena, SnapshotRestoreRoundTrip) {
  workload::GeneratorConfig config;
  config.machine_procs = 64;
  config.size.unit = 8;
  config.num_jobs = 60;
  config.seed = 3;
  const workload::Workload workload = workload::generate(config);

  const sched::SimulationResult uninterrupted =
      exp::run_workload(workload, "Delayed-LOS");

  core::AlgorithmOptions killed;
  killed.engine.snapshot.every_cycles = 1;
  killed.engine.watchdog.max_events = 150;
  std::string image;
  (void)exp::run_workload_prepared(
      workload, "Delayed-LOS", killed, [&image](sched::Engine& engine) {
        engine.set_snapshot_sink(
            [&image](const std::string& bytes) { image = bytes; });
      });
  ASSERT_FALSE(image.empty());

  snap::SnapshotReader reader(image);
  const sched::SimulationResult resumed =
      exp::resume_workload(workload, "Delayed-LOS", {}, reader);

  EXPECT_EQ(uninterrupted.completed, resumed.completed);
  EXPECT_EQ(uninterrupted.killed, resumed.killed);
  EXPECT_EQ(uninterrupted.cycles, resumed.cycles);
  EXPECT_EQ(uninterrupted.events, resumed.events);
  EXPECT_EQ(uninterrupted.utilization, resumed.utilization);
  EXPECT_EQ(uninterrupted.mean_wait, resumed.mean_wait);
  EXPECT_EQ(uninterrupted.makespan, resumed.makespan);
  ASSERT_EQ(uninterrupted.jobs.size(), resumed.jobs.size());
  for (std::size_t i = 0; i < uninterrupted.jobs.size(); ++i) {
    EXPECT_EQ(uninterrupted.jobs[i].id, resumed.jobs[i].id);
    EXPECT_EQ(uninterrupted.jobs[i].started, resumed.jobs[i].started);
    EXPECT_EQ(uninterrupted.jobs[i].finished, resumed.jobs[i].finished);
  }
}

}  // namespace
}  // namespace es
