#include "sched/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "testing/helpers.hpp"

namespace es::sched {
namespace {

using es::testing::batch_job;
using es::testing::dedicated_job;
using es::testing::make_workload;

core::AlgorithmOptions with_trace() {
  core::AlgorithmOptions options;
  options.engine.record_trace = true;
  return options;
}

TEST(ScheduleTrace, RecordsLifecycleInOrder) {
  const auto workload = make_workload(10, 1, {batch_job(1, 5, 4, 100)});
  const auto result = exp::run_workload(workload, "FCFS", with_trace());
  ASSERT_NE(result.trace, nullptr);
  const auto events = result.trace->of_job(1);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kArrival);
  EXPECT_DOUBLE_EQ(events[0].time, 5);
  EXPECT_EQ(events[1].kind, TraceEventKind::kStart);
  EXPECT_EQ(events[1].procs, 4);
  EXPECT_EQ(events[2].kind, TraceEventKind::kFinish);
  EXPECT_DOUBLE_EQ(events[2].time, 105);
}

TEST(ScheduleTrace, NullWithoutFlag) {
  const auto workload = make_workload(10, 1, {batch_job(1, 0, 4, 10)});
  const auto result = exp::run_workload(workload, "FCFS");
  EXPECT_EQ(result.trace, nullptr);
}

TEST(ScheduleTrace, RecordsKillForOverrunningJob) {
  const auto workload =
      make_workload(10, 1, {batch_job(1, 0, 4, 50, /*actual=*/80)});
  const auto result = exp::run_workload(workload, "FCFS", with_trace());
  ASSERT_NE(result.trace, nullptr);
  EXPECT_EQ(result.trace->of_kind(TraceEventKind::kKill).size(), 1u);
  EXPECT_TRUE(result.trace->of_kind(TraceEventKind::kFinish).empty());
}

TEST(ScheduleTrace, RecordsDedicatedMoveAndEcc) {
  workload::Ecc ecc;
  ecc.issue = 20;
  ecc.job_id = 1;
  ecc.type = workload::EccType::kExtendTime;
  ecc.amount = 30;
  const auto workload = make_workload(
      10, 1, {dedicated_job(1, 0, 4, 50, 10)}, {ecc});
  const auto result =
      exp::run_workload(workload, "Hybrid-LOS-E", with_trace());
  ASSERT_NE(result.trace, nullptr);
  EXPECT_EQ(result.trace->of_kind(TraceEventKind::kDedicatedMove).size(), 1u);
  const auto applied = result.trace->of_kind(TraceEventKind::kEccApplied);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_DOUBLE_EQ(applied[0].detail, 30);
}

TEST(ScheduleTrace, RecordsRejectedEcc) {
  workload::Ecc late;
  late.issue = 80;  // after the job finished
  late.job_id = 1;
  late.type = workload::EccType::kExtendTime;
  late.amount = 5;
  const auto workload =
      make_workload(10, 1, {batch_job(1, 0, 4, 50)}, {late});
  const auto result = exp::run_workload(workload, "EASY-E", with_trace());
  EXPECT_EQ(result.trace->of_kind(TraceEventKind::kEccRejected).size(), 1u);
}

TEST(ScheduleTrace, StartCountMatchesJobCount) {
  workload::GeneratorConfig config;
  config.num_jobs = 150;
  config.seed = 12;
  config.target_load = 0.9;
  const auto workload = workload::generate(config);
  const auto result =
      exp::run_workload(workload, "Delayed-LOS", with_trace());
  EXPECT_EQ(result.trace->of_kind(TraceEventKind::kStart).size(), 150u);
  EXPECT_EQ(result.trace->of_kind(TraceEventKind::kArrival).size(), 150u);
  EXPECT_EQ(result.trace->of_kind(TraceEventKind::kFinish).size() +
                result.trace->of_kind(TraceEventKind::kKill).size(),
            150u);
}

TEST(ScheduleTrace, TimesNonDecreasing) {
  workload::GeneratorConfig config;
  config.num_jobs = 100;
  config.seed = 13;
  const auto workload = workload::generate(config);
  const auto result = exp::run_workload(workload, "EASY", with_trace());
  const auto& events = result.trace->events();
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].time, events[i - 1].time);
}

TEST(ScheduleTrace, CsvOutputShape) {
  ScheduleTrace trace;
  trace.record(1.5, TraceEventKind::kArrival, 7, 32);
  trace.record(2.0, TraceEventKind::kStart, 7, 32);
  std::ostringstream out;
  trace.write_csv(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("time,kind,job,procs,detail"), std::string::npos);
  EXPECT_NE(text.find("arrival"), std::string::npos);
  EXPECT_NE(text.find("start"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(ScheduleTrace, KindNames) {
  EXPECT_STREQ(to_string(TraceEventKind::kResize), "resize");
  EXPECT_STREQ(to_string(TraceEventKind::kEccRejected), "ecc_rejected");
}

}  // namespace
}  // namespace es::sched
