// Streamed-vs-materialized engine parity: Engine::run_streamed must
// reproduce Engine::run byte for byte on the same workload — every
// deterministic metric, counter, ledger and per-job outcome — across the
// algorithm families, chunk sizes that force mid-run refills, ECC
// processing, dedicated jobs, failure injection and checkpointing.  This is
// the contract that lets the million-job bench gate the streaming path on a
// golden fingerprint instead of trusting the memory savings blindly.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "exp/experiment.hpp"
#include "testing/helpers.hpp"
#include "workload/generator.hpp"
#include "workload/source.hpp"

namespace es {
namespace {

/// Bitwise equality for doubles: parity means the same bits, not just
/// values within an epsilon.
::testing::AssertionResult same_bits(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0)
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " (bitwise mismatch)";
}

void expect_jobs_identical(const sched::SimulationResult& m,
                           const sched::SimulationResult& s) {
  ASSERT_EQ(m.jobs.size(), s.jobs.size());
  for (std::size_t i = 0; i < m.jobs.size(); ++i) {
    const sched::JobOutcome& a = m.jobs[i];
    const sched::JobOutcome& b = s.jobs[i];
    EXPECT_EQ(a.id, b.id) << "job " << i;
    EXPECT_EQ(a.dedicated, b.dedicated) << "job " << i;
    EXPECT_EQ(a.killed, b.killed) << "job " << i;
    EXPECT_EQ(a.abandoned, b.abandoned) << "job " << i;
    EXPECT_EQ(a.interruptions, b.interruptions) << "job " << i;
    EXPECT_EQ(a.procs, b.procs) << "job " << i;
    EXPECT_TRUE(same_bits(a.arrival, b.arrival)) << "job " << i;
    EXPECT_TRUE(same_bits(a.started, b.started)) << "job " << i;
    EXPECT_TRUE(same_bits(a.finished, b.finished)) << "job " << i;
    EXPECT_TRUE(same_bits(a.wait, b.wait)) << "job " << i;
    EXPECT_TRUE(same_bits(a.run, b.run)) << "job " << i;
  }
}

/// Every deterministic field (wall timings and peak RSS excluded).
void expect_identical(const sched::SimulationResult& m,
                      const sched::SimulationResult& s) {
  EXPECT_TRUE(same_bits(m.utilization, s.utilization));
  EXPECT_TRUE(same_bits(m.mean_wait, s.mean_wait));
  EXPECT_TRUE(same_bits(m.slowdown, s.slowdown));
  EXPECT_TRUE(same_bits(m.mean_per_job_slowdown, s.mean_per_job_slowdown));
  EXPECT_TRUE(same_bits(m.mean_bounded_slowdown, s.mean_bounded_slowdown));
  EXPECT_TRUE(same_bits(m.mean_run, s.mean_run));
  EXPECT_TRUE(same_bits(m.max_wait, s.max_wait));
  EXPECT_TRUE(same_bits(m.mean_dedicated_delay, s.mean_dedicated_delay));
  EXPECT_EQ(m.dedicated_on_time, s.dedicated_on_time);
  EXPECT_EQ(m.completed, s.completed);
  EXPECT_EQ(m.killed, s.killed);
  EXPECT_EQ(m.abandoned, s.abandoned);
  EXPECT_TRUE(same_bits(m.first_arrival, s.first_arrival));
  EXPECT_TRUE(same_bits(m.last_finish, s.last_finish));
  EXPECT_TRUE(same_bits(m.makespan, s.makespan));
  EXPECT_EQ(m.cycles, s.cycles);
  EXPECT_EQ(m.events, s.events);
  EXPECT_EQ(m.termination, s.termination);
  EXPECT_EQ(m.unfinished, s.unfinished);
  EXPECT_TRUE(same_bits(m.offered_load, s.offered_load));

  EXPECT_EQ(m.ecc.processed, s.ecc.processed);
  EXPECT_EQ(m.ecc.extensions, s.ecc.extensions);
  EXPECT_EQ(m.ecc.reductions, s.ecc.reductions);
  EXPECT_EQ(m.ecc.rejected, s.ecc.rejected);
  EXPECT_EQ(m.ecc.unknown_job, s.ecc.unknown_job);
  EXPECT_EQ(m.ecc.after_finish, s.ecc.after_finish);
  EXPECT_EQ(m.ecc.running_resizes, s.ecc.running_resizes);
  EXPECT_EQ(m.ecc.conflicts, s.ecc.conflicts);

  EXPECT_EQ(m.failure.outages, s.failure.outages);
  EXPECT_EQ(m.failure.interruptions, s.failure.interruptions);
  EXPECT_EQ(m.failure.requeues, s.failure.requeues);
  EXPECT_EQ(m.failure.abandoned, s.failure.abandoned);
  EXPECT_TRUE(same_bits(m.failure.lost_proc_seconds,
                        s.failure.lost_proc_seconds));
  EXPECT_TRUE(same_bits(m.failure.wasted_proc_seconds,
                        s.failure.wasted_proc_seconds));
  EXPECT_TRUE(same_bits(m.failure.goodput_proc_seconds,
                        s.failure.goodput_proc_seconds));
  EXPECT_TRUE(same_bits(m.failure.down_proc_seconds,
                        s.failure.down_proc_seconds));
  EXPECT_EQ(m.failure.checkpoints, s.failure.checkpoints);
  EXPECT_TRUE(same_bits(m.failure.saved_proc_seconds,
                        s.failure.saved_proc_seconds));

  EXPECT_EQ(m.perf.dp.calls, s.perf.dp.calls);
  EXPECT_EQ(m.perf.dp.cache_hits, s.perf.dp.cache_hits);
  EXPECT_EQ(m.perf.dp.table_runs, s.perf.dp.table_runs);
  EXPECT_EQ(m.perf.events.scheduled, s.perf.events.scheduled);
  EXPECT_EQ(m.perf.events.cancelled, s.perf.events.cancelled);
  EXPECT_EQ(m.perf.events.fired, s.perf.events.fired);

  expect_jobs_identical(m, s);
}

/// Runs the workload both ways and asserts full parity.
void check_parity(const workload::Workload& workload,
                  const std::string& algorithm,
                  core::AlgorithmOptions options = {},
                  std::size_t chunk_jobs = 7) {
  const sched::SimulationResult materialized =
      exp::run_workload(workload, algorithm, options);
  workload::MaterializedSource source(workload, chunk_jobs);
  const sched::SimulationResult streamed =
      exp::run_source(source, algorithm, options);
  expect_identical(materialized, streamed);
}

workload::GeneratorConfig small_config(int jobs = 120) {
  workload::GeneratorConfig config;
  config.machine_procs = 64;
  config.size.unit = 8;
  config.num_jobs = jobs;
  config.seed = 11;
  return config;
}

TEST(StreamedEngine, MatchesMaterializedAcrossAlgorithms) {
  const workload::Workload workload = workload::generate(small_config());
  for (const char* algorithm :
       {"FCFS", "EASY", "LOS", "Delayed-LOS", "CONS"}) {
    SCOPED_TRACE(algorithm);
    check_parity(workload, algorithm);
  }
}

TEST(StreamedEngine, MatchesAcrossChunkSizes) {
  const workload::Workload workload = workload::generate(small_config());
  // 1-job chunks maximize refills; a huge chunk degenerates to one pull.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{13},
                                  std::size_t{100000}}) {
    SCOPED_TRACE(chunk);
    check_parity(workload, "Delayed-LOS", {}, chunk);
  }
}

TEST(StreamedEngine, MatchesWithEccsAndElasticity) {
  workload::GeneratorConfig config = small_config();
  config.p_extend = 0.3;
  config.p_reduce = 0.2;
  config.p_extend_procs = 0.2;
  config.p_reduce_procs = 0.2;
  config.max_eccs_per_job = 3;
  const workload::Workload workload = workload::generate(config);
  ASSERT_FALSE(workload.eccs.empty());
  for (const char* algorithm : {"Delayed-LOS-E", "EASY-E", "LOS-E"}) {
    SCOPED_TRACE(algorithm);
    check_parity(workload, algorithm);
  }
  // The same command stream ignored: the pending-command retire gate must
  // not leak into the non-ECC engine.
  check_parity(workload, "Delayed-LOS");
}

TEST(StreamedEngine, MatchesWithDedicatedJobs) {
  workload::GeneratorConfig config = small_config();
  config.p_dedicated = 0.4;
  const workload::Workload workload = workload::generate(config);
  for (const char* algorithm : {"EASY-D", "LOS-D", "Hybrid-LOS"}) {
    SCOPED_TRACE(algorithm);
    check_parity(workload, algorithm);
  }
}

TEST(StreamedEngine, MatchesUnderFailuresEveryRequeuePolicy) {
  const workload::Workload workload = workload::generate(small_config());
  for (const fault::RequeuePolicy policy :
       {fault::RequeuePolicy::kRequeueHead, fault::RequeuePolicy::kRequeueTail,
        fault::RequeuePolicy::kAbandon}) {
    SCOPED_TRACE(static_cast<int>(policy));
    core::AlgorithmOptions options;
    options.engine.failure.enabled = true;
    options.engine.failure.mtbf = 4000;
    options.engine.failure.mttr = 600;
    options.engine.failure.max_nodes = 2;
    options.engine.failure.seed = 5;
    options.engine.requeue = policy;
    check_parity(workload, "Delayed-LOS", options);
  }
}

TEST(StreamedEngine, MatchesWithCheckpointRestart) {
  const workload::Workload workload = workload::generate(small_config());
  core::AlgorithmOptions options;
  options.engine.failure.enabled = true;
  options.engine.failure.mtbf = 4000;
  options.engine.failure.mttr = 600;
  options.engine.failure.max_nodes = 2;
  options.engine.failure.seed = 5;
  options.engine.checkpoint.enabled = true;
  options.engine.checkpoint.interval = 1800;
  options.engine.checkpoint.overhead = 60;
  check_parity(workload, "Delayed-LOS", options);
}

TEST(StreamedEngine, WatchdogAbortFoldsTheSameFinishedJobs) {
  // Aborted runs have two documented divergences (utilization is an
  // over-approximation in bounded mode, unfinished counts only built
  // jobs), so assert the per-job folds instead of full parity.
  const workload::Workload workload = workload::generate(small_config());
  core::AlgorithmOptions options;
  options.engine.watchdog.max_events = 200;
  const sched::SimulationResult materialized =
      exp::run_workload(workload, "Delayed-LOS", options);
  workload::MaterializedSource source(workload, 7);
  const sched::SimulationResult streamed =
      exp::run_source(source, "Delayed-LOS", options);
  EXPECT_EQ(materialized.termination, streamed.termination);
  EXPECT_NE(materialized.termination, sim::TerminationReason::kCompleted);
  EXPECT_EQ(materialized.completed, streamed.completed);
  EXPECT_EQ(materialized.killed, streamed.killed);
  EXPECT_TRUE(same_bits(materialized.mean_wait, streamed.mean_wait));
  EXPECT_EQ(materialized.events, streamed.events);
  expect_jobs_identical(materialized, streamed);
}

TEST(StreamedEngine, GeneratorSourceStreamsWithoutMaterializing) {
  // End-to-end: the generator-backed source against the materialized
  // generate() + run() pipeline, including load calibration.
  workload::GeneratorConfig config = small_config();
  config.target_load = 0.8;
  const workload::Workload workload = workload::generate(config);
  const sched::SimulationResult materialized =
      exp::run_workload(workload, "Delayed-LOS");
  workload::GeneratorSource source(config, 16);
  const sched::SimulationResult streamed =
      exp::run_source(source, "Delayed-LOS");
  expect_identical(materialized, streamed);
}

TEST(StreamedEngine, HandCraftedTieGroupsAtChunkBoundaries) {
  // Equal arrivals straddling the nominal chunk edge: the source must
  // extend the chunk so same-instant arrival order (and any same-instant
  // command ordering) survives streaming.
  std::vector<workload::Job> jobs;
  for (int i = 0; i < 30; ++i)
    jobs.push_back(testing::batch_job(i + 1, 100.0 * (i / 3), 8, 600.0));
  std::vector<workload::Ecc> eccs;
  for (int i = 0; i < 10; ++i) {
    workload::Ecc ecc;
    ecc.job_id = 3 * i + 1;
    ecc.type = workload::EccType::kExtendTime;
    ecc.amount = 120;
    ecc.issue = 100.0 * i;  // same instant as a 3-job arrival group
    eccs.push_back(ecc);
  }
  const workload::Workload workload =
      testing::make_workload(64, 8, jobs, eccs);
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    SCOPED_TRACE(chunk);
    check_parity(workload, "Delayed-LOS-E", {}, chunk);
  }
}

}  // namespace
}  // namespace es
