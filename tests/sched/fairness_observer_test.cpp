// FairnessObserver accounting: the per-pool wait/service ledgers and Jain's
// index deposited into PerfStats::fairness.
#include "sched/attach/fairness_observer.hpp"

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "exp/experiment.hpp"
#include "workload/generator.hpp"

namespace es::sched {
namespace {

workload::GeneratorConfig tenant_config() {
  workload::GeneratorConfig config;
  config.num_jobs = 300;
  config.seed = 23;
  config.target_load = 0.9;
  config.num_users = 16;
  config.num_pools = 3;
  return config;
}

core::AlgorithmOptions observed_options() {
  core::AlgorithmOptions options;
  options.engine.fairshare.pools = {
      {"prod", 2.0, 0.0}, {"batch", 1.0, 0.0}, {"dev", 1.0, 0.0}};
  options.engine.fairshare.collect_stats = true;
  return options;
}

TEST(FairnessObserver, NotCollectedUnlessRequested) {
  workload::GeneratorConfig config = tenant_config();
  const workload::Workload workload = workload::generate(config);
  const SimulationResult result =
      exp::run_workload(workload, "EASY", core::AlgorithmOptions{});
  EXPECT_FALSE(result.perf.fairness.collected);
  EXPECT_TRUE(result.perf.fairness.pools.empty());
}

TEST(FairnessObserver, LedgersAreWellFormed) {
  const workload::Workload workload = workload::generate(tenant_config());
  const SimulationResult result =
      exp::run_workload(workload, "FairShare", observed_options());
  const FairnessStats& fairness = result.perf.fairness;
  ASSERT_TRUE(fairness.collected);
  ASSERT_EQ(fairness.pools.size(), 3u);
  EXPECT_GT(fairness.jain, 0.0);
  EXPECT_LE(fairness.jain, 1.0 + 1e-12);

  double entitlement_sum = 0;
  std::uint64_t started = 0;
  for (const PoolFairnessStats& pool : fairness.pools) {
    EXPECT_FALSE(pool.name.empty());
    EXPECT_GT(pool.weight, 0.0);
    entitlement_sum += pool.entitlement_share;
    started += pool.started;
    EXPECT_LE(pool.wait_p50, pool.wait_p99 + 1e-9) << pool.name;
    EXPECT_LE(pool.wait_p99, pool.wait_max + 1e-9) << pool.name;
    EXPECT_GE(pool.wait_mean, 0.0) << pool.name;
    EXPECT_GE(pool.satisfaction, 0.0) << pool.name;
    EXPECT_LE(pool.satisfaction, 1.0) << pool.name;
    EXPECT_GE(pool.backlogged_seconds, 0.0) << pool.name;
    EXPECT_GE(pool.service_share, 0.0) << pool.name;
  }
  EXPECT_NEAR(entitlement_sum, 1.0, 1e-9);
  // Every non-dedicated start records one wait sample on some pool.
  EXPECT_GE(started, result.completed);
}

TEST(FairnessObserver, CollectsUnderNonFairPoliciesToo) {
  // The observer measures; it does not require the policy to be
  // pool-aware.  This is exactly how the fairshare study scores the LOS
  // baselines.
  const workload::Workload workload = workload::generate(tenant_config());
  const SimulationResult result =
      exp::run_workload(workload, "Delayed-LOS", observed_options());
  ASSERT_TRUE(result.perf.fairness.collected);
  EXPECT_EQ(result.perf.fairness.pools.size(), 3u);
}

TEST(FairnessObserver, SinglePoolIsPerfectlyFair) {
  workload::GeneratorConfig config = tenant_config();
  config.num_users = 0;  // untagged: everything lands in pool 0
  config.num_pools = 0;
  const workload::Workload workload = workload::generate(config);
  core::AlgorithmOptions options;
  options.engine.fairshare.collect_stats = true;
  const SimulationResult result =
      exp::run_workload(workload, "EASY", options);
  ASSERT_TRUE(result.perf.fairness.collected);
  EXPECT_DOUBLE_EQ(result.perf.fairness.jain, 1.0);
}

}  // namespace
}  // namespace es::sched
