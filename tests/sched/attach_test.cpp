// Engine attachment chain: the typed lifecycle event bus, the
// CycleStatsObserver histograms, external observers via add_observer, and
// the paranoid-mode cross-checks against from-scratch recomputation.
#include "sched/attach/observer.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "sched/engine.hpp"
#include "sched/fcfs.hpp"
#include "sched/perf.hpp"
#include "testing/helpers.hpp"

namespace es::sched {
namespace {

using es::testing::batch_job;
using es::testing::make_workload;

std::uint64_t histogram_sum(const std::uint64_t (&buckets)[CycleStats::kBuckets]) {
  std::uint64_t sum = 0;
  for (std::uint64_t count : buckets) sum += count;
  return sum;
}

TEST(CycleStats, BucketRangesAreLog2) {
  EXPECT_EQ(CycleStats::bucket_of(0), 0);
  EXPECT_EQ(CycleStats::bucket_of(1), 1);
  EXPECT_EQ(CycleStats::bucket_of(2), 2);
  EXPECT_EQ(CycleStats::bucket_of(3), 2);
  EXPECT_EQ(CycleStats::bucket_of(4), 3);
  EXPECT_EQ(CycleStats::bucket_of(7), 3);
  EXPECT_EQ(CycleStats::bucket_of(8), 4);
  // The last bucket absorbs every overflow.
  EXPECT_EQ(CycleStats::bucket_of(1u << 20), CycleStats::kBuckets - 1);
  EXPECT_EQ(CycleStats::bucket_lo(0), 0u);
  EXPECT_EQ(CycleStats::bucket_hi(0), 0u);
  EXPECT_EQ(CycleStats::bucket_lo(3), 4u);
  EXPECT_EQ(CycleStats::bucket_hi(3), 7u);
  for (std::uint64_t value : {0ull, 1ull, 5ull, 600ull}) {
    const int b = CycleStats::bucket_of(value);
    if (b < CycleStats::kBuckets - 1) {
      EXPECT_GE(value, CycleStats::bucket_lo(b)) << value;
      EXPECT_LE(value, CycleStats::bucket_hi(b)) << value;
    }
  }
}

TEST(CycleStats, DefaultChainLeavesStatsZero) {
  const auto workload = make_workload(10, 1, {batch_job(1, 0, 4, 10)});
  const auto result = exp::run_workload(workload, "FCFS");
  EXPECT_EQ(result.perf.cycle.cycles, 0u);
  EXPECT_EQ(result.perf.cycle.starts, 0u);
  EXPECT_EQ(histogram_sum(result.perf.cycle.queue_depth), 0u);
}

TEST(CycleStats, CollectsPerCycleHistogramsWhenEnabled) {
  core::AlgorithmOptions options;
  options.engine.collect_cycle_stats = true;
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 8, 100), batch_job(2, 1, 8, 100),
       batch_job(3, 2, 8, 100), batch_job(4, 3, 2, 10)});
  const auto result = exp::run_workload(workload, "FCFS", options);
  const CycleStats& cycle = result.perf.cycle;
  EXPECT_EQ(cycle.cycles, result.cycles);
  EXPECT_GT(cycle.cycles, 0u);
  EXPECT_EQ(cycle.starts, 4u);
  // Every cycle lands in exactly one bucket of each histogram.
  EXPECT_EQ(histogram_sum(cycle.queue_depth), cycle.cycles);
  EXPECT_EQ(histogram_sum(cycle.dp_calls), cycle.cycles);
  // Three 8-proc jobs queue behind each other, so some cycle saw depth >= 2.
  EXPECT_GE(cycle.max_queue_depth, 2u);
}

TEST(CycleStats, CountsBackfilledStarts) {
  // EASY backfill: two wide jobs serialize, the narrow late arrival slides
  // past the waiting queue head into the free 2-proc gap.
  core::AlgorithmOptions options;
  options.engine.collect_cycle_stats = true;
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 8, 100), batch_job(2, 1, 8, 100),
       batch_job(3, 2, 2, 50)});
  const auto result = exp::run_workload(workload, "EASY", options);
  EXPECT_EQ(result.perf.cycle.starts, 3u);
  EXPECT_GE(result.perf.cycle.backfill_starts, 1u);
  // Job 3 ran inside job 1's window rather than after the queue drained.
  for (const auto& job : result.jobs)
    if (job.id == 3) EXPECT_LT(job.started, 100.0);
}

TEST(CycleStats, AggregatesAcrossRuns) {
  CycleStats a;
  a.cycles = 3;
  a.starts = 2;
  a.max_queue_depth = 7;
  a.queue_depth[2] = 3;
  CycleStats b;
  b.cycles = 5;
  b.backfill_starts = 1;
  b.max_queue_depth = 4;
  b.queue_depth[2] = 1;
  b.dp_calls[0] = 5;
  a += b;
  EXPECT_EQ(a.cycles, 8u);
  EXPECT_EQ(a.starts, 2u);
  EXPECT_EQ(a.backfill_starts, 1u);
  EXPECT_EQ(a.max_queue_depth, 7u);  // max, not sum
  EXPECT_EQ(a.queue_depth[2], 4u);
  EXPECT_EQ(a.dp_calls[0], 5u);
}

/// Counts every lifecycle hook — proves the bus is open to observers that
/// are not engine built-ins.
class CountingObserver final : public EngineObserver {
 public:
  std::uint64_t arrivals = 0;
  std::uint64_t starts = 0;
  std::uint64_t backfilled = 0;
  std::uint64_t finishes = 0;
  std::uint64_t cycle_begins = 0;
  std::uint64_t cycle_ends = 0;
  mutable std::uint64_t collects = 0;
  CycleInfo last_cycle;

  void on_cycle_begin(const CycleInfo& info) override {
    ++cycle_begins;
    EXPECT_EQ(info.cycle, cycle_begins);
  }
  void on_cycle_end(const CycleInfo& info) override {
    ++cycle_ends;
    last_cycle = info;
  }
  void on_arrival(sim::Time, const JobRun&) override { ++arrivals; }
  void on_start(sim::Time, const JobRun&, bool was_backfilled) override {
    ++starts;
    if (was_backfilled) ++backfilled;
  }
  void on_finish(sim::Time, const JobRun&) override { ++finishes; }
  void on_collect(SimulationResult&) const override { ++collects; }
};

TEST(AttachmentChain, ExternalObserverSeesTheWholeLifecycle) {
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 4, 10), batch_job(2, 5, 4, 10)});
  EngineConfig config;
  config.machine_procs = workload.machine_procs;
  config.granularity = workload.granularity;
  Fcfs policy;
  Engine engine(config, policy);
  CountingObserver counter;
  engine.add_observer(&counter);
  const SimulationResult result = engine.run(workload);
  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(counter.arrivals, 2u);
  EXPECT_EQ(counter.starts, 2u);
  EXPECT_EQ(counter.finishes, 2u);
  EXPECT_EQ(counter.collects, 1u);
  EXPECT_EQ(counter.cycle_begins, counter.cycle_ends);
  EXPECT_EQ(counter.cycle_begins, result.cycles);
  // After the last cycle everything has drained.
  EXPECT_EQ(counter.last_cycle.batch_depth, 0u);
  EXPECT_EQ(counter.last_cycle.active_jobs, 0u);
}

TEST(AttachmentChain, ExternalObserverComposesWithBuiltIns) {
  // record_trace + collect_cycle_stats put two built-ins on the chain; the
  // external observer rides behind them and sees the identical lifecycle.
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 8, 100), batch_job(2, 1, 8, 100),
              batch_job(3, 2, 2, 50)});
  EngineConfig config;
  config.machine_procs = workload.machine_procs;
  config.granularity = workload.granularity;
  config.record_trace = true;
  config.collect_cycle_stats = true;
  Fcfs policy;
  Engine engine(config, policy);
  CountingObserver counter;
  engine.add_observer(&counter);
  const SimulationResult result = engine.run(workload);
  ASSERT_NE(result.trace, nullptr);
  EXPECT_EQ(counter.starts, result.perf.cycle.starts);
  EXPECT_EQ(counter.backfilled, result.perf.cycle.backfill_starts);
  EXPECT_EQ(counter.cycle_begins, result.perf.cycle.cycles);
}

TEST(AttachmentChain, ParanoidCrossChecksObserverLedgers) {
  // Every built-in attachment enabled at once, with paranoid mode
  // re-deriving their ledgers from scratch after each cycle: failures
  // preempt and requeue jobs, checkpoints bank work, ECCs resize, the
  // trace records, cycle stats accumulate.  Any incremental/-from-scratch
  // divergence asserts inside the run.
  exp::RunSpec spec;
  spec.workload.num_jobs = 60;
  spec.workload.seed = 5;
  spec.workload.target_load = 0.9;
  spec.workload.p_extend = 0.3;
  spec.workload.p_reduce = 0.2;
  spec.algorithm = "Delayed-LOS-E";
  spec.options.engine.paranoid = true;
  spec.options.engine.collect_cycle_stats = true;
  spec.options.engine.record_trace = true;
  spec.options.engine.failure.enabled = true;
  spec.options.engine.failure.seed = 7;
  spec.options.engine.failure.mtbf = 2000;
  spec.options.engine.failure.mttr = 300;
  spec.options.engine.failure.max_nodes = 2;
  spec.options.engine.checkpoint.enabled = true;
  spec.options.engine.checkpoint.interval = 200;
  spec.options.engine.checkpoint.overhead = 5;
  spec.options.engine.watchdog.no_progress_cycles = 10000;
  const auto result = exp::run_once(spec);
  EXPECT_EQ(result.termination, sim::TerminationReason::kCompleted);
  EXPECT_EQ(result.completed + result.killed + result.abandoned, 60u);
  EXPECT_GT(result.ecc.processed, 0u);
  EXPECT_EQ(result.perf.cycle.cycles, result.cycles);
  EXPECT_EQ(histogram_sum(result.perf.cycle.queue_depth),
            result.perf.cycle.cycles);
}

TEST(AttachmentChain, ParanoidRunMatchesPlainRun) {
  // Paranoid mode only checks; it must not perturb a single metric.
  exp::RunSpec spec;
  spec.workload.num_jobs = 40;
  spec.workload.seed = 11;
  spec.workload.target_load = 0.8;
  spec.algorithm = "Delayed-LOS";
  spec.options.engine.failure.enabled = true;
  spec.options.engine.failure.mtbf = 3000;
  spec.options.engine.failure.mttr = 200;
  const auto plain = exp::run_once(spec);
  spec.options.engine.paranoid = true;
  spec.options.engine.collect_cycle_stats = true;
  const auto paranoid = exp::run_once(spec);
  EXPECT_EQ(paranoid.utilization, plain.utilization);
  EXPECT_EQ(paranoid.mean_wait, plain.mean_wait);
  EXPECT_EQ(paranoid.slowdown, plain.slowdown);
  EXPECT_EQ(paranoid.failure.interruptions, plain.failure.interruptions);
  EXPECT_EQ(paranoid.cycles, plain.cycles);
}

}  // namespace
}  // namespace es::sched
