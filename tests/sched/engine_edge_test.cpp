// Engine edge cases: event-ordering corners, bulk arrivals, pre-arrival
// ECCs, and interactions between ECCs and dedicated reservations.
#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace es::sched {
namespace {

using es::testing::batch_job;
using es::testing::dedicated_job;
using es::testing::make_workload;
using es::testing::run_scenario;

workload::Ecc make_ecc(workload::JobId id, double issue,
                       workload::EccType type, double amount) {
  workload::Ecc ecc;
  ecc.job_id = id;
  ecc.issue = issue;
  ecc.type = type;
  ecc.amount = amount;
  return ecc;
}

TEST(EngineEdge, BulkSimultaneousArrivalsAllStart) {
  std::vector<workload::Job> jobs;
  for (int i = 1; i <= 10; ++i) jobs.push_back(batch_job(i, 0, 1, 50));
  const auto scenario = run_scenario(make_workload(10, 1, jobs), "EASY");
  for (int i = 1; i <= 10; ++i) EXPECT_DOUBLE_EQ(scenario.start_of(i), 0);
}

TEST(EngineEdge, FullMachineJobRunsAlone) {
  const auto workload = make_workload(
      320, 32, {batch_job(1, 0, 320, 100), batch_job(2, 1, 32, 10)});
  const auto scenario = run_scenario(workload, "Delayed-LOS");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 0);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
}

TEST(EngineEdge, EccIssuedBeforeArrivalAdjustsSubmission) {
  // A user amends the request before the job even enters the system: the
  // command applies to the (pre-arrival) record, so the job runs with the
  // extended duration from the start.
  const auto workload = make_workload(
      10, 1, {batch_job(1, 100, 4, 50)},
      {make_ecc(1, 10, workload::EccType::kExtendTime, 25)});
  const auto scenario = run_scenario(workload, "EASY-E");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 100);
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 175);
}

TEST(EngineEdge, EccOnQueuedDedicatedShortensItsReservation) {
  // Dedicated job [100, 180) initially blocks a 200 s batch job (crosses
  // the freeze); after an RT at t=5 cuts it to 30 s the batch job still
  // must respect the freeze, but the dedicated job releases earlier, so
  // the batch job starts at 130 instead of 180.
  const auto workload = make_workload(
      10, 1,
      {dedicated_job(1, 0, 8, 80, 100), batch_job(2, 1, 6, 200)},
      {make_ecc(1, 5, workload::EccType::kReduceTime, 50)});
  const auto scenario = run_scenario(workload, "Hybrid-LOS-E");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 100);
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 130);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 130);
}

TEST(EngineEdge, KilledJobFreesCapacityAtKillBy) {
  // Job 1 lies about its runtime (actual 500 vs estimate 100): killed at
  // 100, so job 2 starts then rather than at 500.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 10, 100, /*actual=*/500), batch_job(2, 1, 10, 10)});
  const auto scenario = run_scenario(workload, "EASY");
  EXPECT_TRUE(scenario.job(1).killed);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
}

TEST(EngineEdge, ExtensionMovesKillByButKeepsOverrunGap) {
  // Estimate 100 / actual 150: killed at 100 without elasticity.  An ET
  // +60 at t=50 moves *both* the kill-by and the true requirement (the
  // user asked for more time because the computation needs it), so the
  // job now dies at 160 with the same 50 s overrun gap — an ET changes
  // the deadline, not the estimate's accuracy.
  const auto rigid = run_scenario(
      make_workload(10, 1, {batch_job(1, 0, 4, 100, /*actual=*/150)}),
      "EASY-E");
  EXPECT_TRUE(rigid.job(1).killed);
  EXPECT_DOUBLE_EQ(rigid.end_of(1), 100);

  const auto extended = run_scenario(
      make_workload(10, 1, {batch_job(1, 0, 4, 100, /*actual=*/150)},
                    {make_ecc(1, 50, workload::EccType::kExtendTime, 60)}),
      "EASY-E");
  EXPECT_TRUE(extended.job(1).killed);
  EXPECT_DOUBLE_EQ(extended.end_of(1), 160);
}

TEST(EngineEdge, DedicatedJobsWithIdenticalStartShareTheInstant) {
  const auto workload = make_workload(
      10, 1,
      {dedicated_job(1, 0, 5, 20, 50), dedicated_job(2, 0, 5, 20, 50)});
  const auto scenario = run_scenario(workload, "Hybrid-LOS");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 50);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 50);
}

TEST(EngineEdge, ManySmallJobsDrainInFifoUnderFcfs) {
  std::vector<workload::Job> jobs;
  for (int i = 1; i <= 50; ++i) jobs.push_back(batch_job(i, i, 10, 10));
  const auto scenario = run_scenario(make_workload(10, 1, jobs), "FCFS");
  for (int i = 2; i <= 50; ++i)
    EXPECT_GE(scenario.start_of(i), scenario.start_of(i - 1));
}

TEST(EngineEdge, ZeroWaitWorkloadHasSlowdownOne) {
  const auto workload = make_workload(
      320, 32, {batch_job(1, 0, 32, 100), batch_job(2, 200, 32, 100)});
  const auto scenario = run_scenario(workload, "LOS");
  EXPECT_DOUBLE_EQ(scenario.result.mean_wait, 0);
  EXPECT_DOUBLE_EQ(scenario.result.slowdown, 1.0);
}

}  // namespace
}  // namespace es::sched
