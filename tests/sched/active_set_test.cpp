// Incremental active-set maintenance audit.
//
// The engine keeps `active_` sorted by (planned end, job id) incrementally —
// insert on start, reposition on ECC/resize, O(1) removal via back-reference
// on finish/preempt — instead of re-sorting a snapshot every cycle.  These
// tests wrap a real policy with an auditor that, at every cycle boundary AND
// after every intra-cycle start(), re-sorts the live view from scratch and
// demands element-wise equality, exact `active_index` back-references, and a
// version counter that bumps whenever the observable (end, id) signature
// changes.  The scenarios deliberately hit every mutation path: plain
// start/finish churn, ECC extend/reduce and running-resize repositioning,
// failure preemption with head/tail requeue, and checkpoint-resume requeue.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/factory.hpp"
#include "sched/engine.hpp"
#include "sched/job_state.hpp"
#include "sched/scheduler.hpp"
#include "testing/helpers.hpp"
#include "workload/generator.hpp"

namespace es::sched {
namespace {

using es::testing::batch_job;
using es::testing::make_workload;

double planned_end(const JobRun& job) {
  return job.start_time + job.estimated_duration();
}

/// (planned end, id) signature of the active view — the exact order key the
/// engine maintains.  Two equal signatures may still differ in version
/// (reposition to the same place bumps), but a changed signature must come
/// with a changed version or Conservative's profile cache would go stale.
std::vector<std::pair<double, workload::JobId>> signature_of(
    const std::vector<JobRun*>& active) {
  std::vector<std::pair<double, workload::JobId>> signature;
  signature.reserve(active.size());
  for (const JobRun* job : active)
    signature.emplace_back(planned_end(*job), job->id);
  return signature;
}

/// Pass-through policy that audits the active view around the inner cycle.
class ActiveOrderAuditor : public Scheduler {
 public:
  explicit ActiveOrderAuditor(Scheduler& inner) : inner_(&inner) {}

  std::string name() const override { return inner_->name(); }
  bool supports_dedicated() const override {
    return inner_->supports_dedicated();
  }
  DpCounters dp_counters() const override { return inner_->dp_counters(); }
  void set_dp_cache(bool enabled) override { inner_->set_dp_cache(enabled); }

  void cycle(SchedulerContext& ctx) override {
    verify(ctx, "cycle entry");
    // The version key only has to be fresh at cycle entry (policies read it
    // once); if the set observably changed since the last entry the key must
    // have moved.
    const auto signature = signature_of(*ctx.active);
    if (seen_entry_ && signature != entry_signature_) {
      EXPECT_NE(ctx.active_version, entry_version_)
          << "active set changed but the cache key did not";
    }
    seen_entry_ = true;
    entry_signature_ = signature;
    entry_version_ = ctx.active_version;

    SchedulerContext wrapped = ctx;
    const std::function<void(JobRun*)> inner_start = ctx.start;
    wrapped.start = [this, &ctx, inner_start](JobRun* job) {
      inner_start(job);
      // The live view must already contain the new runner, in order, before
      // the policy's next freeze computation looks at it.
      verify(ctx, "after start()");
      ++starts_audited_;
    };
    inner_->cycle(wrapped);
    verify(ctx, "cycle exit");
    ++cycles_audited_;
  }

  std::uint64_t cycles_audited() const { return cycles_audited_; }
  std::uint64_t starts_audited() const { return starts_audited_; }

 private:
  void verify(const SchedulerContext& ctx, const char* where) {
    const std::vector<JobRun*>& active = *ctx.active;
    // From-scratch re-sort; (end, id) is a strict total order (ids unique),
    // so there is exactly one correct arrangement to compare against.
    std::vector<JobRun*> resorted = active;
    std::sort(resorted.begin(), resorted.end(),
              [](const JobRun* a, const JobRun* b) {
                const double ea = planned_end(*a);
                const double eb = planned_end(*b);
                if (ea != eb) return ea < eb;
                return a->id < b->id;
              });
    for (std::size_t i = 0; i < active.size(); ++i) {
      EXPECT_EQ(active[i], resorted[i])
          << where << ": incremental order diverges from a from-scratch "
          << "re-sort at position " << i << " (t=" << ctx.now << ")";
      EXPECT_EQ(active[i]->active_index, static_cast<std::ptrdiff_t>(i))
          << where << ": stale back-reference for job "
          << active[i]->id;
      EXPECT_EQ(active[i]->status, JobStatus::kRunning)
          << where << ": non-running job " << active[i]->id
          << " in the active set";
      EXPECT_FALSE(active[i]->in_batch_queue)
          << where << ": job " << active[i]->id
          << " is simultaneously active and batch-queued";
    }
    // The intrusive batch queue must stay disjoint from the active set and
    // internally consistent.
    JobRun* prev = nullptr;
    for (JobRun* job : *ctx.batch) {
      EXPECT_TRUE(job->in_batch_queue);
      EXPECT_EQ(job->active_index, -1)
          << where << ": queued job " << job->id
          << " still holds an active index";
      EXPECT_EQ(job->queue_prev, prev)
          << where << ": broken intrusive link before job " << job->id;
      prev = job;
    }
  }

  Scheduler* inner_;
  std::uint64_t cycles_audited_ = 0;
  std::uint64_t starts_audited_ = 0;
  bool seen_entry_ = false;
  std::vector<std::pair<double, workload::JobId>> entry_signature_;
  std::uint64_t entry_version_ = 0;
};

struct AuditedRun {
  SimulationResult result;
  std::uint64_t cycles = 0;
  std::uint64_t starts = 0;
};

AuditedRun run_audited(const workload::Workload& workload,
                       const std::string& algorithm,
                       core::AlgorithmOptions options = {}) {
  core::Algorithm algo = core::make_algorithm(algorithm, options);
  ActiveOrderAuditor auditor(*algo.policy);
  EngineConfig config;
  config.machine_procs = workload.machine_procs;
  config.granularity = workload.granularity;
  config.process_eccs = algo.process_eccs;
  config.allow_running_resize = algo.allow_running_resize;
  config.paranoid = true;  // engine-side invariants in the same run
  config.failure = options.engine.failure;
  config.requeue = options.engine.requeue;
  config.checkpoint = options.engine.checkpoint;
  AuditedRun run;
  run.result = simulate(config, auditor, workload);
  run.cycles = auditor.cycles_audited();
  run.starts = auditor.starts_audited();
  return run;
}

workload::Ecc ecc_at(double issue, workload::JobId job_id,
                     workload::EccType type, double amount) {
  workload::Ecc ecc;
  ecc.issue = issue;
  ecc.job_id = job_id;
  ecc.type = type;
  ecc.amount = amount;
  return ecc;
}

TEST(ActiveSet, StartFinishChurnKeepsOrderUnderLoad) {
  workload::GeneratorConfig config;
  config.num_jobs = 200;
  config.seed = 11;
  config.target_load = 1.1;  // deep queue: many candidates per cycle
  config.p_small = 0.5;
  const auto run = run_audited(workload::generate(config), "Delayed-LOS");
  EXPECT_EQ(run.result.completed + run.result.killed, 200u);
  EXPECT_GE(run.starts, 200u);
  EXPECT_GT(run.cycles, run.starts);
}

TEST(ActiveSet, EccExtendRepositionsRunningJob) {
  // j1 (end 100) and j2 (end 80) are both running; the ET at t=10 pushes
  // j2's planned end to 180, which must swap the active order mid-run.
  const auto workload = make_workload(
      20, 1, {batch_job(1, 0, 10, 100), batch_job(2, 0, 10, 80)},
      {ecc_at(10, 2, workload::EccType::kExtendTime, 100)});
  const auto run = run_audited(workload, "EASY-E");
  EXPECT_EQ(run.result.ecc.processed, 1u);
  EXPECT_EQ(run.result.jobs.size(), 2u);
}

TEST(ActiveSet, EccReduceRepositionsRunningJob) {
  // The RT at t=10 pulls j1's planned end from 100 to 40, below j2's 80.
  const auto workload = make_workload(
      20, 1, {batch_job(1, 0, 10, 100), batch_job(2, 0, 10, 80)},
      {ecc_at(10, 1, workload::EccType::kReduceTime, 60)});
  const auto run = run_audited(workload, "EASY-E");
  EXPECT_EQ(run.result.ecc.processed, 1u);
}

TEST(ActiveSet, EqualPlannedEndsFallBackToIdOrder) {
  // Three identical jobs start together and share one planned end: the tie
  // must break on id, and the auditor's from-scratch sort checks exactly
  // that at every cycle.
  const auto workload = make_workload(
      30, 1,
      {batch_job(3, 0, 10, 50), batch_job(1, 0, 10, 50),
       batch_job(2, 0, 10, 50)});
  const auto run = run_audited(workload, "EASY");
  EXPECT_EQ(run.result.completed, 3u);
}

TEST(ActiveSet, RandomizedElasticChurnWithRunningResize) {
  // ET/RT/EP/RP streams against a loaded machine exercise both reposition
  // paths (time reshape, running resize) thousands of times.
  workload::GeneratorConfig config;
  config.num_jobs = 150;
  config.seed = 7;
  config.target_load = 0.95;
  config.p_extend = 0.3;
  config.p_reduce = 0.2;
  config.p_extend_procs = 0.15;
  config.p_reduce_procs = 0.15;
  core::AlgorithmOptions options;
  options.engine.allow_running_resize = true;
  const auto run =
      run_audited(workload::generate(config), "Delayed-LOS-E", options);
  EXPECT_EQ(run.result.completed + run.result.killed, 150u);
  EXPECT_GT(run.result.ecc.processed, 0u);
}

TEST(ActiveSet, PreemptionRequeueHeadAndTailKeepOrder) {
  workload::GeneratorConfig config;
  config.num_jobs = 120;
  config.seed = 3;
  config.target_load = 0.9;
  for (const auto requeue :
       {fault::RequeuePolicy::kRequeueHead, fault::RequeuePolicy::kRequeueTail}) {
    core::AlgorithmOptions options;
    options.engine.failure.enabled = true;
    options.engine.failure.mtbf = 2000;
    options.engine.failure.mttr = 500;
    options.engine.failure.max_nodes = 3;
    options.engine.requeue = requeue;
    const auto run = run_audited(workload::generate(config), "EASY", options);
    EXPECT_GT(run.result.failure.interruptions, 0u)
        << "scenario must actually preempt to exercise remove_active";
    EXPECT_EQ(run.result.completed + run.result.killed, 120u);
  }
}

TEST(ActiveSet, CheckpointResumeRequeueKeepsOrder) {
  // Checkpointed jobs carry nonzero ckpt_progress / planned overhead, which
  // feeds estimated_duration() — the sort key — so resume-and-restart churn
  // is the hardest reposition workload.
  workload::GeneratorConfig config;
  config.num_jobs = 120;
  config.seed = 5;
  config.target_load = 0.9;
  core::AlgorithmOptions options;
  options.engine.failure.enabled = true;
  options.engine.failure.mtbf = 1500;
  options.engine.failure.mttr = 400;
  options.engine.failure.max_nodes = 2;
  options.engine.checkpoint.enabled = true;
  options.engine.checkpoint.interval = 300;
  options.engine.checkpoint.overhead = 10;
  options.engine.checkpoint.on_preempt = true;
  const auto run = run_audited(workload::generate(config), "EASY", options);
  EXPECT_GT(run.result.failure.interruptions, 0u);
  EXPECT_EQ(run.result.completed + run.result.killed, 120u);
}

TEST(ActiveSet, DedicatedPromotionKeepsQueueAndActiveConsistent) {
  workload::GeneratorConfig config;
  config.num_jobs = 120;
  config.seed = 9;
  config.target_load = 0.9;
  config.p_dedicated = 0.4;
  const auto run = run_audited(workload::generate(config), "Hybrid-LOS");
  EXPECT_EQ(run.result.completed + run.result.killed, 120u);
  EXPECT_GT(run.cycles, 0u);
}

}  // namespace
}  // namespace es::sched
