// Engine perf observability: SimulationResult::perf carries the per-run DP
// counter delta, the memo cache pays off on the paper's Fig-7 workload, and
// — the acceptance bar for any caching of scheduling decisions — cached and
// uncached runs produce identical schedules.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "workload/generator.hpp"

namespace es::sched {
namespace {

workload::Workload fig7_workload() {
  workload::GeneratorConfig config;
  config.num_jobs = 300;
  config.seed = 17;
  config.p_small = 0.2;       // Fig 7: dominated by large jobs
  config.target_load = 0.9;   // the DP-intensive end of the sweep
  return workload::generate(config);
}

TEST(EnginePerf, DpCountersLandInSimulationResult) {
  const workload::Workload workload = fig7_workload();
  const SimulationResult result =
      exp::run_workload(workload, "Delayed-LOS");
  EXPECT_GT(result.perf.dp.calls, 0u);
  // Every call resolved through exactly one of the three paths.
  EXPECT_EQ(result.perf.dp.calls,
            result.perf.dp.fast_path + result.perf.dp.cache_hits +
                result.perf.dp.table_runs);
  // The acceptance criterion: the cache actually hits on this workload.
  EXPECT_GT(result.perf.dp.cache_hits, 0u);
  EXPECT_GT(result.perf.dp_cache_hit_rate(), 0.0);
  EXPECT_LE(result.perf.dp_cache_hit_rate(), 1.0);
  // Wall timings are measurement, not simulation state: merely sane.
  EXPECT_GE(result.perf.wall_seconds, 0.0);
  EXPECT_GE(result.perf.cycle_seconds, 0.0);
  EXPECT_LE(result.perf.cycle_seconds, result.perf.wall_seconds + 1e-3);
}

TEST(EnginePerf, CacheDisabledSchedulesIdentically) {
  const workload::Workload workload = fig7_workload();
  core::AlgorithmOptions cached_options;
  cached_options.dp_cache = true;
  core::AlgorithmOptions uncached_options;
  uncached_options.dp_cache = false;

  const SimulationResult cached =
      exp::run_workload(workload, "Delayed-LOS", cached_options);
  const SimulationResult uncached =
      exp::run_workload(workload, "Delayed-LOS", uncached_options);

  EXPECT_GT(cached.perf.dp.cache_hits, 0u);
  EXPECT_EQ(uncached.perf.dp.cache_hits, 0u);
  // Same calls, fewer table fills — the cache only removes recomputation.
  EXPECT_EQ(cached.perf.dp.calls, uncached.perf.dp.calls);
  EXPECT_LT(cached.perf.dp.table_runs, uncached.perf.dp.table_runs);

  // Bit-identical schedule, job by job.
  EXPECT_EQ(cached.utilization, uncached.utilization);
  EXPECT_EQ(cached.mean_wait, uncached.mean_wait);
  EXPECT_EQ(cached.slowdown, uncached.slowdown);
  ASSERT_EQ(cached.jobs.size(), uncached.jobs.size());
  for (std::size_t i = 0; i < cached.jobs.size(); ++i) {
    EXPECT_EQ(cached.jobs[i].id, uncached.jobs[i].id);
    EXPECT_EQ(cached.jobs[i].procs, uncached.jobs[i].procs);
    EXPECT_EQ(cached.jobs[i].started, uncached.jobs[i].started);
    EXPECT_EQ(cached.jobs[i].finished, uncached.jobs[i].finished);
    EXPECT_EQ(cached.jobs[i].killed, uncached.jobs[i].killed);
  }
}

TEST(EnginePerf, ReservationPoliciesAlsoCount) {
  // Hybrid-LOS exercises the 2-D reservation kernel once its head blocks.
  const workload::Workload workload = fig7_workload();
  const SimulationResult result =
      exp::run_workload(workload, "Hybrid-LOS");
  EXPECT_GT(result.perf.dp.calls, 0u);
  EXPECT_EQ(result.perf.dp.calls,
            result.perf.dp.fast_path + result.perf.dp.cache_hits +
                result.perf.dp.table_runs);
}

TEST(EnginePerf, PoliciesWithoutDpReportZeroes) {
  const workload::Workload workload = fig7_workload();
  const SimulationResult result = exp::run_workload(workload, "EASY");
  EXPECT_EQ(result.perf.dp.calls, 0u);
  EXPECT_EQ(result.perf.dp.cache_hits, 0u);
  EXPECT_EQ(result.perf.dp.table_runs, 0u);
}

TEST(EnginePerf, CountersAreAPerRunDelta) {
  // One policy object driven through two engine runs: the policy's counters
  // are cumulative, so each result must carry only its own run's delta —
  // identical runs report identical (not doubling) numbers.
  const workload::Workload workload = fig7_workload();
  core::Algorithm algorithm = core::make_algorithm("Delayed-LOS");
  ASSERT_NE(algorithm.policy, nullptr);
  EngineConfig config;
  config.machine_procs = workload.machine_procs;
  config.granularity = workload.granularity;
  const SimulationResult first =
      simulate(config, *algorithm.policy, workload);
  const SimulationResult second =
      simulate(config, *algorithm.policy, workload);
  EXPECT_GT(first.perf.dp.calls, 0u);
  // A cumulative (non-delta) report would double on the second run.
  EXPECT_EQ(first.perf.dp.calls, second.perf.dp.calls);
  EXPECT_EQ(first.perf.dp.fast_path, second.perf.dp.fast_path);
  // The memo cache stays warm across runs, so the hit/table split may
  // shift between runs — but their sum is pinned by the calls identity.
  EXPECT_EQ(first.perf.dp.table_runs + first.perf.dp.cache_hits,
            second.perf.dp.table_runs + second.perf.dp.cache_hits);
}

}  // namespace
}  // namespace es::sched
