// FairShare policy semantics: single-pool degeneration to EASY, starvation
// preemption through the engine's preempt/requeue machinery, the per-job
// preemption cap, and policy-state serialization.
#include "sched/fairshare.hpp"

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "exp/experiment.hpp"
#include "snap/snapshot.hpp"
#include "workload/generator.hpp"

namespace es::sched {
namespace {

workload::GeneratorConfig tenant_config(int num_users, int num_pools) {
  workload::GeneratorConfig config;
  config.num_jobs = 250;
  config.seed = 17;
  config.target_load = 1.0;
  config.num_users = num_users;
  config.num_pools = num_pools;
  return config;
}

/// Suspend/resume preemption with hours-scale relief timeouts disabled down
/// to near-zero so the small test workloads actually trigger relief.
core::AlgorithmOptions aggressive_fairshare_options() {
  core::AlgorithmOptions options;
  options.engine.fairshare.pools = {{"a", 1.0, 0.0}, {"b", 1.0, 0.45}};
  options.engine.fairshare.min_share_preemption_timeout = 60;
  options.engine.fairshare.fair_share_preemption_timeout = 600;
  options.engine.checkpoint.enabled = true;
  options.engine.checkpoint.on_preempt = true;
  return options;
}

TEST(FairShare, SinglePoolDegeneratesToEasyExactly) {
  // Untagged workload: one pool, ratio order is FIFO, no preemption —
  // decision-for-decision EASY backfilling.
  workload::GeneratorConfig config;
  config.num_jobs = 300;
  config.seed = 5;
  config.target_load = 0.9;
  const workload::Workload workload = workload::generate(config);
  const core::AlgorithmOptions options;
  const SimulationResult easy = exp::run_workload(workload, "EASY", options);
  const SimulationResult fair =
      exp::run_workload(workload, "FairShare", options);
  EXPECT_EQ(fair.completed, easy.completed);
  EXPECT_EQ(fair.killed, easy.killed);
  EXPECT_DOUBLE_EQ(fair.utilization, easy.utilization);
  EXPECT_DOUBLE_EQ(fair.mean_wait, easy.mean_wait);
  EXPECT_DOUBLE_EQ(fair.makespan, easy.makespan);
  EXPECT_EQ(fair.failure.interruptions, 0u);
}

TEST(FairShare, FactoryBuildsBothVariants) {
  const auto plain = core::make_algorithm("FairShare");
  EXPECT_EQ(plain.policy->name(), "FairShare");
  EXPECT_TRUE(plain.policy->initiates_preemption());
  EXPECT_FALSE(plain.policy->supports_dedicated());
  const auto elastic = core::make_algorithm("FairShare-E");
  EXPECT_TRUE(elastic.process_eccs);
}

TEST(FairShare, StarvationReliefPreemptsAndEveryJobStillFinishes) {
  const workload::Workload workload =
      workload::generate(tenant_config(16, 2));
  const SimulationResult result = exp::run_workload(
      workload, "FairShare", aggressive_fairshare_options());
  EXPECT_GT(result.failure.interruptions, 0u)
      << "min-share starvation must trigger preemption on this workload";
  EXPECT_EQ(result.failure.abandoned, 0u);
  EXPECT_EQ(result.completed + result.killed, workload.jobs.size())
      << "preempted jobs must requeue and finish, not vanish";
  EXPECT_GT(result.failure.saved_proc_seconds, 0.0)
      << "checkpoint-on-preempt must bank the victims' elapsed work";
}

TEST(FairShare, PreemptionDisabledNeverInterrupts) {
  const workload::Workload workload =
      workload::generate(tenant_config(16, 2));
  core::AlgorithmOptions options = aggressive_fairshare_options();
  options.engine.fairshare.preemption_enabled = false;
  EXPECT_FALSE(FairShare(options.engine.fairshare).initiates_preemption());
  const SimulationResult result =
      exp::run_workload(workload, "FairShare", options);
  EXPECT_EQ(result.failure.interruptions, 0u);
  EXPECT_EQ(result.completed + result.killed, workload.jobs.size());
}

TEST(FairShare, PerJobPreemptionCapHolds) {
  const workload::Workload workload =
      workload::generate(tenant_config(16, 2));
  core::AlgorithmOptions options = aggressive_fairshare_options();
  options.engine.fairshare.max_preemptions_per_job = 1;
  const SimulationResult result =
      exp::run_workload(workload, "FairShare", options);
  for (const JobOutcome& job : result.jobs)
    EXPECT_LE(job.interruptions, 1) << "job " << job.id;
}

TEST(FairShare, PolicyStateSerializationRoundTrips) {
  FairShareConfig config;
  config.pools = {{"a", 2.0, 0.1}, {"b", 1.0, 0.0}};
  const FairShare original(config);
  snap::SnapshotWriter writer;
  writer.begin_section("POLI");
  original.save_state(writer);
  writer.end_section();
  const std::string image = writer.finish();

  FairShare restored(config);
  snap::SnapshotReader reader(image);
  reader.open_section("POLI");
  restored.restore_state(reader);
  EXPECT_EQ(reader.remaining(), 0u);

  snap::SnapshotWriter again;
  again.begin_section("POLI");
  restored.save_state(again);
  again.end_section();
  EXPECT_EQ(again.finish(), image);
}

}  // namespace
}  // namespace es::sched
