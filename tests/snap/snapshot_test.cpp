// Snapshot container and ring: typed round-trips, exhaustive truncation
// and bit-flip rejection, version negotiation, and the newest-intact
// fallback walk that makes a torn ring generation recoverable.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <system_error>

#include "snap/ring.hpp"
#include "snap/snapshot.hpp"

namespace es::snap {
namespace {

/// A small image exercising every value type across two sections.
std::string sample_image() {
  SnapshotWriter writer;
  writer.begin_section("AAAA");
  writer.u64(0x1122334455667788ULL);
  writer.f64(3.5);
  writer.str("hello");
  writer.end_section();
  writer.begin_section("BBBB");
  writer.u8(7);
  writer.u32(0xDEADBEEFu);
  writer.i64(-5);
  writer.i32(-123456);
  writer.boolean(true);
  writer.str("");
  writer.end_section();
  return writer.finish();
}

/// Reads the sample image back and returns true when every value matches
/// what sample_image() wrote.  Throws SnapshotError on any defect the
/// reader detects.
bool sample_reads_back(const std::string& image) {
  SnapshotReader reader(image);
  reader.open_section("AAAA");
  bool ok = reader.u64() == 0x1122334455667788ULL;
  ok = ok && reader.f64() == 3.5;
  ok = ok && reader.str() == "hello";
  ok = ok && reader.remaining() == 0;
  reader.open_section("BBBB");
  ok = ok && reader.u8() == 7;
  ok = ok && reader.u32() == 0xDEADBEEFu;
  ok = ok && reader.i64() == -5;
  ok = ok && reader.i32() == -123456;
  ok = ok && reader.boolean();
  ok = ok && reader.str().empty();
  ok = ok && reader.remaining() == 0;
  return ok;
}

SnapshotErrorKind kind_of(const std::string& image) {
  try {
    SnapshotReader reader(image);
  } catch (const SnapshotError& error) {
    return error.kind();
  }
  ADD_FAILURE() << "image of " << image.size() << " bytes was accepted";
  return SnapshotErrorKind::kIo;
}

TEST(SnapshotContainer, RoundTripsEveryValueType) {
  EXPECT_TRUE(sample_reads_back(sample_image()));
}

TEST(SnapshotContainer, DoublesRoundTripBitExactly) {
  SnapshotWriter writer;
  writer.begin_section("DBLS");
  const double values[] = {0.0, -0.0, 1.0 / 3.0, 1e308, 5e-324,
                           std::numeric_limits<double>::infinity()};
  for (const double v : values) writer.f64(v);
  writer.end_section();
  SnapshotReader reader(writer.finish());
  reader.open_section("DBLS");
  for (const double v : values) {
    const double got = reader.f64();
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, &v, 8);
    std::memcpy(&b, &got, 8);
    EXPECT_EQ(a, b);
  }
}

TEST(SnapshotContainer, ZeroSectionSnapshotIsWellFormed) {
  SnapshotWriter writer;
  SnapshotReader reader(writer.finish());
  EXPECT_FALSE(reader.has_section("AAAA"));
}

TEST(SnapshotContainer, HasSectionSeesOnlyWrittenSections) {
  SnapshotReader reader(sample_image());
  EXPECT_TRUE(reader.has_section("AAAA"));
  EXPECT_TRUE(reader.has_section("BBBB"));
  EXPECT_FALSE(reader.has_section("CCCC"));
}

TEST(SnapshotContainer, MissingSectionThrowsCorrupt) {
  SnapshotReader reader(sample_image());
  try {
    reader.open_section("ZZZZ");
    FAIL() << "missing section accepted";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.kind(), SnapshotErrorKind::kCorrupt);
  }
}

TEST(SnapshotContainer, SectionUnderrunThrowsCorrupt) {
  SnapshotWriter writer;
  writer.begin_section("TINY");
  writer.u32(1);
  writer.end_section();
  SnapshotReader reader(writer.finish());
  reader.open_section("TINY");
  EXPECT_THROW((void)reader.u64(), SnapshotError);
}

TEST(SnapshotContainer, EveryTruncationIsRejected) {
  const std::string image = sample_image();
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    const SnapshotErrorKind kind = kind_of(image.substr(0, cut));
    // A strict prefix can never be a version mismatch of an intact file.
    EXPECT_EQ(kind, SnapshotErrorKind::kCorrupt) << "cut at " << cut;
  }
}

TEST(SnapshotContainer, EveryBitFlipIsDetected) {
  // A single flipped bit anywhere must be *detected*: either the reader
  // rejects the image outright (CRC / frame / header damage) or — for the
  // few bytes outside any checksum, the section tags — the read-back no
  // longer finds the expected content.  What must never happen is a clean
  // read-back of different bytes.
  const std::string image = sample_image();
  for (std::size_t offset = 0; offset < image.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = image;
      flipped[offset] = static_cast<char>(
          static_cast<unsigned char>(flipped[offset]) ^ (1u << bit));
      try {
        EXPECT_FALSE(sample_reads_back(flipped))
            << "flip at byte " << offset << " bit " << bit
            << " read back clean";
      } catch (const SnapshotError& error) {
        EXPECT_NE(error.kind(), SnapshotErrorKind::kIo);
      }
    }
  }
}

TEST(SnapshotContainer, VersionBumpThrowsVersionMismatch) {
  std::string image = sample_image();
  image[4] = static_cast<char>(static_cast<unsigned char>(image[4]) + 1);
  EXPECT_EQ(kind_of(image), SnapshotErrorKind::kVersion);
}

TEST(SnapshotContainer, BadMagicThrowsCorrupt) {
  std::string image = sample_image();
  image[0] = 'X';
  EXPECT_EQ(kind_of(image), SnapshotErrorKind::kCorrupt);
}

TEST(SnapshotContainer, TrailingBytesAreRejected) {
  EXPECT_EQ(kind_of(sample_image() + "x"), SnapshotErrorKind::kCorrupt);
}

TEST(SnapshotContainer, EmptyImageIsCorruptNotVersioned) {
  EXPECT_EQ(kind_of(std::string()), SnapshotErrorKind::kCorrupt);
}

class SnapshotFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "snap_test_ring";
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(SnapshotFileTest, WriteReadRoundTrip) {
  std::filesystem::create_directories(dir_);
  const std::string path = dir_ + "/one.essnap";
  write_snapshot_file(path, sample_image());
  SnapshotReader reader = read_snapshot_file(path);
  EXPECT_TRUE(reader.has_section("AAAA"));
}

TEST_F(SnapshotFileTest, MissingFileIsIoError) {
  try {
    (void)read_snapshot_file(dir_ + "/absent.essnap");
    FAIL() << "missing file accepted";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.kind(), SnapshotErrorKind::kIo);
  }
}

TEST_F(SnapshotFileTest, WriteIntoMissingDirectoryIsIoError) {
  try {
    write_snapshot_file(dir_ + "/no/such/dir/x.essnap", sample_image());
    FAIL() << "write into missing directory succeeded";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.kind(), SnapshotErrorKind::kIo);
  }
}

TEST_F(SnapshotFileTest, RingKeepsTheNewestGenerations) {
  SnapshotRing ring(dir_, 3);
  for (int i = 0; i < 5; ++i) (void)ring.commit(sample_image());
  const auto entries = list_snapshots(dir_);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].generation, 3u);
  EXPECT_EQ(entries[2].generation, 5u);
  EXPECT_EQ(ring.next_generation(), 6u);
}

TEST_F(SnapshotFileTest, RingContinuesNumberingAcrossProcesses) {
  {
    SnapshotRing ring(dir_, 4);
    (void)ring.commit(sample_image());
    (void)ring.commit(sample_image());
  }
  SnapshotRing reopened(dir_, 4);
  EXPECT_EQ(reopened.next_generation(), 3u);
}

TEST_F(SnapshotFileTest, ListIgnoresForeignFiles) {
  SnapshotRing ring(dir_, 2);
  (void)ring.commit(sample_image());
  std::ofstream(dir_ + "/README.txt") << "not a snapshot";
  std::ofstream(dir_ + "/snap-abc.essnap") << "bad generation";
  EXPECT_EQ(list_snapshots(dir_).size(), 1u);
}

TEST_F(SnapshotFileTest, LatestIntactSkipsCorruptNewestGeneration) {
  SnapshotRing ring(dir_, 4);
  (void)ring.commit(sample_image());
  const std::string newest = ring.commit(sample_image());
  // Torn write on the newest generation: damage a CRC-protected payload
  // byte (offset 20 = first byte after the header and the first section's
  // tag + length frame).
  {
    std::fstream file(newest, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(20);
    file.put('\xA5');
  }
  const auto intact = latest_intact(dir_);
  ASSERT_TRUE(intact.has_value());
  EXPECT_EQ(intact->generation, 1u);
}

TEST_F(SnapshotFileTest, LatestIntactIsNulloptWhenAllGenerationsAreTorn) {
  SnapshotRing ring(dir_, 4);
  const std::string path = ring.commit(sample_image());
  std::ofstream(path, std::ios::binary | std::ios::trunc) << "torn";
  EXPECT_FALSE(latest_intact(dir_).has_value());
}

TEST_F(SnapshotFileTest, LatestIntactOnMissingDirectoryIsIoError) {
  try {
    (void)latest_intact(dir_ + "/never-created");
    FAIL() << "missing directory accepted";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.kind(), SnapshotErrorKind::kIo);
  }
}

}  // namespace
}  // namespace es::snap
