#include "cluster/contiguous.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace es::cluster {
namespace {

TEST(Contiguous, StartsAsOneHole) {
  ContiguousMachine machine(10);
  EXPECT_EQ(machine.largest_hole(), 10);
  EXPECT_EQ(machine.free_units(), 10);
  EXPECT_DOUBLE_EQ(machine.fragmentation(), 0.0);
}

TEST(Contiguous, FirstFitPlacesLeftmost) {
  ContiguousMachine machine(10);
  const Extent a = machine.allocate(1, 3);
  EXPECT_EQ(a.begin, 0);
  const Extent b = machine.allocate(2, 4);
  EXPECT_EQ(b.begin, 3);
  EXPECT_EQ(machine.free_units(), 3);
  EXPECT_EQ(machine.largest_hole(), 3);
}

TEST(Contiguous, ReleaseCreatesHole) {
  ContiguousMachine machine(10);
  machine.allocate(1, 3);
  machine.allocate(2, 4);
  machine.allocate(3, 3);
  EXPECT_EQ(machine.free_units(), 0);
  machine.release(2);
  EXPECT_EQ(machine.free_units(), 4);
  EXPECT_EQ(machine.largest_hole(), 4);
  // The hole is interior: a 4-unit job fits exactly there.
  const Extent d = machine.allocate(4, 4);
  EXPECT_EQ(d.begin, 3);
}

TEST(Contiguous, ExternalFragmentationBlocksDespiteFreeTotal) {
  // Two 2-unit holes, total free 4, but no contiguous 4.
  ContiguousMachine machine(10);
  machine.allocate(1, 2);  // [0,2)
  machine.allocate(2, 2);  // [2,4)
  machine.allocate(3, 2);  // [4,6)
  machine.allocate(4, 2);  // [6,8)
  machine.release(2);      // hole [2,4)
  machine.release(4);      // hole [6,8) + tail [8,10)... adjacent -> [6,10)
  EXPECT_EQ(machine.free_units(), 6);
  EXPECT_EQ(machine.largest_hole(), 4);  // [6,10)
  EXPECT_FALSE(machine.fits(5));
  EXPECT_TRUE(machine.fits(4));
  EXPECT_GT(machine.fragmentation(), 0.0);
}

TEST(Contiguous, BestFitPicksTightestHole) {
  ContiguousMachine machine(12, ContiguousMachine::Placement::kBestFit);
  machine.allocate(1, 3);  // [0,3)
  machine.allocate(2, 2);  // [3,5)
  machine.allocate(3, 4);  // [5,9)
  machine.release(2);      // hole [3,5) of 2; tail hole [9,12) of 3
  const Extent placed = machine.allocate(4, 2);
  EXPECT_EQ(placed.begin, 3);  // tightest hole, not the leftmost-fitting tail
}

TEST(Contiguous, FirstFitVersusBestFitDiffer) {
  ContiguousMachine first(12, ContiguousMachine::Placement::kFirstFit);
  first.allocate(1, 3);
  first.allocate(2, 2);
  first.allocate(3, 4);
  first.release(2);
  // First-fit also finds [3,5) here (it is leftmost); craft a case where
  // they differ: leftmost hole larger than needed.
  ContiguousMachine machine(12);
  machine.allocate(1, 2);   // [0,2)
  machine.allocate(2, 4);   // [2,6)
  machine.allocate(3, 3);   // [6,9)
  machine.release(2);       // hole [2,6) of 4, tail [9,12) of 3
  const Extent ff = machine.allocate(9, 3);
  EXPECT_EQ(ff.begin, 2);   // first fit takes the big hole

  ContiguousMachine best(12, ContiguousMachine::Placement::kBestFit);
  best.allocate(1, 2);
  best.allocate(2, 4);
  best.allocate(3, 3);
  best.release(2);
  const Extent bf = best.allocate(9, 3);
  EXPECT_EQ(bf.begin, 9);   // best fit takes the exact tail
}

TEST(Contiguous, CompactCoalescesFreeSpace) {
  ContiguousMachine machine(10);
  machine.allocate(1, 2);  // [0,2)
  machine.allocate(2, 2);  // [2,4)
  machine.allocate(3, 2);  // [4,6)
  machine.release(1);
  machine.release(3);
  // Holes: [0,2) and the coalesced [4,10).
  EXPECT_EQ(machine.largest_hole(), 6);
  const auto moved = machine.compact();
  EXPECT_EQ(moved.size(), 1u);  // job 2 slides to 0
  EXPECT_EQ(moved[0], 2);
  EXPECT_EQ(machine.extent_of(2).begin, 0);
  EXPECT_EQ(machine.largest_hole(), 8);
  EXPECT_DOUBLE_EQ(machine.fragmentation(), 0.0);
}

TEST(Contiguous, CompactPreservesRelativeOrderAndIsIdempotent) {
  ContiguousMachine machine(12);
  machine.allocate(1, 2);
  machine.allocate(2, 3);
  machine.allocate(3, 2);
  machine.release(2);
  machine.compact();
  EXPECT_EQ(machine.extent_of(1).begin, 0);
  EXPECT_EQ(machine.extent_of(3).begin, 2);
  EXPECT_TRUE(machine.compact().empty());  // already compact
}

TEST(ContiguousDeath, PreconditionsEnforced) {
  ContiguousMachine machine(10);
  machine.allocate(1, 6);
  EXPECT_DEATH(machine.allocate(1, 2), "precondition");  // duplicate id
  EXPECT_DEATH(machine.allocate(2, 5), "precondition");  // no hole
  EXPECT_DEATH(machine.release(9), "precondition");      // unknown id
}

TEST(Contiguous, PropertyNoOverlapAndConservation) {
  util::Rng rng(321);
  ContiguousMachine machine(64);
  std::vector<std::int64_t> active;
  std::int64_t next_id = 1;
  for (int step = 0; step < 3000; ++step) {
    const double action = rng.uniform01();
    if (action < 0.5) {
      const int units = static_cast<int>(rng.uniform_int(1, 16));
      if (machine.fits(units)) {
        machine.allocate(next_id, units);
        active.push_back(next_id++);
      }
    } else if (action < 0.9 && !active.empty()) {
      const auto index = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(active.size()) - 1));
      machine.release(active[index]);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(index));
    } else {
      machine.compact();
    }
    // Invariants: extents within bounds, pairwise disjoint, free consistent.
    int occupied = 0;
    std::vector<Extent> extents;
    for (std::int64_t id : active) {
      const Extent extent = machine.extent_of(id);
      ASSERT_GE(extent.begin, 0);
      ASSERT_LE(extent.end(), 64);
      occupied += extent.units;
      extents.push_back(extent);
    }
    std::sort(extents.begin(), extents.end(),
              [](const Extent& a, const Extent& b) {
                return a.begin < b.begin;
              });
    for (std::size_t i = 1; i < extents.size(); ++i)
      ASSERT_LE(extents[i - 1].end(), extents[i].begin);
    ASSERT_EQ(occupied + machine.free_units(), 64);
    ASSERT_LE(machine.largest_hole(), machine.free_units());
  }
}

}  // namespace
}  // namespace es::cluster
