#include "cluster/machine.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace es::cluster {
namespace {

TEST(Machine, StartsFullyFree) {
  Machine machine(320, 32);
  EXPECT_EQ(machine.total(), 320);
  EXPECT_EQ(machine.free(), 320);
  EXPECT_EQ(machine.used(), 0);
  EXPECT_EQ(machine.active_jobs(), 0u);
}

TEST(Machine, AllocationRoundsUpToGranularity) {
  Machine machine(320, 32);
  EXPECT_EQ(machine.allocation_for(32), 32);
  EXPECT_EQ(machine.allocation_for(33), 64);
  EXPECT_EQ(machine.allocation_for(1), 32);
  EXPECT_EQ(machine.allocation_for(320), 320);
}

TEST(Machine, UnitGranularityIsExact) {
  Machine machine(128, 1);
  EXPECT_EQ(machine.allocation_for(1), 1);
  EXPECT_EQ(machine.allocation_for(127), 127);
}

TEST(Machine, AllocateAndReleaseRoundTrip) {
  Machine machine(320, 32);
  EXPECT_EQ(machine.allocate(1, 100), 128);  // rounded to 4 node cards
  EXPECT_EQ(machine.free(), 192);
  EXPECT_EQ(machine.used(), 128);
  EXPECT_TRUE(machine.is_active(1));
  EXPECT_EQ(machine.allocated(1), 128);
  EXPECT_EQ(machine.release(1), 128);
  EXPECT_EQ(machine.free(), 320);
  EXPECT_FALSE(machine.is_active(1));
}

TEST(Machine, FitsChecksRoundedSize) {
  Machine machine(64, 32);
  machine.allocate(1, 32);
  EXPECT_TRUE(machine.fits(32));
  EXPECT_TRUE(machine.fits(1));
  EXPECT_FALSE(machine.fits(33));  // rounds to 64 > 32 free
}

TEST(Machine, FillCompletely) {
  Machine machine(96, 32);
  machine.allocate(1, 32);
  machine.allocate(2, 32);
  machine.allocate(3, 32);
  EXPECT_EQ(machine.free(), 0);
  EXPECT_FALSE(machine.fits(1));
  machine.release(2);
  EXPECT_TRUE(machine.fits(32));
}

TEST(Machine, ResizeGrowsAndShrinks) {
  Machine machine(320, 32);
  machine.allocate(1, 64);
  EXPECT_EQ(machine.resize(1, 128), 64);
  EXPECT_EQ(machine.allocated(1), 128);
  EXPECT_EQ(machine.free(), 192);
  EXPECT_EQ(machine.resize(1, 32), -96);
  EXPECT_EQ(machine.allocated(1), 32);
  EXPECT_EQ(machine.free(), 288);
}

TEST(Machine, AllocatedOfUnknownJobIsZero) {
  Machine machine(320, 32);
  EXPECT_EQ(machine.allocated(42), 0);
}

TEST(Machine, OfflineShrinksAvailableNotTotal) {
  Machine machine(320, 32);
  EXPECT_EQ(machine.available(), 320);
  machine.allocate(1, 64);
  machine.take_offline(32);
  EXPECT_EQ(machine.total(), 320);
  EXPECT_EQ(machine.available(), 288);
  EXPECT_EQ(machine.offline(), 32);
  EXPECT_EQ(machine.free(), 224);
  EXPECT_EQ(machine.used(), 64);  // the running job is untouched
  machine.bring_online(32);
  EXPECT_EQ(machine.available(), 320);
  EXPECT_EQ(machine.offline(), 0);
  EXPECT_EQ(machine.free(), 256);
}

TEST(Machine, RepeatedOutagesStack) {
  Machine machine(320, 32);
  machine.take_offline(64);
  machine.take_offline(32);
  EXPECT_EQ(machine.offline(), 96);
  EXPECT_EQ(machine.available(), 224);
  machine.bring_online(64);
  EXPECT_EQ(machine.offline(), 32);
  machine.bring_online(32);
  EXPECT_EQ(machine.offline(), 0);
}

using MachineDeath = Machine;

TEST(MachineDeath, TakeOfflineMoreThanFreeAborts) {
  Machine machine(64, 32);
  machine.allocate(1, 32);
  EXPECT_DEATH(machine.take_offline(64), "precondition");
}

TEST(MachineDeath, BringOnlineMoreThanOfflineAborts) {
  Machine machine(64, 32);
  machine.take_offline(32);
  EXPECT_DEATH(machine.bring_online(64), "precondition");
}

TEST(MachineDeath, OverAllocationAborts) {
  Machine machine(64, 32);
  machine.allocate(1, 64);
  EXPECT_DEATH(machine.allocate(2, 32), "precondition");
}

TEST(MachineDeath, DuplicateJobIdAborts) {
  Machine machine(64, 32);
  machine.allocate(1, 32);
  EXPECT_DEATH(machine.allocate(1, 32), "precondition");
}

TEST(MachineDeath, ReleaseUnknownAborts) {
  Machine machine(64, 32);
  EXPECT_DEATH(machine.release(7), "precondition");
}

TEST(MachineDeath, InvalidGeometryAborts) {
  EXPECT_DEATH(Machine(100, 32), "precondition");  // not a multiple
  EXPECT_DEATH(Machine(0, 1), "precondition");
}

TEST(Machine, PropertyRandomAllocReleaseConservesCapacity) {
  util::Rng rng(5);
  Machine machine(320, 32);
  std::vector<JobId> active;
  JobId next_id = 1;
  for (int step = 0; step < 5000; ++step) {
    const bool try_alloc = active.empty() || rng.bernoulli(0.55);
    if (try_alloc) {
      const int procs = static_cast<int>(rng.uniform_int(1, 320));
      if (machine.fits(procs)) {
        machine.allocate(next_id, procs);
        active.push_back(next_id++);
      }
    } else {
      const auto index = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1));
      machine.release(active[index]);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(index));
    }
    // Invariants: ledger consistent, granularity respected.
    ASSERT_GE(machine.free(), 0);
    ASSERT_LE(machine.free(), machine.total());
    ASSERT_EQ(machine.free() % machine.granularity(), 0);
    ASSERT_EQ(machine.active_jobs(), active.size());
    int sum = 0;
    for (JobId id : active) sum += machine.allocated(id);
    ASSERT_EQ(sum, machine.used());
  }
}

}  // namespace
}  // namespace es::cluster
