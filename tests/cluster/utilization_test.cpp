#include "cluster/utilization.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace es::cluster {
namespace {

TEST(Utilization, ConstantLevel) {
  UtilizationTracker tracker(10);
  tracker.record(0, 5);
  tracker.record(100, 5);
  EXPECT_DOUBLE_EQ(tracker.busy_proc_seconds(0, 100), 500.0);
  EXPECT_DOUBLE_EQ(tracker.mean_utilization(0, 100), 0.5);
}

TEST(Utilization, StepFunctionIntegralExact) {
  UtilizationTracker tracker(10);
  tracker.record(0, 0);
  tracker.record(10, 10);   // busy 0 over [0,10)
  tracker.record(30, 4);    // busy 10 over [10,30)
  tracker.record(50, 0);    // busy 4 over [30,50)
  // total = 0*10 + 10*20 + 4*20 = 280
  EXPECT_DOUBLE_EQ(tracker.busy_proc_seconds(0, 50), 280.0);
  EXPECT_DOUBLE_EQ(tracker.mean_utilization(0, 50), 0.56);
}

TEST(Utilization, SubWindowQueries) {
  UtilizationTracker tracker(10);
  tracker.record(0, 2);
  tracker.record(10, 8);
  tracker.record(20, 0);
  EXPECT_DOUBLE_EQ(tracker.busy_proc_seconds(5, 15), 2 * 5 + 8 * 5);
  EXPECT_DOUBLE_EQ(tracker.busy_proc_seconds(0, 5), 10.0);
  EXPECT_DOUBLE_EQ(tracker.busy_proc_seconds(12, 18), 48.0);
}

TEST(Utilization, ExtrapolatesLastLevel) {
  UtilizationTracker tracker(4);
  tracker.record(0, 2);
  // No further records: level 2 persists.
  EXPECT_DOUBLE_EQ(tracker.busy_proc_seconds(0, 10), 20.0);
  EXPECT_DOUBLE_EQ(tracker.mean_utilization(0, 10), 0.5);
}

TEST(Utilization, SameInstantUpdateCoalesces) {
  UtilizationTracker tracker(10);
  tracker.record(0, 3);
  tracker.record(5, 7);
  tracker.record(5, 9);  // same instant: final value wins
  tracker.record(10, 0);
  EXPECT_DOUBLE_EQ(tracker.busy_proc_seconds(0, 10), 3 * 5 + 9 * 5);
}

TEST(Utilization, WindowBeforeFirstRecordIsZero) {
  UtilizationTracker tracker(10);
  tracker.record(100, 5);
  tracker.record(200, 0);
  EXPECT_DOUBLE_EQ(tracker.busy_proc_seconds(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(tracker.busy_proc_seconds(50, 150), 250.0);
}

TEST(Utilization, EmptyTrackerReturnsZero) {
  UtilizationTracker tracker(10);
  EXPECT_DOUBLE_EQ(tracker.busy_proc_seconds(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(tracker.mean_utilization(0, 10), 0.0);
}

TEST(Utilization, DegenerateWindowIsZero) {
  UtilizationTracker tracker(10);
  tracker.record(0, 5);
  EXPECT_DOUBLE_EQ(tracker.mean_utilization(5, 5), 0.0);
}

TEST(Utilization, CurrentBusyTracksLastRecord) {
  UtilizationTracker tracker(10);
  tracker.record(0, 4);
  EXPECT_EQ(tracker.current_busy(), 4);
  tracker.record(1, 9);
  EXPECT_EQ(tracker.current_busy(), 9);
}

TEST(Utilization, CapacityTimelineDefaultsToFullMachine) {
  UtilizationTracker tracker(10);
  tracker.record(0, 5);
  // No capacity records: the full machine is available the whole window.
  EXPECT_DOUBLE_EQ(tracker.available_proc_seconds(0, 100), 1000.0);
  EXPECT_DOUBLE_EQ(tracker.mean_utilization(0, 100), 0.5);
}

TEST(Utilization, DegradedCapacityRaisesMeanUtilization) {
  UtilizationTracker tracker(10);
  tracker.record(0, 5);
  tracker.record_capacity(0, 10);
  tracker.record_capacity(40, 5);   // 5 procs out of service over [40,80)
  tracker.record_capacity(80, 10);
  // available = 10*40 + 5*40 + 10*20 = 800 over [0,100)
  EXPECT_DOUBLE_EQ(tracker.available_proc_seconds(0, 100), 800.0);
  // busy = 5*100 = 500 -> utilization against what was in service
  EXPECT_DOUBLE_EQ(tracker.mean_utilization(0, 100), 500.0 / 800.0);
}

TEST(Utilization, CapacityRecordsCoalesceAtSameInstant) {
  UtilizationTracker tracker(10);
  tracker.record_capacity(0, 10);
  tracker.record_capacity(50, 8);
  tracker.record_capacity(50, 6);  // same instant: final value wins
  EXPECT_DOUBLE_EQ(tracker.available_proc_seconds(0, 100), 10 * 50 + 6 * 50.0);
}

TEST(UtilizationDeath, OverCapacityAborts) {
  UtilizationTracker tracker(10);
  EXPECT_DEATH(tracker.record(0, 11), "precondition");
}

TEST(UtilizationDeath, TimeRegressionAborts) {
  UtilizationTracker tracker(10);
  tracker.record(10, 5);
  EXPECT_DEATH(tracker.record(9, 5), "precondition");
}

TEST(Utilization, PropertyMatchesBruteForceAccumulation) {
  util::Rng rng(9);
  for (int round = 0; round < 10; ++round) {
    UtilizationTracker tracker(100);
    double t = 0;
    double brute = 0;
    int level = 0;
    std::vector<std::pair<double, int>> steps;
    for (int i = 0; i < 50; ++i) {
      tracker.record(t, level);
      steps.emplace_back(t, level);
      const double dt = rng.uniform(0.1, 10.0);
      brute += level * dt;
      t += dt;
      level = static_cast<int>(rng.uniform_int(0, 100));
    }
    tracker.record(t, 0);
    EXPECT_NEAR(tracker.busy_proc_seconds(0, t), brute, 1e-6 * (brute + 1));
  }
}

}  // namespace
}  // namespace es::cluster
