#include "exp/experiment.hpp"

#include <gtest/gtest.h>

namespace es::exp {
namespace {

RunSpec small_spec(const std::string& algorithm) {
  RunSpec spec;
  spec.workload.num_jobs = 150;
  spec.workload.seed = 4;
  spec.workload.target_load = 0.8;
  spec.algorithm = algorithm;
  return spec;
}

TEST(Experiment, RunOnceCompletesAllJobs) {
  const auto result = run_once(small_spec("EASY"));
  EXPECT_EQ(result.completed + result.killed, 150u);
  EXPECT_GT(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0);
  EXPECT_GT(result.mean_wait, 0.0);
  EXPECT_GE(result.slowdown, 1.0);
}

TEST(Experiment, RunOnceIsDeterministic) {
  const auto a = run_once(small_spec("Delayed-LOS"));
  const auto b = run_once(small_spec("Delayed-LOS"));
  EXPECT_DOUBLE_EQ(a.mean_wait, b.mean_wait);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(Experiment, ReplicationAveragesAcrossSeeds) {
  const auto aggregate = run_replicated(small_spec("EASY"), 3);
  EXPECT_EQ(aggregate.replications, 3);
  EXPECT_GT(aggregate.utilization, 0.0);
  // Different seeds -> nonzero spread (workloads genuinely differ).
  EXPECT_GT(aggregate.mean_wait_stddev, 0.0);
  // The mean equals the mean of the three individual runs.
  double wait_sum = 0;
  for (int i = 0; i < 3; ++i) {
    RunSpec spec = small_spec("EASY");
    spec.workload.seed += static_cast<std::uint64_t>(i);
    wait_sum += run_once(spec).mean_wait;
  }
  EXPECT_NEAR(aggregate.mean_wait, wait_sum / 3.0, 1e-9);
}

TEST(Experiment, OffereedLoadNearTarget) {
  const auto aggregate = run_replicated(small_spec("EASY"), 3);
  EXPECT_NEAR(aggregate.offered_load, 0.8, 0.03);
}

TEST(Experiment, EccStatsSurfaceThroughAggregate) {
  RunSpec spec = small_spec("Delayed-LOS-E");
  spec.workload.p_extend = 0.3;
  spec.workload.p_reduce = 0.2;
  const auto aggregate = run_replicated(spec, 2);
  EXPECT_GT(aggregate.ecc_processed, 0u);
}

TEST(Experiment, OptimalSkipCountWithinRange) {
  workload::GeneratorConfig config;
  config.num_jobs = 120;
  config.seed = 8;
  config.target_load = 0.9;
  const int cs = optimal_skip_count(config, 1, 4, 2);
  EXPECT_GE(cs, 1);
  EXPECT_LE(cs, 4);
}

TEST(Experiment, RunWorkloadRejectsUnknownAlgorithm) {
  workload::Workload workload;
  workload.machine_procs = 10;
  EXPECT_THROW(run_workload(workload, "NOPE"), core::UnknownAlgorithmError);
}

}  // namespace
}  // namespace es::exp
