#include "exp/analysis.hpp"

#include "exp/experiment.hpp"
#include "sched/trace.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace es::exp {
namespace {

sched::SimulationResult result_with_waits(
    const std::vector<std::pair<int, double>>& procs_and_waits) {
  sched::SimulationResult result;
  workload::JobId id = 1;
  for (const auto& [procs, wait] : procs_and_waits) {
    sched::JobOutcome outcome;
    outcome.id = id++;
    outcome.procs = procs;
    outcome.wait = wait;
    result.jobs.push_back(outcome);
  }
  return result;
}

TEST(Analysis, WaitDistributionQuantiles) {
  const auto result = result_with_waits(
      {{1, 10}, {1, 20}, {1, 30}, {1, 40}, {1, 100}});
  const WaitSummary summary = wait_distribution(result);
  EXPECT_EQ(summary.count, 5u);
  EXPECT_DOUBLE_EQ(summary.mean, 40);
  EXPECT_DOUBLE_EQ(summary.median, 30);
  EXPECT_DOUBLE_EQ(summary.max, 100);
  EXPECT_GT(summary.p95, 40);
  EXPECT_LE(summary.p95, 100);
}

TEST(Analysis, EmptyResult) {
  const WaitSummary summary = wait_distribution(sched::SimulationResult{});
  EXPECT_EQ(summary.count, 0u);
  EXPECT_DOUBLE_EQ(summary.mean, 0);
}

TEST(Analysis, FairnessSplitsBySizeThreshold) {
  const auto result = result_with_waits(
      {{32, 10}, {64, 30}, {128, 100}, {320, 300}});
  const FairnessBreakdown breakdown = fairness_by_size(result, 96);
  EXPECT_EQ(breakdown.small.count, 2u);
  EXPECT_EQ(breakdown.large.count, 2u);
  EXPECT_DOUBLE_EQ(breakdown.small.mean, 20);
  EXPECT_DOUBLE_EQ(breakdown.large.mean, 200);
  EXPECT_DOUBLE_EQ(breakdown.large_to_small_wait_ratio, 10.0);
}

TEST(Analysis, FairnessWithEmptyClass) {
  const auto result = result_with_waits({{32, 10}, {64, 20}});
  const FairnessBreakdown breakdown = fairness_by_size(result, 96);
  EXPECT_EQ(breakdown.large.count, 0u);
  EXPECT_DOUBLE_EQ(breakdown.large_to_small_wait_ratio, 0.0);
}

TEST(Analysis, ConfidenceIntervalKnownCase) {
  // n=4, values 1,2,3,4: mean 2.5, s ~ 1.29099, t(3) = 3.182:
  // half width = 3.182 * 1.29099 / 2 = 2.0540...
  util::RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0}) stats.add(x);
  EXPECT_NEAR(confidence_half_width_95(stats), 2.054, 0.001);
}

TEST(Analysis, ConfidenceIntervalDegenerate) {
  util::RunningStats stats;
  EXPECT_DOUBLE_EQ(confidence_half_width_95(stats), 0.0);
  stats.add(5);
  EXPECT_DOUBLE_EQ(confidence_half_width_95(stats), 0.0);
  stats.add(5);
  EXPECT_DOUBLE_EQ(confidence_half_width_95(stats), 0.0);  // zero variance
}

TEST(Analysis, ConfidenceShrinksWithSamples) {
  util::RunningStats few, many;
  util::Rng rng(4);
  for (int i = 0; i < 5; ++i) few.add(rng.uniform(0, 10));
  for (int i = 0; i < 500; ++i) many.add(rng.uniform(0, 10));
  EXPECT_GT(confidence_half_width_95(few), confidence_half_width_95(many));
}

TEST(Analysis, FairnessOnRealSimulation) {
  workload::GeneratorConfig config;
  config.num_jobs = 300;
  config.seed = 15;
  config.target_load = 0.9;
  const auto workload = workload::generate(config);
  const auto scenario = es::testing::run_scenario(workload, "Delayed-LOS");
  const FairnessBreakdown breakdown =
      fairness_by_size(scenario.result, 96);
  EXPECT_EQ(breakdown.small.count + breakdown.large.count, 300u);
  EXPECT_GE(breakdown.small.p95, breakdown.small.median);
  EXPECT_GE(breakdown.large.max, breakdown.large.p99);
}


TEST(Analysis, UtilizationTimelineHandComputed) {
  // One job: 4/8 procs busy over the first half of [0, 100].
  sched::SimulationResult result;
  sched::JobOutcome a;
  a.id = 1;
  a.procs = 4;
  a.started = 0;
  a.finished = 50;
  sched::JobOutcome b;
  b.id = 2;
  b.procs = 8;
  b.started = 50;
  b.finished = 100;
  result.jobs = {a, b};
  result.first_arrival = 0;
  result.last_finish = 100;
  const auto timeline = utilization_timeline(result, 8, 4);
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_DOUBLE_EQ(timeline[0], 0.5);
  EXPECT_DOUBLE_EQ(timeline[1], 0.5);
  EXPECT_DOUBLE_EQ(timeline[2], 1.0);
  EXPECT_DOUBLE_EQ(timeline[3], 1.0);
}

TEST(Analysis, UtilizationTimelinePartialBuckets) {
  sched::SimulationResult result;
  sched::JobOutcome job;
  job.id = 1;
  job.procs = 10;
  job.started = 25;
  job.finished = 75;
  result.jobs = {job};
  result.first_arrival = 0;
  result.last_finish = 100;
  const auto timeline = utilization_timeline(result, 10, 2);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline[0], 0.5);  // busy [25,50) of [0,50)
  EXPECT_DOUBLE_EQ(timeline[1], 0.5);
}

TEST(Analysis, UtilizationTimelineDegenerateInputs) {
  EXPECT_TRUE(utilization_timeline(sched::SimulationResult{}, 8, 4).empty());
  sched::SimulationResult result;
  result.jobs.push_back({});
  EXPECT_TRUE(utilization_timeline(result, 8, 0).empty());
}

TEST(Analysis, RenderProfileLevels) {
  const std::string rendered = render_profile({0.0, 0.5, 1.0});
  // Three glyphs: space, half block, full block (UTF-8 multibyte).
  EXPECT_EQ(rendered.front(), ' ');
  EXPECT_NE(rendered.find("\xe2\x96\x84"), std::string::npos);  // half
  EXPECT_NE(rendered.find("\xe2\x96\x88"), std::string::npos);  // full
}

TEST(Analysis, RenderProfileClamps) {
  const std::string rendered = render_profile({-1.0, 2.0});
  EXPECT_EQ(rendered.front(), ' ');
  EXPECT_NE(rendered.find("\xe2\x96\x88"), std::string::npos);
}


TEST(Analysis, QueueTimelineFromTrace) {
  sched::ScheduleTrace trace;
  trace.record(0, sched::TraceEventKind::kArrival, 1);
  trace.record(0, sched::TraceEventKind::kArrival, 2);
  trace.record(10, sched::TraceEventKind::kStart, 1);
  trace.record(50, sched::TraceEventKind::kStart, 2);
  trace.record(60, sched::TraceEventKind::kFinish, 1);  // ignored
  trace.record(100, sched::TraceEventKind::kArrival, 3);
  const auto timeline = queue_length_timeline(trace, 4);
  ASSERT_EQ(timeline.size(), 4u);
  // Buckets over [0, 100]: midpoints 12.5, 37.5, 62.5, 87.5.
  EXPECT_DOUBLE_EQ(timeline[0], 1);  // one waiting after job 1 started
  EXPECT_DOUBLE_EQ(timeline[1], 1);
  EXPECT_DOUBLE_EQ(timeline[2], 0);
  EXPECT_DOUBLE_EQ(timeline[3], 0);
}

TEST(Analysis, QueueStatsPeakAndMean) {
  sched::ScheduleTrace trace;
  trace.record(0, sched::TraceEventKind::kArrival, 1);
  trace.record(0, sched::TraceEventKind::kArrival, 2);
  trace.record(0, sched::TraceEventKind::kArrival, 3);
  trace.record(50, sched::TraceEventKind::kStart, 1);
  trace.record(100, sched::TraceEventKind::kStart, 2);
  trace.record(100, sched::TraceEventKind::kStart, 3);
  const QueueStats stats = queue_stats(trace);
  EXPECT_EQ(stats.peak, 3u);
  // Levels: 3 over [0,50), 2 over [50,100): mean = (150+100)/100 = 2.5.
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
}

TEST(Analysis, QueueStatsOnRealRun) {
  workload::GeneratorConfig config;
  config.num_jobs = 200;
  config.seed = 21;
  config.target_load = 0.9;
  const auto workload = workload::generate(config);
  core::AlgorithmOptions options;
  options.engine.record_trace = true;
  const auto result = run_workload(workload, "EASY", options);
  ASSERT_NE(result.trace, nullptr);
  const QueueStats stats = queue_stats(*result.trace);
  EXPECT_GT(stats.peak, 0u);
  EXPECT_GT(stats.mean, 0.0);
  EXPECT_LE(stats.mean, static_cast<double>(stats.peak));
}

TEST(Analysis, QueueTimelineEmptyTrace) {
  sched::ScheduleTrace trace;
  EXPECT_TRUE(queue_length_timeline(trace, 4).empty());
  EXPECT_EQ(queue_stats(trace).peak, 0u);
}

}  // namespace
}  // namespace es::exp
