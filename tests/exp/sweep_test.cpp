#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/report.hpp"

namespace es::exp {
namespace {

workload::GeneratorConfig small_config() {
  workload::GeneratorConfig config;
  config.num_jobs = 100;
  config.seed = 6;
  return config;
}

TEST(Sweep, LoadSweepShape) {
  const Sweep sweep = load_sweep(small_config(), {0.6, 0.9}, {"EASY", "LOS"},
                                 {}, 2);
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_EQ(sweep.x_label, "load");
  for (const SweepPoint& point : sweep.points) {
    ASSERT_EQ(point.by_algorithm.size(), 2u);
    EXPECT_TRUE(point.by_algorithm.contains("EASY"));
    EXPECT_TRUE(point.by_algorithm.contains("LOS"));
  }
  EXPECT_DOUBLE_EQ(sweep.points[0].x, 0.6);
  // Higher load -> higher utilization, for any sane scheduler.
  EXPECT_GT(sweep.points[1].by_algorithm.at("EASY").utilization,
            sweep.points[0].by_algorithm.at("EASY").utilization);
}

TEST(Sweep, SkipCountSweepHasFlatReferences) {
  const Sweep sweep =
      skip_count_sweep(small_config(), 1, 3, {"EASY"}, 250, 2);
  ASSERT_EQ(sweep.points.size(), 3u);
  EXPECT_EQ(sweep.x_label, "C_s");
  // EASY does not depend on C_s, so it is evaluated once and shared —
  // stored in Sweep::references, never copied into the points.
  ASSERT_TRUE(sweep.references.contains("EASY"));
  const Aggregate& reference = sweep.references.at("EASY");
  EXPECT_GT(reference.replications, 0);
  for (const SweepPoint& point : sweep.points) {
    EXPECT_FALSE(point.by_algorithm.contains("EASY"));
    // ...but find() and merged() surface it at every x.
    const Aggregate* found = sweep.find(point, "EASY");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &reference);  // shared, not a per-point copy
    EXPECT_DOUBLE_EQ(found->mean_wait, reference.mean_wait);
    const auto view = sweep.merged(point);
    ASSERT_TRUE(view.contains("EASY"));
    ASSERT_TRUE(view.contains("Delayed-LOS"));
    EXPECT_EQ(view.size(), 2u);
  }
  // Delayed-LOS (C_s-dependent) still lives in each point.
  for (const SweepPoint& point : sweep.points)
    EXPECT_TRUE(point.by_algorithm.contains("Delayed-LOS"));
}

TEST(Sweep, MaxImprovementReadsSharedReferences) {
  // The baseline lives in Sweep::references; max_improvement must resolve
  // it through find() rather than expecting per-point copies.
  const Sweep sweep =
      skip_count_sweep(small_config(), 1, 2, {"EASY"}, 250, 1);
  const Improvement improvement =
      max_improvement(sweep, "Delayed-LOS", "EASY");
  EXPECT_TRUE(std::isfinite(improvement.utilization));
  EXPECT_TRUE(std::isfinite(improvement.wait));
  EXPECT_TRUE(std::isfinite(improvement.slowdown));
}

TEST(Sweep, MaxImprovementAgainstSelfIsZero) {
  const Sweep sweep = load_sweep(small_config(), {0.8}, {"EASY"}, {}, 2);
  const Improvement improvement = max_improvement(sweep, "EASY", "EASY");
  EXPECT_DOUBLE_EQ(improvement.utilization, 0.0);
  EXPECT_DOUBLE_EQ(improvement.wait, 0.0);
  EXPECT_DOUBLE_EQ(improvement.slowdown, 0.0);
}

TEST(Sweep, MaxImprovementPicksBestAcrossPoints) {
  Sweep sweep;
  sweep.x_label = "load";
  auto mk = [](double util, double wait, double slowdown) {
    Aggregate aggregate;
    aggregate.utilization = util;
    aggregate.mean_wait = wait;
    aggregate.slowdown = slowdown;
    return aggregate;
  };
  SweepPoint p1;
  p1.x = 0.5;
  p1.by_algorithm["cand"] = mk(0.50, 90, 1.9);
  p1.by_algorithm["base"] = mk(0.50, 100, 2.0);
  SweepPoint p2;
  p2.x = 0.9;
  p2.by_algorithm["cand"] = mk(0.78, 80, 1.5);
  p2.by_algorithm["base"] = mk(0.75, 100, 2.0);
  sweep.points = {p1, p2};
  const Improvement improvement = max_improvement(sweep, "cand", "base");
  EXPECT_NEAR(improvement.utilization, 4.0, 1e-9);   // from p2
  EXPECT_NEAR(improvement.wait, 20.0, 1e-9);          // from p2
  EXPECT_NEAR(improvement.slowdown, 25.0, 1e-9);      // from p2
}

TEST(Report, PrintSweepContainsAllSeries) {
  const Sweep sweep = load_sweep(small_config(), {0.8}, {"EASY", "LOS"},
                                 {}, 1);
  std::ostringstream out;
  print_sweep(out, "Test figure", sweep, {"EASY", "LOS"});
  const std::string text = out.str();
  EXPECT_NE(text.find("mean utilization"), std::string::npos);
  EXPECT_NE(text.find("mean job waiting time"), std::string::npos);
  EXPECT_NE(text.find("slowdown"), std::string::npos);
  EXPECT_NE(text.find("EASY"), std::string::npos);
  EXPECT_NE(text.find("LOS"), std::string::npos);
}

TEST(Report, PrintImprovementsRendersPaperStyleRows) {
  const Sweep sweep = load_sweep(small_config(), {0.8},
                                 {"EASY", "LOS", "Delayed-LOS"}, {}, 1);
  std::ostringstream out;
  print_improvements(out, "Table IV", sweep, "Delayed-LOS", {"LOS", "EASY"});
  const std::string text = out.str();
  EXPECT_NE(text.find("Utilization"), std::string::npos);
  EXPECT_NE(text.find("Job waiting time"), std::string::npos);
  EXPECT_NE(text.find("Slowdown"), std::string::npos);
  EXPECT_NE(text.find("LOS (%)"), std::string::npos);
}

TEST(Report, CsvRoundTripsRowCount) {
  const Sweep sweep = load_sweep(small_config(), {0.7, 0.9},
                                 {"EASY", "LOS"}, {}, 1);
  const std::string path = ::testing::TempDir() + "/sweep_test.csv";
  ASSERT_TRUE(write_sweep_csv(path, sweep));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1 + 2 * 2);  // header + points x algorithms
  std::remove(path.c_str());
}


TEST(Report, GnuplotScriptReferencesCsvAndSeries) {
  const Sweep sweep = load_sweep(small_config(), {0.7, 0.9},
                                 {"EASY", "LOS"}, {}, 1);
  const std::string path = ::testing::TempDir() + "/sweep_test.gp";
  ASSERT_TRUE(write_sweep_gnuplot(path, "sweep_test.csv", "Test title",
                                  sweep, {"EASY", "LOS"}));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("sweep_test.csv"), std::string::npos);
  EXPECT_NE(text.find("stringcolumn(2) eq 'EASY'"), std::string::npos);
  EXPECT_NE(text.find("stringcolumn(2) eq 'LOS'"), std::string::npos);
  EXPECT_NE(text.find("set terminal svg"), std::string::npos);
  EXPECT_NE(text.find("_wait.svg"), std::string::npos);
  EXPECT_NE(text.find("Test title"), std::string::npos);
  // One plot block per metric panel.
  std::size_t plots = 0, pos = 0;
  while ((pos = text.find("\nplot ", pos)) != std::string::npos) {
    ++plots;
    ++pos;
  }
  EXPECT_EQ(plots, 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace es::exp
