#include "exp/contiguity.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace es::exp {
namespace {

workload::Workload study_workload(std::uint64_t seed, double load = 0.9) {
  workload::GeneratorConfig config;
  config.num_jobs = 200;
  config.seed = seed;
  config.p_small = 0.5;
  config.target_load = load;
  return workload::generate(config);
}

TEST(Contiguity, AllJobsCompleteInEveryMode) {
  const auto workload = study_workload(1);
  for (bool contiguous : {false, true}) {
    for (bool migrate : {false, true}) {
      ContiguityPolicy policy;
      policy.contiguous = contiguous;
      policy.migrate = migrate;
      const auto result = run_contiguity_study(workload, policy);
      EXPECT_EQ(result.completed, 200u);
      EXPECT_GT(result.utilization, 0.0);
      EXPECT_LE(result.utilization, 1.0);
    }
  }
}

TEST(Contiguity, ScalarModeNeverFragmens) {
  ContiguityPolicy policy;
  policy.contiguous = false;
  const auto result = run_contiguity_study(study_workload(2), policy);
  EXPECT_EQ(result.migrations, 0u);
}

TEST(Contiguity, ContiguityCostsPerformance) {
  // The Krevat shape: the contiguous machine waits at least as long as the
  // scalar one on the same trace.
  const auto workload = study_workload(3);
  ContiguityPolicy scalar;
  scalar.contiguous = false;
  ContiguityPolicy contiguous;
  contiguous.contiguous = true;
  const auto scalar_result = run_contiguity_study(workload, scalar);
  const auto contiguous_result = run_contiguity_study(workload, contiguous);
  EXPECT_GE(contiguous_result.mean_wait, scalar_result.mean_wait * 0.999);
  EXPECT_GT(contiguous_result.mean_fragmentation, 0.0);
}

TEST(Contiguity, MigrationRecoversWaitTimeOnAverage) {
  // Per-seed, compaction can occasionally hurt (it reshuffles placement);
  // the Krevat claim is about the average, so compare means over seeds.
  double rigid_sum = 0, migrating_sum = 0;
  std::uint64_t migrations = 0;
  for (std::uint64_t seed : {4u, 14u, 24u, 34u}) {
    const auto workload = study_workload(seed);
    ContiguityPolicy rigid;
    ContiguityPolicy migrating;
    migrating.migrate = true;
    rigid_sum += run_contiguity_study(workload, rigid).mean_wait;
    const auto migrating_result = run_contiguity_study(workload, migrating);
    migrating_sum += migrating_result.mean_wait;
    migrations += migrating_result.migrations;
  }
  EXPECT_GT(migrations, 0u);
  EXPECT_LE(migrating_sum, rigid_sum * 1.02);
}

TEST(Contiguity, MigrationNeverBlocksFragmentationOnlyHeads) {
  // With migration, a head blocked only by fragmentation always proceeds;
  // measured as: migrating run's utilization >= rigid run's (same trace).
  const auto workload = study_workload(5);
  ContiguityPolicy rigid;
  ContiguityPolicy migrating;
  migrating.migrate = true;
  const auto rigid_result = run_contiguity_study(workload, rigid);
  const auto migrating_result = run_contiguity_study(workload, migrating);
  EXPECT_GE(migrating_result.utilization, rigid_result.utilization * 0.98);
}

TEST(Contiguity, Deterministic) {
  const auto workload = study_workload(6);
  ContiguityPolicy policy;
  policy.migrate = true;
  const auto a = run_contiguity_study(workload, policy);
  const auto b = run_contiguity_study(workload, policy);
  EXPECT_DOUBLE_EQ(a.mean_wait, b.mean_wait);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST(Contiguity, BackfillHelps) {
  const auto workload = study_workload(7);
  ContiguityPolicy with;
  ContiguityPolicy without;
  without.backfill = false;
  const auto with_result = run_contiguity_study(workload, with);
  const auto without_result = run_contiguity_study(workload, without);
  EXPECT_LE(with_result.mean_wait, without_result.mean_wait * 1.001);
}

}  // namespace
}  // namespace es::exp
