// Tier-1 guarantee of the parallel experiment engine: fanning a campaign
// across worker threads changes wall time and nothing else.  Every seed is
// derived up front and every aggregate is folded serially in index order,
// so --jobs 8 must produce byte-identical CSVs to --jobs 1.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "util/thread_pool.hpp"

namespace es::exp {
namespace {

class ParallelDeterminism : public ::testing::Test {
 protected:
  // Every test compares a serial leg against a pooled leg; always restore
  // the process-wide default (serial) so other suites are unaffected.
  void TearDown() override { util::set_global_parallelism(1); }

  static workload::GeneratorConfig small_config() {
    workload::GeneratorConfig config;
    config.num_jobs = 120;
    config.seed = 11;
    config.p_small = 0.2;
    return config;
  }

  static std::string csv_bytes(const Sweep& sweep, const std::string& name) {
    const std::string path = ::testing::TempDir() + "/" + name;
    EXPECT_TRUE(write_sweep_csv(path, sweep));
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    std::remove(path.c_str());
    return out.str();
  }
};

TEST_F(ParallelDeterminism, RunReplicatedAggregateIsBitwiseEqual) {
  RunSpec spec;
  spec.workload = small_config();
  spec.algorithm = "Delayed-LOS";

  util::set_global_parallelism(1);
  const Aggregate serial = run_replicated(spec, 6);
  util::set_global_parallelism(8);
  const Aggregate parallel = run_replicated(spec, 6);

  // Bitwise, not approximate: the parallel fold must execute the identical
  // floating-point operation sequence.
  EXPECT_EQ(serial.utilization, parallel.utilization);
  EXPECT_EQ(serial.mean_wait, parallel.mean_wait);
  EXPECT_EQ(serial.slowdown, parallel.slowdown);
  EXPECT_EQ(serial.utilization_stddev, parallel.utilization_stddev);
  EXPECT_EQ(serial.mean_wait_stddev, parallel.mean_wait_stddev);
  EXPECT_EQ(serial.utilization_ci95, parallel.utilization_ci95);
  EXPECT_EQ(serial.mean_wait_ci95, parallel.mean_wait_ci95);
  EXPECT_EQ(serial.offered_load, parallel.offered_load);
  EXPECT_EQ(serial.mean_dedicated_delay, parallel.mean_dedicated_delay);
  EXPECT_EQ(serial.ecc_processed, parallel.ecc_processed);
  EXPECT_EQ(serial.dp.calls, parallel.dp.calls);
  EXPECT_EQ(serial.dp.cache_hits, parallel.dp.cache_hits);
}

TEST_F(ParallelDeterminism, LoadSweepCsvIsByteIdenticalAtJobs8) {
  const std::vector<double> loads{0.6, 0.9};
  const std::vector<std::string> algorithms{"EASY", "LOS", "Delayed-LOS"};

  util::set_global_parallelism(1);
  const Sweep serial =
      load_sweep(small_config(), loads, algorithms, {}, 3);
  util::set_global_parallelism(8);
  const Sweep parallel =
      load_sweep(small_config(), loads, algorithms, {}, 3);

  const std::string serial_bytes = csv_bytes(serial, "det_serial.csv");
  const std::string parallel_bytes = csv_bytes(parallel, "det_parallel.csv");
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, parallel_bytes);
}

TEST_F(ParallelDeterminism, SkipCountSweepCsvIsByteIdenticalAtJobs8) {
  util::set_global_parallelism(1);
  const Sweep serial =
      skip_count_sweep(small_config(), 1, 4, {"EASY", "LOS"}, 250, 2);
  util::set_global_parallelism(8);
  const Sweep parallel =
      skip_count_sweep(small_config(), 1, 4, {"EASY", "LOS"}, 250, 2);

  const std::string serial_bytes = csv_bytes(serial, "cs_serial.csv");
  const std::string parallel_bytes = csv_bytes(parallel, "cs_parallel.csv");
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, parallel_bytes);
}

TEST_F(ParallelDeterminism, OptimalSkipCountAgreesAcrossJobCounts) {
  util::set_global_parallelism(1);
  const int serial = optimal_skip_count(small_config(), 1, 5, 2);
  util::set_global_parallelism(8);
  const int parallel = optimal_skip_count(small_config(), 1, 5, 2);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace es::exp
