#include "core/factory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>

namespace es::core {
namespace {

std::string lowered(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return name;
}

std::string uppered(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return name;
}

TEST(Factory, BuildsEveryTableThreeAlgorithm) {
  for (const std::string& name : algorithm_names()) {
    const Algorithm algorithm = make_algorithm(name);
    ASSERT_NE(algorithm.policy, nullptr) << name;
    EXPECT_EQ(algorithm.canonical_name, name);
  }
}

TEST(Factory, EveryNameRoundTripsCaseInsensitively) {
  // Lower-case, UPPER-CASE and mIxEd spellings of every published name
  // must build the same algorithm and report the same canonical name.
  for (const std::string& name : algorithm_names()) {
    for (const std::string& spelling :
         {lowered(name), uppered(name), lowered(name).substr(0, 1) + name.substr(1)}) {
      EXPECT_TRUE(is_algorithm_name(spelling)) << spelling;
      const Algorithm algorithm = make_algorithm(spelling);
      ASSERT_NE(algorithm.policy, nullptr) << spelling;
      EXPECT_EQ(algorithm.canonical_name, name) << spelling;
    }
  }
}

TEST(Factory, EccSuffixMapsToProcessorFlag) {
  EXPECT_FALSE(make_algorithm("EASY").process_eccs);
  EXPECT_TRUE(make_algorithm("EASY-E").process_eccs);
  EXPECT_TRUE(make_algorithm("EASY-DE").process_eccs);
  EXPECT_TRUE(make_algorithm("LOS-DE").process_eccs);
  EXPECT_TRUE(make_algorithm("Delayed-LOS-E").process_eccs);
  EXPECT_TRUE(make_algorithm("Hybrid-LOS-E").process_eccs);
  EXPECT_FALSE(make_algorithm("Hybrid-LOS").process_eccs);
}

TEST(Factory, SuffixStrippingSetsProcessEccsForEveryName) {
  // Systematically: a name ends in -E/-DE (case-insensitive) if and only
  // if the built algorithm processes ECCs.
  for (const std::string& name : algorithm_names()) {
    const std::string key = lowered(name);
    const bool expect_eccs = key.ends_with("-e") || key.ends_with("-de");
    EXPECT_EQ(make_algorithm(name).process_eccs, expect_eccs) << name;
  }
}

TEST(Factory, DedicatedSupportMatchesTableThree) {
  EXPECT_FALSE(make_algorithm("EASY").policy->supports_dedicated());
  EXPECT_TRUE(make_algorithm("EASY-D").policy->supports_dedicated());
  EXPECT_TRUE(make_algorithm("EASY-DE").policy->supports_dedicated());
  EXPECT_FALSE(make_algorithm("LOS-E").policy->supports_dedicated());
  EXPECT_TRUE(make_algorithm("LOS-DE").policy->supports_dedicated());
  EXPECT_FALSE(make_algorithm("Delayed-LOS").policy->supports_dedicated());
  EXPECT_TRUE(make_algorithm("Hybrid-LOS-E").policy->supports_dedicated());
}

TEST(Factory, CaseInsensitive) {
  EXPECT_NE(make_algorithm("delayed-los").policy, nullptr);
  EXPECT_NE(make_algorithm("HYBRID-LOS-E").policy, nullptr);
  EXPECT_NE(make_algorithm("Easy-De").policy, nullptr);
}

TEST(Factory, UnknownNameThrowsTypedError) {
  EXPECT_THROW(make_algorithm("NOPE"), UnknownAlgorithmError);
  EXPECT_THROW(make_algorithm(""), UnknownAlgorithmError);
  EXPECT_THROW(make_algorithm("-e"), UnknownAlgorithmError);
  EXPECT_THROW(make_algorithm("-de"), UnknownAlgorithmError);
  EXPECT_THROW(make_algorithm("EASY "), UnknownAlgorithmError);
  EXPECT_THROW(make_algorithm("EASY-DD"), UnknownAlgorithmError);
  EXPECT_THROW(make_algorithm("LOS--E"), UnknownAlgorithmError);
}

TEST(Factory, UnknownNameErrorCarriesNameAndKnownList) {
  try {
    make_algorithm("NOPE");
    FAIL() << "expected UnknownAlgorithmError";
  } catch (const UnknownAlgorithmError& error) {
    EXPECT_EQ(error.name(), "NOPE");
    const std::string what = error.what();
    EXPECT_NE(what.find("NOPE"), std::string::npos);
    EXPECT_NE(what.find("Hybrid-LOS-E"), std::string::npos);
  }
}

TEST(Factory, IsAlgorithmNameMatchesMakeAlgorithm) {
  for (const std::string& name : algorithm_names())
    EXPECT_TRUE(is_algorithm_name(name)) << name;
  EXPECT_FALSE(is_algorithm_name("NOPE"));
  EXPECT_FALSE(is_algorithm_name(""));
  EXPECT_FALSE(is_algorithm_name("-e"));
  EXPECT_FALSE(is_algorithm_name("easy-"));
}

TEST(Factory, OptionsPropagate) {
  AlgorithmOptions options;
  options.max_skip_count = 3;
  options.lookahead = 10;
  const Algorithm algorithm = make_algorithm("Delayed-LOS", options);
  // Verified through behaviour elsewhere; here check the canonical name and
  // that construction honours custom options without crashing.
  ASSERT_NE(algorithm.policy, nullptr);
  EXPECT_EQ(algorithm.canonical_name, "Delayed-LOS");
}

TEST(Factory, RunningResizeRequiresEccVariant) {
  AlgorithmOptions options;
  options.engine.allow_running_resize = true;
  // The flag only takes effect for -E variants: resizing running jobs
  // requires the ECC processor.
  EXPECT_FALSE(make_algorithm("EASY", options).allow_running_resize);
  EXPECT_TRUE(make_algorithm("EASY-E", options).allow_running_resize);
  EXPECT_FALSE(make_algorithm("EASY-E").allow_running_resize);
}

TEST(Factory, ExtraBaselinesAvailable) {
  EXPECT_NE(make_algorithm("FCFS").policy, nullptr);
  EXPECT_NE(make_algorithm("CONS").policy, nullptr);
  EXPECT_NE(make_algorithm("conservative").policy, nullptr);
  EXPECT_NE(make_algorithm("Adaptive").policy, nullptr);
}

}  // namespace
}  // namespace es::core
