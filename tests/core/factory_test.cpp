#include "core/factory.hpp"

#include <gtest/gtest.h>

namespace es::core {
namespace {

TEST(Factory, BuildsEveryTableThreeAlgorithm) {
  for (const std::string& name : algorithm_names()) {
    const Algorithm algorithm = make_algorithm(name);
    ASSERT_NE(algorithm.policy, nullptr) << name;
    EXPECT_EQ(algorithm.canonical_name, name);
  }
}

TEST(Factory, EccSuffixMapsToProcessorFlag) {
  EXPECT_FALSE(make_algorithm("EASY").process_eccs);
  EXPECT_TRUE(make_algorithm("EASY-E").process_eccs);
  EXPECT_TRUE(make_algorithm("EASY-DE").process_eccs);
  EXPECT_TRUE(make_algorithm("LOS-DE").process_eccs);
  EXPECT_TRUE(make_algorithm("Delayed-LOS-E").process_eccs);
  EXPECT_TRUE(make_algorithm("Hybrid-LOS-E").process_eccs);
  EXPECT_FALSE(make_algorithm("Hybrid-LOS").process_eccs);
}

TEST(Factory, DedicatedSupportMatchesTableThree) {
  EXPECT_FALSE(make_algorithm("EASY").policy->supports_dedicated());
  EXPECT_TRUE(make_algorithm("EASY-D").policy->supports_dedicated());
  EXPECT_TRUE(make_algorithm("EASY-DE").policy->supports_dedicated());
  EXPECT_FALSE(make_algorithm("LOS-E").policy->supports_dedicated());
  EXPECT_TRUE(make_algorithm("LOS-DE").policy->supports_dedicated());
  EXPECT_FALSE(make_algorithm("Delayed-LOS").policy->supports_dedicated());
  EXPECT_TRUE(make_algorithm("Hybrid-LOS-E").policy->supports_dedicated());
}

TEST(Factory, CaseInsensitive) {
  EXPECT_NE(make_algorithm("delayed-los").policy, nullptr);
  EXPECT_NE(make_algorithm("HYBRID-LOS-E").policy, nullptr);
  EXPECT_NE(make_algorithm("Easy-De").policy, nullptr);
}

TEST(Factory, UnknownNameYieldsNull) {
  EXPECT_EQ(make_algorithm("NOPE").policy, nullptr);
  EXPECT_EQ(make_algorithm("").policy, nullptr);
  EXPECT_EQ(make_algorithm("-e").policy, nullptr);
}

TEST(Factory, OptionsPropagate) {
  AlgorithmOptions options;
  options.max_skip_count = 3;
  options.lookahead = 10;
  const Algorithm algorithm = make_algorithm("Delayed-LOS", options);
  // Verified through behaviour elsewhere; here check the canonical name and
  // that construction honours custom options without crashing.
  ASSERT_NE(algorithm.policy, nullptr);
  EXPECT_EQ(algorithm.canonical_name, "Delayed-LOS");
}

TEST(Factory, ExtraBaselinesAvailable) {
  EXPECT_NE(make_algorithm("FCFS").policy, nullptr);
  EXPECT_NE(make_algorithm("CONS").policy, nullptr);
  EXPECT_NE(make_algorithm("conservative").policy, nullptr);
  EXPECT_NE(make_algorithm("Adaptive").policy, nullptr);
}

}  // namespace
}  // namespace es::core
