// The configuration spine end to end: register_run_params /
// register_tenancy_params over the real option structs, the file loader,
// the CLI-overlay precedence contract, and the cross-field rules the
// engine depends on.
#include "core/config_spine.hpp"

#include <gtest/gtest.h>

#include <string>

namespace es::core {
namespace {

TEST(ConfigSpine, EveryParamRoundTripsItsOwnRendering) {
  // set(name, current_value()) must be the identity for every registered
  // param: proves each parser accepts each renderer's output, so a dumped
  // config reproduces the exact configuration.
  AlgorithmOptions options;
  workload::GeneratorConfig generator;
  util::ParamRegistry registry;
  register_run_params(registry, options);
  register_tenancy_params(registry, generator);
  for (const util::ParamRegistry::Param& param : registry.params()) {
    const std::string before = param.current_value();
    ASSERT_NO_THROW(registry.set(param.name(), before)) << param.name();
    EXPECT_EQ(param.current_value(), before) << param.name();
  }
  EXPECT_NO_THROW(registry.finalize());
}

TEST(ConfigSpine, RegistryDefaultsMatchStructDefaults) {
  // The registry binds live storage, so a freshly registered spine over
  // default-constructed structs must report default == current everywhere
  // — any drift means a param was registered after mutation, which would
  // corrupt --dump-config's "# default:" annotations.
  AlgorithmOptions options;
  workload::GeneratorConfig generator;
  util::ParamRegistry registry;
  register_run_params(registry, options);
  register_tenancy_params(registry, generator);
  for (const util::ParamRegistry::Param& param : registry.params())
    EXPECT_EQ(param.default_value(), param.current_value()) << param.name();

  // And two independent registrations agree on the whole dump surface.
  AlgorithmOptions other_options;
  workload::GeneratorConfig other_generator;
  util::ParamRegistry other;
  register_run_params(other, other_options);
  register_tenancy_params(other, other_generator);
  EXPECT_EQ(registry.dump_config(), other.dump_config());
}

TEST(ConfigSpine, DumpLoadDumpIsTheIdentity) {
  AlgorithmOptions options;
  workload::GeneratorConfig generator;
  util::ParamRegistry registry;
  register_run_params(registry, options);
  register_tenancy_params(registry, generator);
  registry.load_text(
      "[engine]\n"
      "machine_procs = 640\n"
      "granularity = 64\n"
      "[pool]\n"
      "prod.weight = 4\n"
      "prod.min_share = 0.25\n"
      "batch.weight = 1\n"
      "[tenancy]\n"
      "users = 16\n"
      "pools = 2\n",
      "test");
  const std::string dump = registry.dump_config();

  AlgorithmOptions options2;
  workload::GeneratorConfig generator2;
  util::ParamRegistry second;
  register_run_params(second, options2);
  register_tenancy_params(second, generator2);
  second.load_text(dump, "dump");
  EXPECT_EQ(second.dump_config(), dump);
  EXPECT_EQ(options2.engine.machine_procs, 640);
  ASSERT_EQ(options2.engine.fairshare.pools.size(), 2u);
  EXPECT_EQ(options2.engine.fairshare.pools[0].name, "prod");
  EXPECT_DOUBLE_EQ(options2.engine.fairshare.pools[0].weight, 4);
  EXPECT_DOUBLE_EQ(options2.engine.fairshare.pools[0].min_share, 0.25);
  EXPECT_EQ(generator2.num_users, 16);
}

TEST(ConfigSpine, CliOverlayOverridesFileValue) {
  // The precedence contract every binary follows: defaults, then the file,
  // then flags the user actually typed (written straight to the structs),
  // then finalize() validates the merged result.
  AlgorithmOptions options;
  util::ParamRegistry registry;
  register_run_params(registry, options);
  registry.load_text("engine.machine_procs = 128\nengine.granularity = 32\n",
                     "file");
  EXPECT_EQ(options.engine.machine_procs, 128);
  options.engine.machine_procs = 320;  // --procs 320 on the command line
  EXPECT_NO_THROW(registry.finalize());
  EXPECT_EQ(options.engine.machine_procs, 320);
  EXPECT_EQ(registry.get("engine.machine_procs"), "320");
}

TEST(ConfigSpine, AllowRunningResizeRequiresProcessEccs) {
  AlgorithmOptions options;
  util::ParamRegistry registry;
  register_run_params(registry, options);
  registry.set("engine.allow_running_resize", "true");
  try {
    registry.finalize();
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& error) {
    EXPECT_EQ(error.field(), "engine.allow_running_resize");
  }
  registry.set("engine.process_eccs", "true");
  EXPECT_NO_THROW(registry.finalize());
}

TEST(ConfigSpine, GranularityMustDivideMachineProcs) {
  AlgorithmOptions options;
  util::ParamRegistry registry;
  register_run_params(registry, options);
  registry.set("engine.granularity", "48");  // 320 % 48 != 0
  EXPECT_THROW(registry.finalize(), util::ConfigError);
  registry.set("engine.granularity", "64");
  EXPECT_NO_THROW(registry.finalize());
}

TEST(ConfigSpine, CheckpointOverheadRequiresInterval) {
  AlgorithmOptions options;
  util::ParamRegistry registry;
  register_run_params(registry, options);
  registry.set("checkpoint.enabled", "true");
  registry.set("checkpoint.overhead", "10");
  EXPECT_THROW(registry.finalize(), util::ConfigError);
  registry.set("checkpoint.interval", "300");
  EXPECT_NO_THROW(registry.finalize());
}

TEST(ConfigSpine, FailureNodeRangeValidated) {
  AlgorithmOptions options;
  util::ParamRegistry registry;
  register_run_params(registry, options);
  registry.set("failure.min_nodes", "4");
  registry.set("failure.max_nodes", "2");
  EXPECT_THROW(registry.finalize(), util::ConfigError);
}

TEST(ConfigSpine, PoolMinSharesMustNotOversubscribe) {
  AlgorithmOptions options;
  util::ParamRegistry registry;
  register_run_params(registry, options);
  registry.set("pool.a.min_share", "0.7");
  registry.set("pool.b.min_share", "0.6");
  try {
    registry.finalize();
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& error) {
    EXPECT_EQ(error.field(), "pool");
  }
}

TEST(ConfigSpine, AliasesAcceptedForEngineKeys) {
  AlgorithmOptions options;
  util::ParamRegistry registry;
  register_run_params(registry, options);
  registry.set("engine.procs", "640");
  registry.set("engine.gran", "64");
  registry.set("algorithm.cs", "3");
  EXPECT_EQ(options.engine.machine_procs, 640);
  EXPECT_EQ(options.engine.granularity, 64);
  EXPECT_EQ(options.max_skip_count, 3);
}

TEST(ConfigSpine, RequeueModeIsAnEnum) {
  AlgorithmOptions options;
  util::ParamRegistry registry;
  register_run_params(registry, options);
  registry.set("engine.requeue", "abandon");
  EXPECT_EQ(options.engine.requeue, fault::RequeuePolicy::kAbandon);
  EXPECT_THROW(registry.set("engine.requeue", "sideways"),
               util::ConfigError);
}

}  // namespace
}  // namespace es::core
