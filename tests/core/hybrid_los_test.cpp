#include "core/hybrid_los.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace es::core {
namespace {

using es::testing::batch_job;
using es::testing::dedicated_job;
using es::testing::make_workload;
using es::testing::run_scenario;

TEST(HybridLos, DegeneratesToDelayedLosWithoutDedicatedJobs) {
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 10, 10), batch_job(2, 1, 7, 1000),
       batch_job(3, 2, 4, 1000), batch_job(4, 3, 6, 1000)});
  const auto hybrid = run_scenario(workload, "Hybrid-LOS");
  const auto delayed = run_scenario(workload, "Delayed-LOS");
  for (const auto& [id, outcome] : hybrid.by_id)
    EXPECT_DOUBLE_EQ(outcome.started, delayed.job(id).started)
        << "job " << id;
}

TEST(HybridLos, DedicatedJobStartsExactlyAtRequestedTime) {
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 4, 30), dedicated_job(2, 0, 8, 50, 100)});
  const auto scenario = run_scenario(workload, "Hybrid-LOS");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
  EXPECT_EQ(scenario.result.dedicated_on_time, 1u);
}

TEST(HybridLos, BatchJobsPackAroundDedicatedReservation) {
  // Dedicated 8 procs at t=100; frec = 2.  Batch: 6x50 (ends before), 2x500
  // (fits the shadow), 6x500 (violates) — the DP starts the first two.
  const auto workload = make_workload(
      10, 1,
      {dedicated_job(1, 0, 8, 50, 100), batch_job(2, 1, 6, 50),
       batch_job(3, 2, 2, 500), batch_job(4, 3, 6, 500)});
  const auto scenario = run_scenario(workload, "Hybrid-LOS");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 1);
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 2);
  EXPECT_GE(scenario.start_of(4), 100);
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 100);
}

TEST(HybridLos, DedicatedGroupWithSameStartReservedTogether) {
  // Two dedicated jobs (4 + 4) at t=100: a 6-proc batch job crossing the
  // start must wait (only 2 procs free across the freeze).
  const auto workload = make_workload(
      10, 1,
      {dedicated_job(1, 0, 4, 50, 100), dedicated_job(2, 0, 4, 50, 100),
       batch_job(3, 1, 6, 500)});
  const auto scenario = run_scenario(workload, "Hybrid-LOS");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 100);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
  EXPECT_GE(scenario.start_of(3), 150);
}

TEST(HybridLos, InsufficientCapacityDelaysDedicatedJob) {
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 10, 200), dedicated_job(2, 0, 10, 50, 100)});
  const auto scenario = run_scenario(workload, "Hybrid-LOS");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 200);
  EXPECT_DOUBLE_EQ(scenario.job(2).wait, 100);
}

TEST(HybridLos, BatchHeadSkipBoundHoldsUnderDedicatedStream) {
  // C_s = 1: the batch head (7 procs) is skipped once for packing, then must
  // start right away even though more dedicated work is pending.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 10, 10),
       batch_job(2, 1, 7, 100),
       batch_job(3, 2, 4, 50), batch_job(4, 3, 6, 50),
       dedicated_job(5, 4, 10, 50, 400)});
  core::AlgorithmOptions options;
  options.max_skip_count = 1;
  const auto scenario = run_scenario(workload, "Hybrid-LOS", options);
  // t=10: dedicated pending (start 400), head skipped by the DP ({4,6}
  // packs 10), scount -> 1.  t=60: pairs finish; scount == C_s -> head
  // starts right away.
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 10);
  EXPECT_DOUBLE_EQ(scenario.start_of(4), 10);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 60);
  EXPECT_DOUBLE_EQ(scenario.start_of(5), 400);
}

TEST(HybridLos, DueDedicatedOverridesFutureFreeze) {
  // Dedicated j1 due at t=50 (10 procs) and dedicated j2 at t=1000.  When
  // j1 becomes due it must start even though it crosses nothing -> starts;
  // the later reservation stays intact.
  const auto workload = make_workload(
      10, 1,
      {dedicated_job(1, 0, 10, 100, 50), dedicated_job(2, 0, 10, 50, 1000)});
  const auto scenario = run_scenario(workload, "Hybrid-LOS");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 50);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 1000);
}

TEST(HybridLos, EmptyBatchQueueStillServesDueDedicated) {
  const auto workload =
      make_workload(10, 1, {dedicated_job(1, 0, 4, 10, 77)});
  const auto scenario = run_scenario(workload, "Hybrid-LOS");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 77);
}

TEST(HybridLos, DedicatedKeepsOriginalArrivalForMetrics) {
  // Algorithm 3 keeps w.arr; the outcome record must carry the original
  // arrival, and the wait metric is the start delay.
  const auto workload =
      make_workload(10, 1, {dedicated_job(1, 5, 4, 10, 50)});
  const auto scenario = run_scenario(workload, "Hybrid-LOS");
  EXPECT_DOUBLE_EQ(scenario.job(1).arrival, 5);
  EXPECT_DOUBLE_EQ(scenario.job(1).wait, 0);
}

TEST(HybridLos, SupportsDedicatedAndName) {
  HybridLos scheduler;
  EXPECT_TRUE(scheduler.supports_dedicated());
  EXPECT_EQ(scheduler.name(), "Hybrid-LOS");
}

}  // namespace
}  // namespace es::core
