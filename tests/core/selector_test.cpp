#include "core/selector.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "workload/generator.hpp"

namespace es::core {
namespace {

using es::testing::run_scenario;

TEST(AdaptiveSelector, DefaultsAndName) {
  AdaptiveSelector selector;
  EXPECT_EQ(selector.name(), "Adaptive");
  EXPECT_FALSE(selector.supports_dedicated());
  EXPECT_DOUBLE_EQ(selector.small_fraction(), 0.0);
}

TEST(AdaptiveSelector, CompletesSmallDominatedWorkload) {
  workload::GeneratorConfig config;
  config.num_jobs = 200;
  config.seed = 5;
  config.p_small = 0.9;
  config.target_load = 0.8;
  const auto workload = workload::generate(config);
  const auto scenario = run_scenario(workload, "Adaptive");
  EXPECT_EQ(scenario.result.completed + scenario.result.killed, 200u);
}

TEST(AdaptiveSelector, CompletesLargeDominatedWorkload) {
  workload::GeneratorConfig config;
  config.num_jobs = 200;
  config.seed = 6;
  config.p_small = 0.1;
  config.target_load = 0.8;
  const auto workload = workload::generate(config);
  const auto scenario = run_scenario(workload, "Adaptive");
  EXPECT_EQ(scenario.result.completed + scenario.result.killed, 200u);
}

TEST(AdaptiveSelector, TracksSmallFractionAndSwitchesDelegate) {
  // Drive cycles directly through the engine by observing the delegate
  // choice after small- vs large-dominated traffic.
  AdaptiveSelector::Options options;
  options.window = 8;
  options.easy_fraction = 0.7;
  AdaptiveSelector selector(options);

  // Feed contexts by running small scenarios through the scheduler;
  // simplest is to exercise observe via full runs on crafted queues.
  // Small jobs only -> small_fraction goes to 1 -> EASY delegate.
  workload::GeneratorConfig small_config;
  small_config.num_jobs = 60;
  small_config.seed = 9;
  small_config.p_small = 1.0;
  const auto small_workload = workload::generate(small_config);
  sched::EngineConfig engine_config;
  engine_config.machine_procs = small_workload.machine_procs;
  engine_config.granularity = small_workload.granularity;
  sched::simulate(engine_config, selector, small_workload);
  EXPECT_GE(selector.small_fraction(), 0.9);
  EXPECT_TRUE(selector.using_easy());

  AdaptiveSelector large_selector(options);
  workload::GeneratorConfig large_config = small_config;
  large_config.p_small = 0.0;
  const auto large_workload = workload::generate(large_config);
  sched::simulate(engine_config, large_selector, large_workload);
  EXPECT_LE(large_selector.small_fraction(), 0.1);
  EXPECT_FALSE(large_selector.using_easy());
}

TEST(AdaptiveSelector, MatchesBestOfBothOnMixtures) {
  // Not a strict dominance claim — just that the selector lands within the
  // envelope of its two delegates on wait time (sanity of delegation).
  for (double ps : {0.1, 0.9}) {
    workload::GeneratorConfig config;
    config.num_jobs = 300;
    config.seed = 12;
    config.p_small = ps;
    config.target_load = 0.9;
    const auto workload = workload::generate(config);
    const auto adaptive = run_scenario(workload, "Adaptive");
    const auto easy = run_scenario(workload, "EASY");
    const auto delayed = run_scenario(workload, "Delayed-LOS");
    const double best =
        std::min(easy.result.mean_wait, delayed.result.mean_wait);
    const double worst =
        std::max(easy.result.mean_wait, delayed.result.mean_wait);
    EXPECT_GE(adaptive.result.mean_wait, 0.8 * best);
    EXPECT_LE(adaptive.result.mean_wait, 1.2 * worst);
  }
}

}  // namespace
}  // namespace es::core
