#include "core/delayed_los.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace es::core {
namespace {

using es::testing::batch_job;
using es::testing::make_workload;
using es::testing::run_scenario;

/// The paper's Fig-2 queue (7, 4, 6 on 10 processors) behind a blocker that
/// drains at t=10.
workload::Workload figure2_workload() {
  return make_workload(10, 1,
                       {batch_job(1, 0, 10, 10), batch_job(2, 1, 7, 1000),
                        batch_job(3, 2, 4, 1000), batch_job(4, 3, 6, 1000)});
}

TEST(DelayedLos, Figure2MotivationPacksRearJobs) {
  const auto scenario = run_scenario(figure2_workload(), "Delayed-LOS");
  // Basic_DP picks {4, 6} at t=10 -> utilization 10/10; head waits.
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 10);
  EXPECT_DOUBLE_EQ(scenario.start_of(4), 10);
  EXPECT_GE(scenario.start_of(2), 1010);
}

TEST(DelayedLos, Figure2UtilizationBeatsLos) {
  const auto delayed = run_scenario(figure2_workload(), "Delayed-LOS");
  const auto los = run_scenario(figure2_workload(), "LOS");
  // LOS runs the 7 first: {4,6} wait, machine at 70% for 1000 s.
  EXPECT_LT(delayed.result.mean_wait, los.result.mean_wait);
}

TEST(DelayedLos, SkipCountBoundForcesHeadStart) {
  // C_s = 2.  A stream of {4,6}-style pairs would starve the head forever;
  // after two skips the head must start as soon as it fits.
  //
  // Blocker drains at t=10.  Queue: head 7, then pairs {4,6} arriving over
  // time.  With C_s=2 the head is skipped at most twice before being
  // force-started at the next opportunity.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 10, 10),
       batch_job(2, 1, 7, 100),    // head
       batch_job(3, 2, 4, 100), batch_job(4, 3, 6, 100),
       batch_job(5, 4, 4, 100), batch_job(6, 5, 6, 100),
       batch_job(7, 6, 4, 100), batch_job(8, 7, 6, 100)});
  core::AlgorithmOptions options;
  options.max_skip_count = 2;
  const auto scenario = run_scenario(workload, "Delayed-LOS", options);
  // Cycle at t=10: head skipped (1st), {4,6} start.  t=110: skipped (2nd),
  // next {4,6} start.  t=210: scount == C_s -> head starts right away.
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 210);
  // The last pair runs after/alongside the head: 7+4 > 10 but... free is 3
  // after the head starts, so they follow at t=310.
  EXPECT_GE(scenario.start_of(7), 210);
}

TEST(DelayedLos, LargeSkipCountKeepsPacking) {
  // Same scenario with C_s = 10: the head keeps losing to the pairs.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 10, 10),
       batch_job(2, 1, 7, 100),
       batch_job(3, 2, 4, 100), batch_job(4, 3, 6, 100),
       batch_job(5, 4, 4, 100), batch_job(6, 5, 6, 100),
       batch_job(7, 6, 4, 100), batch_job(8, 7, 6, 100)});
  core::AlgorithmOptions options;
  options.max_skip_count = 10;
  const auto scenario = run_scenario(workload, "Delayed-LOS", options);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 310);  // after all three pairs
}

TEST(DelayedLos, BlockedHeadFallsBackToReservationPath) {
  // Head larger than the free pool: identical treatment to LOS (shadow
  // reservation + Reservation_DP).
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 6, 100), batch_job(2, 1, 8, 500),
       batch_job(3, 2, 4, 50), batch_job(4, 3, 2, 1000)});
  const auto delayed = run_scenario(workload, "Delayed-LOS");
  const auto los = run_scenario(workload, "LOS");
  EXPECT_DOUBLE_EQ(delayed.start_of(3), los.start_of(3));
  EXPECT_DOUBLE_EQ(delayed.start_of(4), los.start_of(4));
  EXPECT_DOUBLE_EQ(delayed.start_of(2), los.start_of(2));
}

TEST(DelayedLos, HeadInDpSelectionDoesNotBumpSkipCount) {
  // When Basic_DP selects the head, no skip is charged: with C_s = 1 and a
  // perfectly packable queue the head still participates in packing.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 4, 100), batch_job(2, 0, 6, 100),
       batch_job(3, 0, 10, 100)});
  core::AlgorithmOptions options;
  options.max_skip_count = 1;
  const auto scenario = run_scenario(workload, "Delayed-LOS", options);
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 0);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 0);
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 100);
}

TEST(DelayedLos, DoesNotSupportDedicated) {
  DelayedLos scheduler;
  EXPECT_FALSE(scheduler.supports_dedicated());
  EXPECT_EQ(scheduler.name(), "Delayed-LOS");
  EXPECT_EQ(scheduler.max_skip_count(), 7);
}

}  // namespace
}  // namespace es::core
