#include "core/los.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace es::core {
namespace {

using es::testing::batch_job;
using es::testing::dedicated_job;
using es::testing::make_workload;
using es::testing::run_scenario;

TEST(Los, StartsHeadRightAwayWhenItFits) {
  // The Fig-2 queue under LOS: head (7) grabbed immediately even though
  // {4, 6} packs better.  Blocker keeps all three queued until t=10.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 10, 10), batch_job(2, 1, 7, 1000),
       batch_job(3, 2, 4, 1000), batch_job(4, 3, 6, 1000)});
  const auto scenario = run_scenario(workload, "LOS");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 10);   // head started right away
  EXPECT_GE(scenario.start_of(3), 1000);        // 4 doesn't fit beside 7? it
  // does: 7+4 > 10 -> no.  Both remaining jobs wait for the head to finish.
  EXPECT_GE(scenario.start_of(4), 1000);
}

TEST(Los, ReservationDpPacksAroundBlockedHead) {
  // 4 procs busy until 100.  Head needs 8 -> reserved at t=100 with
  // frec = 10-8 = 2.  A 4-proc short job (ends before 100) backfills at
  // arrival, and a 2-proc long job fits the shadow capacity.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 4, 100), batch_job(2, 1, 8, 500),
       batch_job(3, 2, 4, 50), batch_job(4, 3, 2, 1000)});
  const auto scenario = run_scenario(workload, "LOS");
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 2);
  EXPECT_DOUBLE_EQ(scenario.start_of(4), 3);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
}

TEST(Los, DpBeatsGreedyBackfillOrdering) {
  // A blocker keeps the machine full until t=10 so that the whole queue is
  // waiting when the packing decision happens.  Then: 6 procs busy until
  // t=100; head needs 9 (reserved at 100, frec = 1).  Waiting: j3 = 3
  // procs, j4 = 4 procs, both ending before the shadow, but only one fits
  // the 4 free procs.  EASY scans in order and backfills j3 (util 3);
  // LOS's Reservation_DP picks j4 (util 4).
  const auto workload = make_workload(
      10, 1,
      {batch_job(0, 0, 4, 10), batch_job(1, 0, 6, 100),
       batch_job(2, 1, 9, 500), batch_job(3, 2, 3, 50),
       batch_job(4, 3, 4, 50)});
  const auto los = run_scenario(workload, "LOS");
  const auto easy = run_scenario(workload, "EASY");
  EXPECT_DOUBLE_EQ(easy.start_of(3), 10);
  EXPECT_GT(easy.start_of(4), 10);
  EXPECT_DOUBLE_EQ(los.start_of(4), 10);
  EXPECT_GT(los.start_of(3), 10);
}

TEST(Los, LookaheadLimitsDpScope) {
  // With lookahead 1 the DP sees only the head; deeper jobs wait even when
  // they fit.
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 6, 100), batch_job(2, 1, 9, 500),
       batch_job(3, 2, 4, 50)});
  core::AlgorithmOptions narrow;
  narrow.lookahead = 1;
  const auto scenario = run_scenario(workload, "LOS", narrow);
  EXPECT_GE(scenario.start_of(3), 100);  // not considered by the DP
}

TEST(LosD, DueDedicatedStartsOnTime) {
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 4, 30), dedicated_job(2, 0, 8, 50, 100)});
  const auto scenario = run_scenario(workload, "LOS-D");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 100);
}

TEST(LosD, HeadRespectsDedicatedFreeze) {
  // Dedicated 8 at t=100.  Batch head 6 x 200 would cross and trample the
  // reservation -> waits; LOS-D without the freeze would start it at t=1.
  const auto workload = make_workload(
      10, 1, {dedicated_job(1, 0, 8, 50, 100), batch_job(2, 1, 6, 200)});
  const auto scenario = run_scenario(workload, "LOS-D");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 100);
  EXPECT_GE(scenario.start_of(2), 100);
}

TEST(LosD, PacksShortBatchJobsBeforeDedicatedStart) {
  const auto workload = make_workload(
      10, 1,
      {dedicated_job(1, 0, 8, 50, 100), batch_job(2, 1, 6, 50),
       batch_job(3, 2, 4, 50)});
  const auto scenario = run_scenario(workload, "LOS-D");
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 1);
  EXPECT_DOUBLE_EQ(scenario.start_of(3), 2);
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 100);
}

TEST(Los, NameAndCapabilities) {
  Los plain(false);
  Los dedicated(true);
  EXPECT_EQ(plain.name(), "LOS");
  EXPECT_FALSE(plain.supports_dedicated());
  EXPECT_EQ(dedicated.name(), "LOS-D");
  EXPECT_TRUE(dedicated.supports_dedicated());
}

}  // namespace
}  // namespace es::core
