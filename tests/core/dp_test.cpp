#include "core/dp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace es::core {
namespace {

int total(const std::vector<int>& weights, const std::vector<int>& chosen) {
  int sum = 0;
  for (int index : chosen) sum += weights[static_cast<std::size_t>(index)];
  return sum;
}

/// Exhaustive maximum packing value for small instances.
int brute_force_best(const std::vector<int>& weights, int capacity) {
  const std::size_t n = weights.size();
  int best = 0;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    int sum = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (1u << i)) sum += weights[i];
    if (sum <= capacity) best = std::max(best, sum);
  }
  return best;
}

/// Exhaustive 2D maximum.
int brute_force_best_2d(const std::vector<int>& weights,
                        const std::vector<int>& shadows, int cap,
                        int shadow_cap) {
  const std::size_t n = weights.size();
  int best = 0;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    int sum = 0, shadow = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (1u << i)) {
        sum += weights[i];
        shadow += shadows[i];
      }
    if (sum <= cap && shadow <= shadow_cap) best = std::max(best, sum);
  }
  return best;
}

TEST(BasicDp, EmptyInputs) {
  DpWorkspace ws;
  EXPECT_TRUE(basic_dp({}, 10, ws).empty());
  const std::vector<int> weights{3, 4};
  EXPECT_TRUE(basic_dp(weights, 0, ws).empty());
}

TEST(BasicDp, PaperFigure2Example) {
  // Free capacity 10, queue sizes 7, 4, 6: the optimum is {4, 6}, skipping
  // the head — the scenario motivating Delayed-LOS.
  DpWorkspace ws;
  const std::vector<int> weights{7, 4, 6};
  const auto chosen = basic_dp(weights, 10, ws);
  EXPECT_EQ(chosen, (std::vector<int>{1, 2}));
  EXPECT_EQ(total(weights, chosen), 10);
}

TEST(BasicDp, TakesEverythingWhenItFits) {
  DpWorkspace ws;
  const std::vector<int> weights{2, 3, 4};
  const auto chosen = basic_dp(weights, 10, ws);
  EXPECT_EQ(chosen, (std::vector<int>{0, 1, 2}));
}

TEST(BasicDp, PrefersEarlierJobsOnTies) {
  DpWorkspace ws;
  // {4} vs {4}: first one wins.
  EXPECT_EQ(basic_dp(std::vector<int>{4, 4}, 4, ws),
            (std::vector<int>{0}));
  // {2,2} vs {4}: equal utilization; the set containing the head wins.
  EXPECT_EQ(basic_dp(std::vector<int>{2, 4, 2}, 4, ws),
            (std::vector<int>{0, 2}));
}

TEST(BasicDp, SkipsZeroAndOversizedItems) {
  DpWorkspace ws;
  const std::vector<int> weights{0, 15, 3};
  const auto chosen = basic_dp(weights, 10, ws);
  EXPECT_EQ(chosen, (std::vector<int>{2}));
}

TEST(BasicDp, PropertyMatchesBruteForce) {
  util::Rng rng(101);
  DpWorkspace ws;
  for (int round = 0; round < 300; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    const int capacity = static_cast<int>(rng.uniform_int(1, 30));
    std::vector<int> weights;
    for (int i = 0; i < n; ++i)
      weights.push_back(static_cast<int>(rng.uniform_int(1, 15)));
    const auto chosen = basic_dp(weights, capacity, ws);
    // Feasible…
    ASSERT_LE(total(weights, chosen), capacity);
    // …and optimal.
    ASSERT_EQ(total(weights, chosen), brute_force_best(weights, capacity))
        << "round " << round;
    // Indices ascending and unique.
    for (std::size_t i = 1; i < chosen.size(); ++i)
      ASSERT_LT(chosen[i - 1], chosen[i]);
  }
}

TEST(ReservationDp, ReducesToBasicWithUnboundedShadow) {
  util::Rng rng(55);
  DpWorkspace ws1, ws2;
  for (int round = 0; round < 50; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    const int capacity = static_cast<int>(rng.uniform_int(1, 25));
    std::vector<int> weights, zeros;
    for (int i = 0; i < n; ++i) {
      weights.push_back(static_cast<int>(rng.uniform_int(1, 12)));
      zeros.push_back(0);
    }
    const auto basic = basic_dp(weights, capacity, ws1);
    const auto reservation = reservation_dp(weights, zeros, capacity, 0, ws2);
    EXPECT_EQ(basic, reservation);
  }
}

TEST(ReservationDp, ShadowConstraintBindsCrossingJobs) {
  DpWorkspace ws;
  // Two jobs of 5; both cross the freeze; shadow capacity admits only one.
  const std::vector<int> weights{5, 5};
  const std::vector<int> shadows{5, 5};
  const auto chosen = reservation_dp(weights, shadows, 10, 5, ws);
  EXPECT_EQ(chosen, (std::vector<int>{0}));
}

TEST(ReservationDp, MixesCrossingAndNonCrossingJobs) {
  DpWorkspace ws;
  // Job 0 crosses (shadow 6 > cap 5); jobs 1-2 end before the freeze.
  const std::vector<int> weights{6, 4, 5};
  const std::vector<int> shadows{6, 0, 0};
  const auto chosen = reservation_dp(weights, shadows, 10, 5, ws);
  // Best: {1, 2} = 9 now, no shadow use; including 0 would cap at 6+4=10
  // but shadow 6 > 5 excludes job 0 entirely.
  EXPECT_EQ(chosen, (std::vector<int>{1, 2}));
}

TEST(ReservationDp, PaperSemanticsHeadReservationExample) {
  // Shmueli-style: head (not in items) reserved; shadow capacity 3.
  // Waiting: a 3-proc long job (crosses, shadow 3) and a 5-proc short job
  // (ends before freeze).  Both fit now (capacity 8) and together they
  // maximize utilization.
  DpWorkspace ws;
  const std::vector<int> weights{3, 5};
  const std::vector<int> shadows{3, 0};
  const auto chosen = reservation_dp(weights, shadows, 8, 3, ws);
  EXPECT_EQ(chosen, (std::vector<int>{0, 1}));
}

TEST(ReservationDp, PropertyMatchesBruteForce) {
  util::Rng rng(202);
  DpWorkspace ws;
  for (int round = 0; round < 300; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    const int capacity = static_cast<int>(rng.uniform_int(1, 20));
    const int shadow_cap = static_cast<int>(rng.uniform_int(0, 15));
    std::vector<int> weights, shadows;
    for (int i = 0; i < n; ++i) {
      const int w = static_cast<int>(rng.uniform_int(1, 10));
      weights.push_back(w);
      shadows.push_back(rng.bernoulli(0.5) ? w : 0);  // frenum is 0 or w
    }
    const auto chosen = reservation_dp(weights, shadows, capacity, shadow_cap, ws);
    int sum = 0, shadow_sum = 0;
    for (int index : chosen) {
      sum += weights[static_cast<std::size_t>(index)];
      shadow_sum += shadows[static_cast<std::size_t>(index)];
    }
    ASSERT_LE(sum, capacity);
    ASSERT_LE(shadow_sum, shadow_cap);
    ASSERT_EQ(sum,
              brute_force_best_2d(weights, shadows, capacity, shadow_cap))
        << "round " << round;
  }
}

TEST(FastPath, BasicDpMatchesTablePathWhenEverythingFits) {
  util::Rng rng(303);
  DpWorkspace fast_ws, table_ws;
  table_ws.cache_enabled = false;
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    std::vector<int> weights;
    int demand = 0;
    for (int i = 0; i < n; ++i) {
      const int w = static_cast<int>(rng.uniform_int(0, 8));  // incl. zeros
      weights.push_back(w);
      demand += w;
    }
    // Capacity at or above total demand: the fast path must fire and select
    // exactly what the unconditional table fill selects.
    const int capacity =
        std::max(1, demand + static_cast<int>(rng.uniform_int(0, 5)));
    const auto before = fast_ws.counters.fast_path;
    const auto fast = basic_dp(weights, capacity, fast_ws);
    ASSERT_EQ(fast_ws.counters.fast_path, before + 1) << "round " << round;
    const auto table = detail::basic_dp_table(weights, capacity, table_ws);
    ASSERT_EQ(fast, table) << "round " << round;
  }
}

TEST(FastPath, ReservationDpMatchesTablePathWhenEverythingFits) {
  util::Rng rng(404);
  DpWorkspace fast_ws, table_ws;
  table_ws.cache_enabled = false;
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    std::vector<int> weights, shadows;
    int demand = 0, shadow_demand = 0;
    for (int i = 0; i < n; ++i) {
      const int w = static_cast<int>(rng.uniform_int(0, 8));
      weights.push_back(w);
      const int s = rng.bernoulli(0.5) ? w : 0;
      shadows.push_back(s);
      demand += w;
      shadow_demand += s;
    }
    const int capacity =
        std::max(1, demand + static_cast<int>(rng.uniform_int(0, 5)));
    const int shadow_cap =
        shadow_demand + static_cast<int>(rng.uniform_int(0, 5));
    const auto before = fast_ws.counters.fast_path;
    const auto fast =
        reservation_dp(weights, shadows, capacity, shadow_cap, fast_ws);
    ASSERT_EQ(fast_ws.counters.fast_path, before + 1) << "round " << round;
    const auto table = detail::reservation_dp_table(weights, shadows,
                                                    capacity, shadow_cap,
                                                    table_ws);
    ASSERT_EQ(fast, table) << "round " << round;
  }
}

TEST(DpCache, RepeatedInstanceHitsAndSelectsIdentically) {
  DpWorkspace ws;
  // Over capacity so neither call resolves on the fast path.
  const std::vector<int> weights{7, 4, 6};
  const auto first = basic_dp(weights, 10, ws);
  EXPECT_EQ(ws.counters.table_runs, 1u);
  EXPECT_EQ(ws.counters.cache_hits, 0u);
  const auto second = basic_dp(weights, 10, ws);
  EXPECT_EQ(second, first);
  EXPECT_EQ(ws.counters.table_runs, 1u);  // answered from the cache
  EXPECT_EQ(ws.counters.cache_hits, 1u);
  // A different capacity is a different instance: miss, new table fill.
  basic_dp(weights, 9, ws);
  EXPECT_EQ(ws.counters.table_runs, 2u);
  EXPECT_EQ(ws.counters.cache_hits, 1u);
}

TEST(DpCache, BasicAndReservationInstancesNeverAlias) {
  DpWorkspace ws;
  // Same weights and capacity, both past the fast path, but reservation_dp
  // with a binding shadow must not be answered from the basic_dp cache
  // entry (or vice versa).
  const std::vector<int> weights{7, 4, 6};
  const auto basic = basic_dp(weights, 10, ws);
  EXPECT_EQ(basic, (std::vector<int>{1, 2}));
  const std::vector<int> shadows{7, 4, 6};
  const auto reservation = reservation_dp(weights, shadows, 10, 5, ws);
  EXPECT_EQ(reservation, (std::vector<int>{1}));
  // And re-posing the basic instance afterwards still answers correctly.
  EXPECT_EQ(basic_dp(weights, 10, ws), basic);
}

TEST(DpCache, DisabledWorkspaceSelectsIdentically) {
  util::Rng rng(505);
  DpWorkspace cached, uncached;
  uncached.cache_enabled = false;
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    const int capacity = static_cast<int>(rng.uniform_int(1, 20));
    const int shadow_cap = static_cast<int>(rng.uniform_int(0, 12));
    std::vector<int> weights, shadows;
    for (int i = 0; i < n; ++i) {
      const int w = static_cast<int>(rng.uniform_int(1, 10));
      weights.push_back(w);
      shadows.push_back(rng.bernoulli(0.5) ? w : 0);
    }
    // Re-pose instances frequently so the cached workspace actually hits.
    for (int repeat = 0; repeat < 2; ++repeat) {
      ASSERT_EQ(basic_dp(weights, capacity, cached),
                basic_dp(weights, capacity, uncached))
          << "round " << round;
      ASSERT_EQ(reservation_dp(weights, shadows, capacity, shadow_cap, cached),
                reservation_dp(weights, shadows, capacity, shadow_cap,
                               uncached))
          << "round " << round;
    }
  }
  EXPECT_GT(cached.counters.cache_hits, 0u);
  EXPECT_EQ(uncached.counters.cache_hits, 0u);
}

TEST(DpCache, EvictionKeepsAnswersCorrect) {
  // More distinct instances than kCacheSlots: the round-robin eviction must
  // only ever cost extra table fills, never wrong selections.
  DpWorkspace ws;
  for (int extra = 0;
       extra < static_cast<int>(DpWorkspace::kDefaultCacheSlots) + 4;
       ++extra) {
    const std::vector<int> weights{7, 4, 6, 2 + extra};
    const auto chosen = basic_dp(weights, 10, ws);
    DpWorkspace fresh;
    fresh.cache_enabled = false;
    ASSERT_EQ(chosen, basic_dp(weights, 10, fresh)) << "extra " << extra;
  }
}

TEST(DpCounters, EveryCallIsCounted) {
  DpWorkspace ws;
  const std::vector<int> weights{2, 3};
  basic_dp(weights, 10, ws);              // fast path
  basic_dp(weights, 4, ws);               // table
  basic_dp(weights, 4, ws);               // cache hit
  const std::vector<int> shadows{0, 0};
  reservation_dp(weights, shadows, 10, 0, ws);  // fast path
  EXPECT_EQ(ws.counters.calls, 4u);
  EXPECT_EQ(ws.counters.fast_path, 2u);
  EXPECT_EQ(ws.counters.table_runs, 1u);
  EXPECT_EQ(ws.counters.cache_hits, 1u);
  EXPECT_GT(ws.counters.table_cells, 0u);
}

TEST(DpCache, ResizingClearsAndStillAnswersCorrectly) {
  DpWorkspace ws;
  const std::vector<int> weights{7, 4, 6};
  const auto first = basic_dp(weights, 10, ws);
  ws.set_cache_slots(2);  // shrink: previous entries must be gone
  EXPECT_EQ(basic_dp(weights, 10, ws), first);
  EXPECT_EQ(ws.counters.cache_hits, 0u);
  EXPECT_EQ(ws.counters.table_runs, 2u);
  // With 2 slots, a third distinct instance evicts the oldest; answers stay
  // correct regardless.
  for (int cap = 8; cap <= 12; ++cap) {
    DpWorkspace fresh;
    fresh.cache_enabled = false;
    EXPECT_EQ(basic_dp(weights, cap, ws), basic_dp(weights, cap, fresh));
  }
  ws.set_cache_slots(0);  // clamps to one slot, never zero
  EXPECT_EQ(basic_dp(weights, 10, ws), first);
}

TEST(DpCache, SurvivesMoreDistinctInstancesThanEightSlots) {
  // Regression for the widened cache: a working set of 32 instances
  // (distinct capacities, so distinct keys even after normalization)
  // cycled twice must hit on every instance the second time around — the
  // old 8-slot cache evicted each one long before it was re-posed.
  DpWorkspace ws;
  const std::vector<int> weights{20, 14, 16, 13};  // total 63: never fast
  for (int k = 0; k < 32; ++k) basic_dp(weights, 11 + k, ws);
  EXPECT_EQ(ws.counters.cache_hits, 0u);
  for (int k = 0; k < 32; ++k) basic_dp(weights, 11 + k, ws);
  EXPECT_EQ(ws.counters.cache_hits, 32u);
}

TEST(DpCache, NormalizedKeySharesEntriesAcrossIneligibleItems) {
  // Two instances differing only in items over capacity (which the fill
  // can never select) share one cache entry and one selection.
  DpWorkspace ws;
  const std::vector<int> a{7, 4, 11, 6};
  const std::vector<int> b{7, 4, 99, 6};  // item 2 still ineligible
  const auto first = basic_dp(a, 10, ws);
  EXPECT_EQ(ws.counters.table_runs, 1u);
  EXPECT_EQ(basic_dp(b, 10, ws), first);
  EXPECT_EQ(ws.counters.cache_hits, 1u);
  EXPECT_EQ(ws.counters.table_runs, 1u);
  // But an item crossing the eligibility boundary changes the key.
  const std::vector<int> c{7, 4, 9, 6};
  basic_dp(c, 10, ws);
  EXPECT_EQ(ws.counters.table_runs, 2u);
  // Sanity: the shared answer is what an uncached fill computes for b.
  DpWorkspace fresh;
  fresh.cache_enabled = false;
  EXPECT_EQ(first, basic_dp(b, 10, fresh));
}

class BlockedDpTest : public ::testing::Test {
 protected:
  void TearDown() override { util::set_global_parallelism(1); }
};

TEST_F(BlockedDpTest, WideTableSelectsIdenticallyUnderParallelFill) {
  // Capacities past the blocking threshold, filled serial vs parallel: the
  // blocked double-buffered fill must reproduce the in-place fill's
  // selection bit for bit (same optimum AND same tie-breaks).
  util::Rng rng(505);
  for (int round = 0; round < 6; ++round) {
    const int capacity = 8191 + static_cast<int>(rng.uniform_int(0, 9000));
    const int n = 8 + static_cast<int>(rng.uniform_int(0, 24));
    std::vector<int> weights;
    for (int i = 0; i < n; ++i)
      weights.push_back(static_cast<int>(rng.uniform_int(0, capacity / 2)));
    util::set_global_parallelism(1);
    DpWorkspace serial_ws;
    const auto serial = detail::basic_dp_table(weights, capacity, serial_ws);
    util::set_global_parallelism(4);
    DpWorkspace parallel_ws;
    const auto parallel =
        detail::basic_dp_table(weights, capacity, parallel_ws);
    ASSERT_EQ(parallel, serial) << "round " << round;
    // Logical work accounting must not depend on the fill strategy.
    EXPECT_EQ(parallel_ws.counters.table_cells,
              serial_ws.counters.table_cells);
  }
}

TEST_F(BlockedDpTest, NarrowTablesStaySerialAndIdentical) {
  // Below the width threshold the pool must not engage; selections across
  // parallelism settings are trivially identical because the same code runs.
  util::Rng rng(606);
  for (int round = 0; round < 20; ++round) {
    const int capacity = 1 + static_cast<int>(rng.uniform_int(0, 100));
    std::vector<int> weights;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 12));
    for (int i = 0; i < n; ++i)
      weights.push_back(static_cast<int>(rng.uniform_int(0, 20)));
    util::set_global_parallelism(1);
    DpWorkspace a;
    const auto serial = detail::basic_dp_table(weights, capacity, a);
    util::set_global_parallelism(4);
    DpWorkspace b;
    ASSERT_EQ(detail::basic_dp_table(weights, capacity, b), serial);
    ASSERT_EQ(total(weights, serial), brute_force_best(weights, capacity));
  }
}

TEST_F(BlockedDpTest, ParallelFillHandlesSkippedAndBoundaryItems) {
  // Zero-weight and over-capacity items interleaved with weights that land
  // exactly on block boundaries (multiples of the 8192 block width).
  const int capacity = 3 * 8192;
  const std::vector<int> weights{0,    8192, capacity + 1, 1,
                                 8191, 0,    16384,        3};
  util::set_global_parallelism(1);
  DpWorkspace serial_ws;
  const auto serial = detail::basic_dp_table(weights, capacity, serial_ws);
  util::set_global_parallelism(4);
  DpWorkspace parallel_ws;
  ASSERT_EQ(detail::basic_dp_table(weights, capacity, parallel_ws), serial);
  for (int index : serial) {
    EXPECT_NE(weights[static_cast<std::size_t>(index)], 0);
    EXPECT_LE(weights[static_cast<std::size_t>(index)], capacity);
  }
}

class SimdDpTest : public ::testing::Test {
 protected:
  // Every test flips the process-wide SIMD toggle; always restore the
  // default (enabled — the runtime probe still decides the actual tier).
  void TearDown() override { set_dp_simd_enabled(true); }
};

TEST_F(SimdDpTest, DisabledTogglesReportScalar) {
  set_dp_simd_enabled(false);
  EXPECT_EQ(dp_simd_level(), DpSimdLevel::kScalar);
  EXPECT_FALSE(dp_simd_enabled());
  set_dp_simd_enabled(true);
  EXPECT_TRUE(dp_simd_enabled());
  // The enabled tier is whatever the host supports — just require a name.
  EXPECT_NE(dp_simd_level_name(dp_simd_level()), nullptr);
}

TEST_F(SimdDpTest, VectorRowFillSelectsIdenticallyToScalar) {
  // The tentpole contract for the vector kernels: across random instances
  // wide enough to cross the SIMD width gate (capacity >= 128 grains), the
  // widest supported tier and the forced-scalar fill must produce the same
  // selection bit for bit — same optimum AND same tie-breaks — with the
  // same logical cell count.
  util::Rng rng(707);
  for (int round = 0; round < 25; ++round) {
    const int capacity = 128 + static_cast<int>(rng.uniform_int(0, 4000));
    const int n = 4 + static_cast<int>(rng.uniform_int(0, 40));
    std::vector<int> weights;
    for (int i = 0; i < n; ++i)
      weights.push_back(static_cast<int>(rng.uniform_int(0, capacity)));
    set_dp_simd_enabled(false);
    DpWorkspace scalar_ws;
    const auto scalar = detail::basic_dp_table(weights, capacity, scalar_ws);
    set_dp_simd_enabled(true);
    DpWorkspace simd_ws;
    const auto simd = detail::basic_dp_table(weights, capacity, simd_ws);
    ASSERT_EQ(simd, scalar) << "round " << round;
    EXPECT_EQ(simd_ws.counters.table_cells, scalar_ws.counters.table_cells);
    ASSERT_LE(total(weights, simd), capacity);
  }
}

TEST_F(SimdDpTest, VectorAndBlockedFillsComposeIdentically) {
  // Past the blocking threshold the SIMD row kernel runs inside the
  // blocked/parallel fill; all four (simd x parallel) combinations must
  // agree on the selection.
  util::Rng rng(808);
  const int capacity = 8192 + static_cast<int>(rng.uniform_int(0, 4096));
  std::vector<int> weights;
  for (int i = 0; i < 24; ++i)
    weights.push_back(static_cast<int>(rng.uniform_int(0, capacity / 2)));
  std::vector<std::vector<int>> results;
  for (const bool simd : {false, true}) {
    for (const int jobs : {1, 4}) {
      set_dp_simd_enabled(simd);
      util::set_global_parallelism(jobs);
      DpWorkspace ws;
      results.push_back(detail::basic_dp_table(weights, capacity, ws));
    }
  }
  util::set_global_parallelism(1);
  for (std::size_t i = 1; i < results.size(); ++i)
    ASSERT_EQ(results[i], results[0]) << "combination " << i;
}

TEST_F(SimdDpTest, BoundaryWidthsAgreeAcrossTiers) {
  // Capacities straddling the vector-width epilogues (multiples of 4, 8
  // and the 64-column keep words) and the 128-grain SIMD gate itself.
  for (const int capacity : {126, 127, 128, 129, 191, 192, 255, 256, 320}) {
    const std::vector<int> weights{1,  2,  63, 64, 65, 127, 128,
                                   31, 96, 5,  capacity, capacity - 1};
    set_dp_simd_enabled(false);
    DpWorkspace scalar_ws;
    const auto scalar = detail::basic_dp_table(weights, capacity, scalar_ws);
    set_dp_simd_enabled(true);
    DpWorkspace simd_ws;
    ASSERT_EQ(detail::basic_dp_table(weights, capacity, simd_ws), scalar)
        << "capacity " << capacity;
  }
}

TEST(DpSpecCache, WarmedEntryHitsWithIdenticalSelection) {
  const std::vector<int> weights{20, 14, 16, 13};  // total 63: never fast
  const int capacity = 40;
  DpWorkspace fill_ws;
  const auto selected = detail::basic_dp_table(weights, capacity, fill_ws);

  DpWorkspace ws;
  warm_basic_dp_cache(weights, capacity, selected, ws);
  // Warming books no calls and no table runs on the owning workspace.
  EXPECT_EQ(ws.counters.calls, 0u);
  EXPECT_EQ(ws.counters.table_runs, 0u);
  const auto hit = basic_dp(weights, capacity, ws);
  EXPECT_EQ(hit, selected);
  // The hit counts as a cache hit AND a speculation hit; no table ran, so
  // calls == fast_path + cache_hits + table_runs still balances.
  EXPECT_EQ(ws.counters.calls, 1u);
  EXPECT_EQ(ws.counters.cache_hits, 1u);
  EXPECT_EQ(ws.counters.spec_hits, 1u);
  EXPECT_EQ(ws.counters.table_runs, 0u);
  // A second probe is an ordinary (non-speculative) hit.
  basic_dp(weights, capacity, ws);
  EXPECT_EQ(ws.counters.cache_hits, 2u);
  EXPECT_EQ(ws.counters.spec_hits, 1u);
}

TEST(DpSpecCache, WarmingAnAlreadyCachedInstanceIsANoOp) {
  const std::vector<int> weights{20, 14, 16, 13};
  DpWorkspace ws;
  const auto selected = basic_dp(weights, 40, ws);  // table run + store
  warm_basic_dp_cache(weights, 40, selected, ws);
  // The entry stays non-speculative: the next hit books no spec_hits.
  basic_dp(weights, 40, ws);
  EXPECT_EQ(ws.counters.cache_hits, 1u);
  EXPECT_EQ(ws.counters.spec_hits, 0u);
}

TEST(DpSpecCache, EvictedUnprobedEntryCountsAsDiscarded) {
  DpWorkspace ws;
  ws.set_cache_slots(2);
  const std::vector<int> weights{20, 14, 16, 13};
  DpWorkspace fill_ws;
  warm_basic_dp_cache(weights, 40,
                      detail::basic_dp_table(weights, 40, fill_ws), ws);
  // Two distinct instances wrap the 2-slot round-robin and overwrite the
  // never-probed speculative entry.
  basic_dp(weights, 41, ws);
  basic_dp(weights, 42, ws);
  EXPECT_EQ(ws.counters.spec_discarded, 1u);
  EXPECT_EQ(ws.counters.spec_hits, 0u);
}

TEST(ReservationDp, WorkspaceReuseIsClean) {
  DpWorkspace ws;
  const std::vector<int> big{9, 9, 9};
  const std::vector<int> zeros{0, 0, 0};
  reservation_dp(big, zeros, 27, 10, ws);
  // A smaller follow-up problem must not see stale state.
  const std::vector<int> weights{2, 3};
  const std::vector<int> shadows{0, 0};
  const auto chosen = reservation_dp(weights, shadows, 5, 1, ws);
  EXPECT_EQ(chosen, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace es::core
