#include "core/dp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace es::core {
namespace {

int total(const std::vector<int>& weights, const std::vector<int>& chosen) {
  int sum = 0;
  for (int index : chosen) sum += weights[static_cast<std::size_t>(index)];
  return sum;
}

/// Exhaustive maximum packing value for small instances.
int brute_force_best(const std::vector<int>& weights, int capacity) {
  const std::size_t n = weights.size();
  int best = 0;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    int sum = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (1u << i)) sum += weights[i];
    if (sum <= capacity) best = std::max(best, sum);
  }
  return best;
}

/// Exhaustive 2D maximum.
int brute_force_best_2d(const std::vector<int>& weights,
                        const std::vector<int>& shadows, int cap,
                        int shadow_cap) {
  const std::size_t n = weights.size();
  int best = 0;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    int sum = 0, shadow = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (1u << i)) {
        sum += weights[i];
        shadow += shadows[i];
      }
    if (sum <= cap && shadow <= shadow_cap) best = std::max(best, sum);
  }
  return best;
}

TEST(BasicDp, EmptyInputs) {
  DpWorkspace ws;
  EXPECT_TRUE(basic_dp({}, 10, ws).empty());
  const std::vector<int> weights{3, 4};
  EXPECT_TRUE(basic_dp(weights, 0, ws).empty());
}

TEST(BasicDp, PaperFigure2Example) {
  // Free capacity 10, queue sizes 7, 4, 6: the optimum is {4, 6}, skipping
  // the head — the scenario motivating Delayed-LOS.
  DpWorkspace ws;
  const std::vector<int> weights{7, 4, 6};
  const auto chosen = basic_dp(weights, 10, ws);
  EXPECT_EQ(chosen, (std::vector<int>{1, 2}));
  EXPECT_EQ(total(weights, chosen), 10);
}

TEST(BasicDp, TakesEverythingWhenItFits) {
  DpWorkspace ws;
  const std::vector<int> weights{2, 3, 4};
  const auto chosen = basic_dp(weights, 10, ws);
  EXPECT_EQ(chosen, (std::vector<int>{0, 1, 2}));
}

TEST(BasicDp, PrefersEarlierJobsOnTies) {
  DpWorkspace ws;
  // {4} vs {4}: first one wins.
  EXPECT_EQ(basic_dp(std::vector<int>{4, 4}, 4, ws),
            (std::vector<int>{0}));
  // {2,2} vs {4}: equal utilization; the set containing the head wins.
  EXPECT_EQ(basic_dp(std::vector<int>{2, 4, 2}, 4, ws),
            (std::vector<int>{0, 2}));
}

TEST(BasicDp, SkipsZeroAndOversizedItems) {
  DpWorkspace ws;
  const std::vector<int> weights{0, 15, 3};
  const auto chosen = basic_dp(weights, 10, ws);
  EXPECT_EQ(chosen, (std::vector<int>{2}));
}

TEST(BasicDp, PropertyMatchesBruteForce) {
  util::Rng rng(101);
  DpWorkspace ws;
  for (int round = 0; round < 300; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    const int capacity = static_cast<int>(rng.uniform_int(1, 30));
    std::vector<int> weights;
    for (int i = 0; i < n; ++i)
      weights.push_back(static_cast<int>(rng.uniform_int(1, 15)));
    const auto chosen = basic_dp(weights, capacity, ws);
    // Feasible…
    ASSERT_LE(total(weights, chosen), capacity);
    // …and optimal.
    ASSERT_EQ(total(weights, chosen), brute_force_best(weights, capacity))
        << "round " << round;
    // Indices ascending and unique.
    for (std::size_t i = 1; i < chosen.size(); ++i)
      ASSERT_LT(chosen[i - 1], chosen[i]);
  }
}

TEST(ReservationDp, ReducesToBasicWithUnboundedShadow) {
  util::Rng rng(55);
  DpWorkspace ws1, ws2;
  for (int round = 0; round < 50; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    const int capacity = static_cast<int>(rng.uniform_int(1, 25));
    std::vector<int> weights, zeros;
    for (int i = 0; i < n; ++i) {
      weights.push_back(static_cast<int>(rng.uniform_int(1, 12)));
      zeros.push_back(0);
    }
    const auto basic = basic_dp(weights, capacity, ws1);
    const auto reservation = reservation_dp(weights, zeros, capacity, 0, ws2);
    EXPECT_EQ(basic, reservation);
  }
}

TEST(ReservationDp, ShadowConstraintBindsCrossingJobs) {
  DpWorkspace ws;
  // Two jobs of 5; both cross the freeze; shadow capacity admits only one.
  const std::vector<int> weights{5, 5};
  const std::vector<int> shadows{5, 5};
  const auto chosen = reservation_dp(weights, shadows, 10, 5, ws);
  EXPECT_EQ(chosen, (std::vector<int>{0}));
}

TEST(ReservationDp, MixesCrossingAndNonCrossingJobs) {
  DpWorkspace ws;
  // Job 0 crosses (shadow 6 > cap 5); jobs 1-2 end before the freeze.
  const std::vector<int> weights{6, 4, 5};
  const std::vector<int> shadows{6, 0, 0};
  const auto chosen = reservation_dp(weights, shadows, 10, 5, ws);
  // Best: {1, 2} = 9 now, no shadow use; including 0 would cap at 6+4=10
  // but shadow 6 > 5 excludes job 0 entirely.
  EXPECT_EQ(chosen, (std::vector<int>{1, 2}));
}

TEST(ReservationDp, PaperSemanticsHeadReservationExample) {
  // Shmueli-style: head (not in items) reserved; shadow capacity 3.
  // Waiting: a 3-proc long job (crosses, shadow 3) and a 5-proc short job
  // (ends before freeze).  Both fit now (capacity 8) and together they
  // maximize utilization.
  DpWorkspace ws;
  const std::vector<int> weights{3, 5};
  const std::vector<int> shadows{3, 0};
  const auto chosen = reservation_dp(weights, shadows, 8, 3, ws);
  EXPECT_EQ(chosen, (std::vector<int>{0, 1}));
}

TEST(ReservationDp, PropertyMatchesBruteForce) {
  util::Rng rng(202);
  DpWorkspace ws;
  for (int round = 0; round < 300; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    const int capacity = static_cast<int>(rng.uniform_int(1, 20));
    const int shadow_cap = static_cast<int>(rng.uniform_int(0, 15));
    std::vector<int> weights, shadows;
    for (int i = 0; i < n; ++i) {
      const int w = static_cast<int>(rng.uniform_int(1, 10));
      weights.push_back(w);
      shadows.push_back(rng.bernoulli(0.5) ? w : 0);  // frenum is 0 or w
    }
    const auto chosen = reservation_dp(weights, shadows, capacity, shadow_cap, ws);
    int sum = 0, shadow_sum = 0;
    for (int index : chosen) {
      sum += weights[static_cast<std::size_t>(index)];
      shadow_sum += shadows[static_cast<std::size_t>(index)];
    }
    ASSERT_LE(sum, capacity);
    ASSERT_LE(shadow_sum, shadow_cap);
    ASSERT_EQ(sum,
              brute_force_best_2d(weights, shadows, capacity, shadow_cap))
        << "round " << round;
  }
}

TEST(FastPath, BasicDpMatchesTablePathWhenEverythingFits) {
  util::Rng rng(303);
  DpWorkspace fast_ws, table_ws;
  table_ws.cache_enabled = false;
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    std::vector<int> weights;
    int demand = 0;
    for (int i = 0; i < n; ++i) {
      const int w = static_cast<int>(rng.uniform_int(0, 8));  // incl. zeros
      weights.push_back(w);
      demand += w;
    }
    // Capacity at or above total demand: the fast path must fire and select
    // exactly what the unconditional table fill selects.
    const int capacity =
        std::max(1, demand + static_cast<int>(rng.uniform_int(0, 5)));
    const auto before = fast_ws.counters.fast_path;
    const auto fast = basic_dp(weights, capacity, fast_ws);
    ASSERT_EQ(fast_ws.counters.fast_path, before + 1) << "round " << round;
    const auto table = detail::basic_dp_table(weights, capacity, table_ws);
    ASSERT_EQ(fast, table) << "round " << round;
  }
}

TEST(FastPath, ReservationDpMatchesTablePathWhenEverythingFits) {
  util::Rng rng(404);
  DpWorkspace fast_ws, table_ws;
  table_ws.cache_enabled = false;
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    std::vector<int> weights, shadows;
    int demand = 0, shadow_demand = 0;
    for (int i = 0; i < n; ++i) {
      const int w = static_cast<int>(rng.uniform_int(0, 8));
      weights.push_back(w);
      const int s = rng.bernoulli(0.5) ? w : 0;
      shadows.push_back(s);
      demand += w;
      shadow_demand += s;
    }
    const int capacity =
        std::max(1, demand + static_cast<int>(rng.uniform_int(0, 5)));
    const int shadow_cap =
        shadow_demand + static_cast<int>(rng.uniform_int(0, 5));
    const auto before = fast_ws.counters.fast_path;
    const auto fast =
        reservation_dp(weights, shadows, capacity, shadow_cap, fast_ws);
    ASSERT_EQ(fast_ws.counters.fast_path, before + 1) << "round " << round;
    const auto table = detail::reservation_dp_table(weights, shadows,
                                                    capacity, shadow_cap,
                                                    table_ws);
    ASSERT_EQ(fast, table) << "round " << round;
  }
}

TEST(DpCache, RepeatedInstanceHitsAndSelectsIdentically) {
  DpWorkspace ws;
  // Over capacity so neither call resolves on the fast path.
  const std::vector<int> weights{7, 4, 6};
  const auto first = basic_dp(weights, 10, ws);
  EXPECT_EQ(ws.counters.table_runs, 1u);
  EXPECT_EQ(ws.counters.cache_hits, 0u);
  const auto second = basic_dp(weights, 10, ws);
  EXPECT_EQ(second, first);
  EXPECT_EQ(ws.counters.table_runs, 1u);  // answered from the cache
  EXPECT_EQ(ws.counters.cache_hits, 1u);
  // A different capacity is a different instance: miss, new table fill.
  basic_dp(weights, 9, ws);
  EXPECT_EQ(ws.counters.table_runs, 2u);
  EXPECT_EQ(ws.counters.cache_hits, 1u);
}

TEST(DpCache, BasicAndReservationInstancesNeverAlias) {
  DpWorkspace ws;
  // Same weights and capacity, both past the fast path, but reservation_dp
  // with a binding shadow must not be answered from the basic_dp cache
  // entry (or vice versa).
  const std::vector<int> weights{7, 4, 6};
  const auto basic = basic_dp(weights, 10, ws);
  EXPECT_EQ(basic, (std::vector<int>{1, 2}));
  const std::vector<int> shadows{7, 4, 6};
  const auto reservation = reservation_dp(weights, shadows, 10, 5, ws);
  EXPECT_EQ(reservation, (std::vector<int>{1}));
  // And re-posing the basic instance afterwards still answers correctly.
  EXPECT_EQ(basic_dp(weights, 10, ws), basic);
}

TEST(DpCache, DisabledWorkspaceSelectsIdentically) {
  util::Rng rng(505);
  DpWorkspace cached, uncached;
  uncached.cache_enabled = false;
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    const int capacity = static_cast<int>(rng.uniform_int(1, 20));
    const int shadow_cap = static_cast<int>(rng.uniform_int(0, 12));
    std::vector<int> weights, shadows;
    for (int i = 0; i < n; ++i) {
      const int w = static_cast<int>(rng.uniform_int(1, 10));
      weights.push_back(w);
      shadows.push_back(rng.bernoulli(0.5) ? w : 0);
    }
    // Re-pose instances frequently so the cached workspace actually hits.
    for (int repeat = 0; repeat < 2; ++repeat) {
      ASSERT_EQ(basic_dp(weights, capacity, cached),
                basic_dp(weights, capacity, uncached))
          << "round " << round;
      ASSERT_EQ(reservation_dp(weights, shadows, capacity, shadow_cap, cached),
                reservation_dp(weights, shadows, capacity, shadow_cap,
                               uncached))
          << "round " << round;
    }
  }
  EXPECT_GT(cached.counters.cache_hits, 0u);
  EXPECT_EQ(uncached.counters.cache_hits, 0u);
}

TEST(DpCache, EvictionKeepsAnswersCorrect) {
  // More distinct instances than kCacheSlots: the round-robin eviction must
  // only ever cost extra table fills, never wrong selections.
  DpWorkspace ws;
  for (int extra = 0;
       extra < static_cast<int>(DpWorkspace::kCacheSlots) + 4; ++extra) {
    const std::vector<int> weights{7, 4, 6, 2 + extra};
    const auto chosen = basic_dp(weights, 10, ws);
    DpWorkspace fresh;
    fresh.cache_enabled = false;
    ASSERT_EQ(chosen, basic_dp(weights, 10, fresh)) << "extra " << extra;
  }
}

TEST(DpCounters, EveryCallIsCounted) {
  DpWorkspace ws;
  const std::vector<int> weights{2, 3};
  basic_dp(weights, 10, ws);              // fast path
  basic_dp(weights, 4, ws);               // table
  basic_dp(weights, 4, ws);               // cache hit
  const std::vector<int> shadows{0, 0};
  reservation_dp(weights, shadows, 10, 0, ws);  // fast path
  EXPECT_EQ(ws.counters.calls, 4u);
  EXPECT_EQ(ws.counters.fast_path, 2u);
  EXPECT_EQ(ws.counters.table_runs, 1u);
  EXPECT_EQ(ws.counters.cache_hits, 1u);
  EXPECT_GT(ws.counters.table_cells, 0u);
}

TEST(ReservationDp, WorkspaceReuseIsClean) {
  DpWorkspace ws;
  const std::vector<int> big{9, 9, 9};
  const std::vector<int> zeros{0, 0, 0};
  reservation_dp(big, zeros, 27, 10, ws);
  // A smaller follow-up problem must not see stale state.
  const std::vector<int> weights{2, 3};
  const std::vector<int> shadows{0, 0};
  const auto chosen = reservation_dp(weights, shadows, 5, 1, ws);
  EXPECT_EQ(chosen, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace es::core
