// Speculative cycle pipelining (engine + policy + DpSpeculator), end to
// end.  The contract under test is the one in sched/scheduler.hpp: a
// speculation, hit or missed, may never change a scheduling decision — it
// only moves where a DP table was computed.  So a run with speculation on
// (and a pool to run it) must reproduce the speculation-off run byte for
// byte in every deterministic output, while actually launching
// speculations (spec_launched > 0) on a backlogged workload.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/dp_speculator.hpp"
#include "exp/experiment.hpp"
#include "testing/helpers.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace es::core {
namespace {

::testing::AssertionResult same_bits(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0)
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " (bitwise mismatch)";
}

class SpeculationTest : public ::testing::Test {
 protected:
  // Speculation needs a pool; always restore the serial default so other
  // suites are unaffected.
  void TearDown() override { util::set_global_parallelism(1); }

  /// A backlogged batch workload: load 1.0 keeps a queue, p_small 0.5
  /// keeps the DP branch (head fits, queue does not) hot.
  static workload::Workload backlogged(std::size_t num_jobs = 300) {
    workload::GeneratorConfig config;
    config.num_jobs = num_jobs;
    config.seed = 42;
    config.p_small = 0.5;
    config.target_load = 1.0;
    return workload::generate(config);
  }
};

TEST_F(SpeculationTest, LaunchesAndSchedulesIdentically) {
  const workload::Workload workload = backlogged();

  AlgorithmOptions off;
  off.engine.speculative_dp = false;
  util::set_global_parallelism(1);
  const sched::SimulationResult baseline =
      exp::run_workload(workload, "Delayed-LOS", off);

  AlgorithmOptions on;
  on.engine.speculative_dp = true;
  util::set_global_parallelism(2);
  const sched::SimulationResult spec =
      exp::run_workload(workload, "Delayed-LOS", on);

  // Speculation genuinely engaged...
  EXPECT_GT(spec.perf.dp.spec_launched, 0u);
  // ...and every launch was either folded in or drained, never lost.
  EXPECT_LE(spec.perf.dp.spec_hits + spec.perf.dp.spec_discarded,
            spec.perf.dp.spec_launched);

  // Deterministic outputs are byte-identical.
  EXPECT_TRUE(same_bits(baseline.utilization, spec.utilization));
  EXPECT_TRUE(same_bits(baseline.mean_wait, spec.mean_wait));
  EXPECT_TRUE(same_bits(baseline.slowdown, spec.slowdown));
  EXPECT_TRUE(same_bits(baseline.makespan, spec.makespan));
  EXPECT_EQ(baseline.cycles, spec.cycles);
  EXPECT_EQ(baseline.events, spec.events);
  EXPECT_EQ(baseline.perf.events.scheduled, spec.perf.events.scheduled);
  EXPECT_EQ(baseline.perf.events.fired, spec.perf.events.fired);
  ASSERT_EQ(baseline.jobs.size(), spec.jobs.size());
  for (std::size_t i = 0; i < baseline.jobs.size(); ++i) {
    EXPECT_TRUE(same_bits(baseline.jobs[i].started, spec.jobs[i].started))
        << "job " << i;
    EXPECT_TRUE(same_bits(baseline.jobs[i].finished, spec.jobs[i].finished))
        << "job " << i;
    EXPECT_EQ(baseline.jobs[i].procs, spec.jobs[i].procs) << "job " << i;
  }

  // DP work accounting: calls and the fast path are decision-driven and
  // therefore identical; a speculation hit converts a table run into a
  // cache hit, so only the split may move, never the sum.
  EXPECT_EQ(baseline.perf.dp.calls, spec.perf.dp.calls);
  EXPECT_EQ(baseline.perf.dp.fast_path, spec.perf.dp.fast_path);
  EXPECT_EQ(baseline.perf.dp.cache_hits + baseline.perf.dp.table_runs,
            spec.perf.dp.cache_hits + spec.perf.dp.table_runs);
  EXPECT_EQ(spec.perf.dp.calls,
            spec.perf.dp.fast_path + spec.perf.dp.cache_hits +
                spec.perf.dp.table_runs);
}

TEST_F(SpeculationTest, SerialModeNeverLaunches) {
  // With global parallelism 1 the engine gate stays closed even with the
  // config flag on (its default).
  util::set_global_parallelism(1);
  const sched::SimulationResult result =
      exp::run_workload(backlogged(120), "Delayed-LOS", {});
  EXPECT_EQ(result.perf.dp.spec_launched, 0u);
  EXPECT_EQ(result.perf.dp.spec_hits, 0u);
  EXPECT_EQ(result.perf.dp.spec_discarded, 0u);
}

TEST_F(SpeculationTest, HybridLosSpeculatesOnBatchOnlyWorkloads) {
  // Algorithm 2 degenerates to Delayed-LOS without dedicated jobs, and so
  // does its speculation path.
  util::set_global_parallelism(2);
  AlgorithmOptions on;
  const sched::SimulationResult spec =
      exp::run_workload(backlogged(), "Hybrid-LOS", on);
  EXPECT_GT(spec.perf.dp.spec_launched, 0u);

  util::set_global_parallelism(1);
  AlgorithmOptions off;
  off.engine.speculative_dp = false;
  const sched::SimulationResult baseline =
      exp::run_workload(backlogged(), "Hybrid-LOS", off);
  EXPECT_TRUE(same_bits(baseline.mean_wait, spec.mean_wait));
  EXPECT_EQ(baseline.cycles, spec.cycles);
}

TEST_F(SpeculationTest, SpeculatorDrainDiscardsUnsettledResult) {
  util::set_global_parallelism(2);
  DpWorkspace fill_check;
  const std::vector<int> weights{20, 14, 16, 13};
  DpSpeculator speculator;
  ASSERT_TRUE(speculator.launch(weights, 40));
  EXPECT_FALSE(speculator.idle());
  DpWorkspace ws;
  speculator.drain(ws);
  EXPECT_TRUE(speculator.idle());
  EXPECT_EQ(ws.counters.spec_discarded, 1u);
  // After a drain the speculator is reusable; settle warms the cache.
  ASSERT_TRUE(speculator.launch(weights, 40));
  while (!speculator.idle()) {
    speculator.settle(ws);
  }
  const auto expected = detail::basic_dp_table(weights, 40, fill_check);
  EXPECT_EQ(basic_dp(weights, 40, ws), expected);
  EXPECT_EQ(ws.counters.spec_hits, 1u);
}

TEST_F(SpeculationTest, LaunchRefusedWithoutPool) {
  util::set_global_parallelism(1);
  DpSpeculator speculator;
  EXPECT_FALSE(speculator.launch({3, 4, 5}, 6));
  EXPECT_TRUE(speculator.idle());
}

}  // namespace
}  // namespace es::core
