// The real thing: a child simrun process writing a snapshot ring is killed
// with SIGKILL mid-run, and a fresh simrun resumes from the ring — the
// resumed per-job CSV must be byte-identical to an uninterrupted run's.
// This is the end-to-end proof that the durability path (fsync + atomic
// rename) leaves a recoverable ring behind an actual process death, not
// just an emulated one.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t ring_size(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;
  std::size_t count = 0;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".essnap") ++count;
  }
  return count;
}

}  // namespace

TEST(SigkillRestart, ResumedPerJobCsvMatchesUninterruptedRun) {
  const std::string simrun = ES_SIMRUN_BIN;
  const std::string tmp = ::testing::TempDir();
  const std::string ring_dir = tmp + "sigkill_ring";
  const std::string ref_csv = tmp + "sigkill_ref.csv";
  const std::string resumed_csv = tmp + "sigkill_resumed.csv";
  std::error_code ec;
  std::filesystem::remove_all(ring_dir, ec);
  std::remove(ref_csv.c_str());
  std::remove(resumed_csv.c_str());

  // The identical workload/algorithm flags for all three runs; the
  // snapshot cadence and the ring directory are restore-fingerprint
  // neutral by design.
  const std::string common =
      " --synthetic --num-jobs 2000 --load 0.95 --p-extend 0.2 "
      "--p-reduce 0.2 --algorithm Hybrid-LOS-E --seed 5";

  // Reference: uninterrupted.
  ASSERT_EQ(std::system((simrun + common + " --per-job " + ref_csv +
                         " > /dev/null")
                            .c_str()),
            0);
  const std::string reference = read_all(ref_csv);
  ASSERT_FALSE(reference.empty());

  // Child: same run, snapshotting every cycle into the ring.  exec in the
  // shell so the SIGKILL hits simrun itself, not an intermediate sh.
  const std::string child_cmd = "exec " + simrun + common +
                                " --snapshot-every 1 --snapshot-dir " +
                                ring_dir + " >/dev/null 2>&1";
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    execl("/bin/sh", "sh", "-c", child_cmd.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  // Wait until the ring holds at least one committed generation, then
  // SIGKILL the child mid-run.  The per-snapshot fsyncs throttle the child
  // enough that the kill normally lands well before completion; if the
  // child beats us to the finish line the ring still holds its final
  // snapshots and the restore leg below stays meaningful.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (ring_size(ring_dir) < 1 &&
         std::chrono::steady_clock::now() < deadline &&
         waitpid(pid, nullptr, WNOHANG) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill(pid, SIGKILL);
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_GE(ring_size(ring_dir), 1u)
      << "child produced no snapshot before dying";

  // Fresh process: resume from the ring and write the per-job CSV.
  ASSERT_EQ(std::system((simrun + common + " --restore-from " + ring_dir +
                         " --per-job " + resumed_csv + " > /dev/null")
                            .c_str()),
            0);
  EXPECT_EQ(read_all(resumed_csv), reference);

  std::filesystem::remove_all(ring_dir, ec);
  std::remove(ref_csv.c_str());
  std::remove(resumed_csv.c_str());
}

TEST(SigkillRestart, RestoreFromEmptyRingFailsWithCorruptExitCode) {
  const std::string simrun = ES_SIMRUN_BIN;
  const std::string dir = ::testing::TempDir() + "sigkill_empty_ring";
  std::filesystem::create_directories(dir);
  const int status = std::system(
      (simrun + " --synthetic --num-jobs 10 --restore-from " + dir +
       " >/dev/null 2>&1")
          .c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 6);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}
