// Parameterized cross-algorithm sanity sweeps over (P_S, load): the
// relationships the paper's narrative depends on must hold across the
// whole operating region, not only at the benched points.
#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "workload/generator.hpp"

namespace es {
namespace {

using es::testing::run_scenario;

struct GridPoint {
  double p_small;
  double load;
};

std::ostream& operator<<(std::ostream& out, const GridPoint& point) {
  return out << "ps" << point.p_small << "_load" << point.load;
}

class OperatingGrid : public ::testing::TestWithParam<GridPoint> {
 protected:
  workload::Workload make(std::uint64_t seed) const {
    workload::GeneratorConfig config;
    config.num_jobs = 300;
    config.seed = seed;
    config.p_small = GetParam().p_small;
    config.target_load = GetParam().load;
    return workload::generate(config);
  }

  static core::AlgorithmOptions options() {
    core::AlgorithmOptions algorithm_options;
    algorithm_options.lookahead = 250;
    algorithm_options.max_skip_count = 7;
    return algorithm_options;
  }
};

TEST_P(OperatingGrid, BackfillersBeatFcfs) {
  const auto workload = make(41);
  const double fcfs = run_scenario(workload, "FCFS").result.mean_wait;
  for (const char* algorithm : {"EASY", "CONS", "LOS", "Delayed-LOS"}) {
    const double wait =
        run_scenario(workload, algorithm, options()).result.mean_wait;
    EXPECT_LE(wait, fcfs * 1.02) << algorithm;
  }
}

TEST_P(OperatingGrid, DelayedLosAtLeastMatchesLos) {
  // The paper's headline, as a weak per-seed bound (3 seeds averaged).
  double los_sum = 0, delayed_sum = 0;
  for (std::uint64_t seed : {41u, 42u, 43u}) {
    const auto workload = make(seed);
    los_sum += run_scenario(workload, "LOS", options()).result.mean_wait;
    delayed_sum +=
        run_scenario(workload, "Delayed-LOS", options()).result.mean_wait;
  }
  EXPECT_LE(delayed_sum, los_sum * 1.03);
}

TEST_P(OperatingGrid, UtilizationConsistentWithCompletedWork) {
  // util * M * makespan must equal the executed processor-seconds exactly.
  const auto workload = make(44);
  const auto scenario = run_scenario(workload, "EASY");
  double proc_seconds = 0;
  for (const auto& [id, job] : scenario.by_id)
    proc_seconds += job.procs * (job.finished - job.started);
  EXPECT_NEAR(
      scenario.result.utilization * 320 * scenario.result.makespan,
      proc_seconds, 1e-6 * proc_seconds);
}

TEST_P(OperatingGrid, SlowdownDefinitionsAgree) {
  // The paper's ratio-of-means slowdown equals 1 + wait/run exactly.
  const auto workload = make(45);
  const auto scenario = run_scenario(workload, "LOS", options());
  EXPECT_NEAR(scenario.result.slowdown,
              1.0 + scenario.result.mean_wait / scenario.result.mean_run,
              1e-9);
  // And the per-job mean slowdown is bounded below by bounded slowdown.
  EXPECT_GE(scenario.result.mean_per_job_slowdown + 1e-9,
            scenario.result.mean_bounded_slowdown);
}

TEST_P(OperatingGrid, HigherLoadNeverReducesUtilization) {
  // Within one seed, pushing the same trace to a higher offered load can
  // only raise mean utilization for a work-conserving policy.
  workload::GeneratorConfig config;
  config.num_jobs = 300;
  config.seed = 46;
  config.p_small = GetParam().p_small;
  config.target_load = GetParam().load;
  const auto base = workload::generate(config);
  config.target_load = GetParam().load + 0.2;
  const auto pushed = workload::generate(config);
  const double u1 = run_scenario(base, "EASY").result.utilization;
  const double u2 = run_scenario(pushed, "EASY").result.utilization;
  EXPECT_GE(u2, u1 * 0.97);
}

INSTANTIATE_TEST_SUITE_P(
    PsLoadGrid, OperatingGrid,
    ::testing::Values(GridPoint{0.2, 0.6}, GridPoint{0.2, 0.9},
                      GridPoint{0.5, 0.6}, GridPoint{0.5, 0.9},
                      GridPoint{0.8, 0.6}, GridPoint{0.8, 0.9}),
    [](const ::testing::TestParamInfo<GridPoint>& param_info) {
      char name[48];
      std::snprintf(name, sizeof name, "ps%02.0f_load%02.0f",
                    param_info.param.p_small * 10, param_info.param.load * 10);
      return std::string(name);
    });

}  // namespace
}  // namespace es
