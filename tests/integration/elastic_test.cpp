// End-to-end runtime-elasticity behaviour: ECCs flowing through the engine
// into running/queued jobs under the -E algorithms.
#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "workload/generator.hpp"

namespace es {
namespace {

using es::testing::batch_job;
using es::testing::dedicated_job;
using es::testing::make_workload;
using es::testing::run_scenario;

workload::Ecc make_ecc(workload::JobId id, double issue,
                       workload::EccType type, double amount) {
  workload::Ecc ecc;
  ecc.job_id = id;
  ecc.issue = issue;
  ecc.type = type;
  ecc.amount = amount;
  return ecc;
}

TEST(Elastic, ExtensionDelaysDependentJob) {
  // Job 1 holds the machine 100 s; an ET at t=50 adds 80 s, so job 2 starts
  // at 180 instead of 100.
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 10, 100), batch_job(2, 1, 10, 50)},
      {make_ecc(1, 50, workload::EccType::kExtendTime, 80)});
  const auto scenario = run_scenario(workload, "EASY-E");
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 180);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 180);
}

TEST(Elastic, ReductionAdvancesDependentJob) {
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 10, 100), batch_job(2, 1, 10, 50)},
      {make_ecc(1, 20, workload::EccType::kReduceTime, 50)});
  const auto scenario = run_scenario(workload, "EASY-E");
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 50);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 50);
}

TEST(Elastic, ReductionBelowElapsedEndsJobImmediately) {
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 10, 100)},
      {make_ecc(1, 80, workload::EccType::kReduceTime, 70)});
  const auto scenario = run_scenario(workload, "EASY-E");
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 80);
}

TEST(Elastic, QueuedJobExtensionAffectsPlacement) {
  // Head blocked until t=100; backfill candidate (4 procs x 50) fits before
  // the reservation — but an ET at t=3 makes it 4 x 150 which would delay
  // the head, so EASY-E must not backfill it.
  const auto without_ecc = make_workload(
      10, 1,
      {batch_job(1, 0, 6, 100), batch_job(2, 1, 8, 100),
       batch_job(3, 2, 4, 50)});
  const auto with_ecc = make_workload(
      10, 1,
      {batch_job(1, 0, 6, 100), batch_job(2, 1, 8, 100),
       batch_job(3, 2, 4, 50)},
      {make_ecc(3, 1.5, workload::EccType::kExtendTime, 100)});
  const auto a = run_scenario(without_ecc, "EASY-E");
  const auto b = run_scenario(with_ecc, "EASY-E");
  EXPECT_DOUBLE_EQ(a.start_of(3), 2);
  EXPECT_GE(b.start_of(3), 100);
}

TEST(Elastic, QueuedResizeChangesAllocation) {
  const auto workload = make_workload(
      320, 32, {batch_job(1, 10, 64, 100)},
      {make_ecc(1, 5, workload::EccType::kExtendProcs, 64)});
  const auto scenario = run_scenario(workload, "EASY-E");
  EXPECT_EQ(scenario.job(1).procs, 128);
}

TEST(Elastic, ExtensionOnDedicatedJob) {
  // Dedicated job runs [100, 150); ET at t=120 adds 50 -> ends at 200.
  const auto workload = make_workload(
      10, 1, {dedicated_job(1, 0, 8, 50, 100)},
      {make_ecc(1, 120, workload::EccType::kExtendTime, 50)});
  const auto scenario = run_scenario(workload, "Hybrid-LOS-E");
  EXPECT_DOUBLE_EQ(scenario.start_of(1), 100);
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 200);
}

TEST(Elastic, ExtendedDedicatedJobDelaysNextReservation) {
  // First dedicated [100,150) extended by 100 -> holds the full machine
  // until 250, so the second dedicated (start 200) is delayed.
  const auto workload = make_workload(
      10, 1,
      {dedicated_job(1, 0, 10, 50, 100), dedicated_job(2, 0, 10, 50, 200)},
      {make_ecc(1, 120, workload::EccType::kExtendTime, 100)});
  const auto scenario = run_scenario(workload, "Hybrid-LOS-E");
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 250);
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 250);
  EXPECT_DOUBLE_EQ(scenario.job(2).wait, 50);
}

TEST(Elastic, EccOnFinishedJobIsIgnored) {
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 10, 50)},
      {make_ecc(1, 80, workload::EccType::kExtendTime, 100)});
  const auto scenario = run_scenario(workload, "EASY-E");
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 50);
  EXPECT_EQ(scenario.result.ecc.rejected, 1u);
}

TEST(Elastic, MultipleEccsApplyFcfsOrder) {
  // +100 at t=10, then -80 at t=20: net end = 100 + 100 - 80 = 120.
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 10, 100)},
      {make_ecc(1, 10, workload::EccType::kExtendTime, 100),
       make_ecc(1, 20, workload::EccType::kReduceTime, 80)});
  const auto scenario = run_scenario(workload, "LOS-E");
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 120);
  EXPECT_EQ(scenario.result.ecc.processed, 2u);
}

TEST(Elastic, PropertyElasticWorkloadsKeepInvariants) {
  // Heavier ECC traffic than the paper's defaults across all -E algorithms.
  workload::GeneratorConfig config;
  config.num_jobs = 250;
  config.seed = 31;
  config.p_dedicated = 0.3;
  config.p_extend = 0.4;
  config.p_reduce = 0.3;
  config.max_eccs_per_job = 3;
  config.target_load = 0.95;
  const auto workload = workload::generate(config);
  for (const char* algorithm : {"EASY-DE", "LOS-DE", "Hybrid-LOS-E"}) {
    const auto scenario = run_scenario(workload, algorithm);
    EXPECT_EQ(scenario.result.completed + scenario.result.killed, 250u)
        << algorithm;
    EXPECT_LE(es::testing::peak_allocation(scenario.result), 320)
        << algorithm;
    EXPECT_GT(scenario.result.ecc.processed, 100u) << algorithm;
  }
}

TEST(Elastic, EccsChangeOutcomesRelativeToNonElastic) {
  workload::GeneratorConfig config;
  config.num_jobs = 250;
  config.seed = 33;
  config.p_extend = 0.2;
  config.p_reduce = 0.1;
  config.target_load = 0.9;
  const auto workload = workload::generate(config);
  const auto elastic = run_scenario(workload, "Delayed-LOS-E");
  const auto rigid = run_scenario(workload, "Delayed-LOS");
  EXPECT_NE(elastic.result.mean_wait, rigid.result.mean_wait);
}

}  // namespace
}  // namespace es
