// Golden regression tests: a fixed 12-job scenario with hand-verifiable
// structure, asserting the exact start times every algorithm produces.
// These pin the precise semantics of each policy so that refactors cannot
// silently change scheduling behaviour.  If an intentional algorithm change
// breaks one of these, re-derive the expected schedule by hand first.
#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace es {
namespace {

using es::testing::batch_job;
using es::testing::make_workload;
using es::testing::run_scenario;

/// 10-processor machine.  A blocker pins the machine until t=10; the queue
/// then holds a mix engineered to separate the policies:
///   id 2: 7 procs x 100  (large head)
///   id 3: 4 procs x 100
///   id 4: 6 procs x 100
///   id 5: 3 procs x 40   (short filler)
///   id 6: 9 procs x 50   (very large)
///   id 7: 2 procs x 400  (small but long)
workload::Workload golden_workload() {
  return make_workload(
      10, 1,
      {batch_job(1, 0, 10, 10), batch_job(2, 1, 7, 100),
       batch_job(3, 2, 4, 100), batch_job(4, 3, 6, 100),
       batch_job(5, 4, 3, 40), batch_job(6, 5, 9, 50),
       batch_job(7, 6, 2, 400)});
}

TEST(Golden, Fcfs) {
  const auto s = run_scenario(golden_workload(), "FCFS");
  EXPECT_DOUBLE_EQ(s.start_of(2), 10);
  EXPECT_DOUBLE_EQ(s.start_of(3), 110);   // 7 blocks everything
  EXPECT_DOUBLE_EQ(s.start_of(4), 110);   // 4+6 = 10 together
  EXPECT_DOUBLE_EQ(s.start_of(5), 210);
  EXPECT_DOUBLE_EQ(s.start_of(6), 250);   // after 5 (3 procs) ends
  EXPECT_DOUBLE_EQ(s.start_of(7), 300);
}

TEST(Golden, Easy) {
  const auto s = run_scenario(golden_workload(), "EASY");
  // t=10: head 2 (7p) starts (free 3); 3 (4p) blocked -> shadow at 110,
  // extra = 3+7-4 = 6.  Backfill scan: 4 (6p) no; 5 (3p x40) ends 50 < 110
  // yes (free -> 0); 6, 7 no free capacity left.
  EXPECT_DOUBLE_EQ(s.start_of(2), 10);
  EXPECT_DOUBLE_EQ(s.start_of(5), 10);
  // t=50: 5 ends (free 3): head still blocked, same shadow; 7 (2p x400)
  // crosses 110 but fits the extra 6 -> backfills.
  EXPECT_DOUBLE_EQ(s.start_of(7), 50);
  // t=110: 2 ends (free 8): 3 starts (free 4); 4 (6p) blocked until 3 ends.
  EXPECT_DOUBLE_EQ(s.start_of(3), 110);
  EXPECT_DOUBLE_EQ(s.start_of(4), 210);
  // 6 (9p) needs job 7's processors back: 7 runs [50, 450).
  EXPECT_DOUBLE_EQ(s.start_of(6), 450);
}

TEST(Golden, Los) {
  const auto s = run_scenario(golden_workload(), "LOS");
  // t=10: head 2 (7p) starts right away (LOS head rule); next head 3 (4p)
  // does not fit (free 3).  Reservation_DP with shadow at 110 (frec = 6):
  // eligible <= 3 procs: 5 (3p, ends before 110, frenum 0) and 7 (2p,
  // frenum 2).  Capacity 3 admits only one: the DP takes 5 (util 3 > 2).
  EXPECT_DOUBLE_EQ(s.start_of(2), 10);
  EXPECT_DOUBLE_EQ(s.start_of(5), 10);
  // t=50: 5 ends, free 3; head 3 (4p) still blocked; eligible 7 (2p),
  // frenum 2 <= frec 6 -> starts.
  EXPECT_DOUBLE_EQ(s.start_of(7), 50);
  // t=110: 2 ends, free 8: head 3 (4p) starts right away; head 4 (6p)
  // blocked (free 4) until 3 ends at 210; 6 (9p) waits for 7 (ends 450).
  EXPECT_DOUBLE_EQ(s.start_of(3), 110);
  EXPECT_DOUBLE_EQ(s.start_of(4), 210);
  EXPECT_DOUBLE_EQ(s.start_of(6), 450);
}

TEST(Golden, DelayedLos) {
  core::AlgorithmOptions options;
  options.max_skip_count = 7;
  const auto s = run_scenario(golden_workload(), "Delayed-LOS", options);
  // t=10: Basic_DP over {7,4,6,3,9,2} cap 10.  Two sets reach util 10 with
  // equal tie-break score ({2,5} = {7p,3p} and {3,4} = {4p,6p}); the DP's
  // deterministic resolution picks {3,4}, skipping the head (scount -> 1).
  EXPECT_DOUBLE_EQ(s.start_of(3), 10);
  EXPECT_DOUBLE_EQ(s.start_of(4), 10);
  // t=110: 3 and 4 finish.  After the first release (free 4) the head (7p)
  // is blocked: Reservation_DP (shadow = now, frec 3) starts 5 (3p).
  // After the second release (free 7) Basic_DP picks the head itself.
  EXPECT_DOUBLE_EQ(s.start_of(5), 110);
  EXPECT_DOUBLE_EQ(s.start_of(2), 110);
  // t=210: 2 ends (free 10): Basic_DP over {9,2}: {9} wins -> 6 starts;
  // 7 follows when 6 releases at 260.
  EXPECT_DOUBLE_EQ(s.start_of(6), 210);
  EXPECT_DOUBLE_EQ(s.start_of(7), 260);
}

TEST(Golden, Conservative) {
  const auto s = run_scenario(golden_workload(), "CONS");
  // Profile-based reservations: 2 @ 10 (7p); 3 @ 110; 4 @ 110 (4+6 = 10);
  // 5: earliest hole with 3 procs for 40 s -> beside 2 at t=10 (3 free).
  // 6 (9p x50): after 3 and 4 end at 210, and 5's... 5 ends 50 -> at 210
  // free is 10 -> reserve 210; 7 (2p x400): fits beside 2+5? 7+3+2 > 10.
  // After 5 ends at 50: free 3 -> 7 fits at 50 for [50,450)?  That window
  // would hold 2 procs through 110-210 where 3+4 use 10... 4+6+2 > 10, so
  // no; earliest is... check monotone reservations: 7 reserved after its
  // predecessors: profile after booking 2,3,4,5,6: free at [50,110)=3,
  // [110,210)=0, [210,260)=1, [260,...)=10 -> 7 starts 260.
  EXPECT_DOUBLE_EQ(s.start_of(2), 10);
  EXPECT_DOUBLE_EQ(s.start_of(5), 10);
  EXPECT_DOUBLE_EQ(s.start_of(3), 110);
  EXPECT_DOUBLE_EQ(s.start_of(4), 110);
  EXPECT_DOUBLE_EQ(s.start_of(6), 210);
  EXPECT_DOUBLE_EQ(s.start_of(7), 260);
}

TEST(Golden, MeanWaitsRankAsExpected) {
  // The headline ordering on this crafted queue.
  const auto fcfs = run_scenario(golden_workload(), "FCFS");
  const auto easy = run_scenario(golden_workload(), "EASY");
  const auto delayed = run_scenario(golden_workload(), "Delayed-LOS");
  EXPECT_LT(easy.result.mean_wait, fcfs.result.mean_wait);
  EXPECT_LE(delayed.result.mean_wait, fcfs.result.mean_wait);
}

}  // namespace
}  // namespace es
