// Crash-consistent snapshot/restore end to end: a run killed at an event
// boundary and resumed from the engine's own snapshot must reproduce the
// uninterrupted run bit for bit — for every factory algorithm, and
// exhaustively across *every* kill point on small scenarios built around
// the nastiest interactions (a snapshot taken while nodes are down, a
// preempted job holding a banked checkpoint in the requeue, contradictory
// same-instant ECC pairs, a reservation-saturated machine).  Plus the
// rejection contract: wrong-run snapshots, tampered images, and a trace
// ledger restored into an engine that cannot hold it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/factory.hpp"
#include "exp/experiment.hpp"
#include "sched/engine.hpp"
#include "snap/snapshot.hpp"
#include "testing/helpers.hpp"
#include "workload/generator.hpp"

namespace es {
namespace {

using es::testing::batch_job;
using es::testing::dedicated_job;
using es::testing::make_workload;

/// Runs the simulation with snapshot-every-cycle capture and an event
/// budget of `kill_events`, returning the last snapshot image taken before
/// the watchdog killed the run (empty when the kill landed before the
/// first snapshot).
std::string snapshot_before_kill(const workload::Workload& workload,
                                 const std::string& algorithm,
                                 const core::AlgorithmOptions& options,
                                 std::uint64_t kill_events) {
  core::AlgorithmOptions killed = options;
  killed.engine.snapshot.every_cycles = 1;
  killed.engine.watchdog.max_events = kill_events;
  std::string image;
  (void)exp::run_workload_prepared(
      workload, algorithm, killed, [&image](sched::Engine& engine) {
        engine.set_snapshot_sink(
            [&image](const std::string& bytes) { image = bytes; });
      });
  return image;
}

/// Field-by-field equality of every deterministic result quantity; doubles
/// are compared exactly because a resumed run must replay the identical
/// floating-point operation sequence.
void expect_identical(const sched::SimulationResult& expected,
                      const sched::SimulationResult& actual,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(expected.completed, actual.completed);
  EXPECT_EQ(expected.killed, actual.killed);
  EXPECT_EQ(expected.abandoned, actual.abandoned);
  EXPECT_EQ(expected.unfinished, actual.unfinished);
  EXPECT_EQ(expected.cycles, actual.cycles);
  EXPECT_EQ(expected.events, actual.events);
  EXPECT_EQ(expected.utilization, actual.utilization);
  EXPECT_EQ(expected.mean_wait, actual.mean_wait);
  EXPECT_EQ(expected.slowdown, actual.slowdown);
  EXPECT_EQ(expected.makespan, actual.makespan);
  EXPECT_EQ(expected.ecc.processed, actual.ecc.processed);
  EXPECT_EQ(expected.ecc.conflicts, actual.ecc.conflicts);
  EXPECT_EQ(expected.failure.outages, actual.failure.outages);
  EXPECT_EQ(expected.failure.interruptions, actual.failure.interruptions);
  EXPECT_EQ(expected.failure.requeues, actual.failure.requeues);
  EXPECT_EQ(expected.failure.checkpoints, actual.failure.checkpoints);
  EXPECT_EQ(expected.failure.saved_proc_seconds,
            actual.failure.saved_proc_seconds);
  EXPECT_EQ(expected.failure.wasted_proc_seconds,
            actual.failure.wasted_proc_seconds);
  ASSERT_EQ(expected.jobs.size(), actual.jobs.size());
  for (std::size_t i = 0; i < expected.jobs.size(); ++i) {
    const sched::JobOutcome& a = expected.jobs[i];
    const sched::JobOutcome& b = actual.jobs[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.killed, b.killed);
    EXPECT_EQ(a.abandoned, b.abandoned);
    EXPECT_EQ(a.interruptions, b.interruptions);
    EXPECT_EQ(a.procs, b.procs);
    EXPECT_EQ(a.started, b.started) << "job " << a.id;
    EXPECT_EQ(a.finished, b.finished) << "job " << a.id;
    EXPECT_EQ(a.wait, b.wait);
    EXPECT_EQ(a.run, b.run);
  }
}

/// The exhaustive harness: kills the run at every event boundary from 1 to
/// the uninterrupted event count, resumes each from its last snapshot, and
/// requires bit-identical results.  Small workloads keep this affordable
/// while covering every possible restore instant — including the awkward
/// ones (nodes down, checkpoints banked, reservations pinned).
void expect_every_kill_point_resumes(const workload::Workload& workload,
                                     const std::string& algorithm,
                                     const core::AlgorithmOptions& options) {
  const sched::SimulationResult uninterrupted =
      exp::run_workload(workload, algorithm, options);
  ASSERT_EQ(uninterrupted.termination, sim::TerminationReason::kCompleted);
  for (std::uint64_t kill = 1; kill <= uninterrupted.events; ++kill) {
    const std::string image =
        snapshot_before_kill(workload, algorithm, options, kill);
    sched::SimulationResult resumed;
    if (image.empty()) {
      resumed = exp::run_workload(workload, algorithm, options);
    } else {
      snap::SnapshotReader reader(image);
      resumed = exp::resume_workload(workload, algorithm, options, reader);
    }
    expect_identical(uninterrupted, resumed,
                     "kill at " + std::to_string(kill) + " events");
  }
}

core::AlgorithmOptions scripted_failure_options(
    std::vector<fault::Outage> script,
    fault::RequeuePolicy policy = fault::RequeuePolicy::kRequeueHead) {
  core::AlgorithmOptions options;
  options.engine.failure.enabled = true;
  options.engine.failure.script = std::move(script);
  options.engine.requeue = policy;
  return options;
}

TEST(SnapshotRestore, EveryKillPointAcrossAPendingOutage) {
  // The outage window 50..80 guarantees snapshots taken while 64 procs are
  // offline (pending NodeUp) and snapshots taken with the NodeDown still
  // pending — both chains must rebuild from the single pending-outage slot.
  const auto workload = make_workload(
      320, 32,
      {batch_job(1, 0, 320, 100), batch_job(2, 10, 96, 200),
       batch_job(3, 20, 160, 150), batch_job(4, 120, 320, 80)});
  expect_every_kill_point_resumes(workload, "EASY",
                                  scripted_failure_options({{50, 80, 64}}));
}

TEST(SnapshotRestore, EveryKillPointWithBankedCheckpointInRequeue) {
  // Checkpoints every 20 s of work; the t=50 outage preempts job 1 with
  // 40 s banked, so kill points between the preemption and the restart
  // snapshot a requeued job whose remaining work differs from its spec —
  // exactly the state a naive restore would lose.
  const auto workload = make_workload(
      320, 32,
      {batch_job(1, 0, 320, 100), batch_job(2, 5, 64, 120),
       batch_job(3, 60, 128, 90)});
  core::AlgorithmOptions options = scripted_failure_options({{50, 80, 32}});
  options.engine.checkpoint.enabled = true;
  options.engine.checkpoint.interval = 20;
  options.engine.checkpoint.overhead = 5;
  expect_every_kill_point_resumes(workload, "EASY", options);
}

TEST(SnapshotRestore, EveryKillPointThroughAnEccStorm) {
  // Contradictory same-instant ECC pairs: the conflict shield's
  // first-wins-per-dimension state must survive a snapshot taken between
  // the two commands of a pair.
  std::vector<workload::Ecc> eccs;
  auto ecc = [](workload::JobId job, double issue, workload::EccType type,
                double amount) {
    workload::Ecc e;
    e.job_id = job;
    e.issue = issue;
    e.type = type;
    e.amount = amount;
    return e;
  };
  eccs.push_back(ecc(1, 30, workload::EccType::kExtendTime, 60));
  eccs.push_back(ecc(1, 30, workload::EccType::kReduceTime, 40));
  eccs.push_back(ecc(2, 45, workload::EccType::kExtendProcs, 32));
  eccs.push_back(ecc(2, 45, workload::EccType::kReduceProcs, 32));
  eccs.push_back(ecc(3, 10, workload::EccType::kExtendTime, 120));
  eccs.push_back(ecc(9, 40, workload::EccType::kExtendTime, 50));  // unknown
  const auto workload = make_workload(
      320, 32,
      {batch_job(1, 0, 160, 100), batch_job(2, 5, 96, 150),
       batch_job(3, 8, 64, 80), batch_job(4, 50, 320, 60)},
      eccs);
  expect_every_kill_point_resumes(workload, "Hybrid-LOS-E", {});
}

TEST(SnapshotRestore, EveryKillPointOnADedicatedSaturatedMachine) {
  // Back-to-back reservations pin the dedicated queue while batch work
  // drains around them; restore must preserve the dedicated ordering and
  // the due events.
  const auto workload = make_workload(
      320, 32,
      {dedicated_job(1, 0, 320, 50, 100), dedicated_job(2, 0, 320, 50, 150),
       dedicated_job(3, 10, 160, 40, 210), batch_job(4, 0, 96, 120),
       batch_job(5, 20, 64, 90), batch_job(6, 30, 320, 60)});
  expect_every_kill_point_resumes(workload, "Hybrid-LOS", {});
}

TEST(SnapshotRestore, EveryFactoryAlgorithmResumesIdentically) {
  // The full algorithm matrix at a generated-workload scale, one mid-run
  // kill each (the per-boundary sweeps above cover the kill-point axis).
  workload::GeneratorConfig config;
  config.machine_procs = 320;
  config.num_jobs = 60;
  config.seed = 99;
  config.p_extend = 0.2;
  config.p_reduce = 0.2;
  config.target_load = 0.9;
  const workload::Workload batch = workload::generate(config);
  config.p_dedicated = 0.35;
  config.seed = 101;
  const workload::Workload hetero = workload::generate(config);

  for (const std::string& name : core::algorithm_names()) {
    const bool dedicated =
        core::make_algorithm(name).policy->supports_dedicated();
    const workload::Workload& workload = dedicated ? hetero : batch;
    const core::AlgorithmOptions options;
    const sched::SimulationResult uninterrupted =
        exp::run_workload(workload, name, options);
    const std::string image = snapshot_before_kill(
        workload, name, options, uninterrupted.events / 2 + 1);
    ASSERT_FALSE(image.empty()) << name;
    snap::SnapshotReader reader(image);
    const sched::SimulationResult resumed =
        exp::resume_workload(workload, name, options, reader);
    expect_identical(uninterrupted, resumed, name);
  }
}

TEST(SnapshotRestore, AdaptivePolicyStateSurvivesRestore) {
  // The AdaptiveSelector carries cross-cycle semantic state; a restore
  // that dropped it would pick differently after resume.
  workload::GeneratorConfig config;
  config.machine_procs = 320;
  config.num_jobs = 80;
  config.seed = 7;
  config.target_load = 1.0;
  const workload::Workload workload = workload::generate(config);
  const core::AlgorithmOptions options;
  const sched::SimulationResult uninterrupted =
      exp::run_workload(workload, "Adaptive", options);
  for (const std::uint64_t kill :
       {uninterrupted.events / 4 + 1, uninterrupted.events / 2 + 1,
        (3 * uninterrupted.events) / 4 + 1}) {
    const std::string image =
        snapshot_before_kill(workload, "Adaptive", options, kill);
    ASSERT_FALSE(image.empty());
    snap::SnapshotReader reader(image);
    const sched::SimulationResult resumed =
        exp::resume_workload(workload, "Adaptive", options, reader);
    expect_identical(uninterrupted, resumed,
                     "kill at " + std::to_string(kill));
  }
}

TEST(SnapshotRestore, RejectsSnapshotOfADifferentWorkload) {
  const auto workload =
      make_workload(320, 32, {batch_job(1, 0, 320, 100),
                              batch_job(2, 10, 96, 200)});
  const std::string image = snapshot_before_kill(workload, "EASY", {}, 3);
  ASSERT_FALSE(image.empty());
  auto other = workload;
  other.jobs[1].dur = 250;  // same shape, different run
  other.normalize();
  snap::SnapshotReader reader(image);
  try {
    (void)exp::resume_workload(other, "EASY", {}, reader);
    FAIL() << "foreign snapshot accepted";
  } catch (const snap::SnapshotError& error) {
    EXPECT_EQ(error.kind(), snap::SnapshotErrorKind::kMismatch);
  }
}

TEST(SnapshotRestore, RejectsSnapshotOfADifferentPolicy) {
  const auto workload =
      make_workload(320, 32, {batch_job(1, 0, 320, 100),
                              batch_job(2, 10, 96, 200)});
  const std::string image = snapshot_before_kill(workload, "EASY", {}, 3);
  ASSERT_FALSE(image.empty());
  snap::SnapshotReader reader(image);
  try {
    (void)exp::resume_workload(workload, "FCFS", {}, reader);
    FAIL() << "cross-policy snapshot accepted";
  } catch (const snap::SnapshotError& error) {
    EXPECT_EQ(error.kind(), snap::SnapshotErrorKind::kMismatch);
  }
}

TEST(SnapshotRestore, RejectsTamperedImage) {
  const auto workload =
      make_workload(320, 32, {batch_job(1, 0, 320, 100),
                              batch_job(2, 10, 96, 200)});
  std::string image = snapshot_before_kill(workload, "EASY", {}, 3);
  ASSERT_GT(image.size(), 21u);
  image[20] = static_cast<char>(static_cast<unsigned char>(image[20]) ^ 0x10);
  try {
    snap::SnapshotReader reader(image);
    (void)exp::resume_workload(workload, "EASY", {}, reader);
    FAIL() << "tampered snapshot accepted";
  } catch (const snap::SnapshotError& error) {
    EXPECT_EQ(error.kind(), snap::SnapshotErrorKind::kCorrupt);
  }
}

TEST(SnapshotRestore, SavedTraceNeedsATracingEngine) {
  // A snapshot carrying a non-empty trace ledger cannot restore into an
  // engine that is not recording one — silently dropping audit rows would
  // make the resumed trace a lie.
  const auto workload =
      make_workload(320, 32, {batch_job(1, 0, 320, 100),
                              batch_job(2, 10, 96, 200)});
  core::AlgorithmOptions tracing;
  tracing.engine.record_trace = true;
  const sched::SimulationResult uninterrupted =
      exp::run_workload(workload, "EASY", tracing);
  const std::string image = snapshot_before_kill(
      workload, "EASY", tracing, uninterrupted.events / 2 + 1);
  ASSERT_FALSE(image.empty());
  {
    snap::SnapshotReader reader(image);
    try {
      (void)exp::resume_workload(workload, "EASY", {}, reader);
      FAIL() << "trace-bearing snapshot accepted by a non-tracing engine";
    } catch (const snap::SnapshotError& error) {
      EXPECT_EQ(error.kind(), snap::SnapshotErrorKind::kMismatch);
    }
  }
  // With tracing enabled the same snapshot resumes to the identical run.
  snap::SnapshotReader reader(image);
  const sched::SimulationResult resumed =
      exp::resume_workload(workload, "EASY", tracing, reader);
  expect_identical(uninterrupted, resumed, "traced resume");
}

}  // namespace
}  // namespace es
