// Resource-dimension elasticity (paper section VI, implemented as an
// extension): EP/RP on running jobs with work-conserving resize.
#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "workload/generator.hpp"

namespace es {
namespace {

using es::testing::batch_job;
using es::testing::make_workload;
using es::testing::run_scenario;

workload::Ecc proc_ecc(workload::JobId id, double issue, bool extend,
                       double amount) {
  workload::Ecc ecc;
  ecc.job_id = id;
  ecc.issue = issue;
  ecc.type = extend ? workload::EccType::kExtendProcs
                    : workload::EccType::kReduceProcs;
  ecc.amount = amount;
  return ecc;
}

core::AlgorithmOptions with_resize() {
  core::AlgorithmOptions options;
  options.engine.allow_running_resize = true;
  return options;
}

TEST(ResourceElasticity, RejectedWithoutTheFlag) {
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 4, 100)}, {proc_ecc(1, 50, true, 4)});
  const auto scenario = run_scenario(workload, "EASY-E");
  EXPECT_EQ(scenario.job(1).procs, 4);
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 100);
  EXPECT_EQ(scenario.result.ecc.rejected, 1u);
}

TEST(ResourceElasticity, GrowCompressesRemainingTime) {
  // 4 procs x 100 s; at t=50 grow to 8: remaining 50 s of 4-proc work
  // becomes 25 s -> ends at 75.
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 4, 100)}, {proc_ecc(1, 50, true, 4)});
  const auto scenario = run_scenario(workload, "EASY-E", with_resize());
  EXPECT_EQ(scenario.job(1).procs, 8);
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 75);
  EXPECT_EQ(scenario.result.ecc.running_resizes, 1u);
}

TEST(ResourceElasticity, ShrinkStretchesRemainingTime) {
  // 8 procs x 100 s; at t=50 shrink to 4: remaining 50 s doubles -> 150.
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 8, 100)}, {proc_ecc(1, 50, false, 4)});
  const auto scenario = run_scenario(workload, "EASY-E", with_resize());
  EXPECT_EQ(scenario.job(1).procs, 4);
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 150);
}

TEST(ResourceElasticity, WorkIsConserved) {
  // procs x time before = 8*100 = 800; after the shrink at t=50:
  // 8*50 + 4*100 = 800.
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 8, 100)}, {proc_ecc(1, 50, false, 4)});
  const auto scenario = run_scenario(workload, "EASY-E", with_resize());
  const double busy = 8 * 50 + 4 * (scenario.end_of(1) - 50);
  EXPECT_DOUBLE_EQ(busy, 800.0);
}

TEST(ResourceElasticity, GrowthRejectedWhenPoolFull) {
  // Two jobs fill the machine; growing one cannot fit.
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 6, 100), batch_job(2, 0, 4, 100)},
      {proc_ecc(1, 50, true, 2)});
  const auto scenario = run_scenario(workload, "EASY-E", with_resize());
  EXPECT_EQ(scenario.job(1).procs, 6);
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 100);
  EXPECT_EQ(scenario.result.ecc.rejected, 1u);
}

TEST(ResourceElasticity, ShrinkFreesCapacityForWaitingJob) {
  // Job 1 holds all 10 procs for 100 s; job 2 (4 procs) waits.  At t=50
  // job 1 shrinks to 6 -> job 2 starts immediately at 50.
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 10, 100), batch_job(2, 1, 4, 20)},
      {proc_ecc(1, 50, false, 4)});
  const auto scenario = run_scenario(workload, "EASY-E", with_resize());
  EXPECT_DOUBLE_EQ(scenario.start_of(2), 50);
}

TEST(ResourceElasticity, ResizeHonoursGranularity) {
  // Granularity 32: growing a 64-proc job by 10 procs requests 74, which
  // allocates 96 (3 node cards).
  const auto workload = make_workload(
      320, 32, {batch_job(1, 0, 64, 100)}, {proc_ecc(1, 50, true, 10)});
  const auto scenario = run_scenario(workload, "EASY-E", with_resize());
  EXPECT_EQ(scenario.job(1).procs, 96);
}

TEST(ResourceElasticity, SameGrainResizeKeepsSchedule) {
  // 33 -> 40 procs stays within the same two node cards: no allocation or
  // runtime change.
  const auto workload = make_workload(
      320, 32, {batch_job(1, 0, 33, 100)}, {proc_ecc(1, 50, true, 7)});
  const auto scenario = run_scenario(workload, "EASY-E", with_resize());
  EXPECT_EQ(scenario.job(1).procs, 64);
  EXPECT_DOUBLE_EQ(scenario.end_of(1), 100);
}

TEST(ResourceElasticity, GeneratorInjectsProcCommands) {
  workload::GeneratorConfig config;
  config.num_jobs = 2000;
  config.seed = 3;
  config.p_extend_procs = 0.2;
  config.p_reduce_procs = 0.1;
  const auto workload = workload::generate(config);
  std::size_t ep = 0, rp = 0;
  for (const auto& ecc : workload.eccs) {
    if (ecc.type == workload::EccType::kExtendProcs) ++ep;
    if (ecc.type == workload::EccType::kReduceProcs) ++rp;
    EXPECT_GE(ecc.amount, 1.0);
  }
  EXPECT_NEAR(static_cast<double>(ep) / 2000.0, 0.2, 0.03);
  EXPECT_NEAR(static_cast<double>(rp) / 2000.0, 0.1, 0.02);
}

TEST(ResourceElasticity, FullWorkloadKeepsInvariants) {
  workload::GeneratorConfig config;
  config.num_jobs = 250;
  config.seed = 9;
  config.p_extend = 0.1;
  config.p_reduce = 0.1;
  config.p_extend_procs = 0.2;
  config.p_reduce_procs = 0.2;
  config.target_load = 0.95;
  const auto workload = workload::generate(config);
  for (const char* algorithm : {"EASY-E", "Delayed-LOS-E"}) {
    const auto scenario = run_scenario(workload, algorithm, with_resize());
    EXPECT_EQ(scenario.result.completed + scenario.result.killed, 250u)
        << algorithm;
    // peak_allocation() assumes a constant allocation per job and so
    // over-counts jobs that grew mid-run; the machine ledger itself
    // enforces the capacity invariant via contracts (the run would abort
    // on violation).  Here we only sanity-bound the helper's estimate.
    EXPECT_LE(es::testing::peak_allocation(scenario.result), 320 * 2)
        << algorithm;
    EXPECT_GT(scenario.result.ecc.running_resizes +
                  scenario.result.ecc.rejected,
              0u)
        << algorithm;
  }
}

TEST(ResourceElasticity, DeterministicWithResizes) {
  workload::GeneratorConfig config;
  config.num_jobs = 200;
  config.seed = 10;
  config.p_extend_procs = 0.3;
  config.p_reduce_procs = 0.2;
  config.target_load = 0.9;
  const auto workload = workload::generate(config);
  const auto a = run_scenario(workload, "Delayed-LOS-E", with_resize());
  const auto b = run_scenario(workload, "Delayed-LOS-E", with_resize());
  EXPECT_DOUBLE_EQ(a.result.mean_wait, b.result.mean_wait);
  EXPECT_DOUBLE_EQ(a.result.utilization, b.result.utilization);
}

}  // namespace
}  // namespace es
