// Golden schedules for the heterogeneous (-D) and elastic (-E) families on
// fixed scenarios, pinning exact start times.  Derivations in comments;
// re-derive by hand before changing expectations.
#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace es {
namespace {

using es::testing::batch_job;
using es::testing::dedicated_job;
using es::testing::make_workload;
using es::testing::run_scenario;

/// 10-processor machine.  Batch stream plus two dedicated windows:
///   id 1: batch 6p x 80, arr 0
///   id 2: batch 5p x 100, arr 1
///   id 3: dedicated 8p x 40 at t=120 (booked at arr 2)
///   id 4: batch 4p x 30, arr 3
///   id 5: batch 3p x 500, arr 4
///   id 6: dedicated 10p x 20 at t=300 (booked at arr 5)
workload::Workload hetero_workload() {
  return make_workload(
      10, 1,
      {batch_job(1, 0, 6, 80), batch_job(2, 1, 5, 100),
       dedicated_job(3, 2, 8, 40, 120), batch_job(4, 3, 4, 30),
       batch_job(5, 4, 3, 500), dedicated_job(6, 5, 10, 20, 300)});
}

TEST(GoldenHetero, EasyD) {
  const auto s = run_scenario(hetero_workload(), "EASY-D");
  // t=0: 1 starts (free 4).  t=1: 2 (5p) blocked -> head shadow at 80
  // (frec = 4+6-5 = 5).  t=3: 4 (4p x30) fits, ends 33 < 80, and respects
  // the dedicated freeze (ends before 120): backfills (free 0).
  EXPECT_DOUBLE_EQ(s.start_of(1), 0);
  EXPECT_DOUBLE_EQ(s.start_of(4), 3);
  // t=33: 4 done (free 4).  5 (3p x500) fits now, crosses the head shadow
  // (ends 533 > 80) -> needs head frec 5 >= 3 ok; crosses dedicated freeze
  // at 120 (capacity at 120: jobs running then... 1 ends 80, so at 120
  // only 5 itself would run: frec_d = 10 - 8 = 2 < 3) -> refused.
  EXPECT_GT(s.start_of(5), 33);
  // t=80: 1 done (free 10): head 2 starts (ends 180 -> crosses t=120!
  // respects ded? 2 is the head: capacity at 120 = 10 - 5(job 2) = 5 < 8
  // -> violates the freeze -> head blocked by the dedicated reservation.
  // So 2 waits until the dedicated job finishes: starts at 160.
  EXPECT_DOUBLE_EQ(s.start_of(3), 120);
  EXPECT_DOUBLE_EQ(s.start_of(2), 160);
  EXPECT_DOUBLE_EQ(s.start_of(6), 300);
  EXPECT_EQ(s.result.dedicated_on_time, 2u);
}

TEST(GoldenHetero, HybridLos) {
  core::AlgorithmOptions options;
  options.max_skip_count = 7;
  const auto s = run_scenario(hetero_workload(), "Hybrid-LOS", options);
  // t=0: no dedicated yet -> Delayed-LOS: Basic_DP {1} starts (free 4).
  // t=1: 2 (5p) doesn't fit -> Delayed path (Wd still empty).
  // t=2: dedicated 3 arrives (start 120): freeze fret=120; capacity at
  // 120: job 1 ends 80 -> 10 free -> frec = 10-8 = 2.
  // t=3: 4 (4p x30) arrives: DP eligible 4 (ends 33 < 120, frenum 0):
  // starts; 2 skipped (scount 1).
  EXPECT_DOUBLE_EQ(s.start_of(1), 0);
  EXPECT_DOUBLE_EQ(s.start_of(4), 3);
  // t=80: 1 done (free 10... job 4 ended at 33): free = 10.  DP with the
  // dedicated freeze: 2 (5p, ends 180 crosses 120, frenum 5 > frec 2) is
  // excluded; 5 (3p, crosses, frenum 3 > 2) excluded -> nothing starts;
  // 2's scount -> 2.
  // t=120: dedicated 3 moves to batch head and starts (free 2).
  EXPECT_DOUBLE_EQ(s.start_of(3), 120);
  // t=160: 3 done (free 10).  Next dedicated freeze: 6 at t=300, capacity
  // at 300 = 10 -> frec = 0.  DP: 2 (ends 260 < 300 -> frenum 0) and 5
  // (crosses, frenum 3 > 0 excluded): {2} starts.
  EXPECT_DOUBLE_EQ(s.start_of(2), 160);
  // t=260: 2 done.  5 still excluded by the t=300 freeze (crosses with
  // frenum 3 > 0); head 5's scount grows but C_s=7 not yet reached.
  // t=300: 6 moves and starts; t=320: 6 done -> 5 finally starts.
  EXPECT_DOUBLE_EQ(s.start_of(6), 300);
  EXPECT_DOUBLE_EQ(s.start_of(5), 320);
  EXPECT_EQ(s.result.dedicated_on_time, 2u);
}

/// Elastic scenario: two batch jobs and one ET command re-ordering events.
///   id 1: 10p x 100, arr 0; ET +50 at t=60
///   id 2: 10p x 50, arr 1
///   id 3: 4p x 500, arr 2
TEST(GoldenElastic, EasyE) {
  workload::Ecc ecc;
  ecc.issue = 60;
  ecc.job_id = 1;
  ecc.type = workload::EccType::kExtendTime;
  ecc.amount = 50;
  const auto workload = make_workload(
      10, 1,
      {batch_job(1, 0, 10, 100), batch_job(2, 1, 10, 50),
       batch_job(3, 2, 4, 500)},
      {ecc});
  const auto s = run_scenario(workload, "EASY-E");
  // 1 runs [0, 150) after the extension.  2 (head) reserved at 150;
  // 3 (4p x500) would end at 502+ > shadow and needs frec = 10-10 = 0:
  // never backfilled; FIFO resumes after 2.
  EXPECT_DOUBLE_EQ(s.end_of(1), 150);
  EXPECT_DOUBLE_EQ(s.start_of(2), 150);
  EXPECT_DOUBLE_EQ(s.start_of(3), 200);
}

TEST(GoldenElastic, ReductionChangesWinnerOfTheNextSlot) {
  // 1 holds 6p with estimate 200; 2 (6p x100) waits; at t=50 an RT cuts 1
  // to 80 total -> 2 starts at 80 instead of 200.
  workload::Ecc ecc;
  ecc.issue = 50;
  ecc.job_id = 1;
  ecc.type = workload::EccType::kReduceTime;
  ecc.amount = 120;
  const auto workload = make_workload(
      10, 1, {batch_job(1, 0, 6, 200), batch_job(2, 1, 6, 100)}, {ecc});
  const auto s = run_scenario(workload, "LOS-E");
  EXPECT_DOUBLE_EQ(s.end_of(1), 80);
  EXPECT_DOUBLE_EQ(s.start_of(2), 80);
}

TEST(GoldenHetero, LosDMatchesEasyDOnThisScenario) {
  // On hetero_workload the two baselines happen to coincide except for how
  // job 5 is admitted; pin both so divergence is caught.
  const auto easy = run_scenario(hetero_workload(), "EASY-D");
  const auto los = run_scenario(hetero_workload(), "LOS-D");
  EXPECT_DOUBLE_EQ(los.start_of(1), easy.start_of(1));
  EXPECT_DOUBLE_EQ(los.start_of(3), easy.start_of(3));
  EXPECT_DOUBLE_EQ(los.start_of(6), easy.start_of(6));
}

}  // namespace
}  // namespace es
