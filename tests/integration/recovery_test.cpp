// Checkpoint/restart recovery and watchdog guardrails end-to-end: exact
// resume schedules under scripted outages, the harsh-MTBF scenario that
// never terminates under capless restart but completes under checkpointed
// recovery, the typed watchdog aborts with partial metrics, and the
// hardened ECC skip counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/factory.hpp"
#include "sched/engine.hpp"
#include "testing/helpers.hpp"

namespace es {
namespace {

using es::testing::batch_job;
using es::testing::make_workload;

/// One engine run with full control over the failure/checkpoint/watchdog
/// attachments; paranoid invariant checking stays on.
testing::Scenario run_engine(const workload::Workload& workload,
                             const sched::EngineConfig& base) {
  core::Algorithm algo = core::make_algorithm("EASY");
  EXPECT_NE(algo.policy, nullptr);
  sched::EngineConfig config = base;
  config.machine_procs = workload.machine_procs;
  config.granularity = workload.granularity;
  config.paranoid = true;
  testing::Scenario scenario;
  scenario.result = sched::simulate(config, *algo.policy, workload);
  for (const sched::JobOutcome& outcome : scenario.result.jobs)
    scenario.by_id[outcome.id] = outcome;
  return scenario;
}

sched::EngineConfig scripted_failure(std::vector<fault::Outage> script,
                                     fault::RequeuePolicy policy =
                                         fault::RequeuePolicy::kRequeueHead) {
  sched::EngineConfig config;
  config.failure.enabled = true;
  config.failure.script = std::move(script);
  config.requeue = policy;
  return config;
}

TEST(CheckpointRecovery, ResumesFromTheLastCheckpoint) {
  // One job owns the whole machine; a node card fails at t=50.  With free
  // checkpoints every 20 s of work the job has banked 40 s when preempted,
  // so after the t=80 repair it runs only the remaining 60 s.
  const auto workload = make_workload(320, 32, {batch_job(1, 0, 320, 100)});
  sched::EngineConfig config = scripted_failure({{50, 80, 32}});
  config.checkpoint.enabled = true;
  config.checkpoint.interval = 20;
  const auto scenario = run_engine(workload, config);

  EXPECT_EQ(scenario.result.completed, 1u);
  EXPECT_DOUBLE_EQ(scenario.job(1).started, 80.0);
  EXPECT_DOUBLE_EQ(scenario.job(1).finished, 140.0);  // 180 without recovery
  const auto& failure = scenario.result.failure;
  // Two checkpoints before the failure (t=20, t=40; the preemption at
  // t=50 is mid-interval) plus two during the resumed 60 s attempt.
  EXPECT_EQ(failure.checkpoints, 4u);
  EXPECT_DOUBLE_EQ(failure.saved_proc_seconds, 320.0 * 40);
  // Only the 10 s past the last checkpoint are lost (and re-run = wasted).
  EXPECT_DOUBLE_EQ(failure.lost_proc_seconds, 320.0 * 10);
  EXPECT_DOUBLE_EQ(failure.wasted_proc_seconds, 320.0 * 10);
  EXPECT_DOUBLE_EQ(failure.checkpoint_overhead_proc_seconds, 0.0);
  EXPECT_EQ(scenario.result.termination, sim::TerminationReason::kCompleted);
  EXPECT_EQ(scenario.result.unfinished, 0u);
}

TEST(CheckpointRecovery, OverheadStretchesAttemptsAndIsAccounted) {
  // Interval 20 s, overhead 5 s: one wall cycle is 25 s.  At the t=50
  // preemption two checkpoints are complete (40 s banked, 10 s overhead
  // spent); the 60 s resume carries two more planned checkpoints, so it
  // takes 70 s of wall time.
  const auto workload = make_workload(320, 32, {batch_job(1, 0, 320, 100)});
  sched::EngineConfig config = scripted_failure({{50, 80, 32}});
  config.checkpoint.enabled = true;
  config.checkpoint.interval = 20;
  config.checkpoint.overhead = 5;
  const auto scenario = run_engine(workload, config);

  EXPECT_EQ(scenario.result.completed, 1u);
  EXPECT_DOUBLE_EQ(scenario.job(1).finished, 150.0);
  const auto& failure = scenario.result.failure;
  EXPECT_EQ(failure.checkpoints, 4u);  // 2 before the failure + 2 after
  EXPECT_DOUBLE_EQ(failure.saved_proc_seconds, 320.0 * 40);
  EXPECT_DOUBLE_EQ(failure.checkpoint_overhead_proc_seconds, 320.0 * 20);
}

TEST(CheckpointRecovery, OnPreemptBanksAllExecutedWork) {
  // Checkpoint-on-signal: the full 50 s executed at the preemption instant
  // are banked, so the resume runs exactly the remaining 50 s.
  const auto workload = make_workload(320, 32, {batch_job(1, 0, 320, 100)});
  sched::EngineConfig config = scripted_failure({{50, 80, 32}});
  config.checkpoint.enabled = true;
  config.checkpoint.on_preempt = true;
  const auto scenario = run_engine(workload, config);

  EXPECT_DOUBLE_EQ(scenario.job(1).finished, 130.0);
  const auto& failure = scenario.result.failure;
  EXPECT_EQ(failure.checkpoints, 1u);  // the on-preempt checkpoint itself
  EXPECT_DOUBLE_EQ(failure.saved_proc_seconds, 320.0 * 50);
  EXPECT_DOUBLE_EQ(failure.lost_proc_seconds, 0.0);
  EXPECT_DOUBLE_EQ(failure.wasted_proc_seconds, 0.0);
}

TEST(CheckpointRecovery, AbandonedJobsBankNothing) {
  // Checkpoints only matter for jobs that will run again: the abandon
  // policy must produce the same accounting as the checkpoint-free engine.
  const auto workload = make_workload(320, 32, {batch_job(1, 0, 320, 100)});
  sched::EngineConfig config =
      scripted_failure({{50, 80, 32}}, fault::RequeuePolicy::kAbandon);
  config.checkpoint.enabled = true;
  config.checkpoint.interval = 20;
  const auto scenario = run_engine(workload, config);

  EXPECT_EQ(scenario.result.abandoned, 1u);
  const auto& failure = scenario.result.failure;
  EXPECT_EQ(failure.checkpoints, 0u);
  EXPECT_DOUBLE_EQ(failure.saved_proc_seconds, 0.0);
  EXPECT_DOUBLE_EQ(failure.lost_proc_seconds, 320.0 * 50);
}

TEST(CheckpointRecovery, DisabledConfigMatchesSeedSchedule) {
  // Default-constructed checkpoint and watchdog configs must reproduce the
  // seed engine exactly (the restart-from-scratch schedule).
  const auto workload = make_workload(320, 32, {batch_job(1, 0, 320, 100)});
  const auto scenario =
      run_engine(workload, scripted_failure({{50, 80, 32}}));

  EXPECT_DOUBLE_EQ(scenario.job(1).started, 80.0);
  EXPECT_DOUBLE_EQ(scenario.job(1).finished, 180.0);
  const auto& failure = scenario.result.failure;
  EXPECT_EQ(failure.checkpoints, 0u);
  EXPECT_DOUBLE_EQ(failure.saved_proc_seconds, 0.0);
  EXPECT_DOUBLE_EQ(failure.checkpoint_overhead_proc_seconds, 0.0);
  EXPECT_DOUBLE_EQ(failure.lost_proc_seconds, 320.0 * 50);
  EXPECT_EQ(scenario.result.termination, sim::TerminationReason::kCompleted);
}

/// The pathological configuration the watchdog exists for: stochastic
/// failures with MTBF far below the job runtimes, capless
/// restart-from-scratch requeue.  Expected attempts grow like
/// e^(runtime/MTBF), so the run effectively never terminates.
sched::EngineConfig harsh_mtbf_config() {
  sched::EngineConfig config;
  config.failure.enabled = true;
  config.failure.seed = 7;
  config.failure.mtbf = 60;
  config.failure.mttr = 30;
  config.failure.min_nodes = 1;
  config.failure.max_nodes = 1;
  config.failure.max_interruptions = 0;  // capless: retry forever
  config.requeue = fault::RequeuePolicy::kRequeueHead;
  return config;
}

workload::Workload harsh_mtbf_workload() {
  return make_workload(
      64, 32, {batch_job(1, 0, 64, 10000), batch_job(2, 1, 64, 10000)});
}

TEST(Watchdog, HarshMtbfCaplessRestartAbortsWithPartialMetrics) {
  sched::EngineConfig config = harsh_mtbf_config();
  config.watchdog.max_events = 20000;
  const auto scenario = run_engine(harsh_mtbf_workload(), config);

  EXPECT_EQ(scenario.result.termination, sim::TerminationReason::kMaxEvents);
  EXPECT_EQ(scenario.result.events, 20000u);
  EXPECT_EQ(scenario.result.unfinished, 2u);
  EXPECT_EQ(scenario.result.completed, 0u);
  // Partial metrics are still meaningful: the failure churn was recorded.
  EXPECT_GT(scenario.result.failure.interruptions, 0u);
  EXPECT_GT(scenario.result.failure.lost_proc_seconds, 0.0);
}

TEST(Watchdog, CheckpointedRecoveryCompletesTheSameScenario) {
  sched::EngineConfig config = harsh_mtbf_config();
  config.checkpoint.enabled = true;
  config.checkpoint.on_preempt = true;
  config.watchdog.max_events = 2'000'000;  // safety net only
  const auto scenario = run_engine(harsh_mtbf_workload(), config);

  EXPECT_EQ(scenario.result.termination, sim::TerminationReason::kCompleted);
  EXPECT_EQ(scenario.result.unfinished, 0u);
  EXPECT_EQ(scenario.result.completed, 2u);
  EXPECT_GT(scenario.result.failure.saved_proc_seconds, 0.0);
}

TEST(Watchdog, MaxSimTimeAbortsAStochasticFailureRun) {
  sched::EngineConfig config = harsh_mtbf_config();
  config.watchdog.max_sim_time = 5000;
  const auto scenario = run_engine(harsh_mtbf_workload(), config);

  EXPECT_EQ(scenario.result.termination, sim::TerminationReason::kMaxSimTime);
  EXPECT_EQ(scenario.result.unfinished, 2u);
}

TEST(Watchdog, NoProgressDetectorTripsOnEccChurn) {
  // Job 1 runs on half the machine; the other half goes down for a long
  // time, so job 2 (whole machine) can never start.  A stream of ET
  // commands keeps triggering scheduler cycles that seat nothing — the
  // detector must call that a hang instead of spinning to the last event.
  std::vector<workload::Ecc> eccs;
  for (int i = 0; i < 10; ++i) {
    workload::Ecc ecc;
    ecc.issue = 10 + i;
    ecc.job_id = 1;
    ecc.type = workload::EccType::kExtendTime;
    ecc.amount = 1;
    eccs.push_back(ecc);
  }
  const auto workload = make_workload(
      64, 32, {batch_job(1, 0, 32, 100000), batch_job(2, 1, 64, 100)},
      eccs);
  sched::EngineConfig config = scripted_failure({{5, 100000, 32}});
  config.process_eccs = true;
  config.watchdog.no_progress_cycles = 5;
  const auto scenario = run_engine(workload, config);

  EXPECT_EQ(scenario.result.termination, sim::TerminationReason::kNoProgress);
  EXPECT_EQ(scenario.result.unfinished, 2u);
}

TEST(EccHardening, UnknownAndLateCommandsAreSkippedAndCounted) {
  std::vector<workload::Ecc> eccs(2);
  eccs[0].issue = 5;
  eccs[0].job_id = 999;  // no such job in the workload
  eccs[0].type = workload::EccType::kExtendTime;
  eccs[0].amount = 10;
  eccs[1].issue = 50;
  eccs[1].job_id = 1;  // job 1 finished at t=10
  eccs[1].type = workload::EccType::kExtendTime;
  eccs[1].amount = 10;
  const auto workload =
      make_workload(64, 32, {batch_job(1, 0, 32, 10)}, eccs);
  sched::EngineConfig config;
  config.process_eccs = true;
  const auto scenario = run_engine(workload, config);

  EXPECT_EQ(scenario.result.completed, 1u);
  EXPECT_DOUBLE_EQ(scenario.job(1).finished, 10.0);  // neither ECC applied
  EXPECT_EQ(scenario.result.ecc.unknown_job, 1u);
  EXPECT_EQ(scenario.result.ecc.after_finish, 1u);
  EXPECT_EQ(scenario.result.ecc.rejected, 1u);
}

}  // namespace
}  // namespace es
