// Cross-algorithm property tests: every algorithm of Table III must uphold
// the fundamental invariants on randomized workloads — capacity never
// exceeded, every job completes exactly once, dedicated jobs never start
// before their requested time, waits are non-negative, and runs are
// bit-deterministic.
#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "workload/generator.hpp"

namespace es {
namespace {

using es::testing::peak_allocation;
using es::testing::run_scenario;

struct AlgorithmCase {
  const char* name;
  bool dedicated;
  bool elastic;
};

std::ostream& operator<<(std::ostream& out, const AlgorithmCase& c) {
  return out << c.name;
}

class AllAlgorithms : public ::testing::TestWithParam<AlgorithmCase> {
 protected:
  workload::Workload make(std::uint64_t seed) const {
    const AlgorithmCase& param = GetParam();
    workload::GeneratorConfig config;
    config.num_jobs = 250;
    config.seed = seed;
    config.p_small = 0.5;
    config.target_load = 0.95;
    if (param.dedicated) config.p_dedicated = 0.4;
    if (param.elastic) {
      config.p_extend = 0.2;
      config.p_reduce = 0.1;
    }
    return workload::generate(config);
  }
};

TEST_P(AllAlgorithms, CapacityNeverExceeded) {
  const auto scenario = run_scenario(make(1), GetParam().name);
  EXPECT_LE(peak_allocation(scenario.result), 320);
}

TEST_P(AllAlgorithms, EveryJobRunsExactlyOnce) {
  const auto scenario = run_scenario(make(2), GetParam().name);
  EXPECT_EQ(scenario.result.jobs.size(), 250u);
  EXPECT_EQ(scenario.by_id.size(), 250u);  // unique ids
  EXPECT_EQ(scenario.result.completed + scenario.result.killed, 250u);
}

TEST_P(AllAlgorithms, StartsAfterArrivalAndDedicatedStartsAfterRequest) {
  const auto scenario = run_scenario(make(3), GetParam().name);
  for (const auto& [id, job] : scenario.by_id) {
    EXPECT_GE(job.started, job.arrival) << "job " << id;
    EXPECT_GE(job.finished, job.started) << "job " << id;
    EXPECT_GE(job.wait, 0.0) << "job " << id;
  }
}

TEST_P(AllAlgorithms, AllocationsHonourGranularity) {
  const auto scenario = run_scenario(make(4), GetParam().name);
  for (const auto& [id, job] : scenario.by_id) {
    EXPECT_EQ(job.procs % 32, 0) << "job " << id;
    EXPECT_GE(job.procs, 32) << "job " << id;
    EXPECT_LE(job.procs, 320) << "job " << id;
  }
}

TEST_P(AllAlgorithms, DeterministicAcrossIdenticalRuns) {
  const auto workload = make(5);
  const auto a = run_scenario(workload, GetParam().name);
  const auto b = run_scenario(workload, GetParam().name);
  EXPECT_DOUBLE_EQ(a.result.mean_wait, b.result.mean_wait);
  EXPECT_DOUBLE_EQ(a.result.utilization, b.result.utilization);
  EXPECT_DOUBLE_EQ(a.result.slowdown, b.result.slowdown);
  for (const auto& [id, job] : a.by_id) {
    EXPECT_DOUBLE_EQ(job.started, b.job(id).started) << "job " << id;
    EXPECT_DOUBLE_EQ(job.finished, b.job(id).finished) << "job " << id;
  }
}

TEST_P(AllAlgorithms, UtilizationWithinPhysicalBounds) {
  const auto scenario = run_scenario(make(6), GetParam().name);
  EXPECT_GT(scenario.result.utilization, 0.0);
  EXPECT_LE(scenario.result.utilization, 1.0);
  EXPECT_GE(scenario.result.slowdown, 1.0);
}

TEST_P(AllAlgorithms, ParanoidModeFindsNoViolations) {
  // The engine re-verifies ledger/queue/status invariants after every
  // scheduling cycle; any violation aborts the run.
  const auto workload = make(7);
  core::Algorithm algorithm = core::make_algorithm(GetParam().name);
  ASSERT_NE(algorithm.policy, nullptr);
  sched::EngineConfig config;
  config.machine_procs = workload.machine_procs;
  config.granularity = workload.granularity;
  config.process_eccs = algorithm.process_eccs;
  config.paranoid = true;
  const auto result = sched::simulate(config, *algorithm.policy, workload);
  EXPECT_EQ(result.completed + result.killed, 250u);
}

INSTANTIATE_TEST_SUITE_P(
    TableThree, AllAlgorithms,
    ::testing::Values(AlgorithmCase{"FCFS", false, false},
                      AlgorithmCase{"CONS", false, false},
                      AlgorithmCase{"EASY", false, false},
                      AlgorithmCase{"EASY-D", true, false},
                      AlgorithmCase{"EASY-E", false, true},
                      AlgorithmCase{"EASY-DE", true, true},
                      AlgorithmCase{"LOS", false, false},
                      AlgorithmCase{"LOS-D", true, false},
                      AlgorithmCase{"LOS-E", false, true},
                      AlgorithmCase{"LOS-DE", true, true},
                      AlgorithmCase{"Delayed-LOS", false, false},
                      AlgorithmCase{"Delayed-LOS-E", false, true},
                      AlgorithmCase{"Hybrid-LOS", true, false},
                      AlgorithmCase{"Hybrid-LOS-E", true, true},
                      AlgorithmCase{"Adaptive", false, false}),
    [](const ::testing::TestParamInfo<AlgorithmCase>& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Fairness, DelayedLosHeadSkipBoundedByCs) {
  // Starvation bound: with C_s = k, once a head job fits it cannot be
  // overtaken indefinitely — its wait beyond the first fitting instant is
  // bounded by k packing rounds.  We verify the weaker observable: under
  // Delayed-LOS no job waits more than (C_s + queue drains) vs LOS's
  // reservation guarantee; concretely here, the max wait stays finite and
  // all jobs run (no starvation).
  workload::GeneratorConfig config;
  config.num_jobs = 300;
  config.seed = 17;
  config.target_load = 1.2;  // heavy overload
  const auto workload = workload::generate(config);
  const auto scenario = run_scenario(workload, "Delayed-LOS");
  EXPECT_EQ(scenario.result.completed + scenario.result.killed, 300u);
}

}  // namespace
}  // namespace es
