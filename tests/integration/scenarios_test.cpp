// End-to-end scheduling scenarios cross-checking algorithms against each
// other on hand-crafted queues with known optimal behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "testing/helpers.hpp"
#include "workload/cwf.hpp"
#include "workload/generator.hpp"

namespace es {
namespace {

using es::testing::batch_job;
using es::testing::dedicated_job;
using es::testing::make_workload;
using es::testing::run_scenario;

TEST(Scenarios, EmptyWorkloadYieldsZeroMetrics) {
  const auto workload = make_workload(320, 32, {});
  for (const char* algorithm : {"FCFS", "EASY", "LOS", "Delayed-LOS"}) {
    const auto scenario = run_scenario(workload, algorithm);
    EXPECT_EQ(scenario.result.completed, 0u);
    EXPECT_DOUBLE_EQ(scenario.result.mean_wait, 0.0);
  }
}

TEST(Scenarios, SequentialSaturatingJobsIdenticalForAll) {
  // Full-machine jobs: no packing decisions exist, so every algorithm must
  // produce the same schedule.
  const auto workload = make_workload(
      320, 32,
      {batch_job(1, 0, 320, 100), batch_job(2, 10, 320, 100),
       batch_job(3, 20, 320, 100)});
  const auto reference = run_scenario(workload, "FCFS");
  for (const char* algorithm : {"EASY", "CONS", "LOS", "Delayed-LOS"}) {
    const auto scenario = run_scenario(workload, algorithm);
    for (const auto& [id, job] : reference.by_id)
      EXPECT_DOUBLE_EQ(scenario.job(id).started, job.started)
          << algorithm << " job " << id;
  }
}

TEST(Scenarios, IndependentJobsRunImmediatelyUnderAll) {
  const auto workload = make_workload(
      320, 32,
      {batch_job(1, 0, 64, 50), batch_job(2, 1, 64, 60),
       batch_job(3, 2, 64, 70), batch_job(4, 3, 64, 80)});
  for (const char* algorithm :
       {"FCFS", "EASY", "CONS", "LOS", "Delayed-LOS", "Hybrid-LOS"}) {
    const auto scenario = run_scenario(workload, algorithm);
    for (const auto& [id, job] : scenario.by_id)
      EXPECT_DOUBLE_EQ(job.wait, 0.0) << algorithm << " job " << id;
  }
}

TEST(Scenarios, PackingHierarchyOnFragmentedQueue) {
  // A queue constructed so better packers strictly win:
  // blocker, then alternating 7/4/6-style fragments.
  std::vector<workload::Job> jobs{batch_job(1, 0, 10, 10)};
  workload::JobId id = 2;
  for (int round = 0; round < 6; ++round) {
    jobs.push_back(batch_job(id++, round * 3 + 1, 7, 100));
    jobs.push_back(batch_job(id++, round * 3 + 2, 4, 100));
    jobs.push_back(batch_job(id++, round * 3 + 3, 6, 100));
  }
  const auto workload = make_workload(10, 1, jobs);
  const auto fcfs = run_scenario(workload, "FCFS");
  const auto easy = run_scenario(workload, "EASY");
  const auto delayed = run_scenario(workload, "Delayed-LOS");
  EXPECT_LE(easy.result.mean_wait, fcfs.result.mean_wait);
  EXPECT_LT(delayed.result.mean_wait, fcfs.result.mean_wait);
}

TEST(Scenarios, HybridMatchesDelayedOnPureBatch) {
  workload::GeneratorConfig config;
  config.num_jobs = 200;
  config.seed = 23;
  config.target_load = 0.9;
  const auto workload = workload::generate(config);
  const auto hybrid = run_scenario(workload, "Hybrid-LOS");
  const auto delayed = run_scenario(workload, "Delayed-LOS");
  EXPECT_DOUBLE_EQ(hybrid.result.mean_wait, delayed.result.mean_wait);
  EXPECT_DOUBLE_EQ(hybrid.result.utilization, delayed.result.utilization);
}

TEST(Scenarios, DedicatedVariantsMatchBaseOnPureBatch) {
  workload::GeneratorConfig config;
  config.num_jobs = 200;
  config.seed = 24;
  config.target_load = 0.9;
  const auto workload = workload::generate(config);
  for (const auto& [base, extended] :
       std::vector<std::pair<const char*, const char*>>{
           {"EASY", "EASY-D"}, {"LOS", "LOS-D"}}) {
    const auto a = run_scenario(workload, base);
    const auto b = run_scenario(workload, extended);
    EXPECT_DOUBLE_EQ(a.result.mean_wait, b.result.mean_wait)
        << base << " vs " << extended;
  }
}

TEST(Scenarios, ElasticVariantsMatchBaseWithoutEccs) {
  workload::GeneratorConfig config;
  config.num_jobs = 200;
  config.seed = 25;
  config.target_load = 0.9;
  const auto workload = workload::generate(config);  // no ECCs injected
  for (const auto& [base, extended] :
       std::vector<std::pair<const char*, const char*>>{
           {"EASY", "EASY-E"},
           {"LOS", "LOS-E"},
           {"Delayed-LOS", "Delayed-LOS-E"}}) {
    const auto a = run_scenario(workload, base);
    const auto b = run_scenario(workload, extended);
    EXPECT_DOUBLE_EQ(a.result.mean_wait, b.result.mean_wait)
        << base << " vs " << extended;
  }
}

TEST(Scenarios, CwfRoundTripPreservesSchedule) {
  // Generate -> save CWF -> load -> identical simulation results.
  workload::GeneratorConfig config;
  config.num_jobs = 150;
  config.seed = 26;
  config.p_dedicated = 0.3;
  config.p_extend = 0.2;
  config.p_reduce = 0.1;
  workload::Workload original = workload::generate(config);
  // CWF stores integer-formatted times; round timestamps so the round trip
  // is exact.
  for (auto& job : original.jobs) {
    job.arr = std::round(job.arr);
    job.dur = std::round(job.dur);
    job.actual = std::round(job.actual_runtime());
    if (job.dedicated()) job.start = std::round(job.start);
  }
  for (auto& ecc : original.eccs) {
    ecc.issue = std::round(ecc.issue);
    ecc.amount = std::round(ecc.amount);
  }
  original.normalize();

  const std::string path = ::testing::TempDir() + "/roundtrip.cwf";
  ASSERT_TRUE(workload::save_cwf_workload(path, original));
  workload::Workload loaded = workload::load_cwf_workload(path);
  loaded.machine_procs = original.machine_procs;
  loaded.granularity = original.granularity;

  const auto a = run_scenario(original, "Hybrid-LOS-E");
  const auto b = run_scenario(loaded, "Hybrid-LOS-E");
  EXPECT_DOUBLE_EQ(a.result.mean_wait, b.result.mean_wait);
  EXPECT_DOUBLE_EQ(a.result.utilization, b.result.utilization);
  std::remove(path.c_str());
}

TEST(Scenarios, OverloadedSystemStillDrains) {
  workload::GeneratorConfig config;
  config.num_jobs = 300;
  config.seed = 27;
  config.target_load = 1.5;
  const auto workload = workload::generate(config);
  for (const char* algorithm : {"EASY", "Delayed-LOS"}) {
    const auto scenario = run_scenario(workload, algorithm);
    EXPECT_EQ(scenario.result.completed + scenario.result.killed, 300u)
        << algorithm;
  }
}

}  // namespace
}  // namespace es
