// Fault injection end-to-end: scripted outages with exact expected
// schedules, requeue-policy semantics, failure accounting, bit-identical
// determinism under stochastic failures, and a node-down/up storm that every
// factory algorithm must survive with paranoid invariant checking on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/factory.hpp"
#include "sched/engine.hpp"
#include "testing/helpers.hpp"
#include "workload/generator.hpp"

namespace es {
namespace {

using es::testing::batch_job;
using es::testing::make_workload;
using es::testing::run_scenario;

/// Runs `workload` under `algorithm` with paranoid invariant checking and
/// the given failure script / requeue policy.
testing::Scenario run_with_failures(const workload::Workload& workload,
                                    const std::string& algorithm,
                                    std::vector<fault::Outage> script,
                                    fault::RequeuePolicy policy,
                                    int retry_cap = 0) {
  core::Algorithm algo = core::make_algorithm(algorithm);
  EXPECT_NE(algo.policy, nullptr);
  sched::EngineConfig config;
  config.machine_procs = workload.machine_procs;
  config.granularity = workload.granularity;
  config.process_eccs = algo.process_eccs;
  config.paranoid = true;
  config.failure.enabled = true;
  config.failure.script = std::move(script);
  config.failure.max_interruptions = retry_cap;
  config.requeue = policy;
  testing::Scenario scenario;
  scenario.result = sched::simulate(config, *algo.policy, workload);
  for (const sched::JobOutcome& outcome : scenario.result.jobs)
    scenario.by_id[outcome.id] = outcome;
  return scenario;
}

TEST(FailureInjection, FullMachineJobIsRequeuedAndRestartsAfterRepair) {
  // One job owns the whole 320-proc machine; a 32-proc node card fails at
  // t=50 and returns at t=80.  The job restarts from scratch at the repair.
  const auto workload = make_workload(320, 32, {batch_job(1, 0, 320, 100)});
  const auto scenario = run_with_failures(
      workload, "EASY", {{50, 80, 32}}, fault::RequeuePolicy::kRequeueHead);

  EXPECT_EQ(scenario.result.completed, 1u);
  EXPECT_EQ(scenario.result.abandoned, 0u);
  const auto& job = scenario.job(1);
  EXPECT_EQ(job.interruptions, 1);
  EXPECT_DOUBLE_EQ(job.started, 80.0);   // last (successful) start
  EXPECT_DOUBLE_EQ(job.finished, 180.0);

  const auto& failure = scenario.result.failure;
  EXPECT_EQ(failure.outages, 1u);
  EXPECT_EQ(failure.interruptions, 1u);
  EXPECT_EQ(failure.requeues, 1u);
  EXPECT_DOUBLE_EQ(failure.lost_proc_seconds, 320.0 * 50);
  EXPECT_DOUBLE_EQ(failure.wasted_proc_seconds, 320.0 * 50);
  EXPECT_DOUBLE_EQ(failure.goodput_proc_seconds, 320.0 * 100);
  // 32 processors were out of service for 30 of the 180 simulated seconds.
  EXPECT_DOUBLE_EQ(failure.down_proc_seconds, 32.0 * 30);
}

TEST(FailureInjection, VictimIsLatestStartedWithHigherIdTieBreak) {
  // Jobs 1 and 2 both start at t=0; the outage at t=10 needs one of them
  // preempted and must deterministically pick the higher id.
  const auto workload = make_workload(
      64, 32,
      {batch_job(1, 0, 32, 100), batch_job(2, 0, 32, 100),
       batch_job(3, 1, 32, 10)});
  const auto scenario = run_with_failures(
      workload, "EASY", {{10, 1000, 32}}, fault::RequeuePolicy::kRequeueHead);

  EXPECT_EQ(scenario.job(1).interruptions, 0);
  EXPECT_EQ(scenario.job(2).interruptions, 1);
  EXPECT_DOUBLE_EQ(scenario.job(1).started, 0.0);
}

TEST(FailureInjection, RequeueHeadRestartsBeforeLaterArrivals) {
  const auto workload = make_workload(
      64, 32,
      {batch_job(1, 0, 32, 100), batch_job(2, 0, 32, 100),
       batch_job(3, 1, 32, 10)});
  const auto scenario = run_with_failures(
      workload, "EASY", {{10, 1000, 32}}, fault::RequeuePolicy::kRequeueHead);
  // Job 2 (preempted) re-enters at the queue head: when job 1 releases its
  // processors at t=100, job 2 restarts first and job 3 waits for it.
  EXPECT_DOUBLE_EQ(scenario.job(2).started, 100.0);
  EXPECT_DOUBLE_EQ(scenario.job(3).started, 200.0);
  EXPECT_EQ(scenario.result.failure.requeues, 1u);
}

TEST(FailureInjection, RequeueTailReEarnsItsTurn) {
  const auto workload = make_workload(
      64, 32,
      {batch_job(1, 0, 32, 100), batch_job(2, 0, 32, 100),
       batch_job(3, 1, 32, 10)});
  const auto scenario = run_with_failures(
      workload, "EASY", {{10, 1000, 32}}, fault::RequeuePolicy::kRequeueTail);
  // Tail policy: the waiting job 3 goes first at t=100, job 2 after it.
  EXPECT_DOUBLE_EQ(scenario.job(3).started, 100.0);
  EXPECT_DOUBLE_EQ(scenario.job(2).started, 110.0);
}

TEST(FailureInjection, AbandonDropsThePartialRunAndCountsIt) {
  const auto workload = make_workload(
      64, 32,
      {batch_job(1, 0, 32, 100), batch_job(2, 0, 32, 100),
       batch_job(3, 1, 32, 10)});
  const auto scenario = run_with_failures(
      workload, "EASY", {{10, 1000, 32}}, fault::RequeuePolicy::kAbandon);

  EXPECT_EQ(scenario.result.completed, 2u);
  EXPECT_EQ(scenario.result.abandoned, 1u);
  const auto& abandoned = scenario.job(2);
  EXPECT_TRUE(abandoned.abandoned);
  EXPECT_DOUBLE_EQ(abandoned.finished, 10.0);
  EXPECT_DOUBLE_EQ(abandoned.run, 10.0);

  const auto& failure = scenario.result.failure;
  EXPECT_EQ(failure.abandoned, 1u);
  EXPECT_EQ(failure.requeues, 0u);
  EXPECT_DOUBLE_EQ(failure.lost_proc_seconds, 32.0 * 10);
  // The abandoned partial run is the only wasted work; jobs 1 and 3 complete.
  EXPECT_DOUBLE_EQ(failure.wasted_proc_seconds, 32.0 * 10);
  EXPECT_DOUBLE_EQ(failure.goodput_proc_seconds, 32.0 * 100 + 32.0 * 10);
}

TEST(FailureInjection, RetryCapForcesAbandonUnderRequeuePolicy) {
  // Retry budget of 2: the first preemption requeues as usual, the second
  // abandons the job even though the policy is requeue-head.  Without the
  // cap this job would be requeued forever under a harsh enough script.
  const auto workload = make_workload(320, 32, {batch_job(1, 0, 320, 100)});
  const auto scenario =
      run_with_failures(workload, "EASY", {{50, 60, 32}, {120, 130, 32}},
                        fault::RequeuePolicy::kRequeueHead, /*retry_cap=*/2);

  EXPECT_EQ(scenario.result.completed, 0u);
  EXPECT_EQ(scenario.result.abandoned, 1u);
  const auto& job = scenario.job(1);
  EXPECT_EQ(job.interruptions, 2);
  EXPECT_DOUBLE_EQ(job.started, 60.0);   // last (abandoned) attempt
  EXPECT_DOUBLE_EQ(job.finished, 120.0);

  const auto& failure = scenario.result.failure;
  EXPECT_EQ(failure.outages, 2u);
  EXPECT_EQ(failure.interruptions, 2u);
  EXPECT_EQ(failure.requeues, 1u);
  EXPECT_EQ(failure.abandoned, 1u);
  // First partial run 0..50 plus the abandoned attempt 60..120: all wasted,
  // nothing double-counted, zero goodput.
  EXPECT_DOUBLE_EQ(failure.lost_proc_seconds, 320.0 * 50 + 320.0 * 60);
  EXPECT_DOUBLE_EQ(failure.wasted_proc_seconds, 320.0 * 50 + 320.0 * 60);
  EXPECT_DOUBLE_EQ(failure.goodput_proc_seconds, 0.0);
}

TEST(FailureInjection, FreePoolAbsorbsOutagesWithoutPreemption) {
  // 288 of 320 processors are idle; losing 64 must not touch the running job.
  const auto workload = make_workload(320, 32, {batch_job(1, 0, 32, 100)});
  const auto scenario = run_with_failures(
      workload, "EASY", {{50, 60, 64}}, fault::RequeuePolicy::kRequeueHead);
  EXPECT_EQ(scenario.result.failure.outages, 1u);
  EXPECT_EQ(scenario.result.failure.interruptions, 0u);
  EXPECT_DOUBLE_EQ(scenario.job(1).started, 0.0);
  EXPECT_DOUBLE_EQ(scenario.job(1).finished, 100.0);
}

TEST(FailureInjection, StochasticFailuresAreBitDeterministic) {
  workload::GeneratorConfig config;
  config.num_jobs = 200;
  config.seed = 11;
  config.p_small = 0.5;
  config.target_load = 0.9;
  const auto workload = workload::generate(config);

  core::AlgorithmOptions options;
  options.engine.failure.enabled = true;
  options.engine.failure.seed = 42;
  options.engine.failure.mtbf = 3600;
  options.engine.failure.mttr = 900;
  options.engine.failure.max_nodes = 2;

  const auto a = run_scenario(workload, "EASY", options);
  const auto b = run_scenario(workload, "EASY", options);
  ASSERT_GT(a.result.failure.outages, 0u);  // the model actually fired
  EXPECT_EQ(a.result.failure.outages, b.result.failure.outages);
  EXPECT_EQ(a.result.failure.interruptions, b.result.failure.interruptions);
  EXPECT_DOUBLE_EQ(a.result.failure.lost_proc_seconds,
                   b.result.failure.lost_proc_seconds);
  EXPECT_DOUBLE_EQ(a.result.utilization, b.result.utilization);
  for (const auto& [id, job] : a.by_id) {
    EXPECT_DOUBLE_EQ(job.started, b.job(id).started) << "job " << id;
    EXPECT_DOUBLE_EQ(job.finished, b.job(id).finished) << "job " << id;
  }
}

TEST(FailureInjection, DisabledModelLeavesResultsUntouched) {
  workload::GeneratorConfig config;
  config.num_jobs = 150;
  config.seed = 3;
  config.target_load = 0.85;
  const auto workload = workload::generate(config);

  const auto baseline = run_scenario(workload, "Delayed-LOS");
  core::AlgorithmOptions options;
  options.engine.failure.enabled = false;  // explicit, with non-default knobs below
  options.engine.failure.seed = 999;
  options.engine.failure.mtbf = 1;
  options.engine.requeue = fault::RequeuePolicy::kAbandon;
  const auto with_config = run_scenario(workload, "Delayed-LOS", options);

  EXPECT_DOUBLE_EQ(baseline.result.mean_wait, with_config.result.mean_wait);
  EXPECT_DOUBLE_EQ(baseline.result.utilization,
                   with_config.result.utilization);
  EXPECT_EQ(with_config.result.failure.outages, 0u);
  for (const auto& [id, job] : baseline.by_id) {
    EXPECT_DOUBLE_EQ(job.started, with_config.job(id).started);
    EXPECT_DOUBLE_EQ(job.finished, with_config.job(id).finished);
  }
}

struct StormCase {
  const char* name;
  bool dedicated;
  bool elastic;
};

std::ostream& operator<<(std::ostream& out, const StormCase& c) {
  return out << c.name;
}

class FailureStorm : public ::testing::TestWithParam<StormCase> {};

TEST_P(FailureStorm, EveryPolicySurvivesADownUpStormUnderParanoia) {
  const StormCase& param = GetParam();
  workload::GeneratorConfig config;
  config.num_jobs = 120;
  config.seed = 23;
  config.p_small = 0.5;
  config.target_load = 0.9;
  if (param.dedicated) config.p_dedicated = 0.3;
  if (param.elastic) {
    config.p_extend = 0.2;
    config.p_reduce = 0.1;
  }
  const auto workload = workload::generate(config);

  for (const auto policy :
       {fault::RequeuePolicy::kRequeueHead, fault::RequeuePolicy::kRequeueTail,
        fault::RequeuePolicy::kAbandon}) {
    core::Algorithm algorithm = core::make_algorithm(param.name);
    ASSERT_NE(algorithm.policy, nullptr);
    sched::EngineConfig engine;
    engine.machine_procs = workload.machine_procs;
    engine.granularity = workload.granularity;
    engine.process_eccs = algorithm.process_eccs;
    engine.paranoid = true;
    engine.failure.enabled = true;
    engine.failure.seed = 5;
    engine.failure.mtbf = 2 * 3600;
    engine.failure.mttr = 1800;
    engine.failure.min_nodes = 1;
    engine.failure.max_nodes = 3;
    engine.requeue = policy;
    const auto result = sched::simulate(engine, *algorithm.policy, workload);
    EXPECT_EQ(result.completed + result.killed + result.abandoned, 120u)
        << param.name << " requeue=" << fault::to_string(policy);
    if (policy != fault::RequeuePolicy::kAbandon)
      EXPECT_EQ(result.abandoned, 0u) << param.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableThree, FailureStorm,
    ::testing::Values(StormCase{"EASY", false, false},
                      StormCase{"EASY-D", true, false},
                      StormCase{"EASY-E", false, true},
                      StormCase{"EASY-DE", true, true},
                      StormCase{"LOS", false, false},
                      StormCase{"LOS-D", true, false},
                      StormCase{"LOS-E", false, true},
                      StormCase{"LOS-DE", true, true},
                      StormCase{"Delayed-LOS", false, false},
                      StormCase{"Delayed-LOS-E", false, true},
                      StormCase{"Hybrid-LOS", true, false},
                      StormCase{"Hybrid-LOS-E", true, true},
                      StormCase{"FCFS", false, false},
                      StormCase{"CONS", false, false},
                      StormCase{"Adaptive", false, false}),
    [](const ::testing::TestParamInfo<StormCase>& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(FailureInjection, ScriptedStormWithRapidCyclesStaysConsistent) {
  // 30 back-to-back outages, 50 s down each, under paranoid checking.
  std::vector<fault::Outage> script;
  for (int i = 0; i < 30; ++i) {
    const double down = 100.0 * i + 5.0;
    script.push_back({down, down + 50.0, 64});
  }
  workload::GeneratorConfig config;
  config.num_jobs = 80;
  config.seed = 9;
  config.target_load = 0.8;
  const auto workload = workload::generate(config);
  const auto scenario = run_with_failures(workload, "Delayed-LOS", script,
                                          fault::RequeuePolicy::kRequeueHead);
  EXPECT_EQ(scenario.result.completed + scenario.result.killed, 80u);
  EXPECT_GT(scenario.result.failure.outages, 0u);
}

}  // namespace
}  // namespace es
