// Shared test utilities: terse workload builders and a scenario harness that
// runs a hand-crafted workload under a named algorithm and exposes per-job
// outcomes for assertions.
#pragma once

#include <algorithm>
#include <map>
#include <utility>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "sched/metrics.hpp"
#include "workload/job.hpp"

namespace es::testing {

inline workload::Job batch_job(workload::JobId id, double arr, int num,
                               double dur, double actual = -1) {
  workload::Job job;
  job.id = id;
  job.arr = arr;
  job.num = num;
  job.dur = dur;
  job.actual = actual;
  return job;
}

inline workload::Job dedicated_job(workload::JobId id, double arr, int num,
                                   double dur, double start) {
  workload::Job job = batch_job(id, arr, num, dur);
  job.type = workload::JobType::kDedicated;
  job.start = start;
  return job;
}

inline workload::Workload make_workload(int procs, int granularity,
                                        std::vector<workload::Job> jobs,
                                        std::vector<workload::Ecc> eccs = {}) {
  workload::Workload workload;
  workload.machine_procs = procs;
  workload.granularity = granularity;
  workload.jobs = std::move(jobs);
  workload.eccs = std::move(eccs);
  workload.normalize();
  return workload;
}

/// Result of a scenario run with per-job lookup.
struct Scenario {
  sched::SimulationResult result;
  std::map<workload::JobId, sched::JobOutcome> by_id;

  const sched::JobOutcome& job(workload::JobId id) const {
    return by_id.at(id);
  }
  double start_of(workload::JobId id) const { return job(id).started; }
  double end_of(workload::JobId id) const { return job(id).finished; }
};

inline Scenario run_scenario(const workload::Workload& workload,
                             const std::string& algorithm,
                             core::AlgorithmOptions options = {}) {
  Scenario scenario;
  scenario.result = exp::run_workload(workload, algorithm, options);
  for (const sched::JobOutcome& outcome : scenario.result.jobs)
    scenario.by_id[outcome.id] = outcome;
  return scenario;
}

/// Verifies the fundamental resource invariant from the per-job outcomes:
/// at no instant does the sum of allocated processors exceed the machine.
/// Returns the peak concurrent allocation.
inline int peak_allocation(const sched::SimulationResult& result) {
  // Sweep events: +procs at start, -procs at finish (finish before start at
  // the same instant, matching the engine's event ordering).
  std::vector<std::pair<double, int>> deltas;
  deltas.reserve(result.jobs.size() * 2);
  for (const auto& job : result.jobs) {
    deltas.emplace_back(job.started, job.procs);
    deltas.emplace_back(job.finished, -job.procs);
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // releases first
            });
  int current = 0;
  int peak = 0;
  for (const auto& [time, delta] : deltas) {
    current += delta;
    peak = std::max(peak, current);
  }
  return peak;
}

}  // namespace es::testing
