// Crash-safe file writing: success path, producer abort (simulated partial
// write), and I/O failure must all leave either the previous file version or
// the complete new one — never a torn write, never a stray temp file.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/atomic_file.hpp"

namespace es::util {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "atomic_file_test.csv";
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(AtomicFileTest, WritesContentAndRemovesTheTemp) {
  EXPECT_TRUE(write_file_atomic(path_, [](std::ostream& out) {
    out << "a,b\n1,2\n";
    return true;
  }));
  EXPECT_EQ(read_all(path_), "a,b\n1,2\n");
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, OverwritesAtomically) {
  ASSERT_TRUE(write_file_atomic(path_, [](std::ostream& out) {
    out << "old";
    return true;
  }));
  EXPECT_TRUE(write_file_atomic(path_, [](std::ostream& out) {
    out << "new content";
    return true;
  }));
  EXPECT_EQ(read_all(path_), "new content");
}

TEST_F(AtomicFileTest, AbortedProducerKeepsThePreviousVersion) {
  ASSERT_TRUE(write_file_atomic(path_, [](std::ostream& out) {
    out << "complete previous version";
    return true;
  }));
  // Simulated crash mid-write: some rows were emitted, then the producer
  // fails.  The target must still hold the previous complete version.
  EXPECT_FALSE(write_file_atomic(path_, [](std::ostream& out) {
    out << "partial";
    return false;
  }));
  EXPECT_EQ(read_all(path_), "complete previous version");
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, AbortedProducerLeavesNoFileWhenNoneExisted) {
  EXPECT_FALSE(write_file_atomic(path_, [](std::ostream& out) {
    out << "partial";
    return false;
  }));
  EXPECT_FALSE(exists(path_));
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, SuccessfulWriteIssuesBothFsyncs) {
  // Durability contract: data fsync before the rename, directory fsync
  // after.  The counter proves the path is exercised, not silently skipped.
  const std::uint64_t before = atomic_file_fsyncs();
  ASSERT_TRUE(write_file_atomic(path_, [](std::ostream& out) {
    out << "durable";
    return true;
  }));
  EXPECT_GE(atomic_file_fsyncs(), before + 2);
}

TEST_F(AtomicFileTest, AbortedProducerSkipsTheDirectoryFsync) {
  const std::uint64_t before = atomic_file_fsyncs();
  EXPECT_FALSE(write_file_atomic(path_, [](std::ostream& out) {
    out << "partial";
    return false;
  }));
  // No rename happened, so at most the (discarded) temp file was synced;
  // the directory fsync that commits a rename must not have run twice.
  EXPECT_LE(atomic_file_fsyncs(), before + 1);
}

TEST_F(AtomicFileTest, UnwritableDirectoryFails) {
  const std::string bogus =
      ::testing::TempDir() + "no-such-dir-xyz/out.csv";
  EXPECT_FALSE(write_file_atomic(bogus, [](std::ostream& out) {
    out << "data";
    return true;
  }));
}

}  // namespace
}  // namespace es::util
