#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace es::util {
namespace {

TEST(Cli, ParsesSeparatedAndInlineValues) {
  int count = 0;
  double rate = 0;
  std::string name;
  CliParser cli("test");
  cli.add_option("count", "", &count);
  cli.add_option("rate", "", &rate);
  cli.add_option("name", "", &name);
  const char* argv[] = {"prog", "--count", "5", "--rate=0.25", "--name", "x"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(rate, 0.25);
  EXPECT_EQ(name, "x");
}

TEST(Cli, BooleanFlagForms) {
  bool flag = false;
  CliParser cli("test");
  cli.add_flag("verbose", "", &flag);
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(flag);

  bool flag2 = true;
  CliParser cli2("test");
  cli2.add_flag("verbose", "", &flag2);
  const char* argv2[] = {"prog", "--verbose=false"};
  ASSERT_TRUE(cli2.parse(2, argv2));
  EXPECT_FALSE(flag2);
}

TEST(Cli, UnknownOptionFails) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, MissingValueFails) {
  int count = 0;
  CliParser cli("test");
  cli.add_option("count", "", &count);
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, MalformedNumberFails) {
  int count = 0;
  CliParser cli("test");
  cli.add_option("count", "", &count);
  const char* argv[] = {"prog", "--count", "12abc"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli("test");
  const char* argv[] = {"prog", "input.swf", "more"};
  ASSERT_TRUE(cli.parse(3, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.swf");
}

TEST(Cli, HelpListsOptions) {
  int count = 0;
  CliParser cli("my tool");
  cli.add_option("count", "number of things", &count);
  const std::string text = cli.help("prog");
  EXPECT_NE(text.find("my tool"), std::string::npos);
  EXPECT_NE(text.find("--count"), std::string::npos);
  EXPECT_NE(text.find("number of things"), std::string::npos);
}

TEST(Cli, UnsignedLongLongOption) {
  unsigned long long seed = 0;
  CliParser cli("test");
  cli.add_option("seed", "", &seed);
  const char* argv[] = {"prog", "--seed", "18446744073709551615"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(seed, 18446744073709551615ull);
}

}  // namespace
}  // namespace es::util
