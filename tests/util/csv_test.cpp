#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace es::util {
namespace {

TEST(Csv, WritesHeaderOnceBeforeFirstRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.set_header({"a", "b"});
  csv.cell(1).cell(2).end_row();
  csv.cell(3).cell(4).end_row();
  EXPECT_EQ(out.str(), "a,b\n1,2\n3,4\n");
}

TEST(Csv, NoHeaderMode) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.cell("x").cell(1.5).end_row();
  EXPECT_EQ(out.str(), "x,1.5\n");
}

TEST(Csv, EscapesCommasQuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, EscapedCellsRoundTripStructure) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.cell("a,b").cell("c").end_row();
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

TEST(Csv, NumericFormatting) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.cell(3.14159).cell(static_cast<long long>(-7)).cell(0.0).end_row();
  EXPECT_EQ(out.str(), "3.14159,-7,0\n");
}

TEST(Csv, CountsRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  EXPECT_EQ(csv.rows_written(), 0u);
  csv.cell(1).end_row();
  csv.cell(2).end_row();
  EXPECT_EQ(csv.rows_written(), 2u);
}

}  // namespace
}  // namespace es::util
