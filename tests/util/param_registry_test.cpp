#include "util/param_registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace es::util {
namespace {

enum class Mode { kFast = 0, kSafe = 1 };

/// A small config struct standing in for the engine's: one knob per kind.
struct Knobs {
  bool flag = true;
  int count = 7;
  std::uint64_t big = 42;
  double ratio = 0.5;
  std::string label = "default";
  Mode mode = Mode::kFast;
};

void register_knobs(ParamRegistry& registry, Knobs& knobs) {
  registry.add_bool("k.flag", &knobs.flag, "a flag");
  registry.add_int("k.count", &knobs.count, "a count").range(0, 100).alias(
      "k.n");
  registry.add_uint64("k.big", &knobs.big, "a big count");
  registry.add_double("k.ratio", &knobs.ratio, "a ratio").range(0, 1);
  registry.add_string("k.label", &knobs.label, "a label");
  registry.add_enum("k.mode", &knobs.mode,
                    {{"fast", 0}, {"safe", 1}}, "a mode");
}

TEST(ParamRegistry, SetWritesThroughToBoundStorage) {
  Knobs knobs;
  ParamRegistry registry;
  register_knobs(registry, knobs);

  registry.set("k.flag", "false");
  registry.set("k.count", "13");
  registry.set("k.big", "9000000000");
  registry.set("k.ratio", "0.25");
  registry.set("k.label", "hello world");
  registry.set("k.mode", "SAFE");  // spellings are case-insensitive

  EXPECT_FALSE(knobs.flag);
  EXPECT_EQ(knobs.count, 13);
  EXPECT_EQ(knobs.big, 9000000000ull);
  EXPECT_DOUBLE_EQ(knobs.ratio, 0.25);
  EXPECT_EQ(knobs.label, "hello world");
  EXPECT_EQ(knobs.mode, Mode::kSafe);

  EXPECT_EQ(registry.get("k.count"), "13");
  EXPECT_EQ(registry.get("k.mode"), "safe");
  EXPECT_EQ(registry.get("k.label"), "\"hello world\"");
}

TEST(ParamRegistry, BoolAcceptsTheUsualSpellings) {
  Knobs knobs;
  ParamRegistry registry;
  register_knobs(registry, knobs);
  for (const char* spelling : {"true", "1", "yes", "on", "TRUE"}) {
    registry.set("k.flag", spelling);
    EXPECT_TRUE(knobs.flag) << spelling;
    registry.set("k.flag", "off");
    EXPECT_FALSE(knobs.flag);
  }
  EXPECT_THROW(registry.set("k.flag", "maybe"), ConfigError);
}

TEST(ParamRegistry, RangeViolationNamesTheField) {
  Knobs knobs;
  ParamRegistry registry;
  register_knobs(registry, knobs);
  try {
    registry.set("k.count", "101");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_EQ(error.field(), "k.count");
    EXPECT_NE(std::string(error.what()).find("k.count"), std::string::npos);
  }
  EXPECT_EQ(knobs.count, 7) << "failed assignment must not write through";
}

TEST(ParamRegistry, AliasResolvesToTheSameStorage) {
  Knobs knobs;
  ParamRegistry registry;
  register_knobs(registry, knobs);
  EXPECT_TRUE(registry.has("k.n"));
  registry.set("k.n", "21");
  EXPECT_EQ(knobs.count, 21);
  EXPECT_EQ(registry.get("k.n"), registry.get("k.count"));
}

TEST(ParamRegistry, UnknownKeySuggestsTheNearestName) {
  Knobs knobs;
  ParamRegistry registry;
  register_knobs(registry, knobs);
  try {
    registry.set("k.cout", "3");  // typo for k.count
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("k.count"), std::string::npos)
        << error.what();
  }
}

TEST(ParamRegistry, EnumRejectsUnknownSpellingListingChoices) {
  Knobs knobs;
  ParamRegistry registry;
  register_knobs(registry, knobs);
  try {
    registry.set("k.mode", "turbo");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("fast"), std::string::npos) << what;
    EXPECT_NE(what.find("safe"), std::string::npos) << what;
  }
}

TEST(ParamRegistry, LoadTextSectionsCommentsQuotesAndLastWriteWins) {
  Knobs knobs;
  ParamRegistry registry;
  register_knobs(registry, knobs);
  registry.load_text(
      "# leading comment\n"
      "k.count = 1\n"
      "[k]\n"
      "count = 2      # section prefix + trailing comment\n"
      "label = \"with # hash and = sign\"\n"
      "ratio = 0.75\n",
      "test");
  EXPECT_EQ(knobs.count, 2) << "later lines must win";
  EXPECT_EQ(knobs.label, "with # hash and = sign");
  EXPECT_DOUBLE_EQ(knobs.ratio, 0.75);
}

TEST(ParamRegistry, LoadTextReportsUnknownKeyWithOrigin) {
  Knobs knobs;
  ParamRegistry registry;
  register_knobs(registry, knobs);
  try {
    registry.load_text("nope = 1\n", "myfile.conf");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("myfile.conf"),
              std::string::npos)
        << error.what();
  }
}

TEST(ParamRegistry, FinalizeRunsRulesAndNamesTheOffendingField) {
  Knobs knobs;
  ParamRegistry registry;
  register_knobs(registry, knobs);
  registry.add_rule("k.ratio", [&knobs]() -> std::string {
    if (knobs.flag && knobs.ratio > 0.9) return "ratio too high with flag";
    return "";
  });
  EXPECT_NO_THROW(registry.finalize());
  knobs.ratio = 0.95;
  try {
    registry.finalize();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_EQ(error.field(), "k.ratio");
  }
}

TEST(ParamRegistry, FinalizeRechecksRangesOnMutatedStorage) {
  // CLI overlays write to the structs directly; finalize() must catch a
  // value that never went through set().
  Knobs knobs;
  ParamRegistry registry;
  register_knobs(registry, knobs);
  knobs.count = -5;
  EXPECT_THROW(registry.finalize(), ConfigError);
}

TEST(ParamRegistry, DynamicPrefixRoutesSuffixAndDumps) {
  Knobs knobs;
  ParamRegistry registry;
  register_knobs(registry, knobs);
  std::vector<std::pair<std::string, std::string>> seen;
  registry.add_dynamic(
      "dyn.",
      [&seen](const std::string& suffix, const std::string& value) {
        seen.emplace_back(suffix, value);
      },
      [&seen]() {
        std::vector<std::pair<std::string, std::string>> out;
        for (const auto& [suffix, value] : seen)
          out.emplace_back("dyn." + suffix, value);
        return out;
      });
  registry.set("dyn.alpha.weight", "3");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, "alpha.weight");
  EXPECT_EQ(seen[0].second, "3");
  EXPECT_NE(registry.dump_config().find("dyn.alpha.weight"),
            std::string::npos);
}

TEST(ParamRegistry, DumpConfigIsLoadableAndStable) {
  Knobs knobs;
  ParamRegistry registry;
  register_knobs(registry, knobs);
  registry.set("k.count", "33");
  registry.set("k.label", "spaced value");
  const std::string dump = registry.dump_config();

  Knobs other;
  ParamRegistry second;
  register_knobs(second, other);
  second.load_text(dump, "dump");
  EXPECT_EQ(other.count, 33);
  EXPECT_EQ(other.label, "spaced value");
  EXPECT_EQ(second.dump_config(), dump) << "dump -> load -> dump must agree";
}

TEST(ParamRegistry, FingerprintSkipsNoFingerprintParams) {
  Knobs knobs;
  ParamRegistry registry;
  registry.add_int("k.count", &knobs.count, "steers behaviour");
  registry.add_bool("k.flag", &knobs.flag, "observability only")
      .no_fingerprint();
  std::string fingerprint;
  registry.fingerprint_into(fingerprint);
  EXPECT_NE(fingerprint.find("k.count"), std::string::npos);
  EXPECT_EQ(fingerprint.find("k.flag"), std::string::npos);
}

TEST(ParamRegistry, DefaultValueCapturedAtRegistration) {
  Knobs knobs;
  knobs.count = 55;
  ParamRegistry registry;
  register_knobs(registry, knobs);
  registry.set("k.count", "66");
  for (const ParamRegistry::Param& param : registry.params()) {
    if (param.name() == "k.count") {
      EXPECT_EQ(param.default_value(), "55");
      EXPECT_EQ(param.current_value(), "66");
    }
  }
}

}  // namespace
}  // namespace es::util
