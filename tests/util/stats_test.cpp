#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace es::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, left, right;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 20);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs adopts rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  RunningStats stats;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) stats.add(x);
  EXPECT_NEAR(stats.mean(), offset + 2, 1e-3);
  EXPECT_NEAR(stats.variance(), 1.0, 1e-6);
}

TEST(Samples, QuantilesOnKnownData) {
  Samples samples;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) samples.add(x);
  EXPECT_DOUBLE_EQ(samples.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(samples.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(samples.median(), 3.0);
  EXPECT_DOUBLE_EQ(samples.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(samples.mean(), 3.0);
}

TEST(Samples, QuantileInterpolates) {
  Samples samples;
  samples.add(0.0);
  samples.add(10.0);
  EXPECT_DOUBLE_EQ(samples.quantile(0.35), 3.5);
}

TEST(Samples, EmptyReturnsZero) {
  Samples samples;
  EXPECT_EQ(samples.mean(), 0.0);
  EXPECT_EQ(samples.quantile(0.5), 0.0);
}

TEST(Samples, AddAfterQuantileStillCorrect) {
  Samples samples;
  samples.add(3.0);
  samples.add(1.0);
  EXPECT_DOUBLE_EQ(samples.median(), 2.0);
  samples.add(2.0);
  EXPECT_DOUBLE_EQ(samples.median(), 2.0);
  samples.add(100.0);
  EXPECT_DOUBLE_EQ(samples.quantile(1.0), 100.0);
}

TEST(Improvement, LowerBetterMatchesPaperConvention) {
  // Paper Table IV style: candidate wait 68.12 vs baseline 100 -> 31.88%.
  EXPECT_NEAR(improvement_lower_better(100.0, 68.12), 31.88, 1e-9);
  EXPECT_DOUBLE_EQ(improvement_lower_better(100.0, 100.0), 0.0);
  EXPECT_LT(improvement_lower_better(100.0, 120.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_lower_better(0.0, 5.0), 0.0);
}

TEST(Improvement, HigherBetterMatchesPaperConvention) {
  // Utilization 0.78 vs 0.75 -> 4%.
  EXPECT_NEAR(improvement_higher_better(0.75, 0.78), 4.0, 1e-9);
  EXPECT_LT(improvement_higher_better(0.80, 0.75), 0.0);
  EXPECT_DOUBLE_EQ(improvement_higher_better(0.0, 0.5), 0.0);
}

}  // namespace
}  // namespace es::util
