#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace es::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.for_each(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, CompletionPublishesBodyWrites) {
  // for_each establishes happens-before on return: plain (non-atomic)
  // writes from the bodies must be visible to the caller.
  ThreadPool pool(4);
  std::vector<int> out(5000, 0);
  pool.for_each(out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i) + 1;
  });
  long long sum = std::accumulate(out.begin(), out.end(), 0LL);
  EXPECT_EQ(sum, 5000LL * 5001 / 2);
}

TEST(ThreadPool, ZeroAndSingleCountsWork) {
  ThreadPool pool(2);
  int calls = 0;
  pool.for_each(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.for_each(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, WorkerCountClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1);
  int calls = 0;
  pool.for_each(3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(ThreadPool, LowestIndexExceptionWinsAndPoolSurvives) {
  ThreadPool pool(4);
  // Several indices throw; the contract picks the lowest one, whatever the
  // thread interleaving, so the error a campaign reports is deterministic.
  try {
    pool.for_each(100, [&](std::size_t i) {
      if (i % 10 == 3) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected the body's exception to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom 3");
  }
  // Remaining indices still ran and the pool is reusable afterwards.
  std::atomic<int> calls{0};
  pool.for_each(50, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 50);
}

TEST(ThreadPool, ShutdownJoinsIdleWorkers) {
  // Construction + destruction with no work must not hang or leak threads
  // (the destructor joins).  Run several cycles to shake out shutdown races.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    if (round % 2 == 0) {
      std::atomic<int> calls{0};
      pool.for_each(7, [&](std::size_t) { calls.fetch_add(1); });
      EXPECT_EQ(calls.load(), 7);
    }
  }
}

TEST(ThreadPool, ReentrantForEachRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(6 * 4);
  pool.for_each(6, [&](std::size_t outer) {
    // A body calling back into the pool must not wait on the fixed workers
    // it is occupying; the re-entrant call runs inline and serially.
    pool.for_each(4, [&](std::size_t inner) {
      hits[outer * 4 + inner].fetch_add(1);
    });
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(GlobalParallelism, DefaultIsSerial) {
  EXPECT_EQ(global_parallelism(), 1);
  std::vector<int> order;
  parallel_for_each(4, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // serial loop: in-order, no race
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(GlobalParallelism, SetAndTearDown) {
  set_global_parallelism(3);
  EXPECT_EQ(global_parallelism(), 3);
  std::vector<std::atomic<int>> hits(64);
  parallel_for_each(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
  set_global_parallelism(1);
  EXPECT_EQ(global_parallelism(), 1);
}

TEST(GlobalParallelism, HardwareParallelismIsAtLeastOne) {
  EXPECT_GE(hardware_parallelism(), 1);
}

}  // namespace
}  // namespace es::util
