#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace es::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, ZeroSeedIsWellMixed) {
  Rng rng(0);
  // SplitMix seeding must not produce a degenerate all-zero state.
  EXPECT_NE(rng.next_u64(), 0u);
  EXPECT_NE(rng.next_u64(), rng.next_u64());
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 9.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 9.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.uniform_int(1, 6);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 6);
    saw_lo |= (x == 1);
    saw_hi |= (x == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntUnbiased) {
  Rng rng(19);
  int counts[6] = {};
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, 5)];
  for (int c : counts) EXPECT_NEAR(c, n / 6.0, 5 * std::sqrt(n / 6.0));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(31);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(250.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(37);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

struct GammaCase {
  double alpha, beta;
};

class GammaMoments : public ::testing::TestWithParam<GammaCase> {};

TEST_P(GammaMoments, MeanAndVarianceMatchTheory) {
  const auto [alpha, beta] = GetParam();
  Rng rng(41 + static_cast<std::uint64_t>(alpha * 100));
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(alpha, beta);
    EXPECT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, alpha * beta, 0.03 * alpha * beta + 0.01);
  EXPECT_NEAR(var, alpha * beta * beta, 0.08 * alpha * beta * beta + 0.01);
}

// Includes the paper's Table I/II parameters: runtime Gammas (4.2, 0.94) and
// (312, 0.03), arrival Gammas (13.2303, 0.5101) and (15.1737, 0.9631), plus
// a sub-1 shape exercising the boost path.
INSTANTIATE_TEST_SUITE_P(PaperParameters, GammaMoments,
                         ::testing::Values(GammaCase{4.2, 0.94},
                                           GammaCase{312.0, 0.03},
                                           GammaCase{13.2303, 0.5101},
                                           GammaCase{15.1737, 0.9631},
                                           GammaCase{0.5, 2.0},
                                           GammaCase{1.0, 1.0}));

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng child_a1 = parent1.split();
  Rng child_b1 = parent1.split();
  Rng child_a2 = parent2.split();
  // Same parent seed -> same first child stream.
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(child_a1.next_u64(), child_a2.next_u64());
  // Sibling children differ.
  Rng child_a3 = Rng(99).split();
  int equal = 0;
  for (int i = 0; i < 32; ++i)
    if (child_b1.next_u64() == child_a3.next_u64()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(RngState, SaveLoadContinuesTheExactRawSequence) {
  Rng a(321);
  for (int i = 0; i < 57; ++i) (void)a.next_u64();
  Rng b;
  b.load(a.save());
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngState, FreshGeneratorHasNoCachedDeviate) {
  EXPECT_FALSE(Rng(7).save().has_cached_normal);
}

TEST(RngState, CachedNormalSpareSurvivesSaveLoad) {
  // normal() produces Marsaglia pairs and caches the spare: after an odd
  // number of draws the spare is pending, and a restore that dropped it
  // would diverge on the very next normal() call.
  Rng a(17);
  (void)a.normal();
  const RngState state = a.save();
  EXPECT_TRUE(state.has_cached_normal);
  Rng b;
  b.load(state);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.normal(), b.normal());
}

TEST(RngState, MixedDistributionStreamsContinueExactly) {
  // gamma() draws normals internally, so this also crosses the cached-pair
  // boundary at save time.
  Rng a(99);
  for (int i = 0; i < 11; ++i) {
    (void)a.gamma(4.2, 0.94);
    (void)a.exponential(100.0);
    (void)a.normal();
  }
  Rng b;
  b.load(a.save());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.gamma(4.2, 0.94), b.gamma(4.2, 0.94));
    EXPECT_EQ(a.exponential(3.0), b.exponential(3.0));
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    EXPECT_EQ(a.normal(), b.normal());
  }
}

TEST(RngState, RoundTripsThroughEquality) {
  Rng a(5);
  (void)a.normal();
  const RngState state = a.save();
  Rng b;
  b.load(state);
  EXPECT_EQ(b.save(), state);
}

TEST(HyperGamma, MixesTheTwoComponents) {
  Rng rng(55);
  // Components with well-separated means.
  const HyperGamma hg{2.0, 1.0, 200.0, 1.0};
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += hg.sample(rng, 0.75);
  // mean = 0.75*2 + 0.25*200 = 51.5
  EXPECT_NEAR(sum / n, hg.mean(0.75), 2.5);
}

TEST(HyperGamma, DegenerateProbabilitiesPickOneComponent) {
  Rng rng(60);
  const HyperGamma hg{2.0, 1.0, 200.0, 1.0};
  double sum0 = 0, sum1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum1 += hg.sample(rng, 1.0);
  for (int i = 0; i < n; ++i) sum0 += hg.sample(rng, 0.0);
  EXPECT_NEAR(sum1 / n, 2.0, 0.2);
  EXPECT_NEAR(sum0 / n, 200.0, 2.5);
}

TEST(TwoStageUniform, PaperSizesAreNodeCardMultiples) {
  Rng rng(70);
  const TwoStageUniform sizes{};  // paper defaults: {1..3} / {4..10} x 32
  for (int i = 0; i < 5000; ++i) {
    const int s = sizes.sample(rng, 0.5);
    EXPECT_EQ(s % 32, 0);
    EXPECT_GE(s, 32);
    EXPECT_LE(s, 320);
  }
}

TEST(TwoStageUniform, SmallFractionTracksProbability) {
  Rng rng(71);
  const TwoStageUniform sizes{};
  for (double p_small : {0.2, 0.5, 0.8}) {
    int small = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
      if (sizes.sample(rng, p_small) <= 96) ++small;
    EXPECT_NEAR(small / static_cast<double>(n), p_small, 0.02);
  }
}

TEST(TwoStageUniform, MeanMatchesPaperReportedAverages) {
  // The paper reports sampled n-bar = 180.84 (P_S=.2), 139.35 (P_S=.5),
  // 89.72 (P_S=.8); the model means are 192, 144, 96 — sampled means must
  // match the model, and sit in the paper's ballpark.
  const TwoStageUniform sizes{};
  EXPECT_NEAR(sizes.mean(0.2), 192.0, 0.01);
  EXPECT_NEAR(sizes.mean(0.5), 144.0, 0.01);
  EXPECT_NEAR(sizes.mean(0.8), 96.0, 0.01);
  Rng rng(72);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += sizes.sample(rng, 0.2);
  EXPECT_NEAR(sum / n, sizes.mean(0.2), 1.0);
}

}  // namespace
}  // namespace es::util
