#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace es::util {
namespace {

TEST(AsciiTable, RendersTitleHeaderAndRows) {
  AsciiTable table("Demo");
  table.set_columns({"name", "value"});
  table.cell("alpha").cell(1.5, 1).end_row();
  table.cell("b").cell(22.0, 1).end_row();
  std::ostringstream out;
  table.render(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== Demo =="), std::string::npos);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22.0"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(AsciiTable, ColumnsAlignAcrossRows) {
  AsciiTable table("T");
  table.set_columns({"x", "metric"});
  table.cell("a").cell(1.0, 2).end_row();
  table.cell("bbbb").cell(100.25, 2).end_row();
  std::ostringstream out;
  table.render(out);
  std::istringstream lines(out.str());
  std::string line;
  std::getline(lines, line);  // title
  std::getline(lines, line);  // header
  const std::size_t header_len = line.size();
  std::getline(lines, line);  // separator
  std::getline(lines, line);  // row 1
  EXPECT_EQ(line.size(), header_len);
  std::getline(lines, line);  // row 2
  EXPECT_EQ(line.size(), header_len);
}

TEST(AsciiTable, NumericPrecision) {
  AsciiTable table("P");
  table.cell(3.14159, 3).cell(static_cast<long long>(42)).end_row();
  std::ostringstream out;
  table.render(out);
  EXPECT_NE(out.str().find("3.142"), std::string::npos);
  EXPECT_NE(out.str().find("42"), std::string::npos);
}

TEST(AsciiTable, RowCount) {
  AsciiTable table("C");
  EXPECT_EQ(table.row_count(), 0u);
  table.cell("r").end_row();
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(FormatDuration, HumanReadableBuckets) {
  EXPECT_EQ(format_duration(42), "42s");
  EXPECT_EQ(format_duration(90), "1m30s");
  EXPECT_EQ(format_duration(3600), "1h00m");
  EXPECT_EQ(format_duration(7260), "2h01m");
  EXPECT_EQ(format_duration(-90), "-1m30s");
}

}  // namespace
}  // namespace es::util
