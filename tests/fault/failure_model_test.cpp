// FailureModel: determinism, scripted replay, granularity alignment and
// window clamping of the outage sequence.
#include <gtest/gtest.h>

#include <vector>

#include "fault/failure_model.hpp"

namespace es::fault {
namespace {

constexpr int kProcs = 320;
constexpr int kGranularity = 32;

FailureModelConfig stochastic_config(std::uint64_t seed = 7) {
  FailureModelConfig config;
  config.enabled = true;
  config.seed = seed;
  config.mtbf = 3600;
  config.mttr = 900;
  config.min_nodes = 1;
  config.max_nodes = 4;
  return config;
}

std::vector<Outage> draw(FailureModel& model, int count, sim::Time from = 0) {
  std::vector<Outage> outages;
  sim::Time cursor = from;
  for (int i = 0; i < count; ++i) {
    Outage outage;
    EXPECT_TRUE(model.next(cursor, outage));
    outages.push_back(outage);
    cursor = outage.up;
  }
  return outages;
}

TEST(RequeuePolicyNames, RoundTripAndRejects) {
  for (const auto policy :
       {RequeuePolicy::kRequeueHead, RequeuePolicy::kRequeueTail,
        RequeuePolicy::kAbandon}) {
    RequeuePolicy parsed;
    ASSERT_TRUE(parse_requeue_policy(to_string(policy), parsed));
    EXPECT_EQ(parsed, policy);
  }
  RequeuePolicy parsed;
  EXPECT_TRUE(parse_requeue_policy("HEAD", parsed));  // case-insensitive
  EXPECT_EQ(parsed, RequeuePolicy::kRequeueHead);
  EXPECT_FALSE(parse_requeue_policy("front", parsed));
  EXPECT_FALSE(parse_requeue_policy("", parsed));
}

TEST(FailureModel, SameSeedProducesBitIdenticalSequence) {
  FailureModel a(stochastic_config(), kProcs, kGranularity);
  FailureModel b(stochastic_config(), kProcs, kGranularity);
  const auto seq_a = draw(a, 50);
  const auto seq_b = draw(b, 50);
  ASSERT_EQ(seq_a.size(), seq_b.size());
  for (std::size_t i = 0; i < seq_a.size(); ++i) {
    EXPECT_EQ(seq_a[i].down, seq_b[i].down) << i;
    EXPECT_EQ(seq_a[i].up, seq_b[i].up) << i;
    EXPECT_EQ(seq_a[i].procs, seq_b[i].procs) << i;
  }
}

TEST(FailureModel, DifferentSeedsDiverge) {
  FailureModel a(stochastic_config(7), kProcs, kGranularity);
  FailureModel b(stochastic_config(8), kProcs, kGranularity);
  const auto seq_a = draw(a, 10);
  const auto seq_b = draw(b, 10);
  bool any_different = false;
  for (std::size_t i = 0; i < seq_a.size(); ++i)
    any_different = any_different || seq_a[i].down != seq_b[i].down;
  EXPECT_TRUE(any_different);
}

TEST(FailureModel, OutageSizesAlignedToWholeNodeCards) {
  FailureModelConfig config = stochastic_config();
  config.max_nodes = 50;  // more cards than the machine has — must clamp
  FailureModel model(config, kProcs, kGranularity);
  for (const Outage& outage : draw(model, 100)) {
    EXPECT_EQ(outage.procs % kGranularity, 0);
    EXPECT_GE(outage.procs, kGranularity);
    EXPECT_LE(outage.procs, kProcs);
  }
}

TEST(FailureModel, OutagesAreOrderedAndRespectTheWindow) {
  FailureModel model(stochastic_config(), kProcs, kGranularity);
  sim::Time cursor = 1000;  // the caller's lower bound
  for (int i = 0; i < 50; ++i) {
    Outage outage;
    ASSERT_TRUE(model.next(cursor, outage));
    EXPECT_GE(outage.down, cursor);
    EXPECT_GT(outage.up, outage.down);
    cursor = outage.up;
  }
}

TEST(FailureModel, ScriptReplayedInOrderThenExhausted) {
  FailureModelConfig config;
  config.enabled = true;
  config.script = {{100, 200, 32}, {300, 350, 64}};
  FailureModel model(config, kProcs, kGranularity);
  Outage outage;
  ASSERT_TRUE(model.next(0, outage));
  EXPECT_EQ(outage.down, 100);
  EXPECT_EQ(outage.up, 200);
  EXPECT_EQ(outage.procs, 32);
  ASSERT_TRUE(model.next(outage.up, outage));
  EXPECT_EQ(outage.down, 300);
  EXPECT_EQ(outage.procs, 64);
  EXPECT_FALSE(model.next(outage.up, outage));  // exhausted
}

TEST(FailureModel, ScriptedOutageClampedToCallerWindowAndMachine) {
  FailureModelConfig config;
  config.enabled = true;
  config.script = {{5, 10, 640}};  // larger than the machine, starts early
  FailureModel model(config, kProcs, kGranularity);
  Outage outage;
  ASSERT_TRUE(model.next(7, outage));
  EXPECT_EQ(outage.down, 7);   // shifted to the caller's lower bound
  EXPECT_EQ(outage.up, 10);
  EXPECT_EQ(outage.procs, kProcs);  // clamped to the machine size
}

}  // namespace
}  // namespace es::fault
