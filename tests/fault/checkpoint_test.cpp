// CheckpointModel arithmetic: periodic counts, planned overhead, banked
// work, overhead spent — the analytic Young/Daly trade-off quantities the
// engine folds into job durations.
#include <gtest/gtest.h>

#include "fault/checkpoint.hpp"

namespace es::fault {
namespace {

CheckpointModel periodic(double interval, double overhead) {
  CheckpointConfig config;
  config.enabled = true;
  config.interval = interval;
  config.overhead = overhead;
  return CheckpointModel(config);
}

TEST(CheckpointModel, DisabledModelIsInert) {
  const CheckpointModel model;  // default config: disabled
  EXPECT_FALSE(model.enabled());
  EXPECT_EQ(model.periodic_count(1000), 0);
  EXPECT_DOUBLE_EQ(model.planned_overhead(1000), 0.0);
  EXPECT_DOUBLE_EQ(model.banked_work(1000), 0.0);
  EXPECT_DOUBLE_EQ(model.overhead_spent(1000), 0.0);
  // Disabled: all elapsed time is useful work (the seed engine's view).
  EXPECT_DOUBLE_EQ(model.work_executed(123.5), 123.5);
}

TEST(CheckpointModel, PeriodicCountSkipsTheFinalCheckpoint) {
  const CheckpointModel model = periodic(100, 10);
  // A checkpoint coinciding with the end of the attempt protects nothing.
  EXPECT_EQ(model.periodic_count(100), 0);
  EXPECT_EQ(model.periodic_count(100.5), 1);
  EXPECT_EQ(model.periodic_count(200), 1);
  EXPECT_EQ(model.periodic_count(250), 2);
  EXPECT_EQ(model.periodic_count(0), 0);
  EXPECT_DOUBLE_EQ(model.planned_overhead(250), 20.0);
  EXPECT_DOUBLE_EQ(model.planned_overhead(100), 0.0);
}

TEST(CheckpointModel, WorkExecutedAlternatesWorkAndOverhead) {
  const CheckpointModel model = periodic(100, 10);
  // One cycle is 100 s work + 10 s checkpoint = 110 s wall.
  EXPECT_DOUBLE_EQ(model.work_executed(50), 50.0);
  EXPECT_DOUBLE_EQ(model.work_executed(100), 100.0);
  EXPECT_DOUBLE_EQ(model.work_executed(105), 100.0);  // mid-checkpoint
  EXPECT_DOUBLE_EQ(model.work_executed(110), 100.0);
  EXPECT_DOUBLE_EQ(model.work_executed(150), 140.0);
  EXPECT_DOUBLE_EQ(model.work_executed(220), 200.0);
}

TEST(CheckpointModel, BankedWorkIsTheLastCompletedCheckpoint) {
  const CheckpointModel model = periodic(100, 10);
  EXPECT_EQ(model.completed_count(109), 0);
  EXPECT_EQ(model.completed_count(110), 1);
  EXPECT_EQ(model.completed_count(221), 2);
  EXPECT_DOUBLE_EQ(model.banked_work(109), 0.0);
  EXPECT_DOUBLE_EQ(model.banked_work(110), 100.0);
  EXPECT_DOUBLE_EQ(model.banked_work(219), 100.0);
  EXPECT_DOUBLE_EQ(model.banked_work(225), 200.0);
}

TEST(CheckpointModel, OverheadSpentCountsWholeAndPartialCheckpoints) {
  const CheckpointModel model = periodic(100, 10);
  EXPECT_DOUBLE_EQ(model.overhead_spent(50), 0.0);
  EXPECT_DOUBLE_EQ(model.overhead_spent(105), 5.0);   // mid-checkpoint
  EXPECT_DOUBLE_EQ(model.overhead_spent(110), 10.0);
  EXPECT_DOUBLE_EQ(model.overhead_spent(150), 10.0);
  EXPECT_DOUBLE_EQ(model.overhead_spent(215), 15.0);
}

TEST(CheckpointModel, FreeCheckpointsBankEveryInterval) {
  const CheckpointModel model = periodic(100, 0);
  EXPECT_DOUBLE_EQ(model.work_executed(250), 250.0);
  EXPECT_EQ(model.completed_count(250), 2);
  EXPECT_DOUBLE_EQ(model.banked_work(250), 200.0);
  EXPECT_DOUBLE_EQ(model.overhead_spent(250), 0.0);
}

TEST(CheckpointModel, OnPreemptBanksAllExecutedWork) {
  CheckpointConfig config;
  config.enabled = true;
  config.on_preempt = true;
  const CheckpointModel signal(config);
  // No periodic checkpoints, so all elapsed time is useful and all of it is
  // banked at the preemption instant.
  EXPECT_EQ(signal.periodic_count(1000), 0);
  EXPECT_DOUBLE_EQ(signal.banked_work(73.25), 73.25);
  EXPECT_DOUBLE_EQ(signal.overhead_spent(73.25), 0.0);

  config.interval = 100;
  config.overhead = 10;
  const CheckpointModel both(config);
  // Periodic checkpoints still cost overhead, but preemption banks the
  // executed work, not just the last checkpoint.
  EXPECT_DOUBLE_EQ(both.banked_work(150), 140.0);
  EXPECT_DOUBLE_EQ(both.overhead_spent(150), 10.0);
}

TEST(CheckpointModel, BankedNeverExceedsExecuted) {
  const CheckpointModel model = periodic(37, 3);
  for (double elapsed = 0; elapsed < 500; elapsed += 7.3) {
    EXPECT_LE(model.banked_work(elapsed), model.work_executed(elapsed));
    EXPECT_LE(model.work_executed(elapsed) + model.overhead_spent(elapsed),
              elapsed + 1e-9);
  }
}

}  // namespace
}  // namespace es::fault
