// Contiguity & migration study (paper section II: Krevat et al. on
// BlueGene/L).  Four configurations on the same workloads:
//
//   scalar          no contiguity constraint (reference upper bound)
//   contiguous      contiguous partitions, no migration
//   cont+migrate    contiguous with compaction when fragmentation blocks
//                   the queue head
//   best-fit        contiguous, best-fit placement instead of first-fit
//
// Expected shape (Krevat's result): contiguity costs utilization/wait via
// external fragmentation; migration recovers most of the loss.
#include "bench_common.hpp"
#include "exp/contiguity.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Contiguity & migration (Krevat-style study)", options))
    return 0;

  struct Mode {
    const char* label;
    es::exp::ContiguityPolicy policy;
  };
  const Mode modes[] = {
      {"scalar", {.contiguous = false, .backfill = true, .migrate = false}},
      {"contiguous", {.contiguous = true, .backfill = true, .migrate = false}},
      {"cont+migrate", {.contiguous = true, .backfill = true, .migrate = true}},
      {"best-fit",
       {.contiguous = true,
        .backfill = true,
        .migrate = false,
        .placement = es::cluster::ContiguousMachine::Placement::kBestFit}},
  };

  for (double load : {0.7, 0.9}) {
    char title[96];
    std::snprintf(title, sizeof title,
                  "Contiguity study — SDSC-like M=128, load %.1f (N=%d, %d seeds)",
                  load, options.num_jobs, options.replications);
    es::util::AsciiTable table(title);
    table.set_columns({"mode", "util %", "wait s", "frag %", "migr", "moved"});
    for (const Mode& mode : modes) {
      es::util::RunningStats util_stats, wait_stats, frag_stats;
      std::uint64_t migrations = 0, moved = 0;
      for (int i = 0; i < options.replications; ++i) {
        // Contiguity needs fine-grained, irregular sizes to bite: use the
        // SDSC-like SP2 trace (128 single-proc allocation units) rather
        // than the 10-node-card BlueGene/P configuration, mirroring how
        // Krevat et al. studied a unit-granular torus.
        es::workload::Workload workload = es::workload::generate_sdsc_like(
            static_cast<std::size_t>(options.num_jobs), 128,
            options.seed + static_cast<unsigned>(i));
        es::workload::calibrate_load(workload, 128, load);
        const auto result =
            es::exp::run_contiguity_study(workload, mode.policy);
        util_stats.add(result.utilization);
        wait_stats.add(result.mean_wait);
        frag_stats.add(result.mean_fragmentation);
        migrations += result.migrations;
        moved += result.jobs_moved;
      }
      table.cell(mode.label)
          .cell(100.0 * util_stats.mean(), 2)
          .cell(wait_stats.mean(), 0)
          .cell(100.0 * frag_stats.mean(), 1)
          .cell(static_cast<long long>(migrations))
          .cell(static_cast<long long>(moved));
      table.end_row();
    }
    table.render(std::cout);
    std::cout << '\n';
  }
  return 0;
}
