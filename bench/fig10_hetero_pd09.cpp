// Figure 10 — heterogeneous workload dominated by dedicated jobs
// (P_D = 0.9, P_S = 0.5): metrics vs load.  The paper's point: Hybrid-LOS
// keeps its lead even when batch jobs are scarce.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Fig 10: heterogeneous workload (P_D=0.9, P_S=0.5)",
          options))
    return 0;

  es::workload::GeneratorConfig config = es::bench::base_workload(options);
  config.p_small = 0.5;
  config.p_dedicated = 0.9;

  es::workload::GeneratorConfig tuning = config;
  tuning.p_dedicated = 0.0;
  tuning.target_load = 0.9;
  const int cs = es::exp::optimal_skip_count(tuning, 1, options.quick ? 4 : 12,
                                             options.replications);
  std::printf("Tuned C_s for P_S=0.5: %d\n\n", cs);

  const std::vector<std::string> algorithms{"EASY-D", "LOS-D", "Hybrid-LOS"};
  const es::exp::Sweep sweep =
      es::exp::load_sweep(config, es::bench::load_grid(options), algorithms,
                          es::bench::algo_options(options, cs),
                          options.replications);

  es::exp::print_sweep(std::cout, "Fig 10 — P_D=0.9, P_S=0.5", sweep,
                       algorithms);
  es::exp::print_improvements(std::cout,
                              "Max % improvement of Hybrid-LOS (Fig 10)",
                              sweep, "Hybrid-LOS", {"LOS-D", "EASY-D"});
  es::bench::save_csv(options, "fig10_hetero_pd09", sweep);
  return 0;
}
