// Fair-share study (BENCH_PR10.json): does pool-weighted fair-share
// scheduling actually buy fairness under skewed multi-tenant load, and what
// does it cost?
//
// Workload: the paper's P_S = 0.5 batch mix at offered load 0.9, with jobs
// tagged by Zipf-distributed submitters (a few heavy users dominate, as in
// production traces) mapped onto four weighted pools.  Baselines are EASY,
// Delayed-LOS and Hybrid-LOS — all FIFO-with-backfill policies that ignore
// the pool tags — against FairShare with starvation-driven preemption.
//
// Per policy and seed, the FairnessObserver reports per-pool wait
// percentiles, share satisfaction and Jain's fairness index; the study
// averages over seeds and prints the fairness-vs-goodput trade.  The
// verdicts (FairShare beats both LOS baselines on Jain and on the worst
// pool's p99 wait, while keeping utilization within 5%) gate the exit
// status, and everything is recorded in BENCH_PR10.json.
#include <algorithm>
#include <cstdio>
#include <ostream>

#include "bench_common.hpp"
#include "util/atomic_file.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

/// Seed-averaged fairness summary of one policy.
struct PolicyRow {
  std::string algorithm;
  es::util::RunningStats jain;
  es::util::RunningStats worst_p99;   ///< max over pools of p99 wait
  es::util::RunningStats mean_wait;
  es::util::RunningStats utilization;
  es::util::RunningStats preemptions;
};

}  // namespace

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Multi-tenant fair-share study (FairShare vs LOS)",
          options))
    return 0;

  // Four pools with skewed weights; prod additionally holds a min-share
  // floor.  A --config file can reshape all of this through the spine.
  es::workload::GeneratorConfig workload = es::bench::base_workload(options);
  workload.p_small = 0.5;
  workload.target_load = 0.9;
  workload.num_users = options.quick ? 32 : 64;
  workload.zipf_exponent = 1.1;
  workload.num_pools = 4;

  es::core::AlgorithmOptions algo;
  algo.lookahead = options.lookahead;
  algo.max_skip_count = 7;
  // Study defaults: preemption is modeled as suspend/resume (a preempted
  // job banks its elapsed work and resumes, it does not restart cold), and
  // the relief timeouts are hours-scale to match hours-scale batch jobs.
  // The engine's own aggressive sub-hour defaults thrash on this workload:
  // every preemption victim re-queues at the tail, and those re-waits blow
  // up the victims' pools' p99 far beyond what the rescued pools gain.
  algo.engine.checkpoint.enabled = true;
  algo.engine.checkpoint.on_preempt = true;
  algo.engine.fairshare.min_share_preemption_timeout = 7200;
  algo.engine.fairshare.fair_share_preemption_timeout = 43200;
  algo.engine.fairshare.max_preemptions_per_job = 1;
  // One spine pass: the file may reshape the engine, the pool tree and the
  // tenancy knobs; the study's defaults above are plain pre-load values, so
  // the file overrides them like any other default.
  es::bench::apply_config_file(options.config_path, algo, &workload);
  if (algo.engine.fairshare.pools.empty()) {
    algo.engine.fairshare.pools = {{"prod", 4.0, 0.25},
                                   {"batch", 2.0, 0.0},
                                   {"dev", 1.0, 0.0},
                                   {"scavenger", 1.0, 0.0}};
  }
  algo.engine.fairshare.collect_stats = true;

  const std::vector<std::string> algorithms{"FairShare", "EASY", "Delayed-LOS",
                                            "Hybrid-LOS"};
  std::vector<PolicyRow> rows;
  for (const std::string& algorithm : algorithms) {
    PolicyRow row;
    row.algorithm = algorithm;
    for (int i = 0; i < options.replications; ++i) {
      es::exp::RunSpec spec;
      spec.workload = workload;
      spec.workload.seed = options.seed + static_cast<unsigned>(i);
      spec.algorithm = algorithm;
      spec.options = algo;
      const es::sched::SimulationResult result = es::exp::run_once(spec);
      const es::sched::FairnessStats& fairness = result.perf.fairness;
      row.jain.add(fairness.jain);
      double worst = 0;
      for (const es::sched::PoolFairnessStats& pool : fairness.pools)
        worst = std::max(worst, pool.wait_p99);
      row.worst_p99.add(worst);
      row.mean_wait.add(result.mean_wait);
      row.utilization.add(result.utilization);
      row.preemptions.add(
          static_cast<double>(result.failure.interruptions));
    }
    rows.push_back(row);
  }

  es::util::AsciiTable table(
      "Fair-share study — Zipf users over 4 pools, P_S=0.5, load 0.9");
  table.set_columns({"policy", "Jain", "worst-pool p99 wait (h)",
                     "mean wait (h)", "utilization %", "preemptions"});
  for (PolicyRow& row : rows) {
    table.cell(row.algorithm)
        .cell(row.jain.mean(), 4)
        .cell(row.worst_p99.mean() / 3600.0, 2)
        .cell(row.mean_wait.mean() / 3600.0, 2)
        .cell(100.0 * row.utilization.mean(), 2)
        .cell(row.preemptions.mean(), 1);
    table.end_row();
  }
  table.render(std::cout);

  // Verdicts against the two LOS baselines (EASY is informational).
  const PolicyRow& fair = rows[0];
  bool jain_wins = true, p99_wins = true, goodput_ok = true;
  for (std::size_t i = 2; i < rows.size(); ++i) {
    if (fair.jain.mean() <= rows[i].jain.mean()) jain_wins = false;
    if (fair.worst_p99.mean() >= rows[i].worst_p99.mean()) p99_wins = false;
    if (fair.utilization.mean() < 0.95 * rows[i].utilization.mean())
      goodput_ok = false;
  }
  std::printf("\nverdict: Jain %s, worst-pool p99 %s, goodput within 5%% "
              "%s\n",
              jain_wins ? "improved" : "NOT improved",
              p99_wins ? "improved" : "NOT improved",
              goodput_ok ? "yes" : "NO");

  const std::string out_path = "BENCH_PR10.json";
  const bool ok =
      es::util::write_file_atomic(out_path, [&](std::ostream& out) {
        out << "{\n"
            << "  \"bench\": \"fairshare_study\",\n"
            << "  \"pr\": 10,\n"
            << "  \"host_cores\": " << es::util::hardware_parallelism()
            << ",\n"
            << "  \"threads\": " << options.parallel_jobs << ",\n"
            << "  \"workload\": {\"num_jobs\": " << workload.num_jobs
            << ", \"target_load\": " << workload.target_load
            << ", \"p_small\": " << workload.p_small
            << ", \"num_users\": " << workload.num_users
            << ", \"zipf_exponent\": " << workload.zipf_exponent
            << ", \"num_pools\": " << workload.num_pools
            << ", \"replications\": " << options.replications << "},\n"
            << "  \"policies\": {\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
          const PolicyRow& row = rows[i];
          out << "    \"" << row.algorithm << "\": {"
              << "\"jain\": " << row.jain.mean()
              << ", \"worst_pool_p99_wait\": " << row.worst_p99.mean()
              << ", \"mean_wait\": " << row.mean_wait.mean()
              << ", \"utilization\": " << row.utilization.mean()
              << ", \"preemptions\": " << row.preemptions.mean() << "}"
              << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        out << "  },\n"
            << "  \"verdicts\": {\"jain_improved\": "
            << (jain_wins ? "true" : "false")
            << ", \"worst_p99_improved\": " << (p99_wins ? "true" : "false")
            << ", \"goodput_within_5pct\": "
            << (goodput_ok ? "true" : "false") << "}\n"
            << "}\n";
        return out.good();
      });
  if (!ok) {
    std::fprintf(stderr, "fairshare_study: cannot write %s\n",
                 out_path.c_str());
    return 3;
  }
  std::printf("[json] %s\n", out_path.c_str());

  return (jain_wins && p99_wins && goodput_ok) ? 0 : 1;
}
