// Ablation bench for the design choices DESIGN.md calls out:
//
//  1. DP lookahead depth (10 / 50 / 250 / unbounded) — quantifies why the
//     experiment defaults use 250 instead of Shmueli's 50: under saturation
//     the waiting queue outgrows 50 and the LOS family loses to EASY on
//     information, not policy.
//  2. Skip-count mechanism on/off — Delayed-LOS with C_s=0 (start head
//     immediately, i.e. LOS-like) vs tuned C_s vs effectively infinite
//     patience.
//  3. Runtime-estimate quality — exact estimates vs 2x over-estimation
//     (the classic backfilling observation reproduced on our stack).
#include "bench_common.hpp"
#include "util/table.hpp"

namespace {

void lookahead_ablation(const es::bench::BenchOptions& options) {
  es::workload::GeneratorConfig config = es::bench::base_workload(options);
  config.p_small = 0.2;
  config.target_load = 0.9;

  es::util::AsciiTable table(
      "Ablation 1 — DP lookahead depth (P_S=0.2, load 0.9)");
  table.set_columns({"algorithm", "lookahead", "util %", "wait s"});
  // EASY reference (scans the whole queue by construction).
  es::exp::RunSpec easy;
  easy.workload = config;
  easy.algorithm = "EASY";
  const auto easy_result =
      es::exp::run_replicated(easy, options.replications);
  table.cell("EASY").cell("whole queue").cell(
      100 * easy_result.utilization, 2);
  table.cell(easy_result.mean_wait, 0);
  table.end_row();
  for (int lookahead : {10, 50, 250, 1000000}) {
    for (const char* algorithm : {"LOS", "Delayed-LOS"}) {
      es::exp::RunSpec spec;
      spec.workload = config;
      spec.algorithm = algorithm;
      spec.options.lookahead = lookahead;
      const auto result =
          es::exp::run_replicated(spec, options.replications);
      table.cell(algorithm)
          .cell(lookahead >= 1000000 ? "unbounded" : std::to_string(lookahead))
          .cell(100 * result.utilization, 2)
          .cell(result.mean_wait, 0);
      table.end_row();
    }
  }
  table.render(std::cout);
  std::cout << '\n';
}

void skip_count_ablation(const es::bench::BenchOptions& options) {
  es::workload::GeneratorConfig config = es::bench::base_workload(options);
  config.p_small = 0.5;
  config.target_load = 0.9;

  es::util::AsciiTable table(
      "Ablation 2 — skip-count mechanism (P_S=0.5, load 0.9)");
  table.set_columns({"policy", "util %", "wait s", "slowdown"});
  struct Case {
    const char* label;
    const char* algorithm;
    int cs;
  };
  for (const Case& c :
       {Case{"LOS (no skipping)", "LOS", 0},
        Case{"Delayed-LOS C_s=0", "Delayed-LOS", 0},
        Case{"Delayed-LOS C_s=7 (tuned)", "Delayed-LOS", 7},
        Case{"Delayed-LOS C_s=10^6 (pure packing)", "Delayed-LOS", 1000000}}) {
    es::exp::RunSpec spec;
    spec.workload = config;
    spec.algorithm = c.algorithm;
    spec.options = es::bench::algo_options(options, c.cs);
    const auto result = es::exp::run_replicated(spec, options.replications);
    table.cell(c.label)
        .cell(100 * result.utilization, 2)
        .cell(result.mean_wait, 0)
        .cell(result.slowdown, 3);
    table.end_row();
  }
  table.render(std::cout);
  std::cout << '\n';
}

void estimate_quality_ablation(const es::bench::BenchOptions& options) {
  es::util::AsciiTable table(
      "Ablation 3 — runtime estimate quality (P_S=0.5, load 0.9)");
  table.set_columns({"algorithm", "estimates", "util %", "wait s"});
  struct EstimateCase {
    const char* label;
    double factor;       ///< fixed multiplier; 0 = use uniform model
    double uniform_max;  ///< f-model upper bound
  };
  for (const EstimateCase& c :
       {EstimateCase{"exact", 1.0, 0.0},
        EstimateCase{"2x over-estimated", 2.0, 0.0},
        EstimateCase{"f-model U(1,3)", 1.0, 3.0},
        EstimateCase{"f-model U(1,10)", 1.0, 10.0}}) {
    es::workload::GeneratorConfig config = es::bench::base_workload(options);
    config.p_small = 0.5;
    config.target_load = 0.9;
    config.estimate_factor = c.factor;
    config.estimate_uniform_max = c.uniform_max;
    for (const char* algorithm : {"EASY", "Delayed-LOS"}) {
      es::exp::RunSpec spec;
      spec.workload = config;
      spec.algorithm = algorithm;
      spec.options = es::bench::algo_options(options);
      const auto result = es::exp::run_replicated(spec, options.replications);
      table.cell(algorithm)
          .cell(c.label)
          .cell(100 * result.utilization, 2)
          .cell(result.mean_wait, 0);
      table.end_row();
    }
  }
  table.render(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(argc, argv,
                                      "Design-choice ablations", options))
    return 0;
  lookahead_ablation(options);
  skip_count_ablation(options);
  estimate_quality_ablation(options);
  return 0;
}
