// Failure resilience — how the Table-III batch policies degrade when node
// cards fail at runtime.  The paper's evaluation assumes a perfectly
// reliable machine; this bench injects seeded exponential outages (whole
// 32-proc node cards, MTTR 30 min) at several MTBF settings and reports,
// per (MTBF, algorithm): utilization over the *in-service* capacity, mean
// job waiting time, outage/interruption counts, lost and wasted work, and
// the goodput share (completed work over all processor-seconds consumed).
// A second table compares the requeue policies (head / tail / abandon) at
// the harshest MTBF.  Deterministic: point i uses workload seed base+i and
// failure seed base+1000+i.
//
// Every point runs with a retry budget of 10 preemptions per job: without
// it, restart-from-scratch at MTBF below the longest runtimes needs
// ~e^(runtime/MTBF) attempts and the harsh points effectively never finish.
//
// A third table drops that safety net to compare recovery modes directly:
// capless restart-from-scratch vs checkpointed recovery (interval 900 s,
// overhead 30 s per checkpoint) across an MTBF sweep down to a harsh 15
// minutes.  Both run under a watchdog event budget, so the restart mode —
// which at harsh MTBF may never finish — aborts gracefully and reports its
// termination reason and unfinished-job count instead of hanging the bench.
#include <cstdint>
#include <fstream>

#include "bench_common.hpp"
#include "sim/watchdog.hpp"
#include "util/atomic_file.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct Point {
  double mtbf_hours = 0;  ///< 0 = failure injection disabled
  std::string algorithm;
  std::string requeue;
  double utilization = 0;
  double mean_wait = 0;
  double outages = 0;
  double interrupted = 0;
  double requeues = 0;
  double abandoned = 0;
  double lost_kps = 0;     ///< kilo proc-seconds preempted mid-run
  double goodput_pct = 0;  ///< goodput / (goodput + wasted)
};

Point run_point(const es::bench::BenchOptions& options,
                const es::workload::GeneratorConfig& base, double mtbf_hours,
                const std::string& algorithm, es::fault::RequeuePolicy policy) {
  es::util::RunningStats util_stats, wait_stats, goodput_stats;
  double outages = 0, interrupted = 0, requeues = 0, abandoned = 0, lost = 0;
  for (int i = 0; i < options.replications; ++i) {
    es::workload::GeneratorConfig config = base;
    config.seed = options.seed + static_cast<std::uint64_t>(i);
    const es::workload::Workload workload = es::workload::generate(config);

    es::core::AlgorithmOptions algo = es::bench::algo_options(options);
    algo.engine.requeue = policy;
    if (mtbf_hours > 0) {
      algo.engine.failure.enabled = true;
      algo.engine.failure.seed = options.seed + 1000 + static_cast<std::uint64_t>(i);
      algo.engine.failure.mtbf = mtbf_hours * 3600.0;
      algo.engine.failure.mttr = 30 * 60.0;
      algo.engine.failure.min_nodes = 1;
      algo.engine.failure.max_nodes = 2;
      algo.engine.failure.max_interruptions = 10;
    }
    const es::sched::SimulationResult result =
        es::exp::run_workload(workload, algorithm, algo);

    util_stats.add(result.utilization);
    wait_stats.add(result.mean_wait);
    const double consumed = result.failure.goodput_proc_seconds +
                            result.failure.wasted_proc_seconds;
    goodput_stats.add(
        consumed > 0 ? result.failure.goodput_proc_seconds / consumed : 1.0);
    outages += static_cast<double>(result.failure.outages);
    interrupted += static_cast<double>(result.failure.interruptions);
    requeues += static_cast<double>(result.failure.requeues);
    abandoned += static_cast<double>(result.failure.abandoned);
    lost += result.failure.lost_proc_seconds;
  }
  const double n = options.replications;
  Point point;
  point.mtbf_hours = mtbf_hours;
  point.algorithm = algorithm;
  point.requeue = es::fault::to_string(policy);
  point.utilization = util_stats.mean();
  point.mean_wait = wait_stats.mean();
  point.outages = outages / n;
  point.interrupted = interrupted / n;
  point.requeues = requeues / n;
  point.abandoned = abandoned / n;
  point.lost_kps = lost / n / 1000.0;
  point.goodput_pct = 100.0 * goodput_stats.mean();
  return point;
}

struct RecoveryPoint {
  double mtbf_hours = 0;
  std::string mode;  ///< "restart" or "ckpt"
  double utilization = 0;
  double mean_wait = 0;
  double interrupted = 0;
  double lost_kps = 0;
  double saved_kps = 0;      ///< work recovered from checkpoints
  double overhead_kps = 0;   ///< capacity spent writing checkpoints
  double goodput_pct = 0;
  int aborted = 0;           ///< replications stopped by the watchdog
  double unfinished = 0;     ///< mean jobs unfinished at an abort
  std::string termination;   ///< reason of the last replication
};

RecoveryPoint run_recovery_point(const es::bench::BenchOptions& options,
                                 const es::workload::GeneratorConfig& base,
                                 double mtbf_hours, bool checkpointed) {
  es::util::RunningStats util_stats, wait_stats, goodput_stats;
  double interrupted = 0, lost = 0, saved = 0, overhead = 0, unfinished = 0;
  RecoveryPoint point;
  point.mtbf_hours = mtbf_hours;
  point.mode = checkpointed ? "ckpt" : "restart";
  point.termination = "completed";
  for (int i = 0; i < options.replications; ++i) {
    es::workload::GeneratorConfig config = base;
    config.seed = options.seed + static_cast<std::uint64_t>(i);
    const es::workload::Workload workload = es::workload::generate(config);

    es::core::AlgorithmOptions algo = es::bench::algo_options(options);
    algo.engine.requeue = es::fault::RequeuePolicy::kRequeueHead;
    algo.engine.failure.enabled = true;
    algo.engine.failure.seed = options.seed + 1000 + static_cast<std::uint64_t>(i);
    algo.engine.failure.mtbf = mtbf_hours * 3600.0;
    algo.engine.failure.mttr = 30 * 60.0;
    algo.engine.failure.min_nodes = 1;
    algo.engine.failure.max_nodes = 2;
    algo.engine.failure.max_interruptions = 0;  // capless: recovery mode decides
    if (checkpointed) {
      algo.engine.checkpoint.enabled = true;
      algo.engine.checkpoint.interval = 900.0;
      algo.engine.checkpoint.overhead = 30.0;
    }
    // Event budget so the capless restart mode cannot hang the bench.
    algo.engine.watchdog.max_events =
        options.quick ? 100'000ULL : 500'000ULL;
    const es::sched::SimulationResult result =
        es::exp::run_workload(workload, "EASY", algo);

    util_stats.add(result.utilization);
    wait_stats.add(result.mean_wait);
    const double consumed = result.failure.goodput_proc_seconds +
                            result.failure.wasted_proc_seconds;
    goodput_stats.add(
        consumed > 0 ? result.failure.goodput_proc_seconds / consumed : 1.0);
    interrupted += static_cast<double>(result.failure.interruptions);
    lost += result.failure.lost_proc_seconds;
    saved += result.failure.saved_proc_seconds;
    overhead += result.failure.checkpoint_overhead_proc_seconds;
    unfinished += static_cast<double>(result.unfinished);
    if (result.termination != es::sim::TerminationReason::kCompleted) {
      ++point.aborted;
      point.termination = es::sim::to_string(result.termination);
    }
  }
  const double n = options.replications;
  point.utilization = util_stats.mean();
  point.mean_wait = wait_stats.mean();
  point.interrupted = interrupted / n;
  point.lost_kps = lost / n / 1000.0;
  point.saved_kps = saved / n / 1000.0;
  point.overhead_kps = overhead / n / 1000.0;
  point.goodput_pct = 100.0 * goodput_stats.mean();
  point.unfinished = unfinished / n;
  return point;
}

void add_rows(es::util::AsciiTable& table, const std::vector<Point>& points) {
  for (const Point& p : points) {
    table.cell(p.mtbf_hours > 0 ? std::to_string(p.mtbf_hours).substr(0, 4) + " h"
                                : std::string("none"))
        .cell(p.algorithm)
        .cell(p.requeue)
        .cell(100.0 * p.utilization, 2)
        .cell(p.mean_wait, 1)
        .cell(p.outages, 1)
        .cell(p.interrupted, 1)
        .cell(p.requeues, 1)
        .cell(p.abandoned, 1)
        .cell(p.lost_kps, 1)
        .cell(p.goodput_pct, 2)
        .end_row();
  }
}

}  // namespace

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv,
          "Failure resilience: metrics vs MTBF (Load=0.9, P_S=0.5, "
          "MTTR=30min)",
          options))
    return 0;

  es::workload::GeneratorConfig config = es::bench::base_workload(options);
  config.p_small = 0.5;
  config.target_load = 0.9;

  const std::vector<double> mtbf_hours =
      options.quick ? std::vector<double>{0.0, 1.0}
                    : std::vector<double>{0.0, 8.0, 4.0, 1.0};
  const std::vector<std::string> algorithms = {"EASY", "LOS", "Delayed-LOS"};

  std::vector<Point> sweep;
  for (const double mtbf : mtbf_hours)
    for (const std::string& algorithm : algorithms)
      sweep.push_back(run_point(options, config, mtbf, algorithm,
                                es::fault::RequeuePolicy::kRequeueHead));

  const std::vector<std::string> columns = {
      "MTBF",      "algorithm", "requeue",  "util %",   "wait (s)",
      "outages",   "interrupted", "requeued", "abandoned", "lost kPs",
      "goodput %"};

  es::util::AsciiTable table("Failure resilience — MTBF sweep (requeue=head)");
  table.set_columns(columns);
  add_rows(table, sweep);
  table.render(std::cout);

  // Requeue policies head / tail / abandon at the harshest MTBF.
  const double harsh = mtbf_hours.back();
  std::vector<Point> policy_points;
  for (const auto policy :
       {es::fault::RequeuePolicy::kRequeueHead,
        es::fault::RequeuePolicy::kRequeueTail,
        es::fault::RequeuePolicy::kAbandon})
    for (const std::string& algorithm : algorithms)
      policy_points.push_back(
          run_point(options, config, harsh, algorithm, policy));

  es::util::AsciiTable policy_table("Requeue policies at MTBF = " +
                                    std::to_string(harsh).substr(0, 4) + " h");
  policy_table.set_columns(columns);
  add_rows(policy_table, policy_points);
  policy_table.render(std::cout);

  // Recovery modes: capless restart-from-scratch vs checkpointed recovery,
  // down to an MTBF harsh enough that restart alone cannot finish.
  const std::vector<double> recovery_mtbf =
      options.quick ? std::vector<double>{1.0, 0.25}
                    : std::vector<double>{4.0, 1.0, 0.5, 0.25};
  std::vector<RecoveryPoint> recovery;
  for (const double mtbf : recovery_mtbf)
    for (const bool checkpointed : {false, true})
      recovery.push_back(run_recovery_point(options, config, mtbf,
                                            checkpointed));

  es::util::AsciiTable recovery_table(
      "Recovery modes (EASY, capless requeue=head; ckpt: I=900s C=30s)");
  recovery_table.set_columns({"MTBF", "mode", "util %", "wait (s)",
                              "interrupted", "lost kPs", "saved kPs",
                              "ckpt-ovh kPs", "goodput %", "aborted",
                              "unfinished", "termination"});
  for (const RecoveryPoint& p : recovery) {
    recovery_table.cell(std::to_string(p.mtbf_hours).substr(0, 4) + " h")
        .cell(p.mode)
        .cell(100.0 * p.utilization, 2)
        .cell(p.mean_wait, 1)
        .cell(p.interrupted, 1)
        .cell(p.lost_kps, 1)
        .cell(p.saved_kps, 1)
        .cell(p.overhead_kps, 1)
        .cell(p.goodput_pct, 2)
        .cell(static_cast<long long>(p.aborted))
        .cell(p.unfinished, 1)
        .cell(p.termination)
        .end_row();
  }
  recovery_table.render(std::cout);

  ::mkdir(options.csv_dir.c_str(), 0755);
  const std::string path = options.csv_dir + "/failure_resilience.csv";
  std::ofstream out(path);
  if (out) {
    es::util::CsvWriter csv(out);
    csv.set_header({"mtbf_hours", "algorithm", "requeue", "utilization",
                    "mean_wait", "outages", "interrupted", "requeued",
                    "abandoned", "lost_proc_seconds", "goodput_share"});
    auto write = [&csv](const std::vector<Point>& points) {
      for (const Point& p : points) {
        csv.cell(p.mtbf_hours)
            .cell(p.algorithm)
            .cell(p.requeue)
            .cell(p.utilization)
            .cell(p.mean_wait)
            .cell(p.outages)
            .cell(p.interrupted)
            .cell(p.requeues)
            .cell(p.abandoned)
            .cell(p.lost_kps * 1000.0)
            .cell(p.goodput_pct / 100.0)
            .end_row();
      }
    };
    write(sweep);
    write(policy_points);
    std::printf("[csv] %s\n", path.c_str());
  } else {
    std::printf("[csv] could not write %s\n", path.c_str());
  }

  const std::string recovery_path = options.csv_dir + "/failure_recovery.csv";
  const bool recovery_ok = es::util::write_file_atomic(
      recovery_path, [&recovery](std::ostream& out) {
        es::util::CsvWriter csv(out);
        csv.set_header({"mtbf_hours", "mode", "utilization", "mean_wait",
                        "interrupted", "lost_proc_seconds",
                        "saved_proc_seconds", "ckpt_overhead_proc_seconds",
                        "goodput_share", "aborted_replications",
                        "mean_unfinished", "termination"});
        for (const RecoveryPoint& p : recovery) {
          csv.cell(p.mtbf_hours)
              .cell(p.mode)
              .cell(p.utilization)
              .cell(p.mean_wait)
              .cell(p.interrupted)
              .cell(p.lost_kps * 1000.0)
              .cell(p.saved_kps * 1000.0)
              .cell(p.overhead_kps * 1000.0)
              .cell(p.goodput_pct / 100.0)
              .cell(static_cast<long long>(p.aborted))
              .cell(p.unfinished)
              .cell(p.termination)
              .end_row();
        }
        return out.good();
      });
  if (recovery_ok) {
    std::printf("[csv] %s\n", recovery_path.c_str());
  } else {
    std::printf("[csv] could not write %s\n", recovery_path.c_str());
  }
  return 0;
}
