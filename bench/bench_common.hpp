// Shared configuration for the figure/table reproduction benches.
//
// Every bench prints the paper-style series as aligned tables and writes a
// tidy CSV next to the binary (results/<bench>.csv) for plotting.  The
// defaults reproduce the paper's setup: M = 320 processors in 32-proc node
// cards, N_J = 500 jobs per point, mean over several seeds.
//
// One deliberate deviation, documented in EXPERIMENTS.md: the DP lookahead
// is 250 jobs (not Shmueli's 50).  At the paper's offered loads the waiting
// queue regularly exceeds 50 jobs, and EASY scans the whole queue, so a
// 50-job lookahead handicaps the LOS family on information rather than on
// policy; 250 covers the queue at every load evaluated while keeping the DP
// sub-millisecond.  The ablation bench quantifies this choice.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <sys/stat.h>

#include "core/config_spine.hpp"
#include "core/factory.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "sched/metrics.hpp"
#include "util/cli.hpp"
#include "util/rss.hpp"
#include "util/thread_pool.hpp"
#include "workload/source.hpp"

namespace es::bench {

struct BenchOptions {
  int num_jobs = 500;      ///< N_J per simulation point
  int replications = 5;    ///< seeds averaged per point
  unsigned long long seed = 1;
  int lookahead = 250;
  int parallel_jobs = 1;   ///< worker threads (--jobs); 0 = all cores
  std::string csv_dir = "results";
  bool quick = false;      ///< CI mode: fewer points/seeds
  /// Optional config file applied through the configuration spine
  /// (util::ParamRegistry) by algo_options()/apply_config_file(): engine,
  /// fair-share and tenancy knobs load from here with full validation.
  std::string config_path;
};

/// Standard CLI for every bench binary.  Returns false if the program
/// should exit (e.g. --help).  On success the global worker pool is sized
/// from --jobs, so every sweep in the bench fans out automatically.
inline bool parse_bench_options(int argc, const char* const* argv,
                                const std::string& description,
                                BenchOptions& options) {
  util::CliParser cli(description);
  cli.add_option("num-jobs", "jobs per simulation point (default 500)",
                 &options.num_jobs);
  cli.add_option("replications", "seeds averaged per point (default 5)",
                 &options.replications);
  cli.add_option("seed", "base RNG seed", &options.seed);
  cli.add_option("lookahead", "DP lookahead depth (default 250)",
                 &options.lookahead);
  cli.add_option("jobs",
                 "worker threads for the experiment campaign "
                 "(default 1 = serial; 0 = all cores)",
                 &options.parallel_jobs);
  cli.add_option("csv-dir", "directory for CSV output (default results/)",
                 &options.csv_dir);
  cli.add_option("config", "engine/fair-share/tenancy parameters from this "
                 "key=value file (the simrun --config format); the bench's "
                 "own sweep parameters still override it", &options.config_path);
  cli.add_flag("quick", "fast mode: fewer points and seeds", &options.quick);
  bool list_algorithms = false;
  cli.add_flag("list-algorithms", "print every known algorithm name and exit",
               &list_algorithms);
  if (!cli.parse(argc, argv)) return false;
  if (list_algorithms) {
    for (const std::string& name : core::algorithm_names())
      std::printf("%s\n", name.c_str());
    return false;
  }
  if (options.quick) {
    options.num_jobs = 200;
    options.replications = 2;
  }
  if (options.parallel_jobs == 0)
    options.parallel_jobs = util::hardware_parallelism();
  util::set_global_parallelism(options.parallel_jobs);
  return true;
}

/// Loads `path` (when non-empty) into `algorithm_options` — and, when
/// given, the generator's tenancy knobs — through the configuration spine,
/// with the same finalize-time validation and exit code (2) as simrun.
inline void apply_config_file(const std::string& path,
                              core::AlgorithmOptions& algorithm_options,
                              workload::GeneratorConfig* generator = nullptr) {
  if (path.empty()) return;
  util::ParamRegistry registry;
  core::register_run_params(registry, algorithm_options);
  if (generator != nullptr)
    core::register_tenancy_params(registry, *generator);
  try {
    registry.load_file(path);
    registry.finalize();
  } catch (const util::ConfigError& error) {
    std::fprintf(stderr, "bench: --config: %s\n", error.what());
    std::exit(2);
  }
}

inline workload::GeneratorConfig base_workload(const BenchOptions& options) {
  workload::GeneratorConfig config;
  config.machine_procs = 320;
  config.num_jobs = static_cast<std::size_t>(options.num_jobs);
  config.seed = options.seed;
  return config;
}

/// The bench's algorithm options: --config (engine/fair-share knobs) loads
/// first, then the bench's own sweep parameters override — a bench varies
/// C_s/lookahead per case, and those cases must not be silently pinned by a
/// file value.
inline core::AlgorithmOptions algo_options(const BenchOptions& options,
                                           int max_skip_count = 7) {
  core::AlgorithmOptions algorithm_options;
  apply_config_file(options.config_path, algorithm_options);
  algorithm_options.lookahead = options.lookahead;
  algorithm_options.max_skip_count = max_skip_count;
  return algorithm_options;
}

/// Writes the sweep CSV plus a matching gnuplot script under
/// options.csv_dir (best-effort).
inline void save_csv(const BenchOptions& options, const std::string& name,
                     const exp::Sweep& sweep) {
  ::mkdir(options.csv_dir.c_str(), 0755);
  const std::string path = options.csv_dir + "/" + name + ".csv";
  if (exp::write_sweep_csv(path, sweep)) {
    std::printf("[csv] %s\n", path.c_str());
  } else {
    std::printf("[csv] could not write %s\n", path.c_str());
    return;
  }
  // Algorithms present at the first point (shared references included), in
  // map order.
  std::vector<std::string> algorithms;
  if (!sweep.points.empty())
    for (const auto& [algorithm, aggregate] :
         sweep.merged(sweep.points.front()))
      algorithms.push_back(algorithm);
  const std::string gp_path = options.csv_dir + "/" + name + ".gp";
  if (exp::write_sweep_gnuplot(gp_path, name + ".csv", name, sweep,
                               algorithms))
    std::printf("[gnuplot] %s\n", gp_path.c_str());
}

/// Serializes every *deterministic* field of a result — per-job outcomes
/// with full-precision times, the headline metrics, the ECC/failure
/// ledgers and the event counters — as CSV text.  Wall-clock measurements
/// are excluded, so two runs of the same simulation (or an uninterrupted
/// run vs a snapshot/kill/restore run) must produce byte-identical text.
inline std::string result_fingerprint_csv(
    const sched::SimulationResult& result) {
  std::ostringstream out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "summary,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%llu,%llu\n",
                result.utilization, result.mean_wait, result.slowdown,
                result.mean_per_job_slowdown, result.mean_bounded_slowdown,
                result.makespan,
                static_cast<unsigned long long>(result.completed),
                static_cast<unsigned long long>(result.killed));
  out << line;
  std::snprintf(line, sizeof(line),
                "counts,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.events),
                static_cast<unsigned long long>(result.perf.events.scheduled),
                static_cast<unsigned long long>(result.perf.events.cancelled),
                static_cast<unsigned long long>(result.perf.events.fired),
                static_cast<unsigned long long>(result.ecc.processed),
                static_cast<unsigned long long>(result.ecc.conflicts));
  out << line;
  std::snprintf(line, sizeof(line),
                "failure,%llu,%llu,%llu,%llu,%.17g,%.17g,%.17g,%llu\n",
                static_cast<unsigned long long>(result.failure.outages),
                static_cast<unsigned long long>(result.failure.interruptions),
                static_cast<unsigned long long>(result.failure.requeues),
                static_cast<unsigned long long>(result.failure.abandoned),
                result.failure.lost_proc_seconds,
                result.failure.wasted_proc_seconds,
                result.failure.saved_proc_seconds,
                static_cast<unsigned long long>(result.failure.checkpoints));
  out << line;
  for (const sched::JobOutcome& job : result.jobs) {
    std::snprintf(line, sizeof(line),
                  "job,%lld,%d,%d,%d,%d,%.17g,%.17g,%.17g,%.17g,%.17g\n",
                  static_cast<long long>(job.id), job.dedicated ? 1 : 0,
                  job.killed ? 1 : 0, job.interruptions, job.procs,
                  job.arrival, job.started, job.finished, job.wait, job.run);
    out << line;
  }
  return out.str();
}

// --- scale-bench harness (scale_10k, scale_1m) --------------------------
//
// Both scale benches run the same science — the paper's P_S = 0.5 batch
// workload at a fixed offered load — and differ only in trace length and
// ingestion mode.  The helpers below parameterize that shared shape so the
// 10k table and the million-job soak measure the same thing.

/// The scale benches' workload point: base geometry (M = 320) with the
/// trace length, job mix and offered load of one cell.
inline workload::GeneratorConfig scale_workload(const BenchOptions& options,
                                                std::size_t num_jobs,
                                                double load,
                                                double p_small = 0.5) {
  workload::GeneratorConfig config = base_workload(options);
  config.num_jobs = num_jobs;
  config.p_small = p_small;
  config.target_load = load;
  return config;
}

/// One timed simulation leg.  Wall time covers workload production *and*
/// simulation — for the streamed leg the two are interleaved by design, so
/// the materialized leg charges generation too to keep the comparison fair.
struct ScaleLeg {
  double wall_seconds = 0;
  std::uint64_t events_fired = 0;
  double events_per_second = 0;
  /// Process-global high water at the end of the leg (util::peak_rss_bytes
  /// is monotonic: run the leg whose footprint you care about first).
  std::uint64_t peak_rss_bytes = 0;
  sched::SimulationResult result;
};

/// Runs one leg.  `streamed` pulls the synthetic trace through a
/// GeneratorSource in bounded chunks (the engine never holds more than the
/// in-flight jobs); otherwise the full workload materializes up front.
inline ScaleLeg run_scale_leg(
    const workload::GeneratorConfig& config, const std::string& algorithm,
    const core::AlgorithmOptions& options, bool streamed,
    std::size_t chunk_jobs = workload::GeneratorSource::kDefaultChunkJobs) {
  ScaleLeg leg;
  const auto t0 = std::chrono::steady_clock::now();
  if (streamed) {
    workload::GeneratorSource source(config, chunk_jobs);
    leg.result = exp::run_source(source, algorithm, options);
  } else {
    exp::RunSpec spec;
    spec.workload = config;
    spec.algorithm = algorithm;
    spec.options = options;
    leg.result = exp::run_once(spec);
  }
  leg.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  leg.events_fired = leg.result.perf.events.fired;
  leg.events_per_second =
      leg.wall_seconds > 0
          ? static_cast<double>(leg.events_fired) / leg.wall_seconds
          : 0.0;
  leg.peak_rss_bytes = util::peak_rss_bytes();
  return leg;
}

/// A replicated, seed-averaged scale point (scale_10k's table cells).
struct ScalePoint {
  exp::Aggregate aggregate;
  double wall_seconds = 0;
};

inline ScalePoint run_scale_point(const exp::RunSpec& spec,
                                  int replications) {
  ScalePoint point;
  const auto t0 = std::chrono::steady_clock::now();
  point.aggregate = exp::run_replicated(spec, replications);
  point.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return point;
}

/// The paper's load grid for Figs 7-11.
inline std::vector<double> load_grid(const BenchOptions& options) {
  if (options.quick) return {0.6, 0.9};
  return {0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

}  // namespace es::bench
