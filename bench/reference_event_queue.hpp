// Pre-overhaul event queue, preserved verbatim as a benchmark baseline.
//
// This is the PR-3 kernel the slab/free-list sim::EventQueue replaced: every
// schedule() allocates a shared_ptr<Callback> control block, cancellation
// funnels through an unordered_set of ids, and the heap entries carry two
// words of id bookkeeping.  micro_sim and perf_baseline pit the two against
// each other on the same host and build flags, so the recorded speedup is a
// kernel-vs-kernel measurement rather than a cross-commit one.  Benchmarks
// only — the simulator itself always uses sim::EventQueue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/check.hpp"

namespace es::bench {

struct ReferenceEventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

/// Min-heap of (time, class, seq) with shared_ptr callbacks and lazy
/// hash-set cancellation — the allocation profile the slab queue removed.
class ReferenceEventQueue {
 public:
  using Callback = std::function<void(sim::Time)>;

  ReferenceEventHandle schedule(sim::Time at, sim::EventClass cls,
                                Callback fn) {
    ES_EXPECTS(fn != nullptr);
    Entry entry;
    entry.time = at;
    entry.cls = static_cast<int>(cls);
    entry.seq = next_seq_++;
    entry.id = next_id_++;
    const std::uint64_t id = entry.id;
    entry.fn = std::make_shared<Callback>(std::move(fn));
    heap_.push(std::move(entry));
    ++live_;
    return ReferenceEventHandle{id};
  }

  bool cancel(ReferenceEventHandle handle) {
    if (!handle.valid()) return false;
    if (handle.id >= next_id_) return false;
    if (live_ == 0) return false;
    const auto [it, inserted] = cancelled_.insert(handle.id);
    (void)it;
    if (!inserted) return false;
    --live_;
    return true;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  sim::Time pop_and_run() {
    skim();
    ES_EXPECTS(!heap_.empty());
    Entry entry = heap_.top();
    heap_.pop();
    --live_;
    (*entry.fn)(entry.time);
    return entry.time;
  }

 private:
  struct Entry {
    sim::Time time;
    int cls;
    std::uint64_t seq;
    std::uint64_t id;
    std::shared_ptr<Callback> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.cls != b.cls) return a.cls > b.cls;
      return a.seq > b.seq;
    }
  };

  void skim() {
    while (!heap_.empty()) {
      const auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::size_t live_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
};

}  // namespace es::bench
