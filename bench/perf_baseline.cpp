// perf_baseline — machine-readable perf trajectory entry (BENCH_PR5.json).
//
// Measures the cumulative engine optimizations on the paper's Fig-7 setup
// (P_S = 0.2, load sweep over EASY / LOS / Delayed-LOS):
//
//   1. campaign parallelism (PR 3): the identical load sweep run serially
//      (--jobs 1) and across the worker pool (--jobs N), with the two
//      metrics CSVs compared byte for byte — the speedup only counts if
//      the science is unchanged;
//   2. the DP hot path (PR 3): fast-path / cache-hit counters and wall time
//      with the knapsack memo cache on vs off, with the headline metrics
//      compared exactly — cached runs must schedule identically;
//   3. the event kernel (PR 4): the slab/free-list sim::EventQueue against
//      the retired shared_ptr/hash-set queue (reference_event_queue.hpp)
//      under identical schedule/pop and cancellation-heavy workloads, same
//      host, same build flags — events/sec for each and the speedup;
//   4. simulation scale (PR 4): wall time of one Delayed-LOS run at the
//      scale_10k operating point (load 0.7), the end-to-end number the
//      kernel work is meant to move;
//   5. kernel equivalence (PR 4): a fixed mini-sweep byte-compared against
//      the committed golden CSV (data/golden/kernel_equivalence.csv),
//      generated from the pre-overhaul engine.  Any divergence fails the
//      run — the kernel rework must not change a single simulated metric.
//   6. observer chain (PR 5): the serial campaign repeated with the
//      CycleStatsObserver attachment enabled vs the default empty chain,
//      with the metrics CSVs byte-compared — the lifecycle event bus must
//      leave the science untouched and cost at most a couple percent.
//   7. crash recovery (PR 7): every factory algorithm run uninterrupted,
//      then snapshotted every cycle, killed mid-run and resumed from the
//      last snapshot, with the full deterministic result serialization
//      byte-compared — snapshot/restore must be invisible in the science.
//   8. blocked-parallel DP (PR 8): wide Basic_DP instances (capacities past
//      the blocking threshold, the granularity-1 large-machine regime)
//      filled serially and through the thread pool, with every selection
//      compared element for element — the tiled double-buffered fill must
//      be invisible in the selections — plus the cells/second of each.
//   9. streamed ingestion (PR 8): every factory algorithm run materialized
//      (Engine::run) and pulled through a bounded-chunk JobSource
//      (Engine::run_streamed) over the same workload — the leg-7 fault +
//      checkpoint + ECC traces — with the full deterministic result
//      serialization byte-compared, plus a GeneratorSource leg proving the
//      never-materialized synthetic path (chunked generation with load
//      calibration) is equally invisible.
//  10. event-throughput levers (PR 9): the granularity-1 wide-machine
//      campaign shape with the calendar event queue, the SIMD DP rows and
//      speculative DP all reverted vs the shipping defaults — fingerprints
//      byte-compared (hard gate) — plus an *advisory* throughput check:
//      when the committed BENCH_PR9.json was recorded on this same host
//      profile (host_cores and threads both equal) and the lever-on leg
//      lands more than 20% below its events/s, a ::warning:: annotation is
//      emitted.  Never a failure: wall time on shared runners is too noisy
//      to gate the build, but the annotation makes a creeping regression
//      visible on the PR.
//
// Counters and equivalence verdicts in the JSON are deterministic; every
// *_seconds / *_per_second field is measurement and varies run to run.  CI
// uploads the file as an artifact; the committed copy records the numbers
// of one representative host.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "core/dp.hpp"
#include "exp/experiment.hpp"
#include "reference_event_queue.hpp"
#include "sim/event_queue.hpp"
#include "snap/snapshot.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <chrono>

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Minimal field scan for the flat JSON records this repo writes: the
/// number following the first `"key":` at or after `from`, NaN if absent.
double json_number_after(const std::string& text, const std::string& key,
                         std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

/// Events/sec of `queue` under the micro_sim schedule-then-drain workload
/// (uniform times, trivial callback), repeated until ~0.2 s has elapsed.
template <typename Queue>
double measure_schedule_and_run(std::size_t n) {
  es::util::Rng rng(1);
  std::vector<double> times;
  times.reserve(n);
  for (std::size_t i = 0; i < n; ++i) times.push_back(rng.uniform(0, 1e6));
  std::uint64_t processed = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    Queue queue;
    std::uint64_t sum = 0;
    for (double t : times)
      queue.schedule(t, es::sim::EventClass::kOther,
                     [&sum](es::sim::Time) { ++sum; });
    while (!queue.empty()) queue.pop_and_run();
    processed += n;
    elapsed = seconds_since(t0);
  } while (elapsed < 0.2);
  return static_cast<double>(processed) / elapsed;
}

/// Events/sec with half the population cancelled before the drain — the
/// elastic-workload pattern that exercises lazy deletion.
template <typename Queue>
double measure_cancellation_heavy(std::size_t n) {
  es::util::Rng rng(2);
  std::uint64_t processed = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    Queue queue;
    std::vector<decltype(queue.schedule(0, es::sim::EventClass::kOther,
                                        nullptr))> handles;
    handles.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      handles.push_back(queue.schedule(rng.uniform(0, 1e6),
                                       es::sim::EventClass::kOther,
                                       [](es::sim::Time) {}));
    for (std::size_t i = 0; i < n; i += 2) queue.cancel(handles[i]);
    while (!queue.empty()) queue.pop_and_run();
    processed += n;
    elapsed = seconds_since(t0);
  } while (elapsed < 0.2);
  return static_cast<double>(processed) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
// Default golden path baked in by the build so the bench works from any
// working directory (ctest runs it from the build tree, CI from bench/).
#ifdef ES_KERNEL_GOLDEN
  std::string golden_path = ES_KERNEL_GOLDEN;
#else
  std::string golden_path = "data/golden/kernel_equivalence.csv";
#endif
#ifdef ES_PR9_BASELINE
  std::string pr9_baseline_path = ES_PR9_BASELINE;
#else
  std::string pr9_baseline_path = "BENCH_PR9.json";
#endif
  {
    es::util::CliParser cli(
        "Perf baseline: campaign parallelism + DP hot path + event kernel "
        "+ observer chain (BENCH_PR5.json)");
    cli.add_option("num-jobs", "jobs per simulation point (default 500)",
                   &options.num_jobs);
    cli.add_option("replications", "seeds averaged per point (default 5)",
                   &options.replications);
    cli.add_option("seed", "base RNG seed", &options.seed);
    cli.add_option("lookahead", "DP lookahead depth (default 250)",
                   &options.lookahead);
    cli.add_option("jobs",
                   "worker threads for the experiment campaign "
                   "(default 1 = serial; 0 = all cores)",
                   &options.parallel_jobs);
    cli.add_option("csv-dir", "directory for CSV output (default results/)",
                   &options.csv_dir);
    cli.add_option("golden",
                   "kernel-equivalence golden CSV to byte-compare against",
                   &golden_path);
    cli.add_option("pr9-baseline",
                   "committed BENCH_PR9.json for the advisory throughput "
                   "gate",
                   &pr9_baseline_path);
    cli.add_flag("quick", "fast mode: fewer points and seeds",
                 &options.quick);
    if (!cli.parse(argc, argv)) return 0;
    if (options.quick) {
      options.num_jobs = 200;
      options.replications = 2;
    }
    if (options.parallel_jobs == 0)
      options.parallel_jobs = es::util::hardware_parallelism();
    es::util::set_global_parallelism(options.parallel_jobs);
  }

  // --jobs from the common CLI names the *parallel* leg; default to every
  // core when the user left it serial, since comparing 1 vs 1 says nothing.
  const int parallel_jobs = options.parallel_jobs > 1
                                ? options.parallel_jobs
                                : es::util::hardware_parallelism();

  es::workload::GeneratorConfig config = es::bench::base_workload(options);
  config.p_small = 0.2;
  const std::vector<std::string> algorithms{"EASY", "LOS", "Delayed-LOS"};
  const std::vector<double> loads = es::bench::load_grid(options);
  const es::core::AlgorithmOptions algo = es::bench::algo_options(options);

  // --- leg 1: identical campaign, serial vs pooled ---------------------
  es::util::set_global_parallelism(1);
  auto t0 = std::chrono::steady_clock::now();
  const es::exp::Sweep serial_sweep =
      es::exp::load_sweep(config, loads, algorithms, algo,
                          options.replications);
  const double serial_seconds = seconds_since(t0);

  es::util::set_global_parallelism(parallel_jobs);
  t0 = std::chrono::steady_clock::now();
  const es::exp::Sweep parallel_sweep =
      es::exp::load_sweep(config, loads, algorithms, algo,
                          options.replications);
  const double parallel_seconds = seconds_since(t0);
  es::util::set_global_parallelism(1);

  ::mkdir(options.csv_dir.c_str(), 0755);
  const std::string serial_csv = options.csv_dir + "/perf_baseline_serial.csv";
  const std::string parallel_csv =
      options.csv_dir + "/perf_baseline_parallel.csv";
  es::exp::write_sweep_csv(serial_csv, serial_sweep);
  es::exp::write_sweep_csv(parallel_csv, parallel_sweep);
  const bool csv_identical = slurp(serial_csv) == slurp(parallel_csv);
  const double speedup =
      parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0.0;

  // --- leg 2: DP hot path, memo cache on vs off ------------------------
  es::exp::RunSpec spec;
  spec.workload = config;
  spec.workload.target_load = 0.9;  // Fig-7's most DP-intensive point
  spec.algorithm = "Delayed-LOS";
  spec.options = algo;

  spec.options.dp_cache = true;
  t0 = std::chrono::steady_clock::now();
  const es::exp::Aggregate cached =
      es::exp::run_replicated(spec, options.replications);
  const double cached_seconds = seconds_since(t0);

  spec.options.dp_cache = false;
  t0 = std::chrono::steady_clock::now();
  const es::exp::Aggregate uncached =
      es::exp::run_replicated(spec, options.replications);
  const double uncached_seconds = seconds_since(t0);

  const bool cache_identical = cached.utilization == uncached.utilization &&
                               cached.mean_wait == uncached.mean_wait &&
                               cached.slowdown == uncached.slowdown;
  const double hit_rate =
      cached.dp.calls > 0 ? static_cast<double>(cached.dp.cache_hits) /
                                static_cast<double>(cached.dp.calls)
                          : 0.0;

  // --- leg 3: event kernel, slab queue vs retired reference ------------
  const std::size_t micro_n = 10000;
  const double slab_schedule_eps =
      measure_schedule_and_run<es::sim::EventQueue>(micro_n);
  const double reference_schedule_eps =
      measure_schedule_and_run<es::bench::ReferenceEventQueue>(micro_n);
  const double slab_cancel_eps =
      measure_cancellation_heavy<es::sim::EventQueue>(micro_n);
  const double reference_cancel_eps =
      measure_cancellation_heavy<es::bench::ReferenceEventQueue>(micro_n);
  const double kernel_speedup =
      reference_schedule_eps > 0 ? slab_schedule_eps / reference_schedule_eps
                                 : 0.0;
  const double kernel_cancel_speedup =
      reference_cancel_eps > 0 ? slab_cancel_eps / reference_cancel_eps : 0.0;

  // --- leg 4: end-to-end scale point (scale_10k's stable regime) -------
  es::exp::RunSpec scale_spec;
  scale_spec.workload = es::bench::base_workload(options);
  scale_spec.workload.num_jobs = options.quick ? 2000 : 10000;
  scale_spec.workload.p_small = 0.5;
  scale_spec.workload.target_load = 0.7;
  scale_spec.algorithm = "Delayed-LOS";
  scale_spec.options = algo;
  t0 = std::chrono::steady_clock::now();
  const es::sched::SimulationResult scale_result =
      es::exp::run_once(scale_spec);
  const double scale_seconds = seconds_since(t0);
  const double scale_events_per_second =
      scale_seconds > 0
          ? static_cast<double>(scale_result.perf.events.fired) / scale_seconds
          : 0.0;

  // --- leg 5: kernel-equivalence golden --------------------------------
  // Fixed configuration, independent of --quick/--num-jobs, matching the
  // committed golden exactly: 200 jobs, seeds 1+2, loads {0.6, 0.9},
  // P_S = 0.2, lookahead 250, C_s = 7, EASY / LOS / Delayed-LOS.
  es::workload::GeneratorConfig golden_config;
  golden_config.machine_procs = 320;
  golden_config.num_jobs = 200;
  golden_config.seed = 1;
  golden_config.p_small = 0.2;
  es::core::AlgorithmOptions golden_algo;
  golden_algo.lookahead = 250;
  golden_algo.max_skip_count = 7;
  const es::exp::Sweep golden_sweep = es::exp::load_sweep(
      golden_config, {0.6, 0.9}, algorithms, golden_algo, 2);
  const std::string golden_out =
      options.csv_dir + "/kernel_equivalence.csv";
  es::exp::write_sweep_csv(golden_out, golden_sweep);
  const std::string golden_expected = slurp(golden_path);
  const std::string golden_actual = slurp(golden_out);
  const bool golden_found = !golden_expected.empty();
  const bool golden_identical =
      golden_found && golden_expected == golden_actual;

  // --- leg 6: observer-chain overhead ----------------------------------
  // The leg-1 serial campaign again, alternating the default empty
  // attachment chain with the CycleStatsObserver collecting per-cycle
  // histograms.  Attachments only observe, so the metrics CSVs must be
  // byte-identical; the wall-time ratio is the chain's whole cost.  The
  // variants are timed interleaved across many reps and the per-variant
  // minimum kept: OS noise only ever adds time, so the min over enough
  // reps converges on each variant's true cost.
  es::core::AlgorithmOptions observed_algo = algo;
  observed_algo.engine.collect_cycle_stats = true;
  // Each sample times chain_iters whole campaigns so one sample is a few
  // hundred milliseconds — long enough that scheduler jitter stops
  // dominating a percent-level comparison.
  const int chain_iters = options.quick ? 2 : 8;
  const int chain_reps = options.quick ? 2 : 12;
  double chain_off_seconds = 0;
  double chain_on_seconds = 0;
  es::exp::Sweep chain_off_sweep;
  es::exp::Sweep chain_on_sweep;
  // One untimed campaign per variant first, so cold caches and lazy page
  // faults land on nobody's clock.
  chain_off_sweep = es::exp::load_sweep(config, loads, algorithms, algo,
                                        options.replications);
  chain_on_sweep = es::exp::load_sweep(config, loads, algorithms,
                                       observed_algo, options.replications);
  const auto time_chain_off = [&]() {
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < chain_iters; ++i)
      chain_off_sweep = es::exp::load_sweep(config, loads, algorithms, algo,
                                            options.replications);
    const double off = seconds_since(t0) / chain_iters;
    if (chain_off_seconds == 0 || off < chain_off_seconds)
      chain_off_seconds = off;
  };
  const auto time_chain_on = [&]() {
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < chain_iters; ++i)
      chain_on_sweep = es::exp::load_sweep(config, loads, algorithms,
                                           observed_algo,
                                           options.replications);
    const double on = seconds_since(t0) / chain_iters;
    if (chain_on_seconds == 0 || on < chain_on_seconds)
      chain_on_seconds = on;
  };
  for (int rep = 0; rep < chain_reps; ++rep) {
    // Alternate which variant is timed first: frequency boost decaying
    // through the run would otherwise systematically favour one side.
    if (rep % 2 == 0) {
      time_chain_off();
      time_chain_on();
    } else {
      time_chain_on();
      time_chain_off();
    }
  }

  const std::string chain_off_csv =
      options.csv_dir + "/perf_baseline_chain_off.csv";
  const std::string chain_on_csv =
      options.csv_dir + "/perf_baseline_chain_on.csv";
  es::exp::write_sweep_csv(chain_off_csv, chain_off_sweep);
  es::exp::write_sweep_csv(chain_on_csv, chain_on_sweep);
  const bool chain_identical = slurp(chain_off_csv) == slurp(chain_on_csv);
  const double chain_overhead =
      chain_off_seconds > 0 ? chain_on_seconds / chain_off_seconds - 1.0
                            : 0.0;

  // --- leg 7: crash-recovery equivalence -------------------------------
  // For every factory algorithm: one uninterrupted run, then the same run
  // snapshotted every cycle, killed mid-flight by an event-budget watchdog
  // and resumed from the last snapshot taken before the kill.  The resumed
  // result must serialize byte-identically to the uninterrupted one —
  // snapshot/restore is only correct if it is invisible in the science.
  // Dedicated-aware algorithms get a heterogeneous workload with fault
  // injection and checkpointing on top, so the restore path covers the
  // failure RNG, requeues and checkpoint banks too.
  const auto crash_equivalent = [](const std::string& name,
                                   const es::workload::Workload& crash_load,
                                   const es::core::AlgorithmOptions& base) {
    const es::sched::SimulationResult uninterrupted =
        es::exp::run_workload(crash_load, name, base);
    const std::string expected =
        es::bench::result_fingerprint_csv(uninterrupted);

    es::core::AlgorithmOptions killed = base;
    killed.engine.snapshot.every_cycles = 1;
    killed.engine.watchdog.max_events = uninterrupted.events / 2 + 1;
    std::string last_snapshot;
    (void)es::exp::run_workload_prepared(
        crash_load, name, killed, [&last_snapshot](es::sched::Engine& engine) {
          engine.set_snapshot_sink([&last_snapshot](const std::string& image) {
            last_snapshot = image;
          });
        });
    if (last_snapshot.empty()) return false;
    es::snap::SnapshotReader reader(last_snapshot);
    const es::sched::SimulationResult resumed =
        es::exp::resume_workload(crash_load, name, base, reader);
    return es::bench::result_fingerprint_csv(resumed) == expected;
  };

  es::workload::GeneratorConfig crash_config =
      es::bench::base_workload(options);
  crash_config.num_jobs = options.quick ? 120 : 300;
  crash_config.p_small = 0.5;
  crash_config.p_extend = 0.2;
  crash_config.p_reduce = 0.2;
  crash_config.target_load = 0.9;
  const es::workload::Workload crash_batch =
      es::workload::generate(crash_config);
  crash_config.p_dedicated = 0.4;
  crash_config.seed = options.seed + 17;
  const es::workload::Workload crash_hetero =
      es::workload::generate(crash_config);
  es::core::AlgorithmOptions crash_hetero_algo = algo;
  crash_hetero_algo.engine.failure.enabled = true;
  crash_hetero_algo.engine.failure.seed = 11;
  crash_hetero_algo.engine.failure.mtbf = 40000;
  crash_hetero_algo.engine.failure.mttr = 4000;
  crash_hetero_algo.engine.failure.max_nodes = 2;
  crash_hetero_algo.engine.checkpoint.enabled = true;
  crash_hetero_algo.engine.checkpoint.interval = 2000;
  crash_hetero_algo.engine.checkpoint.overhead = 30;

  bool crash_identical = true;
  int crash_algorithms = 0;
  for (const std::string& name : es::core::algorithm_names()) {
    const bool dedicated_aware =
        es::core::make_algorithm(name).policy->supports_dedicated();
    const es::workload::Workload& crash_load =
        dedicated_aware ? crash_hetero : crash_batch;
    const es::core::AlgorithmOptions& crash_algo =
        dedicated_aware ? crash_hetero_algo : algo;
    ++crash_algorithms;
    if (!crash_equivalent(name, crash_load, crash_algo)) {
      std::printf("crash recovery: %s DIVERGED after kill/restore\n",
                  name.c_str());
      crash_identical = false;
    }
  }

  // --- leg 8: blocked-parallel DP equivalence + throughput --------------
  // Wide knapsack instances: n x cols tables past the blocking threshold,
  // the shape a granularity-1 many-thousand-processor machine poses.  The
  // serial and pooled fills must select identically on every instance;
  // cells/second measures what the tiling buys on this host.
  const int dp_instances = options.quick ? 4 : 12;
  bool parallel_dp_identical = true;
  double dp_serial_seconds = 0;
  double dp_parallel_seconds = 0;
  std::uint64_t dp_cells = 0;
  {
    es::util::Rng rng(options.seed + 99);
    std::vector<std::vector<int>> instances;
    std::vector<int> capacities;
    for (int k = 0; k < dp_instances; ++k) {
      const int capacity =
          8191 + static_cast<int>(rng.uniform_int(0, 12000));
      const int n = 50 + static_cast<int>(rng.uniform_int(0, 200));
      std::vector<int> weights;
      weights.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        weights.push_back(
            static_cast<int>(rng.uniform_int(1, capacity / 2)));
      dp_cells += static_cast<std::uint64_t>(n) *
                  (static_cast<std::uint64_t>(capacity) + 1);
      instances.push_back(std::move(weights));
      capacities.push_back(capacity);
    }
    std::vector<std::vector<int>> serial_selected;
    es::util::set_global_parallelism(1);
    t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < dp_instances; ++k) {
      es::core::DpWorkspace ws;
      serial_selected.push_back(es::core::detail::basic_dp_table(
          instances[static_cast<std::size_t>(k)],
          capacities[static_cast<std::size_t>(k)], ws));
    }
    dp_serial_seconds = seconds_since(t0);
    es::util::set_global_parallelism(parallel_jobs);
    t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < dp_instances; ++k) {
      es::core::DpWorkspace ws;
      const auto parallel = es::core::detail::basic_dp_table(
          instances[static_cast<std::size_t>(k)],
          capacities[static_cast<std::size_t>(k)], ws);
      if (parallel != serial_selected[static_cast<std::size_t>(k)])
        parallel_dp_identical = false;
    }
    dp_parallel_seconds = seconds_since(t0);
    es::util::set_global_parallelism(1);
  }
  const double parallel_dp_speedup =
      dp_parallel_seconds > 0 ? dp_serial_seconds / dp_parallel_seconds : 0.0;

  // --- leg 9: streamed-ingestion equivalence ----------------------------
  // The leg-7 workloads again (ECCs everywhere; faults, checkpoints and
  // dedicated jobs on the heterogeneous trace), each algorithm run once
  // materialized and once through a deliberately small-chunk
  // MaterializedSource so refill boundaries land mid-backlog.  The
  // GeneratorSource leg streams the synthetic trace without materializing
  // it at all — chunked generation plus load calibration must reproduce
  // generate() bit for bit.
  bool streamed_identical = true;
  bool generator_stream_identical = true;
  int streamed_algorithms = 0;
  for (const std::string& name : es::core::algorithm_names()) {
    const bool dedicated_aware =
        es::core::make_algorithm(name).policy->supports_dedicated();
    const es::workload::Workload& stream_load =
        dedicated_aware ? crash_hetero : crash_batch;
    const es::core::AlgorithmOptions& stream_algo =
        dedicated_aware ? crash_hetero_algo : algo;
    const std::string expected = es::bench::result_fingerprint_csv(
        es::exp::run_workload(stream_load, name, stream_algo));
    es::workload::MaterializedSource source(stream_load, 64);
    const std::string streamed = es::bench::result_fingerprint_csv(
        es::exp::run_source(source, name, stream_algo));
    ++streamed_algorithms;
    if (streamed != expected) {
      std::printf("streamed ingestion: %s DIVERGED from materialized\n",
                  name.c_str());
      streamed_identical = false;
    }
  }
  {
    // crash_batch's exact generator configuration (crash_config was
    // re-seeded for the heterogeneous trace afterwards).
    es::workload::GeneratorConfig gen_config = crash_config;
    gen_config.p_dedicated = 0;
    gen_config.seed = options.seed;
    es::workload::GeneratorSource source(gen_config, 128);
    generator_stream_identical =
        es::bench::result_fingerprint_csv(
            es::exp::run_source(source, "Delayed-LOS", algo)) ==
        es::bench::result_fingerprint_csv(
            es::exp::run_workload(crash_batch, "Delayed-LOS", algo));
  }

  // --- leg 10: PR 9 event-throughput levers -----------------------------
  // Same shape and sizing as the committed BENCH_PR9.json campaign leg so
  // the measured events/s is comparable to the recorded baseline: at load
  // 1.0 the backlog — and with it the per-event cost — grows with trace
  // length, so comparing across different N would be meaningless.
  const std::string pr9_text = slurp(pr9_baseline_path);
  const double base_cores = json_number_after(pr9_text, "host_cores");
  const double base_threads = json_number_after(pr9_text, "threads");
  const double base_jobs = json_number_after(pr9_text, "num_jobs");
  const std::size_t after_at = pr9_text.find("\"after\"");
  const double base_eps =
      after_at == std::string::npos
          ? std::nan("")
          : json_number_after(pr9_text, "events_per_second", after_at);
  const std::size_t lever_jobs =
      base_jobs > 0 ? static_cast<std::size_t>(base_jobs)
                    : (options.quick ? 10000u : 50000u);
  es::workload::GeneratorConfig lever_config =
      es::bench::scale_workload(options, lever_jobs, 1.0, 0.2);
  lever_config.machine_procs = 4096;
  es::core::AlgorithmOptions lever_on = algo;
  lever_on.engine.keep_job_outcomes = false;
  lever_on.engine.granularity = 1;
  lever_on.engine.machine_procs = 4096;
  es::core::AlgorithmOptions lever_off = lever_on;
  lever_off.engine.calendar_event_queue = false;
  lever_off.engine.speculative_dp = false;
  es::util::set_global_parallelism(options.parallel_jobs);
  es::core::set_dp_simd_enabled(false);
  const es::bench::ScaleLeg levers_off_leg =
      es::bench::run_scale_leg(lever_config, "Delayed-LOS", lever_off, true);
  es::core::set_dp_simd_enabled(true);
  const es::bench::ScaleLeg levers_on_leg =
      es::bench::run_scale_leg(lever_config, "Delayed-LOS", lever_on, true);
  es::util::set_global_parallelism(1);
  const bool levers_identical =
      es::bench::result_fingerprint_csv(levers_off_leg.result) ==
      es::bench::result_fingerprint_csv(levers_on_leg.result);
  const bool profile_matches =
      !std::isnan(base_cores) && !std::isnan(base_threads) &&
      static_cast<int>(base_cores) ==
          static_cast<int>(es::util::hardware_parallelism()) &&
      static_cast<int>(base_threads) == options.parallel_jobs;
  const bool throughput_regressed =
      profile_matches && base_eps > 0 &&
      levers_on_leg.events_per_second < 0.8 * base_eps;

  std::printf("campaign: serial %.3fs, parallel(%d) %.3fs, speedup %.2fx, "
              "csv identical: %s\n",
              serial_seconds, parallel_jobs, parallel_seconds, speedup,
              csv_identical ? "yes" : "NO");
  std::printf("dp cache: on %.3fs, off %.3fs, hit rate %.1f%%, "
              "fast-path %.1f%%, metrics identical: %s\n",
              cached_seconds, uncached_seconds, 100.0 * hit_rate,
              cached.dp.calls > 0
                  ? 100.0 * static_cast<double>(cached.dp.fast_path) /
                        static_cast<double>(cached.dp.calls)
                  : 0.0,
              cache_identical ? "yes" : "NO");
  std::printf("event kernel: slab %.2fM ev/s vs reference %.2fM ev/s "
              "(%.2fx); cancel-heavy %.2fM vs %.2fM (%.2fx)\n",
              slab_schedule_eps / 1e6, reference_schedule_eps / 1e6,
              kernel_speedup, slab_cancel_eps / 1e6,
              reference_cancel_eps / 1e6, kernel_cancel_speedup);
  std::printf("scale: Delayed-LOS, %zu jobs @ load 0.7: %.3fs "
              "(%.2fM events/s, peak %llu pending)\n",
              scale_spec.workload.num_jobs, scale_seconds,
              scale_events_per_second / 1e6,
              static_cast<unsigned long long>(
                  scale_result.perf.events.peak_pending));
  std::printf("kernel equivalence vs %s: %s\n", golden_path.c_str(),
              !golden_found ? "GOLDEN NOT FOUND"
                            : (golden_identical ? "byte-identical" : "DIVERGED"));
  std::printf("observer chain: off %.3fs, on %.3fs, overhead %.2f%%, "
              "csv identical: %s\n",
              chain_off_seconds, chain_on_seconds, 100.0 * chain_overhead,
              chain_identical ? "yes" : "NO");
  std::printf("crash recovery: %d algorithms snapshot/kill/restore, "
              "results identical: %s\n",
              crash_algorithms, crash_identical ? "yes" : "NO");
  std::printf("parallel dp: %d wide instances (%.1fM cells), serial %.3fs "
              "vs pooled %.3fs (%.2fx), selections identical: %s\n",
              dp_instances, static_cast<double>(dp_cells) / 1e6,
              dp_serial_seconds, dp_parallel_seconds, parallel_dp_speedup,
              parallel_dp_identical ? "yes" : "NO");
  std::printf("streamed ingestion: %d algorithms materialized vs streamed, "
              "results identical: %s; generator stream identical: %s\n",
              streamed_algorithms, streamed_identical ? "yes" : "NO",
              generator_stream_identical ? "yes" : "NO");
  std::printf("event-throughput levers: off %.0f ev/s, on %.0f ev/s "
              "(%.2fx), results identical: %s\n",
              levers_off_leg.events_per_second,
              levers_on_leg.events_per_second,
              levers_off_leg.events_per_second > 0
                  ? levers_on_leg.events_per_second /
                        levers_off_leg.events_per_second
                  : 0.0,
              levers_identical ? "yes" : "NO");
  if (throughput_regressed) {
    // GitHub Actions annotation; plain (if odd-looking) text elsewhere.
    std::printf("::warning title=campaign throughput regression::"
                "granularity-1 campaign leg measured %.0f events/s, more "
                "than 20%% below the committed BENCH_PR9.json baseline "
                "%.0f (same host profile: %d cores, %d threads)\n",
                levers_on_leg.events_per_second, base_eps,
                static_cast<int>(base_cores), static_cast<int>(base_threads));
  } else if (!profile_matches) {
    std::printf("advisory throughput gate: skipped (baseline %s: "
                "host profile %s vs this host %u cores / %d threads)\n",
                pr9_baseline_path.c_str(),
                std::isnan(base_cores) ? "not found" : "differs",
                es::util::hardware_parallelism(), options.parallel_jobs);
  }

  const std::string out_path = "BENCH_PR5.json";
  const bool ok = es::util::write_file_atomic(
      out_path, [&](std::ostream& out) {
        out << "{\n"
            << "  \"bench\": \"perf_baseline\",\n"
            << "  \"pr\": 5,\n"
            << "  \"host_cores\": " << es::util::hardware_parallelism()
            << ",\n"
            << "  \"workload\": {\"num_jobs\": " << options.num_jobs
            << ", \"replications\": " << options.replications
            << ", \"loads\": " << loads.size()
            << ", \"algorithms\": " << algorithms.size() << "},\n"
            << "  \"campaign\": {\"serial_seconds\": " << serial_seconds
            << ", \"parallel_jobs\": " << parallel_jobs
            << ", \"parallel_seconds\": " << parallel_seconds
            << ", \"speedup\": " << speedup
            << ", \"csv_identical\": " << (csv_identical ? "true" : "false")
            << "},\n"
            << "  \"dp\": {\"calls\": " << cached.dp.calls
            << ", \"fast_path\": " << cached.dp.fast_path
            << ", \"cache_hits\": " << cached.dp.cache_hits
            << ", \"table_runs\": " << cached.dp.table_runs
            << ", \"table_cells\": " << cached.dp.table_cells
            << ", \"cache_hit_rate\": " << hit_rate
            << ", \"cached_seconds\": " << cached_seconds
            << ", \"uncached_seconds\": " << uncached_seconds
            << ", \"metrics_identical\": "
            << (cache_identical ? "true" : "false") << "},\n"
            << "  \"event_kernel\": {\"micro_events\": " << micro_n
            << ", \"slab_events_per_second\": " << slab_schedule_eps
            << ", \"reference_events_per_second\": " << reference_schedule_eps
            << ", \"speedup\": " << kernel_speedup
            << ", \"slab_cancel_events_per_second\": " << slab_cancel_eps
            << ", \"reference_cancel_events_per_second\": "
            << reference_cancel_eps
            << ", \"cancel_speedup\": " << kernel_cancel_speedup << "},\n"
            << "  \"scale\": {\"algorithm\": \"Delayed-LOS\", \"num_jobs\": "
            << scale_spec.workload.num_jobs
            << ", \"target_load\": 0.7, \"wall_seconds\": " << scale_seconds
            << ", \"events_fired\": " << scale_result.perf.events.fired
            << ", \"events_per_second\": " << scale_events_per_second
            << ", \"peak_pending_events\": "
            << scale_result.perf.events.peak_pending << "},\n"
            << "  \"kernel_equivalence\": {\"golden\": \"" << golden_path
            << "\", \"golden_found\": " << (golden_found ? "true" : "false")
            << ", \"identical\": " << (golden_identical ? "true" : "false")
            << "},\n"
            << "  \"observer_chain\": {\"off_seconds\": " << chain_off_seconds
            << ", \"on_seconds\": " << chain_on_seconds
            << ", \"overhead\": " << chain_overhead
            << ", \"csv_identical\": " << (chain_identical ? "true" : "false")
            << "},\n"
            << "  \"crash_recovery\": {\"algorithms\": " << crash_algorithms
            << ", \"identical\": " << (crash_identical ? "true" : "false")
            << "},\n"
            << "  \"parallel_dp\": {\"instances\": " << dp_instances
            << ", \"cells\": " << dp_cells
            << ", \"serial_seconds\": " << dp_serial_seconds
            << ", \"parallel_seconds\": " << dp_parallel_seconds
            << ", \"speedup\": " << parallel_dp_speedup
            << ", \"selections_identical\": "
            << (parallel_dp_identical ? "true" : "false") << "},\n"
            << "  \"streamed_ingestion\": {\"algorithms\": "
            << streamed_algorithms << ", \"identical\": "
            << (streamed_identical ? "true" : "false")
            << ", \"generator_identical\": "
            << (generator_stream_identical ? "true" : "false") << "},\n"
            << "  \"event_throughput\": {\"num_jobs\": " << lever_jobs
            << ", \"levers_off_events_per_second\": "
            << levers_off_leg.events_per_second
            << ", \"levers_on_events_per_second\": "
            << levers_on_leg.events_per_second << ", \"identical\": "
            << (levers_identical ? "true" : "false")
            << ", \"baseline_events_per_second\": "
            << (base_eps > 0 ? base_eps : 0.0)
            << ", \"baseline_profile_matches\": "
            << (profile_matches ? "true" : "false")
            << ", \"regressed_over_20pct\": "
            << (throughput_regressed ? "true" : "false") << "}\n"
            << "}\n";
        return out.good();
      });
  if (!ok) {
    std::fprintf(stderr, "perf_baseline: cannot write %s\n", out_path.c_str());
    return 3;
  }
  std::printf("[json] %s\n", out_path.c_str());
  // The equivalences are correctness gates, not just measurements: the
  // parallel campaign, the DP cache, the slab kernel and the observer
  // chain must all leave the simulated science untouched.
  // The advisory throughput check is deliberately absent here.
  return (csv_identical && cache_identical && golden_identical &&
          chain_identical && crash_identical && parallel_dp_identical &&
          streamed_identical && generator_stream_identical &&
          levers_identical)
             ? 0
             : 1;
}
