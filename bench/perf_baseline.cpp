// perf_baseline — machine-readable perf trajectory entry (BENCH_PR3.json).
//
// Measures the two PR-3 optimizations on the paper's Fig-7 setup
// (P_S = 0.2, load sweep over EASY / LOS / Delayed-LOS):
//
//   1. campaign parallelism: the identical load sweep run serially
//      (--jobs 1) and across the worker pool (--jobs N), with the two
//      metrics CSVs compared byte for byte — the speedup only counts if
//      the science is unchanged;
//   2. the DP hot path: fast-path / cache-hit counters and wall time with
//      the knapsack memo cache on vs off, with the headline metrics
//      compared exactly — cached runs must schedule identically.
//
// Counters in the JSON are deterministic; every *_seconds field is
// measurement and varies run to run.  CI uploads the file as an artifact;
// the committed copy records the numbers of one representative host.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "exp/experiment.hpp"
#include "util/atomic_file.hpp"
#include "util/thread_pool.hpp"

#include <chrono>

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv,
          "Perf baseline: campaign parallelism + DP hot path (BENCH_PR3.json)",
          options))
    return 0;

  // --jobs from the common CLI names the *parallel* leg; default to every
  // core when the user left it serial, since comparing 1 vs 1 says nothing.
  const int parallel_jobs = options.parallel_jobs > 1
                                ? options.parallel_jobs
                                : es::util::hardware_parallelism();

  es::workload::GeneratorConfig config = es::bench::base_workload(options);
  config.p_small = 0.2;
  const std::vector<std::string> algorithms{"EASY", "LOS", "Delayed-LOS"};
  const std::vector<double> loads = es::bench::load_grid(options);
  const es::core::AlgorithmOptions algo = es::bench::algo_options(options);

  // --- leg 1: identical campaign, serial vs pooled ---------------------
  es::util::set_global_parallelism(1);
  auto t0 = std::chrono::steady_clock::now();
  const es::exp::Sweep serial_sweep =
      es::exp::load_sweep(config, loads, algorithms, algo,
                          options.replications);
  const double serial_seconds = seconds_since(t0);

  es::util::set_global_parallelism(parallel_jobs);
  t0 = std::chrono::steady_clock::now();
  const es::exp::Sweep parallel_sweep =
      es::exp::load_sweep(config, loads, algorithms, algo,
                          options.replications);
  const double parallel_seconds = seconds_since(t0);
  es::util::set_global_parallelism(1);

  ::mkdir(options.csv_dir.c_str(), 0755);
  const std::string serial_csv = options.csv_dir + "/perf_baseline_serial.csv";
  const std::string parallel_csv =
      options.csv_dir + "/perf_baseline_parallel.csv";
  es::exp::write_sweep_csv(serial_csv, serial_sweep);
  es::exp::write_sweep_csv(parallel_csv, parallel_sweep);
  const bool csv_identical = slurp(serial_csv) == slurp(parallel_csv);
  const double speedup =
      parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0.0;

  // --- leg 2: DP hot path, memo cache on vs off ------------------------
  es::exp::RunSpec spec;
  spec.workload = config;
  spec.workload.target_load = 0.9;  // Fig-7's most DP-intensive point
  spec.algorithm = "Delayed-LOS";
  spec.options = algo;

  spec.options.dp_cache = true;
  t0 = std::chrono::steady_clock::now();
  const es::exp::Aggregate cached =
      es::exp::run_replicated(spec, options.replications);
  const double cached_seconds = seconds_since(t0);

  spec.options.dp_cache = false;
  t0 = std::chrono::steady_clock::now();
  const es::exp::Aggregate uncached =
      es::exp::run_replicated(spec, options.replications);
  const double uncached_seconds = seconds_since(t0);

  const bool cache_identical = cached.utilization == uncached.utilization &&
                               cached.mean_wait == uncached.mean_wait &&
                               cached.slowdown == uncached.slowdown;
  const double hit_rate =
      cached.dp.calls > 0 ? static_cast<double>(cached.dp.cache_hits) /
                                static_cast<double>(cached.dp.calls)
                          : 0.0;

  std::printf("campaign: serial %.3fs, parallel(%d) %.3fs, speedup %.2fx, "
              "csv identical: %s\n",
              serial_seconds, parallel_jobs, parallel_seconds, speedup,
              csv_identical ? "yes" : "NO");
  std::printf("dp cache: on %.3fs, off %.3fs, hit rate %.1f%%, "
              "fast-path %.1f%%, metrics identical: %s\n",
              cached_seconds, uncached_seconds, 100.0 * hit_rate,
              cached.dp.calls > 0
                  ? 100.0 * static_cast<double>(cached.dp.fast_path) /
                        static_cast<double>(cached.dp.calls)
                  : 0.0,
              cache_identical ? "yes" : "NO");

  const std::string out_path = "BENCH_PR3.json";
  const bool ok = es::util::write_file_atomic(
      out_path, [&](std::ostream& out) {
        out << "{\n"
            << "  \"bench\": \"perf_baseline\",\n"
            << "  \"pr\": 3,\n"
            << "  \"host_cores\": " << es::util::hardware_parallelism()
            << ",\n"
            << "  \"workload\": {\"num_jobs\": " << options.num_jobs
            << ", \"replications\": " << options.replications
            << ", \"loads\": " << loads.size()
            << ", \"algorithms\": " << algorithms.size() << "},\n"
            << "  \"campaign\": {\"serial_seconds\": " << serial_seconds
            << ", \"parallel_jobs\": " << parallel_jobs
            << ", \"parallel_seconds\": " << parallel_seconds
            << ", \"speedup\": " << speedup
            << ", \"csv_identical\": " << (csv_identical ? "true" : "false")
            << "},\n"
            << "  \"dp\": {\"calls\": " << cached.dp.calls
            << ", \"fast_path\": " << cached.dp.fast_path
            << ", \"cache_hits\": " << cached.dp.cache_hits
            << ", \"table_runs\": " << cached.dp.table_runs
            << ", \"table_cells\": " << cached.dp.table_cells
            << ", \"cache_hit_rate\": " << hit_rate
            << ", \"cached_seconds\": " << cached_seconds
            << ", \"uncached_seconds\": " << uncached_seconds
            << ", \"metrics_identical\": "
            << (cache_identical ? "true" : "false") << "}\n"
            << "}\n";
        return out.good();
      });
  if (!ok) {
    std::fprintf(stderr, "perf_baseline: cannot write %s\n", out_path.c_str());
    return 3;
  }
  std::printf("[json] %s\n", out_path.c_str());
  // Both equivalences are correctness gates, not just measurements.
  return (csv_identical && cache_identical) ? 0 : 1;
}
