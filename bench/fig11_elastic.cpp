// Figure 11 + Tables VI & VII — runtime elasticity: workloads injected with
// Elastic Control Commands (P_E = 0.2 extensions, P_R = 0.1 reductions).
//
// Panel A (batch, P_S = 0.5):        EASY-E vs LOS-E vs Delayed-LOS-E
// Panel B (heterogeneous, P_D = .5): EASY-DE vs LOS-DE vs Hybrid-LOS-E
//
// The paper's observation: the elastic variants keep the Delayed/Hybrid
// advantage, with somewhat smaller margins than the rigid cases because
// on-the-fly changes disturb packing.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Fig 11 / Tables VI-VII: elastic workloads", options))
    return 0;

  es::workload::GeneratorConfig config = es::bench::base_workload(options);
  config.p_small = 0.5;
  config.p_extend = 0.2;
  config.p_reduce = 0.1;

  es::workload::GeneratorConfig tuning = config;
  tuning.p_extend = 0;
  tuning.p_reduce = 0;
  tuning.target_load = 0.9;
  const int cs = es::exp::optimal_skip_count(tuning, 1, options.quick ? 4 : 12,
                                             options.replications);
  std::printf("Tuned C_s for P_S=0.5: %d\n\n", cs);

  // Panel A: elastic batch.
  const std::vector<std::string> batch_algorithms{"EASY-E", "LOS-E",
                                                  "Delayed-LOS-E"};
  const es::exp::Sweep batch_sweep = es::exp::load_sweep(
      config, es::bench::load_grid(options), batch_algorithms,
      es::bench::algo_options(options, cs), options.replications);
  es::exp::print_sweep(std::cout,
                       "Fig 11a — elastic batch (P_S=0.5, P_E=.2, P_R=.1)",
                       batch_sweep, batch_algorithms);
  es::exp::print_improvements(
      std::cout,
      "Table VI — max % improvement of Delayed-LOS-E (paper: util 4.93/1.78, "
      "wait 18.94/12.19, slowdown 18.39/11.79)",
      batch_sweep, "Delayed-LOS-E", {"LOS-E", "EASY-E"});
  es::bench::save_csv(options, "fig11a_elastic_batch", batch_sweep);

  // Panel B: elastic heterogeneous.
  es::workload::GeneratorConfig hetero = config;
  hetero.p_dedicated = 0.5;
  const std::vector<std::string> hetero_algorithms{"EASY-DE", "LOS-DE",
                                                   "Hybrid-LOS-E"};
  const es::exp::Sweep hetero_sweep = es::exp::load_sweep(
      hetero, es::bench::load_grid(options), hetero_algorithms,
      es::bench::algo_options(options, cs), options.replications);
  es::exp::print_sweep(
      std::cout,
      "Fig 11b — elastic heterogeneous (P_S=0.5, P_D=0.5, P_E=.2, P_R=.1)",
      hetero_sweep, hetero_algorithms);
  es::exp::print_improvements(
      std::cout,
      "Table VII — max % improvement of Hybrid-LOS-E (paper: util 1.88/3.02, "
      "wait 20.76/10.18, slowdown 19.81/14.6)",
      hetero_sweep, "Hybrid-LOS-E", {"LOS-DE", "EASY-DE"});
  es::bench::save_csv(options, "fig11b_elastic_hetero", hetero_sweep);
  return 0;
}
