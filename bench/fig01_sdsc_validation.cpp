// Figure 1 — validation: EASY vs LOS on an SDSC-like trace, mean job
// waiting time vs offered load, load varied by multiplying arrival times by
// a constant factor (the method of Shmueli & Feitelson and the paper).
//
// Substitution (DESIGN.md section 4): the real SDSC SP2 archive log is not
// available offline, so the trace is generated from Lublin's model with
// SP2-class parameters (128 processors, granularity 1, log-uniform sizes
// dominated by powers of two).  The expected shape: LOS at or below EASY in
// mean wait — the packing-friendly trace is where LOS's DP shines — in
// contrast to the variable-size synthetic workloads of Figs 7-8.
#include "bench_common.hpp"
#include "util/stats.hpp"
#include "workload/load.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Fig 1: EASY vs LOS on an SDSC-like trace", options))
    return 0;

  const std::size_t jobs = static_cast<std::size_t>(
      options.quick ? options.num_jobs : std::max(options.num_jobs, 1000));
  const auto algo = es::bench::algo_options(options);

  es::exp::Sweep sweep;
  sweep.x_label = "load";
  for (double load : es::bench::load_grid(options)) {
    es::exp::SweepPoint point;
    point.x = load;
    for (const char* algorithm : {"EASY", "LOS"}) {
      es::util::RunningStats util_stats, wait_stats, slowdown_stats,
          load_stats;
      es::exp::Aggregate aggregate;
      aggregate.algorithm = algorithm;
      aggregate.replications = options.replications;
      for (int seed_offset = 0; seed_offset < options.replications;
           ++seed_offset) {
        es::workload::Workload trace = es::workload::generate_sdsc_like(
            jobs, 128, options.seed + static_cast<unsigned>(seed_offset));
        es::workload::calibrate_load(trace, 128, load);
        const auto result = es::exp::run_workload(trace, algorithm, algo);
        util_stats.add(result.utilization);
        wait_stats.add(result.mean_wait);
        slowdown_stats.add(result.slowdown);
        load_stats.add(result.offered_load);
      }
      aggregate.utilization = util_stats.mean();
      aggregate.mean_wait = wait_stats.mean();
      aggregate.slowdown = slowdown_stats.mean();
      aggregate.offered_load = load_stats.mean();
      point.by_algorithm[algorithm] = aggregate;
    }
    sweep.points.push_back(std::move(point));
  }

  es::exp::print_sweep(std::cout,
                       "Fig 1 — SDSC-like trace (M=128, granularity 1)",
                       sweep, {"EASY", "LOS"});
  const auto improvement = es::exp::max_improvement(sweep, "LOS", "EASY");
  std::printf(
      "Validation: max improvement of LOS over EASY — wait %.2f%%, "
      "slowdown %.2f%% (paper Fig 1 shows LOS ahead of EASY on SDSC)\n\n",
      improvement.wait, improvement.slowdown);
  es::bench::save_csv(options, "fig01_sdsc_validation", sweep);
  return 0;
}
