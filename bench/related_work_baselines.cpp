// Related-work baseline comparison (paper section II-B): SJF, smallest-
// job-first and largest-job-first against FCFS, EASY, conservative
// backfill and the LOS family.
//
// Expected shape per the studies the paper cites (Krueger et al., Majumdar
// et al.): the sorted-queue heuristics do not reliably beat plain FCFS —
// smallest-first fragments the machine, large jobs are not short — while
// backfilling and DP packing do.  One caveat when reading the SJF row: the
// synthetic generator gives *perfect* runtime estimates, the regime where
// SJF shines (it provably minimizes mean wait on one processor); the cited
// studies' pessimism stems from real-world estimate quality, which
// `--estimate-factor`-style noise (see ablation 3) degrades.
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Related-work baselines (section II-B)", options))
    return 0;

  for (double ps : {0.2, 0.5, 0.8}) {
    es::workload::GeneratorConfig config = es::bench::base_workload(options);
    config.p_small = ps;
    config.target_load = 0.9;
    char title[96];
    std::snprintf(title, sizeof title,
                  "Baselines — P_S=%.1f, load 0.9 (N=%d, %d seeds)", ps,
                  options.num_jobs, options.replications);
    es::util::AsciiTable table(title);
    table.set_columns({"algorithm", "util %", "wait s", "slowdown"});
    for (const char* algorithm : {"FCFS", "SJF", "SMALLEST", "LJF", "CONS",
                                  "EASY", "LOS", "Delayed-LOS"}) {
      es::exp::RunSpec spec;
      spec.workload = config;
      spec.algorithm = algorithm;
      spec.options = es::bench::algo_options(options);
      const auto result = es::exp::run_replicated(spec, options.replications);
      table.cell(algorithm)
          .cell(100.0 * result.utilization, 2)
          .cell(result.mean_wait, 0)
          .cell(result.slowdown, 3);
      table.end_row();
    }
    table.render(std::cout);
    std::cout << '\n';
  }
  return 0;
}
