// Dynamic algorithm selection (paper section V-A's closing observation):
// "a dynamic, algorithm selection policy that selects the best performing
// algorithm among Delayed-LOS and EASY, for different proportions of small
// and large sized jobs."
//
// Two panels:
//   1. stationary mixes — Adaptive vs its two delegates across P_S;
//   2. a regime-switching trace (large-job phase then small-job phase),
//      where a fixed choice is wrong half the time.
#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/compose.hpp"
#include "workload/load.hpp"

namespace {

es::workload::Workload phased(std::uint64_t seed, int jobs_per_phase) {
  es::workload::GeneratorConfig phase1;
  phase1.num_jobs = static_cast<std::size_t>(jobs_per_phase);
  phase1.seed = seed;
  phase1.p_small = 0.1;
  phase1.target_load = 0.9;
  es::workload::GeneratorConfig phase2 = phase1;
  phase2.seed = seed + 1;
  phase2.p_small = 0.95;
  return es::workload::concatenate(es::workload::generate(phase1),
                                   es::workload::generate(phase2));
}

}  // namespace

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Dynamic algorithm selection (section V-A)", options))
    return 0;

  // Panel 1: stationary size mixes.
  es::util::AsciiTable stationary(
      "Adaptive vs fixed policies — stationary mixes, load 0.9 (mean wait s)");
  stationary.set_columns({"P_S", "EASY", "Delayed-LOS", "Adaptive"});
  for (double ps : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    es::workload::GeneratorConfig config = es::bench::base_workload(options);
    config.p_small = ps;
    config.target_load = 0.9;
    stationary.cell(ps, 1);
    for (const char* algorithm : {"EASY", "Delayed-LOS", "Adaptive"}) {
      es::exp::RunSpec spec;
      spec.workload = config;
      spec.algorithm = algorithm;
      spec.options = es::bench::algo_options(options);
      stationary.cell(
          es::exp::run_replicated(spec, options.replications).mean_wait, 0);
    }
    stationary.end_row();
  }
  stationary.render(std::cout);
  std::cout << '\n';

  // Panel 2: regime switching.
  es::util::AsciiTable switching(
      "Regime-switching trace (large-job phase, then small-job phase)");
  switching.set_columns({"algorithm", "util %", "wait s", "slowdown"});
  for (const char* algorithm : {"EASY", "LOS", "Delayed-LOS", "Adaptive"}) {
    es::util::RunningStats util_stats, wait_stats, slowdown_stats;
    for (int i = 0; i < options.replications; ++i) {
      const auto workload =
          phased(options.seed + 10 * static_cast<unsigned>(i),
                 options.num_jobs / 2);
      const auto result = es::exp::run_workload(
          workload, algorithm, es::bench::algo_options(options));
      util_stats.add(result.utilization);
      wait_stats.add(result.mean_wait);
      slowdown_stats.add(result.slowdown);
    }
    switching.cell(algorithm)
        .cell(100.0 * util_stats.mean(), 2)
        .cell(wait_stats.mean(), 0)
        .cell(slowdown_stats.mean(), 3);
    switching.end_row();
  }
  switching.render(std::cout);
  return 0;
}
