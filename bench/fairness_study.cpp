// Fairness study: who pays for Delayed-LOS's packing gains?
//
// The skip-count mechanism defers large head jobs in favour of
// utilization-maximizing sets; the paper reports only means.  This bench
// breaks waiting times down by job size class (small = the paper's
// {32, 64, 96}-proc jobs) and by distribution tail, across C_s settings,
// against EASY (whose single reservation protects the head) and LOS.
//
// Expected: larger C_s shifts wait from small jobs to large jobs; the C_s
// bound is precisely what keeps the large-job tail from growing unboundedly.
#include "bench_common.hpp"
#include "exp/analysis.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Size-class fairness under Delayed-LOS", options))
    return 0;

  es::workload::GeneratorConfig config = es::bench::base_workload(options);
  config.p_small = 0.5;
  config.target_load = 0.9;

  struct Case {
    std::string label;
    std::string algorithm;
    int cs;
  };
  std::vector<Case> cases{{"EASY", "EASY", 0},
                          {"LOS", "LOS", 0},
                          {"Delayed-LOS C_s=2", "Delayed-LOS", 2},
                          {"Delayed-LOS C_s=7", "Delayed-LOS", 7},
                          {"Delayed-LOS C_s=20", "Delayed-LOS", 20},
                          {"Delayed-LOS C_s=10^6", "Delayed-LOS", 1000000}};

  es::util::AsciiTable table(
      "Fairness by size class — P_S=0.5, load 0.9 (wait in hours)");
  table.set_columns({"policy", "small mean", "small p95", "large mean",
                     "large p95", "large max", "L/S ratio"});
  for (const Case& c : cases) {
    es::util::RunningStats small_mean, small_p95, large_mean, large_p95,
        large_max, ratio;
    for (int i = 0; i < options.replications; ++i) {
      es::exp::RunSpec spec;
      spec.workload = config;
      spec.workload.seed = options.seed + static_cast<unsigned>(i);
      spec.algorithm = c.algorithm;
      spec.options = es::bench::algo_options(options, c.cs);
      const auto result = es::exp::run_once(spec);
      const auto breakdown = es::exp::fairness_by_size(result, 96);
      small_mean.add(breakdown.small.mean);
      small_p95.add(breakdown.small.p95);
      large_mean.add(breakdown.large.mean);
      large_p95.add(breakdown.large.p95);
      large_max.add(breakdown.large.max);
      ratio.add(breakdown.large_to_small_wait_ratio);
    }
    const double h = 3600.0;
    table.cell(c.label)
        .cell(small_mean.mean() / h, 1)
        .cell(small_p95.mean() / h, 1)
        .cell(large_mean.mean() / h, 1)
        .cell(large_p95.mean() / h, 1)
        .cell(large_max.mean() / h, 1)
        .cell(ratio.mean(), 2);
    table.end_row();
  }
  table.render(std::cout);
  std::printf(
      "\nL/S ratio = large-job mean wait over small-job mean wait.  The\n"
      "skip bound C_s caps how much of the packing gain is financed by\n"
      "deferring large head jobs.\n");
  return 0;
}
