// crash_recovery — kill-point injection harness for the snapshot subsystem.
//
// Three legs, every one a hard gate (non-zero exit on any failure):
//
//   1. randomized kill points: the reference run is repeated with
//      snapshot-every-cycle capture and an event-budget watchdog that kills
//      it at a random event boundary; the run is then resumed from the last
//      snapshot taken before the kill.  The resumed result must serialize
//      byte-identically to the uninterrupted run — for every kill point,
//      across batch/elastic and heterogeneous/faulty workloads.  Full mode
//      injects >= 200 kill points; --quick a couple dozen.
//   2. corruption matrix: a captured snapshot image is mutilated —
//      truncated at sampled lengths, single-bit-flipped at sampled offsets,
//      format-version bumped — and every mutation must be *rejected* with a
//      typed SnapshotError before any engine state is touched.
//   3. ring fallback: a disk ring of K generations whose newest member is
//      corrupted must fall back to the previous intact generation and
//      resume successfully from it.
//
// The harness captures snapshots through Engine::set_snapshot_sink, so leg
// 1 does no filesystem traffic; leg 3 exercises the real ring directory.
#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_common.hpp"
#include "exp/experiment.hpp"
#include "snap/ring.hpp"
#include "snap/snapshot.hpp"
#include "util/rng.hpp"

namespace {

struct CrashCase {
  std::string name;
  es::workload::Workload workload;
  es::core::AlgorithmOptions options;
  std::string algorithm;
  std::string expected;          ///< uninterrupted deterministic CSV
  std::uint64_t events = 0;      ///< uninterrupted event count
};

/// Runs the case killed at `kill_events` and resumed from the last
/// pre-kill snapshot.  Returns true when the resumed result matches the
/// uninterrupted serialization byte for byte.
bool kill_and_resume_matches(const CrashCase& test, std::uint64_t kill_events,
                             std::uint64_t* snapshots_out) {
  es::core::AlgorithmOptions killed = test.options;
  killed.engine.snapshot.every_cycles = 1;
  killed.engine.watchdog.max_events = kill_events;
  std::string last_snapshot;
  std::uint64_t snapshots = 0;
  (void)es::exp::run_workload_prepared(
      test.workload, test.algorithm, killed,
      [&last_snapshot, &snapshots](es::sched::Engine& engine) {
        engine.set_snapshot_sink(
            [&last_snapshot, &snapshots](const std::string& image) {
              last_snapshot = image;
              ++snapshots;
            });
      });
  if (snapshots_out != nullptr) *snapshots_out += snapshots;
  es::sched::SimulationResult resumed;
  if (last_snapshot.empty()) {
    // Killed before the first snapshot: recovery is a fresh full run.
    resumed = es::exp::run_workload(test.workload, test.algorithm,
                                    test.options);
  } else {
    es::snap::SnapshotReader reader(last_snapshot);
    resumed = es::exp::resume_workload(test.workload, test.algorithm,
                                       test.options, reader);
  }
  return es::bench::result_fingerprint_csv(resumed) == test.expected;
}

/// True when the mutated image is rejected with a typed SnapshotError by
/// validation or restore (acceptance of a mutated snapshot is the failure
/// mode this harness exists to catch).
bool rejected(const CrashCase& test, const std::string& image) {
  try {
    es::snap::SnapshotReader reader(image);
    (void)es::exp::resume_workload(test.workload, test.algorithm,
                                   test.options, reader);
  } catch (const es::snap::SnapshotError&) {
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv,
          "Crash-recovery gate: randomized kill points, corruption matrix, "
          "ring fallback",
          options))
    return 0;

  const int kill_points = options.quick ? 24 : 200;
  const int corruption_samples = options.quick ? 48 : 256;

  // --- the reference runs ----------------------------------------------
  es::workload::GeneratorConfig config;
  config.machine_procs = 320;
  config.num_jobs = options.quick ? 120 : 250;
  config.seed = options.seed;
  config.p_small = 0.5;
  config.p_extend = 0.25;
  config.p_reduce = 0.25;
  config.target_load = 0.9;

  std::vector<CrashCase> cases;
  {
    CrashCase batch;
    batch.name = "batch-elastic";
    batch.workload = es::workload::generate(config);
    batch.algorithm = "Hybrid-LOS-E";
    batch.options = es::bench::algo_options(options);
    cases.push_back(batch);

    es::workload::GeneratorConfig hetero_config = config;
    hetero_config.p_dedicated = 0.4;
    hetero_config.seed = options.seed + 29;
    CrashCase hetero;
    hetero.name = "hetero-faulty-ckpt";
    hetero.workload = es::workload::generate(hetero_config);
    hetero.algorithm = "Hybrid-LOS-E";
    hetero.options = es::bench::algo_options(options);
    hetero.options.engine.failure.enabled = true;
    hetero.options.engine.failure.seed = 7;
    hetero.options.engine.failure.mtbf = 30000;
    hetero.options.engine.failure.mttr = 3000;
    hetero.options.engine.failure.max_nodes = 3;
    hetero.options.engine.checkpoint.enabled = true;
    hetero.options.engine.checkpoint.interval = 1500;
    hetero.options.engine.checkpoint.overhead = 20;
    hetero.options.engine.checkpoint.on_preempt = true;
    cases.push_back(hetero);

    CrashCase adaptive;
    adaptive.name = "adaptive-policy-state";
    adaptive.workload = cases.front().workload;
    adaptive.algorithm = "Adaptive";
    adaptive.options = es::bench::algo_options(options);
    cases.push_back(adaptive);
  }
  for (CrashCase& test : cases) {
    const es::sched::SimulationResult uninterrupted =
        es::exp::run_workload(test.workload, test.algorithm, test.options);
    test.expected = es::bench::result_fingerprint_csv(uninterrupted);
    test.events = uninterrupted.events;
  }

  // --- leg 1: randomized kill points -----------------------------------
  es::util::Rng rng(options.seed ^ 0xc0ffee);
  int failures = 0;
  std::uint64_t snapshots_taken = 0;
  for (int i = 0; i < kill_points; ++i) {
    const CrashCase& test = cases[static_cast<std::size_t>(i) % cases.size()];
    const std::uint64_t kill_events = static_cast<std::uint64_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(test.events)));
    if (!kill_and_resume_matches(test, kill_events, &snapshots_taken)) {
      std::printf("kill point %d (%s, %llu events): DIVERGED\n", i,
                  test.name.c_str(),
                  static_cast<unsigned long long>(kill_events));
      ++failures;
    }
  }
  std::printf("kill points: %d injected across %zu cases, %llu snapshots, "
              "%d divergences\n",
              kill_points, cases.size(),
              static_cast<unsigned long long>(snapshots_taken), failures);

  // --- leg 2: corruption matrix ----------------------------------------
  // One representative mid-run snapshot per case, then sampled truncations
  // and bit flips plus a version bump.  Every mutation must be rejected.
  int accepted_mutations = 0;
  int mutations = 0;
  for (const CrashCase& test : cases) {
    es::core::AlgorithmOptions killed = test.options;
    killed.engine.snapshot.every_cycles = 1;
    killed.engine.watchdog.max_events = test.events / 2 + 1;
    std::string image;
    (void)es::exp::run_workload_prepared(
        test.workload, test.algorithm, killed,
        [&image](es::sched::Engine& engine) {
          engine.set_snapshot_sink(
              [&image](const std::string& bytes) { image = bytes; });
        });
    if (image.empty()) {
      std::printf("corruption matrix: %s captured no snapshot\n",
                  test.name.c_str());
      ++accepted_mutations;
      continue;
    }

    for (int i = 0; i < corruption_samples; ++i) {
      ++mutations;
      const auto cut = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(image.size()) - 1));
      if (!rejected(test, image.substr(0, cut))) {
        std::printf("corruption: %s truncated to %zu bytes ACCEPTED\n",
                    test.name.c_str(), cut);
        ++accepted_mutations;
      }
    }
    for (int i = 0; i < corruption_samples; ++i) {
      ++mutations;
      std::string flipped = image;
      const auto offset = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(flipped.size()) - 1));
      const int bit = static_cast<int>(rng.uniform_int(0, 7));
      flipped[offset] = static_cast<char>(
          static_cast<unsigned char>(flipped[offset]) ^ (1u << bit));
      if (!rejected(test, flipped)) {
        std::printf("corruption: %s bit flip at %zu/%d ACCEPTED\n",
                    test.name.c_str(), offset, bit);
        ++accepted_mutations;
      }
    }
    {
      ++mutations;
      // Bump the format-version field (bytes 4..7, little-endian).
      std::string bumped = image;
      bumped[4] = static_cast<char>(static_cast<unsigned char>(bumped[4]) + 1);
      if (!rejected(test, bumped)) {
        std::printf("corruption: %s version bump ACCEPTED\n",
                    test.name.c_str());
        ++accepted_mutations;
      }
    }
  }
  std::printf("corruption matrix: %d mutations, %d wrongly accepted\n",
              mutations, accepted_mutations);

  // --- leg 3: ring fallback --------------------------------------------
  // Run with a real disk ring, corrupt the newest generation, and check
  // that recovery falls back to the previous one and still resumes to the
  // uninterrupted result.
  bool ring_ok = true;
  {
    const CrashCase& test = cases.front();
    const std::string ring_dir =
        (std::filesystem::temp_directory_path() /
         ("es_crash_recovery_" + std::to_string(::getpid())))
            .string();
    es::core::AlgorithmOptions killed = test.options;
    killed.engine.snapshot.every_cycles = 1;
    killed.engine.snapshot.dir = ring_dir;
    killed.engine.snapshot.keep = 4;
    killed.engine.watchdog.max_events = test.events / 2 + 1;
    (void)es::exp::run_workload_prepared(test.workload, test.algorithm,
                                         killed, nullptr);
    const std::vector<es::snap::SnapshotEntry> ring =
        es::snap::list_snapshots(ring_dir);
    if (ring.size() < 2) {
      std::printf("ring fallback: expected >= 2 generations, found %zu\n",
                  ring.size());
      ring_ok = false;
    } else {
      // Mutilate the newest generation on disk: damage a CRC-protected
      // payload byte (offset 20, past the header and the first section's
      // tag + length frame).
      std::string newest = ring.back().path;
      {
        std::FILE* file = std::fopen(newest.c_str(), "r+b");
        if (file != nullptr) {
          std::fseek(file, 20, SEEK_SET);
          std::fputc(0xA5, file);
          std::fclose(file);
        }
      }
      const auto intact = es::snap::latest_intact(ring_dir);
      if (!intact || intact->path == newest) {
        std::printf("ring fallback: corrupt newest generation was not "
                    "skipped\n");
        ring_ok = false;
      } else {
        auto reader = es::snap::read_snapshot_file(intact->path);
        const es::sched::SimulationResult resumed = es::exp::resume_workload(
            test.workload, test.algorithm, test.options, reader);
        ring_ok =
            es::bench::result_fingerprint_csv(resumed) == test.expected;
        if (!ring_ok)
          std::printf("ring fallback: resume from generation %llu "
                      "diverged\n",
                      static_cast<unsigned long long>(intact->generation));
      }
    }
    std::error_code cleanup_error;
    std::filesystem::remove_all(ring_dir, cleanup_error);
  }
  std::printf("ring fallback: %s\n", ring_ok ? "ok" : "FAILED");

  const bool ok = failures == 0 && accepted_mutations == 0 && ring_ok;
  std::printf("crash_recovery: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
