// scenario_atlas — differential fuzzing of every factory algorithm over
// the hostile-scenario families, with the invariant oracle attached.
//
//   $ scenario_atlas                          # matrix: families x algorithms
//   $ scenario_atlas --seeds 4                # more seeds per family
//   $ scenario_atlas --corpus data/corpus     # replay the committed corpus
//   $ scenario_atlas --fuzz-seconds 300       # time-boxed exploration
//   $ scenario_atlas --write-corpus data/corpus --seeds 2
//
// Matrix and corpus modes run every scenario through every algorithm that
// supports its job mix, apply the per-run oracle checks, then the
// cross-algorithm sanity checks, and report each violation.  Fuzz mode
// walks fresh (family, seed) pairs until the time budget runs out; each
// scenario is persisted to <out>/inflight.scn *before* its first run so an
// engine-contract abort (ES_EXPECTS) leaves a replayable crash file behind.
// Violations observable as data are ddmin-shrunk and written as minimized
// repro files (<out>/repro-*.scn) ready for `simrun --scenario` and for
// promotion into data/corpus/.
//
// Exit codes: 0 all invariants hold, 1 usage error, 2 invalid flags,
// 3 I/O error, 5 at least one violation was found.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "fuzz/hostile.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

using es::fuzz::RunReport;
using es::fuzz::Scenario;
using es::fuzz::Violation;

int flag_error(const char* flag, const char* message) {
  std::fprintf(stderr, "scenario_atlas: --%s: %s\n", flag, message);
  return 2;
}

struct ScenarioVerdict {
  std::size_t ran = 0;
  std::size_t skipped = 0;
  std::size_t violations = 0;
  std::vector<RunReport> reports;
  std::vector<Violation> cross;
};

// Runs one scenario through every factory algorithm and the cross checks,
// printing each violation as it is found.
ScenarioVerdict run_matrix_cell(const Scenario& scenario, bool verbose) {
  ScenarioVerdict verdict;
  for (const std::string& algorithm : es::core::algorithm_names()) {
    RunReport report = es::fuzz::check_run(scenario, algorithm);
    if (!report.ran) {
      ++verdict.skipped;
    } else {
      ++verdict.ran;
      for (const Violation& v : report.violations)
        std::printf("  FAIL %-18s [%s] %s: %s\n", scenario.name.c_str(),
                    algorithm.c_str(), v.check.c_str(), v.detail.c_str());
      verdict.violations += report.violations.size();
    }
    verdict.reports.push_back(std::move(report));
  }
  verdict.cross = es::fuzz::check_cross(scenario, verdict.reports);
  for (const Violation& v : verdict.cross)
    std::printf("  FAIL %-18s [cross] %s: %s\n", scenario.name.c_str(),
                v.check.c_str(), v.detail.c_str());
  verdict.violations += verdict.cross.size();
  if (verbose || verdict.violations > 0)
    std::printf("%-24s %zu algorithms, %zu skipped, %zu violations\n",
                scenario.name.c_str(), verdict.ran, verdict.skipped,
                verdict.violations);
  return verdict;
}

// Builds the shrink predicate chasing the first violation in `verdict`:
// a per-run violation pins (algorithm, check); a cross violation re-runs
// the whole panel and matches on the check name.
es::fuzz::FailurePredicate make_predicate(const ScenarioVerdict& verdict) {
  for (const RunReport& report : verdict.reports) {
    if (report.violations.empty()) continue;
    const std::string algorithm = report.algorithm;
    const std::string check = report.violations.front().check;
    return [algorithm, check](const Scenario& candidate) {
      const RunReport rerun = es::fuzz::check_run(candidate, algorithm);
      if (!rerun.ran) return false;
      for (const Violation& v : rerun.violations)
        if (v.check == check) return true;
      return false;
    };
  }
  const std::string check = verdict.cross.front().check;
  return [check](const Scenario& candidate) {
    std::vector<RunReport> reports;
    for (const std::string& algorithm : es::core::algorithm_names())
      reports.push_back(es::fuzz::check_run(candidate, algorithm));
    for (const Violation& v : es::fuzz::check_cross(candidate, reports))
      if (v.check == check) return true;
    return false;
  };
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_dir;
  std::string write_corpus_dir;
  std::string out_dir = "fuzz-out";
  std::string log_level = "error";
  unsigned long long seeds = 1;
  unsigned long long base_seed = 1;
  unsigned long long fuzz_seconds = 0;
  unsigned long long shrink_budget = 200;
  bool verbose = false;

  es::util::CliParser cli("Adversarial scenario atlas: differential fuzzing "
                          "of every algorithm over hostile workloads");
  cli.add_option("corpus", "replay every *.scn in this directory instead of "
                 "generating scenarios", &corpus_dir);
  cli.add_option("write-corpus", "generate the (family x seed) matrix and "
                 "save each scenario into this directory, then exit",
                 &write_corpus_dir);
  cli.add_option("fuzz-seconds", "time-boxed fuzz mode: walk fresh seeds "
                 "until the wall budget expires (0 = matrix mode)",
                 &fuzz_seconds);
  cli.add_option("seeds", "matrix/write-corpus: seeds per family (default 1)",
                 &seeds);
  cli.add_option("seed", "first seed (default 1)", &base_seed);
  cli.add_option("out", "fuzz mode: directory for crash files and minimized "
                 "repros (default fuzz-out)", &out_dir);
  cli.add_option("shrink-budget", "fuzz mode: max predicate evaluations per "
                 "shrink (default 200)", &shrink_budget);
  cli.add_flag("verbose", "print a line per scenario even when green",
               &verbose);
  cli.add_option("log", "log level: debug/info/warn/error/off", &log_level);
  if (!cli.parse(argc, argv)) return 1;
  es::util::set_log_level(es::util::parse_log_level(log_level));

  if (seeds == 0) return flag_error("seeds", "must be >= 1");
  if (!corpus_dir.empty() && !write_corpus_dir.empty())
    return flag_error("write-corpus", "pick one of --corpus/--write-corpus");
  if (fuzz_seconds > 0 && (!corpus_dir.empty() || !write_corpus_dir.empty()))
    return flag_error("fuzz-seconds", "fuzz mode generates its own "
                      "scenarios; drop --corpus/--write-corpus");

  // --write-corpus: emit the seed corpus and exit.
  if (!write_corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(write_corpus_dir, ec);
    if (ec) {
      std::fprintf(stderr, "scenario_atlas: cannot create %s: %s\n",
                   write_corpus_dir.c_str(), ec.message().c_str());
      return 3;
    }
    std::size_t written = 0;
    for (const std::string& family : es::fuzz::family_names()) {
      for (unsigned long long s = 0; s < seeds; ++s) {
        const Scenario scenario =
            es::fuzz::make_scenario(family, base_seed + s);
        const std::string path =
            write_corpus_dir + "/" + scenario.name + ".scn";
        if (!es::fuzz::save_scenario(path, scenario)) {
          std::fprintf(stderr, "scenario_atlas: cannot write %s\n",
                       path.c_str());
          return 3;
        }
        std::printf("[corpus] %s (%zu jobs, %zu ECCs)\n", path.c_str(),
                    scenario.workload.jobs.size(),
                    scenario.workload.eccs.size());
        ++written;
      }
    }
    std::printf("wrote %zu scenarios to %s\n", written,
                write_corpus_dir.c_str());
    return 0;
  }

  // --corpus: replay the committed corpus.
  if (!corpus_dir.empty()) {
    std::vector<std::string> paths;
    try {
      paths = es::fuzz::list_corpus(corpus_dir);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "scenario_atlas: %s\n", error.what());
      return 3;
    }
    if (paths.empty()) {
      std::fprintf(stderr, "scenario_atlas: no *.scn files in %s\n",
                   corpus_dir.c_str());
      return 3;
    }
    std::size_t total = 0;
    for (const std::string& path : paths) {
      Scenario scenario;
      try {
        scenario = es::fuzz::load_scenario(path);
      } catch (const es::fuzz::ScenarioError& error) {
        std::fprintf(stderr, "scenario_atlas: %s\n", error.what());
        return 2;
      } catch (const std::exception& error) {
        std::fprintf(stderr, "scenario_atlas: %s\n", error.what());
        return 3;
      }
      total += run_matrix_cell(scenario, verbose).violations;
    }
    std::printf("corpus replay: %zu scenarios, %zu violations\n",
                paths.size(), total);
    return total == 0 ? 0 : 5;
  }

  // --fuzz-seconds: time-boxed exploration with crash triage + shrinking.
  if (fuzz_seconds > 0) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "scenario_atlas: cannot create %s: %s\n",
                   out_dir.c_str(), ec.message().c_str());
      return 3;
    }
    const std::string inflight = out_dir + "/inflight.scn";
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(fuzz_seconds);
    const std::vector<std::string>& families = es::fuzz::family_names();
    std::size_t iterations = 0, failures = 0;
    for (unsigned long long i = 0;
         std::chrono::steady_clock::now() < deadline; ++i) {
      const std::string& family = families[i % families.size()];
      const unsigned long long seed = base_seed + i / families.size();
      const Scenario scenario = es::fuzz::make_scenario(family, seed);
      // Persist before running: if an engine contract aborts the process,
      // this file is the replayable crash evidence.
      if (!es::fuzz::save_scenario(inflight, scenario)) {
        std::fprintf(stderr, "scenario_atlas: cannot write %s\n",
                     inflight.c_str());
        return 3;
      }
      const ScenarioVerdict verdict = run_matrix_cell(scenario, verbose);
      ++iterations;
      if (verdict.violations == 0) continue;
      ++failures;
      const std::string raw =
          out_dir + "/fail-" + scenario.name + ".scn";
      es::fuzz::save_scenario(raw, scenario);
      const es::fuzz::ShrinkResult shrunk = es::fuzz::shrink(
          scenario, make_predicate(verdict),
          static_cast<std::size_t>(shrink_budget));
      const std::string repro =
          out_dir + "/repro-" + scenario.name + ".scn";
      es::fuzz::save_scenario(repro, shrunk.scenario);
      std::printf("  [shrink] %s: %zu events removed in %zu tests -> %s\n",
                  scenario.name.c_str(), shrunk.removed, shrunk.tests,
                  repro.c_str());
    }
    std::filesystem::remove(inflight, ec);
    std::printf("fuzz: %zu scenarios explored, %zu failing (repros in %s)\n",
                iterations, failures, out_dir.c_str());
    return failures == 0 ? 0 : 5;
  }

  // Default: the (family x seed) matrix.
  std::size_t total = 0, cells = 0;
  for (const std::string& family : es::fuzz::family_names()) {
    for (unsigned long long s = 0; s < seeds; ++s) {
      const Scenario scenario = es::fuzz::make_scenario(family, base_seed + s);
      total += run_matrix_cell(scenario, verbose).violations;
      ++cells;
    }
  }
  std::printf("atlas matrix: %zu scenarios x %zu algorithms, %zu violations\n",
              cells, es::core::algorithm_names().size(), total);
  return total == 0 ? 0 : 5;
}
