// Million-job scale soak (BENCH_PR8.json): the scale_10k experiment pushed
// three orders of magnitude past the paper's 500-job campaigns, which is
// the regime production traces occupy (SDSC/CTC-scale archives run to
// millions of jobs).
//
// Legs, in a deliberate order — util::peak_rss_bytes() is the process
// high-water mark, so the leg whose footprint is under test must run while
// the mark is still low:
//
//   1. streamed: one Delayed-LOS run over the full trace pulled through a
//      GeneratorSource in bounded chunks.  The trace never materializes;
//      engine state is the in-flight jobs only.  This is the headline
//      events/s and peak-RSS number.
//   2. streamed, 8-slot DP cache: the identical run with the result cache
//      narrowed to its pre-widening shape — the before/after for the
//      cache-hit-rate fix, on the workload where it matters.
//   3. materialized: the same trace generated up front and run through
//      Engine::run — the RSS comparison point (sub-linear claim) and the
//      full-length parity gate: the deterministic result serialization of
//      legs 1 and 3 must be byte-identical.
//   4. per-job parity at a bounded N: with per-job outcome ledgers on
//      (deliberately off in the full-length legs — the ledger itself is
//      O(N) memory), streamed vs materialized fingerprints must match down
//      to every per-job line.
//   5. campaign (PR 9): the granularity-1, 4096-processor, load-1.0 point —
//      the wide-machine regime where the event-throughput levers bite —
//      run twice: *before* (binary heap, scalar DP rows, no speculation)
//      and *after* (calendar band, vector rows, speculative pipelining
//      when --jobs > 1).  The two runs must produce byte-identical result
//      fingerprints; the events/s and DP ns/invocation delta is the PR 9
//      headline, recorded in BENCH_PR9.json.
//
// Exit status gates the three parity verdicts; throughput and RSS are
// measurements, recorded in BENCH_PR8.json / BENCH_PR9.json for the
// trajectory.  Every BENCH record carries `host_cores` and `threads`: the
// PR 8 record was taken on a 1-core host, which made its speedup figure
// meaningless without that provenance.
#include <cstdio>

#include "bench_common.hpp"
#include "core/dp.hpp"
#include "util/atomic_file.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Million-job scale soak (streamed vs materialized)",
          options))
    return 0;

  // --quick is the CI smoke shape: 100k jobs keeps the Release leg a few
  // seconds while still ~50 refill chunks deep into streaming.
  const std::size_t big = options.quick ? 100000 : 1000000;
  const double load = 0.7;  // scale_10k's stable regime
  const es::workload::GeneratorConfig config =
      es::bench::scale_workload(options, big, load);
  es::core::AlgorithmOptions algo = es::bench::algo_options(options);
  // The per-job outcome ledger is itself O(N) memory; the full-length legs
  // measure the engine, not the ledger.  Leg 4 turns it back on.
  algo.engine.keep_job_outcomes = false;

  std::printf("scale_1m: %zu jobs, Delayed-LOS, load %.1f\n", big, load);

  // Leg 1: streamed, widened (default) DP cache.
  const es::bench::ScaleLeg streamed =
      es::bench::run_scale_leg(config, "Delayed-LOS", algo, true);

  // Leg 2: streamed, pre-widening 8-slot DP cache (before/after record).
  es::core::AlgorithmOptions narrow = algo;
  narrow.dp_cache_slots = 8;
  const es::bench::ScaleLeg narrow_cache =
      es::bench::run_scale_leg(config, "Delayed-LOS", narrow, true);

  // Leg 3: materialized — RSS comparison point and full-length parity.
  const es::bench::ScaleLeg materialized =
      es::bench::run_scale_leg(config, "Delayed-LOS", algo, false);
  const bool full_identical =
      es::bench::result_fingerprint_csv(streamed.result) ==
      es::bench::result_fingerprint_csv(materialized.result);

  // Leg 4: per-job parity at a ledger-friendly N.
  const std::size_t parity_jobs = options.quick ? 5000 : 20000;
  es::core::AlgorithmOptions ledger = algo;
  ledger.engine.keep_job_outcomes = true;
  const es::workload::GeneratorConfig parity_config =
      es::bench::scale_workload(options, parity_jobs, load);
  const es::bench::ScaleLeg parity_streamed =
      es::bench::run_scale_leg(parity_config, "Delayed-LOS", ledger, true);
  const es::bench::ScaleLeg parity_materialized =
      es::bench::run_scale_leg(parity_config, "Delayed-LOS", ledger, false);
  const bool per_job_identical =
      es::bench::result_fingerprint_csv(parity_streamed.result) ==
      es::bench::result_fingerprint_csv(parity_materialized.result);

  // Leg 5 (PR 9): granularity-1 on a 4096-processor machine at load 1.0 —
  // every processor is its own allocation grain, so DP capacities run to
  // 4096 columns and the event rate is the bottleneck.  Run the identical
  // workload twice: "before" reverts every PR 9 lever (binary-heap event
  // queue, scalar DP rows, no speculation); "after" is the shipping
  // default.  p_small 0.2 biases toward wide jobs, the widest-table shape.
  const std::size_t campaign_jobs = options.quick ? 20000 : 200000;
  es::workload::GeneratorConfig campaign_config =
      es::bench::scale_workload(options, campaign_jobs, 1.0, 0.2);
  campaign_config.machine_procs = 4096;
  es::core::AlgorithmOptions campaign = es::bench::algo_options(options);
  campaign.engine.keep_job_outcomes = false;
  campaign.engine.granularity = 1;
  campaign.engine.machine_procs = 4096;

  es::core::AlgorithmOptions campaign_off = campaign;
  campaign_off.engine.calendar_event_queue = false;
  campaign_off.engine.speculative_dp = false;
  es::core::set_dp_simd_enabled(false);
  const es::bench::ScaleLeg campaign_before = es::bench::run_scale_leg(
      campaign_config, "Delayed-LOS", campaign_off, true);
  es::core::set_dp_simd_enabled(true);
  const es::bench::ScaleLeg campaign_after =
      es::bench::run_scale_leg(campaign_config, "Delayed-LOS", campaign, true);
  const bool campaign_identical =
      es::bench::result_fingerprint_csv(campaign_before.result) ==
      es::bench::result_fingerprint_csv(campaign_after.result);

  // The speculative pipeline only opens with a worker pool; when this bench
  // ran serially (the default), run the after-configuration once more on a
  // 2-thread pool so the record always carries live speculation counters
  // and their parity proof.  On a 1-core host this leg oversubscribes: its
  // wall time documents the pipeline's determinism, not its throughput.
  const unsigned threads = es::util::global_parallelism();
  unsigned pipelined_threads = threads;
  es::bench::ScaleLeg campaign_pipelined = campaign_after;
  if (threads <= 1) {
    pipelined_threads = 2;
    es::util::set_global_parallelism(2);
    campaign_pipelined = es::bench::run_scale_leg(campaign_config,
                                                  "Delayed-LOS", campaign,
                                                  true);
    es::util::set_global_parallelism(static_cast<int>(threads));
  }
  const bool pipelined_identical =
      es::bench::result_fingerprint_csv(campaign_pipelined.result) ==
      es::bench::result_fingerprint_csv(campaign_before.result);
  const auto dp_ns = [](const es::bench::ScaleLeg& leg) {
    const auto& dp = leg.result.perf.dp;
    if (dp.table_runs == 0) return 0.0;
    return 1e9 * dp.table_seconds / static_cast<double>(dp.table_runs);
  };

  const auto mib = [](std::uint64_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  };
  es::util::AsciiTable table("Million-job scale — streamed vs materialized");
  table.set_columns(
      {"leg", "N", "wall s", "events", "Mev/s", "peak RSS MiB"});
  const auto row = [&](const char* name, std::size_t jobs,
                       const es::bench::ScaleLeg& leg) {
    table.cell(name)
        .cell(static_cast<long long>(jobs))
        .cell(leg.wall_seconds, 3)
        .cell(static_cast<long long>(leg.events_fired))
        .cell(leg.events_per_second / 1e6, 2)
        .cell(mib(leg.peak_rss_bytes), 1);
    table.end_row();
  };
  row("streamed", big, streamed);
  row("streamed cache=8", big, narrow_cache);
  row("materialized", big, materialized);
  row("parity streamed", parity_jobs, parity_streamed);
  row("parity materialized", parity_jobs, parity_materialized);
  row("campaign g=1 before", campaign_jobs, campaign_before);
  row("campaign g=1 after", campaign_jobs, campaign_after);
  row("campaign pipelined", campaign_jobs, campaign_pipelined);
  table.render(std::cout);

  // PR 5's scale leg measured 1.30372e6 events/s at 10k jobs on the
  // recorded host; the acceptance target is a multiple of that at 100x the
  // trace length.
  const double pr5_events_per_second = 1.30372e6;
  const double hit_after = streamed.result.perf.dp_cache_hit_rate();
  const double hit_before = narrow_cache.result.perf.dp_cache_hit_rate();
  std::printf(
      "\nstreamed: %.2fM events/s (%.2fx the PR 5 scale leg), peak RSS "
      "%.1f MiB vs materialized %.1f MiB\n",
      streamed.events_per_second / 1e6,
      streamed.events_per_second / pr5_events_per_second,
      mib(streamed.peak_rss_bytes), mib(materialized.peak_rss_bytes));
  std::printf("dp cache: 8 slots %.1f%% hits -> %d slots %.1f%% hits\n",
              100.0 * hit_before, algo.dp_cache_slots, 100.0 * hit_after);
  std::printf("parity: full-length %s, per-job (N=%zu) %s\n",
              full_identical ? "byte-identical" : "DIVERGED", parity_jobs,
              per_job_identical ? "byte-identical" : "DIVERGED");
  std::printf(
      "campaign g=1 p=4096: %.0f -> %.0f events/s (%.2fx), DP %.1f -> %.1f "
      "ns/invocation, results %s\n",
      campaign_before.events_per_second, campaign_after.events_per_second,
      campaign_before.events_per_second > 0
          ? campaign_after.events_per_second /
                campaign_before.events_per_second
          : 0.0,
      dp_ns(campaign_before), dp_ns(campaign_after),
      campaign_identical ? "byte-identical" : "DIVERGED");
  const auto& spec = campaign_pipelined.result.perf.dp;
  std::printf(
      "campaign pipelined (threads %u): %llu launched, %llu hits, %llu "
      "discarded, results %s (host_cores %u, bench threads %u)\n",
      pipelined_threads, static_cast<unsigned long long>(spec.spec_launched),
      static_cast<unsigned long long>(spec.spec_hits),
      static_cast<unsigned long long>(spec.spec_discarded),
      pipelined_identical ? "byte-identical" : "DIVERGED",
      es::util::hardware_parallelism(), threads);

  const std::string out_path = "BENCH_PR8.json";
  const bool ok = es::util::write_file_atomic(out_path, [&](std::ostream&
                                                                out) {
    out << "{\n"
        << "  \"bench\": \"scale_1m\",\n"
        << "  \"pr\": 8,\n"
        << "  \"host_cores\": " << es::util::hardware_parallelism() << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"workload\": {\"num_jobs\": " << big
        << ", \"target_load\": " << load
        << ", \"p_small\": 0.5, \"algorithm\": \"Delayed-LOS\", "
           "\"chunk_jobs\": "
        << es::workload::GeneratorSource::kDefaultChunkJobs << "},\n"
        << "  \"streamed\": {\"wall_seconds\": " << streamed.wall_seconds
        << ", \"events_fired\": " << streamed.events_fired
        << ", \"events_per_second\": " << streamed.events_per_second
        << ", \"peak_rss_bytes\": " << streamed.peak_rss_bytes
        << ", \"speedup_vs_pr5_scale\": "
        << streamed.events_per_second / pr5_events_per_second << "},\n"
        << "  \"materialized\": {\"wall_seconds\": "
        << materialized.wall_seconds
        << ", \"events_fired\": " << materialized.events_fired
        << ", \"events_per_second\": " << materialized.events_per_second
        << ", \"peak_rss_bytes\": " << materialized.peak_rss_bytes << "},\n"
        << "  \"dp_cache\": {\"slots_before\": 8, \"hit_rate_before\": "
        << hit_before << ", \"slots_after\": " << algo.dp_cache_slots
        << ", \"hit_rate_after\": " << hit_after << "},\n"
        << "  \"parity\": {\"full_length_identical\": "
        << (full_identical ? "true" : "false")
        << ", \"per_job_num_jobs\": " << parity_jobs
        << ", \"per_job_identical\": "
        << (per_job_identical ? "true" : "false") << "}\n"
        << "}\n";
    return out.good();
  });
  if (!ok) {
    std::fprintf(stderr, "scale_1m: cannot write %s\n", out_path.c_str());
    return 3;
  }
  std::printf("[json] %s\n", out_path.c_str());

  // PR 9 record: the campaign leg before/after with full provenance.  The
  // levers that need concurrency (speculative DP) only engage when
  // `threads` > 1 — a record with threads == 1 measures the event queue and
  // SIMD rows alone, and says nothing about the pipelined configuration.
  const std::string pr9_path = "BENCH_PR9.json";
  const auto leg_json = [&](std::ostream& out, const char* name,
                            const es::bench::ScaleLeg& leg) {
    const auto& dp = leg.result.perf.dp;
    out << "  \"" << name << "\": {\"wall_seconds\": " << leg.wall_seconds
        << ", \"events_fired\": " << leg.events_fired
        << ", \"events_per_second\": " << leg.events_per_second
        << ", \"dp_table_runs\": " << dp.table_runs
        << ", \"dp_table_seconds\": " << dp.table_seconds
        << ", \"dp_ns_per_invocation\": " << dp_ns(leg)
        << ", \"spec_launched\": " << dp.spec_launched
        << ", \"spec_hits\": " << dp.spec_hits
        << ", \"spec_discarded\": " << dp.spec_discarded << "}";
  };
  const bool ok9 = es::util::write_file_atomic(pr9_path, [&](std::ostream&
                                                                 out) {
    out << "{\n"
        << "  \"bench\": \"scale_1m\",\n"
        << "  \"pr\": 9,\n"
        << "  \"host_cores\": " << es::util::hardware_parallelism() << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"campaign\": {\"num_jobs\": " << campaign_jobs
        << ", \"target_load\": 1.0, \"p_small\": 0.2, \"granularity\": 1, "
           "\"machine_procs\": 4096, \"algorithm\": \"Delayed-LOS\"},\n";
    leg_json(out, "before", campaign_before);
    out << ",\n";
    leg_json(out, "after", campaign_after);
    out << ",\n";
    leg_json(out, "after_pipelined", campaign_pipelined);
    out << ",\n"
        << "  \"pipelined_threads\": " << pipelined_threads << ",\n"
        << "  \"speedup\": "
        << (campaign_before.events_per_second > 0
                ? campaign_after.events_per_second /
                      campaign_before.events_per_second
                : 0.0)
        << ",\n"
        << "  \"parity\": {\"campaign_identical\": "
        << (campaign_identical ? "true" : "false")
        << ", \"pipelined_identical\": "
        << (pipelined_identical ? "true" : "false") << "}\n"
        << "}\n";
    return out.good();
  });
  if (!ok9) {
    std::fprintf(stderr, "scale_1m: cannot write %s\n", pr9_path.c_str());
    return 3;
  }
  std::printf("[json] %s\n", pr9_path.c_str());
  return (full_identical && per_job_identical && campaign_identical &&
          pipelined_identical)
             ? 0
             : 1;
}
