// Resource-dimension elasticity (paper section VI, our extension): EP/RP
// commands injected alongside ET/RT, with and without work-conserving
// resize of running jobs.
//
// Series: Delayed-LOS-E at increasing resource-ECC rates, three modes —
//   rigid      EP/RP rejected on running jobs (queued-only resizing)
//   malleable  running jobs grow/shrink work-conservingly
// The shrink path frees capacity mid-run; the grow path is admitted only
// when the free pool covers it, so malleability should recover some of the
// packing loss elasticity causes.
#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Resource-dimension elasticity (section VI extension)",
          options))
    return 0;

  es::util::AsciiTable table(
      "Resource elasticity — Delayed-LOS-E, P_S=0.5, load 0.9");
  table.set_columns({"EP/RP rate", "mode", "util %", "wait s", "resizes",
                     "rejected"});
  for (double rate : {0.0, 0.2, 0.4}) {
    es::workload::GeneratorConfig config = es::bench::base_workload(options);
    config.p_small = 0.5;
    config.p_extend = 0.2;
    config.p_reduce = 0.1;
    config.p_extend_procs = rate / 2;
    config.p_reduce_procs = rate / 2;
    config.target_load = 0.9;
    for (bool malleable : {false, true}) {
      es::exp::RunSpec spec;
      spec.workload = config;
      spec.algorithm = "Delayed-LOS-E";
      spec.options = es::bench::algo_options(options);
      spec.options.engine.allow_running_resize = malleable;
      es::util::RunningStats util_stats, wait_stats;
      std::uint64_t resizes = 0, rejected = 0;
      for (int i = 0; i < options.replications; ++i) {
        spec.workload.seed = options.seed + static_cast<unsigned>(i);
        const auto result = es::exp::run_once(spec);
        util_stats.add(result.utilization);
        wait_stats.add(result.mean_wait);
        resizes += result.ecc.running_resizes;
        rejected += result.ecc.rejected;
      }
      char rate_label[32];
      std::snprintf(rate_label, sizeof rate_label, "%.1f", rate);
      table.cell(rate_label)
          .cell(malleable ? "malleable" : "rigid")
          .cell(100.0 * util_stats.mean(), 2)
          .cell(wait_stats.mean(), 0)
          .cell(static_cast<long long>(resizes))
          .cell(static_cast<long long>(rejected));
      table.end_row();
    }
  }
  table.render(std::cout);
  return 0;
}
