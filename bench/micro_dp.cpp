// Microbenchmarks for the scheduling kernels (google-benchmark): the cost
// of Basic_DP / Reservation_DP as a function of queue length and capacity
// grains — the complexity discussion behind Shmueli's 50-job lookahead
// limit (paper section II) — and a whole-cycle comparison against EASY's
// linear scan.
#include <benchmark/benchmark.h>

#include "core/dp.hpp"
#include "exp/experiment.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

std::vector<int> random_weights(std::size_t n, int max_grains,
                                std::uint64_t seed) {
  es::util::Rng rng(seed);
  std::vector<int> weights;
  weights.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    weights.push_back(static_cast<int>(rng.uniform_int(1, max_grains)));
  return weights;
}

void BM_BasicDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int capacity = static_cast<int>(state.range(1));
  const auto weights = random_weights(n, capacity, 42);
  es::core::DpWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(es::core::basic_dp(weights, capacity, ws));
  }
  state.SetComplexityN(state.range(0));
}
// Queue length sweep at BlueGene/P capacity (10 grains) and at a
// granularity-1 SP2 (128 grains).
BENCHMARK(BM_BasicDp)
    ->Args({10, 10})
    ->Args({50, 10})
    ->Args({250, 10})
    ->Args({1000, 10})
    ->Args({50, 128})
    ->Args({250, 128})
    ->Complexity(benchmark::oN);

void BM_ReservationDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int capacity = static_cast<int>(state.range(1));
  const auto weights = random_weights(n, capacity, 43);
  es::util::Rng rng(44);
  std::vector<int> shadows;
  shadows.reserve(n);
  for (int w : weights) shadows.push_back(rng.bernoulli(0.5) ? w : 0);
  const int shadow_capacity = capacity / 2;
  es::core::DpWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(es::core::reservation_dp(
        weights, shadows, capacity, shadow_capacity, ws));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReservationDp)
    ->Args({10, 10})
    ->Args({50, 10})
    ->Args({250, 10})
    ->Args({1000, 10})
    ->Args({50, 128})
    ->Args({250, 128})
    ->Complexity(benchmark::oN);

/// SIMD row fill before/after at the granularity-1 wide-machine shape:
/// arg 0 is queue length, arg 1 capacity in grains (4096 = every processor
/// of the campaign machine its own grain), arg 2 the tier (0 = forced
/// scalar, 1 = the runtime-detected vector kernel).  Each iteration runs
/// the unconditional table fill (detail::, bypassing fast path and cache)
/// and compares its selection against a scalar reference computed up
/// front — the timing table doubles as a selection-identity proof on this
/// host's kernel, aborting on the first divergence.
void BM_BasicDpRowFill(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int capacity = static_cast<int>(state.range(1));
  const bool simd = state.range(2) != 0;
  // Weights well under capacity so the optimum is a genuine subset choice,
  // not "take everything" — the shape the row recurrence actually sweats.
  const auto weights = random_weights(n, capacity / 8, 45);
  es::core::DpWorkspace reference_ws;
  es::core::set_dp_simd_enabled(false);
  const auto expected =
      es::core::detail::basic_dp_table(weights, capacity, reference_ws);
  es::core::set_dp_simd_enabled(simd);
  es::core::DpWorkspace ws;
  for (auto _ : state) {
    const auto selected =
        es::core::detail::basic_dp_table(weights, capacity, ws);
    if (selected != expected) {
      state.SkipWithError("vector row fill diverged from scalar selection");
      break;
    }
    benchmark::DoNotOptimize(selected);
  }
  state.SetLabel(simd ? es::core::dp_simd_level_name(es::core::dp_simd_level())
                      : "scalar");
  es::core::set_dp_simd_enabled(true);
}
BENCHMARK(BM_BasicDpRowFill)
    ->Args({50, 512, 0})
    ->Args({50, 512, 1})
    ->Args({50, 4096, 0})
    ->Args({50, 4096, 1})
    ->Args({250, 4096, 0})
    ->Args({250, 4096, 1});

/// Whole-simulation cost per policy: events per second through the engine
/// on the paper's 500-job point.
void BM_FullSimulation(benchmark::State& state,
                       const std::string& algorithm) {
  es::workload::GeneratorConfig config;
  config.num_jobs = 500;
  config.seed = 7;
  config.target_load = 0.9;
  const auto workload = es::workload::generate(config);
  es::core::AlgorithmOptions options;
  options.lookahead = 250;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto result = es::exp::run_workload(workload, algorithm, options);
    events += result.events;
    benchmark::DoNotOptimize(result.mean_wait);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_FullSimulation, easy, "EASY");
BENCHMARK_CAPTURE(BM_FullSimulation, los, "LOS");
BENCHMARK_CAPTURE(BM_FullSimulation, delayed_los, "Delayed-LOS");
BENCHMARK_CAPTURE(BM_FullSimulation, conservative, "CONS");

/// DP result-cache audit: the same Delayed-LOS run at each cache width,
/// reporting the end-to-end hit rate.  Arg 0 is the slot count; the 8-slot
/// shape is the pre-widening cache (which measured ~1.7% hits on the PR 5
/// baseline — evicted instances long before the schedule re-posed them).
/// The default width measures ~9% here (and more under heavier load, where
/// the normalized key collapses deep too-big queues); the benchmark FAILS
/// below a 6% floor, so a regression in the cache key or the eviction
/// policy is caught here rather than as a silent slowdown.
void BM_DpCacheHitRate(benchmark::State& state) {
  const int slots = static_cast<int>(state.range(0));
  es::workload::GeneratorConfig config;
  config.num_jobs = 2000;
  config.seed = 11;
  config.target_load = 0.9;
  const auto workload = es::workload::generate(config);
  es::core::AlgorithmOptions options;
  options.lookahead = 250;
  options.dp_cache_slots = slots;
  double hit_rate = 0;
  for (auto _ : state) {
    const auto result =
        es::exp::run_workload(workload, "Delayed-LOS", options);
    hit_rate = result.perf.dp_cache_hit_rate();
    benchmark::DoNotOptimize(hit_rate);
  }
  state.counters["dp_hit_rate"] = hit_rate;
  if (slots == static_cast<int>(es::core::DpWorkspace::kDefaultCacheSlots) &&
      hit_rate < 0.06) {
    state.SkipWithError("widened DP cache hit rate regressed below 6%");
  }
}
BENCHMARK(BM_DpCacheHitRate)
    ->Arg(8)
    ->Arg(static_cast<int>(es::core::DpWorkspace::kDefaultCacheSlots));

}  // namespace

BENCHMARK_MAIN();
