// Microbenchmarks for the simulation substrate: event-queue throughput,
// machine ledger operations and workload-generator speed.
//
// The BM_ReferenceQueue* pairs run the retired shared_ptr/hash-set kernel
// (reference_event_queue.hpp) under the exact workloads of their
// BM_EventQueue* counterparts, so one run reports the slab queue's speedup
// on this host.
#include <benchmark/benchmark.h>

#include "cluster/contiguous.hpp"
#include "cluster/machine.hpp"
#include "reference_event_queue.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

// range(1) selects the ordering tier: 1 = calendar band (default), 0 =
// heap-only (the pre-PR9 kernel) — the in-binary before/after pair.
void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool band = state.range(1) != 0;
  es::util::Rng rng(1);
  std::vector<double> times;
  times.reserve(n);
  for (std::size_t i = 0; i < n; ++i) times.push_back(rng.uniform(0, 1e6));
  for (auto _ : state) {
    es::sim::EventQueue queue;
    queue.set_band_enabled(band);
    std::uint64_t sum = 0;
    for (double t : times)
      queue.schedule(t, es::sim::EventClass::kOther,
                     [&sum](es::sim::Time) { ++sum; });
    while (!queue.empty()) queue.pop_and_run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndRun)
    ->ArgsProduct({{1000, 10000, 100000}, {1, 0}});

// The engine's real access pattern is a sliding window — events are
// scheduled near the clock as it advances, not all up-front.  This is the
// case the calendar band accelerates most.
void BM_EventQueueSlidingWindow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool band = state.range(1) != 0;
  es::util::Rng rng(3);
  std::vector<double> delays;
  delays.reserve(n);
  for (std::size_t i = 0; i < n; ++i) delays.push_back(rng.uniform(0, 100));
  for (auto _ : state) {
    es::sim::EventQueue queue;
    queue.set_band_enabled(band);
    std::uint64_t sum = 0;
    constexpr std::size_t kWindow = 1024;
    std::size_t next = 0;
    double now = 0;
    while (next < kWindow && next < n)
      queue.schedule(delays[next++], es::sim::EventClass::kOther,
                     [&sum](es::sim::Time) { ++sum; });
    while (!queue.empty()) {
      now = queue.pop_and_run();
      if (next < n)
        queue.schedule(now + delays[next++], es::sim::EventClass::kOther,
                       [&sum](es::sim::Time) { ++sum; });
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueSlidingWindow)
    ->ArgsProduct({{10000, 100000}, {1, 0}});

void BM_EventQueueCancellationHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool band = state.range(1) != 0;
  es::util::Rng rng(2);
  for (auto _ : state) {
    es::sim::EventQueue queue;
    queue.set_band_enabled(band);
    std::vector<es::sim::EventHandle> handles;
    handles.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      handles.push_back(queue.schedule(rng.uniform(0, 1e6),
                                       es::sim::EventClass::kOther,
                                       [](es::sim::Time) {}));
    // Cancel half — the elastic-workload pattern.
    for (std::size_t i = 0; i < n; i += 2) queue.cancel(handles[i]);
    while (!queue.empty()) queue.pop_and_run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueCancellationHeavy)
    ->ArgsProduct({{1000, 10000}, {1, 0}});

void BM_ReferenceQueueScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  es::util::Rng rng(1);
  std::vector<double> times;
  times.reserve(n);
  for (std::size_t i = 0; i < n; ++i) times.push_back(rng.uniform(0, 1e6));
  for (auto _ : state) {
    es::bench::ReferenceEventQueue queue;
    std::uint64_t sum = 0;
    for (double t : times)
      queue.schedule(t, es::sim::EventClass::kOther,
                     [&sum](es::sim::Time) { ++sum; });
    while (!queue.empty()) queue.pop_and_run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReferenceQueueScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ReferenceQueueCancellationHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  es::util::Rng rng(2);
  for (auto _ : state) {
    es::bench::ReferenceEventQueue queue;
    std::vector<es::bench::ReferenceEventHandle> handles;
    handles.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      handles.push_back(queue.schedule(rng.uniform(0, 1e6),
                                       es::sim::EventClass::kOther,
                                       [](es::sim::Time) {}));
    for (std::size_t i = 0; i < n; i += 2) queue.cancel(handles[i]);
    while (!queue.empty()) queue.pop_and_run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReferenceQueueCancellationHeavy)->Arg(1000)->Arg(10000);

void BM_MachineAllocateRelease(benchmark::State& state) {
  es::cluster::Machine machine(320, 32);
  std::int64_t id = 0;
  for (auto _ : state) {
    machine.allocate(++id, 128);
    machine.allocate(++id, 160);
    machine.release(id - 1);
    machine.release(id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK(BM_MachineAllocateRelease);

void BM_WorkloadGeneration(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    es::workload::GeneratorConfig config;
    config.num_jobs = jobs;
    config.seed = ++seed;
    config.p_dedicated = 0.3;
    config.p_extend = 0.2;
    config.p_reduce = 0.1;
    benchmark::DoNotOptimize(es::workload::generate(config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_WorkloadGeneration)->Arg(500)->Arg(5000);

void BM_WorkloadCalibration(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    es::workload::GeneratorConfig config;
    config.num_jobs = 500;
    config.seed = ++seed;
    config.target_load = 0.9;
    benchmark::DoNotOptimize(es::workload::generate(config));
  }
}
BENCHMARK(BM_WorkloadCalibration);


void BM_ContiguousAllocateReleaseCompact(benchmark::State& state) {
  es::util::Rng rng(7);
  for (auto _ : state) {
    es::cluster::ContiguousMachine machine(128);
    std::vector<std::int64_t> active;
    std::int64_t id = 0;
    for (int step = 0; step < 200; ++step) {
      const int units = static_cast<int>(rng.uniform_int(1, 32));
      if (machine.fits(units)) {
        machine.allocate(++id, units);
        active.push_back(id);
      } else if (!active.empty()) {
        machine.release(active.back());
        active.pop_back();
        machine.compact();
      }
    }
    benchmark::DoNotOptimize(machine.fragmentation());
  }
}
BENCHMARK(BM_ContiguousAllocateReleaseCompact);

}  // namespace

BENCHMARK_MAIN();
