// Figure 5 — batch workload: mean utilization and mean job waiting time vs
// the maximum skip count C_s in [1, 20], at Load = 0.9 and P_S = 0.5.
// EASY and LOS appear as flat reference lines.  The paper observes a wait
// minimum around C_s = 7-8 followed by a stable plateau.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Fig 5: metrics vs C_s (Load=0.9, P_S=0.5)", options))
    return 0;

  es::workload::GeneratorConfig config = es::bench::base_workload(options);
  config.p_small = 0.5;
  config.target_load = 0.9;

  const int cs_max = options.quick ? 8 : 20;
  const es::exp::Sweep sweep = es::exp::skip_count_sweep(
      config, 1, cs_max, {"EASY", "LOS"}, options.lookahead,
      options.replications);

  es::exp::print_sweep(std::cout, "Fig 5 — Load=0.9, P_S=0.5", sweep,
                       {"EASY", "LOS", "Delayed-LOS"});

  // Report the empirically optimal C_s by mean waiting time.
  double best_wait = 0;
  double best_cs = 0;
  for (const auto& point : sweep.points) {
    const double wait = point.by_algorithm.at("Delayed-LOS").mean_wait;
    if (best_cs == 0 || wait < best_wait) {
      best_wait = wait;
      best_cs = point.x;
    }
  }
  std::printf("Optimal C_s by mean wait: %.0f (paper: ~7-8)\n\n", best_cs);
  es::bench::save_csv(options, "fig05_skipcount_ps05", sweep);
  return 0;
}
