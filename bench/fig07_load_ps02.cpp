// Figure 7 + Table IV — batch workload dominated by large jobs (P_S = 0.2):
// mean utilization and waiting time vs offered load in [0.5, 1.0], and the
// paper's Table IV (maximum % improvement of Delayed-LOS over LOS/EASY).
//
// Expected shape: LOS *worse* than EASY (the paper's central claim about
// varied job sizes) and Delayed-LOS ahead of both.  C_s is tuned per-P_S
// with the Fig-5 procedure before the sweep, as in the paper.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Fig 7 / Table IV: metrics vs load (P_S=0.2)", options))
    return 0;

  es::workload::GeneratorConfig config = es::bench::base_workload(options);
  config.p_small = 0.2;

  // Pre-sweep C_s tuning at Load = 0.9 (paper section V-A).
  es::workload::GeneratorConfig tuning = config;
  tuning.target_load = 0.9;
  const int cs = es::exp::optimal_skip_count(tuning, 1, options.quick ? 4 : 12,
                                             options.replications);
  std::printf("Tuned C_s for P_S=0.2: %d\n\n", cs);

  const std::vector<std::string> algorithms{"EASY", "LOS", "Delayed-LOS"};
  const es::exp::Sweep sweep =
      es::exp::load_sweep(config, es::bench::load_grid(options), algorithms,
                          es::bench::algo_options(options, cs),
                          options.replications);

  es::exp::print_sweep(std::cout, "Fig 7 — P_S=0.2", sweep, algorithms);
  es::exp::print_improvements(
      std::cout,
      "Table IV — max % improvement of Delayed-LOS (paper: util 4.1/1.52, "
      "wait 31.88/21.65, slowdown 30.3/20.41)",
      sweep, "Delayed-LOS", {"LOS", "EASY"});
  es::bench::save_csv(options, "fig07_load_ps02", sweep);
  return 0;
}
