// Figure 6 — same sweep as Fig 5 with P_S = 0.8 (small jobs dominate).
// The paper observes insensitivity to C_s beyond ~3 when there are few
// large jobs to skip for.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Fig 6: metrics vs C_s (Load=0.9, P_S=0.8)", options))
    return 0;

  es::workload::GeneratorConfig config = es::bench::base_workload(options);
  config.p_small = 0.8;
  config.target_load = 0.9;

  const int cs_max = options.quick ? 8 : 20;
  const es::exp::Sweep sweep = es::exp::skip_count_sweep(
      config, 1, cs_max, {"EASY", "LOS"}, options.lookahead,
      options.replications);

  es::exp::print_sweep(std::cout, "Fig 6 — Load=0.9, P_S=0.8", sweep,
                       {"EASY", "LOS", "Delayed-LOS"});

  // Spread of Delayed-LOS wait across C_s >= 3: the paper's insensitivity
  // observation.
  double lo = 0, hi = 0;
  for (const auto& point : sweep.points) {
    if (point.x < 3) continue;
    const double wait = point.by_algorithm.at("Delayed-LOS").mean_wait;
    if (lo == 0 || wait < lo) lo = wait;
    if (wait > hi) hi = wait;
  }
  std::printf(
      "Delayed-LOS wait spread across C_s>=3: %.1f%% (paper: flat beyond "
      "~3)\n\n",
      hi > 0 ? 100.0 * (hi - lo) / hi : 0.0);
  es::bench::save_csv(options, "fig06_skipcount_ps08", sweep);
  return 0;
}
