// Scale check (paper section V): "We also ran simulations for a couple of
// scenarios with 10,000 jobs and found no significant difference in
// performance metrics from the 500 job runs."
//
// Reproduced here: the same two scenarios at N = 500 and N = 10,000 with
// identical offered load; the interesting question is whether the
// *ordering* and rough relative gaps persist, and it also serves as a
// throughput soak test (the 10k run still takes well under a second).
// The million-job extension of this experiment lives in scale_1m, built on
// the same scale_workload/run_scale_* harness.
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Scale check: 500 vs 10,000 jobs", options))
    return 0;

  const std::size_t big = options.quick ? 2000 : 10000;
  // Two regimes: load 0.7 sits below the fragmentation-limited utilization
  // ceiling (~80%), so queues are stable and metrics should be
  // N-independent (the paper's claim); load 0.9 exceeds the ceiling, so
  // backlog — and thus mean wait — grows with trace length for *every*
  // policy, which calibrates what "no significant difference" implies
  // about the original testbed's operating point.
  for (double load : {0.7, 0.9}) {
    char title[96];
    std::snprintf(title, sizeof title,
                  "Scale check — P_S=0.5, load %.1f (N=500 vs N=%zu)", load,
                  big);
    es::util::AsciiTable table(title);
    table.set_columns({"algorithm", "N", "util %", "wait s", "slowdown",
                       "sim ms"});
    for (const char* algorithm : {"EASY", "LOS", "Delayed-LOS"}) {
      for (std::size_t jobs : {std::size_t{500}, big}) {
        es::exp::RunSpec spec;
        spec.workload = es::bench::scale_workload(options, jobs, load);
        spec.algorithm = algorithm;
        spec.options = es::bench::algo_options(options);
        const es::bench::ScalePoint point =
            es::bench::run_scale_point(spec, options.replications);
        table.cell(algorithm)
            .cell(static_cast<long long>(jobs))
            .cell(100.0 * point.aggregate.utilization, 2)
            .cell(point.aggregate.mean_wait, 0)
            .cell(point.aggregate.slowdown, 3)
            .cell(static_cast<long long>(point.wall_seconds * 1000.0));
        table.end_row();
      }
    }
    table.render(std::cout);
    std::cout << '\n';
  }
  std::printf(
      "Paper: 10,000-job runs showed no significant difference from the\n"
      "500-job runs.  Expect that to hold in the stable regime (load 0.7);\n"
      "above the utilization ceiling the backlog grows with trace length\n"
      "for every policy, so absolute waits scale with N there.\n");
  return 0;
}
