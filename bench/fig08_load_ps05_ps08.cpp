// Figure 8 — mean job waiting time vs load for P_S = 0.5 and P_S = 0.8.
// Expected shape: with more small jobs, Delayed-LOS and EASY converge while
// both stay ahead of LOS.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv, "Fig 8: waiting time vs load (P_S=0.5 and 0.8)",
          options))
    return 0;

  const std::vector<std::string> algorithms{"EASY", "LOS", "Delayed-LOS"};
  for (double ps : {0.5, 0.8}) {
    es::workload::GeneratorConfig config = es::bench::base_workload(options);
    config.p_small = ps;

    es::workload::GeneratorConfig tuning = config;
    tuning.target_load = 0.9;
    const int cs = es::exp::optimal_skip_count(
        tuning, 1, options.quick ? 4 : 12, options.replications);
    std::printf("Tuned C_s for P_S=%.1f: %d\n\n", ps, cs);

    const es::exp::Sweep sweep =
        es::exp::load_sweep(config, es::bench::load_grid(options), algorithms,
                            es::bench::algo_options(options, cs),
                            options.replications);
    char title[64];
    std::snprintf(title, sizeof title, "Fig 8 — P_S=%.1f", ps);
    es::exp::print_sweep(std::cout, title, sweep, algorithms);
    char csv_name[64];
    std::snprintf(csv_name, sizeof csv_name, "fig08_load_ps%02.0f", ps * 10);
    es::bench::save_csv(options, csv_name, sweep);
  }
  return 0;
}
