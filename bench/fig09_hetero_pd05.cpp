// Figure 9 + Table V — heterogeneous workload (P_D = 0.5 dedicated jobs,
// P_S = 0.2): metrics vs load for EASY-D, LOS-D and Hybrid-LOS, plus the
// paper's Table V (maximum % improvement of Hybrid-LOS).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  es::bench::BenchOptions options;
  if (!es::bench::parse_bench_options(
          argc, argv,
          "Fig 9 / Table V: heterogeneous workload (P_D=0.5, P_S=0.2)",
          options))
    return 0;

  es::workload::GeneratorConfig config = es::bench::base_workload(options);
  config.p_small = 0.2;
  config.p_dedicated = 0.5;

  es::workload::GeneratorConfig tuning = config;
  tuning.p_dedicated = 0.0;  // C_s tuning uses the batch procedure
  tuning.target_load = 0.9;
  const int cs = es::exp::optimal_skip_count(tuning, 1, options.quick ? 4 : 12,
                                             options.replications);
  std::printf("Tuned C_s for P_S=0.2: %d\n\n", cs);

  const std::vector<std::string> algorithms{"EASY-D", "LOS-D", "Hybrid-LOS"};
  const es::exp::Sweep sweep =
      es::exp::load_sweep(config, es::bench::load_grid(options), algorithms,
                          es::bench::algo_options(options, cs),
                          options.replications);

  es::exp::print_sweep(std::cout, "Fig 9 — P_D=0.5, P_S=0.2", sweep,
                       algorithms);
  es::exp::print_improvements(
      std::cout,
      "Table V — max % improvement of Hybrid-LOS (paper: util 4.55/2.33, "
      "wait 25.31/18.24, slowdown 24.29/17.43)",
      sweep, "Hybrid-LOS", {"LOS-D", "EASY-D"});
  es::bench::save_csv(options, "fig09_hetero_pd05", sweep);
  return 0;
}
