// simrun — run one simulation from the command line.
//
//   $ simrun --trace trace.cwf --algorithm Hybrid-LOS-E --procs 320
//   $ simrun --synthetic --jobs 500 --p-small 0.2 --load 0.9 \
//            --algorithm Delayed-LOS --cs 7 --per-job jobs.csv
//
// Prints the paper's three metrics plus diagnostics; optionally dumps
// per-job outcomes as CSV for plotting.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "exp/analysis.hpp"
#include "exp/experiment.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "workload/cwf.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"

int main(int argc, char** argv) {
  std::string trace;
  std::string algorithm = "Delayed-LOS";
  std::string per_job_csv;
  std::string log_level = "warn";
  bool synthetic = false;
  int procs = 320;
  int granularity = 32;
  int jobs = 500;
  unsigned long long seed = 1;
  double p_small = 0.5, p_dedicated = 0.0, p_extend = 0.0, p_reduce = 0.0;
  double load = 0.0;
  int cs = 7, lookahead = 250;
  double mtbf = 0.0, mttr = 1800.0;
  unsigned long long fail_seed = 1;
  int fail_min_nodes = 1, fail_max_nodes = 1;
  int fail_retry_cap = 0;
  std::string requeue = "head";

  es::util::CliParser cli("Run one scheduling simulation");
  cli.add_option("trace", "SWF/CWF trace to replay", &trace);
  cli.add_flag("synthetic", "generate a synthetic workload instead",
               &synthetic);
  cli.add_option("algorithm", "algorithm name (Table III, FCFS, CONS, Adaptive)",
                 &algorithm);
  cli.add_option("procs", "machine size (default 320)", &procs);
  cli.add_option("granularity", "allocation granularity (default 32)",
                 &granularity);
  cli.add_option("jobs", "synthetic: job count", &jobs);
  cli.add_option("seed", "synthetic: RNG seed", &seed);
  cli.add_option("p-small", "synthetic: P_S", &p_small);
  cli.add_option("p-dedicated", "synthetic: P_D", &p_dedicated);
  cli.add_option("p-extend", "synthetic: P_E", &p_extend);
  cli.add_option("p-reduce", "synthetic: P_R", &p_reduce);
  cli.add_option("load", "synthetic: target offered load (0 = off)", &load);
  cli.add_option("cs", "max skip count C_s (default 7)", &cs);
  cli.add_option("lookahead", "DP lookahead (default 250)", &lookahead);
  cli.add_option("mtbf", "fault injection: mean time between failures in "
                 "seconds (0 = disabled)", &mtbf);
  cli.add_option("mttr", "fault injection: mean time to repair in seconds "
                 "(default 1800)", &mttr);
  cli.add_option("fail-seed", "fault injection: RNG seed", &fail_seed);
  cli.add_option("fail-min-nodes", "fault injection: min nodes per outage",
                 &fail_min_nodes);
  cli.add_option("fail-max-nodes", "fault injection: max nodes per outage",
                 &fail_max_nodes);
  cli.add_option("fail-retry-cap", "fault injection: abandon a job after "
                 "this many preemptions (0 = retry forever)", &fail_retry_cap);
  cli.add_option("requeue", "preempted-job policy: head/tail/abandon",
                 &requeue);
  bool profile = false;
  std::string trace_csv;
  cli.add_option("per-job", "write per-job outcomes to this CSV", &per_job_csv);
  cli.add_option("trace-out", "write the full schedule audit trace to this CSV",
                 &trace_csv);
  cli.add_flag("profile", "print an ASCII utilization-over-time profile",
               &profile);
  cli.add_option("log", "log level: debug/info/warn/error/off", &log_level);
  if (!cli.parse(argc, argv)) return 1;
  es::util::set_log_level(es::util::parse_log_level(log_level));

  es::workload::Workload workload;
  if (synthetic || trace.empty()) {
    es::workload::GeneratorConfig config;
    config.machine_procs = procs;
    config.num_jobs = static_cast<std::size_t>(jobs);
    config.seed = seed;
    config.p_small = p_small;
    config.p_dedicated = p_dedicated;
    config.p_extend = p_extend;
    config.p_reduce = p_reduce;
    config.target_load = load;
    workload = es::workload::generate(config);
    std::printf("Synthetic workload: %zu jobs, offered load %.3f\n",
                workload.jobs.size(),
                es::workload::offered_load(workload, procs));
  } else {
    workload = es::workload::load_cwf_workload(trace);
    workload.machine_procs = procs;
    workload.granularity = granularity;
    std::erase_if(workload.jobs, [procs](const es::workload::Job& job) {
      return job.num > procs;
    });
    if (workload.jobs.empty()) {
      std::fprintf(stderr, "simrun: no usable jobs in %s\n", trace.c_str());
      return 1;
    }
    std::printf("Trace %s: %zu jobs, offered load %.3f\n", trace.c_str(),
                workload.jobs.size(),
                es::workload::offered_load(workload, procs));
  }

  es::core::AlgorithmOptions options;
  options.max_skip_count = cs;
  options.lookahead = lookahead;
  options.record_trace = !trace_csv.empty();
  if (mtbf > 0) {
    options.failure.enabled = true;
    options.failure.seed = fail_seed;
    options.failure.mtbf = mtbf;
    options.failure.mttr = mttr;
    options.failure.min_nodes = fail_min_nodes;
    options.failure.max_nodes = fail_max_nodes;
    options.failure.max_interruptions = fail_retry_cap;
    if (!es::fault::parse_requeue_policy(requeue, options.requeue)) {
      std::fprintf(stderr, "simrun: unknown requeue policy '%s'\n",
                   requeue.c_str());
      return 1;
    }
  }
  const auto result = es::exp::run_workload(workload, algorithm, options);

  es::util::AsciiTable table("simrun — " + algorithm);
  table.set_columns({"metric", "value"});
  table.cell("mean utilization %").cell(100.0 * result.utilization, 2).end_row();
  table.cell("mean wait (s)").cell(result.mean_wait, 1).end_row();
  table.cell("slowdown (paper defn)").cell(result.slowdown, 3).end_row();
  table.cell("mean per-job slowdown").cell(result.mean_per_job_slowdown, 3).end_row();
  table.cell("mean bounded slowdown").cell(result.mean_bounded_slowdown, 3).end_row();
  table.cell("completed / killed")
      .cell(std::to_string(result.completed) + " / " +
            std::to_string(result.killed))
      .end_row();
  table.cell("dedicated on time").cell(static_cast<long long>(result.dedicated_on_time)).end_row();
  table.cell("mean dedicated delay (s)").cell(result.mean_dedicated_delay, 1).end_row();
  table.cell("ECCs processed").cell(static_cast<long long>(result.ecc.processed)).end_row();
  table.cell("events / cycles")
      .cell(std::to_string(result.events) + " / " +
            std::to_string(result.cycles))
      .end_row();
  if (mtbf > 0) {
    const auto& failure = result.failure;
    table.cell("outages").cell(static_cast<long long>(failure.outages)).end_row();
    table.cell("jobs interrupted / requeued")
        .cell(std::to_string(failure.interruptions) + " / " +
              std::to_string(failure.requeues))
        .end_row();
    table.cell("jobs abandoned").cell(static_cast<long long>(failure.abandoned)).end_row();
    table.cell("lost proc-seconds").cell(failure.lost_proc_seconds, 0).end_row();
    table.cell("down proc-seconds").cell(failure.down_proc_seconds, 0).end_row();
    table.cell("goodput proc-seconds").cell(failure.goodput_proc_seconds, 0).end_row();
    table.cell("wasted proc-seconds").cell(failure.wasted_proc_seconds, 0).end_row();
  }
  table.render(std::cout);

  if (profile) {
    const auto timeline =
        es::exp::utilization_timeline(result, workload.machine_procs, 72);
    std::printf("\nutilization over time (%s total):\n%s\n",
                es::util::format_duration(result.makespan).c_str(),
                es::exp::render_profile(timeline).c_str());
  }

  if (!trace_csv.empty() && result.trace != nullptr) {
    std::ofstream out(trace_csv);
    if (!out) {
      std::fprintf(stderr, "simrun: cannot write %s\n", trace_csv.c_str());
      return 1;
    }
    result.trace->write_csv(out);
    std::printf("[csv] %s (%zu events)\n", trace_csv.c_str(),
                result.trace->size());
  }

  if (!per_job_csv.empty()) {
    std::ofstream out(per_job_csv);
    if (!out) {
      std::fprintf(stderr, "simrun: cannot write %s\n", per_job_csv.c_str());
      return 1;
    }
    es::util::CsvWriter csv(out);
    csv.set_header({"id", "dedicated", "killed", "procs", "arrival",
                    "started", "finished", "wait", "run"});
    for (const auto& job : result.jobs) {
      csv.cell(static_cast<long long>(job.id))
          .cell(static_cast<long long>(job.dedicated))
          .cell(static_cast<long long>(job.killed))
          .cell(job.procs)
          .cell(job.arrival)
          .cell(job.started)
          .cell(job.finished)
          .cell(job.wait)
          .cell(job.run);
      csv.end_row();
    }
    std::printf("[csv] %s (%zu rows)\n", per_job_csv.c_str(),
                result.jobs.size());
  }
  return 0;
}
