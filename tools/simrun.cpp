// simrun — run one simulation from the command line.
//
//   $ simrun --trace trace.cwf --algorithm Hybrid-LOS-E --procs 320
//   $ simrun --synthetic --num-jobs 500 --p-small 0.2 --load 0.9
//            --algorithm Delayed-LOS --cs 7 --per-job jobs.csv
//   $ simrun --synthetic --replications 8 --jobs 4   # 8 seeds, 4 threads
//   $ simrun --scenario repro.scn --algorithm LOS-E  # replay a fuzz repro
//
// Prints the paper's three metrics plus diagnostics; optionally dumps
// per-job outcomes as CSV for plotting.  CSV outputs are written atomically
// (temp file + rename) so a crash mid-write never leaves a truncated file.
// With --replications N the run is repeated over N derived seeds (fanned
// across --jobs worker threads) and the seed-mean aggregate is printed —
// byte-identical output whatever the thread count.
//
// Crash recovery: --snapshot-every N serializes the full engine state every
// N scheduling cycles into --snapshot-dir (a ring of --snapshot-keep
// generations, each written atomically with fsync-before-rename);
// --restore-from <file-or-dir> resumes an interrupted run from a snapshot
// (a directory is scanned for its newest *intact* generation) and produces
// byte-identical results to the uninterrupted run.
//
// Exit codes: 0 success, 1 usage error, 2 invalid flag combination or
// unknown algorithm, 3 output I/O error, 4 watchdog abort (partial metrics
// were printed), 6 corrupt / version-incompatible / mismatched snapshot.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <ostream>
#include <string>

#include "core/config_spine.hpp"
#include "core/factory.hpp"
#include "exp/analysis.hpp"
#include "exp/experiment.hpp"
#include "fuzz/scenario.hpp"
#include "sim/watchdog.hpp"
#include "snap/ring.hpp"
#include "snap/snapshot.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/cwf.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"

namespace {

// Flag-validation failure: field-named message, distinct exit code (2).
int flag_error(const char* flag, const char* message) {
  std::fprintf(stderr, "simrun: --%s: %s\n", flag, message);
  return 2;
}

// Human-friendly range label for one log2 histogram bucket: "[0]", "[1]",
// "[2..3]", ..., "[32768+]" for the overflow bucket.
std::string bucket_label(int b) {
  const auto lo = es::sched::CycleStats::bucket_lo(b);
  const auto hi = es::sched::CycleStats::bucket_hi(b);
  if (lo == hi) return "[" + std::to_string(lo) + "]";
  if (b == es::sched::CycleStats::kBuckets - 1)
    return "[" + std::to_string(lo) + "+]";
  return "[" + std::to_string(lo) + ".." + std::to_string(hi) + "]";
}

// Appends the CycleStatsObserver counters to a perf table: the summary
// tallies plus one row per non-empty histogram bucket.  Everything here is
// deterministic, so the parallel-vs-serial output diff stays byte-exact.
void add_cycle_stats_rows(es::util::AsciiTable& table,
                          const es::sched::CycleStats& cycle) {
  table.cell("cycles observed")
      .cell(static_cast<long long>(cycle.cycles)).end_row();
  table.cell("job starts / backfilled")
      .cell(std::to_string(cycle.starts) + " / " +
            std::to_string(cycle.backfill_starts))
      .end_row();
  table.cell("max queue depth at cycle")
      .cell(static_cast<long long>(cycle.max_queue_depth)).end_row();
  for (int b = 0; b < es::sched::CycleStats::kBuckets; ++b) {
    if (cycle.queue_depth[b] == 0) continue;
    table.cell("queue depth " + bucket_label(b) + " cycles")
        .cell(static_cast<long long>(cycle.queue_depth[b])).end_row();
  }
  for (int b = 0; b < es::sched::CycleStats::kBuckets; ++b) {
    if (cycle.dp_calls[b] == 0) continue;
    table.cell("DP calls/cycle " + bucket_label(b) + " cycles")
        .cell(static_cast<long long>(cycle.dp_calls[b])).end_row();
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace;
  std::string algorithm = "Delayed-LOS";
  std::string per_job_csv;
  std::string log_level = "warn";
  bool synthetic = false;
  int procs = 320;
  int granularity = 32;
  int num_jobs = 500;
  int replications = 1;
  int parallel_jobs = 1;
  bool perf_report = false;
  bool streamed = false;
  bool no_dp_cache = false;
  bool no_calendar_queue = false;
  bool no_dp_simd = false;
  bool no_spec_dp = false;
  unsigned long long seed = 1;
  double p_small = 0.5, p_dedicated = 0.0, p_extend = 0.0, p_reduce = 0.0;
  double load = 0.0;
  int cs = 7, lookahead = 250;
  double mtbf = 0.0, mttr = 1800.0;
  unsigned long long fail_seed = 1;
  int fail_min_nodes = 1, fail_max_nodes = 1;
  int fail_retry_cap = 0;
  std::string requeue = "head";
  double ckpt_interval = 0.0, ckpt_overhead = 0.0;
  bool ckpt_on_preempt = false;
  unsigned long long max_events = 0;
  double max_sim_time = 0.0, wall_budget = 0.0;
  int no_progress_cycles = 0;
  unsigned long long snapshot_every = 0;
  std::string snapshot_dir;
  int snapshot_keep = 3;
  std::string restore_from;

  std::string scenario_path;
  std::string config_path;
  bool dump_config = false;
  bool list_params = false;
  int users = 0;
  int num_pools = 0;
  double zipf_exponent = 1.1;

  es::util::CliParser cli("Run one scheduling simulation");
  cli.add_option("trace", "SWF/CWF trace to replay", &trace);
  cli.add_option("config", "load engine/algorithm/tenancy parameters from "
                 "this key=value config file; explicit CLI flags override "
                 "file values, which override built-in defaults",
                 &config_path);
  cli.add_flag("dump-config", "print the effective configuration (after "
               "--config and CLI overrides) as a loadable config file and "
               "exit", &dump_config);
  cli.add_flag("list-params", "print every registered configuration "
               "parameter with its type, default, range and doc, then exit",
               &list_params);
  cli.add_flag("synthetic", "generate a synthetic workload instead",
               &synthetic);
  cli.add_option("scenario", "replay a serialized atlas scenario (*.scn) "
                 "through --algorithm; the file carries the workload and "
                 "the failure/checkpoint/requeue/watchdog knobs",
                 &scenario_path);
  cli.add_option("algorithm", "algorithm name (Table III, FCFS, CONS, Adaptive)",
                 &algorithm);
  bool list_algorithms = false;
  cli.add_flag("list-algorithms", "print every known algorithm name and exit",
               &list_algorithms);
  cli.add_option("procs", "machine size (default 320)", &procs);
  cli.add_option("granularity", "allocation granularity (default 32)",
                 &granularity);
  cli.add_option("num-jobs", "synthetic: job count", &num_jobs);
  cli.add_option("replications", "repeat over this many derived seeds and "
                 "print the aggregate (default 1)", &replications);
  cli.add_option("jobs", "worker threads fanning the replications "
                 "(default 1 = serial; 0 = all cores)", &parallel_jobs);
  cli.add_flag("perf-report", "print hot-path counters (DP calls, cache "
               "hits, fast-path exits; event-queue scheduled/cancelled/"
               "fired, peak pending) and wall timings", &perf_report);
  cli.add_flag("streamed", "pull the workload through the engine in bounded "
               "chunks instead of materializing it (synthetic workloads "
               "stream straight from the generator); results are "
               "byte-identical, memory stays flat at million-job scale",
               &streamed);
  cli.add_flag("no-dp-cache", "disable the knapsack memo cache (schedules "
               "are identical either way; for perf comparison)",
               &no_dp_cache);
  cli.add_flag("no-calendar-queue", "order events through the plain binary "
               "heap instead of the calendar band (results are identical "
               "either way; for perf comparison)", &no_calendar_queue);
  cli.add_flag("no-dp-simd", "force the scalar DP row kernel (selections "
               "are identical either way; for perf comparison)", &no_dp_simd);
  cli.add_flag("no-spec-dp", "disable speculative DP precomputation between "
               "cycles (schedules are identical either way; speculation "
               "needs --jobs > 1 to engage)", &no_spec_dp);
  cli.add_option("seed", "synthetic: RNG seed", &seed);
  cli.add_option("p-small", "synthetic: P_S", &p_small);
  cli.add_option("p-dedicated", "synthetic: P_D", &p_dedicated);
  cli.add_option("p-extend", "synthetic: P_E", &p_extend);
  cli.add_option("p-reduce", "synthetic: P_R", &p_reduce);
  cli.add_option("load", "synthetic: target offered load (0 = off)", &load);
  cli.add_option("users", "synthetic: Zipf-distributed submitter population "
                 "(0 = untagged single-tenant workload)", &users);
  cli.add_option("pools", "synthetic: scheduling pools the users map onto "
                 "(0 = all jobs in pool 0)", &num_pools);
  cli.add_option("zipf-exponent", "synthetic: skew of the submitter "
                 "distribution (default 1.1)", &zipf_exponent);
  cli.add_option("cs", "max skip count C_s (default 7)", &cs);
  cli.add_option("lookahead", "DP lookahead (default 250)", &lookahead);
  cli.add_option("mtbf", "fault injection: mean time between failures in "
                 "seconds (0 = disabled)", &mtbf);
  cli.add_option("mttr", "fault injection: mean time to repair in seconds "
                 "(default 1800)", &mttr);
  cli.add_option("fail-seed", "fault injection: RNG seed", &fail_seed);
  cli.add_option("fail-min-nodes", "fault injection: min nodes per outage",
                 &fail_min_nodes);
  cli.add_option("fail-max-nodes", "fault injection: max nodes per outage",
                 &fail_max_nodes);
  cli.add_option("fail-retry-cap", "fault injection: abandon a job after "
                 "this many preemptions (0 = retry forever)", &fail_retry_cap);
  cli.add_option("requeue", "preempted-job policy: head/tail/abandon",
                 &requeue);
  cli.add_option("ckpt-interval", "checkpoint recovery: seconds of work "
                 "between periodic checkpoints (0 = disabled)",
                 &ckpt_interval);
  cli.add_option("ckpt-overhead", "checkpoint recovery: seconds each "
                 "checkpoint adds to the run (default 0)", &ckpt_overhead);
  cli.add_flag("ckpt-on-preempt", "checkpoint recovery: also bank all work "
               "at the preemption instant (checkpoint-on-signal)",
               &ckpt_on_preempt);
  cli.add_option("max-events", "watchdog: abort after this many simulation "
                 "events (0 = unlimited)", &max_events);
  cli.add_option("max-sim-time", "watchdog: abort past this simulated time "
                 "in seconds (0 = unlimited)", &max_sim_time);
  cli.add_option("wall-budget", "watchdog: abort after this many wall-clock "
                 "seconds (0 = unlimited)", &wall_budget);
  cli.add_option("no-progress-cycles", "watchdog: abort after this many "
                 "consecutive scheduler cycles without a job start or finish "
                 "while work is queued (0 = disabled)", &no_progress_cycles);
  cli.add_option("snapshot-every", "crash recovery: serialize the engine "
                 "state every N scheduling cycles (0 = disabled)",
                 &snapshot_every);
  cli.add_option("snapshot-dir", "crash recovery: directory holding the "
                 "snapshot ring (required with --snapshot-every)",
                 &snapshot_dir);
  cli.add_option("snapshot-keep", "crash recovery: ring retention — newest "
                 "K snapshot generations kept (default 3)", &snapshot_keep);
  cli.add_option("restore-from", "crash recovery: resume from this snapshot "
                 "file, or scan this directory for the newest intact "
                 "generation", &restore_from);
  bool profile = false;
  std::string trace_csv;
  cli.add_option("per-job", "write per-job outcomes to this CSV", &per_job_csv);
  cli.add_option("trace-out", "write the full schedule audit trace to this CSV",
                 &trace_csv);
  cli.add_flag("profile", "print an ASCII utilization-over-time profile",
               &profile);
  cli.add_option("log", "log level: debug/info/warn/error/off", &log_level);
  if (!cli.parse(argc, argv)) return 1;
  es::util::set_log_level(es::util::parse_log_level(log_level));

  if (list_algorithms) {
    for (const std::string& name : es::core::algorithm_names())
      std::printf("%s\n", name.c_str());
    return 0;
  }

  // The configuration spine: one registry bound to the live option structs.
  // Precedence is CLI > config file > built-in defaults — the file loads
  // first, then every flag the user actually typed writes over it.
  es::core::AlgorithmOptions options;
  es::workload::GeneratorConfig generator_config;
  es::util::ParamRegistry registry;
  es::core::register_run_params(registry, options);
  es::core::register_tenancy_params(registry, generator_config);

  if (list_params) {
    std::fputs(registry.list_params().c_str(), stdout);
    return 0;
  }
  if (!config_path.empty()) {
    try {
      registry.load_file(config_path);
    } catch (const es::util::ConfigError& error) {
      std::fprintf(stderr, "simrun: --config: %s\n", error.what());
      return 2;
    }
  }
  if (cli.was_set("procs")) options.engine.machine_procs = procs;
  if (cli.was_set("granularity")) options.engine.granularity = granularity;
  if (cli.was_set("cs")) options.max_skip_count = cs;
  if (cli.was_set("lookahead")) options.lookahead = lookahead;
  if (no_dp_cache) options.dp_cache = false;
  if (no_calendar_queue) options.engine.calendar_event_queue = false;
  if (no_spec_dp) options.engine.speculative_dp = false;
  if (mtbf > 0) {
    options.engine.failure.enabled = true;
    options.engine.failure.mtbf = mtbf;
  }
  if (cli.was_set("fail-seed")) options.engine.failure.seed = fail_seed;
  if (cli.was_set("mttr")) options.engine.failure.mttr = mttr;
  if (cli.was_set("fail-min-nodes"))
    options.engine.failure.min_nodes = fail_min_nodes;
  if (cli.was_set("fail-max-nodes"))
    options.engine.failure.max_nodes = fail_max_nodes;
  if (cli.was_set("fail-retry-cap"))
    options.engine.failure.max_interruptions = fail_retry_cap;
  if (cli.was_set("requeue") &&
      !es::fault::parse_requeue_policy(requeue, options.engine.requeue))
    return flag_error("requeue", "expected head, tail or abandon");
  if (cli.was_set("ckpt-interval"))
    options.engine.checkpoint.interval = ckpt_interval;
  if (cli.was_set("ckpt-overhead"))
    options.engine.checkpoint.overhead = ckpt_overhead;
  if (ckpt_on_preempt) options.engine.checkpoint.on_preempt = true;
  if (options.engine.checkpoint.interval > 0 ||
      options.engine.checkpoint.on_preempt)
    options.engine.checkpoint.enabled = true;
  if (cli.was_set("max-events"))
    options.engine.watchdog.max_events = max_events;
  if (cli.was_set("max-sim-time"))
    options.engine.watchdog.max_sim_time = max_sim_time;
  if (cli.was_set("wall-budget"))
    options.engine.watchdog.wall_budget = wall_budget;
  if (cli.was_set("no-progress-cycles"))
    options.engine.watchdog.no_progress_cycles = no_progress_cycles;
  if (cli.was_set("snapshot-every"))
    options.engine.snapshot.every_cycles = snapshot_every;
  if (cli.was_set("snapshot-dir")) options.engine.snapshot.dir = snapshot_dir;
  if (cli.was_set("snapshot-keep"))
    options.engine.snapshot.keep = static_cast<std::size_t>(snapshot_keep);
  if (cli.was_set("users")) generator_config.num_users = users;
  if (cli.was_set("pools")) generator_config.num_pools = num_pools;
  if (cli.was_set("zipf-exponent"))
    generator_config.zipf_exponent = zipf_exponent;
  options.engine.record_trace |= !trace_csv.empty();
  options.engine.collect_cycle_stats |= perf_report;

  // Finalize-time validation: range re-checks plus the cross-field rules
  // (granularity divides procs, resize needs ECCs, checkpoint overhead
  // needs an interval, pool min-shares sum <= 1, ...), each reported with
  // the offending field name.
  try {
    registry.finalize();
  } catch (const es::util::ConfigError& error) {
    std::fprintf(stderr, "simrun: config: %s\n", error.what());
    return 2;
  }

  if (dump_config) {
    std::fputs(registry.dump_config().c_str(), stdout);
    return 0;
  }

  // Merged values drive everything downstream, including workload shaping.
  procs = options.engine.machine_procs;
  granularity = options.engine.granularity;
  snapshot_every = options.engine.snapshot.every_cycles;
  snapshot_dir = options.engine.snapshot.dir;
  snapshot_keep = static_cast<int>(options.engine.snapshot.keep);

  // Flag validation (exit 2): catch contradictory or degenerate settings
  // before spending any simulation time on them.
  if (!es::core::is_algorithm_name(algorithm)) {
    std::fprintf(stderr, "simrun: --algorithm: unknown algorithm '%s'\n",
                 algorithm.c_str());
    std::fprintf(stderr, "known names (try --list-algorithms):\n");
    for (const std::string& name : es::core::algorithm_names())
      std::fprintf(stderr, "  %s\n", name.c_str());
    return 2;
  }
  if (mtbf < 0)
    return flag_error("mtbf", "must be >= 0 (0 disables fault injection)");
  if (mtbf > 0 && mttr <= 0)
    return flag_error("mttr", "must be > 0 when fault injection is enabled");
  if (ckpt_interval < 0)
    return flag_error("ckpt-interval", "must be >= 0 (0 disables periodic "
                      "checkpoints)");
  if (ckpt_overhead < 0)
    return flag_error("ckpt-overhead", "must be >= 0");
  // Checkpoints only pay off when something preempts: fault injection or a
  // policy (FairShare) that claws capacity back on its own.  Only flags the
  // user typed are checked — a shared config file may carry checkpoint
  // settings that are simply inert for a non-preempting algorithm.
  if ((ckpt_interval > 0 || ckpt_on_preempt) &&
      !options.engine.failure.enabled &&
      !es::core::make_algorithm(algorithm, options)
           .policy->initiates_preemption())
    return flag_error("ckpt-interval", "checkpoint recovery only matters "
                      "under fault injection or a preempting policy; set "
                      "--mtbf > 0 as well");
  if (max_sim_time < 0)
    return flag_error("max-sim-time", "must be >= 0 (0 = unlimited)");
  if (wall_budget < 0)
    return flag_error("wall-budget", "must be >= 0 (0 = unlimited)");
  if (no_progress_cycles < 0)
    return flag_error("no-progress-cycles", "must be >= 0 (0 = disabled)");
  if (snapshot_every > 0 && snapshot_dir.empty())
    return flag_error("snapshot-every", "needs --snapshot-dir to hold the "
                      "snapshot ring");
  if (!snapshot_dir.empty() && snapshot_every == 0)
    return flag_error("snapshot-dir", "has no effect without "
                      "--snapshot-every > 0");
  if (snapshot_keep < 1)
    return flag_error("snapshot-keep", "must be >= 1");
  if (replications < 1)
    return flag_error("replications", "must be >= 1");
  if (!restore_from.empty() && replications > 1)
    return flag_error("restore-from", "a snapshot captures one single run; "
                      "use --replications 1");
  if ((snapshot_every > 0) && replications > 1)
    return flag_error("snapshot-every", "periodic snapshots describe a "
                      "single run; use --replications 1");
  if (parallel_jobs < 0)
    return flag_error("jobs", "must be >= 0 (0 = all cores, 1 = serial)");
  if (replications > 1 && (!per_job_csv.empty() || !trace_csv.empty()))
    return flag_error("replications", "per-job/trace CSVs describe a single "
                      "run; drop --per-job/--trace-out or use "
                      "--replications 1");
  if (replications > 1 && !trace.empty())
    return flag_error("replications", "derived seeds only vary synthetic "
                      "workloads; a fixed trace would repeat the same run");
  if (!scenario_path.empty() && (synthetic || !trace.empty()))
    return flag_error("scenario", "a scenario file already carries its "
                      "workload; drop --trace/--synthetic");
  if (!scenario_path.empty() && replications > 1)
    return flag_error("replications", "a scenario describes one fixed run; "
                      "use --replications 1");
  if (streamed && !restore_from.empty())
    return flag_error("streamed", "a streaming run keeps no retired-job "
                      "history to restore into; drop --restore-from");
  if (streamed && snapshot_every > 0)
    return flag_error("streamed", "snapshots need the full job table; "
                      "drop --snapshot-every or --streamed");
  if (streamed && !scenario_path.empty())
    return flag_error("streamed", "scenario files are materialized repros; "
                      "drop --scenario or --streamed");
  if (streamed && replications > 1)
    return flag_error("streamed", "the seed-mean aggregate path "
                      "materializes its workloads; use --replications 1");
  if (parallel_jobs == 0) parallel_jobs = es::util::hardware_parallelism();
  es::util::set_global_parallelism(parallel_jobs);

  es::workload::Workload workload;
  es::fuzz::Scenario scenario;
  const bool have_scenario = !scenario_path.empty();
  if (have_scenario) {
    // Malformed content is a validation failure (2); an unreadable file is
    // an I/O failure (3) — the same conventions as the CSV outputs.
    try {
      scenario = es::fuzz::load_scenario(scenario_path);
    } catch (const es::fuzz::ScenarioError& error) {
      std::fprintf(stderr, "simrun: --scenario: %s\n", error.what());
      return 2;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "simrun: --scenario: %s\n", error.what());
      return 3;
    }
    workload = scenario.workload;
    std::printf("Scenario %s [%s seed %llu]: %zu jobs, %zu ECCs, "
                "offered load %.3f\n",
                scenario.name.c_str(), scenario.family.c_str(),
                static_cast<unsigned long long>(scenario.seed),
                workload.jobs.size(), workload.eccs.size(),
                es::workload::offered_load(workload,
                                           workload.machine_procs));
  } else if (synthetic || trace.empty()) {
    generator_config.machine_procs = procs;
    generator_config.num_jobs = static_cast<std::size_t>(num_jobs);
    generator_config.seed = seed;
    generator_config.p_small = p_small;
    generator_config.p_dedicated = p_dedicated;
    generator_config.p_extend = p_extend;
    generator_config.p_reduce = p_reduce;
    generator_config.target_load = load;
    if (streamed) {
      // Never materialize: the jobs flow straight from the generator into
      // the engine in bounded chunks.  The machine shape still has to be
      // on the (empty) workload for the reporting epilogue.
      workload.machine_procs = procs;
      workload.granularity = generator_config.size.unit;
      std::printf("Synthetic workload (streamed): %d jobs\n", num_jobs);
    } else {
      workload = es::workload::generate(generator_config);
      std::printf("Synthetic workload: %zu jobs, offered load %.3f\n",
                  workload.jobs.size(),
                  es::workload::offered_load(workload, procs));
    }
  } else {
    workload = es::workload::load_cwf_workload(trace);
    workload.machine_procs = procs;
    workload.granularity = granularity;
    std::erase_if(workload.jobs, [procs](const es::workload::Job& job) {
      return job.num > procs;
    });
    if (workload.jobs.empty()) {
      std::fprintf(stderr, "simrun: no usable jobs in %s\n", trace.c_str());
      return 1;
    }
    std::printf("Trace %s: %zu jobs, offered load %.3f\n", trace.c_str(),
                workload.jobs.size(),
                es::workload::offered_load(workload, procs));
  }

  es::core::set_dp_simd_enabled(!no_dp_simd);
  if (have_scenario) {
    // The scenario owns the run-shaping knobs; CLI watchdog flags override
    // its budgets when explicitly set (e.g. to re-bound a runaway repro).
    options.engine.failure = scenario.engine.failure;
    options.engine.requeue = scenario.engine.requeue;
    options.engine.checkpoint = scenario.engine.checkpoint;
    if (max_events == 0)
      options.engine.watchdog.max_events = scenario.engine.watchdog.max_events;
    if (max_sim_time == 0)
      options.engine.watchdog.max_sim_time =
          scenario.engine.watchdog.max_sim_time;
    if (no_progress_cycles == 0)
      options.engine.watchdog.no_progress_cycles =
          scenario.engine.watchdog.no_progress_cycles;
  }
  if (workload.dedicated_count() > 0 &&
      !es::core::make_algorithm(algorithm).policy->supports_dedicated())
    return flag_error("algorithm", "this workload contains dedicated jobs; "
                      "pick a dedicated-aware (-D/Hybrid) algorithm");
  if (streamed && (synthetic || trace.empty()) && p_dedicated > 0 &&
      !es::core::make_algorithm(algorithm).policy->supports_dedicated())
    return flag_error("algorithm", "streamed synthetic workloads with "
                      "--p-dedicated > 0 need a dedicated-aware (-D/Hybrid) "
                      "algorithm");

  if (replications > 1) {
    // Seed-mean aggregate mode: N derived seeds fanned across the worker
    // pool.  Everything printed here is deterministic — identical bytes at
    // any --jobs value — so diffing serial vs parallel output is a test.
    es::exp::RunSpec spec;
    spec.workload = generator_config;
    spec.algorithm = algorithm;
    spec.options = options;
    const es::exp::Aggregate aggregate =
        es::exp::run_replicated(spec, replications);
    es::util::AsciiTable table("simrun — " + algorithm + " (mean of " +
                               std::to_string(replications) + " seeds)");
    table.set_columns({"metric", "value"});
    table.cell("mean utilization %").cell(100.0 * aggregate.utilization, 2).end_row();
    table.cell("utilization ci95 %").cell(100.0 * aggregate.utilization_ci95, 2).end_row();
    table.cell("mean wait (s)").cell(aggregate.mean_wait, 1).end_row();
    table.cell("mean wait ci95 (s)").cell(aggregate.mean_wait_ci95, 1).end_row();
    table.cell("slowdown (paper defn)").cell(aggregate.slowdown, 3).end_row();
    table.cell("offered load").cell(aggregate.offered_load, 3).end_row();
    table.cell("ECCs processed").cell(static_cast<long long>(aggregate.ecc_processed)).end_row();
    if (perf_report) {
      table.cell("DP calls").cell(static_cast<long long>(aggregate.dp.calls)).end_row();
      table.cell("DP fast-path exits").cell(static_cast<long long>(aggregate.dp.fast_path)).end_row();
      table.cell("DP cache hits").cell(static_cast<long long>(aggregate.dp.cache_hits)).end_row();
      table.cell("DP table runs").cell(static_cast<long long>(aggregate.dp.table_runs)).end_row();
      table.cell("events scheduled").cell(static_cast<long long>(aggregate.events.scheduled)).end_row();
      table.cell("events cancelled").cell(static_cast<long long>(aggregate.events.cancelled)).end_row();
      table.cell("events fired").cell(static_cast<long long>(aggregate.events.fired)).end_row();
      table.cell("peak pending events").cell(static_cast<long long>(aggregate.events.peak_pending)).end_row();
      add_cycle_stats_rows(table, aggregate.cycle);
    }
    table.render(std::cout);
    return 0;
  }

  es::sched::SimulationResult result;
  if (!restore_from.empty()) {
    // Resume an interrupted run.  kIo maps to the I/O exit code (3) like
    // the CSV outputs; everything else — torn frames, CRC mismatches,
    // version skew, a snapshot of a different run — is exit 6, so crash
    // tooling can tell "retry with the previous generation" from "disk is
    // broken".
    try {
      std::string snapshot_path = restore_from;
      std::error_code directory_check;
      if (std::filesystem::is_directory(restore_from, directory_check)) {
        const auto newest = es::snap::latest_intact(restore_from);
        if (!newest) {
          std::fprintf(stderr,
                       "simrun: --restore-from: no intact snapshot in %s\n",
                       restore_from.c_str());
          return 6;
        }
        snapshot_path = newest->path;
      }
      auto reader = es::snap::read_snapshot_file(snapshot_path);
      std::printf("Resuming from snapshot %s\n", snapshot_path.c_str());
      result = es::exp::resume_workload(workload, algorithm, options, reader);
    } catch (const es::snap::SnapshotError& error) {
      std::fprintf(stderr, "simrun: --restore-from: %s (%s)\n", error.what(),
                   es::snap::to_string(error.kind()));
      return error.kind() == es::snap::SnapshotErrorKind::kIo ? 3 : 6;
    }
  } else if (streamed) {
    if (synthetic || trace.empty()) {
      es::workload::GeneratorSource source(generator_config);
      result = es::exp::run_source(source, algorithm, options);
    } else {
      // Trace replay: the file is already parsed (CWF needs the whole file
      // for its backward command references), but the engine still runs
      // with the bounded streaming state.
      es::workload::MaterializedSource source(workload);
      result = es::exp::run_source(source, algorithm, options);
    }
  } else {
    result = es::exp::run_workload(workload, algorithm, options);
  }

  es::util::AsciiTable table("simrun — " + algorithm);
  table.set_columns({"metric", "value"});
  table.cell("mean utilization %").cell(100.0 * result.utilization, 2).end_row();
  table.cell("mean wait (s)").cell(result.mean_wait, 1).end_row();
  table.cell("slowdown (paper defn)").cell(result.slowdown, 3).end_row();
  table.cell("mean per-job slowdown").cell(result.mean_per_job_slowdown, 3).end_row();
  table.cell("mean bounded slowdown").cell(result.mean_bounded_slowdown, 3).end_row();
  table.cell("completed / killed")
      .cell(std::to_string(result.completed) + " / " +
            std::to_string(result.killed))
      .end_row();
  table.cell("dedicated on time").cell(static_cast<long long>(result.dedicated_on_time)).end_row();
  table.cell("mean dedicated delay (s)").cell(result.mean_dedicated_delay, 1).end_row();
  table.cell("ECCs processed").cell(static_cast<long long>(result.ecc.processed)).end_row();
  if (result.ecc.unknown_job > 0 || result.ecc.after_finish > 0) {
    table.cell("ECCs skipped (unknown job / after finish)")
        .cell(std::to_string(result.ecc.unknown_job) + " / " +
              std::to_string(result.ecc.after_finish))
        .end_row();
  }
  table.cell("events / cycles")
      .cell(std::to_string(result.events) + " / " +
            std::to_string(result.cycles))
      .end_row();
  table.cell("termination").cell(es::sim::to_string(result.termination)).end_row();
  if (result.termination != es::sim::TerminationReason::kCompleted)
    table.cell("unfinished jobs").cell(static_cast<long long>(result.unfinished)).end_row();
  if (options.engine.failure.enabled) {
    const auto& failure = result.failure;
    table.cell("outages").cell(static_cast<long long>(failure.outages)).end_row();
    table.cell("jobs interrupted / requeued")
        .cell(std::to_string(failure.interruptions) + " / " +
              std::to_string(failure.requeues))
        .end_row();
    table.cell("jobs abandoned").cell(static_cast<long long>(failure.abandoned)).end_row();
    table.cell("lost proc-seconds").cell(failure.lost_proc_seconds, 0).end_row();
    table.cell("down proc-seconds").cell(failure.down_proc_seconds, 0).end_row();
    table.cell("goodput proc-seconds").cell(failure.goodput_proc_seconds, 0).end_row();
    table.cell("wasted proc-seconds").cell(failure.wasted_proc_seconds, 0).end_row();
    if (options.engine.checkpoint.enabled) {
      table.cell("checkpoints taken").cell(static_cast<long long>(failure.checkpoints)).end_row();
      table.cell("checkpoint overhead proc-seconds")
          .cell(failure.checkpoint_overhead_proc_seconds, 0).end_row();
      table.cell("saved proc-seconds").cell(failure.saved_proc_seconds, 0).end_row();
    }
  }
  table.render(std::cout);

  if (result.perf.fairness.collected) {
    const es::sched::FairnessStats& fairness = result.perf.fairness;
    es::util::AsciiTable fair_table("fairness — per-pool service and wait");
    fair_table.set_columns({"pool", "weight", "entitled", "got", "started",
                            "wait mean (s)", "wait p99 (s)", "satisfaction"});
    for (const es::sched::PoolFairnessStats& pool : fairness.pools) {
      fair_table.cell(pool.name)
          .cell(pool.weight, 2)
          .cell(pool.entitlement_share, 3)
          .cell(pool.service_share, 3)
          .cell(static_cast<long long>(pool.started))
          .cell(pool.wait_mean, 1)
          .cell(pool.wait_p99, 1)
          .cell(pool.satisfaction, 3)
          .end_row();
    }
    fair_table.render(std::cout);
    std::printf("Jain fairness index: %.4f\n", fairness.jain);
  }

  if (perf_report) {
    // Counters are deterministic; the two wall rows are measurement only.
    const es::sched::PerfStats& perf = result.perf;
    es::util::AsciiTable perf_table("perf — hot-path breakdown");
    perf_table.set_columns({"counter", "value"});
    perf_table.cell("DP calls").cell(static_cast<long long>(perf.dp.calls)).end_row();
    perf_table.cell("DP fast-path exits").cell(static_cast<long long>(perf.dp.fast_path)).end_row();
    perf_table.cell("DP cache hits").cell(static_cast<long long>(perf.dp.cache_hits)).end_row();
    perf_table.cell("DP table runs").cell(static_cast<long long>(perf.dp.table_runs)).end_row();
    perf_table.cell("DP table cells").cell(static_cast<long long>(perf.dp.table_cells)).end_row();
    perf_table.cell("DP cache hit rate %").cell(100.0 * perf.dp_cache_hit_rate(), 2).end_row();
    perf_table.cell("events scheduled").cell(static_cast<long long>(perf.events.scheduled)).end_row();
    perf_table.cell("events cancelled").cell(static_cast<long long>(perf.events.cancelled)).end_row();
    perf_table.cell("events fired").cell(static_cast<long long>(perf.events.fired)).end_row();
    perf_table.cell("peak pending events").cell(static_cast<long long>(perf.events.peak_pending)).end_row();
    if (perf.dp.spec_launched > 0) {
      // Speculative pipeline diagnostics (only meaningful with --jobs > 1).
      // hits + discarded can trail launched by the racy in-flight tail.
      perf_table.cell("DP speculations launched").cell(static_cast<long long>(perf.dp.spec_launched)).end_row();
      perf_table.cell("DP speculation hits").cell(static_cast<long long>(perf.dp.spec_hits)).end_row();
      perf_table.cell("DP speculations discarded").cell(static_cast<long long>(perf.dp.spec_discarded)).end_row();
    }
    add_cycle_stats_rows(perf_table, perf.cycle);
    perf_table.cell("cycle wall (s)").cell(perf.cycle_seconds, 4).end_row();
    perf_table.cell("run wall (s)").cell(perf.wall_seconds, 4).end_row();
    // Derived throughput figures.  Always printed so report parsers see a
    // stable row set; a zero denominator (instant run, no DP invocations)
    // reports 0 instead of dividing by it.
    perf_table.cell("events per second")
        .cell(perf.wall_seconds > 0
                  ? static_cast<double>(perf.events.fired) / perf.wall_seconds
                  : 0.0,
              0)
        .end_row();
    perf_table.cell("DP table wall (s)").cell(perf.dp.table_seconds, 4).end_row();
    perf_table.cell("DP ns per invocation")
        .cell(perf.dp.table_runs > 0
                  ? 1e9 * perf.dp.table_seconds /
                        static_cast<double>(perf.dp.table_runs)
                  : 0.0,
              1)
        .end_row();
    if (perf.peak_rss_bytes > 0) {
      perf_table.cell("peak RSS (MiB)")
          .cell(static_cast<double>(perf.peak_rss_bytes) / (1024.0 * 1024.0),
                1)
          .end_row();
    }
    perf_table.render(std::cout);
  }

  if (profile) {
    const auto timeline =
        es::exp::utilization_timeline(result, workload.machine_procs, 72);
    std::printf("\nutilization over time (%s total):\n%s\n",
                es::util::format_duration(result.makespan).c_str(),
                es::exp::render_profile(timeline).c_str());
  }

  // CSV outputs are crash-safe: written to a temp sibling and renamed into
  // place, so readers never observe a truncated file.  On a watchdog abort
  // the files still carry the partial run (tagged via the termination row).
  if (!trace_csv.empty() && result.trace != nullptr) {
    const bool ok = es::util::write_file_atomic(
        trace_csv, [&result](std::ostream& out) {
          result.trace->write_csv(out);
          return out.good();
        });
    if (!ok) {
      std::fprintf(stderr, "simrun: cannot write %s\n", trace_csv.c_str());
      return 3;
    }
    std::printf("[csv] %s (%zu events)\n", trace_csv.c_str(),
                result.trace->size());
  }

  if (!per_job_csv.empty()) {
    const bool ok = es::util::write_file_atomic(
        per_job_csv, [&result](std::ostream& out) {
          es::util::CsvWriter csv(out);
          csv.set_header({"id", "dedicated", "killed", "procs", "arrival",
                          "started", "finished", "wait", "run"});
          for (const auto& job : result.jobs) {
            csv.cell(static_cast<long long>(job.id))
                .cell(static_cast<long long>(job.dedicated))
                .cell(static_cast<long long>(job.killed))
                .cell(job.procs)
                .cell(job.arrival)
                .cell(job.started)
                .cell(job.finished)
                .cell(job.wait)
                .cell(job.run);
            csv.end_row();
          }
          return out.good();
        });
    if (!ok) {
      std::fprintf(stderr, "simrun: cannot write %s\n", per_job_csv.c_str());
      return 3;
    }
    std::printf("[csv] %s (%zu rows)\n", per_job_csv.c_str(),
                result.jobs.size());
  }
  return result.termination == es::sim::TerminationReason::kCompleted ? 0 : 4;
}
