// cwftool — inspect and transform SWF/CWF trace files.
//
//   cwftool validate trace.cwf            lint a trace, report problems
//   cwftool describe trace.cwf            print the statistical summary
//   cwftool convert  in.cwf out.swf       strip to plain 18-field SWF
//   cwftool scale    in.cwf out.cwf --factor 2.0
//                                         stretch arrival times (halves load)
//   cwftool calibrate in.cwf out.cwf --load 0.9 [--procs 320]
//                                         scale arrivals to a target load
#include <cstdio>
#include <algorithm>
#include <fstream>
#include <set>
#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "workload/cwf.hpp"
#include "workload/load.hpp"
#include "workload/summary.hpp"

namespace {

int validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cwftool: cannot open %s\n", path.c_str());
    return 2;
  }
  std::vector<es::workload::SwfParseError> errors;
  const es::workload::CwfFile file = es::workload::parse_cwf(in, &errors);
  for (const auto& error : errors)
    std::printf("%s:%zu: %s\n", path.c_str(), error.line_number,
                error.message.c_str());

  // Semantic lint on top of the syntax pass.
  const es::workload::SwfMetadata metadata =
      es::workload::parse_swf_metadata(file.header);
  int problems = static_cast<int>(errors.size());
  std::set<long long> ids;
  double last_submit = -1;
  for (const auto& record : file.records) {
    if (record.is_submission()) {
      if (!ids.insert(record.swf.job_number).second) {
        std::printf("job %lld: duplicate submission\n",
                    record.swf.job_number);
        ++problems;
      }
      const long long procs = record.swf.req_procs > 0
                                  ? record.swf.req_procs
                                  : record.swf.used_procs;
      if (procs <= 0 ||
          (record.swf.req_time <= 0 && record.swf.run_time <= 0)) {
        std::printf("job %lld: unusable (no size or runtime)\n",
                    record.swf.job_number);
        ++problems;
      }
      if (metadata.max_procs > 0 && procs > metadata.max_procs) {
        std::printf("job %lld: requests %lld procs > MaxProcs %lld\n",
                    record.swf.job_number, procs, metadata.max_procs);
        ++problems;
      }
      if (record.req_start_time >= 0 &&
          record.req_start_time < record.swf.submit_time) {
        std::printf("job %lld: requested start before submission\n",
                    record.swf.job_number);
        ++problems;
      }
      if (record.swf.submit_time < last_submit) {
        std::printf("job %lld: submissions not sorted by time\n",
                    record.swf.job_number);
        ++problems;
      }
      last_submit = std::max(last_submit, record.swf.submit_time);
    } else {
      if (!ids.contains(record.swf.job_number)) {
        std::printf("ECC at t=%.0f: references unknown job %lld\n",
                    record.swf.submit_time, record.swf.job_number);
        ++problems;
      }
    }
  }
  std::printf("%s: %zu records, %d problem(s)\n", path.c_str(),
              file.records.size(), problems);
  return problems == 0 ? 0 : 1;
}

int describe(const std::string& path) {
  const es::workload::Workload workload =
      es::workload::load_cwf_workload(path);
  if (workload.jobs.empty()) {
    std::fprintf(stderr, "cwftool: no usable jobs in %s\n", path.c_str());
    return 2;
  }
  es::workload::print_summary(std::cout,
                              es::workload::summarize(workload));
  return 0;
}

int convert(const std::string& in_path, const std::string& out_path) {
  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "cwftool: cannot open %s\n", in_path.c_str());
    return 2;
  }
  const es::workload::CwfFile file = es::workload::parse_cwf(in);
  es::workload::SwfFile swf;
  swf.header = file.header;
  swf.header.push_back("Converted from CWF by cwftool (ECC lines dropped)");
  for (const auto& record : file.records)
    if (record.is_submission()) swf.records.push_back(record.swf);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cwftool: cannot write %s\n", out_path.c_str());
    return 2;
  }
  es::workload::write_swf(out, swf);
  std::printf("%s: %zu submissions (ECC lines dropped)\n", out_path.c_str(),
              swf.records.size());
  return 0;
}

int rescale(const std::string& in_path, const std::string& out_path,
            double factor, double target_load, int procs) {
  es::workload::Workload workload =
      es::workload::load_cwf_workload(in_path);
  if (workload.jobs.empty()) {
    std::fprintf(stderr, "cwftool: no usable jobs in %s\n", in_path.c_str());
    return 2;
  }
  if (procs > 0) workload.machine_procs = procs;
  if (workload.machine_procs <= 0) workload.machine_procs = 320;
  if (target_load > 0) {
    const double achieved = es::workload::calibrate_load(
        workload, workload.machine_procs, target_load);
    std::printf("calibrated offered load: %.4f (target %.4f, M=%d)\n",
                achieved, target_load, workload.machine_procs);
  } else {
    workload.scale_arrivals(factor);
    std::printf("arrival times scaled by %.4f; offered load now %.4f\n",
                factor,
                es::workload::offered_load(workload,
                                           workload.machine_procs));
  }
  if (!es::workload::save_cwf_workload(out_path, workload)) {
    std::fprintf(stderr, "cwftool: cannot write %s\n", out_path.c_str());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double factor = 1.0;
  double load = 0.0;
  int procs = 0;
  es::util::CliParser cli(
      "Inspect and transform SWF/CWF traces.\n"
      "subcommands: validate <file> | describe <file> | convert <in> <out>\n"
      "             scale <in> <out> --factor F | calibrate <in> <out> "
      "--load L [--procs M]");
  cli.add_option("factor", "arrival-time scale factor for `scale`", &factor);
  cli.add_option("load", "target offered load for `calibrate`", &load);
  cli.add_option("procs", "machine size override", &procs);
  if (!cli.parse(argc, argv)) return 1;
  const auto& args = cli.positional();
  if (args.empty()) {
    std::fputs(cli.help(argv[0]).c_str(), stderr);
    return 1;
  }
  const std::string& command = args[0];
  if (command == "validate" && args.size() == 2) return validate(args[1]);
  if (command == "describe" && args.size() == 2) return describe(args[1]);
  if (command == "convert" && args.size() == 3)
    return convert(args[1], args[2]);
  if (command == "scale" && args.size() == 3)
    return rescale(args[1], args[2], factor, 0.0, procs);
  if (command == "calibrate" && args.size() == 3)
    return rescale(args[1], args[2], 1.0, load, procs);
  std::fputs(cli.help(argv[0]).c_str(), stderr);
  return 1;
}
