// Runtime elasticity scenario (paper sections I-A, III-C): cloud-style
// users change their execution-time requirements on the fly via Elastic
// Control Commands — extend when a computation needs more iterations,
// reduce when it converges early.
//
// Demonstrates: ECC injection (ET/RT), the elastic -E algorithm variants,
// the ECC statistics, and what ignoring ECCs (a rigid scheduler) would get
// wrong about the same workload.
//
//   $ ./examples/elastic_cloud
#include <cstdio>
#include <iostream>

#include "exp/experiment.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main() {
  // A busy machine where every fifth job extends and every tenth reduces —
  // the paper's P_E = 0.2 / P_R = 0.1 mix at offered load 0.9.
  es::workload::GeneratorConfig config;
  config.machine_procs = 320;
  config.num_jobs = 500;
  config.seed = 7;
  config.p_small = 0.5;
  config.p_extend = 0.2;
  config.p_reduce = 0.1;
  config.target_load = 0.9;
  const es::workload::Workload workload = es::workload::generate(config);
  std::printf("Elastic workload: %zu jobs, %zu ECCs injected\n\n",
              workload.jobs.size(), workload.eccs.size());

  es::util::AsciiTable table("Elastic cloud workload (M=320, load 0.9)");
  table.set_columns(
      {"algorithm", "util %", "wait s", "slowdown", "ECCs", "+time h", "-time h"});
  for (const char* algorithm :
       {"EASY-E", "LOS-E", "Delayed-LOS-E", "Delayed-LOS"}) {
    const auto result = es::exp::run_workload(workload, algorithm);
    table.cell(algorithm)
        .cell(100.0 * result.utilization, 2)
        .cell(result.mean_wait, 0)
        .cell(result.slowdown, 3)
        .cell(static_cast<long long>(result.ecc.processed))
        .cell(result.ecc.time_added / 3600.0, 1)
        .cell(result.ecc.time_removed / 3600.0, 1);
    table.end_row();
  }
  table.render(std::cout);
  std::printf(
      "\nThe plain Delayed-LOS row ignores the ECC stream entirely (0 ECCs):\n"
      "it simulates what a submit-time-only scheduler believes will happen,\n"
      "while the -E rows show the schedule as user demands actually drift.\n");
  return 0;
}
