// Capacity planning: "how large must the machine be so that the p95 job
// wait stays under two hours for this demand?" — answered by driving the
// simulator in a search loop, the way an operator would actually use a
// scheduling model.
//
// The demand (jobs, sizes, runtimes, arrival pattern) is held fixed; the
// machine size M is varied in node-card steps and each candidate is
// simulated under Delayed-LOS.  Because the search preserves the absolute
// arrival times, this answers the planning question for *this* demand
// curve, not for a normalized load.
//
//   $ ./examples/capacity_planning
#include <cstdio>
#include <iostream>

#include "exp/analysis.hpp"
#include "exp/experiment.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"

namespace {

constexpr int kNodeCard = 32;
constexpr double kTargetP95 = 8 * 3600.0;  // one working day turnaround

/// Fixed demand: what a 320-proc machine would see at offered load 1.05 —
/// i.e. the site has outgrown its current system.
es::workload::Workload demand() {
  es::workload::GeneratorConfig config;
  config.machine_procs = 320;
  config.num_jobs = 500;
  config.seed = 31;
  config.p_small = 0.5;
  config.target_load = 1.05;
  return es::workload::generate(config);
}

double p95_wait(const es::workload::Workload& fixed_demand, int procs) {
  es::workload::Workload sized = fixed_demand;
  sized.machine_procs = procs;
  const auto result = es::exp::run_workload(sized, "Delayed-LOS");
  return es::exp::wait_distribution(result).p95;
}

}  // namespace

int main() {
  const es::workload::Workload fixed_demand = demand();
  std::printf(
      "Demand: %zu jobs, %.0f proc-hours; target: p95 wait <= %s under "
      "Delayed-LOS\n\n",
      fixed_demand.jobs.size(),
      es::workload::offered_load(fixed_demand, 320) * 320 *
          fixed_demand.duration() / 3600.0,
      es::util::format_duration(kTargetP95).c_str());

  es::util::AsciiTable table("Machine sizing sweep (node cards of 32)");
  table.set_columns({"procs", "offered load", "util %", "mean wait", "p95 wait",
                     "meets target"});
  int best = 0;
  for (int procs = 320; procs <= 640; procs += 2 * kNodeCard) {
    es::workload::Workload sized = fixed_demand;
    sized.machine_procs = procs;
    const auto result = es::exp::run_workload(sized, "Delayed-LOS");
    const double p95 = es::exp::wait_distribution(result).p95;
    const bool ok = p95 <= kTargetP95;
    if (ok && best == 0) best = procs;
    table.cell(procs)
        .cell(es::workload::offered_load(sized, procs), 3)
        .cell(100.0 * result.utilization, 1)
        .cell(es::util::format_duration(result.mean_wait))
        .cell(es::util::format_duration(p95))
        .cell(ok ? "yes" : "no");
    table.end_row();
  }
  table.render(std::cout);

  if (best > 0) {
    // Refine to the node card with a binary search inside the last step.
    int lo = best - 2 * kNodeCard;
    int hi = best;
    while (hi - lo > kNodeCard) {
      const int mid = lo + (hi - lo) / (2 * kNodeCard) * kNodeCard;
      const int candidate = mid == lo ? lo + kNodeCard : mid;
      (p95_wait(fixed_demand, candidate) <= kTargetP95 ? hi : lo) = candidate;
    }
    std::printf("\nSmallest machine meeting the target: %d processors "
                "(%d node cards)\n",
                hi, hi / kNodeCard);
  } else {
    std::printf("\nNo machine size up to 640 processors meets the target.\n");
  }
  return 0;
}
