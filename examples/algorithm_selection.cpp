// The dynamic algorithm-selection policy from the paper's section V-A
// discussion: pick EASY when small jobs dominate, Delayed-LOS otherwise —
// implemented as core::AdaptiveSelector.
//
// This example runs a workload whose job-size mix *changes over time*
// (large-job phase, then small-job phase) and compares the fixed policies
// against the adaptive one.
//
//   $ ./examples/algorithm_selection
#include <cstdio>
#include <iostream>

#include "exp/experiment.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"
#include "workload/compose.hpp"
#include "workload/load.hpp"

namespace {

/// Concatenates a large-job-heavy phase and a small-job-heavy phase into
/// one trace (workload::concatenate handles ID renumbering and shifting).
es::workload::Workload phased_workload(std::uint64_t seed) {
  es::workload::GeneratorConfig phase1;
  phase1.machine_procs = 320;
  phase1.num_jobs = 250;
  phase1.seed = seed;
  phase1.p_small = 0.1;  // large jobs dominate
  phase1.target_load = 0.9;
  es::workload::GeneratorConfig phase2 = phase1;
  phase2.seed = seed + 1;
  phase2.p_small = 0.95;  // small jobs dominate
  return es::workload::concatenate(es::workload::generate(phase1),
                                   es::workload::generate(phase2));
}

}  // namespace

int main() {
  const es::workload::Workload workload = phased_workload(11);
  std::printf(
      "Phased workload: %zu jobs — a large-job regime followed by a "
      "small-job regime (offered load %.2f)\n\n",
      workload.jobs.size(),
      es::workload::offered_load(workload, workload.machine_procs));

  es::util::AsciiTable table("Fixed policies vs dynamic selection");
  table.set_columns({"algorithm", "util %", "wait s", "slowdown"});
  for (const char* algorithm :
       {"EASY", "LOS", "Delayed-LOS", "Adaptive"}) {
    const auto result = es::exp::run_workload(workload, algorithm);
    table.cell(algorithm)
        .cell(100.0 * result.utilization, 2)
        .cell(result.mean_wait, 0)
        .cell(result.slowdown, 3);
    table.end_row();
  }
  table.render(std::cout);
  std::printf(
      "\nThe Adaptive row tracks the small-job fraction over a sliding\n"
      "window and delegates each cycle to EASY or Delayed-LOS accordingly\n"
      "(the policy sketched in the paper's section V-A).\n");
  return 0;
}
