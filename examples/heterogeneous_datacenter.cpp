// Heterogeneous datacenter scenario (paper section I-B): a BlueGene/P-class
// machine shared between background batch simulations and rigid,
// reserved-capacity windows for real-time data processing — e.g. satellite
// downlink processing every six hours and a nightly traffic-analytics
// window.
//
// Demonstrates: building a mixed workload programmatically, running the
// three heterogeneous schedulers, and reading the dedicated-job delay
// metrics that matter for real-time users.
//
//   $ ./examples/heterogeneous_datacenter
#include <cstdio>
#include <iostream>

#include "exp/experiment.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace {

constexpr double kHour = 3600.0;

/// Background batch load: Lublin-model jobs at ~70% offered load.
es::workload::Workload background_batch(std::uint64_t seed) {
  es::workload::GeneratorConfig config;
  config.machine_procs = 320;
  config.num_jobs = 400;
  config.seed = seed;
  config.p_small = 0.6;
  config.target_load = 0.7;
  return es::workload::generate(config);
}

/// Overlay rigid windows: satellite passes (128 procs, 30 min, every 6 h,
/// booked 2 h ahead) and a nightly analytics window (256 procs, 2 h).
void add_reserved_windows(es::workload::Workload& workload) {
  es::workload::JobId next_id = 100000;  // clear of the batch IDs
  const double span = workload.duration();
  for (double start = 6 * kHour; start < span; start += 6 * kHour) {
    es::workload::Job pass;
    pass.id = next_id++;
    pass.type = es::workload::JobType::kDedicated;
    pass.arr = start - 2 * kHour;  // booked two hours ahead
    pass.start = start;
    pass.num = 128;
    pass.dur = 0.5 * kHour;
    workload.jobs.push_back(pass);
  }
  for (double midnight = 24 * kHour; midnight < span;
       midnight += 24 * kHour) {
    es::workload::Job nightly;
    nightly.id = next_id++;
    nightly.type = es::workload::JobType::kDedicated;
    nightly.arr = midnight - 12 * kHour;
    nightly.start = midnight;
    nightly.num = 256;
    nightly.dur = 2 * kHour;
    workload.jobs.push_back(nightly);
  }
  workload.normalize();
}

}  // namespace

int main() {
  es::workload::Workload workload = background_batch(2026);
  add_reserved_windows(workload);
  std::printf(
      "Mixed workload: %zu batch jobs + %zu reserved windows over %s\n\n",
      workload.batch_count(), workload.dedicated_count(),
      es::util::format_duration(workload.duration()).c_str());

  es::util::AsciiTable table("Heterogeneous datacenter (M=320)");
  table.set_columns({"algorithm", "util %", "batch wait", "window delay",
                     "windows on time"});
  for (const char* algorithm : {"EASY-D", "LOS-D", "Hybrid-LOS"}) {
    const auto result = es::exp::run_workload(workload, algorithm);
    double batch_wait_sum = 0;
    std::size_t batch_jobs = 0;
    for (const auto& job : result.jobs) {
      if (!job.dedicated) {
        batch_wait_sum += job.wait;
        ++batch_jobs;
      }
    }
    table.cell(algorithm)
        .cell(100.0 * result.utilization, 2)
        .cell(es::util::format_duration(batch_wait_sum /
                                        static_cast<double>(batch_jobs)))
        .cell(es::util::format_duration(result.mean_dedicated_delay))
        .cell(static_cast<long long>(result.dedicated_on_time));
    table.end_row();
  }
  table.render(std::cout);
  std::printf(
      "\nAll three policies pack batch jobs around the reserved windows.\n"
      "Hybrid-LOS additionally bounds batch waiting times via the skip\n"
      "count (Algorithm 2 lines 35-37 start a C_s-saturated batch head\n"
      "unconditionally) — note its batch-wait advantage, bought with some\n"
      "window punctuality; EASY-D/LOS-D never bypass a reservation.\n");
  return 0;
}
