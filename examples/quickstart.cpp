// Quickstart: generate a synthetic BlueGene/P workload, run it under the
// paper's three batch schedulers, and print the headline metrics — plus the
// paper's Fig-2 motivating example showing why Delayed-LOS exists.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <iostream>

#include "exp/experiment.hpp"
#include "util/table.hpp"

namespace {

// The Fig-2 scenario: a 10-processor machine, empty, and jobs of size
// 7, 4, 6 arriving back to back.  LOS starts the head (7) immediately and
// reaches utilization 7/10; Delayed-LOS skips it, packs {4, 6}, and fills
// the machine.
void figure2_motivation() {
  es::workload::Workload workload;
  workload.machine_procs = 10;
  workload.granularity = 1;
  // A size-10 blocker keeps the machine full until t=10 so that all three
  // jobs are waiting when the scheduler next decides (the paper's premise).
  es::workload::Job blocker;
  blocker.id = 1;
  blocker.arr = 0;
  blocker.num = 10;
  blocker.dur = 10;
  workload.jobs.push_back(blocker);
  const int sizes[] = {7, 4, 6};
  for (int i = 0; i < 3; ++i) {
    es::workload::Job job;
    job.id = i + 2;
    job.arr = i + 1;  // arrive in order while the blocker runs
    job.num = sizes[i];
    job.dur = 1000;
    workload.jobs.push_back(job);
  }

  std::printf("Fig-2 motivation (10 procs; queue = 7, 4, 6):\n");
  for (const char* algorithm : {"LOS", "Delayed-LOS"}) {
    const auto result = es::exp::run_workload(workload, algorithm);
    // Utilization over the first 1000 s shows the packing decision.
    std::printf("  %-12s mean wait %6.0f s   utilization %5.1f%%\n",
                algorithm, result.mean_wait, 100.0 * result.utilization);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  figure2_motivation();

  // A paper-scale run: M = 320 (granularity 32), 500 jobs, P_S = 0.5,
  // offered load 0.9.
  es::workload::GeneratorConfig config;
  config.machine_procs = 320;
  config.num_jobs = 500;
  config.p_small = 0.5;
  config.target_load = 0.9;
  config.seed = 42;

  es::util::AsciiTable table(
      "Synthetic batch workload (M=320, N=500, P_S=0.5, load 0.9)");
  table.set_columns({"algorithm", "util %", "wait s", "slowdown"});
  for (const char* algorithm : {"FCFS", "EASY", "LOS", "Delayed-LOS"}) {
    es::exp::RunSpec spec;
    spec.workload = config;
    spec.algorithm = algorithm;
    const auto aggregate = es::exp::run_replicated(spec, 3);
    table.cell(algorithm)
        .cell(100.0 * aggregate.utilization, 2)
        .cell(aggregate.mean_wait, 1)
        .cell(aggregate.slowdown, 3);
    table.end_row();
  }
  table.render(std::cout);
  return 0;
}
