// Replay an SWF/CWF trace file through any algorithm — the workflow for
// evaluating the schedulers on Parallel Workloads Archive logs.
//
//   $ ./examples/swf_replay --trace my_log.swf --procs 128 --algorithm EASY
//
// Without --trace, the example writes a small demonstration CWF trace to a
// temporary file first, so it is runnable out of the box.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "exp/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/cwf.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"

namespace {

std::string write_demo_trace() {
  // A generated workload saved as CWF: stands in for an archive download.
  es::workload::GeneratorConfig config;
  config.machine_procs = 320;
  config.num_jobs = 300;
  config.seed = 99;
  config.p_dedicated = 0.2;
  config.p_extend = 0.2;
  config.p_reduce = 0.1;
  config.target_load = 0.8;
  const auto workload = es::workload::generate(config);
  const std::string path = "/tmp/elastisched_demo.cwf";
  es::workload::save_cwf_workload(
      path, workload,
      {"elastisched demo trace", "Computer: simulated BlueGene/P",
       "MaxProcs: 320"});
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace;
  std::string algorithm = "Hybrid-LOS-E";  // handles every CWF feature
  int procs = 0;  // 0 = from the trace's MaxProcs header, else 320
  int granularity = 0;
  double scale = 1.0;
  es::util::CliParser cli(
      "Replay an SWF/CWF trace through a scheduling algorithm");
  cli.add_option("trace", "path to an SWF or CWF file (default: demo trace)",
                 &trace);
  cli.add_option("algorithm", "algorithm name (see Table III)", &algorithm);
  cli.add_option("procs",
                 "machine size in processors (default: trace header)", &procs);
  cli.add_option("granularity", "allocation granularity (default: trace)",
                 &granularity);
  cli.add_option("scale",
                 "arrival-time scale factor (>1 lowers load, <1 raises it)",
                 &scale);
  if (!cli.parse(argc, argv)) return 1;

  if (trace.empty()) {
    trace = write_demo_trace();
    std::printf("No --trace given; wrote demo trace to %s\n", trace.c_str());
  }

  es::workload::Workload workload = es::workload::load_cwf_workload(trace);
  if (workload.jobs.empty()) {
    std::fprintf(stderr, "no usable jobs in %s\n", trace.c_str());
    return 1;
  }
  // CLI overrides > trace header metadata > defaults.
  if (procs > 0) workload.machine_procs = procs;
  if (workload.machine_procs <= 0) workload.machine_procs = 320;
  if (granularity > 0) workload.granularity = granularity;
  if (workload.granularity <= 0) workload.granularity = 1;
  procs = workload.machine_procs;
  if (scale != 1.0) workload.scale_arrivals(scale);

  // Drop jobs the target machine cannot host (archive logs sometimes carry
  // oversized entries).
  std::erase_if(workload.jobs, [procs](const es::workload::Job& job) {
    return job.num > procs;
  });

  const double load = es::workload::offered_load(workload, procs);
  std::printf("Trace: %zu jobs (%zu dedicated), %zu ECCs, offered load %.3f\n\n",
              workload.jobs.size(), workload.dedicated_count(),
              workload.eccs.size(), load);

  const auto result = es::exp::run_workload(workload, algorithm);
  es::util::AsciiTable table("Replay results — " + algorithm);
  table.set_columns({"metric", "value"});
  table.cell("mean utilization %").cell(100.0 * result.utilization, 2).end_row();
  table.cell("mean wait").cell(es::util::format_duration(result.mean_wait)).end_row();
  table.cell("slowdown").cell(result.slowdown, 3).end_row();
  table.cell("jobs completed").cell(static_cast<long long>(result.completed)).end_row();
  table.cell("jobs killed (overran estimate)").cell(static_cast<long long>(result.killed)).end_row();
  table.cell("ECCs processed").cell(static_cast<long long>(result.ecc.processed)).end_row();
  table.cell("makespan").cell(es::util::format_duration(result.makespan)).end_row();
  table.render(std::cout);
  return 0;
}
