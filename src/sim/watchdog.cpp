#include "sim/watchdog.hpp"

#include "sim/simulation.hpp"

namespace es::sim {

const char* to_string(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kCompleted: return "completed";
    case TerminationReason::kMaxEvents: return "max-events";
    case TerminationReason::kMaxSimTime: return "max-sim-time";
    case TerminationReason::kWallBudget: return "wall-budget";
    case TerminationReason::kNoProgress: return "no-progress";
  }
  return "?";
}

Watchdog::Watchdog(const WatchdogConfig& config)
    : config_(config), start_(std::chrono::steady_clock::now()) {}

bool Watchdog::exhausted(Simulation& sim, TerminationReason& why) {
  if (config_.max_events > 0 &&
      sim.events_processed() >= config_.max_events) {
    why = TerminationReason::kMaxEvents;
    return true;
  }
  if (config_.max_sim_time > 0 && !sim.idle() &&
      sim.next_event_time() > config_.max_sim_time) {
    why = TerminationReason::kMaxSimTime;
    return true;
  }
  // The wall clock is a syscall; sample it on the first check and then
  // every 64th.
  if (config_.wall_budget > 0 && (checks_++ % 64 == 0)) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    if (elapsed.count() > config_.wall_budget) {
      why = TerminationReason::kWallBudget;
      return true;
    }
  }
  return false;
}

}  // namespace es::sim
