// Simulation watchdog: bounded-termination guardrails for the event loop.
//
// A discrete-event run can be made effectively non-terminating by a
// pathological configuration — the canonical case is capless
// restart-from-scratch requeue under fault injection, which needs
// ~e^(runtime/MTBF) attempts once the MTBF drops below a job's runtime.
// The watchdog turns "it hangs and emits nothing" into a typed, graceful
// abort: the engine stops pumping events, keeps every metric accumulated so
// far, and tags the result with a TerminationReason.
//
// Everything is opt-in.  A default-constructed WatchdogConfig is disabled
// and the engine then runs the exact seed event loop, so budget-free
// results stay byte-identical.
#pragma once

#include <chrono>
#include <cstdint>

#include "sim/time.hpp"

namespace es::sim {

class Simulation;

/// Why a simulation stopped pumping events.
enum class TerminationReason {
  kCompleted,   ///< the event queue drained; the run is complete
  kMaxEvents,   ///< processed-event budget exhausted
  kMaxSimTime,  ///< the next event lies beyond the simulated-time horizon
  kWallBudget,  ///< real (wall-clock) time budget exhausted
  kNoProgress,  ///< no job starts/completions for N consecutive scheduler
                ///< cycles with work still queued (engine-level detector)
};

const char* to_string(TerminationReason reason);

/// Termination budgets.  Every field 0 means "unlimited"; all-zero disables
/// the watchdog entirely.
struct WatchdogConfig {
  std::uint64_t max_events = 0;  ///< abort after this many processed events
  Time max_sim_time = 0;         ///< abort before crossing this sim time
  double wall_budget = 0;        ///< abort after this many real seconds
  /// Engine-level no-progress detector: abort after this many consecutive
  /// scheduler cycles with zero job starts/completions while jobs wait.
  int no_progress_cycles = 0;

  bool enabled() const {
    return max_events > 0 || max_sim_time > 0 || wall_budget > 0 ||
           no_progress_cycles > 0;
  }
};

/// Checks the event/sim-time/wall budgets against a simulation.  The wall
/// clock is only consulted when a wall budget is set (and then only every
/// few events), so budget-free runs stay deterministic and overhead-free;
/// event and sim-time budgets are themselves deterministic.
class Watchdog {
 public:
  explicit Watchdog(const WatchdogConfig& config);

  /// True when a budget is exhausted; `why` is set to the tripped budget.
  /// Intended to be called once before processing each event.
  bool exhausted(Simulation& sim, TerminationReason& why);

 private:
  WatchdogConfig config_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t checks_ = 0;
};

}  // namespace es::sim
