// Stable, cancellable priority queue of timed events.
//
// This is the core of the discrete-event kernel that replaces GridSim/ALEA in
// the original study.  Events are ordered by (time, class, insertion
// sequence); cancellation is O(1) (lazy removal on pop) which is what the
// elastic workload needs — an ET/RT command reschedules a job's completion by
// cancelling the pending finish event and inserting a new one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace es::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

/// Min-heap of events with deterministic tie-breaking and lazy cancellation.
class EventQueue {
 public:
  using Callback = std::function<void(Time)>;

  /// Schedules `fn` at absolute time `at`.  Returns a handle for cancel().
  EventHandle schedule(Time at, EventClass cls, Callback fn);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or the handle is invalid.
  bool cancel(EventHandle handle);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live pending events.
  std::size_t size() const { return live_; }

  /// Time of the next live event.  Precondition: !empty().
  Time next_time();

  /// Pops and runs the next live event; returns its time.
  /// Precondition: !empty().
  Time pop_and_run();

  /// Total events ever scheduled (for diagnostics / tests).
  std::uint64_t total_scheduled() const { return next_id_ - 1; }

 private:
  struct Entry {
    Time time;
    int cls;
    std::uint64_t seq;
    std::uint64_t id;
    // Callback kept out of the comparison; shared_ptr keeps Entry copyable
    // cheaply inside the heap.
    std::shared_ptr<Callback> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.cls != b.cls) return a.cls > b.cls;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the heap top.
  void skim();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::size_t live_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
};

}  // namespace es::sim
