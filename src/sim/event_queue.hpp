// Stable, cancellable priority queue of timed events.
//
// This is the core of the discrete-event kernel that replaces GridSim/ALEA in
// the original study.  Events are ordered by (time, class, insertion
// sequence); cancellation is O(1) (lazy removal on pop) which is what the
// elastic workload needs — an ET/RT command reschedules a job's completion by
// cancelling the pending finish event and inserting a new one.
//
// Storage is a slab of event records recycled through a free list.  The heap
// holds plain (time, class, seq, slot, generation) items; callbacks live in
// the slab and are moved in and out, so the steady-state schedule/pop cycle
// performs no heap allocation (the engine's completion lambdas fit
// std::function's small-object buffer).  Handles encode (slot, generation):
// retiring a record bumps its generation, so a stale handle — fired,
// cancelled, or pointing at a recycled slot — fails the generation match and
// cancel() returns false in O(1), with no side table of cancelled ids.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace es::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

/// Monotonic traffic counters for one queue's lifetime.  `fired` counts
/// callbacks actually run (cancelled events never fire); `peak_pending` is
/// the high-water mark of live events.  Always: scheduled = fired +
/// cancelled + still-pending.
struct EventQueueCounters {
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t fired = 0;
  std::uint64_t peak_pending = 0;

  /// Aggregation across runs: traffic sums, the high-water mark maxes.
  EventQueueCounters& operator+=(const EventQueueCounters& other) {
    scheduled += other.scheduled;
    cancelled += other.cancelled;
    fired += other.fired;
    peak_pending = std::max(peak_pending, other.peak_pending);
    return *this;
  }
};

/// Snapshot view of one live (armed) event.  Callbacks cannot serialize, so
/// restore works from the semantic `tag` the scheduler attached at
/// schedule() time; `seq` is preserved so same-instant tie-breaking after
/// restore matches the original run exactly.
struct PendingEvent {
  Time time{};
  std::int32_t cls = 0;
  std::uint64_t seq = 0;
  std::uint64_t tag = 0;
};

/// Min-heap of events with deterministic tie-breaking and lazy cancellation.
class EventQueue {
 public:
  using Callback = std::function<void(Time)>;

  /// Schedules `fn` at absolute time `at`.  Returns a handle for cancel().
  /// `tag` is an opaque caller-defined descriptor carried alongside the
  /// callback so the event can be re-established after a snapshot restore.
  EventHandle schedule(Time at, EventClass cls, Callback fn,
                       std::uint64_t tag = 0);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or the handle is invalid.
  bool cancel(EventHandle handle);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live pending events.
  std::size_t size() const { return live_; }

  /// Time of the next live event.  Precondition: !empty().
  Time next_time();

  /// Pops and runs the next live event; returns its time.
  /// Precondition: !empty().
  Time pop_and_run();

  /// Total events ever scheduled (for diagnostics / tests).
  std::uint64_t total_scheduled() const { return counters_.scheduled; }

  /// Lifetime traffic counters (see EventQueueCounters).
  const EventQueueCounters& counters() const { return counters_; }

  // --- snapshot/restore support -------------------------------------------

  /// All live events sorted by insertion sequence (a stable, deterministic
  /// serialization order).  Cancelled heap residue is excluded.
  std::vector<PendingEvent> pending_events() const;

  /// Re-inserts an event with its *original* sequence number during restore.
  /// Preserving seq (and restoring next_seq via restore_meta) is what makes
  /// post-restore tie-breaking — and every later schedule() — byte-identical
  /// to the uninterrupted run.  Precondition: only valid on a queue that has
  /// never allocated a sequence >= `seq` organically.
  EventHandle restore_event(Time at, EventClass cls, Callback fn,
                            std::uint64_t tag, std::uint64_t seq);

  /// Restores the sequence allocator and lifetime counters after the
  /// pending set has been re-established with restore_event().
  void restore_meta(std::uint64_t next_seq, const EventQueueCounters& counters);

  /// Next insertion sequence number (serialized into snapshots).
  std::uint64_t next_seq() const { return next_seq_; }

 private:
  // One slab slot.  `generation` starts at 1 (so a default EventHandle or a
  // forged id with generation 0 never matches) and is bumped every time the
  // record retires — fire and cancel both invalidate outstanding handles.
  struct Record {
    Callback fn;
    std::uint64_t tag = 0;  ///< caller's restore descriptor, valid while armed
    std::uint32_t generation = 1;
  };

  // What the heap orders.  POD — pushing/popping never allocates beyond the
  // amortized vector growth, which reaches steady state.
  struct HeapItem {
    Time time;
    std::int32_t cls;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.cls != b.cls) return a.cls > b.cls;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint64_t make_id(std::uint32_t slot,
                                         std::uint32_t generation) {
    return (static_cast<std::uint64_t>(generation) << 32) |
           (static_cast<std::uint64_t>(slot) + 1);
  }

  /// True when `item`'s record is still armed (not cancelled/retired).
  bool armed(const HeapItem& item) const {
    return records_[item.slot].generation == item.generation;
  }

  /// Drops cancelled entries from the heap top.
  void skim();

  /// Invalidates the slot's handles and recycles it.
  void retire(std::uint32_t slot);

  std::vector<HeapItem> heap_;       // std::push_heap/pop_heap with Later
  std::vector<Record> records_;      // slab, indexed by slot
  std::vector<std::uint32_t> free_;  // recycled slots
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  EventQueueCounters counters_;
};

}  // namespace es::sim
