// Stable, cancellable priority queue of timed events.
//
// This is the core of the discrete-event kernel that replaces GridSim/ALEA in
// the original study.  Events are ordered by (time, class, insertion
// sequence); cancellation is O(1) (lazy removal on pop) which is what the
// elastic workload needs — an ET/RT command reschedules a job's completion by
// cancelling the pending finish event and inserting a new one.
//
// Storage is a slab of event records recycled through a free list.  Pending
// items are plain (time, class, seq, slot, generation) PODs; callbacks live
// in the slab and are moved in and out, so the steady-state schedule/pop
// cycle performs no heap allocation (the engine's completion lambdas fit
// std::function's small-object buffer).  Handles encode (slot, generation):
// retiring a record bumps its generation, so a stale handle — fired,
// cancelled, or pointing at a recycled slot — fails the generation match and
// cancel() returns false in O(1), with no side table of cancelled ids.
//
// Ordering structure (PR 9): a two-tier calendar queue.  The *near band* is
// a circular array of kBuckets buckets, each covering one `width_`-wide
// window of simulation time starting at `band_start_`; events landing inside
// the band are an O(1) push into their bucket, and a bucket is sorted only
// when the cursor reaches it (so each event is sorted exactly once, in a
// bucket-sized batch).  Events beyond the band horizon — checkpoint replans,
// MTBF outages, far-future finishes — fall back to the binary heap and
// migrate into the band as the cursor rotates toward them.  The migration
// invariant (every heap item lies at or beyond the band horizon) means the
// minimum is always in the band when the band is non-empty, so pops never
// compare across tiers.  Bucket width adapts to the observed event density
// (shrink when a bucket drains dense, grow after a sparse rotation), and a
// width change redistributes the band in one pass.  Both tiers order by the
// same strict (time, class, seq) total order, so enabling or disabling the
// band cannot change the pop sequence — the heap-only mode remains available
// via set_band_enabled(false) for differential tests and benchmarks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace es::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

/// Monotonic traffic counters for one queue's lifetime.  `fired` counts
/// callbacks actually run (cancelled events never fire); `peak_pending` is
/// the high-water mark of live events.  Always: scheduled = fired +
/// cancelled + still-pending.  The band_* fields are calendar-tier
/// diagnostics (not serialized into snapshots — a restored queue restarts
/// them at zero): `band_scheduled` counts events that entered through the
/// near band, `band_migrated` counts heap items pulled into the band as the
/// cursor rotated toward them.
struct EventQueueCounters {
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t fired = 0;
  std::uint64_t peak_pending = 0;
  std::uint64_t band_scheduled = 0;
  std::uint64_t band_migrated = 0;

  /// Aggregation across runs: traffic sums, the high-water mark maxes.
  EventQueueCounters& operator+=(const EventQueueCounters& other) {
    scheduled += other.scheduled;
    cancelled += other.cancelled;
    fired += other.fired;
    peak_pending = std::max(peak_pending, other.peak_pending);
    band_scheduled += other.band_scheduled;
    band_migrated += other.band_migrated;
    return *this;
  }
};

/// Snapshot view of one live (armed) event.  Callbacks cannot serialize, so
/// restore works from the semantic `tag` the scheduler attached at
/// schedule() time; `seq` is preserved so same-instant tie-breaking after
/// restore matches the original run exactly.
struct PendingEvent {
  Time time{};
  std::int32_t cls = 0;
  std::uint64_t seq = 0;
  std::uint64_t tag = 0;
};

/// Two-tier (calendar band + heap) event queue with deterministic
/// tie-breaking and lazy cancellation.
class EventQueue {
 public:
  using Callback = std::function<void(Time)>;

  /// Schedules `fn` at absolute time `at`.  Returns a handle for cancel().
  /// `tag` is an opaque caller-defined descriptor carried alongside the
  /// callback so the event can be re-established after a snapshot restore.
  EventHandle schedule(Time at, EventClass cls, Callback fn,
                       std::uint64_t tag = 0);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or the handle is invalid.
  bool cancel(EventHandle handle);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live pending events.
  std::size_t size() const { return live_; }

  /// Time of the next live event.  Precondition: !empty().
  Time next_time();

  /// Pops and runs the next live event; returns its time.
  /// Precondition: !empty().
  Time pop_and_run();

  /// Total events ever scheduled (for diagnostics / tests).
  std::uint64_t total_scheduled() const { return counters_.scheduled; }

  /// Lifetime traffic counters (see EventQueueCounters).
  const EventQueueCounters& counters() const { return counters_; }

  /// Enables/disables the calendar band (on by default).  Off means every
  /// event goes through the binary heap — the pre-PR9 kernel, kept for
  /// differential tests and before/after benchmarks.  Only valid on a queue
  /// that has never scheduled an event (the tiers do not rebalance on the
  /// fly).
  void set_band_enabled(bool enabled);
  bool band_enabled() const { return band_enabled_; }

  // --- snapshot/restore support -------------------------------------------

  /// All live events sorted by insertion sequence (a stable, deterministic
  /// serialization order).  Cancelled residue is excluded.
  std::vector<PendingEvent> pending_events() const;

  /// Re-inserts an event with its *original* sequence number during restore.
  /// Preserving seq (and restoring next_seq via restore_meta) is what makes
  /// post-restore tie-breaking — and every later schedule() — byte-identical
  /// to the uninterrupted run.  Precondition: only valid on a queue that has
  /// never allocated a sequence >= `seq` organically.
  EventHandle restore_event(Time at, EventClass cls, Callback fn,
                            std::uint64_t tag, std::uint64_t seq);

  /// Restores the sequence allocator and lifetime counters after the
  /// pending set has been re-established with restore_event().
  void restore_meta(std::uint64_t next_seq, const EventQueueCounters& counters);

  /// Next insertion sequence number (serialized into snapshots).
  std::uint64_t next_seq() const { return next_seq_; }

 private:
  // One slab slot.  `generation` starts at 1 (so a default EventHandle or a
  // forged id with generation 0 never matches) and is bumped every time the
  // record retires — fire and cancel both invalidate outstanding handles.
  struct Record {
    Callback fn;
    std::uint64_t tag = 0;  ///< caller's restore descriptor, valid while armed
    std::uint32_t generation = 1;
  };

  // What both tiers order.  POD — pushing/popping never allocates beyond the
  // amortized vector growth, which reaches steady state.
  struct HeapItem {
    Time time;
    std::int32_t cls;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.cls != b.cls) return a.cls > b.cls;
      return a.seq > b.seq;
    }
  };

  // Calendar-band geometry.  kBuckets is a power of two so the circular
  // index is a mask; kDenseBucket is the drain-time occupancy that triggers
  // a width shrink, kSparseRotation the per-rotation pop count below which
  // the width grows.
  static constexpr std::size_t kBuckets = 512;
  static constexpr std::size_t kBucketMask = kBuckets - 1;
  static constexpr std::size_t kDenseBucket = 64;
  static constexpr std::uint64_t kSparseRotation = kBuckets / 8;

  static constexpr std::uint64_t make_id(std::uint32_t slot,
                                         std::uint32_t generation) {
    return (static_cast<std::uint64_t>(generation) << 32) |
           (static_cast<std::uint64_t>(slot) + 1);
  }

  /// True when `item`'s record is still armed (not cancelled/retired).
  bool armed(const HeapItem& item) const {
    return records_[item.slot].generation == item.generation;
  }

  /// Absolute window index of time `t` under the current (origin, width)
  /// map, clamped so nothing lands behind the cursor and far-future times
  /// saturate into the heap tier.  One fixed monotone map per band epoch:
  /// every insert — whenever it happens — buckets through the same
  /// function, so bucket order can never contradict time order.
  std::uint64_t window_of(Time t) const;

  /// Routes a new item to its tier (band bucket or heap).
  void insert_item(const HeapItem& item);
  /// Places an in-band item into its bucket (sorted-insert when the cursor
  /// bucket is already draining).
  void band_insert(const HeapItem& item);
  /// Starts (or restarts) the band at `at`, keeping the adapted width.
  void anchor(Time at);
  /// Migrates every heap item below the band horizon into the band.
  void pull_from_heap();
  /// Moves the cursor to the next bucket, adapting width on a full rotation.
  void advance_cursor();
  /// Prepares the cursor bucket for draining: prunes cancelled residue,
  /// shrinks the width when the bucket drained dense, sorts.  On success
  /// cursor_sorted_ is true; otherwise the caller re-evaluates the band.
  void enter_bucket();
  /// Re-buckets the whole band after a width change (overflow re-enters the
  /// heap tier).
  void redistribute();
  /// Positions the cursor on the armed band minimum and returns its bucket.
  /// Precondition: an armed item exists somewhere in the queue.
  std::vector<HeapItem>& seek_band_min();
  /// Removes and returns the armed queue minimum.  Precondition: !empty().
  HeapItem take_next();

  /// Drops cancelled entries from the heap top.
  void skim();
  /// In-place removal of all cancelled residue from both tiers.
  void sweep();

  /// Invalidates the slot's handles and recycles it.
  void retire(std::uint32_t slot);

  std::vector<HeapItem> heap_;       // far tier: std::push_heap with Later
  std::vector<Record> records_;      // slab, indexed by slot
  std::vector<std::uint32_t> free_;  // recycled slots
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  EventQueueCounters counters_;

  // Near-band state.  width_ == 0 means the band has never anchored (no
  // event scheduled yet); buckets_ is sized lazily on first anchor.  The
  // cursor bucket is buckets_[window_ & kBucketMask]; the band covers
  // absolute windows [window_, window_ + kBuckets) of the (origin_, width_)
  // map and everything at or beyond that horizon lives in the heap tier.
  bool band_enabled_ = true;
  std::vector<std::vector<HeapItem>> buckets_;
  std::vector<HeapItem> scratch_;  ///< redistribute staging, reused
  Time origin_ = 0;                ///< window 0 epoch of the current band
  Time width_ = 0;                 ///< bucket width in simulation time
  std::uint64_t window_ = 0;       ///< absolute index of the cursor bucket
  std::size_t band_count_ = 0;     ///< band items incl. cancelled residue
  bool cursor_sorted_ = false;     ///< cursor bucket sorted and draining
  std::uint64_t rotation_pops_ = 0;  ///< pops since the cursor last wrapped
};

}  // namespace es::sim
