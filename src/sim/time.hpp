// Simulation time representation.
//
// The simulator measures time in seconds as `double` (SWF traces use integer
// seconds; the Lublin model produces fractional inter-arrival gaps).  Events
// at the same instant are ordered by an explicit priority class and then by
// insertion order, so simulations are fully deterministic.
#pragma once

namespace es::sim {

using Time = double;

/// Ordering classes for events that share a timestamp.  Lower runs first.
/// Completions must precede arrivals so a scheduler invoked on the arrival
/// sees the freed capacity; ECCs precede scheduling so a cycle sees the
/// adjusted residuals.  Repairs (NodeUp) precede failures and everything
/// else except completions so same-instant down/up churn nets out before
/// any scheduling decision; failures run before arrivals so a job arriving
/// at the failure instant sees the degraded machine.
enum class EventClass : int {
  kJobFinish = 0,
  kNodeUp = 1,
  kNodeDown = 2,
  kEccArrival = 3,
  kDedicatedDue = 4,
  kJobArrival = 5,
  kSchedule = 6,
  kOther = 7,
};

}  // namespace es::sim
