// Simulation time representation.
//
// The simulator measures time in seconds as `double` (SWF traces use integer
// seconds; the Lublin model produces fractional inter-arrival gaps).  Events
// at the same instant are ordered by an explicit priority class and then by
// insertion order, so simulations are fully deterministic.
#pragma once

namespace es::sim {

using Time = double;

/// Ordering classes for events that share a timestamp.  Lower runs first.
/// Completions must precede arrivals so a scheduler invoked on the arrival
/// sees the freed capacity; ECCs precede scheduling so a cycle sees the
/// adjusted residuals.
enum class EventClass : int {
  kJobFinish = 0,
  kEccArrival = 1,
  kDedicatedDue = 2,
  kJobArrival = 3,
  kSchedule = 4,
  kOther = 5,
};

}  // namespace es::sim
