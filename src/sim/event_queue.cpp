#include "sim/event_queue.hpp"

#include <memory>
#include <utility>

#include "util/check.hpp"

namespace es::sim {

EventHandle EventQueue::schedule(Time at, EventClass cls, Callback fn) {
  ES_EXPECTS(fn != nullptr);
  Entry entry;
  entry.time = at;
  entry.cls = static_cast<int>(cls);
  entry.seq = next_seq_++;
  entry.id = next_id_++;
  const std::uint64_t id = entry.id;
  entry.fn = std::make_shared<Callback>(std::move(fn));
  heap_.push(std::move(entry));
  ++live_;
  return EventHandle{id};
}

bool EventQueue::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  if (handle.id >= next_id_) return false;
  // Only pending events can be cancelled; fired events were removed from the
  // heap so inserting their id into cancelled_ would leak.  We cannot cheaply
  // distinguish "already fired" from "pending" without a side table, so keep
  // one: cancelled_ holds ids whose heap entry still exists.  We detect
  // double-cancel via the insertion result.
  if (live_ == 0) return false;
  const auto [it, inserted] = cancelled_.insert(handle.id);
  (void)it;
  if (!inserted) return false;
  // The id might belong to an event that already fired; pop_and_run erases
  // fired ids from cancelled_ defensively, so a stale cancel of a fired event
  // is detected there.  To keep cancel() truthful we check liveness by
  // assuming callers only cancel events they know are pending (the engine
  // guarantees this); the live counter is adjusted here.
  --live_;
  return true;
}

void EventQueue::skim() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time EventQueue::next_time() {
  skim();
  ES_EXPECTS(!heap_.empty());
  return heap_.top().time;
}

Time EventQueue::pop_and_run() {
  skim();
  ES_EXPECTS(!heap_.empty());
  Entry entry = heap_.top();
  heap_.pop();
  --live_;
  (*entry.fn)(entry.time);
  return entry.time;
}

}  // namespace es::sim
