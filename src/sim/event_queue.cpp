#include "sim/event_queue.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.hpp"

namespace es::sim {

EventHandle EventQueue::schedule(Time at, EventClass cls, Callback fn,
                                 std::uint64_t tag) {
  return restore_event(at, cls, std::move(fn), tag, next_seq_++);
}

EventHandle EventQueue::restore_event(Time at, EventClass cls, Callback fn,
                                      std::uint64_t tag, std::uint64_t seq) {
  ES_EXPECTS(fn != nullptr);
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    ES_EXPECTS(records_.size() <
               std::numeric_limits<std::uint32_t>::max() - 1);
    slot = static_cast<std::uint32_t>(records_.size());
    records_.emplace_back();
  }
  Record& record = records_[slot];
  record.fn = std::move(fn);
  record.tag = tag;
  heap_.push_back(HeapItem{at, static_cast<std::int32_t>(cls), seq, slot,
                           record.generation});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  ++counters_.scheduled;
  counters_.peak_pending = std::max<std::uint64_t>(counters_.peak_pending,
                                                   live_);
  return EventHandle{make_id(slot, record.generation)};
}

std::vector<PendingEvent> EventQueue::pending_events() const {
  std::vector<PendingEvent> pending;
  pending.reserve(live_);
  for (const HeapItem& item : heap_) {
    if (!armed(item)) continue;  // cancelled residue awaiting skim
    pending.push_back(PendingEvent{item.time, item.cls, item.seq,
                                   records_[item.slot].tag});
  }
  std::sort(pending.begin(), pending.end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              return a.seq < b.seq;
            });
  return pending;
}

void EventQueue::restore_meta(std::uint64_t next_seq,
                              const EventQueueCounters& counters) {
  next_seq_ = next_seq;
  counters_ = counters;
}

void EventQueue::retire(std::uint32_t slot) {
  Record& record = records_[slot];
  ++record.generation;
  if (record.generation == 0) ++record.generation;  // skip never-valid 0
  free_.push_back(slot);
}

bool EventQueue::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  const std::uint64_t slot_part = handle.id & 0xffffffffULL;
  if (slot_part == 0 || slot_part > records_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(slot_part - 1);
  const auto generation = static_cast<std::uint32_t>(handle.id >> 32);
  // A fired, cancelled, or recycled record carries a newer generation, so a
  // stale handle fails here — cancel-after-fire is a truthful false.
  if (records_[slot].generation != generation) return false;
  records_[slot].fn = nullptr;
  retire(slot);  // the heap item is skimmed lazily on pop
  --live_;
  ++counters_.cancelled;
  // Lazy deletion keeps cancel O(1), but a cancel-heavy stretch with no
  // intervening pop would let dead heap entries pile up and force vector
  // regrowth.  Once the dead outnumber the live, sweep them in place and
  // re-heapify — amortized O(1) per cancel, and since (time, class, seq) is
  // a strict total order the rebuilt heap pops in exactly the same order.
  if (heap_.size() >= 64 && heap_.size() > 2 * live_) {
    heap_.erase(std::remove_if(
                    heap_.begin(), heap_.end(),
                    [this](const HeapItem& item) { return !armed(item); }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), Later{});
  }
  return true;
}

void EventQueue::skim() {
  while (!heap_.empty() && !armed(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() {
  skim();
  ES_EXPECTS(!heap_.empty());
  return heap_.front().time;
}

Time EventQueue::pop_and_run() {
  skim();
  ES_EXPECTS(!heap_.empty());
  const HeapItem item = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  // Retire before running: the callback may legitimately schedule new events
  // (possibly reusing this very slot) or try to cancel its own handle, which
  // must report "already fired".
  Callback fn = std::move(records_[item.slot].fn);
  retire(item.slot);
  --live_;
  ++counters_.fired;
  fn(item.time);
  return item.time;
}

}  // namespace es::sim
