#include "sim/event_queue.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.hpp"

namespace es::sim {

void EventQueue::set_band_enabled(bool enabled) {
  // The tiers do not rebalance on the fly; flipping mid-run would strand
  // band items outside the heap's invariants (and vice versa).
  ES_EXPECTS(counters_.scheduled == 0 && live_ == 0);
  band_enabled_ = enabled;
}

EventHandle EventQueue::schedule(Time at, EventClass cls, Callback fn,
                                 std::uint64_t tag) {
  return restore_event(at, cls, std::move(fn), tag, next_seq_++);
}

EventHandle EventQueue::restore_event(Time at, EventClass cls, Callback fn,
                                      std::uint64_t tag, std::uint64_t seq) {
  ES_EXPECTS(fn != nullptr);
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    ES_EXPECTS(records_.size() <
               std::numeric_limits<std::uint32_t>::max() - 1);
    slot = static_cast<std::uint32_t>(records_.size());
    records_.emplace_back();
    // Slab growth is the one moment the queue is visibly not at steady
    // state, so pre-size the redistribute staging here: a band rebucket
    // then never allocates (band_count_ is bounded by live plus cancelled
    // residue, and the sweep keeps residue within a small multiple of
    // live).
    if (const std::size_t needed = 4 * records_.size() + 64;
        band_enabled_ && scratch_.capacity() < needed)
      scratch_.reserve(std::max(needed, 2 * scratch_.capacity()));
  }
  Record& record = records_[slot];
  record.fn = std::move(fn);
  record.tag = tag;
  insert_item(HeapItem{at, static_cast<std::int32_t>(cls), seq, slot,
                       record.generation});
  ++live_;
  ++counters_.scheduled;
  counters_.peak_pending = std::max<std::uint64_t>(counters_.peak_pending,
                                                   live_);
  return EventHandle{make_id(slot, record.generation)};
}

std::uint64_t EventQueue::window_of(Time t) const {
  if (t <= origin_) return window_;  // never behind the cursor
  const Time relative = (t - origin_) / width_;
  // Saturate far-future (or degenerate-width) times straight into the heap
  // tier before the cast can overflow.
  if (!(relative < 9.0e18)) return window_ + kBuckets;
  const auto w = static_cast<std::uint64_t>(relative);
  return w < window_ ? window_ : w;
}

void EventQueue::insert_item(const HeapItem& item) {
  if (band_enabled_) {
    if (width_ == 0) {
      // First event ever: open the band around it with a unit width; the
      // density adaptation converges from there.
      width_ = 1.0;
      anchor(item.time);
    } else if (band_count_ == 0 && heap_.empty()) {
      // The queue drained completely: start a fresh band epoch at this
      // event instead of clamping it into whatever window the old cursor
      // stopped at.
      anchor(item.time);
    }
    if (window_of(item.time) - window_ < kBuckets) {
      band_insert(item);
      ++counters_.band_scheduled;
      return;
    }
  }
  heap_.push_back(item);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::anchor(Time at) {
  if (buckets_.empty()) {
    // One-time (per queue) first-touch cost, paid at the first schedule so
    // the steady-state band never allocates on a bucket's first use; bucket
    // capacities only grow from here (erase/clear keep them).
    buckets_.resize(kBuckets);
    for (std::vector<HeapItem>& bucket : buckets_) bucket.reserve(4);
  }
  origin_ = at;
  window_ = 0;
  cursor_sorted_ = false;
  rotation_pops_ = 0;
}

void EventQueue::band_insert(const HeapItem& item) {
  const std::uint64_t window = window_of(item.time);
  std::vector<HeapItem>& bucket = buckets_[window & kBucketMask];
  if (window == window_ && cursor_sorted_) {
    // Same-window insert while the cursor bucket drains: keep it sorted so
    // the back stays the minimum.  O(size) in the bucket, but enter_bucket
    // re-buckets any window that drains dense, so draining buckets stay a
    // couple of kDenseBucket at most.
    bucket.insert(
        std::upper_bound(bucket.begin(), bucket.end(), item, Later{}), item);
  } else {
    bucket.push_back(item);
  }
  ++band_count_;
}

void EventQueue::pull_from_heap() {
  const std::uint64_t horizon = window_ + kBuckets;
  while (!heap_.empty() && window_of(heap_.front().time) < horizon) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const HeapItem item = heap_.back();
    heap_.pop_back();
    if (!armed(item)) continue;  // cancelled residue: drop on migration
    band_insert(item);
    ++counters_.band_migrated;
  }
}

void EventQueue::advance_cursor() {
  ++window_;
  cursor_sorted_ = false;
  if ((window_ & kBucketMask) == 0) {
    // Full rotation.  Fewer than kSparseRotation pops across kBuckets
    // windows means the cursor is mostly walking empty buckets — widen the
    // windows so the walk amortizes back to O(1) per event.
    if (rotation_pops_ < kSparseRotation) {
      width_ *= 8;
      redistribute();
    }
    rotation_pops_ = 0;
  }
  pull_from_heap();  // the advance exposed a new window at the horizon
}

void EventQueue::enter_bucket() {
  std::vector<HeapItem>& bucket = buckets_[window_ & kBucketMask];
  auto keep_end = std::remove_if(
      bucket.begin(), bucket.end(),
      [this](const HeapItem& item) { return !armed(item); });
  band_count_ -= static_cast<std::size_t>(bucket.end() - keep_end);
  bucket.erase(keep_end, bucket.end());
  if (bucket.empty()) return;  // all residue; caller advances the cursor

  if (bucket.size() >= kDenseBucket) {
    // The window drained dense: re-bucket so future windows hold ~a handful
    // of events each.  Two triggers: the usual shrink (span says a narrower
    // width would split this batch), and span > width_ — which can only
    // mean the bucket accumulated clamped items from before the window's
    // start (e.g. the first anchor landed above most of an up-front batch),
    // so re-basing the origin at the batch minimum spreads it out even
    // though the new width is *wider*.  A zero span (every item at one
    // instant) cannot be split by any width — sort the batch once and
    // drain it.
    Time lo = bucket.front().time;
    Time hi = lo;
    for (const HeapItem& item : bucket) {
      lo = std::min(lo, item.time);
      hi = std::max(hi, item.time);
    }
    const Time span = hi - lo;
    const Time shrunk = span / static_cast<Time>(kDenseBucket);
    if (shrunk > 0 && (shrunk < width_ || span > width_)) {
      width_ = shrunk;
      redistribute();
      return;  // cursor_sorted_ stays false; caller re-evaluates
    }
  }
  std::sort(bucket.begin(), bucket.end(), Later{});
  cursor_sorted_ = true;
}

void EventQueue::redistribute() {
  // Re-buckets the whole band under a fresh (origin, width) map.  Every
  // remaining item's time is >= the last popped time, so re-basing the
  // origin at the band minimum never rewinds the cursor past drained work.
  scratch_.clear();
  Time min_time = std::numeric_limits<Time>::max();
  for (std::vector<HeapItem>& bucket : buckets_) {
    for (const HeapItem& item : bucket) {
      if (!armed(item)) continue;
      scratch_.push_back(item);
      min_time = std::min(min_time, item.time);
    }
    bucket.clear();
  }
  band_count_ = 0;
  cursor_sorted_ = false;
  if (!scratch_.empty()) {
    origin_ = min_time;
    window_ = 0;
  }
  const std::uint64_t horizon = window_ + kBuckets;
  for (const HeapItem& item : scratch_) {
    if (window_of(item.time) < horizon) {
      band_insert(item);
    } else {
      // A shrink pulled the horizon in: the tail re-enters the heap tier
      // and migrates back as the cursor rotates toward it.
      heap_.push_back(item);
      std::push_heap(heap_.begin(), heap_.end(), Later{});
    }
  }
  // The map changed, so the old "heap holds nothing below the horizon"
  // invariant must be re-established under the new one.
  pull_from_heap();
}

std::vector<EventQueue::HeapItem>& EventQueue::seek_band_min() {
  for (;;) {
    if (band_count_ == 0) {
      // Band drained.  Re-open it at the earliest far-tier event; the
      // migration below is what keeps the "heap never holds the minimum"
      // invariant as the band walks forward.  An epoch that drained after
      // only a few pops means the width is far too narrow for the event
      // spacing (each pop would pay a full re-anchor) — widen until an
      // epoch captures a reasonable batch.
      skim();
      ES_ASSERT(!heap_.empty());
      if (rotation_pops_ < kSparseRotation) width_ *= 8;
      anchor(heap_.front().time);
      pull_from_heap();
      continue;
    }
    std::vector<HeapItem>& bucket = buckets_[window_ & kBucketMask];
    if (bucket.empty()) {
      advance_cursor();
      continue;
    }
    if (!cursor_sorted_) {
      enter_bucket();
      if (!cursor_sorted_) continue;  // emptied or redistributed
    }
    while (!bucket.empty() && !armed(bucket.back())) {
      bucket.pop_back();
      --band_count_;
    }
    if (bucket.empty()) continue;
    return bucket;
  }
}

EventQueue::HeapItem EventQueue::take_next() {
  if (!band_enabled_ || width_ == 0) {
    skim();
    ES_EXPECTS(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const HeapItem item = heap_.back();
    heap_.pop_back();
    return item;
  }
  std::vector<HeapItem>& bucket = seek_band_min();
  const HeapItem item = bucket.back();
  bucket.pop_back();
  --band_count_;
  ++rotation_pops_;
  return item;
}

std::vector<PendingEvent> EventQueue::pending_events() const {
  std::vector<PendingEvent> pending;
  pending.reserve(live_);
  const auto collect = [&](const HeapItem& item) {
    if (!armed(item)) return;  // cancelled residue awaiting skim/sweep
    pending.push_back(PendingEvent{item.time, item.cls, item.seq,
                                   records_[item.slot].tag});
  };
  for (const HeapItem& item : heap_) collect(item);
  for (const std::vector<HeapItem>& bucket : buckets_)
    for (const HeapItem& item : bucket) collect(item);
  std::sort(pending.begin(), pending.end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              return a.seq < b.seq;
            });
  return pending;
}

void EventQueue::restore_meta(std::uint64_t next_seq,
                              const EventQueueCounters& counters) {
  next_seq_ = next_seq;
  counters_ = counters;
}

void EventQueue::retire(std::uint32_t slot) {
  Record& record = records_[slot];
  ++record.generation;
  if (record.generation == 0) ++record.generation;  // skip never-valid 0
  free_.push_back(slot);
}

bool EventQueue::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  const std::uint64_t slot_part = handle.id & 0xffffffffULL;
  if (slot_part == 0 || slot_part > records_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(slot_part - 1);
  const auto generation = static_cast<std::uint32_t>(handle.id >> 32);
  // A fired, cancelled, or recycled record carries a newer generation, so a
  // stale handle fails here — cancel-after-fire is a truthful false.
  if (records_[slot].generation != generation) return false;
  records_[slot].fn = nullptr;
  retire(slot);  // pending items are skimmed lazily on pop
  --live_;
  ++counters_.cancelled;
  // Lazy deletion keeps cancel O(1), but a cancel-heavy stretch with no
  // intervening pop would let dead entries pile up and force vector
  // regrowth.  Once the dead outnumber the live, sweep both tiers in place
  // — amortized O(1) per cancel, and since (time, class, seq) is a strict
  // total order the rebuilt structure pops in exactly the same order.
  const std::size_t pending = heap_.size() + band_count_;
  if (pending >= 64 && pending > 2 * live_) sweep();
  return true;
}

void EventQueue::skim() {
  while (!heap_.empty() && !armed(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

void EventQueue::sweep() {
  const auto dead = [this](const HeapItem& item) { return !armed(item); };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  for (std::vector<HeapItem>& bucket : buckets_) {
    // remove_if is stable, so a sorted (draining) cursor bucket stays
    // sorted.
    auto keep_end = std::remove_if(bucket.begin(), bucket.end(), dead);
    band_count_ -= static_cast<std::size_t>(bucket.end() - keep_end);
    bucket.erase(keep_end, bucket.end());
  }
}

Time EventQueue::next_time() {
  ES_EXPECTS(live_ > 0);
  if (!band_enabled_ || width_ == 0) {
    skim();
    ES_EXPECTS(!heap_.empty());
    return heap_.front().time;
  }
  return seek_band_min().back().time;
}

Time EventQueue::pop_and_run() {
  ES_EXPECTS(live_ > 0);
  const HeapItem item = take_next();
  // Retire before running: the callback may legitimately schedule new events
  // (possibly reusing this very slot) or try to cancel its own handle, which
  // must report "already fired".
  Callback fn = std::move(records_[item.slot].fn);
  retire(item.slot);
  --live_;
  ++counters_.fired;
  fn(item.time);
  return item.time;
}

}  // namespace es::sim
