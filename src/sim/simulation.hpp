// Simulation driver: a monotonically advancing clock over an EventQueue.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace es::sim {

/// Owns the clock and the event queue and exposes the scheduling primitives
/// the engine layers use.  The clock never moves backwards; scheduling an
/// event in the past is a contract violation.
class Simulation {
 public:
  Time now() const { return now_; }

  /// Schedules an event at absolute time `at` (>= now()).
  EventHandle at(Time when, EventClass cls, EventQueue::Callback fn);

  /// Schedules an event `delay` seconds from now (delay >= 0).
  EventHandle after(Time delay, EventClass cls, EventQueue::Callback fn);

  /// Cancels a pending event; see EventQueue::cancel.
  bool cancel(EventHandle handle) { return queue_.cancel(handle); }

  /// Runs events until the queue is empty.  Returns the number processed.
  std::uint64_t run();

  /// Runs events with time <= horizon.  The clock is advanced to at most the
  /// last processed event (it does not jump to the horizon).
  std::uint64_t run_until(Time horizon);

  /// Processes exactly one event if any is pending.  Returns true if one ran.
  bool step();

  bool idle() const { return queue_.empty(); }
  /// Time of the next live event.  Precondition: !idle().  Non-const: the
  /// queue may skim lazily cancelled entries off its top.
  Time next_event_time() { return queue_.next_time(); }
  std::uint64_t events_processed() const { return processed_; }
  const EventQueue& queue() const { return queue_; }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t processed_ = 0;
};

}  // namespace es::sim
