// Simulation driver: a monotonically advancing clock over an EventQueue.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace es::sim {

/// Owns the clock and the event queue and exposes the scheduling primitives
/// the engine layers use.  The clock never moves backwards; scheduling an
/// event in the past is a contract violation.
class Simulation {
 public:
  Time now() const { return now_; }

  /// Schedules an event at absolute time `at` (>= now()).  `tag` is an
  /// opaque descriptor used to re-establish the event after a snapshot
  /// restore (see EventQueue::schedule).
  EventHandle at(Time when, EventClass cls, EventQueue::Callback fn,
                 std::uint64_t tag = 0);

  /// Schedules an event `delay` seconds from now (delay >= 0).
  EventHandle after(Time delay, EventClass cls, EventQueue::Callback fn,
                    std::uint64_t tag = 0);

  /// Cancels a pending event; see EventQueue::cancel.
  bool cancel(EventHandle handle) { return queue_.cancel(handle); }

  /// Runs events until the queue is empty.  Returns the number processed.
  std::uint64_t run();

  /// Runs events with time <= horizon.  The clock is advanced to at most the
  /// last processed event (it does not jump to the horizon).
  std::uint64_t run_until(Time horizon);

  /// Processes exactly one event if any is pending.  Returns true if one ran.
  bool step();

  /// Selects the queue's ordering structure (calendar band vs heap-only);
  /// see EventQueue::set_band_enabled.  Only valid before the first event.
  void set_calendar_band(bool enabled) { queue_.set_band_enabled(enabled); }

  bool idle() const { return queue_.empty(); }
  /// Time of the next live event.  Precondition: !idle().  Non-const: the
  /// queue may skim lazily cancelled entries off its top.
  Time next_event_time() { return queue_.next_time(); }
  std::uint64_t events_processed() const { return processed_; }
  const EventQueue& queue() const { return queue_; }

  // --- snapshot/restore support -------------------------------------------

  /// Sets the clock and processed-event count from a snapshot.  Only valid
  /// while re-establishing state on a fresh simulation.
  void restore_clock(Time now, std::uint64_t processed) {
    now_ = now;
    processed_ = processed;
  }

  /// Re-inserts a pending event with its original sequence number; see
  /// EventQueue::restore_event.
  EventHandle restore_event(Time at, EventClass cls, EventQueue::Callback fn,
                            std::uint64_t tag, std::uint64_t seq) {
    return queue_.restore_event(at, cls, std::move(fn), tag, seq);
  }

  /// Restores the queue's sequence allocator and counters; see
  /// EventQueue::restore_meta.
  void restore_queue_meta(std::uint64_t next_seq,
                          const EventQueueCounters& counters) {
    queue_.restore_meta(next_seq, counters);
  }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t processed_ = 0;
};

}  // namespace es::sim
