#include "sim/simulation.hpp"

#include <utility>

#include "util/check.hpp"

namespace es::sim {

EventHandle Simulation::at(Time when, EventClass cls, EventQueue::Callback fn,
                           std::uint64_t tag) {
  ES_EXPECTS(when >= now_);
  return queue_.schedule(when, cls, std::move(fn), tag);
}

EventHandle Simulation::after(Time delay, EventClass cls,
                              EventQueue::Callback fn, std::uint64_t tag) {
  ES_EXPECTS(delay >= 0);
  return queue_.schedule(now_ + delay, cls, std::move(fn), tag);
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  const Time at_time = queue_.next_time();
  ES_ASSERT(at_time >= now_);
  now_ = at_time;
  queue_.pop_and_run();
  ++processed_;
  return true;
}

std::uint64_t Simulation::run() {
  std::uint64_t count = 0;
  while (step()) ++count;
  return count;
}

std::uint64_t Simulation::run_until(Time horizon) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon && step()) ++count;
  return count;
}

}  // namespace es::sim
