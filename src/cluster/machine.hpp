// Parallel machine model.
//
// Models the processor pool of a space-shared machine like IBM BlueGene/P:
// `total` processors, allocated in integer multiples of an allocation
// granularity (32 processors — one node card — in the paper's configuration;
// 1 for SP2-class machines in the Fig-1 validation).  The machine is a pure
// capacity ledger: placement/topology is out of scope, exactly as in the
// paper's GridSim configuration.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/check.hpp"

namespace es::cluster {

using JobId = std::int64_t;

/// Serializable machine state (snapshot/restore).  Allocations are sorted
/// by job id so the byte image is deterministic regardless of hash-map
/// iteration order.
struct MachineState {
  int free = 0;
  int offline = 0;
  std::vector<std::pair<JobId, int>> allocations;
};

/// Capacity ledger with per-job allocations and degraded-capacity
/// accounting: processors taken offline by a node failure leave the free
/// pool until repaired, so `available()` (total - offline) is the capacity
/// the scheduler can actually plan against.
class Machine {
 public:
  /// `total` must be a positive multiple of `granularity`.
  Machine(int total, int granularity = 1);

  /// Processors a request for `procs` actually occupies: the request rounded
  /// up to the allocation granularity.  Inline: the scheduler's eligibility
  /// scans call this once per scanned job per cycle.
  int allocation_for(int procs) const {
    ES_EXPECTS(procs > 0);
    return ((procs + granularity_ - 1) / granularity_) * granularity_;
  }

  /// True if a job of `procs` processors fits in the free pool right now.
  bool fits(int procs) const { return allocation_for(procs) <= free_; }

  /// Allocates for `job`; aborts if it does not fit or the id is active.
  /// Returns the processors actually occupied.
  int allocate(JobId job, int procs);

  /// Releases the allocation of `job`; aborts if the id is not active.
  /// Returns the processors freed.
  int release(JobId job);

  /// Shrinks or grows an existing allocation to `procs` (resource-dimension
  /// elasticity, paper section VI).  Growth must fit in the free pool.
  /// Returns the delta in occupied processors (positive = grew).
  int resize(JobId job, int procs);

  /// Removes `procs` processors from service (node failure).  They must be
  /// idle: callers preempt running jobs first so `procs <= free()`.
  void take_offline(int procs);

  /// Returns `procs` previously offline processors to service (repair).
  void bring_online(int procs);

  int total() const { return total_; }
  int granularity() const { return granularity_; }
  int free() const { return free_; }
  int used() const { return total_ - free_ - offline_; }
  int offline() const { return offline_; }
  /// Capacity currently in service: total() minus offline processors.
  int available() const { return total_ - offline_; }
  std::size_t active_jobs() const { return allocations_.size(); }
  bool is_active(JobId job) const { return allocations_.contains(job); }
  /// Processors occupied by `job` (0 if not active).
  int allocated(JobId job) const;

  /// Captures the mutable ledger state for a snapshot.
  MachineState save_state() const;

  /// Restores a state captured on a machine of the same shape.  Aborts if
  /// the state is inconsistent with total()/granularity().
  void restore_state(const MachineState& state);

 private:
  int total_;
  int granularity_;
  int free_;
  int offline_ = 0;  ///< processors out of service (node failures)
  std::unordered_map<JobId, int> allocations_;
};

}  // namespace es::cluster
