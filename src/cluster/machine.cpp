#include "cluster/machine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace es::cluster {

Machine::Machine(int total, int granularity)
    : total_(total), granularity_(granularity), free_(total) {
  ES_EXPECTS(total > 0);
  ES_EXPECTS(granularity > 0);
  ES_EXPECTS(total % granularity == 0);
}

int Machine::allocate(JobId job, int procs) {
  const int occupied = allocation_for(procs);
  ES_EXPECTS(occupied <= free_);
  const auto [it, inserted] = allocations_.emplace(job, occupied);
  (void)it;
  ES_EXPECTS(inserted);
  free_ -= occupied;
  ES_ENSURES(free_ >= 0);
  return occupied;
}

int Machine::release(JobId job) {
  const auto it = allocations_.find(job);
  ES_EXPECTS(it != allocations_.end());
  const int occupied = it->second;
  allocations_.erase(it);
  free_ += occupied;
  ES_ENSURES(free_ <= total_);
  return occupied;
}

int Machine::resize(JobId job, int procs) {
  const auto it = allocations_.find(job);
  ES_EXPECTS(it != allocations_.end());
  const int target = allocation_for(procs);
  const int delta = target - it->second;
  ES_EXPECTS(delta <= free_);
  it->second = target;
  free_ -= delta;
  ES_ENSURES(free_ >= 0 && free_ <= total_);
  return delta;
}

void Machine::take_offline(int procs) {
  ES_EXPECTS(procs > 0);
  ES_EXPECTS(procs <= free_);
  free_ -= procs;
  offline_ += procs;
  ES_ENSURES(offline_ <= total_);
}

void Machine::bring_online(int procs) {
  ES_EXPECTS(procs > 0);
  ES_EXPECTS(procs <= offline_);
  offline_ -= procs;
  free_ += procs;
  ES_ENSURES(free_ <= total_);
}

int Machine::allocated(JobId job) const {
  const auto it = allocations_.find(job);
  return it == allocations_.end() ? 0 : it->second;
}

MachineState Machine::save_state() const {
  MachineState state;
  state.free = free_;
  state.offline = offline_;
  state.allocations.assign(allocations_.begin(), allocations_.end());
  std::sort(state.allocations.begin(), state.allocations.end());
  return state;
}

void Machine::restore_state(const MachineState& state) {
  int used = 0;
  for (const auto& [job, occupied] : state.allocations) {
    ES_EXPECTS(occupied > 0 && occupied % granularity_ == 0);
    used += occupied;
  }
  ES_EXPECTS(state.free >= 0 && state.offline >= 0);
  ES_EXPECTS(state.free + state.offline + used == total_);
  free_ = state.free;
  offline_ = state.offline;
  allocations_.clear();
  for (const auto& [job, occupied] : state.allocations) {
    const auto [it, inserted] = allocations_.emplace(job, occupied);
    (void)it;
    ES_EXPECTS(inserted);
  }
}

}  // namespace es::cluster
