// Time-weighted utilization accounting.
//
// Integrates busy-processor-seconds over simulated time so the mean system
// utilization reported by the experiments is exact (not sampled).  This is
// the "mean utilization" metric of the paper's section V.
#pragma once

#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace es::cluster {

/// Serializable tracker state (snapshot/restore).
struct UtilizationState {
  int busy = 0;
  sim::Time first = 0.0;
  sim::Time last = 0.0;
  bool started = false;
  double integral = 0.0;
  std::vector<std::pair<sim::Time, int>> steps;
  std::vector<std::pair<sim::Time, int>> capacity_steps;
};

/// Exact integral of the busy-processor step function.
class UtilizationTracker {
 public:
  explicit UtilizationTracker(int capacity);

  /// Records that from `at` onwards `busy` processors are occupied.
  /// `at` must be non-decreasing across calls; busy in [0, capacity].
  void record(sim::Time at, int busy);

  /// Bounded mode for streaming runs: stop retaining the per-record step
  /// list (a million-job run would otherwise hold millions of steps) and
  /// answer busy_proc_seconds from the incremental integral instead.  The
  /// incremental accumulator adds exactly the per-segment terms integrate()
  /// sums, in the same left-to-right order, so queries over
  /// [first record, >= last record] are bitwise identical to the retained
  /// mode.  Restrictions: queries must start at the first record, querying
  /// inside the recorded range (only watchdog-aborted runs do) returns the
  /// integral through the last record — a documented over-approximation —
  /// and save_state() is unsupported.  Must be set before the first record.
  void set_bounded(bool bounded);

  /// Records that from `at` onwards `available` processors are in service
  /// (node failures shrink this below capacity; repairs restore it).  Only
  /// called when a failure model is active: with no capacity records the
  /// machine is treated as fully available for the whole run, keeping the
  /// no-failure arithmetic bit-identical to the original tracker.
  void record_capacity(sim::Time at, int available);

  /// Busy processor-seconds accumulated in [from, to].  The window must lie
  /// within [first record, last record]; the level after the last record is
  /// extrapolated as the last busy value.
  double busy_proc_seconds(sim::Time from, sim::Time to) const;

  /// In-service processor-seconds in [from, to]: the integral of the
  /// available-capacity step function (capacity * (to - from) when no
  /// capacity records were made).
  double available_proc_seconds(sim::Time from, sim::Time to) const;

  /// Mean utilization in [from, to] as a fraction of the *available*
  /// capacity timeline (0..1), so the metric stays meaningful while nodes
  /// are down.  Equals busy / (capacity * span) when no failures occurred.
  double mean_utilization(sim::Time from, sim::Time to) const;

  int capacity() const { return capacity_; }
  sim::Time first_time() const { return first_; }
  sim::Time last_time() const { return last_; }
  int current_busy() const { return busy_; }

  /// Total busy-proc-seconds integrated so far (up to the last record).
  double integral() const { return integral_; }

  /// Captures the mutable accounting state for a snapshot.
  UtilizationState save_state() const;

  /// Restores state captured on a tracker of the same capacity.
  void restore_state(const UtilizationState& state);

 private:
  struct Step {
    sim::Time time;
    int busy;
  };

  /// Integral of a step function over [from, to], extrapolating the last
  /// level past the final step.
  static double integrate(const std::vector<Step>& steps, sim::Time last,
                          sim::Time from, sim::Time to);

  int capacity_;
  bool bounded_ = false;  ///< no steps_ retention (streaming runs)
  int busy_ = 0;
  sim::Time first_ = 0.0;
  sim::Time last_ = 0.0;
  bool started_ = false;
  double integral_ = 0.0;  ///< busy-proc-seconds up to last_
  std::vector<Step> steps_;
  std::vector<Step> capacity_steps_;  ///< empty unless failures injected

};

}  // namespace es::cluster
