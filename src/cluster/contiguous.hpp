// Contiguous-allocation machine model (paper section II: Krevat et al.,
// BlueGene/L).
//
// Toroidal machines like BlueGene/L require partitions to be contiguous
// (we model the 1-D line of allocation units — midplanes / node cards).
// Contiguity introduces *external fragmentation*: a job may not fit even
// though enough total units are free.  Migration ("on-the-fly
// de-fragmentation") slides running jobs together to recreate one large
// hole, at the cost of interrupting the moved jobs.
//
// This substrate backs the contiguity/migration study bench
// (`bench/contiguity_migration`), reproducing Krevat's qualitative result
// on our stack: contiguity costs utilization, migration wins most of it
// back.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace es::cluster {

/// One allocated contiguous interval [begin, begin + units).
struct Extent {
  int begin = 0;
  int units = 0;
  int end() const { return begin + units; }
};

/// 1-D contiguous allocator over `total_units` allocation units.
class ContiguousMachine {
 public:
  enum class Placement { kFirstFit, kBestFit };

  explicit ContiguousMachine(int total_units,
                             Placement placement = Placement::kFirstFit);

  /// Largest contiguous free hole, in units.
  int largest_hole() const;
  /// Total free units (may be spread across holes).
  int free_units() const { return free_; }
  int total_units() const { return total_; }

  /// True when a `units`-sized job can be placed contiguously right now.
  bool fits(int units) const { return units <= largest_hole(); }

  /// Allocates a contiguous extent; aborts if !fits(units) or duplicate id.
  Extent allocate(std::int64_t job, int units);

  /// Releases a job's extent; aborts on unknown id.
  void release(std::int64_t job);

  /// Migration pass: compacts all allocations to the left, preserving
  /// their relative order, so all free units coalesce into one hole on the
  /// right.  Returns the jobs that moved (the migration cost driver).
  std::vector<std::int64_t> compact();

  /// External fragmentation in [0, 1]: 1 - largest_hole / free_units
  /// (0 when free space is one hole or the machine is full).
  double fragmentation() const;

  std::size_t active_jobs() const { return extents_.size(); }
  Extent extent_of(std::int64_t job) const;

 private:
  int total_;
  int free_;
  Placement placement_;
  std::map<std::int64_t, Extent> extents_;  ///< by job id
};

}  // namespace es::cluster
