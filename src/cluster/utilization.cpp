#include "cluster/utilization.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace es::cluster {

UtilizationTracker::UtilizationTracker(int capacity) : capacity_(capacity) {
  ES_EXPECTS(capacity > 0);
}

void UtilizationTracker::record(sim::Time at, int busy) {
  ES_EXPECTS(busy >= 0 && busy <= capacity_);
  if (!started_) {
    started_ = true;
    first_ = last_ = at;
    busy_ = busy;
    steps_.push_back({at, busy});
    return;
  }
  ES_EXPECTS(at >= last_);
  integral_ += static_cast<double>(busy_) * (at - last_);
  last_ = at;
  busy_ = busy;
  if (!steps_.empty() && steps_.back().time == at) {
    steps_.back().busy = busy;  // coalesce same-instant updates
  } else {
    steps_.push_back({at, busy});
  }
}

double UtilizationTracker::busy_proc_seconds(sim::Time from,
                                             sim::Time to) const {
  ES_EXPECTS(from <= to);
  if (!started_ || steps_.empty() || to <= steps_.front().time) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const sim::Time seg_start = steps_[i].time;
    const sim::Time seg_end =
        (i + 1 < steps_.size()) ? steps_[i + 1].time : std::max(to, last_);
    const sim::Time lo = std::max(from, seg_start);
    const sim::Time hi = std::min(to, seg_end);
    if (hi > lo) sum += static_cast<double>(steps_[i].busy) * (hi - lo);
  }
  return sum;
}

double UtilizationTracker::mean_utilization(sim::Time from,
                                            sim::Time to) const {
  if (to <= from) return 0.0;
  return busy_proc_seconds(from, to) /
         (static_cast<double>(capacity_) * (to - from));
}

}  // namespace es::cluster
