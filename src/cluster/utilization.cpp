#include "cluster/utilization.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace es::cluster {

UtilizationTracker::UtilizationTracker(int capacity) : capacity_(capacity) {
  ES_EXPECTS(capacity > 0);
}

void UtilizationTracker::set_bounded(bool bounded) {
  ES_EXPECTS(!started_);  // mode must be fixed before the first record
  bounded_ = bounded;
}

void UtilizationTracker::record(sim::Time at, int busy) {
  ES_EXPECTS(busy >= 0 && busy <= capacity_);
  if (!started_) {
    started_ = true;
    first_ = last_ = at;
    busy_ = busy;
    if (!bounded_) steps_.push_back({at, busy});
    return;
  }
  ES_EXPECTS(at >= last_);
  integral_ += static_cast<double>(busy_) * (at - last_);
  last_ = at;
  busy_ = busy;
  if (bounded_) return;
  if (!steps_.empty() && steps_.back().time == at) {
    steps_.back().busy = busy;  // coalesce same-instant updates
  } else {
    steps_.push_back({at, busy});
  }
}

void UtilizationTracker::record_capacity(sim::Time at, int available) {
  ES_EXPECTS(available >= 0 && available <= capacity_);
  if (!capacity_steps_.empty()) {
    ES_EXPECTS(at >= capacity_steps_.back().time);
    if (capacity_steps_.back().time == at) {
      capacity_steps_.back().busy = available;
      return;
    }
  }
  capacity_steps_.push_back({at, available});
}

double UtilizationTracker::integrate(const std::vector<Step>& steps,
                                     sim::Time last, sim::Time from,
                                     sim::Time to) {
  ES_EXPECTS(from <= to);
  if (steps.empty() || to <= steps.front().time) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const sim::Time seg_start = steps[i].time;
    const sim::Time seg_end =
        (i + 1 < steps.size()) ? steps[i + 1].time : std::max(to, last);
    const sim::Time lo = std::max(from, seg_start);
    const sim::Time hi = std::min(to, seg_end);
    if (hi > lo) sum += static_cast<double>(steps[i].busy) * (hi - lo);
  }
  return sum;
}

double UtilizationTracker::busy_proc_seconds(sim::Time from,
                                             sim::Time to) const {
  ES_EXPECTS(from <= to);
  if (!started_) return 0.0;
  if (bounded_) {
    // The incremental integral_ holds exactly the segment terms
    // integrate(steps_, last_, first_, last_) would sum (one per record, in
    // record order — same-instant records contribute an exact +0.0), so a
    // [first_, >= last_] query reproduces the retained-mode double bit for
    // bit.  A query ending inside the recorded range (watchdog-aborted
    // streaming runs only) cannot be truncated without the steps; return
    // the integral through last_ as a documented over-approximation.
    ES_EXPECTS(from <= first_);
    if (to <= first_) return 0.0;
    double sum = integral_;
    if (to > last_) sum += static_cast<double>(busy_) * (to - last_);
    return sum;
  }
  return integrate(steps_, last_, from, to);
}

double UtilizationTracker::available_proc_seconds(sim::Time from,
                                                  sim::Time to) const {
  ES_EXPECTS(from <= to);
  if (capacity_steps_.empty())
    return static_cast<double>(capacity_) * (to - from);
  return integrate(capacity_steps_, capacity_steps_.back().time, from, to);
}

UtilizationState UtilizationTracker::save_state() const {
  UtilizationState state;
  state.busy = busy_;
  state.first = first_;
  state.last = last_;
  state.started = started_;
  state.integral = integral_;
  state.steps.reserve(steps_.size());
  for (const Step& s : steps_) state.steps.emplace_back(s.time, s.busy);
  state.capacity_steps.reserve(capacity_steps_.size());
  for (const Step& s : capacity_steps_) {
    state.capacity_steps.emplace_back(s.time, s.busy);
  }
  return state;
}

void UtilizationTracker::restore_state(const UtilizationState& state) {
  busy_ = state.busy;
  first_ = state.first;
  last_ = state.last;
  started_ = state.started;
  integral_ = state.integral;
  steps_.clear();
  steps_.reserve(state.steps.size());
  for (const auto& [time, busy] : state.steps) steps_.push_back({time, busy});
  capacity_steps_.clear();
  capacity_steps_.reserve(state.capacity_steps.size());
  for (const auto& [time, busy] : state.capacity_steps) {
    capacity_steps_.push_back({time, busy});
  }
}

double UtilizationTracker::mean_utilization(sim::Time from,
                                            sim::Time to) const {
  if (to <= from) return 0.0;
  if (capacity_steps_.empty()) {
    // No failures: keep the original single-division arithmetic so results
    // are bit-identical to the pre-failure-model tracker.
    return busy_proc_seconds(from, to) /
           (static_cast<double>(capacity_) * (to - from));
  }
  const double available = available_proc_seconds(from, to);
  if (available <= 0) return 0.0;
  return busy_proc_seconds(from, to) / available;
}

}  // namespace es::cluster
