#include "cluster/contiguous.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace es::cluster {
namespace {

/// Sorted occupied extents -> list of free holes [begin, units].
std::vector<Extent> holes_of(const std::map<std::int64_t, Extent>& extents,
                             int total) {
  std::vector<Extent> occupied;
  occupied.reserve(extents.size());
  for (const auto& [id, extent] : extents) occupied.push_back(extent);
  std::sort(occupied.begin(), occupied.end(),
            [](const Extent& a, const Extent& b) { return a.begin < b.begin; });
  std::vector<Extent> holes;
  int cursor = 0;
  for (const Extent& extent : occupied) {
    if (extent.begin > cursor)
      holes.push_back({cursor, extent.begin - cursor});
    cursor = extent.end();
  }
  if (cursor < total) holes.push_back({cursor, total - cursor});
  return holes;
}

}  // namespace

ContiguousMachine::ContiguousMachine(int total_units, Placement placement)
    : total_(total_units), free_(total_units), placement_(placement) {
  ES_EXPECTS(total_units > 0);
}

int ContiguousMachine::largest_hole() const {
  int largest = 0;
  for (const Extent& hole : holes_of(extents_, total_))
    largest = std::max(largest, hole.units);
  return largest;
}

Extent ContiguousMachine::allocate(std::int64_t job, int units) {
  ES_EXPECTS(units > 0);
  ES_EXPECTS(!extents_.contains(job));
  const auto holes = holes_of(extents_, total_);
  const Extent* chosen = nullptr;
  for (const Extent& hole : holes) {
    if (hole.units < units) continue;
    if (placement_ == Placement::kFirstFit) {
      chosen = &hole;
      break;
    }
    if (chosen == nullptr || hole.units < chosen->units) chosen = &hole;
  }
  ES_EXPECTS(chosen != nullptr);  // caller must check fits()
  const Extent extent{chosen->begin, units};
  extents_.emplace(job, extent);
  free_ -= units;
  ES_ENSURES(free_ >= 0);
  return extent;
}

void ContiguousMachine::release(std::int64_t job) {
  const auto it = extents_.find(job);
  ES_EXPECTS(it != extents_.end());
  free_ += it->second.units;
  extents_.erase(it);
  ES_ENSURES(free_ <= total_);
}

std::vector<std::int64_t> ContiguousMachine::compact() {
  // Order jobs by current position and slide left.
  std::vector<std::pair<std::int64_t, Extent>> by_position(extents_.begin(),
                                                           extents_.end());
  std::sort(by_position.begin(), by_position.end(),
            [](const auto& a, const auto& b) {
              return a.second.begin < b.second.begin;
            });
  std::vector<std::int64_t> moved;
  int cursor = 0;
  for (auto& [id, extent] : by_position) {
    if (extent.begin != cursor) {
      moved.push_back(id);
      extents_[id].begin = cursor;
    }
    cursor += extent.units;
  }
  return moved;
}

double ContiguousMachine::fragmentation() const {
  if (free_ == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_hole()) / free_;
}

Extent ContiguousMachine::extent_of(std::int64_t job) const {
  const auto it = extents_.find(job);
  ES_EXPECTS(it != extents_.end());
  return it->second;
}

}  // namespace es::cluster
