#include "util/csv.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace es::util {

void CsvWriter::set_header(std::vector<std::string> columns) {
  ES_EXPECTS(!header_written_ && rows_ == 0);
  header_ = std::move(columns);
}

std::string CsvWriter::escape(std::string_view text) {
  const bool needs_quote =
      text.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(text);
  std::string quoted = "\"";
  for (char c : text) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

CsvWriter& CsvWriter::cell(std::string_view text) {
  row_.push_back(escape(text));
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  row_.emplace_back(buf);
  return *this;
}

CsvWriter& CsvWriter::cell(long long value) {
  row_.push_back(std::to_string(value));
  return *this;
}

void CsvWriter::maybe_write_header() {
  if (header_written_ || header_.empty()) return;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(header_[i]);
  }
  *out_ << '\n';
  header_written_ = true;
}

void CsvWriter::end_row() {
  maybe_write_header();
  if (!header_.empty()) ES_EXPECTS(row_.size() == header_.size());
  for (std::size_t i = 0; i < row_.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << row_[i];
  }
  *out_ << '\n';
  row_.clear();
  ++rows_;
}

}  // namespace es::util
