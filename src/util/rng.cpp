#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace es::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ES_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ES_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL / span) * span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

double Rng::exponential(double mean) {
  ES_EXPECTS(mean > 0);
  // 1 - uniform01() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform01());
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0, v = 0, s = 0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * scale;
  has_cached_normal_ = true;
  return u * scale;
}

double Rng::gamma(double alpha, double beta) {
  ES_EXPECTS(alpha > 0 && beta > 0);
  // Marsaglia & Tsang (2000).  For alpha < 1, draw Gamma(alpha+1) and apply
  // the boosting transform.
  double boost = 1.0;
  double a = alpha;
  if (a < 1.0) {
    boost = std::pow(uniform01(), 1.0 / a);
    a += 1.0;
  }
  const double d = a - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0, v = 0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform01();
    if (u < 1.0 - 0.0331 * x * x * x * x) return beta * boost * d * v;
    if (u > 0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return beta * boost * d * v;
  }
}

Rng Rng::split() {
  // Derive the child seed from two fresh draws so sibling splits differ.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 31));
}

double HyperGamma::sample(Rng& rng, double p) const {
  if (rng.bernoulli(p)) return rng.gamma(a1, b1);
  return rng.gamma(a2, b2);
}

int TwoStageUniform::sample(Rng& rng, double p_small) const {
  const bool small = rng.bernoulli(p_small);
  const std::int64_t multiplier =
      small ? rng.uniform_int(lo1, hi1) : rng.uniform_int(lo2, hi2);
  return static_cast<int>(multiplier) * unit;
}

double TwoStageUniform::mean(double p_small) const {
  const double small_mean = 0.5 * (lo1 + hi1) * unit;
  const double large_mean = 0.5 * (lo2 + hi2) * unit;
  return p_small * small_mean + (1 - p_small) * large_mean;
}

}  // namespace es::util
