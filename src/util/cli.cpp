#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace es::util {
namespace {

template <typename T, typename Fn>
std::function<bool(std::string_view)> numeric_assign(T* target, Fn convert) {
  return [target, convert](std::string_view text) {
    std::string owned(text);
    char* end = nullptr;
    const auto value = convert(owned.c_str(), &end);
    if (end == owned.c_str() || *end != '\0') return false;
    *target = static_cast<T>(value);
    return true;
  };
}

}  // namespace

void CliParser::add_flag(std::string name, std::string help, bool* target) {
  Option opt;
  opt.name = std::move(name);
  opt.help = std::move(help);
  opt.is_boolean = true;
  opt.assign = [target](std::string_view text) {
    if (text.empty() || text == "true" || text == "1") {
      *target = true;
      return true;
    }
    if (text == "false" || text == "0") {
      *target = false;
      return true;
    }
    return false;
  };
  options_.push_back(std::move(opt));
}

void CliParser::add_option(std::string name, std::string help, int* target) {
  Option opt;
  opt.name = std::move(name);
  opt.help = std::move(help);
  opt.assign = numeric_assign(target, [](const char* s, char** end) {
    return std::strtol(s, end, 10);
  });
  options_.push_back(std::move(opt));
}

void CliParser::add_option(std::string name, std::string help,
                           unsigned long long* target) {
  Option opt;
  opt.name = std::move(name);
  opt.help = std::move(help);
  opt.assign = numeric_assign(target, [](const char* s, char** end) {
    return std::strtoull(s, end, 10);
  });
  options_.push_back(std::move(opt));
}

void CliParser::add_option(std::string name, std::string help,
                           double* target) {
  Option opt;
  opt.name = std::move(name);
  opt.help = std::move(help);
  opt.assign = numeric_assign(
      target, [](const char* s, char** end) { return std::strtod(s, end); });
  options_.push_back(std::move(opt));
}

void CliParser::add_option(std::string name, std::string help,
                           std::string* target) {
  Option opt;
  opt.name = std::move(name);
  opt.help = std::move(help);
  opt.assign = [target](std::string_view text) {
    *target = std::string(text);
    return true;
  };
  options_.push_back(std::move(opt));
}

const CliParser::Option* CliParser::find(std::string_view name) const {
  for (const auto& opt : options_)
    if (opt.name == name) return &opt;
  return nullptr;
}

CliParser::Option* CliParser::find(std::string_view name) {
  for (auto& opt : options_)
    if (opt.name == name) return &opt;
  return nullptr;
}

bool CliParser::was_set(std::string_view name) const {
  const Option* opt = find(name);
  return opt != nullptr && opt->seen;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string_view name = arg;
    std::optional<std::string_view> inline_value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    Option* opt = find(name);
    if (!opt) {
      std::fprintf(stderr, "unknown option --%.*s (try --help)\n",
                   static_cast<int>(name.size()), name.data());
      return false;
    }
    std::string_view value;
    if (inline_value) {
      value = *inline_value;
    } else if (!opt->is_boolean) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option --%s requires a value\n",
                     opt->name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!opt->assign(value)) {
      std::fprintf(stderr, "invalid value '%.*s' for option --%s\n",
                   static_cast<int>(value.size()), value.data(),
                   opt->name.c_str());
      return false;
    }
    opt->seen = true;
  }
  return true;
}

std::string CliParser::help(std::string_view program_name) const {
  std::string text;
  text += description_;
  text += "\n\nusage: ";
  text += program_name;
  text += " [options]\n\noptions:\n";
  for (const auto& opt : options_) {
    text += "  --" + opt.name;
    if (!opt.is_boolean) text += " <value>";
    text += "\n      " + opt.help + "\n";
  }
  return text;
}

}  // namespace es::util
