// Deterministic random-number generation and the statistical distributions
// used by the workload models.
//
// Everything in the simulator draws from an es::util::Rng seeded explicitly,
// so a (seed, parameters) pair reproduces a bit-identical experiment.  The
// generator is xoshiro256** (public domain, Blackman & Vigna) seeded through
// SplitMix64; we avoid std::mt19937 because its stream is not guaranteed
// identical across standard-library implementations for the distribution
// adaptors, and we want trace files to be reproducible anywhere.
#pragma once

#include <array>
#include <cstdint>

namespace es::util {

/// Complete serializable state of an Rng.  Besides the four xoshiro words
/// this carries the Marsaglia-polar spare deviate: normal() produces pairs
/// and caches the second one, so a generator restored without the cache
/// would silently diverge on the next normal()/gamma() draw.
struct RngState {
  std::array<std::uint64_t, 4> s{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;

  bool operator==(const RngState&) const = default;
};

/// xoshiro256** pseudo-random generator with explicit, portable semantics.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via SplitMix64 so that any seed,
  /// including 0, yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64-bit draw.
  std::uint64_t next_u64();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).  Uses the top 53 bits.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi] (unbiased via rejection).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential variate with the given mean (mean > 0).
  double exponential(double mean);

  /// Standard normal variate (Marsaglia polar method, cached pair).
  double normal();

  /// Gamma(shape alpha, scale beta) variate, mean = alpha * beta.
  /// Marsaglia & Tsang squeeze method; handles alpha < 1 by boosting.
  double gamma(double alpha, double beta);

  /// Splits off an independently-seeded child generator.  Used to give each
  /// workload attribute (sizes, runtimes, arrivals, ...) its own stream so
  /// that toggling one feature does not perturb the others.
  Rng split();

  /// Returns a copy of the internal state, for tests.
  std::array<std::uint64_t, 4> state() const { return s_; }

  /// Snapshots the complete stream state (xoshiro words + the cached
  /// Marsaglia spare).  A generator restored with load() continues the
  /// exact draw sequence the saved one would have produced.
  RngState save() const {
    return RngState{s_, cached_normal_, has_cached_normal_};
  }

  /// Restores a state captured by save().
  void load(const RngState& state) {
    s_ = state.s;
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Hyper-Gamma distribution: with probability p a Gamma(a1,b1) variate,
/// otherwise Gamma(a2,b2).  This is the runtime model of Lublin & Feitelson
/// (JPDC 2003) as used by the paper (Table I).
struct HyperGamma {
  double a1 = 0, b1 = 0;  ///< first Gamma (short jobs)
  double a2 = 0, b2 = 0;  ///< second Gamma (long jobs)

  /// Draws with mixing probability p of selecting the *first* Gamma.
  double sample(Rng& rng, double p) const;

  /// Mean of the mixture at mixing probability p.
  double mean(double p) const { return p * a1 * b1 + (1 - p) * a2 * b2; }
};

/// Two-stage uniform size distribution (paper section IV-D): small jobs drawn
/// uniformly from {lo1..hi1} with probability p_small, large jobs from
/// {lo2..hi2} otherwise, each multiplied by `unit` processors.
struct TwoStageUniform {
  int lo1 = 1, hi1 = 3;    ///< small-job multiplier range (inclusive)
  int lo2 = 4, hi2 = 10;   ///< large-job multiplier range (inclusive)
  int unit = 32;           ///< processors per multiplier step (BG/P node card)

  /// Draws a job size in processors.
  int sample(Rng& rng, double p_small) const;

  /// Expected size in processors at the given small-job probability.
  double mean(double p_small) const;
};

}  // namespace es::util
