#include "util/atomic_file.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace es::util {

namespace {

std::atomic<std::uint64_t> fsync_count{0};

/// fsync() the file or directory at `path`.  Returns false when the sync
/// demonstrably failed; a platform without the POSIX calls degrades to the
/// pre-durability behaviour (rename-only atomicity).
bool sync_path(const std::string& path, bool directory) {
#ifndef _WIN32
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (ok) fsync_count.fetch_add(1, std::memory_order_relaxed);
  return ok;
#else
  (void)path;
  (void)directory;
  return true;
#endif
}

/// Directory containing `path` ("." when the path has no separator).
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::uint64_t atomic_file_fsyncs() {
  return fsync_count.load(std::memory_order_relaxed);
}

bool write_file_atomic(const std::string& path,
                       const std::function<bool(std::ostream&)>& producer) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    if (!producer(out) || !out.good()) {
      out.close();
      std::remove(temp.c_str());
      return false;
    }
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(temp.c_str());
      return false;
    }
  }
  // Data must be on disk before the rename makes it reachable; otherwise a
  // crash after the rename but before writeback commits the *name* of an
  // empty/torn file.
  if (!sync_path(temp, /*directory=*/false)) {
    std::remove(temp.c_str());
    return false;
  }
  // POSIX rename over an existing target is atomic on the same filesystem,
  // and the temp file is a sibling of the target by construction.
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return false;
  }
  // The rename itself is a directory mutation; fsync the directory so the
  // committed name survives a crash.  The content is already durable, so a
  // failure here (e.g. an exotic filesystem) leaves the write merely
  // non-durable, not torn — still report it to the caller.
  return sync_path(parent_dir(path), /*directory=*/true);
}

}  // namespace es::util
