#include "util/atomic_file.hpp"

#include <cstdio>
#include <fstream>

namespace es::util {

bool write_file_atomic(const std::string& path,
                       const std::function<bool(std::ostream&)>& producer) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    if (!producer(out) || !out.good()) {
      out.close();
      std::remove(temp.c_str());
      return false;
    }
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(temp.c_str());
      return false;
    }
  }
  // POSIX rename over an existing target is atomic on the same filesystem,
  // and the temp file is a sibling of the target by construction.
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

}  // namespace es::util
