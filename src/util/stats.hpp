// Streaming and batch statistics used by the metrics collectors and the
// experiment reporters.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace es::util {

/// Numerically-stable streaming mean/variance (Welford's algorithm) with
/// min/max tracking.  O(1) memory; suitable for per-job metrics over long
/// simulations.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction friendly).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch sample set with quantile queries.  Keeps all samples; used by
/// reporters where the sample count is the job count (small).
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  /// Linear-interpolated quantile, q in [0, 1].  Sorts lazily.
  double quantile(double q);
  double median() { return quantile(0.5); }
  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
  bool sorted_ = false;
};

/// Percentage improvement of `candidate` over `baseline` for a
/// smaller-is-better metric (waiting time, slowdown):
///   100 * (baseline - candidate) / baseline.
/// Returns 0 when the baseline is 0.
double improvement_lower_better(double baseline, double candidate);

/// Percentage improvement for a larger-is-better metric (utilization):
///   100 * (candidate - baseline) / baseline.
double improvement_higher_better(double baseline, double candidate);

}  // namespace es::util
