#include "util/rss.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace es::util {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // already bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
#else
  return 0;
#endif
}

}  // namespace es::util
