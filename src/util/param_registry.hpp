#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace es::util {

/// Typed configuration error carrying the offending parameter name.
///
/// Thrown by ParamRegistry::set / load_file / finalize.  Callers that map
/// configuration problems to an exit code (simrun exits 2) catch this one
/// type and print `what()`, which always embeds the field name when one is
/// known.
class ConfigError : public std::runtime_error {
 public:
  ConfigError(std::string field, const std::string& message)
      : std::runtime_error(field.empty() ? message : field + ": " + message),
        field_(std::move(field)) {}

  /// Dotted parameter name ("engine.granularity"), or empty when the error
  /// is not attributable to a single field (e.g. unreadable file).
  const std::string& field() const { return field_; }

 private:
  std::string field_;
};

/// Declarative parameter registry: every engine/algorithm knob is registered
/// once with its name, bound storage, default, range, aliases and doc string.
/// Registration drives the config-file loader, `--dump-config` /
/// `--list-params` generation, finalize-time cross-field validation, and the
/// snapshot run fingerprint — the single configuration spine.
///
/// The registry binds to live storage (pointers into the config structs), so
/// `set()` writes through immediately and `dump()` reflects the current
/// values.  Instances are cheap and short-lived: build one, point it at a
/// config, load/overlay/finalize, throw it away.
class ParamRegistry {
 public:
  enum class Kind { kBool, kInt, kUInt64, kDouble, kString, kEnum };

  /// One registered parameter.  The fluent mutators are meant to be chained
  /// off the `add_*` call that created the param:
  ///
  ///   reg.add_int("engine.granularity", &config.granularity,
  ///               "allocation granularity in processors")
  ///       .range(1, 1 << 20)
  ///       .alias("engine.gran");
  class Param {
   public:
    /// Inclusive numeric range enforced on every assignment and re-checked
    /// at finalize().  Ignored for strings/bools.
    Param& range(double lo, double hi) {
      range_lo_ = lo;
      range_hi_ = hi;
      has_range_ = true;
      return *this;
    }

    /// Alternate key accepted by set()/config files; canonical name is still
    /// used for dump/list/fingerprint output.
    Param& alias(std::string name) {
      aliases_.push_back(std::move(name));
      return *this;
    }

    /// Exclude from fingerprint_into().  For knobs that do not steer
    /// simulation behaviour (tracing, watchdog budgets, snapshot cadence).
    Param& no_fingerprint() {
      fingerprint_ = false;
      return *this;
    }

    const std::string& name() const { return name_; }
    const std::string& doc() const { return doc_; }
    Kind kind() const { return kind_; }
    bool fingerprints() const { return fingerprint_; }
    bool has_range() const { return has_range_; }
    double range_lo() const { return range_lo_; }
    double range_hi() const { return range_hi_; }
    const std::vector<std::string>& aliases() const { return aliases_; }
    /// Value captured at registration time, rendered with the same
    /// representation as current_value().
    const std::string& default_value() const { return default_repr_; }
    /// Current bound value rendered as config-file text (strings quoted).
    std::string current_value() const { return repr_(); }

   private:
    friend class ParamRegistry;

    std::string name_;
    std::string doc_;
    Kind kind_ = Kind::kString;
    bool fingerprint_ = true;
    bool has_range_ = false;
    double range_lo_ = 0;
    double range_hi_ = 0;
    std::vector<std::string> aliases_;
    std::string default_repr_;
    /// Parses `text` and writes through to bound storage; throws ConfigError.
    std::function<void(const std::string&)> assign_;
    /// Renders the bound value; exact round-trip for doubles (%.17g).
    std::function<std::string()> repr_;
    /// Numeric view of the bound value for range re-checks at finalize();
    /// null for non-numeric kinds.
    std::function<double()> numeric_;
    /// Human-readable type/choices column for list_params().
    std::string type_label_;
  };

  Param& add_bool(std::string name, bool* target, std::string doc);
  Param& add_int(std::string name, int* target, std::string doc);
  Param& add_int64(std::string name, std::int64_t* target, std::string doc);
  Param& add_uint64(std::string name, std::uint64_t* target, std::string doc);
  Param& add_size(std::string name, std::size_t* target, std::string doc);
  Param& add_double(std::string name, double* target, std::string doc);
  Param& add_string(std::string name, std::string* target, std::string doc);

  /// Enumerated parameter over named choices.  `values` maps the accepted
  /// (case-insensitive) spellings to integer codes; the first spelling for a
  /// code is the canonical one used when rendering.
  template <typename E>
  Param& add_enum(std::string name, E* target,
                  std::vector<std::pair<std::string, int>> values,
                  std::string doc) {
    return add_enum_raw(
        std::move(name), std::move(values), std::move(doc),
        [target](int code) { *target = static_cast<E>(code); },
        [target]() { return static_cast<int>(*target); });
  }

  /// Cross-field validation rule checked by finalize().  `check` returns an
  /// empty string when the rule holds, or a message; the failure is reported
  /// as ConfigError with `field` as the offending parameter name.
  void add_rule(std::string field, std::function<std::string()> check);

  /// Open-ended key family under `prefix` (e.g. "pool." for
  /// `pool.<name>.weight`).  `set` receives the suffix after the prefix and
  /// the raw value text; `dump` returns (full key, value text) pairs for
  /// dump_config()/fingerprint_into() in a stable order.
  void add_dynamic(
      std::string prefix,
      std::function<void(const std::string&, const std::string&)> set,
      std::function<std::vector<std::pair<std::string, std::string>>()> dump);

  /// True when `key` names a registered param (canonical or alias).
  bool has(std::string_view key) const;

  /// Parses and assigns one value.  Resolves aliases, falls back to dynamic
  /// prefixes, and throws ConfigError (with a nearest-name suggestion) for
  /// unknown keys, malformed values, or out-of-range values.
  void set(const std::string& key, const std::string& value);

  /// Current value of a registered param as config-file text.
  std::string get(const std::string& key) const;

  /// Loads `key = value` lines from a file.  Supports `#` comments,
  /// `[section]` headers (section becomes a key prefix), and quoted string
  /// values — a TOML subset that TOML tools also accept.  Later lines win.
  void load_file(const std::string& path);

  /// Same parser over in-memory text; `origin` names the source in errors.
  void load_text(std::string_view text, const std::string& origin);

  /// Re-checks every range against the current (possibly programmatically
  /// mutated) values, then runs the cross-field rules in registration order.
  /// Throws ConfigError naming the first offending field.
  void finalize() const;

  /// Complete config-file text: every param in registration order with its
  /// doc as a comment, then dynamic entries.  Output is loadable by
  /// load_file and is the golden `--dump-config` surface.
  std::string dump_config() const;

  /// Human-oriented table for `--list-params`: name, type, default, range,
  /// aliases, doc.
  std::string list_params() const;

  /// Appends `name=value` lines for every fingerprint-participating param
  /// plus all dynamic entries.  Stable across runs of the same binary; the
  /// engine hashes this blob into the snapshot run fingerprint.
  void fingerprint_into(std::string& out) const;

  /// Registration-order view for tests.
  const std::deque<Param>& params() const { return params_; }

 private:
  struct Rule {
    std::string field;
    std::function<std::string()> check;
  };
  struct Dynamic {
    std::string prefix;
    std::function<void(const std::string&, const std::string&)> set;
    std::function<std::vector<std::pair<std::string, std::string>>()> dump;
  };

  Param& add_raw(std::string name, std::string doc, Kind kind,
                 std::string type_label);
  Param& add_enum_raw(std::string name,
                      std::vector<std::pair<std::string, int>> values,
                      std::string doc, std::function<void(int)> store,
                      std::function<int()> load);
  const Param* find(std::string_view key) const;
  Param* find(std::string_view key);
  /// Closest registered name by edit distance, or empty when nothing is
  /// near enough to be a plausible typo.
  std::string suggest(std::string_view key) const;

  std::deque<Param> params_;  // deque: fluent references survive later adds
  std::vector<Rule> rules_;
  std::vector<Dynamic> dynamics_;
};

}  // namespace es::util
