// Fixed-size worker pool for embarrassingly-parallel experiment campaigns.
//
// The simulator itself is strictly single-threaded per run; what scales is
// the *campaign* around it — load points × algorithms × replications, each
// an independent (workload, policy, engine) triple.  The pool fans such
// index spaces out with `for_each`, and the experiment layer derives every
// replication's RNG seed up front, so results land in pre-sized slots and
// serial aggregation over those slots is byte-identical to a serial run.
//
// Concurrency contract:
//  * `for_each(count, body)` blocks the caller until body(0..count-1) has
//    run exactly once each; completion establishes happens-before, so the
//    caller may read everything the bodies wrote without further locking.
//  * Exceptions propagate: the exception thrown by the *lowest* index is
//    rethrown in the caller (deterministic regardless of interleaving);
//    remaining indices still run, leaving the pool reusable.
//  * Re-entrant calls from a worker thread execute inline and serially —
//    nested parallelism cannot deadlock the fixed pool.
//
// A process-wide pool, sized by `set_global_parallelism` (the tools' and
// benches' --jobs flag), backs the `parallel_for_each` free function.  The
// default is 1, which bypasses every thread primitive and runs the exact
// serial loop — the seed behaviour.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace es::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to >= 1).
  explicit ThreadPool(int workers);

  /// Joins all workers.  Must not race with an in-flight for_each from
  /// another thread.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Runs body(i) for i in [0, count) across the pool and blocks until all
  /// complete.  See the concurrency contract above.
  void for_each(std::size_t count,
                const std::function<void(std::size_t)>& body);

  /// Enqueues one fire-and-forget task and returns immediately.  The task
  /// must not throw; completion signalling is the task's own business
  /// (e.g. an atomic flag set as its last action).  Safe to interleave
  /// with for_each — workers drain one shared task deque.
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

/// std::thread::hardware_concurrency with a floor of 1.
int hardware_parallelism();

/// Sizes the process-wide pool used by parallel_for_each.  jobs <= 1 tears
/// the pool down (serial mode, the default).  Not thread-safe against
/// concurrent parallel_for_each calls; call it from main/test setup only.
void set_global_parallelism(int jobs);

/// Current global parallelism degree (>= 1).
int global_parallelism();

/// for_each on the global pool; a plain serial loop when the pool is down
/// (jobs <= 1) or when called from one of its own workers.
void parallel_for_each(std::size_t count,
                       const std::function<void(std::size_t)>& body);

/// True when the calling thread belongs to a ThreadPool.  Lets opportunistic
/// work (speculative DP fills) avoid queueing behind itself when the caller
/// is already a pool worker running a campaign replication.
bool on_pool_worker();

/// submit() on the global pool.  Returns false without running `task` when
/// the pool is down (serial mode) or the caller is itself a pool worker —
/// callers treat that as "speculation unavailable", never as an error.
bool pool_try_submit(std::function<void()> task);

}  // namespace es::util
