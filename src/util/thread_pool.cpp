#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <limits>
#include <memory>

#include "util/check.hpp"

namespace es::util {
namespace {

/// True on threads owned by *any* ThreadPool; re-entrant for_each calls on
/// such threads run inline so a fixed pool can never wait on itself.
thread_local bool t_pool_worker = false;

void run_serial(std::size_t count,
                const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < count; ++i) body(i);
}

}  // namespace

ThreadPool::ThreadPool(int workers) {
  const int n = workers < 1 ? 1 : workers;
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::worker_loop() {
  t_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ES_ASSERT(!stop_);
    tasks_.emplace_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::for_each(std::size_t count,
                          const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (t_pool_worker || threads_.size() <= 1 || count == 1) {
    // Inline: nested call from a worker (deadlock-free by construction) or
    // no parallelism to gain.  Exceptions propagate directly.
    run_serial(count, body);
    return;
  }

  // One batch: workers claim indices via fetch_add; the first exception *by
  // index* wins so propagation is deterministic under any interleaving.
  struct Batch {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable done;
    std::size_t drivers_active = 0;
    std::exception_ptr error;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
  };
  auto batch = std::make_shared<Batch>();
  batch->body = &body;
  batch->count = count;

  auto drive = [batch] {
    for (;;) {
      const std::size_t i =
          batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch->count) break;
      try {
        (*batch->body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch->mutex);
        if (i < batch->error_index) {
          batch->error_index = i;
          batch->error = std::current_exception();
        }
      }
    }
    std::lock_guard<std::mutex> lock(batch->mutex);
    if (--batch->drivers_active == 0) batch->done.notify_all();
  };

  const std::size_t drivers =
      count < threads_.size() ? count : threads_.size();
  {
    std::lock_guard<std::mutex> lock(batch->mutex);
    batch->drivers_active = drivers;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ES_ASSERT(!stop_);
    for (std::size_t i = 0; i < drivers; ++i) tasks_.emplace_back(drive);
  }
  if (drivers == 1)
    wake_.notify_one();
  else
    wake_.notify_all();

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done.wait(lock, [&batch] { return batch->drivers_active == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

namespace {

int g_jobs = 1;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

int hardware_parallelism() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void set_global_parallelism(int jobs) {
  const int n = jobs < 1 ? 1 : jobs;
  g_pool.reset();  // join the old pool before resizing
  g_jobs = n;
  if (n > 1) g_pool = std::make_unique<ThreadPool>(n);
}

int global_parallelism() { return g_jobs; }

void parallel_for_each(std::size_t count,
                       const std::function<void(std::size_t)>& body) {
  if (g_pool == nullptr || t_pool_worker) {
    run_serial(count, body);
    return;
  }
  g_pool->for_each(count, body);
}

bool on_pool_worker() { return t_pool_worker; }

bool pool_try_submit(std::function<void()> task) {
  if (g_pool == nullptr || t_pool_worker) return false;
  g_pool->submit(std::move(task));
  return true;
}

}  // namespace es::util
