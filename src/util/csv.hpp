// Minimal CSV emission for experiment results.  Values are RFC-4180 quoted
// when needed so output can be loaded by any plotting tool.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace es::util {

/// Row-oriented CSV writer bound to an output stream.  The header is written
/// on first row if set.  Not thread-safe (one writer per stream).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Sets the header; must be called before the first row.
  void set_header(std::vector<std::string> columns);

  /// Starts building a row; append cells then call end_row().
  CsvWriter& cell(std::string_view text);
  CsvWriter& cell(double value);
  CsvWriter& cell(long long value);
  CsvWriter& cell(int value) { return cell(static_cast<long long>(value)); }
  CsvWriter& cell(std::size_t value) {
    return cell(static_cast<long long>(value));
  }
  void end_row();

  std::size_t rows_written() const { return rows_; }

  /// Quotes a field per RFC 4180 if it contains a comma, quote or newline.
  static std::string escape(std::string_view text);

 private:
  void maybe_write_header();

  std::ostream* out_;
  std::vector<std::string> header_;
  std::vector<std::string> row_;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

}  // namespace es::util
