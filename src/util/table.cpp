#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace es::util {

void AsciiTable::set_columns(std::vector<std::string> names) {
  ES_EXPECTS(rows_.empty() && pending_.empty());
  columns_ = std::move(names);
}

AsciiTable& AsciiTable::cell(std::string_view text) {
  pending_.emplace_back(text);
  return *this;
}

AsciiTable& AsciiTable::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  pending_.emplace_back(buf);
  return *this;
}

AsciiTable& AsciiTable::cell(long long value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

void AsciiTable::end_row() {
  if (!columns_.empty()) ES_EXPECTS(pending_.size() == columns_.size());
  rows_.push_back(std::move(pending_));
  pending_.clear();
}

void AsciiTable::render(std::ostream& out) const {
  std::vector<std::size_t> width(columns_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(columns_);
  for (const auto& row : rows_) widen(row);

  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << "  ";
      const auto pad = width[i] - row[i].size();
      if (i == 0) {  // left-align label column
        out << row[i] << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << row[i];
      }
    }
    out << '\n';
  };
  if (!columns_.empty()) {
    emit(columns_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < width.size(); ++i)
      total += width[i] + (i ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 0) return "-" + format_duration(-seconds);
  if (seconds < 60) {
    std::snprintf(buf, sizeof buf, "%.0fs", seconds);
  } else if (seconds < 3600) {
    std::snprintf(buf, sizeof buf, "%.0fm%02.0fs", std::floor(seconds / 60),
                  std::fmod(seconds, 60));
  } else {
    std::snprintf(buf, sizeof buf, "%.0fh%02.0fm", std::floor(seconds / 3600),
                  std::fmod(seconds, 3600) / 60);
  }
  return buf;
}

}  // namespace es::util
