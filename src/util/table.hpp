// Aligned ASCII table rendering for the benchmark harness.  Every figure /
// table bench prints its series in this format so the paper's rows can be
// compared side by side in a terminal.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace es::util {

/// Collects rows of string cells and renders them with padded columns, a
/// title line and a header separator.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title) : title_(std::move(title)) {}

  void set_columns(std::vector<std::string> names);

  AsciiTable& cell(std::string_view text);
  AsciiTable& cell(double value, int precision = 3);
  AsciiTable& cell(long long value);
  AsciiTable& cell(int value) { return cell(static_cast<long long>(value)); }
  void end_row();

  /// Renders the table.  Columns are right-aligned except the first.
  void render(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

/// Formats seconds as a compact human-readable duration ("2h14m", "37s").
std::string format_duration(double seconds);

}  // namespace es::util
