// Process memory high-water observability.
//
// The million-job scale benches and the streaming-ingestion acceptance
// gates need the peak resident set size to show memory stays bounded; the
// kernel already tracks the high-water mark, so reading it costs one
// syscall and cannot perturb a run.
#pragma once

#include <cstdint>

namespace es::util {

/// Peak resident set size of the calling process in bytes, as accounted by
/// the OS since process start (`getrusage` ru_maxrss).  Process-global and
/// monotonic: a reading attributes memory to everything run so far, so
/// measure the leg of interest first.  Returns 0 on platforms without the
/// counter.
std::uint64_t peak_rss_bytes();

}  // namespace es::util
