// Crash-safe file output: write-to-temp then atomic rename.
//
// The simulation tools write result files that downstream plotting and CI
// steps consume; a crash (or a watchdog abort racing a reader) must never
// leave a half-written file where a complete one is expected.  The content
// goes to a sibling temp file which is renamed over the target only after a
// successful flush and close, so readers observe either the previous
// version or the complete new one — never a torn write.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace es::util {

/// Writes `path` atomically.  `producer` receives the output stream and
/// returns false to abort (e.g. a serialization error); on abort or any I/O
/// failure the temp file is removed, any previous version of `path` is left
/// intact, and the function returns false.
bool write_file_atomic(const std::string& path,
                       const std::function<bool(std::ostream&)>& producer);

}  // namespace es::util
