// Crash-safe, durable file output: write-to-temp, fsync, atomic rename,
// fsync the directory.
//
// The simulation tools write result files that downstream plotting and CI
// steps consume; a crash (or a watchdog abort racing a reader) must never
// leave a half-written file where a complete one is expected.  The content
// goes to a sibling temp file which is renamed over the target only after a
// successful flush and close, so readers observe either the previous
// version or the complete new one — never a torn write.
//
// Rename alone is not durability: POSIX rename() commits the *name* change
// atomically, but the renamed file's data may still sit in the page cache.
// A power loss between the rename and writeback can surface the new name
// with empty or torn contents — exactly the failure the snapshot ring must
// never exhibit.  So the temp file is fsync()ed before the rename (data
// reaches the disk first) and the containing directory is fsync()ed after
// (the rename itself reaches the disk), the classic write-ahead ordering.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace es::util {

/// Writes `path` atomically and durably.  `producer` receives the output
/// stream and returns false to abort (e.g. a serialization error); on abort
/// or any I/O failure the temp file is removed, any previous version of
/// `path` is left intact, and the function returns false.
bool write_file_atomic(const std::string& path,
                       const std::function<bool(std::ostream&)>& producer);

/// Process-lifetime count of fsync() calls issued by write_file_atomic
/// (two per successful write: temp file + directory).  Lets tests assert
/// the durability path is actually exercised rather than silently skipped.
std::uint64_t atomic_file_fsyncs();

}  // namespace es::util
