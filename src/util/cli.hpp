// Tiny declarative command-line flag parser for the tools, examples and
// experiment binaries.  Supports `--name value`, `--name=value` and boolean
// `--name` flags, plus automatic --help text.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace es::util {

/// Declarative flag set.  Register flags bound to variables, then parse().
class CliParser {
 public:
  explicit CliParser(std::string program_description)
      : description_(std::move(program_description)) {}

  void add_flag(std::string name, std::string help, bool* target);
  void add_option(std::string name, std::string help, int* target);
  void add_option(std::string name, std::string help, double* target);
  void add_option(std::string name, std::string help, std::string* target);
  void add_option(std::string name, std::string help,
                  unsigned long long* target);

  /// Parses argv.  Returns false (after printing a message) on error or when
  /// --help was requested; positional arguments are collected in positional().
  bool parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// True when the named option appeared on the command line in the last
  /// parse().  Lets callers overlay explicit CLI flags over config-file
  /// values without clobbering file values with untouched defaults.
  bool was_set(std::string_view name) const;

  /// Renders the --help text.
  std::string help(std::string_view program_name) const;

 private:
  struct Option {
    std::string name;
    std::string help;
    bool is_boolean = false;
    bool seen = false;
    std::function<bool(std::string_view)> assign;
  };

  const Option* find(std::string_view name) const;
  Option* find(std::string_view name);

  std::string description_;
  std::vector<Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace es::util
