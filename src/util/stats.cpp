#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace es::util {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs_) sum += x;
  return sum / static_cast<double>(xs_.size());
}

double Samples::quantile(double q) {
  ES_EXPECTS(q >= 0.0 && q <= 1.0);
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

double improvement_lower_better(double baseline, double candidate) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - candidate) / baseline;
}

double improvement_higher_better(double baseline, double candidate) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (candidate - baseline) / baseline;
}

}  // namespace es::util
