// Leveled diagnostic logging.  Off by default so benchmark output stays
// clean; the simulation CLI enables it with --verbose.
#pragma once

#include <cstdarg>
#include <string>

namespace es::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted (default kWarn).
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style log emission; a newline is appended.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Parses "debug"/"info"/"warn"/"error"/"off"; returns kWarn for unknown.
LogLevel parse_log_level(const std::string& name);

}  // namespace es::util

#define ES_LOG_DEBUG(...) ::es::util::logf(::es::util::LogLevel::kDebug, __VA_ARGS__)
#define ES_LOG_INFO(...) ::es::util::logf(::es::util::LogLevel::kInfo, __VA_ARGS__)
#define ES_LOG_WARN(...) ::es::util::logf(::es::util::LogLevel::kWarn, __VA_ARGS__)
#define ES_LOG_ERROR(...) ::es::util::logf(::es::util::LogLevel::kError, __VA_ARGS__)
