#include "util/param_registry.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

namespace es::util {
namespace {

std::string lower(std::string_view text) {
  std::string out(text);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

/// Strips one layer of matching quotes; config strings may be quoted so that
/// values with spaces or '#' survive the comment stripper.
std::string unquote(std::string_view text) {
  if (text.size() >= 2 &&
      ((text.front() == '"' && text.back() == '"') ||
       (text.front() == '\'' && text.back() == '\'')))
    return std::string(text.substr(1, text.size() - 2));
  return std::string(text);
}

std::string quote(const std::string& text) { return "\"" + text + "\""; }

/// %.17g round-trips every double exactly, so dump → load → dump is stable
/// and fingerprint_into() hashes the precise value.
std::string repr_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::int64_t parse_int(const std::string& field, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE)
    throw ConfigError(field, "expected an integer, got '" + text + "'");
  return value;
}

std::uint64_t parse_uint(const std::string& field, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  if (!text.empty() && text.front() == '-')
    throw ConfigError(field, "expected a non-negative integer, got '" + text +
                                 "'");
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE)
    throw ConfigError(field, "expected an unsigned integer, got '" + text +
                                 "'");
  return value;
}

double parse_double(const std::string& field, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE)
    throw ConfigError(field, "expected a number, got '" + text + "'");
  return value;
}

bool parse_bool(const std::string& field, const std::string& text) {
  const std::string low = lower(text);
  if (low == "true" || low == "1" || low == "yes" || low == "on") return true;
  if (low == "false" || low == "0" || low == "no" || low == "off")
    return false;
  throw ConfigError(field, "expected true/false, got '" + text + "'");
}

void check_range(const std::string& field, bool has_range, double lo,
                 double hi, double value) {
  if (!has_range) return;
  if (value < lo || value > hi) {
    std::ostringstream out;
    out << "value " << repr_double(value) << " out of range [" << repr_double(lo)
        << ", " << repr_double(hi) << "]";
    throw ConfigError(field, out.str());
  }
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

ParamRegistry::Param& ParamRegistry::add_raw(std::string name, std::string doc,
                                             Kind kind,
                                             std::string type_label) {
  params_.emplace_back();
  Param& param = params_.back();
  param.name_ = std::move(name);
  param.doc_ = std::move(doc);
  param.kind_ = kind;
  param.type_label_ = std::move(type_label);
  return param;
}

ParamRegistry::Param& ParamRegistry::add_bool(std::string name, bool* target,
                                              std::string doc) {
  Param& param = add_raw(std::move(name), std::move(doc), Kind::kBool, "bool");
  const std::string field = param.name_;
  param.assign_ = [field, target](const std::string& text) {
    *target = parse_bool(field, text);
  };
  param.repr_ = [target]() { return *target ? "true" : "false"; };
  param.default_repr_ = param.repr_();
  return param;
}

ParamRegistry::Param& ParamRegistry::add_int(std::string name, int* target,
                                             std::string doc) {
  Param& param = add_raw(std::move(name), std::move(doc), Kind::kInt, "int");
  const std::string field = param.name_;
  Param* self = &param;
  param.assign_ = [field, target, self](const std::string& text) {
    const std::int64_t value = parse_int(field, text);
    if (value < std::numeric_limits<int>::min() ||
        value > std::numeric_limits<int>::max())
      throw ConfigError(field, "integer '" + text + "' overflows int");
    check_range(field, self->has_range_, self->range_lo_, self->range_hi_,
                static_cast<double>(value));
    *target = static_cast<int>(value);
  };
  param.repr_ = [target]() { return std::to_string(*target); };
  param.numeric_ = [target]() { return static_cast<double>(*target); };
  param.default_repr_ = param.repr_();
  return param;
}

ParamRegistry::Param& ParamRegistry::add_int64(std::string name,
                                               std::int64_t* target,
                                               std::string doc) {
  Param& param = add_raw(std::move(name), std::move(doc), Kind::kInt, "int64");
  const std::string field = param.name_;
  Param* self = &param;
  param.assign_ = [field, target, self](const std::string& text) {
    const std::int64_t value = parse_int(field, text);
    check_range(field, self->has_range_, self->range_lo_, self->range_hi_,
                static_cast<double>(value));
    *target = value;
  };
  param.repr_ = [target]() { return std::to_string(*target); };
  param.numeric_ = [target]() { return static_cast<double>(*target); };
  param.default_repr_ = param.repr_();
  return param;
}

ParamRegistry::Param& ParamRegistry::add_uint64(std::string name,
                                                std::uint64_t* target,
                                                std::string doc) {
  Param& param =
      add_raw(std::move(name), std::move(doc), Kind::kUInt64, "uint64");
  const std::string field = param.name_;
  Param* self = &param;
  param.assign_ = [field, target, self](const std::string& text) {
    const std::uint64_t value = parse_uint(field, text);
    check_range(field, self->has_range_, self->range_lo_, self->range_hi_,
                static_cast<double>(value));
    *target = value;
  };
  param.repr_ = [target]() { return std::to_string(*target); };
  param.numeric_ = [target]() { return static_cast<double>(*target); };
  param.default_repr_ = param.repr_();
  return param;
}

ParamRegistry::Param& ParamRegistry::add_size(std::string name,
                                              std::size_t* target,
                                              std::string doc) {
  Param& param =
      add_raw(std::move(name), std::move(doc), Kind::kUInt64, "size");
  const std::string field = param.name_;
  Param* self = &param;
  param.assign_ = [field, target, self](const std::string& text) {
    const std::uint64_t value = parse_uint(field, text);
    check_range(field, self->has_range_, self->range_lo_, self->range_hi_,
                static_cast<double>(value));
    *target = static_cast<std::size_t>(value);
  };
  param.repr_ = [target]() { return std::to_string(*target); };
  param.numeric_ = [target]() { return static_cast<double>(*target); };
  param.default_repr_ = param.repr_();
  return param;
}

ParamRegistry::Param& ParamRegistry::add_double(std::string name,
                                                double* target,
                                                std::string doc) {
  Param& param =
      add_raw(std::move(name), std::move(doc), Kind::kDouble, "double");
  const std::string field = param.name_;
  Param* self = &param;
  param.assign_ = [field, target, self](const std::string& text) {
    const double value = parse_double(field, text);
    check_range(field, self->has_range_, self->range_lo_, self->range_hi_,
                value);
    *target = value;
  };
  param.repr_ = [target]() { return repr_double(*target); };
  param.numeric_ = [target]() { return *target; };
  param.default_repr_ = param.repr_();
  return param;
}

ParamRegistry::Param& ParamRegistry::add_string(std::string name,
                                                std::string* target,
                                                std::string doc) {
  Param& param =
      add_raw(std::move(name), std::move(doc), Kind::kString, "string");
  // Accept the renderer's quoted form too, so set(name, current_value())
  // is the identity for strings just like for every other kind.
  param.assign_ = [target](const std::string& text) {
    *target = unquote(text);
  };
  param.repr_ = [target]() { return quote(*target); };
  param.default_repr_ = param.repr_();
  return param;
}

ParamRegistry::Param& ParamRegistry::add_enum_raw(
    std::string name, std::vector<std::pair<std::string, int>> values,
    std::string doc, std::function<void(int)> store,
    std::function<int()> load) {
  std::string label = "enum{";
  for (std::size_t i = 0; i < values.size(); ++i)
    label += (i ? "|" : "") + values[i].first;
  label += "}";
  Param& param =
      add_raw(std::move(name), std::move(doc), Kind::kEnum, std::move(label));
  const std::string field = param.name_;
  auto shared =
      std::make_shared<std::vector<std::pair<std::string, int>>>(
          std::move(values));
  param.assign_ = [field, shared, store](const std::string& text) {
    const std::string low = lower(text);
    for (const auto& [spelling, code] : *shared) {
      if (lower(spelling) == low) {
        store(code);
        return;
      }
    }
    std::string choices;
    for (std::size_t i = 0; i < shared->size(); ++i)
      choices += (i ? "/" : "") + (*shared)[i].first;
    throw ConfigError(field,
                      "expected one of " + choices + ", got '" + text + "'");
  };
  param.repr_ = [shared, load]() -> std::string {
    const int code = load();
    for (const auto& [spelling, c] : *shared)
      if (c == code) return spelling;
    return std::to_string(code);
  };
  param.default_repr_ = param.repr_();
  return param;
}

void ParamRegistry::add_rule(std::string field,
                             std::function<std::string()> check) {
  rules_.push_back({std::move(field), std::move(check)});
}

void ParamRegistry::add_dynamic(
    std::string prefix,
    std::function<void(const std::string&, const std::string&)> set,
    std::function<std::vector<std::pair<std::string, std::string>>()> dump) {
  dynamics_.push_back({std::move(prefix), std::move(set), std::move(dump)});
}

const ParamRegistry::Param* ParamRegistry::find(std::string_view key) const {
  for (const Param& param : params_) {
    if (param.name_ == key) return &param;
    for (const std::string& alias : param.aliases_)
      if (alias == key) return &param;
  }
  return nullptr;
}

ParamRegistry::Param* ParamRegistry::find(std::string_view key) {
  return const_cast<Param*>(
      static_cast<const ParamRegistry*>(this)->find(key));
}

bool ParamRegistry::has(std::string_view key) const {
  return find(key) != nullptr;
}

std::string ParamRegistry::suggest(std::string_view key) const {
  std::string best;
  std::size_t best_distance = 4;  // anything farther is not a typo
  for (const Param& param : params_) {
    const std::size_t d = edit_distance(key, param.name_);
    if (d < best_distance) {
      best_distance = d;
      best = param.name_;
    }
    for (const std::string& alias : param.aliases_) {
      const std::size_t ad = edit_distance(key, alias);
      if (ad < best_distance) {
        best_distance = ad;
        best = alias;
      }
    }
  }
  return best;
}

void ParamRegistry::set(const std::string& key, const std::string& value) {
  if (Param* param = find(key)) {
    param->assign_(value);
    return;
  }
  for (const Dynamic& dynamic : dynamics_) {
    if (key.size() > dynamic.prefix.size() &&
        key.compare(0, dynamic.prefix.size(), dynamic.prefix) == 0) {
      dynamic.set(key.substr(dynamic.prefix.size()), value);
      return;
    }
  }
  std::string message = "unknown parameter";
  const std::string near = suggest(key);
  if (!near.empty()) message += " (did you mean '" + near + "'?)";
  throw ConfigError(key, message);
}

std::string ParamRegistry::get(const std::string& key) const {
  const Param* param = find(key);
  if (param == nullptr) throw ConfigError(key, "unknown parameter");
  return param->repr_();
}

void ParamRegistry::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw ConfigError("", "cannot open config file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  load_text(text.str(), path);
}

void ParamRegistry::load_text(std::string_view text,
                              const std::string& origin) {
  std::string prefix;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;

    // Strip comments, respecting quoted values.
    bool in_quote = false;
    char quote_char = 0;
    std::size_t cut = line.size();
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_quote) {
        if (c == quote_char) in_quote = false;
      } else if (c == '"' || c == '\'') {
        in_quote = true;
        quote_char = c;
      } else if (c == '#' || c == ';') {
        cut = i;
        break;
      }
    }
    line = trim(line.substr(0, cut));
    if (line.empty()) continue;

    const std::string where = origin + ":" + std::to_string(line_number);
    if (line.front() == '[') {
      if (line.back() != ']')
        throw ConfigError("", where + ": malformed section header '" +
                                  std::string(line) + "'");
      prefix = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      throw ConfigError("", where + ": expected 'key = value', got '" +
                                std::string(line) + "'");
    std::string key = std::string(trim(line.substr(0, eq)));
    if (key.empty())
      throw ConfigError("", where + ": empty key");
    if (!prefix.empty()) key = prefix + "." + key;
    const std::string value = unquote(trim(line.substr(eq + 1)));
    try {
      set(key, value);
    } catch (const ConfigError& error) {
      // what() already leads with the field name; an empty field here
      // avoids stuttering it twice in the re-prefixed message.
      throw ConfigError("", where + ": " + error.what());
    }
  }
}

void ParamRegistry::finalize() const {
  for (const Param& param : params_) {
    if (param.has_range_ && param.numeric_) {
      check_range(param.name_, true, param.range_lo_, param.range_hi_,
                  param.numeric_());
    }
  }
  for (const Rule& rule : rules_) {
    const std::string message = rule.check();
    if (!message.empty()) throw ConfigError(rule.field, message);
  }
}

std::string ParamRegistry::dump_config() const {
  std::ostringstream out;
  out << "# elastisched configuration (generated by --dump-config)\n";
  out << "# every line below is loadable via --config FILE\n";
  std::string section;
  for (const Param& param : params_) {
    const std::size_t dot = param.name_.rfind('.');
    const std::string param_section =
        dot == std::string::npos ? std::string() : param.name_.substr(0, dot);
    if (param_section != section) {
      section = param_section;
      out << "\n";
    }
    out << "# " << param.doc_ << "\n";
    out << param.name_ << " = " << param.repr_() << "\n";
  }
  bool first_dynamic = true;
  for (const Dynamic& dynamic : dynamics_) {
    for (const auto& [key, value] : dynamic.dump()) {
      if (first_dynamic) {
        out << "\n";
        first_dynamic = false;
      }
      out << key << " = " << value << "\n";
    }
  }
  return out.str();
}

std::string ParamRegistry::list_params() const {
  std::ostringstream out;
  for (const Param& param : params_) {
    out << param.name_ << "  (" << param.type_label_
        << ", default " << param.default_repr_;
    if (param.has_range_)
      out << ", range [" << repr_double(param.range_lo_) << ", "
          << repr_double(param.range_hi_) << "]";
    for (const std::string& alias : param.aliases_)
      out << ", alias " << alias;
    out << ")\n    " << param.doc_ << "\n";
  }
  for (const Dynamic& dynamic : dynamics_) {
    out << dynamic.prefix << "*  (dynamic)\n";
  }
  return out.str();
}

void ParamRegistry::fingerprint_into(std::string& out) const {
  for (const Param& param : params_) {
    if (!param.fingerprint_) continue;
    out += param.name_;
    out += '=';
    out += param.repr_();
    out += '\n';
  }
  for (const Dynamic& dynamic : dynamics_) {
    for (const auto& [key, value] : dynamic.dump()) {
      out += key;
      out += '=';
      out += value;
      out += '\n';
    }
  }
}

}  // namespace es::util
