// Lightweight contract checking (C++ Core Guidelines I.6 / E.12 style).
//
// ES_EXPECTS/ES_ENSURES document pre/postconditions and abort with a useful
// message on violation.  They stay enabled in release builds: the simulator's
// correctness invariants (capacity never exceeded, time monotonic, ...) are
// cheap to check relative to the DP work and catching a violated invariant in
// a benchmark run is worth far more than the branch.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace es::util {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "elastisched: %s violated: `%s` at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace es::util

#define ES_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                         \
          : ::es::util::contract_violation("precondition", #cond,        \
                                           __FILE__, __LINE__))

#define ES_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                         \
          : ::es::util::contract_violation("postcondition", #cond,       \
                                           __FILE__, __LINE__))

#define ES_ASSERT(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                         \
          : ::es::util::contract_violation("invariant", #cond,           \
                                           __FILE__, __LINE__))
