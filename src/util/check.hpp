// Lightweight contract checking (C++ Core Guidelines I.6 / E.12 style).
//
// ES_EXPECTS/ES_ENSURES document pre/postconditions and abort with a useful
// message on violation.  They stay enabled in release builds: the simulator's
// correctness invariants (capacity never exceeded, time monotonic, ...) are
// cheap to check relative to the DP work and catching a violated invariant in
// a benchmark run is worth far more than the branch.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace es::util {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "elastisched: %s violated: `%s` at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

/// As contract_violation, with a printf-style context message appended —
/// used where the failing expression alone is not enough to debug (e.g. the
/// engine's invariant sweep reports sim time, cycle count and job id).
[[noreturn]] inline void contract_violation_msg(const char* kind,
                                                const char* expr,
                                                const char* file, int line,
                                                const char* fmt, ...)
    __attribute__((format(printf, 5, 6)));

[[noreturn]] inline void contract_violation_msg(const char* kind,
                                                const char* expr,
                                                const char* file, int line,
                                                const char* fmt, ...) {
  std::fprintf(stderr, "elastisched: %s violated: `%s` at %s:%d: ", kind,
               expr, file, line);
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace es::util

#define ES_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                         \
          : ::es::util::contract_violation("precondition", #cond,        \
                                           __FILE__, __LINE__))

#define ES_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                         \
          : ::es::util::contract_violation("postcondition", #cond,       \
                                           __FILE__, __LINE__))

#define ES_ASSERT(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                         \
          : ::es::util::contract_violation("invariant", #cond,           \
                                           __FILE__, __LINE__))

// Variants carrying a printf-style context message, e.g.
//   ES_ASSERT_MSG(job->alloc > 0, "t=%.1f cycle=%llu job=%lld", ...);

#define ES_EXPECTS_MSG(cond, ...)                                        \
  ((cond) ? static_cast<void>(0)                                         \
          : ::es::util::contract_violation_msg("precondition", #cond,    \
                                               __FILE__, __LINE__,       \
                                               __VA_ARGS__))

#define ES_ENSURES_MSG(cond, ...)                                        \
  ((cond) ? static_cast<void>(0)                                         \
          : ::es::util::contract_violation_msg("postcondition", #cond,   \
                                               __FILE__, __LINE__,       \
                                               __VA_ARGS__))

#define ES_ASSERT_MSG(cond, ...)                                         \
  ((cond) ? static_cast<void>(0)                                         \
          : ::es::util::contract_violation_msg("invariant", #cond,       \
                                               __FILE__, __LINE__,       \
                                               __VA_ARGS__))
