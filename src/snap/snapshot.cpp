#include "snap/snapshot.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"

namespace es::snap {

namespace {

constexpr char kEndTag[5] = "SEND";

/// Reflected IEEE 802.3 CRC32 table, generated once at startup.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t tag_value(const char (&tag)[5]) {
  std::uint32_t v = 0;
  std::memcpy(&v, tag, 4);
  return v;
}

std::string tag_name(std::uint32_t tag) {
  char buf[5] = {};
  std::memcpy(buf, &tag, 4);
  for (char& c : buf) {
    if (c != 0 && (c < 0x20 || c > 0x7E)) c = '?';
  }
  return std::string(buf);
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

[[noreturn]] void corrupt(const std::string& what) {
  throw SnapshotError(SnapshotErrorKind::kCorrupt, "corrupt snapshot: " + what);
}

}  // namespace

const char* to_string(SnapshotErrorKind kind) {
  switch (kind) {
    case SnapshotErrorKind::kIo: return "io";
    case SnapshotErrorKind::kCorrupt: return "corrupt";
    case SnapshotErrorKind::kVersion: return "version-mismatch";
    case SnapshotErrorKind::kMismatch: return "run-mismatch";
  }
  return "unknown";
}

std::uint32_t crc32(const void* data, std::size_t size) {
  const auto& table = crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// SnapshotWriter

void SnapshotWriter::begin_section(const char (&tag)[5]) {
  if (finished_ || in_section_) {
    throw SnapshotError(SnapshotErrorKind::kIo,
                        "snapshot writer misuse: begin_section");
  }
  if (out_.empty()) {
    put_u32(out_, kMagic);
    put_u32(out_, kFormatVersion);
  }
  put_u32(out_, tag_value(tag));
  put_u64(out_, 0);  // payload length, patched by end_section
  section_start_ = out_.size();
  in_section_ = true;
}

void SnapshotWriter::end_section() {
  if (!in_section_) {
    throw SnapshotError(SnapshotErrorKind::kIo,
                        "snapshot writer misuse: end_section");
  }
  const std::size_t payload_size = out_.size() - section_start_;
  // Patch the length field written by begin_section.
  std::string len;
  put_u64(len, payload_size);
  out_.replace(section_start_ - 8, 8, len);
  put_u32(out_, crc32(out_.data() + section_start_, payload_size));
  in_section_ = false;
  ++sections_;
}

void SnapshotWriter::raw(const void* data, std::size_t size) {
  if (!in_section_) {
    throw SnapshotError(SnapshotErrorKind::kIo,
                        "snapshot writer misuse: write outside section");
  }
  out_.append(static_cast<const char*>(data), size);
}

void SnapshotWriter::u8(std::uint8_t value) { raw(&value, 1); }

void SnapshotWriter::u32(std::uint32_t value) {
  std::string tmp;
  put_u32(tmp, value);
  raw(tmp.data(), tmp.size());
}

void SnapshotWriter::u64(std::uint64_t value) {
  std::string tmp;
  put_u64(tmp, value);
  raw(tmp.data(), tmp.size());
}

void SnapshotWriter::f64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  u64(bits);
}

void SnapshotWriter::str(const std::string& value) {
  u64(value.size());
  raw(value.data(), value.size());
}

std::string SnapshotWriter::finish() {
  if (in_section_ || finished_) {
    throw SnapshotError(SnapshotErrorKind::kIo,
                        "snapshot writer misuse: finish");
  }
  if (out_.empty()) {  // snapshot with zero sections is still well-formed
    put_u32(out_, kMagic);
    put_u32(out_, kFormatVersion);
  }
  const std::uint32_t body_sections = sections_;
  begin_section(kEndTag);
  u64(body_sections);
  end_section();
  finished_ = true;
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// SnapshotReader

SnapshotReader::SnapshotReader(std::string bytes) : bytes_(std::move(bytes)) {
  if (bytes_.size() < 8) corrupt("shorter than header");
  if (get_u32(bytes_.data()) != kMagic) corrupt("bad magic");
  const std::uint32_t version = get_u32(bytes_.data() + 4);
  if (version != kFormatVersion) {
    throw SnapshotError(
        SnapshotErrorKind::kVersion,
        "snapshot format version " + std::to_string(version) +
            " unsupported (expected " + std::to_string(kFormatVersion) + ")");
  }

  std::size_t pos = 8;
  bool saw_end = false;
  std::uint64_t declared_sections = 0;
  while (pos < bytes_.size()) {
    if (bytes_.size() - pos < 12) corrupt("torn section frame");
    const std::uint32_t tag = get_u32(bytes_.data() + pos);
    const std::uint64_t len = get_u64(bytes_.data() + pos + 4);
    pos += 12;
    if (len > bytes_.size() - pos || bytes_.size() - pos - len < 4) {
      corrupt("truncated section '" + tag_name(tag) + "'");
    }
    const std::size_t begin = pos;
    pos += len;
    const std::uint32_t stored_crc = get_u32(bytes_.data() + pos);
    pos += 4;
    if (crc32(bytes_.data() + begin, len) != stored_crc) {
      corrupt("CRC mismatch in section '" + tag_name(tag) + "'");
    }
    if (tag == tag_value(kEndTag)) {
      if (len != 8) corrupt("malformed end marker");
      declared_sections = get_u64(bytes_.data() + begin);
      saw_end = true;
      break;
    }
    sections_.push_back(Section{tag, begin, static_cast<std::size_t>(len)});
  }
  if (!saw_end) corrupt("missing end marker (truncated file)");
  if (pos != bytes_.size()) corrupt("trailing bytes after end marker");
  if (declared_sections != sections_.size()) {
    corrupt("section count mismatch");
  }
}

const SnapshotReader::Section* SnapshotReader::find(std::uint32_t tag) const {
  for (const Section& s : sections_) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

bool SnapshotReader::has_section(const char (&tag)[5]) const {
  return find(tag_value(tag)) != nullptr;
}

void SnapshotReader::open_section(const char (&tag)[5]) {
  const Section* s = find(tag_value(tag));
  if (s == nullptr) corrupt("missing section '" + std::string(tag, 4) + "'");
  current_ = s;
  cursor_ = s->begin;
}

std::size_t SnapshotReader::remaining() const {
  if (current_ == nullptr) return 0;
  return current_->begin + current_->size - cursor_;
}

void SnapshotReader::need(std::size_t bytes) const {
  if (current_ == nullptr) corrupt("read with no open section");
  if (remaining() < bytes) {
    corrupt("section '" + tag_name(current_->tag) + "' underruns");
  }
}

std::uint8_t SnapshotReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(
      static_cast<unsigned char>(bytes_[cursor_++]));
}

std::uint32_t SnapshotReader::u32() {
  need(4);
  const std::uint32_t v = get_u32(bytes_.data() + cursor_);
  cursor_ += 4;
  return v;
}

std::uint64_t SnapshotReader::u64() {
  need(8);
  const std::uint64_t v = get_u64(bytes_.data() + cursor_);
  cursor_ += 8;
  return v;
}

double SnapshotReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::str() {
  const std::uint64_t len = u64();
  need(len);
  std::string v = bytes_.substr(cursor_, len);
  cursor_ += len;
  return v;
}

// ---------------------------------------------------------------------------
// File I/O

void write_snapshot_file(const std::string& path, const std::string& bytes) {
  const bool ok = util::write_file_atomic(path, [&](std::ostream& out) {
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return out.good();
  });
  if (!ok) {
    throw SnapshotError(SnapshotErrorKind::kIo,
                        "failed to write snapshot: " + path);
  }
}

SnapshotReader read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError(SnapshotErrorKind::kIo,
                        "cannot open snapshot: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw SnapshotError(SnapshotErrorKind::kIo,
                        "read error on snapshot: " + path);
  }
  return SnapshotReader(buf.str());
}

}  // namespace es::snap
