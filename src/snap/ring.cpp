#include "snap/ring.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "snap/snapshot.hpp"

namespace es::snap {

namespace {

constexpr char kPrefix[] = "snap-";
constexpr char kSuffix[] = ".essnap";

std::string generation_name(std::uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", kPrefix,
                static_cast<unsigned long long>(generation), kSuffix);
  return buf;
}

/// Parses "snap-NNNNNNNN.essnap" into a generation number, or nullopt.
std::optional<std::uint64_t> parse_generation(const std::string& name) {
  const std::size_t prefix_len = sizeof(kPrefix) - 1;
  const std::size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.compare(0, prefix_len, kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t generation = 0;
  for (std::size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    generation = generation * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return generation;
}

}  // namespace

std::vector<SnapshotEntry> list_snapshots(const std::string& dir) {
  std::vector<SnapshotEntry> entries;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    throw SnapshotError(SnapshotErrorKind::kIo,
                        "cannot list snapshot directory: " + dir);
  }
  for (const auto& de : it) {
    if (!de.is_regular_file(ec) || ec) continue;
    const std::string name = de.path().filename().string();
    if (const auto generation = parse_generation(name)) {
      entries.push_back(SnapshotEntry{*generation, de.path().string()});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.generation < b.generation;
            });
  return entries;
}

std::optional<SnapshotEntry> latest_intact(const std::string& dir) {
  std::vector<SnapshotEntry> entries = list_snapshots(dir);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    try {
      (void)read_snapshot_file(it->path);  // full frame + CRC validation
      return *it;
    } catch (const SnapshotError&) {
      continue;  // torn/corrupt/unreadable generation: fall back
    }
  }
  return std::nullopt;
}

SnapshotRing::SnapshotRing(std::string dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(std::max<std::size_t>(keep, 1)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw SnapshotError(SnapshotErrorKind::kIo,
                        "cannot create snapshot directory: " + dir_);
  }
  for (const SnapshotEntry& e : list_snapshots(dir_)) {
    next_generation_ = std::max(next_generation_, e.generation + 1);
  }
}

std::string SnapshotRing::commit(const std::string& bytes) {
  const std::string path =
      (std::filesystem::path(dir_) / generation_name(next_generation_))
          .string();
  write_snapshot_file(path, bytes);
  ++next_generation_;

  std::vector<SnapshotEntry> entries = list_snapshots(dir_);
  if (entries.size() > keep_) {
    for (std::size_t i = 0; i + keep_ < entries.size(); ++i) {
      std::error_code ec;
      std::filesystem::remove(entries[i].path, ec);
    }
  }
  return path;
}

}  // namespace es::snap
