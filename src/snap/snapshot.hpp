// Versioned, checksummed binary snapshot container.
//
// A snapshot is the engine's full mid-run state, serialized so a crashed
// process can restore it and resume divergence-free.  The container layer
// here is engine-agnostic: a file is a fixed header followed by tagged,
// length-prefixed sections, each protected by its own CRC32, closed by a
// mandatory end-marker section so truncation anywhere is detectable:
//
//   header   magic u32 ("ESNP"), format-version u32
//   section  tag u32 (fourcc), payload length u64, payload bytes, CRC32 u32
//   ...
//   end      tag "SEND", payload = u64 section count (itself CRC-protected)
//
// All integers are little-endian fixed width; doubles are serialized as
// their IEEE-754 bit pattern, so a snapshot round-trips bit-exactly.  The
// reader validates the header, every section frame and every CRC up front:
// a torn, truncated or bit-flipped file fails construction with a typed
// SnapshotError before any engine state is touched.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace es::snap {

inline constexpr std::uint32_t kMagic = 0x50'4E'53'45;  // "ESNP" on disk
inline constexpr std::uint32_t kFormatVersion = 1;

/// What went wrong with a snapshot file.  CLI front-ends map kIo to their
/// I/O exit code and everything else to the corrupt-snapshot exit code.
enum class SnapshotErrorKind {
  kIo,        ///< file missing/unreadable/unwritable
  kCorrupt,   ///< bad magic, torn frame, CRC mismatch, malformed payload
  kVersion,   ///< format-version mismatch (no migration path)
  kMismatch,  ///< intact snapshot of a *different* run (workload, policy
              ///< or machine fingerprint disagrees)
};

const char* to_string(SnapshotErrorKind kind);

class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapshotErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}
  SnapshotErrorKind kind() const { return kind_; }

 private:
  SnapshotErrorKind kind_;
};

/// CRC32 (IEEE 802.3, reflected) of a byte range.
std::uint32_t crc32(const void* data, std::size_t size);

/// Serializes sections into the container format.  Usage:
///   writer.begin_section("JOBS"); writer.u64(...); writer.end_section();
///   ...; std::string bytes = writer.finish();
class SnapshotWriter {
 public:
  void begin_section(const char (&tag)[5]);
  void end_section();

  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }
  void f64(double value);
  void boolean(bool value) { u8(value ? 1 : 0); }
  void str(const std::string& value);

  /// Appends the end marker and returns the complete file image.  The
  /// writer is spent afterwards.
  std::string finish();

 private:
  void raw(const void* data, std::size_t size);

  std::string out_;
  std::size_t section_start_ = 0;  ///< offset of the current payload
  std::uint32_t sections_ = 0;
  bool in_section_ = false;
  bool finished_ = false;
};

/// Parses and fully validates a snapshot image, then serves typed reads
/// section by section.  Construction throws SnapshotError (kCorrupt /
/// kVersion) on any structural or checksum defect; reads throw kCorrupt
/// when a section's payload is shorter than the caller expects.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string bytes);

  /// Positions the cursor at the start of the named section.  Throws
  /// kCorrupt if the section is absent.
  void open_section(const char (&tag)[5]);
  /// True when the named section exists.
  bool has_section(const char (&tag)[5]) const;
  /// Bytes left unread in the open section.
  std::size_t remaining() const;

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();

 private:
  struct Section {
    std::uint32_t tag = 0;
    std::size_t begin = 0;  ///< payload offset in bytes_
    std::size_t size = 0;
  };

  const Section* find(std::uint32_t tag) const;
  void need(std::size_t bytes) const;

  std::string bytes_;
  std::vector<Section> sections_;
  const Section* current_ = nullptr;
  std::size_t cursor_ = 0;
};

/// Writes a finished snapshot image to `path` via write_file_atomic (fsync
/// + rename + directory fsync).  Throws SnapshotError(kIo) on failure.
void write_snapshot_file(const std::string& path, const std::string& bytes);

/// Loads and validates `path`.  Throws kIo when unreadable, kCorrupt /
/// kVersion when the content fails validation.
SnapshotReader read_snapshot_file(const std::string& path);

}  // namespace es::snap
