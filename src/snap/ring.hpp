// Snapshot-ring retention: a directory of generation-numbered snapshot
// files, keeping the newest K and recovering from the newest *intact* one.
//
// Each commit writes `snap-NNNNNNNN.essnap` (monotonic generation number,
// zero-padded so lexicographic order is generation order) via the durable
// atomic writer, then prunes generations beyond the retention count.  On
// recovery, latest_intact() walks the ring newest-first and fully validates
// each candidate (header, frames, CRCs); a torn or bit-flipped newest
// generation therefore falls back gracefully to the previous one instead of
// aborting the restore.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace es::snap {

/// One on-disk snapshot generation.
struct SnapshotEntry {
  std::uint64_t generation = 0;
  std::string path;
};

/// Generation-numbered snapshot files in `dir`, oldest first.  Files not
/// matching the `snap-NNNNNNNN.essnap` pattern are ignored.
std::vector<SnapshotEntry> list_snapshots(const std::string& dir);

/// Path of the newest snapshot in `dir` that passes full validation, or
/// nullopt when none does.  Throws SnapshotError(kIo) only when the
/// directory itself is unreadable; unreadable/corrupt individual files are
/// skipped (that is the point of the ring).
std::optional<SnapshotEntry> latest_intact(const std::string& dir);

/// Writes successive generations into a directory and prunes old ones.
class SnapshotRing {
 public:
  /// `keep` is clamped to >= 1.  The directory is created if missing; the
  /// next generation number continues past any snapshots already present.
  SnapshotRing(std::string dir, std::size_t keep);

  /// Durably commits `bytes` as the next generation and prunes the ring to
  /// the retention count.  Returns the committed path.  Throws
  /// SnapshotError(kIo) when the write fails; pruning errors are ignored
  /// (stale files only cost disk, never correctness).
  std::string commit(const std::string& bytes);

  const std::string& dir() const { return dir_; }
  std::uint64_t next_generation() const { return next_generation_; }

 private:
  std::string dir_;
  std::size_t keep_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace es::snap
