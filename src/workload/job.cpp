#include "workload/job.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace es::workload {
namespace {

std::string ecc_names[] = {"ET", "RT", "EP", "RP"};

}  // namespace

std::string to_string(EccType type) {
  return ecc_names[static_cast<int>(type)];
}

bool parse_ecc_type(const std::string& text, EccType& out) {
  for (int i = 0; i < 4; ++i) {
    if (text == ecc_names[i]) {
      out = static_cast<EccType>(i);
      return true;
    }
  }
  return false;
}

void Workload::normalize() {
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.arr != b.arr) return a.arr < b.arr;
    return a.id < b.id;
  });
  // Stable: commands tied on (issue, job) keep their file/generation order.
  // The engine dispatches same-instant commands in workload order and
  // resolves conflicts first-wins, so an unstable sort here would let the
  // winner of a contradictory pair flip between two normalize() calls.
  std::stable_sort(eccs.begin(), eccs.end(), [](const Ecc& a, const Ecc& b) {
    if (a.issue != b.issue) return a.issue < b.issue;
    return a.job_id < b.job_id;
  });
}

void Workload::scale_arrivals(double factor) {
  ES_EXPECTS(factor > 0);
  if (jobs.empty()) return;
  const sim::Time origin = jobs.front().arr;
  for (Job& job : jobs) {
    const sim::Time offset = job.arr - origin;
    job.arr = origin + offset * factor;
    if (job.dedicated() && job.start >= 0) {
      // Keep the relative lead time (start - arr) in scaled coordinates so a
      // dedicated job's reservation window stretches with the trace.
      job.start = origin + (job.start - origin) * factor;
    }
  }
  for (Ecc& ecc : eccs) {
    ecc.issue = origin + (ecc.issue - origin) * factor;
  }
}

sim::Time Workload::duration() const {
  if (jobs.empty()) return 0;
  const sim::Time first = jobs.front().arr;
  sim::Time last = first;
  for (const Job& job : jobs) {
    const sim::Time begin = job.dedicated() && job.start >= 0
                                ? std::max(job.arr, job.start)
                                : job.arr;
    last = std::max(last, begin + job.actual_runtime());
  }
  return last - first;
}

std::size_t Workload::batch_count() const {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(),
                    [](const Job& j) { return !j.dedicated(); }));
}

std::size_t Workload::dedicated_count() const {
  return jobs.size() - batch_count();
}

}  // namespace es::workload
