// Static job description and the workload container.
//
// A Job is the immutable submission record (what a CWF 'S' line carries);
// runtime state (skip counts, start times, residuals) lives in the scheduler
// engine.  Notation follows the paper: `num` = requested processors, `dur` =
// user-estimated execution time, `arr` = arrival/submit time, `start` =
// requested start time for dedicated jobs.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "workload/ecc.hpp"

namespace es::workload {

using JobId = std::int64_t;

/// Batch jobs are placed by the scheduler at a time of its choosing;
/// dedicated (interactive / reserved-capacity) jobs carry a rigid
/// user-requested start time.
enum class JobType { kBatch, kDedicated };

/// Immutable submission record.
struct Job {
  JobId id = 0;
  sim::Time arr = 0;        ///< submit/arrival time (seconds)
  int num = 1;              ///< requested processors
  sim::Time dur = 1;        ///< user-estimated execution time (kill-by basis)
  sim::Time actual = -1;    ///< true runtime; -1 means "equal to dur"
  JobType type = JobType::kBatch;
  sim::Time start = -1;     ///< requested start time; -1 for batch jobs
  /// Multi-tenancy tags (PR 10): the submitting user (1-based rank from the
  /// generator's Zipf draw; 0 = untagged) and the fair-share pool index the
  /// job is charged to.  Policies other than FairShare ignore both.
  std::int32_t user = 0;
  std::int32_t pool = 0;

  bool dedicated() const { return type == JobType::kDedicated; }

  /// True runtime the job would consume if never killed or ECC-adjusted.
  sim::Time actual_runtime() const { return actual < 0 ? dur : actual; }
};

/// A workload: submissions plus elastic control commands, as carried by one
/// CWF file.  Jobs are kept sorted by arrival time, ECCs by issue time.
struct Workload {
  std::vector<Job> jobs;
  std::vector<Ecc> eccs;
  int machine_procs = 0;     ///< machine the workload was generated for
  int granularity = 1;

  /// Sorts jobs by (arr, id) and ECCs by (issue, job id); call after edits.
  void normalize();

  /// Shifts & scales every timestamp (arrivals, dedicated start times, ECC
  /// issue times) by `factor` around the first arrival.  Durations are not
  /// touched.  This is the paper's load-variation method (multiply arrival
  /// times by a constant).
  void scale_arrivals(double factor);

  /// Total span from the first arrival to the last nominal completion.
  sim::Time duration() const;

  std::size_t batch_count() const;
  std::size_t dedicated_count() const;
};

}  // namespace es::workload
