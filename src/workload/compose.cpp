#include "workload/compose.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace es::workload {
namespace {

/// Appends `addition`'s jobs/ECCs into `out` with IDs renumbered starting
/// at `next_id` and timestamps shifted by `shift`.
void append_renumbered(Workload& out, const Workload& addition,
                       JobId next_id, double shift) {
  std::unordered_map<JobId, JobId> remap;
  remap.reserve(addition.jobs.size());
  for (Job job : addition.jobs) {
    const JobId old_id = job.id;
    job.id = next_id++;
    remap.emplace(old_id, job.id);
    job.arr += shift;
    if (job.dedicated() && job.start >= 0) job.start += shift;
    out.jobs.push_back(job);
  }
  for (Ecc ecc : addition.eccs) {
    const auto it = remap.find(ecc.job_id);
    if (it == remap.end()) continue;  // ECC for a dropped/unknown job
    ecc.job_id = it->second;
    ecc.issue += shift;
    out.eccs.push_back(ecc);
  }
}

JobId max_id(const Workload& workload) {
  JobId top = 0;
  for (const Job& job : workload.jobs) top = std::max(top, job.id);
  return top;
}

}  // namespace

Workload concatenate(const Workload& base, const Workload& tail,
                     double gap) {
  ES_EXPECTS(gap >= 0);
  if (base.machine_procs > 0 && tail.machine_procs > 0)
    ES_EXPECTS(base.machine_procs == tail.machine_procs);
  Workload out = base;
  if (tail.jobs.empty()) return out;
  const double base_end =
      base.jobs.empty() ? 0.0 : base.jobs.front().arr + base.duration();
  const double shift = base_end + gap - tail.jobs.front().arr;
  append_renumbered(out, tail, max_id(base) + 1, shift);
  out.normalize();
  return out;
}

Workload merge(const Workload& base, const Workload& other) {
  if (base.machine_procs > 0 && other.machine_procs > 0)
    ES_EXPECTS(base.machine_procs == other.machine_procs);
  Workload out = base;
  append_renumbered(out, other, max_id(base) + 1, 0.0);
  out.normalize();
  return out;
}

Workload slice(const Workload& workload, double from, double to) {
  ES_EXPECTS(from <= to);
  Workload out;
  out.machine_procs = workload.machine_procs;
  out.granularity = workload.granularity;
  for (const Job& job : workload.jobs)
    if (job.arr >= from && job.arr < to) out.jobs.push_back(job);
  // Keep ECCs whose target survived; their issue time may fall outside the
  // window (a pre-window amendment still applies).
  for (const Ecc& ecc : workload.eccs) {
    const bool target_kept =
        std::any_of(out.jobs.begin(), out.jobs.end(),
                    [&](const Job& job) { return job.id == ecc.job_id; });
    if (target_kept) out.eccs.push_back(ecc);
  }
  out.normalize();
  return out;
}

}  // namespace es::workload
