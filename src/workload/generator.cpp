#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "workload/load.hpp"

namespace es::workload {

Workload generate(const GeneratorConfig& config) {
  ES_EXPECTS(config.num_jobs > 0);
  ES_EXPECTS(config.machine_procs > 0);
  ES_EXPECTS(config.p_small >= 0 && config.p_small <= 1);
  ES_EXPECTS(config.p_dedicated >= 0 && config.p_dedicated <= 1);
  ES_EXPECTS(config.p_extend >= 0 && config.p_extend <= 1);
  ES_EXPECTS(config.p_reduce >= 0 && config.p_reduce <= 1);
  ES_EXPECTS(config.p_extend + config.p_reduce <= 1);
  ES_EXPECTS(config.estimate_factor >= 1.0);

  util::Rng master(config.seed);
  // Independent streams per attribute: adding dedicated jobs or ECCs must
  // not reshuffle sizes/runtimes/arrivals of the underlying trace.
  util::Rng size_rng = master.split();
  util::Rng runtime_rng = master.split();
  util::Rng arrival_rng = master.split();
  util::Rng type_rng = master.split();
  util::Rng ecc_rng = master.split();
  util::Rng estimate_rng = master.split();
  // Appended after the original six streams so pre-tenancy traces stay
  // byte-identical: the user stream only consumes entropy when enabled.
  util::Rng user_rng = master.split();

  Workload workload;
  workload.machine_procs = config.machine_procs;
  workload.granularity = config.size.unit;
  workload.jobs.reserve(config.num_jobs);

  ArrivalProcess arrivals(config.arrival, arrival_rng);

  for (std::size_t i = 0; i < config.num_jobs; ++i) {
    Job job;
    job.id = static_cast<JobId>(i + 1);
    job.arr = arrivals.next();
    job.num = std::min(config.size.sample(size_rng, config.p_small),
                       config.machine_procs);
    const double actual = config.runtime.sample(runtime_rng, job.num);
    job.actual = actual;
    if (config.estimate_uniform_max > 1.0) {
      job.dur =
          actual * estimate_rng.uniform(1.0, config.estimate_uniform_max);
    } else {
      job.dur = actual * config.estimate_factor;
    }
    if (type_rng.bernoulli(config.p_dedicated)) {
      job.type = JobType::kDedicated;
      job.start =
          job.arr + type_rng.exponential(config.dedicated_start_mean);
    }
    workload.jobs.push_back(job);
  }

  // ECC injection: with probability P_E a job gets an ET command, otherwise
  // with probability P_R an RT command (mutually exclusive per draw, as the
  // paper treats them as alternative perturbations of a job).  EP/RP
  // commands (resource dimension) draw independently.
  ES_EXPECTS(config.p_extend_procs + config.p_reduce_procs <= 1);
  for (const Job& job : workload.jobs) {
    for (int k = 0; k < config.max_eccs_per_job; ++k) {
      const double draw = ecc_rng.uniform01();
      EccType type;
      if (draw < config.p_extend) {
        type = EccType::kExtendTime;
      } else if (draw < config.p_extend + config.p_reduce) {
        type = EccType::kReduceTime;
      } else {
        continue;
      }
      Ecc ecc;
      ecc.job_id = job.id;
      ecc.type = type;
      double amount =
          ecc_rng.exponential(config.ecc_amount_frac_mean * job.dur);
      if (type == EccType::kReduceTime) {
        // Keep at least 10% of the runtime after reduction.
        amount = std::min(amount, 0.9 * job.dur);
      }
      ecc.amount = std::max(1.0, amount);
      ecc.issue =
          job.arr + ecc_rng.uniform(0.0, config.issue_window_frac * job.dur);
      workload.eccs.push_back(ecc);
    }
    const double proc_draw = ecc_rng.uniform01();
    if (proc_draw < config.p_extend_procs + config.p_reduce_procs) {
      Ecc ecc;
      ecc.job_id = job.id;
      ecc.type = proc_draw < config.p_extend_procs
                     ? EccType::kExtendProcs
                     : EccType::kReduceProcs;
      ecc.amount = std::max(
          1.0, std::round(ecc_rng.exponential(config.ecc_proc_amount_mean)));
      ecc.issue =
          job.arr + ecc_rng.uniform(0.0, config.issue_window_frac * job.dur);
      workload.eccs.push_back(ecc);
    }
  }

  // Multi-tenant tagging: Zipf-distributed submitters, pools round-robin
  // over user rank.  A separate pass over jobs in id order (not draw order)
  // so the tag stream is insensitive to arrival-time ties.
  if (config.num_users > 0) {
    ES_EXPECTS(config.zipf_exponent > 0);
    ES_EXPECTS(config.num_pools >= 0);
    const ZipfSampler zipf(config.num_users, config.zipf_exponent);
    for (Job& job : workload.jobs) {
      const int user = zipf.sample(user_rng);
      job.user = user;
      job.pool = config.num_pools > 0 ? (user - 1) % config.num_pools : 0;
    }
  }

  workload.normalize();
  if (config.target_load > 0)
    calibrate_load(workload, config.machine_procs, config.target_load);
  return workload;
}

ZipfSampler::ZipfSampler(int n, double s) {
  ES_EXPECTS(n >= 1);
  cdf_.resize(static_cast<std::size_t>(n));
  double total = 0;
  for (int k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -s);
    cdf_[static_cast<std::size_t>(k - 1)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

int ZipfSampler::sample(util::Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin()) + 1;
}

double ZipfSampler::probability(int rank) const {
  ES_EXPECTS(rank >= 1 &&
             rank <= static_cast<int>(cdf_.size()));
  const std::size_t i = static_cast<std::size_t>(rank - 1);
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

Workload generate_sdsc_like(std::size_t num_jobs, int procs,
                            std::uint64_t seed) {
  ES_EXPECTS(procs >= 2);
  util::Rng master(seed);
  util::Rng size_rng = master.split();
  util::Rng runtime_rng = master.split();
  util::Rng arrival_rng = master.split();

  LogUniformSize size_model;
  size_model.hi = std::log2(static_cast<double>(procs));

  RuntimeParams runtime;  // Table I constants fit SP2-class traces too.
  ArrivalParams arrival;  // default beta_arr mid-range

  Workload workload;
  workload.machine_procs = procs;
  workload.granularity = 1;
  workload.jobs.reserve(num_jobs);
  ArrivalProcess arrivals(arrival, arrival_rng);
  for (std::size_t i = 0; i < num_jobs; ++i) {
    Job job;
    job.id = static_cast<JobId>(i + 1);
    job.arr = arrivals.next();
    job.num = std::min(size_model.sample(size_rng), procs);
    job.actual = runtime.sample(runtime_rng, job.num);
    job.dur = job.actual;
    workload.jobs.push_back(job);
  }
  workload.normalize();
  return workload;
}

}  // namespace es::workload
