#include "workload/lublin.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace es::workload {

double RuntimeParams::mixing_p(int procs) const {
  const double s = static_cast<double>(procs) / size_unit;
  return std::clamp(p_a * s + p_b, 0.0, 1.0);
}

double RuntimeParams::sample(util::Rng& rng, int procs) const {
  const double p = mixing_p(procs);
  const util::HyperGamma hg{a1, b1, a2, b2};
  const double log_runtime = hg.sample(rng, p);
  return std::clamp(std::exp(log_runtime), min_runtime, max_runtime);
}

ArrivalProcess::ArrivalProcess(ArrivalParams params, util::Rng rng)
    : params_(params), rng_(rng) {
  ES_EXPECTS(params.a_arr > 0 && params.b_arr > 0);
  ES_EXPECTS(params.a_num > 0 && params.b_num > 0);
  ES_EXPECTS(params.arar >= 1.0);
}

bool ArrivalProcess::rush(double at) const {
  const double hour_of_day = std::fmod(at / 3600.0, 24.0);
  return hour_of_day >= params_.rush_begin_hour &&
         hour_of_day < params_.rush_end_hour;
}

double ArrivalProcess::gap() {
  // Log-space Gamma gap, per Lublin's fitting of inter-arrival times.
  double g = std::exp(rng_.gamma(params_.a_arr, params_.b_arr));
  // ARAR is the rush-to-all arrival-rate ratio: rush-hour arrivals are that
  // much denser, so off-hour gaps stretch by the ratio.
  if (!rush(now_)) g *= params_.arar;
  return g;
}

void ArrivalProcess::fill_bucket() {
  // Advance hour by hour until a bucket receives at least one job.
  for (;;) {
    if (!first_) bucket_begin_ += 3600.0;
    first_ = false;
    double expected = rng_.gamma(params_.a_num, params_.b_num);
    if (!rush(bucket_begin_)) expected /= params_.arar;
    const int count = static_cast<int>(std::lround(expected));
    if (count <= 0) continue;
    // Intra-hour offsets: gaps shaped by Gamma(a_arr, b_arr), renormalized
    // so the batch spans the hour ("inter-arrival time for jobs arriving
    // within a 1-hour interval").
    std::vector<double> gaps(static_cast<std::size_t>(count) + 1);
    double total = 0;
    for (double& g : gaps) {
      g = rng_.gamma(params_.a_arr, params_.b_arr);
      total += g;
    }
    bucket_.clear();
    double cursor = 0;
    for (int i = 0; i < count; ++i) {
      cursor += gaps[static_cast<std::size_t>(i)];
      bucket_.push_back(bucket_begin_ + 3600.0 * cursor / total);
    }
    // Consumed back-to-front.
    std::reverse(bucket_.begin(), bucket_.end());
    return;
  }
}

double ArrivalProcess::next() {
  if (params_.gap_model == GapModel::kHourlyBuckets) {
    if (bucket_.empty()) fill_bucket();
    now_ = bucket_.back();
    bucket_.pop_back();
    return now_;
  }

  if (remaining_in_session_ <= 0) {
    // Start a new session at the next hour boundary (or immediately for the
    // very first session) holding ~Gamma(a_num, b_num) jobs.
    remaining_in_session_ = std::max(
        1, static_cast<int>(std::lround(
               rng_.gamma(params_.a_num, params_.b_num))));
    if (now_ > 0.0) {
      const double next_hour = (std::floor(now_ / 3600.0) + 1.0) * 3600.0;
      now_ = std::max(now_ + gap(), next_hour);
    }
    --remaining_in_session_;
    return now_;
  }
  --remaining_in_session_;
  now_ += gap();
  return now_;
}

int LogUniformSize::sample(util::Rng& rng) const {
  if (rng.bernoulli(p_serial)) return 1;
  const bool first = rng.bernoulli(prob_first_stage);
  const double log_size =
      first ? rng.uniform(lo, med) : rng.uniform(med, hi);
  double size = std::pow(2.0, log_size);
  if (rng.bernoulli(p_pow2)) {
    // Round to the nearest power of two, a dominant feature of real traces.
    size = std::pow(2.0, std::round(log_size));
  }
  const int max_size = static_cast<int>(std::lround(std::pow(2.0, hi)));
  return std::clamp(static_cast<int>(std::lround(size)), 1, max_size);
}

}  // namespace es::workload
