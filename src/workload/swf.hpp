// Standard Workload Format (SWF) reader/writer.
//
// SWF (Feitelson et al., the Parallel Workloads Archive interchange format)
// describes one job per line with 18 whitespace-separated numeric fields;
// `;`-prefixed lines are header comments.  We parse and emit all 18 fields so
// real archive traces round-trip, and convert records to the simulator's Job
// model.  See also cwf.hpp for the paper's elastic extension.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace es::workload {

/// One SWF line, fields 1-18 in archive order.  Missing/unknown values are
/// -1 per the SWF convention.
struct SwfRecord {
  long long job_number = -1;       ///< 1
  double submit_time = -1;         ///< 2 (seconds)
  double wait_time = -1;           ///< 3
  double run_time = -1;            ///< 4 actual runtime
  long long used_procs = -1;       ///< 5
  double avg_cpu_time = -1;        ///< 6
  double used_memory = -1;         ///< 7
  long long req_procs = -1;        ///< 8
  double req_time = -1;            ///< 9 user estimate
  double req_memory = -1;          ///< 10
  long long status = -1;           ///< 11 (1 = completed)
  long long user_id = -1;          ///< 12
  long long group_id = -1;         ///< 13
  long long app_number = -1;       ///< 14
  long long queue_number = -1;     ///< 15
  long long partition = -1;        ///< 16
  long long preceding_job = -1;    ///< 17
  double think_time = -1;          ///< 18
};

/// Parsed SWF file: header comment lines (without the leading ';') plus
/// records in file order.
struct SwfFile {
  std::vector<std::string> header;
  std::vector<SwfRecord> records;
};

/// Structured view of the standard SWF header comments the archive defines
/// ("; MaxProcs: 128", "; Computer: IBM SP2", ...).  Missing fields are -1
/// or empty.
struct SwfMetadata {
  long long max_procs = -1;
  long long max_nodes = -1;
  long long unix_start_time = -1;
  std::string computer;
  std::string installation;
};

/// Extracts metadata from header comment lines (case-insensitive keys).
SwfMetadata parse_swf_metadata(const std::vector<std::string>& header);

/// Parse failure details.
struct SwfParseError {
  std::size_t line_number = 0;
  std::string message;
};

/// Parses SWF text.  Malformed lines are reported in `errors` and skipped;
/// parsing never throws.
SwfFile parse_swf(std::istream& in, std::vector<SwfParseError>* errors = nullptr);
SwfFile parse_swf_string(const std::string& text,
                         std::vector<SwfParseError>* errors = nullptr);

/// Parses a single record line (no comment handling).  Returns false and
/// fills `message` on malformed input.
bool parse_swf_record(const std::string& line, SwfRecord& out,
                      std::string& message);

/// Serializes one record as a canonical SWF line.
std::string format_swf_record(const SwfRecord& record);

/// Writes header (each line prefixed with "; ") and records.
void write_swf(std::ostream& out, const SwfFile& file);

/// Controls how the job status (field 11: 0 = failed, 1 = completed,
/// 5 = cancelled) is honoured when lowering records to simulator jobs.
struct SwfImportOptions {
  /// Import failed/cancelled records that actually ran (run_time > 0),
  /// replaying their partial execution — they consumed real machine time, so
  /// dropping them would understate the offered load.  When false such
  /// records are dropped entirely.
  bool import_partial = true;
};

/// Why to_job rejected a record.
enum class SwfDropReason {
  kNone,             ///< record imported
  kUnusable,         ///< no processor count or runtime at all
  kNeverRan,         ///< failed/cancelled before consuming any machine time
  kPartialDisabled,  ///< partial run dropped because import_partial is off
};

/// Converts an SWF record to the simulator Job model.  Requested fields fall
/// back to used/actual ones when absent (-1), matching common archive usage.
/// Returns false for records that cannot run; `reason` (if given) says why.
bool to_job(const SwfRecord& record, Job& out,
            const SwfImportOptions& options = {},
            SwfDropReason* reason = nullptr);

/// Converts a Job back to an SWF record (submission view; wait/run unknown).
SwfRecord from_job(const Job& job);

/// Loads jobs from an SWF file on disk.  Unusable records are skipped and
/// counted; one summary warning per file reports the drop totals.
std::vector<Job> load_swf_jobs(const std::string& path,
                               const SwfImportOptions& options = {});

}  // namespace es::workload
