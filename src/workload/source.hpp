// Pull-based streaming workload ingestion.
//
// A JobSource feeds the engine the trace in bounded chunks instead of a
// materialized std::vector<Job>, so a ten-million-job run holds only the
// jobs currently in flight.  The streamed run is byte-identical to the
// materialized one because every chunk obeys three ordering contracts the
// event kernel's (time, class, seq) comparator relies on:
//
//   1. Jobs arrive sorted by (arr, id) and a chunk boundary never splits a
//      group of equal arrival times: the next chunk's first arrival is
//      strictly later than this chunk's last.  Refills happen when the last
//      scheduled arrival fires, so every event a refill schedules lies
//      strictly in the simulated future and per-class schedule order (the
//      same-instant tiebreak) matches the materialized run's.
//   2. ECCs are delivered in the chunk whose arrival window
//      [first arr, next chunk's first arr) contains their issue time,
//      sorted by (issue, job id) with generation/file order preserved for
//      ties — windows never split an equal-issue group, so the chunkwise
//      concatenation equals Workload::normalize()'s global stable order.
//      Every ECC must satisfy issue >= its job's arrival (true for the
//      generator by construction); this guarantees the target job is built
//      before the command fires.
//   3. ecc_counts[i] is the TOTAL number of commands the stream will ever
//      deliver for jobs[i], known at build time, so the engine can retire a
//      finished job's record the moment its last command has dispatched.
//
// CWF files allow commands to reference jobs arbitrarily far back with no
// per-job totals until EOF, so CWF streams through MaterializedSource
// (bounded engine state; the parsed workload itself stays resident).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "workload/generator.hpp"
#include "workload/job.hpp"
#include "workload/swf.hpp"

namespace es::workload {

/// One bounded slice of the trace.  `jobs` and `ecc_counts` are parallel.
struct SourceChunk {
  std::vector<Job> jobs;
  std::vector<int> ecc_counts;
  std::vector<Ecc> eccs;

  void clear() {
    jobs.clear();
    ecc_counts.clear();
    eccs.clear();
  }
};

/// Pull interface the streaming engine drains.  Implementations own the
/// ordering contracts documented at the top of this header.
class JobSource {
 public:
  virtual ~JobSource();

  /// Machine geometry of the stream (known before the first chunk).
  virtual int machine_procs() const = 0;
  virtual int granularity() const = 0;

  /// Fills `chunk` with the next slice (clearing it first) and returns
  /// true; returns false once the stream is exhausted.  A true return
  /// implies a non-empty `jobs`.
  virtual bool next_chunk(SourceChunk& chunk) = 0;
};

/// Streams an already-materialized (normalized) workload.  Useful for the
/// streamed-vs-materialized parity gates, and for CWF traces whose backward
/// ECC references defeat true streaming: the engine-side structures stay
/// bounded even though the workload vector is resident.
class MaterializedSource : public JobSource {
 public:
  static constexpr std::size_t kDefaultChunkJobs = 4096;

  /// The workload must outlive the source and be normalize()d; every ECC
  /// must reference an existing job and satisfy issue >= the job's arrival.
  explicit MaterializedSource(const Workload& workload,
                              std::size_t chunk_jobs = kDefaultChunkJobs);

  int machine_procs() const override { return workload_->machine_procs; }
  int granularity() const override { return workload_->granularity; }
  bool next_chunk(SourceChunk& chunk) override;

 private:
  const Workload* workload_;
  std::size_t chunk_jobs_;
  std::size_t job_cursor_ = 0;
  std::size_t ecc_cursor_ = 0;
  std::vector<int> ecc_totals_;  ///< per job index in workload order
};

/// Streams the synthetic Lublin/CWF generator without materializing the
/// trace: bitwise-identical to generate(config) fed to the engine, chunk by
/// chunk.  Jobs and their commands are produced in one interleaved pass
/// (the generator's split RNG streams make that equal to its two-pass
/// structure); target_load calibration replays generate()'s iterative
/// scale_arrivals() as a factor chain applied per emitted timestamp.
class GeneratorSource : public JobSource {
 public:
  static constexpr std::size_t kDefaultChunkJobs = 4096;

  explicit GeneratorSource(const GeneratorConfig& config,
                           std::size_t chunk_jobs = kDefaultChunkJobs);
  ~GeneratorSource() override;

  int machine_procs() const override { return config_.machine_procs; }
  int granularity() const override { return config_.size.unit; }
  bool next_chunk(SourceChunk& chunk) override;

  /// The sequential scale factors calibration settled on (empty when
  /// target_load <= 0 or the trace needed no scaling).
  const std::vector<double>& scale_factors() const { return factors_; }

 private:
  struct Stream;  // one generation pass over the trace

  /// Applies the calibration factor chain around the trace origin, in the
  /// same sequential order calibrate_load() applied scale_arrivals().
  double scaled(double t) const;
  bool generate_lookahead();

  GeneratorConfig config_;
  std::size_t chunk_jobs_;
  std::vector<double> factors_;
  double origin_ = 0;
  std::unique_ptr<Stream> stream_;

  // One-job lookahead so a chunk cut can honour the tie-group rule and the
  // ECC window end is known when the chunk is emitted.
  bool lookahead_valid_ = false;
  Job lookahead_job_{};
  int lookahead_ecc_count_ = 0;

  std::vector<Ecc> ecc_buffer_;  ///< scaled, generation order
  bool exhausted_ = false;
  std::size_t generated_ = 0;
};

/// Streams an SWF archive trace from disk, line by line.  Honours the same
/// SwfImportOptions/status semantics as load_swf_jobs() and accumulates the
/// same per-file drop summary.  Archive traces are nearly submit-ordered
/// but not strictly; a bounded reorder window re-sorts local inversions —
/// a record displaced further than the window aborts the stream with
/// std::runtime_error (fall back to the materializing loader).
class SwfJobSource : public JobSource {
 public:
  struct Options {
    SwfImportOptions import{};
    int machine_procs = 0;  ///< required (SWF headers are advisory)
    int granularity = 1;
    std::size_t chunk_jobs = 4096;
    std::size_t reorder_window = 4096;
  };

  /// Drop totals, mirroring load_swf_jobs()'s summary warning.
  struct DropSummary {
    std::uint64_t unusable = 0;
    std::uint64_t never_ran = 0;
    std::uint64_t partial_disabled = 0;
    std::uint64_t total() const {
      return unusable + never_ran + partial_disabled;
    }
  };

  /// Throws std::runtime_error when the file cannot be opened.
  SwfJobSource(const std::string& path, const Options& options);
  ~SwfJobSource() override;

  int machine_procs() const override { return options_.machine_procs; }
  int granularity() const override { return options_.granularity; }
  bool next_chunk(SourceChunk& chunk) override;

  const DropSummary& drops() const { return drops_; }
  std::uint64_t parse_errors() const { return parse_errors_; }

 private:
  struct Later {
    bool operator()(const Job& a, const Job& b) const {
      if (a.arr != b.arr) return a.arr > b.arr;
      return a.id > b.id;
    }
  };

  bool fill_window();
  bool pop_lookahead();

  Options options_;
  std::string path_;
  std::unique_ptr<std::ifstream> in_;
  std::priority_queue<Job, std::vector<Job>, Later> window_;
  bool eof_ = false;
  bool lookahead_valid_ = false;
  Job lookahead_{};
  double last_emitted_arr_ = -1;
  DropSummary drops_;
  std::uint64_t parse_errors_ = 0;
  std::size_t line_number_ = 0;
  bool summary_logged_ = false;
};

}  // namespace es::workload
