// Lublin–Feitelson analytical workload model (JPDC 2003) as instantiated by
// the paper (section IV-D, Tables I & II).
//
// Three attribute models:
//  * Job size — the paper replaces Lublin's log-uniform parallelism model
//    with a two-stage uniform over BlueGene/P node cards: small jobs are
//    {1..3} x 32 processors with probability P_S, large jobs {4..10} x 32
//    otherwise (util::TwoStageUniform).  For the Fig-1 SDSC-like trace we
//    also provide Lublin's original log-uniform size model.
//  * Runtime — hyper-Gamma: Gamma(a1,b1) with probability p, Gamma(a2,b2)
//    otherwise, where p = p_a * s + p_b couples runtime to job size s (larger
//    jobs draw from the long-runtime Gamma more often).  Samples are the
//    natural log of the runtime in seconds, per Lublin's log-space fitting.
//  * Arrivals — a renewal process whose log-gaps are Gamma(a_arr, b_arr),
//    organised into hourly sessions of ~Gamma(a_num, b_num) jobs, with the
//    rush-hour/off-hour rate ratio ARAR.  beta_arr is the load knob.
//
// Absolute magnitudes are calibrated per-experiment by arrival scaling
// (workload/load.hpp), so the unit conventions here only set the starting
// point; the distribution *shapes* are what the schedulers react to.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace es::workload {

/// Table I of the paper: hyper-Gamma runtime parameters and the size
/// correlation line p = p_a * s + p_b (clamped to [0,1]).
struct RuntimeParams {
  double a1 = 4.2;
  double b1 = 0.94;
  double a2 = 312;
  double b2 = 0.03;
  double p_a = -0.0054;
  double p_b = 0.78;
  /// Correlation uses s in units of `size_unit` processors; the paper's
  /// p_a is fitted for node counts, and the two-stage sizes are multiples of
  /// 32 procs, so s = procs / size_unit with size_unit = 1 keeps the paper's
  /// literal formula.  Clamping keeps out-of-range sizes sane.
  double size_unit = 1.0;
  double min_runtime = 1.0;          ///< floor, seconds
  double max_runtime = 7 * 86400.0;  ///< cap, seconds

  /// Mixing probability for a job of `procs` processors.
  double mixing_p(int procs) const;

  /// Draws a runtime in seconds for a job of `procs` processors.
  double sample(util::Rng& rng, int procs) const;
};

/// How inter-arrival gaps are produced from the Table-II Gammas.
enum class GapModel {
  /// gaps = exp(Gamma(a_arr, b_arr)) — Lublin's log-space fit.  Very heavy
  /// tailed: bursts dominate queueing at any load, waits grow with trace
  /// length.
  kLogGamma,
  /// The paper's literal section-IV-D reading: per 1-hour interval,
  /// ~Gamma(a_num, b_num) jobs arrive, with intra-hour spacing *shaped* by
  /// Gamma(a_arr, b_arr) but normalized into the hour.  Mildly bursty at
  /// the hour scale; queues are stable below the utilization ceiling and
  /// metrics are N-independent (matching the paper's 10,000-job check).
  kHourlyBuckets,
};

/// Table II of the paper: arrival-process parameters.
struct ArrivalParams {
  double a_arr = 13.2303;
  double b_arr = 0.5101;   ///< paper varies this in [0.4101, 0.6101]
  double a_num = 15.1737;
  double b_num = 0.9631;
  double arar = 1.0225;    ///< arrive rush-to-all ratio
  /// Rush window, hours of day [begin, end).  Lublin's daily cycle peaks
  /// during working hours.
  int rush_begin_hour = 8;
  int rush_end_hour = 18;
  GapModel gap_model = GapModel::kHourlyBuckets;
};

/// Stateful arrival sequence generator: produces non-decreasing arrival
/// times (seconds since trace start).
///
/// kLogGamma: sessions begin on hour boundaries; each holds
/// ~Gamma(a_num, b_num) jobs whose log-gaps are Gamma(a_arr, b_arr);
/// off-hour gaps are stretched by ARAR.
///
/// kHourlyBuckets: each 1-hour interval receives ~Gamma(a_num, b_num)
/// jobs (scaled down by ARAR in off-hours) at offsets whose relative
/// spacing follows Gamma(a_arr, b_arr) renormalized into the hour.
class ArrivalProcess {
 public:
  ArrivalProcess(ArrivalParams params, util::Rng rng);

  /// Next arrival time; non-decreasing across calls.
  double next();

  const ArrivalParams& params() const { return params_; }

 private:
  double gap();
  bool rush(double at) const;
  void fill_bucket();

  ArrivalParams params_;
  util::Rng rng_;
  double now_ = 0.0;
  int remaining_in_session_ = 0;
  // kHourlyBuckets state: pending offsets of the current hour, descending.
  double bucket_begin_ = 0.0;
  std::vector<double> bucket_;
  bool first_ = true;
};

/// Lublin's original log-uniform parallelism model, used for the SDSC-like
/// validation trace of Fig 1 (machines without the 32-proc granularity).
/// With probability `p_serial` a job is serial; otherwise log2(size) is drawn
/// from a two-stage uniform over [lo, med] / [med, hi] and rounded to a power
/// of two with probability `p_pow2`.
struct LogUniformSize {
  double p_serial = 0.24;
  double p_pow2 = 0.75;
  double lo = 0.8;
  double med = 4.5;
  double hi = 7.0;  ///< log2 of the machine size (128 procs -> 7)
  double prob_first_stage = 0.86;

  int sample(util::Rng& rng) const;
};

}  // namespace es::workload
