// Elastic Control Commands (paper section III-C / IV-C).
//
// An ECC is a user-issued, on-the-fly change to a previously submitted job's
// requirements: extension/reduction of execution *time* (ET/RT — the paper's
// focus) or of *processors* (EP/RP — CWF defines them; the paper defers them
// to future work, we implement them for queued jobs as an extension).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace es::workload {

/// CWF field 20 request types other than plain submission.
enum class EccType {
  kExtendTime,      ///< ET: extend user-estimated execution time
  kReduceTime,      ///< RT: reduce user-estimated execution time
  kExtendProcs,     ///< EP: extend requested processors (queued jobs only)
  kReduceProcs,     ///< RP: reduce requested processors (queued jobs only)
};

/// One elastic control command.
struct Ecc {
  sim::Time issue = 0;        ///< when the user issues the command
  std::int64_t job_id = 0;    ///< target job (same ID as its submission)
  EccType type = EccType::kExtendTime;
  double amount = 0;          ///< seconds for ET/RT, processors for EP/RP

  bool time_dimension() const {
    return type == EccType::kExtendTime || type == EccType::kReduceTime;
  }
  bool extension() const {
    return type == EccType::kExtendTime || type == EccType::kExtendProcs;
  }
};

/// CWF mnemonics: "ET", "RT", "EP", "RP".
std::string to_string(EccType type);

/// Parses a CWF mnemonic; returns false on unknown text.
bool parse_ecc_type(const std::string& text, EccType& out);

}  // namespace es::workload
