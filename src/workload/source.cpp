#include "workload/source.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "util/check.hpp"
#include "util/log.hpp"

namespace es::workload {
namespace {

bool ecc_before(const Ecc& a, const Ecc& b) {
  if (a.issue != b.issue) return a.issue < b.issue;
  return a.job_id < b.job_id;
}

}  // namespace

JobSource::~JobSource() = default;

// ---------------------------------------------------------------------------
// MaterializedSource

MaterializedSource::MaterializedSource(const Workload& workload,
                                       std::size_t chunk_jobs)
    : workload_(&workload), chunk_jobs_(std::max<std::size_t>(1, chunk_jobs)) {
  // Validate the ordering contracts once up front (see source.hpp): jobs
  // normalized, ECCs normalized, every command targeting a known job no
  // earlier than its arrival.
  std::unordered_map<JobId, std::size_t> position;
  position.reserve(workload.jobs.size());
  for (std::size_t i = 0; i < workload.jobs.size(); ++i) {
    const Job& job = workload.jobs[i];
    if (i > 0) {
      const Job& prev = workload.jobs[i - 1];
      ES_EXPECTS(prev.arr < job.arr ||
                 (prev.arr == job.arr && prev.id < job.id));
    }
    position.emplace(job.id, i);
  }
  ecc_totals_.assign(workload.jobs.size(), 0);
  for (std::size_t i = 0; i < workload.eccs.size(); ++i) {
    const Ecc& ecc = workload.eccs[i];
    if (i > 0) ES_EXPECTS(!ecc_before(ecc, workload.eccs[i - 1]));
    const auto it = position.find(ecc.job_id);
    ES_EXPECTS(it != position.end());
    ES_EXPECTS(ecc.issue >= workload.jobs[it->second].arr);
    ++ecc_totals_[it->second];
  }
}

bool MaterializedSource::next_chunk(SourceChunk& chunk) {
  chunk.clear();
  const std::vector<Job>& jobs = workload_->jobs;
  if (job_cursor_ >= jobs.size()) return false;
  std::size_t end = std::min(jobs.size(), job_cursor_ + chunk_jobs_);
  // Never split an equal-arrival tie group across a chunk boundary.
  while (end < jobs.size() && jobs[end].arr == jobs[end - 1].arr) ++end;
  chunk.jobs.assign(jobs.begin() + static_cast<std::ptrdiff_t>(job_cursor_),
                    jobs.begin() + static_cast<std::ptrdiff_t>(end));
  chunk.ecc_counts.assign(
      ecc_totals_.begin() + static_cast<std::ptrdiff_t>(job_cursor_),
      ecc_totals_.begin() + static_cast<std::ptrdiff_t>(end));
  job_cursor_ = end;
  const bool bounded = job_cursor_ < jobs.size();
  const double window_end = bounded ? jobs[job_cursor_].arr : 0;
  const std::vector<Ecc>& eccs = workload_->eccs;
  while (ecc_cursor_ < eccs.size() &&
         (!bounded || eccs[ecc_cursor_].issue < window_end)) {
    chunk.eccs.push_back(eccs[ecc_cursor_]);
    ++ecc_cursor_;
  }
  return true;
}

// ---------------------------------------------------------------------------
// GeneratorSource

/// One generation pass.  Declaration order of the split streams must match
/// generate()'s split() call order exactly — that is what makes this
/// bitwise-identical to the materializing generator.
struct GeneratorSource::Stream {
  util::Rng master;
  util::Rng size_rng;
  util::Rng runtime_rng;
  util::Rng arrival_rng;
  util::Rng type_rng;
  util::Rng ecc_rng;
  util::Rng estimate_rng;
  ArrivalProcess arrivals;
  std::size_t index = 0;

  explicit Stream(const GeneratorConfig& config)
      : master(config.seed),
        size_rng(master.split()),
        runtime_rng(master.split()),
        arrival_rng(master.split()),
        type_rng(master.split()),
        ecc_rng(master.split()),
        estimate_rng(master.split()),
        arrivals(config.arrival, arrival_rng) {}

  /// Generates the next job; when `eccs` is non-null its commands are
  /// appended (the ecc stream is independent, so calibration pre-passes
  /// skip the draws entirely).  Mirrors generate()'s per-job draw order;
  /// interleaving the ECC pass per job is equivalent to the generator's
  /// two-pass structure because each attribute consumes its own stream.
  bool next(const GeneratorConfig& config, Job& job, std::vector<Ecc>* eccs) {
    if (index >= config.num_jobs) return false;
    job = Job{};
    job.id = static_cast<JobId>(index + 1);
    job.arr = arrivals.next();
    job.num = std::min(config.size.sample(size_rng, config.p_small),
                       config.machine_procs);
    const double actual = config.runtime.sample(runtime_rng, job.num);
    job.actual = actual;
    if (config.estimate_uniform_max > 1.0) {
      job.dur =
          actual * estimate_rng.uniform(1.0, config.estimate_uniform_max);
    } else {
      job.dur = actual * config.estimate_factor;
    }
    if (type_rng.bernoulli(config.p_dedicated)) {
      job.type = JobType::kDedicated;
      job.start =
          job.arr + type_rng.exponential(config.dedicated_start_mean);
    }
    if (eccs != nullptr) {
      for (int k = 0; k < config.max_eccs_per_job; ++k) {
        const double draw = ecc_rng.uniform01();
        EccType type;
        if (draw < config.p_extend) {
          type = EccType::kExtendTime;
        } else if (draw < config.p_extend + config.p_reduce) {
          type = EccType::kReduceTime;
        } else {
          continue;
        }
        Ecc ecc;
        ecc.job_id = job.id;
        ecc.type = type;
        double amount =
            ecc_rng.exponential(config.ecc_amount_frac_mean * job.dur);
        if (type == EccType::kReduceTime) {
          amount = std::min(amount, 0.9 * job.dur);
        }
        ecc.amount = std::max(1.0, amount);
        ecc.issue = job.arr +
                    ecc_rng.uniform(0.0, config.issue_window_frac * job.dur);
        eccs->push_back(ecc);
      }
      const double proc_draw = ecc_rng.uniform01();
      if (proc_draw < config.p_extend_procs + config.p_reduce_procs) {
        Ecc ecc;
        ecc.job_id = job.id;
        ecc.type = proc_draw < config.p_extend_procs ? EccType::kExtendProcs
                                                     : EccType::kReduceProcs;
        ecc.amount = std::max(
            1.0,
            std::round(ecc_rng.exponential(config.ecc_proc_amount_mean)));
        ecc.issue = job.arr +
                    ecc_rng.uniform(0.0, config.issue_window_frac * job.dur);
        eccs->push_back(ecc);
      }
    }
    ++index;
    return true;
  }
};

GeneratorSource::GeneratorSource(const GeneratorConfig& config,
                                 std::size_t chunk_jobs)
    : config_(config), chunk_jobs_(std::max<std::size_t>(1, chunk_jobs)) {
  ES_EXPECTS(config.num_jobs > 0);
  ES_EXPECTS(config.machine_procs > 0);
  ES_EXPECTS(config.p_small >= 0 && config.p_small <= 1);
  ES_EXPECTS(config.p_dedicated >= 0 && config.p_dedicated <= 1);
  ES_EXPECTS(config.p_extend >= 0 && config.p_extend <= 1);
  ES_EXPECTS(config.p_reduce >= 0 && config.p_reduce <= 1);
  ES_EXPECTS(config.p_extend + config.p_reduce <= 1);
  ES_EXPECTS(config.p_extend_procs + config.p_reduce_procs <= 1);
  ES_EXPECTS(config.estimate_factor >= 1.0);

  // calibrate_load() replayed as generation passes: pass 0 measures the
  // scale-invariant proc-seconds and the unscaled load; each iteration
  // appends one factor and re-measures the span under the factor chain.
  // Jobs-only passes — the ECC stream is untouched, so skipping it changes
  // nothing downstream.
  if (config_.target_load > 0) {
    double proc_seconds = 0;
    const auto measure = [&](bool accumulate_work) {
      Stream pass(config_);
      Job job;
      double last = 0;
      bool first = true;
      while (pass.next(config_, job, nullptr)) {
        if (accumulate_work)
          proc_seconds +=
              static_cast<double>(job.num) * job.actual_runtime();
        if (first) {
          // The first arrival has offset 0, so it is a scaling fixed point:
          // the origin is invariant across calibration iterations.
          origin_ = job.arr;
          last = origin_;
          first = false;
        }
        const double arr = scaled(job.arr);
        double begin = arr;
        if (job.dedicated() && job.start >= 0)
          begin = std::max(arr, scaled(job.start));
        last = std::max(last, begin + job.actual_runtime());
      }
      const double span = last - origin_;
      if (span <= 0) return 0.0;
      return proc_seconds / (span * config_.machine_procs);
    };
    double load = measure(true);
    if (load > 0) {
      for (int i = 0; i < 25; ++i) {
        const double error =
            std::abs(load - config_.target_load) / config_.target_load;
        if (error < 0.01) break;
        factors_.push_back(load / config_.target_load);
        load = measure(false);
      }
      ES_LOG_DEBUG("calibrated load %.4f (target %.4f, %zu factors)", load,
                   config_.target_load, factors_.size());
    }
  }
  stream_ = std::make_unique<Stream>(config_);
}

GeneratorSource::~GeneratorSource() = default;

double GeneratorSource::scaled(double t) const {
  // Sequential replay of scale_arrivals(f1), scale_arrivals(f2), ... —
  // folding the factors into a product would change the floating-point
  // operation order and break bitwise parity with the materialized path.
  for (const double factor : factors_) t = origin_ + (t - origin_) * factor;
  return t;
}

bool GeneratorSource::generate_lookahead() {
  if (exhausted_) return false;
  Job job;
  const std::size_t before = ecc_buffer_.size();
  if (!stream_->next(config_, job, &ecc_buffer_)) {
    exhausted_ = true;
    return false;
  }
  job.arr = scaled(job.arr);
  if (job.dedicated() && job.start >= 0) job.start = scaled(job.start);
  for (std::size_t i = before; i < ecc_buffer_.size(); ++i)
    ecc_buffer_[i].issue = scaled(ecc_buffer_[i].issue);
  lookahead_job_ = job;
  lookahead_ecc_count_ = static_cast<int>(ecc_buffer_.size() - before);
  lookahead_valid_ = true;
  ++generated_;
  return true;
}

bool GeneratorSource::next_chunk(SourceChunk& chunk) {
  chunk.clear();
  while (true) {
    if (!lookahead_valid_ && !generate_lookahead()) break;
    if (!chunk.jobs.empty() && chunk.jobs.size() >= chunk_jobs_ &&
        lookahead_job_.arr > chunk.jobs.back().arr)
      break;  // the lookahead starts the next chunk strictly later
    chunk.jobs.push_back(lookahead_job_);
    chunk.ecc_counts.push_back(lookahead_ecc_count_);
    lookahead_valid_ = false;
  }
  if (chunk.jobs.empty()) return false;
  // Emit buffered commands whose issue falls inside this chunk's arrival
  // window.  The lookahead job's own commands have issue >= its arrival ==
  // the window end, so they are never emitted early.  stable_partition
  // keeps generation order within the window; the stable (issue, job id)
  // sort then reproduces normalize()'s global order segment by segment.
  const bool bounded = lookahead_valid_;
  const double window_end = lookahead_job_.arr;
  const auto mid = std::stable_partition(
      ecc_buffer_.begin(), ecc_buffer_.end(),
      [&](const Ecc& e) { return !bounded || e.issue < window_end; });
  std::stable_sort(ecc_buffer_.begin(), mid, ecc_before);
  chunk.eccs.assign(ecc_buffer_.begin(), mid);
  ecc_buffer_.erase(ecc_buffer_.begin(), mid);
  return true;
}

// ---------------------------------------------------------------------------
// SwfJobSource

SwfJobSource::SwfJobSource(const std::string& path, const Options& options)
    : options_(options),
      path_(path),
      in_(std::make_unique<std::ifstream>(path)) {
  ES_EXPECTS(options.machine_procs > 0);
  ES_EXPECTS(options.granularity > 0);
  ES_EXPECTS(options.chunk_jobs > 0);
  if (!*in_) throw std::runtime_error("cannot open SWF trace: " + path);
}

SwfJobSource::~SwfJobSource() = default;

bool SwfJobSource::fill_window() {
  std::string line;
  while (!eof_ && window_.size() <= options_.reorder_window) {
    if (!std::getline(*in_, line)) {
      eof_ = true;
      break;
    }
    ++line_number_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == ';') continue;
    SwfRecord record;
    std::string message;
    if (!parse_swf_record(line, record, message)) {
      ES_LOG_WARN("%s:%zu: %s", path_.c_str(), line_number_,
                  message.c_str());
      ++parse_errors_;
      continue;
    }
    Job job;
    SwfDropReason reason = SwfDropReason::kNone;
    if (!to_job(record, job, options_.import, &reason)) {
      switch (reason) {
        case SwfDropReason::kUnusable: ++drops_.unusable; break;
        case SwfDropReason::kNeverRan: ++drops_.never_ran; break;
        case SwfDropReason::kPartialDisabled:
          ++drops_.partial_disabled;
          break;
        case SwfDropReason::kNone: break;
      }
      continue;
    }
    window_.push(job);
  }
  if (eof_ && window_.empty() && !summary_logged_) {
    summary_logged_ = true;
    if (drops_.total() > 0) {
      // Same one-summary-per-file shape as load_swf_jobs().
      ES_LOG_WARN(
          "%s: dropped %llu records (%llu unusable, %llu failed/cancelled "
          "before running, %llu partial runs excluded)",
          path_.c_str(), static_cast<unsigned long long>(drops_.total()),
          static_cast<unsigned long long>(drops_.unusable),
          static_cast<unsigned long long>(drops_.never_ran),
          static_cast<unsigned long long>(drops_.partial_disabled));
    }
  }
  return !window_.empty();
}

bool SwfJobSource::pop_lookahead() {
  if (lookahead_valid_) return true;
  if (!fill_window()) return false;
  lookahead_ = window_.top();
  window_.pop();
  if (lookahead_.arr < last_emitted_arr_) {
    throw std::runtime_error(
        path_ + ": submit order inversion exceeds the reorder window (job " +
        std::to_string(lookahead_.id) +
        "); re-run with a larger window or the materializing loader");
  }
  lookahead_valid_ = true;
  return true;
}

bool SwfJobSource::next_chunk(SourceChunk& chunk) {
  chunk.clear();
  while (true) {
    if (!lookahead_valid_ && !pop_lookahead()) break;
    if (!chunk.jobs.empty() && chunk.jobs.size() >= options_.chunk_jobs &&
        lookahead_.arr > chunk.jobs.back().arr)
      break;
    chunk.jobs.push_back(lookahead_);
    chunk.ecc_counts.push_back(0);
    last_emitted_arr_ = lookahead_.arr;
    lookahead_valid_ = false;
  }
  return !chunk.jobs.empty();
}

}  // namespace es::workload
