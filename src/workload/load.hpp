// Offered-load computation and calibration (paper sections II & IV-D).
//
//   Load = (1 / (duration * M)) * sum_i num_i * runtime_i
//
// i.e. total demanded processor-seconds over the machine's capacity across
// the trace span.  Experiments vary load the way the paper (and Shmueli &
// Feitelson) do: multiply all arrival times by a constant factor, which
// stretches or compresses the trace without touching job shapes.
#pragma once

#include "workload/job.hpp"

namespace es::workload {

/// Offered load of a workload on an `machine_procs`-processor machine.
/// Uses actual runtimes and the Workload::duration() span.  Returns 0 for
/// degenerate (empty / zero-span) workloads.
double offered_load(const Workload& workload, int machine_procs);

/// Scales arrival times until |offered_load - target| / target < tolerance
/// (duration responds nonlinearly to scaling because runtimes stay fixed, so
/// this iterates).  Returns the achieved load.
double calibrate_load(Workload& workload, int machine_procs, double target,
                      double tolerance = 0.01, int max_iterations = 25);

}  // namespace es::workload
