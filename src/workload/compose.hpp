// Workload composition: concatenate phases, interleave streams, and slice
// windows.  Used to build regime-switching and multi-tenant scenarios from
// generated or loaded traces while keeping IDs unique and order invariants
// intact.
#pragma once

#include "workload/job.hpp"

namespace es::workload {

/// Appends `tail` after `base` in time: every tail timestamp is shifted so
/// its first arrival lands `gap` seconds after base's last nominal
/// completion, and tail job IDs are renumbered to continue base's.
/// Machine geometry is taken from `base` (they must agree if both set).
Workload concatenate(const Workload& base, const Workload& tail,
                     double gap = 0.0);

/// Interleaves two workloads on a shared machine (e.g. a batch stream and
/// an interactive stream): timestamps are kept, IDs of `other` are
/// renumbered to avoid collisions.  Machine geometry from `base`.
Workload merge(const Workload& base, const Workload& other);

/// Keeps only jobs arriving in [from, to) (and their ECCs), re-basing
/// nothing: a window cut for replaying part of a long trace.
Workload slice(const Workload& workload, double from, double to);

}  // namespace es::workload
