#include "workload/swf.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/log.hpp"

namespace es::workload {
namespace {

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

bool to_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  // Reject nan/inf: every SWF field is a finite quantity, and a NaN would
  // silently poison every downstream comparison.
  return std::isfinite(out);
}

}  // namespace

/// Archive names of the 18 SWF fields, 1-based order; used to point parse
/// diagnostics at the offending column.
constexpr const char* kSwfFieldNames[18] = {
    "job_number", "submit_time",   "wait_time",  "run_time",
    "used_procs", "avg_cpu_time",  "used_memory", "req_procs",
    "req_time",   "req_memory",    "status",      "user_id",
    "group_id",   "app_number",    "queue_number", "partition",
    "preceding_job", "think_time"};

bool parse_swf_record(const std::string& line, SwfRecord& out,
                      std::string& message) {
  const auto tokens = tokenize(line);
  if (tokens.size() < 18) {
    message = "expected 18 fields, got " + std::to_string(tokens.size());
    return false;
  }
  // Every field is numeric (integer fields may appear as "12.0" in archive
  // traces and are truncated); parse all 18 uniformly so a failure can name
  // the exact field and token instead of a bare "non-numeric field".
  double values[18];
  for (std::size_t i = 0; i < 18; ++i) {
    if (!to_double(tokens[i], values[i])) {
      message = "field " + std::to_string(i + 1) + " (" + kSwfFieldNames[i] +
                "): non-numeric token '" + tokens[i] + "'";
      return false;
    }
  }
  auto as_ll = [](double value) { return static_cast<long long>(value); };
  SwfRecord r;
  r.job_number = as_ll(values[0]);
  r.submit_time = values[1];
  r.wait_time = values[2];
  r.run_time = values[3];
  r.used_procs = as_ll(values[4]);
  r.avg_cpu_time = values[5];
  r.used_memory = values[6];
  r.req_procs = as_ll(values[7]);
  r.req_time = values[8];
  r.req_memory = values[9];
  r.status = as_ll(values[10]);
  r.user_id = as_ll(values[11]);
  r.group_id = as_ll(values[12]);
  r.app_number = as_ll(values[13]);
  r.queue_number = as_ll(values[14]);
  r.partition = as_ll(values[15]);
  r.preceding_job = as_ll(values[16]);
  r.think_time = values[17];
  out = r;
  return true;
}

SwfMetadata parse_swf_metadata(const std::vector<std::string>& header) {
  SwfMetadata metadata;
  auto matches = [](const std::string& line, const char* key,
                    std::string& value) {
    const std::size_t key_length = std::strlen(key);
    if (line.size() <= key_length) return false;
    for (std::size_t i = 0; i < key_length; ++i) {
      if (std::tolower(static_cast<unsigned char>(line[i])) !=
          std::tolower(static_cast<unsigned char>(key[i])))
        return false;
    }
    if (line[key_length] != ':') return false;
    value = line.substr(key_length + 1);
    while (!value.empty() && value.front() == ' ') value.erase(0, 1);
    while (!value.empty() &&
           (value.back() == ' ' || value.back() == '\t'))
      value.pop_back();
    return true;
  };
  auto to_count = [](const std::string& text) -> long long {
    char* end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    return end == text.c_str() ? -1 : value;
  };
  for (const std::string& line : header) {
    std::string value;
    if (matches(line, "MaxProcs", value)) {
      metadata.max_procs = to_count(value);
    } else if (matches(line, "MaxNodes", value)) {
      metadata.max_nodes = to_count(value);
    } else if (matches(line, "UnixStartTime", value)) {
      metadata.unix_start_time = to_count(value);
    } else if (matches(line, "Computer", value)) {
      metadata.computer = value;
    } else if (matches(line, "Installation", value)) {
      metadata.installation = value;
    }
  }
  return metadata;
}

SwfFile parse_swf(std::istream& in, std::vector<SwfParseError>* errors) {
  SwfFile file;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip trailing CR from CRLF traces.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.front() == ';') {
      std::string comment = line.substr(1);
      if (!comment.empty() && comment.front() == ' ') comment.erase(0, 1);
      file.header.push_back(std::move(comment));
      continue;
    }
    SwfRecord record;
    std::string message;
    if (parse_swf_record(line, record, message)) {
      file.records.push_back(record);
    } else if (errors) {
      errors->push_back({line_number, message});
    }
  }
  return file;
}

SwfFile parse_swf_string(const std::string& text,
                         std::vector<SwfParseError>* errors) {
  std::istringstream stream(text);
  return parse_swf(stream, errors);
}

std::string format_swf_record(const SwfRecord& r) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "%lld %.0f %.0f %.0f %lld %.0f %.0f %lld %.0f %.0f %lld %lld "
                "%lld %lld %lld %lld %lld %.0f",
                r.job_number, r.submit_time, r.wait_time, r.run_time,
                r.used_procs, r.avg_cpu_time, r.used_memory, r.req_procs,
                r.req_time, r.req_memory, r.status, r.user_id, r.group_id,
                r.app_number, r.queue_number, r.partition, r.preceding_job,
                r.think_time);
  return buf;
}

void write_swf(std::ostream& out, const SwfFile& file) {
  for (const auto& line : file.header) out << "; " << line << '\n';
  for (const auto& record : file.records)
    out << format_swf_record(record) << '\n';
}

bool to_job(const SwfRecord& record, Job& out, const SwfImportOptions& options,
            SwfDropReason* reason) {
  auto drop = [reason](SwfDropReason why) {
    if (reason) *reason = why;
    return false;
  };
  if (reason) *reason = SwfDropReason::kNone;
  // Status field (11): 0 = failed, 5 = cancelled.  A record that terminated
  // early but ran (run_time > 0) still occupied processors and is replayed
  // with its partial runtime (unless the caller opted out); one that never
  // ran consumed nothing and would only distort the replayed load.
  const bool terminated_early = record.status == 0 || record.status == 5;
  if (terminated_early) {
    if (record.run_time <= 0) return drop(SwfDropReason::kNeverRan);
    if (!options.import_partial) return drop(SwfDropReason::kPartialDisabled);
  }
  Job job;
  job.id = record.job_number;
  job.arr = record.submit_time < 0 ? 0 : record.submit_time;
  const long long procs =
      record.req_procs > 0 ? record.req_procs : record.used_procs;
  const double requested =
      record.req_time > 0 ? record.req_time : record.run_time;
  const double actual =
      record.run_time > 0 ? record.run_time : requested;
  if (procs <= 0 || requested <= 0) return drop(SwfDropReason::kUnusable);
  job.num = static_cast<int>(procs);
  job.dur = requested;
  job.actual = actual;
  job.type = JobType::kBatch;
  job.start = -1;
  out = job;
  return true;
}

SwfRecord from_job(const Job& job) {
  SwfRecord record;
  record.job_number = job.id;
  record.submit_time = job.arr;
  record.run_time = job.actual_runtime();
  record.req_procs = job.num;
  record.used_procs = job.num;
  record.req_time = job.dur;
  record.status = 1;
  return record;
}

std::vector<Job> load_swf_jobs(const std::string& path,
                               const SwfImportOptions& options) {
  std::ifstream in(path);
  if (!in) {
    ES_LOG_ERROR("cannot open SWF trace '%s'", path.c_str());
    return {};
  }
  std::vector<SwfParseError> errors;
  const SwfFile file = parse_swf(in, &errors);
  for (const auto& error : errors)
    ES_LOG_WARN("%s:%zu: %s", path.c_str(), error.line_number,
                error.message.c_str());
  std::vector<Job> jobs;
  jobs.reserve(file.records.size());
  std::size_t unusable = 0, never_ran = 0, partial_disabled = 0;
  for (const auto& record : file.records) {
    Job job;
    SwfDropReason reason = SwfDropReason::kNone;
    if (to_job(record, job, options, &reason)) {
      jobs.push_back(job);
      continue;
    }
    switch (reason) {
      case SwfDropReason::kUnusable: ++unusable; break;
      case SwfDropReason::kNeverRan: ++never_ran; break;
      case SwfDropReason::kPartialDisabled: ++partial_disabled; break;
      case SwfDropReason::kNone: break;
    }
  }
  // One summary per file, not one warning per record — a large archive trace
  // can legitimately carry thousands of cancelled submissions.
  if (unusable + never_ran + partial_disabled > 0) {
    ES_LOG_WARN(
        "%s: dropped %zu of %zu records (%zu unusable, %zu "
        "failed/cancelled before running, %zu partial runs excluded)",
        path.c_str(), unusable + never_ran + partial_disabled,
        file.records.size(), unusable, never_ran, partial_disabled);
  }
  return jobs;
}

}  // namespace es::workload
