// Workload characterization: the descriptive statistics one checks before
// trusting a trace (the paper's n-bar / mu-bar quantities, size mix, ECC
// counts), printable as a compact report.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "workload/job.hpp"

namespace es::workload {

struct WorkloadSummary {
  std::size_t jobs = 0;
  std::size_t dedicated = 0;
  std::size_t eccs = 0;
  std::size_t time_eccs = 0;   ///< ET/RT
  std::size_t proc_eccs = 0;   ///< EP/RP

  double span = 0;             ///< first arrival to last nominal completion
  double offered_load = 0;     ///< against machine_procs (0 if unknown)

  // The paper's workload descriptors.
  double mean_size = 0;        ///< n-bar, processors
  double mean_runtime = 0;     ///< mu-bar (actual runtimes), seconds
  double mean_estimate = 0;    ///< mean requested time
  int min_size = 0;
  int max_size = 0;
  double max_runtime = 0;
  double small_fraction = 0;   ///< share of jobs <= small_threshold procs
  int small_threshold = 96;    ///< the paper's small-job boundary

  double mean_interarrival = 0;
};

/// Computes the summary; `small_threshold` defaults to the paper's 96.
WorkloadSummary summarize(const Workload& workload, int small_threshold = 96);

/// Renders a compact multi-line report.
void print_summary(std::ostream& out, const WorkloadSummary& summary);

}  // namespace es::workload
