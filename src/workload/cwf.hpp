// Cloud Workload Format (CWF) — the paper's SWF extension (section IV-C).
//
// A CWF line carries SWF fields 1-18 plus:
//   19  requested start time   (dedicated/interactive jobs; -1 for batch)
//   20  request type           S | ET | EP | RT | RP
//   21  extension/reduction amount (-1 for plain submissions)
//
// An 'S' line is a submission (field 2 = submit time).  An ET/RT/EP/RP line
// is an Elastic Control Command referring to a previously submitted job with
// the same ID; field 2 is the command's issue time and field 21 the amount.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.hpp"
#include "workload/swf.hpp"

namespace es::workload {

/// One CWF line: the SWF record plus the three extension fields.
struct CwfRecord {
  SwfRecord swf;
  double req_start_time = -1;   ///< field 19
  std::string request_type = "S";  ///< field 20
  double amount = -1;           ///< field 21

  bool is_submission() const { return request_type == "S"; }
};

struct CwfFile {
  std::vector<std::string> header;
  std::vector<CwfRecord> records;
};

/// Parses CWF text; malformed lines go to `errors` and are skipped.  Plain
/// 18-field SWF lines are accepted and treated as batch submissions, so any
/// archive trace is valid CWF.
CwfFile parse_cwf(std::istream& in, std::vector<SwfParseError>* errors = nullptr);
CwfFile parse_cwf_string(const std::string& text,
                         std::vector<SwfParseError>* errors = nullptr);

std::string format_cwf_record(const CwfRecord& record);
void write_cwf(std::ostream& out, const CwfFile& file);

/// Lowers a parsed CWF file to the simulator Workload (submissions become
/// Jobs, ET/RT/EP/RP lines become Eccs).  ECCs referencing unknown job IDs
/// are dropped with a warning (mirrors what a real submission filter does).
Workload to_workload(const CwfFile& file);

/// Renders a Workload as a CWF file (one S line per job, one line per ECC),
/// ordered by time so the file replays deterministically.
CwfFile from_workload(const Workload& workload);

/// Convenience: load a workload from a CWF/SWF file on disk.
Workload load_cwf_workload(const std::string& path);

/// Convenience: save a workload to disk; returns false on I/O failure.
bool save_cwf_workload(const std::string& path, const Workload& workload,
                       const std::vector<std::string>& header = {});

}  // namespace es::workload
