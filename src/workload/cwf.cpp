#include "workload/cwf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/log.hpp"

namespace es::workload {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

bool to_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  // Reject nan/inf — matches the SWF prefix parser; a non-finite start time
  // or amount would corrupt the event queue ordering.
  return std::isfinite(out);
}

bool parse_cwf_line(const std::string& line, CwfRecord& out,
                    std::string& message) {
  const auto tokens = tokenize(line);
  if (tokens.size() != 18 && tokens.size() != 21) {
    message = "expected 18 (SWF) or 21 (CWF) fields, got " +
              std::to_string(tokens.size());
    return false;
  }
  // Reuse the SWF field parser for the common prefix.
  std::ostringstream prefix;
  for (std::size_t i = 0; i < 18; ++i) {
    if (i) prefix << ' ';
    prefix << tokens[i];
  }
  CwfRecord record;
  if (!parse_swf_record(prefix.str(), record.swf, message)) return false;
  if (tokens.size() == 21) {
    if (!to_double(tokens[18], record.req_start_time)) {
      message = "field 19 (requested start time) not numeric";
      return false;
    }
    record.request_type = tokens[19];
    if (record.request_type != "S") {
      EccType type;
      if (!parse_ecc_type(record.request_type, type)) {
        message = "field 20 must be one of S/ET/EP/RT/RP, got '" +
                  record.request_type + "'";
        return false;
      }
    }
    if (!to_double(tokens[20], record.amount)) {
      message = "field 21 (amount) not numeric";
      return false;
    }
    if (!record.is_submission() && record.amount < 0) {
      message = "ECC line requires a non-negative amount in field 21";
      return false;
    }
  }
  out = record;
  return true;
}

}  // namespace

CwfFile parse_cwf(std::istream& in, std::vector<SwfParseError>* errors) {
  CwfFile file;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.front() == ';') {
      std::string comment = line.substr(1);
      if (!comment.empty() && comment.front() == ' ') comment.erase(0, 1);
      file.header.push_back(std::move(comment));
      continue;
    }
    CwfRecord record;
    std::string message;
    if (parse_cwf_line(line, record, message)) {
      file.records.push_back(std::move(record));
    } else if (errors) {
      errors->push_back({line_number, message});
    }
  }
  return file;
}

CwfFile parse_cwf_string(const std::string& text,
                         std::vector<SwfParseError>* errors) {
  std::istringstream stream(text);
  return parse_cwf(stream, errors);
}

std::string format_cwf_record(const CwfRecord& record) {
  char suffix[96];
  std::snprintf(suffix, sizeof suffix, " %.0f %s %.0f", record.req_start_time,
                record.request_type.c_str(), record.amount);
  return format_swf_record(record.swf) + suffix;
}

void write_cwf(std::ostream& out, const CwfFile& file) {
  for (const auto& line : file.header) out << "; " << line << '\n';
  for (const auto& record : file.records)
    out << format_cwf_record(record) << '\n';
}

Workload to_workload(const CwfFile& file) {
  Workload workload;
  // Adopt the machine size from standard archive header metadata when
  // present; callers can still override.
  const SwfMetadata metadata = parse_swf_metadata(file.header);
  if (metadata.max_procs > 0) {
    workload.machine_procs = static_cast<int>(metadata.max_procs);
    workload.granularity = 1;
  }
  std::unordered_set<std::int64_t> known_ids;
  std::size_t dropped_jobs = 0, dropped_eccs = 0;
  for (const auto& record : file.records) {
    if (record.is_submission()) {
      Job job;
      if (!to_job(record.swf, job)) {
        ++dropped_jobs;
        continue;
      }
      if (record.req_start_time >= 0) {
        job.type = JobType::kDedicated;
        job.start = record.req_start_time;
      }
      known_ids.insert(job.id);
      workload.jobs.push_back(job);
    } else {
      EccType type;
      if (!parse_ecc_type(record.request_type, type)) continue;
      if (!known_ids.contains(record.swf.job_number)) {
        ++dropped_eccs;
        continue;
      }
      Ecc ecc;
      ecc.issue = record.swf.submit_time;
      ecc.job_id = record.swf.job_number;
      ecc.type = type;
      ecc.amount = record.amount;
      workload.eccs.push_back(ecc);
    }
  }
  // One summary per file (mirrors load_swf_jobs): per-record warnings drown
  // the log on archive traces with many cancelled submissions.
  if (dropped_jobs + dropped_eccs > 0) {
    ES_LOG_WARN(
        "CWF lowering dropped %zu unusable submission(s) and %zu ECC(s) "
        "referencing unknown jobs",
        dropped_jobs, dropped_eccs);
  }
  workload.normalize();
  return workload;
}

CwfFile from_workload(const Workload& workload) {
  CwfFile file;
  file.records.reserve(workload.jobs.size() + workload.eccs.size());
  for (const Job& job : workload.jobs) {
    CwfRecord record;
    record.swf = from_job(job);
    record.req_start_time = job.dedicated() ? job.start : -1;
    record.request_type = "S";
    record.amount = -1;
    file.records.push_back(std::move(record));
  }
  for (const Ecc& ecc : workload.eccs) {
    CwfRecord record;
    record.swf.job_number = ecc.job_id;
    record.swf.submit_time = ecc.issue;
    record.request_type = to_string(ecc.type);
    record.amount = ecc.amount;
    file.records.push_back(std::move(record));
  }
  // Deterministic replay order: by time, submissions before ECCs at a tie.
  std::stable_sort(file.records.begin(), file.records.end(),
                   [](const CwfRecord& a, const CwfRecord& b) {
                     if (a.swf.submit_time != b.swf.submit_time)
                       return a.swf.submit_time < b.swf.submit_time;
                     if (a.is_submission() != b.is_submission())
                       return a.is_submission();
                     return a.swf.job_number < b.swf.job_number;
                   });
  return file;
}

Workload load_cwf_workload(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ES_LOG_ERROR("cannot open CWF trace '%s'", path.c_str());
    return {};
  }
  std::vector<SwfParseError> errors;
  const CwfFile file = parse_cwf(in, &errors);
  for (const auto& error : errors)
    ES_LOG_WARN("%s:%zu: %s", path.c_str(), error.line_number,
                error.message.c_str());
  return to_workload(file);
}

bool save_cwf_workload(const std::string& path, const Workload& workload,
                       const std::vector<std::string>& header) {
  std::ofstream out(path);
  if (!out) return false;
  CwfFile file = from_workload(workload);
  file.header = header;
  write_cwf(out, file);
  return static_cast<bool>(out);
}

}  // namespace es::workload
