// CWF workload generator (paper section IV-D).
//
// Produces synthetic heterogeneous, elastic workloads: job sizes from the
// two-stage uniform model (P_S small-job probability), runtimes from the
// size-correlated hyper-Gamma, arrivals from the Gamma renewal process,
// dedicated jobs mixed in with probability P_D, and ECCs injected with
// extension probability P_E / reduction probability P_R.  Every stream draws
// from its own split of the seed so toggling one feature (e.g. P_D) leaves
// the other attributes of the trace unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "workload/job.hpp"
#include "workload/lublin.hpp"

namespace es::workload {

/// All knobs of the synthetic model.  Defaults reproduce the paper's
/// BlueGene/P configuration.
struct GeneratorConfig {
  int machine_procs = 320;      ///< M
  std::size_t num_jobs = 500;   ///< N_J per simulation point
  std::uint64_t seed = 1;

  double p_small = 0.5;         ///< P_S: small-job probability
  double p_dedicated = 0.0;     ///< P_D: dedicated-job probability
  double p_extend = 0.0;        ///< P_E: ET injection probability
  double p_reduce = 0.0;        ///< P_R: RT injection probability

  /// EP/RP injection (resource dimension, the paper's section-VI
  /// extension; CWF field 20 already defines the mnemonics).
  double p_extend_procs = 0.0;
  double p_reduce_procs = 0.0;
  /// EP/RP amount = max(1, round(Exp(mean))) processors.
  double ecc_proc_amount_mean = 64.0;

  util::TwoStageUniform size{};     ///< {1..3}x32 / {4..10}x32 by default
  RuntimeParams runtime{};          ///< Table I
  ArrivalParams arrival{};          ///< Table II

  /// Requested-start-time offset for dedicated jobs: start = arr +
  /// Exp(mean).  The paper specifies only "exponential"; the default keeps
  /// the booking horizon on the order of high-load queueing delays, so
  /// reservations are genuinely in the future (exercising the
  /// schedule-around-reservations machinery) without dominating the trace.
  double dedicated_start_mean = 4 * 3600.0;

  /// ECC amount = Exp(mean = this fraction of the job's duration), clamped
  /// so reductions keep at least 10% of the runtime.
  double ecc_amount_frac_mean = 0.25;

  /// ECC issue time = arr + U(0, issue_window_frac * dur).  Early-biased so
  /// most commands land while the job is queued or freshly running.
  double issue_window_frac = 0.9;

  /// Maximum ECC count per job (the paper allows imposing such a cap).
  int max_eccs_per_job = 1;

  /// User runtime estimates: dur = estimate_factor * actual.  1.0 = exact
  /// estimates; 2.0 reproduces the "over-estimated by two times" scenario
  /// discussed for backfilling.
  double estimate_factor = 1.0;

  /// Stochastic estimate quality (the backfilling literature's "f-model"):
  /// when > 1, dur = actual * U(1, estimate_uniform_max) per job, drawn
  /// from its own RNG stream, overriding estimate_factor.  Real users
  /// over-estimate by wildly varying amounts; this models that spread.
  double estimate_uniform_max = 0.0;

  /// If > 0, arrival times are scaled until the offered load matches this
  /// target (see load.hpp).
  double target_load = 0.0;

  /// Multi-tenancy: when > 0, every job is tagged with a submitting user
  /// drawn from Zipf(zipf_exponent) over ranks 1..num_users (heavy-hitter
  /// submission rates, the "millions of users" shape) and charged to pool
  /// `(user - 1) % num_pools`.  0 = untagged single-tenant trace.  The user
  /// stream draws from its own RNG split, so enabling tenancy leaves sizes /
  /// runtimes / arrivals / ECCs of the trace byte-identical.
  int num_users = 0;
  double zipf_exponent = 1.1;
  int num_pools = 0;  ///< 0 = every tagged job lands in pool 0
};

/// Discrete Zipf sampler over ranks 1..n: P(k) proportional to k^-s.
/// Deterministic CDF inversion (binary search), exposed for tests and the
/// fairshare bench.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s);
  /// Draws a rank in [1, n].
  int sample(util::Rng& rng) const;
  double probability(int rank) const;

 private:
  std::vector<double> cdf_;
};

/// Generates a workload from the model.  Jobs get IDs 1..num_jobs in arrival
/// order.  Postconditions: jobs sorted by arrival, sizes within
/// [granularity, machine_procs], all durations positive.
Workload generate(const GeneratorConfig& config);

/// Generates the Fig-1 "SDSC-like" validation trace: Lublin's original
/// log-uniform sizes on a `procs`-processor SP2-class machine (granularity
/// 1), batch jobs only, no ECCs.
Workload generate_sdsc_like(std::size_t num_jobs, int procs,
                            std::uint64_t seed);

}  // namespace es::workload
