#include "workload/summary.hpp"

#include <algorithm>
#include <ostream>

#include "util/table.hpp"
#include "workload/load.hpp"

namespace es::workload {

WorkloadSummary summarize(const Workload& workload, int small_threshold) {
  WorkloadSummary summary;
  summary.small_threshold = small_threshold;
  summary.jobs = workload.jobs.size();
  summary.dedicated = workload.dedicated_count();
  summary.eccs = workload.eccs.size();
  for (const Ecc& ecc : workload.eccs) {
    if (ecc.time_dimension()) {
      ++summary.time_eccs;
    } else {
      ++summary.proc_eccs;
    }
  }
  if (workload.jobs.empty()) return summary;

  summary.span = workload.duration();
  if (workload.machine_procs > 0)
    summary.offered_load = offered_load(workload, workload.machine_procs);

  double size_sum = 0, runtime_sum = 0, estimate_sum = 0;
  std::size_t small = 0;
  summary.min_size = workload.jobs.front().num;
  for (const Job& job : workload.jobs) {
    size_sum += job.num;
    runtime_sum += job.actual_runtime();
    estimate_sum += job.dur;
    summary.min_size = std::min(summary.min_size, job.num);
    summary.max_size = std::max(summary.max_size, job.num);
    summary.max_runtime = std::max(summary.max_runtime, job.actual_runtime());
    if (job.num <= small_threshold) ++small;
  }
  const double n = static_cast<double>(summary.jobs);
  summary.mean_size = size_sum / n;
  summary.mean_runtime = runtime_sum / n;
  summary.mean_estimate = estimate_sum / n;
  summary.small_fraction = static_cast<double>(small) / n;
  if (summary.jobs > 1) {
    summary.mean_interarrival =
        (workload.jobs.back().arr - workload.jobs.front().arr) / (n - 1);
  }
  return summary;
}

void print_summary(std::ostream& out, const WorkloadSummary& summary) {
  util::AsciiTable table("Workload summary");
  table.set_columns({"attribute", "value"});
  auto row = [&table](const char* name, const std::string& value) {
    table.cell(name).cell(value);
    table.end_row();
  };
  row("jobs", std::to_string(summary.jobs) + " (" +
                  std::to_string(summary.dedicated) + " dedicated)");
  row("ECCs", std::to_string(summary.eccs) + " (" +
                  std::to_string(summary.time_eccs) + " ET/RT, " +
                  std::to_string(summary.proc_eccs) + " EP/RP)");
  row("span", util::format_duration(summary.span));
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", summary.offered_load);
  row("offered load", buf);
  std::snprintf(buf, sizeof buf, "%.1f procs [%d, %d]", summary.mean_size,
                summary.min_size, summary.max_size);
  row("mean size (n-bar)", buf);
  row("mean runtime (mu-bar)",
      util::format_duration(summary.mean_runtime) +
          " (max " + util::format_duration(summary.max_runtime) + ")");
  row("mean estimate", util::format_duration(summary.mean_estimate));
  std::snprintf(buf, sizeof buf, "%.1f%% (<= %d procs)",
                100.0 * summary.small_fraction, summary.small_threshold);
  row("small jobs", buf);
  row("mean inter-arrival", util::format_duration(summary.mean_interarrival));
  table.render(out);
}

}  // namespace es::workload
