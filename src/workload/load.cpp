#include "workload/load.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/log.hpp"

namespace es::workload {

double offered_load(const Workload& workload, int machine_procs) {
  ES_EXPECTS(machine_procs > 0);
  const sim::Time span = workload.duration();
  if (span <= 0) return 0.0;
  double proc_seconds = 0.0;
  for (const Job& job : workload.jobs)
    proc_seconds += static_cast<double>(job.num) * job.actual_runtime();
  return proc_seconds / (span * machine_procs);
}

double calibrate_load(Workload& workload, int machine_procs, double target,
                      double tolerance, int max_iterations) {
  ES_EXPECTS(target > 0);
  ES_EXPECTS(tolerance > 0);
  double load = offered_load(workload, machine_procs);
  if (load <= 0) return load;
  for (int i = 0; i < max_iterations; ++i) {
    const double error = std::abs(load - target) / target;
    if (error < tolerance) break;
    // Stretch arrivals by load/target; the fixed runtime tail makes the
    // response sub-linear, hence the loop.
    workload.scale_arrivals(load / target);
    load = offered_load(workload, machine_procs);
  }
  ES_LOG_DEBUG("calibrated load %.4f (target %.4f)", load, target);
  return load;
}

}  // namespace es::workload
