// Post-hoc analysis of per-job outcomes: wait distributions, size-class
// fairness breakdowns and confidence intervals.
//
// Motivated by the mechanism at the heart of Delayed-LOS: skipping the
// queue-head job trades head-of-line fairness for packing.  The mean waits
// the paper reports cannot show *who pays* — these helpers break waits down
// by job size class and by distribution tail, feeding bench/fairness_study.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sched/metrics.hpp"
#include "util/stats.hpp"

namespace es::exp {

/// Summary of one group of jobs' waiting times.
struct WaitSummary {
  std::size_t count = 0;
  double mean = 0;
  double median = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// Wait summary over all jobs of a result.
WaitSummary wait_distribution(const sched::SimulationResult& result);

/// Fairness breakdown by job size class.
struct FairnessBreakdown {
  WaitSummary small;   ///< jobs with procs <= small_threshold
  WaitSummary large;   ///< the rest
  /// Ratio of large-job mean wait to small-job mean wait (1 = even,
  /// > 1 = large jobs pay).  0 when a class is empty.
  double large_to_small_wait_ratio = 0;
};
FairnessBreakdown fairness_by_size(const sched::SimulationResult& result,
                                   int small_threshold);

/// 95% confidence half-width for the mean of `stats` (Student-t for small
/// samples, normal beyond 30).  0 for fewer than two samples.
double confidence_half_width_95(const util::RunningStats& stats);

/// Mean utilization (fraction of `machine_procs` busy) per equal-width time
/// bucket over [first arrival, last finish], reconstructed exactly from the
/// per-job outcomes.  Empty when the result has no jobs or buckets <= 0.
std::vector<double> utilization_timeline(
    const sched::SimulationResult& result, int machine_procs, int buckets);

/// Renders a timeline as a one-line ASCII bar profile (' ' through full
/// block by eighths), e.g. for simrun --profile.
std::string render_profile(const std::vector<double>& timeline);

/// Waiting-queue length sampled at each bucket boundary, reconstructed from
/// a schedule trace (arrivals enqueue, starts dequeue).  Requires a trace
/// recorded with EngineConfig::record_trace.
std::vector<double> queue_length_timeline(const sched::ScheduleTrace& trace,
                                          int buckets);

/// Peak and mean waiting-queue length over a run, from the trace.
struct QueueStats {
  std::size_t peak = 0;
  double mean = 0;  ///< time-weighted mean queue length
};
QueueStats queue_stats(const sched::ScheduleTrace& trace);

}  // namespace es::exp
