// Experiment driver: one (workload model, algorithm) pair -> metrics, with
// seeded replication.  Every figure/table bench is a thin loop over these.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "sched/engine.hpp"
#include "sched/metrics.hpp"
#include "workload/generator.hpp"

namespace es::snap {
class SnapshotReader;
}  // namespace es::snap

namespace es::exp {

/// Complete description of one simulation run.
struct RunSpec {
  workload::GeneratorConfig workload;
  std::string algorithm;              ///< factory name, e.g. "Delayed-LOS"
  core::AlgorithmOptions options{};   ///< C_s, lookahead
};

/// Mean-of-seeds aggregate of the paper's metrics.
struct Aggregate {
  std::string algorithm;
  int replications = 0;
  double utilization = 0;
  double mean_wait = 0;
  double slowdown = 0;
  double utilization_stddev = 0;
  double mean_wait_stddev = 0;
  double utilization_ci95 = 0;  ///< 95% confidence half-width of the mean
  double mean_wait_ci95 = 0;
  double offered_load = 0;            ///< mean achieved load
  double mean_dedicated_delay = 0;
  std::uint64_t ecc_processed = 0;
  /// DP hot-path counters summed over the replications (calls, fast-path
  /// exits, cache hits) — deterministic, used by perf baselines.
  sched::DpCounters dp;
  /// Event-kernel traffic over the replications (scheduled/cancelled/fired
  /// summed, peak pending maxed) — deterministic, like the DP counters.
  sim::EventQueueCounters events;
  /// Per-cycle shape histograms summed over the replications (all-zero
  /// unless AlgorithmOptions::engine.collect_cycle_stats is set).
  sched::CycleStats cycle;
};

/// Runs a prepared workload under a named algorithm.  The engine's machine
/// is shaped by the workload (procs + granularity).
sched::SimulationResult run_workload(const workload::Workload& workload,
                                     const std::string& algorithm,
                                     const core::AlgorithmOptions& options = {});

/// Same, with an external observer appended to the engine's attachment
/// chain after the config-selected built-ins (the invariant-oracle mount
/// point; see fuzz::OracleObserver).  The observer is not owned and must
/// outlive the call.
sched::SimulationResult run_workload(const workload::Workload& workload,
                                     const std::string& algorithm,
                                     const core::AlgorithmOptions& options,
                                     sched::EngineObserver* observer,
                                     sched::HookMask mask = sched::kAllHooks);

/// Runs a pull-based job source under a named algorithm without ever
/// materializing the workload: the engine holds only the jobs in flight
/// (see Engine::run_streamed).  The machine is shaped by the source.
/// Metrics are byte-identical to run_workload on the materialized
/// equivalent; snapshots/restore/paranoid mode are unavailable.
sched::SimulationResult run_source(workload::JobSource& source,
                                   const std::string& algorithm,
                                   const core::AlgorithmOptions& options = {});

/// Same as run_workload, with a caller hook invoked on the configured
/// engine just before the run starts — the mount point for snapshot sinks
/// and other engine-level wiring the options struct cannot express.
sched::SimulationResult run_workload_prepared(
    const workload::Workload& workload, const std::string& algorithm,
    const core::AlgorithmOptions& options,
    const std::function<void(sched::Engine&)>& prepare);

/// Restores a crash-consistent snapshot (taken by an engine running this
/// exact workload/algorithm/options combination) and continues the run to
/// completion.  The returned metrics are byte-identical to the
/// uninterrupted run's.  Throws snap::SnapshotError on a corrupt,
/// version-incompatible or mismatched snapshot.
sched::SimulationResult resume_workload(const workload::Workload& workload,
                                        const std::string& algorithm,
                                        const core::AlgorithmOptions& options,
                                        snap::SnapshotReader& reader);

/// Generates the spec's workload (with its seed) and runs it.
sched::SimulationResult run_once(const RunSpec& spec);

/// Runs `replications` seeds (workload.seed + 0..n-1) and averages.
Aggregate run_replicated(RunSpec spec, int replications);

/// Empirically picks the C_s in [cs_min, cs_max] minimizing mean job waiting
/// time for Delayed-LOS on the given workload model (the paper's Fig-5/6
/// procedure; applied per P_S before each load sweep).
int optimal_skip_count(const workload::GeneratorConfig& config, int cs_min,
                       int cs_max, int replications);

}  // namespace es::exp
